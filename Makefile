# Convenience targets for the T-Mark repository. Everything is plain `go`;
# the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test short-test race serve-race chaos recovery-chaos vet bench bench-stats bench-json bench-accel bench-coldstart bench-stream accel-equivalence artifact-roundtrip stream-equivalence shard-smoke fuzz experiments figures examples clean

all: build vet test race

build:
	$(GO) build ./...

# go vet always; staticcheck too when it is on PATH.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

short-test:
	$(GO) test -short ./...

# The parallel kernels (including the blocked SpMM-style batch kernels
# and the batched-vs-sequential equivalence suites) are the only
# concurrent code; run the full internal + facade test set under the
# race detector.
race:
	$(GO) test -race ./internal/... ./pkg/...

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Workers sweep with the telemetry collector on: reports the wall-time
# split across the solver kernels (o_contract, r_contract, w_matvec,
# ica_reseed) per worker count, plus the collector-overhead guard.
bench-stats:
	$(GO) test -run xxx -bench 'BenchmarkRunStats|BenchmarkCollectorOverhead' -benchmem -v ./internal/tmark/

# Machine-readable perf trajectory: run the batched-vs-sequential sweep
# (BENCH_3.json, kept frozen) and the coalesced-serving sweep
# (BENCH_4.json: q=8 concurrent queries on a shared warm model, one
# lockstep batch vs one solve per query) and archive both as JSON.
bench-json:
	$(GO) test -run xxx -bench BenchmarkBatchedVsSequential -benchmem ./internal/tmark/ > /tmp/bench_batched.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_batched.txt > BENCH_3.json
	@rm -f /tmp/bench_batched.txt
	@echo wrote BENCH_3.json
	$(GO) test -run xxx -bench BenchmarkCoalescedServing -benchmem ./internal/serve/ > /tmp/bench_serving.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_serving.txt > BENCH_4.json
	@rm -f /tmp/bench_serving.txt
	@echo wrote BENCH_4.json
	$(GO) test -run xxx -bench BenchmarkShardedSolve -benchtime 3x -benchmem ./internal/shard/ > /tmp/bench_shard.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_shard.txt > BENCH_8.json
	@rm -f /tmp/bench_shard.txt
	@echo wrote BENCH_8.json

# The quality-tier sweep (BENCH_6.json): exact vs accelerated vs fast on
# the slow-mixing golden Ring network and the expander-like golden DBLP
# network, reporting wall time plus committed iterations per solve. The
# headline row — ring-slowmix/accelerated — must show the ≥2× iteration
# reduction that TestAccelGoldenSlowMixingTwofold asserts.
bench-accel:
	$(GO) test -run xxx -bench BenchmarkAccelTiers -benchmem ./internal/experiments/ > /tmp/bench_accel.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_accel.txt > BENCH_6.json
	@rm -f /tmp/bench_accel.txt
	@echo wrote BENCH_6.json

# The model cold-start sweep (BENCH_7.json): raw build (full tensor
# normalisation + cosine feature matrix) vs TMARKAR1 artifact activation
# (mmap + crc64 + strict decode + assemble) per dataset. The headline
# rows are the top-K sparse feature channel, where activation must be
# ≥10× faster than the rebuild it replaces; the dense rows are the
# checksum-bound lower bound (~5×).
bench-coldstart:
	$(GO) test -run xxx -bench BenchmarkColdStart -benchmem ./internal/artifact/ > /tmp/bench_coldstart.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_coldstart.txt > BENCH_7.json
	@rm -f /tmp/bench_coldstart.txt
	@echo wrote BENCH_7.json

# The streaming-ingest sweep (BENCH_9.json): one op is a whole delta
# batch — compose, touched-region renormalisation, re-encode + hash,
# warm re-solve — per batch size. warm_iters/op vs cold_iters is the
# warm-restart saving the equivalence suite asserts.
bench-stream:
	$(GO) test -run xxx -bench BenchmarkStreamIngest -benchmem ./internal/stream/ > /tmp/bench_stream.txt
	$(GO) run ./cmd/benchjson < /tmp/bench_stream.txt > BENCH_9.json
	@rm -f /tmp/bench_stream.txt
	@echo wrote BENCH_9.json

# The artifact format's focused suite: round-trip bitwise equivalence,
# registry resolution, damage rejection, and the decoder fuzz seeds.
# The CI artifact job runs this.
artifact-roundtrip:
	$(GO) test -count=1 ./internal/artifact/
	$(GO) test -count=1 -run 'TestArtifact|TestV1' ./internal/serve/

# The short accelerated/fast-tier equivalence suite — accelerated solves
# must reproduce the exact predictions in no more (and on the ring at
# least 2x fewer) iterations; fast solves must stay inside the
# documented accuracy/NMI envelope. The focused CI job runs this.
accel-equivalence:
	$(GO) test -count=1 -run 'TestAccelGolden|TestFastGolden' -v ./internal/experiments/
	$(GO) test -count=1 -run 'TestAcceleration|TestSolveColumnQualityTiers|TestSolveColumnsMixedQuality|TestRunApproximate|TestQualityPrecedence' ./internal/tmark/

# The streaming-ingest equivalence suite: incremental tensor updates
# bitwise identical to a from-scratch rebuild (engine property tests +
# touched-column/tube renormalisation), warm re-solves landing on the
# cold solve's exact predictions on the golden networks in ≥3× fewer
# iterations, the serve-layer ingest/diff endpoints, the version-pinning
# guarantee for readers racing an ingest, and the `tmark diff` golden.
# The focused CI job runs this.
stream-equivalence:
	$(GO) test -count=1 ./internal/stream/
	$(GO) test -count=1 -run 'TestIncremental|TestMerge|TestRenormalize' ./internal/tensor/
	$(GO) test -count=1 -run 'TestRunWarm|TestColumnWarmStart' ./internal/tmark/
	$(GO) test -count=1 -run 'TestIngest|TestDiff' ./internal/serve/
	$(GO) test -count=1 -run 'TestDiffGolden|TestLoadDeltas' ./cmd/tmark/
	$(GO) test -count=1 -run 'TestClientIngest' ./pkg/tmark/

# The serving integration suite (coalescer, cache, drain) under the race
# detector — the separate CI job; make race covers it too, this target
# is the focused loop.
serve-race:
	$(GO) test -race -count=1 ./internal/serve/

# The fault-injection suites under the race detector: solver chaos
# (injected NaN/Inf corruption, checkpoint kill-and-resume, scalar-
# demotion retry), serving chaos (build/solve panics, overload shedding,
# eviction racing a borrowed solve) and the tmarkd SIGTERM drain test.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestKill|TestEviction|TestServeRank|TestRunSIGTERM|TestGuard|TestCheckpoint|TestResume|TestInterrupted|TestSequentialStep|TestNoASMDemotion|TestKernelFaultPoint|TestWorkerRejects|TestIngestQuarantine|TestIngestPins' ./internal/tmark/ ./internal/serve/ ./internal/tensor/ ./internal/shard/ ./internal/stream/ ./cmd/tmarkd/

# The durability suite under the race detector: WAL codec and log
# lifecycle (torn-tail truncation, rotation, checkpoint pruning), the
# crash-equivalence chaos tests (faults at apply/seal/append heal in
# process or via restart replay to the uninterrupted timeline's exact
# hash and predictions), idempotency-key dedup across recovery and
# restart, registry scrub repairs racing hash-pinned readers, and the
# tmarkd-level kill/restart drill. The recovery-chaos CI job runs this.
recovery-chaos:
	$(GO) test -race -count=1 ./internal/wal/
	$(GO) test -race -count=1 -run 'TestRecovery|TestRestart|TestApplyKeyed|TestNoWAL|TestWALAppend' ./internal/stream/
	$(GO) test -race -count=1 -run 'TestIngestIdempotencyKey|TestUnavailableReasons|TestServerWALRestart|TestScrub|TestServerScrub' ./internal/serve/
	$(GO) test -race -count=1 -run 'TestScrub' ./internal/artifact/
	$(GO) test -race -count=1 -run 'TestRunWALRestartReplays' ./cmd/tmarkd/
	$(GO) test -race -count=1 -run 'TestClientIngestRetriesWithStableKey' ./pkg/tmark/

# The horizontal-scale-out smoke: real worker OS processes (the test
# re-execs its own binary per shard), a coordinator solving a builtin
# dataset across them, and a bitwise prediction diff against the
# single-process reference. The CI shard job runs this.
shard-smoke:
	$(GO) test -count=1 -run 'TestShardSmokeMultiProcess|TestShardedSolveBitwiseIdentical' -v ./internal/shard/

# Short fuzzing passes over the untrusted-input parsers.
fuzz:
	$(GO) test -fuzz FuzzReadJSON -fuzztime 30s ./internal/hin/
	$(GO) test -fuzz FuzzReadEdgeCSV -fuzztime 30s ./internal/hin/
	$(GO) test -fuzz FuzzReadCOO -fuzztime 30s ./internal/dataset/
	$(GO) test -fuzz FuzzDecodeClassifyRequest -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzDecodeIngestRequest -fuzztime 30s ./internal/serve/
	$(GO) test -fuzz FuzzDecodeCheckpoint -fuzztime 30s ./internal/tmark/
	$(GO) test -fuzz FuzzDecodeArtifact -fuzztime 30s ./internal/artifact/
	$(GO) test -fuzz FuzzDecodeShardFrame -fuzztime 30s ./internal/shard/
	$(GO) test -fuzz FuzzDecodeWALRecord -fuzztime 30s ./internal/wal/

# Regenerate every table and figure at the quick scale.
experiments:
	$(GO) run ./cmd/experiments

# The paper's full protocol, with SVG charts written to ./figures.
figures:
	$(GO) run ./cmd/experiments -full -svg figures

examples:
	for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	rm -rf figures
