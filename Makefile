# Convenience targets for the T-Mark repository. Everything is plain `go`;
# the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test short-test race vet bench fuzz experiments figures examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short-test:
	$(GO) test -short ./...

# The parallel kernels are the only concurrent code; run them under the
# race detector.
race:
	$(GO) test -race ./internal/... ./pkg/...

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the untrusted-input parsers.
fuzz:
	$(GO) test -fuzz FuzzReadJSON -fuzztime 30s ./internal/hin/
	$(GO) test -fuzz FuzzReadEdgeCSV -fuzztime 30s ./internal/hin/

# Regenerate every table and figure at the quick scale.
experiments:
	$(GO) run ./cmd/experiments

# The paper's full protocol, with SVG charts written to ./figures.
figures:
	$(GO) run ./cmd/experiments -full -svg figures

examples:
	for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	rm -rf figures
