package eval_test

import (
	"fmt"
	"math/rand"

	"tmark/pkg/baselines"
	"tmark/pkg/datasets"
	"tmark/pkg/eval"
)

// The complete evaluation loop: split, mask, classify, grade.
func Example() {
	g, err := datasets.Synth(datasets.SynthConfig{
		Seed:          1,
		Classes:       []string{"a", "b"},
		NodesPerClass: 40,
		Vocab:         20,
		TokensPerNode: 8,
		FeatureFocus:  0.7,
		Relations: []datasets.RelationSpec{
			{Name: "strong", Homophily: 0.9, Edges: 240},
		},
	})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(2))
	split := eval.StratifiedSplit(g, 0.25, rng)
	masked, truth := eval.MaskLabels(g, split)

	scores, err := baselines.NewTMark().Scores(masked, rng)
	if err != nil {
		panic(err)
	}
	acc := eval.Accuracy(baselines.Predict(scores), eval.PrimaryTruth(truth), split.Test)
	fmt.Printf("test accuracy above chance: %v\n", acc > 0.6)
	// Output:
	// test accuracy above chance: true
}

// Aggregate a metric over repeated deterministic trials.
func ExampleRunTrials() {
	stats := eval.RunTrials(5, 42, func(trial int, rng *rand.Rand) float64 {
		return float64(trial) / 4
	})
	fmt.Println(stats)
	// Output:
	// 0.500±0.354
}
