// Package eval is the public evaluation interface: metrics (accuracy,
// macro/micro F1, confusion matrices), stratified train/test splits over a
// network, deterministic multi-trial running and paired significance
// tests. It re-exports the implementation in internal/eval.
package eval

import (
	"math/rand"

	ieval "tmark/internal/eval"
	ihin "tmark/internal/hin"
)

// Split is one train/test partition.
type Split = ieval.Split

// TrialStats aggregates a metric over repeated trials (mean ± std).
type TrialStats = ieval.TrialStats

// ConfusionMatrix counts (truth, predicted) pairs.
type ConfusionMatrix = ieval.ConfusionMatrix

// Accuracy grades single-label predictions on masked positions.
func Accuracy(pred, truth []int, mask []bool) float64 {
	return ieval.Accuracy(pred, truth, mask)
}

// MacroF1 grades multi-label predictions, macro-averaged over classes.
func MacroF1(pred, truth [][]int, q int, mask []bool) float64 {
	return ieval.MacroF1(pred, truth, q, mask)
}

// MicroF1 grades multi-label predictions, micro-averaged.
func MicroF1(pred, truth [][]int, mask []bool) float64 {
	return ieval.MicroF1(pred, truth, mask)
}

// StratifiedSplit samples trainFraction of each class into training.
func StratifiedSplit(g *ihin.Graph, trainFraction float64, rng *rand.Rand) Split {
	return ieval.StratifiedSplit(g, trainFraction, rng)
}

// MaskLabels hides non-training labels, returning the masked copy and the
// full ground truth.
func MaskLabels(g *ihin.Graph, split Split) (*ihin.Graph, [][]int) {
	return ieval.MaskLabels(g, split)
}

// PrimaryTruth flattens multi-label truth to primary labels (−1 when
// unlabelled).
func PrimaryTruth(truth [][]int) []int { return ieval.PrimaryTruth(truth) }

// RunTrials runs fn once per trial with independent deterministic RNGs.
func RunTrials(trials int, seed int64, fn func(trial int, rng *rand.Rand) float64) TrialStats {
	return ieval.RunTrials(trials, seed, fn)
}

// Confusion builds a confusion matrix over masked positions.
func Confusion(pred, truth []int, mask []bool, classes []string) *ConfusionMatrix {
	return ieval.Confusion(pred, truth, mask, classes)
}

// PairedTTest compares two methods' per-trial metrics; positive t means
// the first is better, significant reports the two-sided 5% verdict.
func PairedTTest(a, b []float64) (t float64, significant bool) {
	return ieval.PairedTTest(a, b)
}
