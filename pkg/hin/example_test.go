package hin_test

import (
	"bytes"
	"fmt"
	"strings"

	"tmark/pkg/hin"
)

// Build a small network, persist it to JSON and load it back.
func Example() {
	g := hin.New("spam", "ham")
	alice := g.AddNode("alice", []float64{1, 0})
	bob := g.AddNode("bob", []float64{0, 1})
	follows := g.AddRelation("follows", true)
	g.AddEdge(follows, alice, bob)
	g.SetLabels(alice, 0)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		panic(err)
	}
	back, err := hin.ReadJSON(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.Stats())
	// Output:
	// nodes=2 relations=1 classes=2 edges=1 labeled=1 featdim=2
}

// Ingest a CSV edge list; the "!" suffix marks directed relations.
func ExampleReadEdgeCSV() {
	csv := strings.Join([]string{
		"from,to,relation,weight",
		"alice,bob,follows!,1",
		"bob,carol,follows!,1",
		"alice,carol,coworker,2.5",
	}, "\n")
	g, err := hin.ReadEdgeCSV(strings.NewReader(csv))
	if err != nil {
		panic(err)
	}
	fmt.Printf("nodes=%d relations=%d\n", g.N(), g.M())
	fmt.Printf("follows directed: %v\n", g.Relations[0].Directed)
	// Output:
	// nodes=3 relations=2
	// follows directed: true
}
