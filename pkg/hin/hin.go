// Package hin is the public interface for building and inspecting
// heterogeneous information networks: typed nodes with features and
// (multi-)labels, multiple typed relations, persistence, and structural
// analysis. It re-exports the implementation in internal/hin; every type
// here is identical to its internal counterpart, so values flow freely
// into the classification and ranking packages.
//
// Build a network:
//
//	g := hin.New("spam", "ham")
//	a := g.AddNode("alice", []float64{1, 0})
//	b := g.AddNode("bob", []float64{0, 1})
//	follows := g.AddRelation("follows", true)
//	g.AddEdge(follows, a, b)
//	g.SetLabels(a, 0)
//
// Nodes carrying labels act as training seeds for the classifiers in
// package tmark; everything else is a prediction target.
package hin

import (
	"io"

	ihin "tmark/internal/hin"
)

// Graph is a heterogeneous information network.
type Graph = ihin.Graph

// Node is one classified object of a network.
type Node = ihin.Node

// Relation is one link type.
type Relation = ihin.Relation

// Edge is one typed link.
type Edge = ihin.Edge

// Stats summarises a network.
type Stats = ihin.Stats

// New returns an empty graph with the given class names.
func New(classes ...string) *Graph { return ihin.New(classes...) }

// ReadJSON decodes a graph from its JSON form.
func ReadJSON(r io.Reader) (*Graph, error) { return ihin.ReadJSON(r) }

// LoadFile reads a graph saved with Graph.SaveFile.
func LoadFile(path string) (*Graph, error) { return ihin.LoadFile(path) }

// ReadEdgeCSV builds a graph from a from,to,relation[,weight] edge list.
func ReadEdgeCSV(r io.Reader) (*Graph, error) { return ihin.ReadEdgeCSV(r) }
