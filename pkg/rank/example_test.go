package rank_test

import (
	"fmt"

	"tmark/pkg/hin"
	"tmark/pkg/rank"
)

// Co-rank an unlabelled network's nodes and link types with MultiRank.
func ExampleMultiRank() {
	g := hin.New()
	hub := g.AddNode("hub", nil)
	for i := 0; i < 4; i++ {
		g.AddNode(fmt.Sprintf("leaf%d", i), nil)
	}
	spokes := g.AddRelation("spokes", true)
	rarely := g.AddRelation("rarely", true)
	for i := 1; i <= 4; i++ {
		g.AddEdge(spokes, hub, i)
		g.AddEdge(spokes, i, hub)
	}
	g.AddEdge(rarely, 1, 2)

	res, err := rank.MultiRank(g, rank.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top node: %s\n", g.Nodes[res.TopNodes(1)[0]].Name)
	fmt.Printf("top relation: %s\n", g.Relations[res.TopRelations(1)[0]].Name)
	// Output:
	// top node: hub
	// top relation: spokes
}

// Separate hubs from authorities with HAR.
func ExampleHAR() {
	g := hin.New()
	g.AddNode("curator", nil) // points at everything
	g.AddNode("paper1", nil)
	g.AddNode("paper2", nil)
	g.AddNode("classic", nil) // everything points at it
	cites := g.AddRelation("cites", true)
	g.AddEdge(cites, 0, 1)
	g.AddEdge(cites, 0, 2)
	g.AddEdge(cites, 1, 3)
	g.AddEdge(cites, 2, 3)

	res, err := rank.HAR(g, rank.Options{Restart: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top hub: %s\n", g.Nodes[res.TopHubs(1)[0]].Name)
	fmt.Printf("top authority: %s\n", g.Nodes[res.TopAuthorities(1)[0]].Name)
	// Output:
	// top hub: curator
	// top authority: classic
}
