// Package rank is the public interface to the unsupervised tensor
// co-ranking algorithms T-Mark descends from: MultiRank (co-ranking nodes
// and relations) and HAR (hub/authority/relevance scores). It re-exports
// the implementation in internal/rank.
package rank

import (
	ihin "tmark/internal/hin"
	irank "tmark/internal/rank"
)

// Options controls the fixed-point iterations.
type Options = irank.Options

// MultiRankResult holds the stationary node and relation rankings.
type MultiRankResult = irank.MultiRankResult

// HARResult holds hub, authority and relevance scores.
type HARResult = irank.HARResult

// MultiRank co-ranks the nodes and relations of an unlabelled network.
func MultiRank(g *ihin.Graph, opt Options) (*MultiRankResult, error) {
	return irank.MultiRank(g, opt)
}

// HAR computes hub, authority and relevance scores.
func HAR(g *ihin.Graph, opt Options) (*HARResult, error) {
	return irank.HAR(g, opt)
}
