package obs_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"tmark/pkg/obs"
)

func TestFacadeServesDefaultRegistry(t *testing.T) {
	obs.Default().Counter("facade_test_counter").Add(7)

	addr, shutdown, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(context.Background())

	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "facade_test_counter 7") {
		t.Errorf("metrics missing facade counter:\n%s", body)
	}

	if _, ok := obs.Default().Snapshot()["facade_test_counter"]; !ok {
		t.Error("snapshot missing facade counter")
	}
	if obs.NewRegistry() == obs.Default() {
		t.Error("NewRegistry returned the default registry")
	}
}
