// Package obs exposes the process-wide telemetry registry of the T-Mark
// solver: monotonic counters, duration timers and gauges that the
// internal packages publish as they work (run counts, iteration totals,
// per-kernel timers, W-matrix build time). The registry snapshot is
// served in Prometheus text exposition format and as an expvar-style
// JSON document; see Serve.
//
// Per-run telemetry — the wall-time split across compute kernels, the
// residual traces — is collected with tmark.WithStats instead; this
// package carries only process-wide aggregates.
package obs

import (
	"context"
	"net"
	"net/http"

	iobs "tmark/internal/obs"
)

// Registry is a named collection of counters, timers and gauges.
type Registry = iobs.Registry

// NewRegistry returns an empty registry independent of the default one.
func NewRegistry() *Registry { return iobs.NewRegistry() }

// Default returns the process-wide registry the solver publishes into.
func Default() *Registry { return iobs.Default() }

// Handler serves the default registry in Prometheus text format.
func Handler() http.Handler { return iobs.Default().Handler() }

// Serve starts an HTTP server on addr exposing the default registry at
// /metrics (Prometheus), /vars (JSON) and the pprof endpoints under
// /debug/pprof/. It returns the bound address (useful with ":0") and a
// shutdown function.
func Serve(addr string) (net.Addr, func(context.Context) error, error) {
	return iobs.Default().Serve(addr)
}
