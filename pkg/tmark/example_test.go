package tmark_test

import (
	"fmt"

	"tmark/pkg/datasets"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

// Classify the paper's worked bibliography example end to end.
func Example() {
	g := datasets.Example()
	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0.5
	model, err := tmark.New(g, cfg)
	if err != nil {
		panic(err)
	}
	res := model.Run()
	for i, c := range res.Predict() {
		fmt.Printf("%s → %s\n", g.Nodes[i].Name, g.Classes[c])
	}
	// Output:
	// p1 (TKDE 2008) → DM
	// p2 (WWW 2016) → CV
	// p3 (WWW 2019) → CV
	// p4 (SIGMOD 2014) → DM
}

// Build a network by hand and rank its link types for one class.
func ExampleNew() {
	g := hin.New("left", "right")
	a := g.AddNode("a", []float64{1, 0})
	b := g.AddNode("b", []float64{1, 0})
	c := g.AddNode("c", []float64{0, 1})
	d := g.AddNode("d", []float64{0, 1})
	good := g.AddRelation("good", false)
	noise := g.AddRelation("noise", false)
	g.AddEdge(good, a, b)
	g.AddEdge(good, c, d)
	g.AddEdge(noise, a, c)
	g.SetLabels(a, 0)
	g.SetLabels(c, 1)

	model, err := tmark.New(g, tmark.DefaultConfig())
	if err != nil {
		panic(err)
	}
	res := model.Run()
	pred := res.Predict()
	fmt.Printf("b → %s, d → %s\n", g.Classes[pred[b]], g.Classes[pred[d]])
	top := res.LinkRanking(0)[0]
	fmt.Printf("most relevant link type for %q: %s\n", g.Classes[0], g.Relations[top.Relation].Name)
	// Output:
	// b → left, d → right
	// most relevant link type for "left": good
}
