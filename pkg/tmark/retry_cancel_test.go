package tmark_test

// The retry loop must stay responsive to the caller's context while it
// backs off: a cancelled context interrupts the inter-attempt sleep
// immediately instead of letting a long Retry-After hint pin the
// caller.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tmark/pkg/tmark"
)

func TestClientRetryCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	// Cancel shortly after the first attempt has been answered — while
	// the client is sleeping out the hinted 30s backoff. The drain
	// case: server advertises a long wait, caller gives up first.
	go func() {
		for calls.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	c := tmark.NewClient(ts.URL)
	c.Retry = &tmark.Retry{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Minute}

	start := time.Now()
	_, err := c.Classify(ctx, &tmark.ClassifyRequest{Seeds: []int{0}})
	elapsed := time.Since(start)

	// The call returns the last real failure (more useful than a bare
	// context error), after exactly one attempt, long before the 30s
	// hint elapses.
	var se *tmark.ServiceError
	if !errors.As(err, &se) || !se.Overloaded() {
		t.Fatalf("err = %v, want the 503 ServiceError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts after cancellation, want 1", got)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled call took %v, want prompt return (the backoff was 30s)", elapsed)
	}
}

func TestClientRetryDeadlineDuringBackoff(t *testing.T) {
	// An always-503 server with a modest hint: the per-call deadline
	// expires mid-backoff and bounds the total attempts.
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)

	c := tmark.NewClient(ts.URL)
	c.Retry = &tmark.Retry{MaxAttempts: 100, BaseDelay: 5 * time.Millisecond, MaxDelay: time.Minute}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Classify(ctx, &tmark.ClassifyRequest{Seeds: []int{0}})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("call against an always-503 server succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded call took %v", elapsed)
	}
	// The 1s hint floors every backoff, so the 300ms deadline admits
	// exactly one attempt — not the policy's hundred.
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts inside a 300ms deadline with 1s backoffs, want 1", got)
	}
}
