package tmark_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tmark/internal/serve"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

func clientGraph() *hin.Graph {
	g := hin.New("left", "right")
	rel := g.AddRelation("link", false)
	for i := 0; i < 12; i++ {
		id := g.AddNode("", nil)
		if i < 2 {
			g.SetLabels(id, i)
		}
	}
	for i := 0; i < 12; i++ {
		g.AddEdge(rel, i, (i+1)%12)
		g.AddEdge(rel, i, (i+5)%12)
	}
	return g
}

func newClientServer(t *testing.T) (*tmark.Client, *serve.Server) {
	t.Helper()
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	s, err := serve.New(serve.Options{
		Datasets: map[string]*hin.Graph{"toy": clientGraph()},
		Config:   cfg,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return tmark.NewClient(ts.URL), s
}

func TestClientClassifyRankReady(t *testing.T) {
	c, _ := newClientServer(t)
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}

	resp, err := c.Classify(ctx, &tmark.ClassifyRequest{Seeds: []int{0}, Scores: true})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if resp.Dataset != "toy" || !resp.Converged || len(resp.Scores) != 12 {
		t.Fatalf("Classify response: dataset %q converged %v scores %d", resp.Dataset, resp.Converged, len(resp.Scores))
	}
	sum := 0.0
	for _, s := range resp.Scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("scores sum %v, want ≈1", sum)
	}

	rank, err := c.Rank(ctx, "toy", 1)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(rank.Classes) != 2 || len(rank.Classes[0].Links) != 1 {
		t.Fatalf("Rank response: %d classes, %d links", len(rank.Classes), len(rank.Classes[0].Links))
	}
}

func TestClientErrors(t *testing.T) {
	c, s := newClientServer(t)
	ctx := context.Background()

	// Client-side validation rejects before any network traffic.
	if _, err := c.Classify(ctx, &tmark.ClassifyRequest{}); err == nil {
		t.Error("empty request accepted")
	}

	// A server-side rejection surfaces as a ServiceError with the
	// server's message.
	_, err := c.Classify(ctx, &tmark.ClassifyRequest{Dataset: "nope", Seeds: []int{0}})
	se, ok := err.(*tmark.ServiceError)
	if !ok {
		t.Fatalf("Classify(bad dataset): %v, want *ServiceError", err)
	}
	if se.StatusCode != 404 || se.Overloaded() {
		t.Errorf("ServiceError %+v, want status 404, not overloaded", se)
	}

	// Draining flips readiness to an overloaded ServiceError.
	s.Drain()
	err = c.Ready(ctx)
	se, ok = err.(*tmark.ServiceError)
	if !ok || !se.Overloaded() {
		t.Fatalf("Ready while draining: %v, want overloaded ServiceError", err)
	}
}

// flaky wraps a healthy tmarkd handler behind fail rejections: the
// first fail requests are shed with a 503 + Retry-After, everything
// after reaches the real server — the flapping-server shape a client
// sees during a drain/restart or a quarantined-model rebuild.
func flaky(t *testing.T, fail int, inner http.Handler) (*tmark.Client, *int32) {
	t.Helper()
	var calls int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= int32(fail) {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"flapping"}`))
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c := tmark.NewClient(ts.URL)
	c.Retry = &tmark.Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.5}
	return c, &calls
}

func TestClientRetriesFlappingServer(t *testing.T) {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	s, err := serve.New(serve.Options{
		Datasets: map[string]*hin.Graph{"toy": clientGraph()},
		Config:   cfg,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Drain)

	c, calls := flaky(t, 3, s.Handler())
	resp, err := c.Classify(context.Background(), &tmark.ClassifyRequest{Seeds: []int{0}})
	if err != nil {
		t.Fatalf("Classify through flapping server: %v", err)
	}
	if !resp.Converged {
		t.Errorf("converged=false after retries")
	}
	if got := atomic.LoadInt32(calls); got != 4 {
		t.Errorf("server saw %d requests, want 4 (3 shed + 1 served)", got)
	}
}

func TestClientRetryExhaustionAndNonTransient(t *testing.T) {
	// Permanent overload: the policy's attempts are spent and the last
	// ServiceError comes back with the server's Retry-After hint.
	c, calls := flaky(t, 1000, http.NotFoundHandler())
	_, err := c.Classify(context.Background(), &tmark.ClassifyRequest{Seeds: []int{0}})
	se := &tmark.ServiceError{}
	if !errors.As(err, &se) || !se.Overloaded() {
		t.Fatalf("exhausted retries: %v, want overloaded ServiceError", err)
	}
	if got := atomic.LoadInt32(calls); got != 5 {
		t.Errorf("server saw %d requests, want MaxAttempts=5", got)
	}

	// A 404 is not transient: exactly one attempt, however many the
	// policy allows.
	c2, calls2 := flaky(t, 0, http.NotFoundHandler())
	_, err = c2.Classify(context.Background(), &tmark.ClassifyRequest{Seeds: []int{0}})
	if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("404: %v, want not-found ServiceError", err)
	}
	if got := atomic.LoadInt32(calls2); got != 1 {
		t.Errorf("server saw %d requests for a 404, want 1 (no retry)", got)
	}
}

func TestRetryDelayHonoursHintAndCap(t *testing.T) {
	r := &tmark.Retry{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	if got := r.Delay(1, 0); got != 10*time.Millisecond {
		t.Errorf("delay(1) = %v, want base 10ms", got)
	}
	if got := r.Delay(3, 0); got != 40*time.Millisecond {
		t.Errorf("delay(3) = %v, want doubled 40ms", got)
	}
	// The server's Retry-After hint floors the backoff…
	if got := r.Delay(1, 60*time.Millisecond); got != 60*time.Millisecond {
		t.Errorf("delay with hint = %v, want the 60ms hint", got)
	}
	// …and MaxDelay caps everything, hint included, so a long drain
	// cannot pin a client.
	if got := r.Delay(1, time.Hour); got != 80*time.Millisecond {
		t.Errorf("delay with huge hint = %v, want the 80ms cap", got)
	}
	if got := r.Delay(30, 0); got != 80*time.Millisecond {
		t.Errorf("delay(30) = %v, want the 80ms cap", got)
	}
}
