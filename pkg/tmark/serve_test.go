package tmark_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"tmark/internal/serve"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

func clientGraph() *hin.Graph {
	g := hin.New("left", "right")
	rel := g.AddRelation("link", false)
	for i := 0; i < 12; i++ {
		id := g.AddNode("", nil)
		if i < 2 {
			g.SetLabels(id, i)
		}
	}
	for i := 0; i < 12; i++ {
		g.AddEdge(rel, i, (i+1)%12)
		g.AddEdge(rel, i, (i+5)%12)
	}
	return g
}

func newClientServer(t *testing.T) (*tmark.Client, *serve.Server) {
	t.Helper()
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	s, err := serve.New(serve.Options{
		Datasets: map[string]*hin.Graph{"toy": clientGraph()},
		Config:   cfg,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return tmark.NewClient(ts.URL), s
}

func TestClientClassifyRankReady(t *testing.T) {
	c, _ := newClientServer(t)
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready: %v", err)
	}

	resp, err := c.Classify(ctx, &tmark.ClassifyRequest{Seeds: []int{0}, Scores: true})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if resp.Dataset != "toy" || !resp.Converged || len(resp.Scores) != 12 {
		t.Fatalf("Classify response: dataset %q converged %v scores %d", resp.Dataset, resp.Converged, len(resp.Scores))
	}
	sum := 0.0
	for _, s := range resp.Scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("scores sum %v, want ≈1", sum)
	}

	rank, err := c.Rank(ctx, "toy", 1)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if len(rank.Classes) != 2 || len(rank.Classes[0].Links) != 1 {
		t.Fatalf("Rank response: %d classes, %d links", len(rank.Classes), len(rank.Classes[0].Links))
	}
}

func TestClientErrors(t *testing.T) {
	c, s := newClientServer(t)
	ctx := context.Background()

	// Client-side validation rejects before any network traffic.
	if _, err := c.Classify(ctx, &tmark.ClassifyRequest{}); err == nil {
		t.Error("empty request accepted")
	}

	// A server-side rejection surfaces as a ServiceError with the
	// server's message.
	_, err := c.Classify(ctx, &tmark.ClassifyRequest{Dataset: "nope", Seeds: []int{0}})
	se, ok := err.(*tmark.ServiceError)
	if !ok {
		t.Fatalf("Classify(bad dataset): %v, want *ServiceError", err)
	}
	if se.StatusCode != 404 || se.Overloaded() {
		t.Errorf("ServiceError %+v, want status 404, not overloaded", se)
	}

	// Draining flips readiness to an overloaded ServiceError.
	s.Drain()
	err = c.Ready(ctx)
	se, ok = err.(*tmark.ServiceError)
	if !ok || !se.Overloaded() {
		t.Fatalf("Ready while draining: %v, want overloaded ServiceError", err)
	}
}
