package tmark_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/serve"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

// newModelServer is newClientServer with the toy graph also compiled
// into an artifact registry, so model references resolve both ways.
func newModelServer(t *testing.T) (*tmark.Client, string) {
	t.Helper()
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	g := clientGraph()
	dir := t.TempDir()
	reg, err := artifact.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put(blob); err != nil {
		t.Fatal(err)
	}
	if err := reg.Tag("toy", hash); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Options{
		Datasets: map[string]*hin.Graph{"toy": g},
		Config:   cfg,
		ModelDir: dir,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return tmark.NewClient(ts.URL), hash
}

func TestClientClassifyModelOptions(t *testing.T) {
	c, hash := newModelServer(t)
	ctx := context.Background()

	resp, err := c.ClassifyModel(ctx, "toy", []int{0},
		tmark.WithScores(), tmark.WithTop(3), tmark.WithQuality("exact"))
	if err != nil {
		t.Fatalf("ClassifyModel: %v", err)
	}
	if resp.Model != "toy" || resp.ModelHash != "sha256:"+hash {
		t.Fatalf("echo model %q hash %q, want toy @ %s", resp.Model, resp.ModelHash, hash)
	}
	if len(resp.Scores) != 12 || len(resp.TopNodes) != 3 || resp.Quality != "exact" {
		t.Fatalf("scores %d topnodes %d quality %q", len(resp.Scores), len(resp.TopNodes), resp.Quality)
	}

	// The deprecated positional call answers bitwise identically: the
	// two surfaces front the same warm model.
	legacy, err := c.Classify(ctx, &tmark.ClassifyRequest{Dataset: "toy", Seeds: []int{0}, Scores: true})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	for i := range resp.Scores {
		if resp.Scores[i] != legacy.Scores[i] {
			t.Fatalf("score[%d]: %v (/v1) vs %v (legacy)", i, resp.Scores[i], legacy.Scores[i])
		}
	}

	// Pinning the echoed hash keeps resolving; an Alpha override selects
	// a different warm model and must change the solution.
	pinned, err := c.ClassifyModel(ctx, "toy@sha256:"+hash, []int{0}, tmark.WithScores())
	if err != nil {
		t.Fatalf("ClassifyModel(pinned): %v", err)
	}
	if pinned.ModelHash != "sha256:"+hash {
		t.Fatalf("pinned echo %q", pinned.ModelHash)
	}
	hot, err := c.ClassifyModel(ctx, "toy", []int{0}, tmark.WithScores(), tmark.WithAlpha(0.25))
	if err != nil {
		t.Fatalf("ClassifyModel(alpha): %v", err)
	}
	same := true
	for i := range hot.Scores {
		same = same && hot.Scores[i] == resp.Scores[i]
	}
	if same {
		t.Fatal("alpha override did not change the solution")
	}

	// Option validation stays client-side: no seeds → error before any
	// network traffic, unknown quality → server-side 400.
	if _, err := c.ClassifyModel(ctx, "toy", nil); err == nil {
		t.Fatal("empty seed set accepted")
	}
	se := &tmark.ServiceError{}
	if _, err := c.ClassifyModel(ctx, "toy", []int{0}, tmark.WithQuality("psychic")); err == nil {
		t.Fatal("unknown quality accepted")
	} else if errors.As(err, &se) && se.StatusCode != 400 {
		t.Fatalf("unknown quality: %v", err)
	}
}

func TestClientRankModelAndListModels(t *testing.T) {
	c, hash := newModelServer(t)
	ctx := context.Background()

	rank, err := c.RankModel(ctx, "toy", tmark.WithTop(1))
	if err != nil {
		t.Fatalf("RankModel: %v", err)
	}
	if len(rank.Classes) != 2 || len(rank.Classes[0].Links) != 1 {
		t.Fatalf("RankModel: %d classes, %d links", len(rank.Classes), len(rank.Classes[0].Links))
	}
	if rank.ModelHash != "sha256:"+hash {
		t.Fatalf("RankModel hash %q", rank.ModelHash)
	}

	models, err := c.ListModels(ctx)
	if err != nil {
		t.Fatalf("ListModels: %v", err)
	}
	if len(models) != 1 {
		t.Fatalf("ListModels: %+v", models)
	}
	m := models[0]
	if m.Name != "toy" || m.Hash != "sha256:"+hash || m.Source != "artifact+graph" || !m.Default {
		t.Fatalf("ListModels entry: %+v", m)
	}
}
