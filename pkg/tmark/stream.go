package tmark

// The streaming client surface. Ingest pushes one batched edge
// mutation into a live model via POST /v1/ingest; the server applies
// it incrementally, re-solves warm from the previous equilibrium and
// seals a new content-addressed version. Diff compares two sealed
// versions via GET /v1/diff: which nodes changed class, which link
// types moved in a class's ranking.
//
// Unlike every other call on Client, Ingest is NOT idempotent: an add
// delta accumulates weight, so replaying a batch whose first attempt
// actually committed double-applies it. Ingest therefore performs
// exactly one attempt regardless of the Retry policy; a caller that
// sees a transport error must reconcile against /v1/models (did a new
// version seal?) before resending. Diff is a pure read and retries
// normally.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"

	"tmark/internal/serve"
	"tmark/internal/stream"
)

// Op is the kind of one edge delta.
type Op = stream.Op

const (
	// OpAdd accumulates weight onto an edge, creating it if absent.
	OpAdd = stream.OpAdd
	// OpUpdate replaces the weight of an existing edge.
	OpUpdate = stream.OpUpdate
	// OpRemove deletes an existing edge; it takes no weight.
	OpRemove = stream.OpRemove
)

// Delta is one edge mutation of an ingest batch.
type Delta = stream.Delta

// IngestRequest is one /v1/ingest batch.
type IngestRequest = serve.IngestRequest

// IngestResponse reports what one ingest batch did: the sealed
// version's sequence number and hashes, the touched tensor regions and
// the re-solve cost.
type IngestResponse = serve.IngestResponse

// DiffResponse is one /v1/diff answer.
type DiffResponse = serve.DiffResponse

// Flip is one node whose predicted class differs between two versions.
type Flip = stream.Flip

// RankShift is one relation that moved in a class's link-type ranking
// between two versions.
type RankShift = stream.RankShift

// Ingest applies one batched edge mutation to the named model (""
// selects the server's default) and returns the sealed version. The
// call never retries — see the package comment above — so transient
// failures (503 while draining or quarantined, transport errors)
// surface directly.
func (c *Client) Ingest(ctx context.Context, model string, deltas []Delta) (*IngestResponse, error) {
	req := &IngestRequest{Model: model, Deltas: deltas}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var out IngestResponse
	if err := c.once(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Diff compares two sealed model versions a and b (each a name,
// name@sha256:… or sha256:… reference) and returns the classification
// flips and link-type rank shifts of moving from a to b. WithTop
// bounds both lists; other options are ignored. A pure read: retried
// under the client's Retry policy.
func (c *Client) Diff(ctx context.Context, a, b string, opts ...Option) (*DiffResponse, error) {
	o := applyOptions(opts)
	q := url.Values{}
	q.Set("a", a)
	q.Set("b", b)
	if o.top > 0 {
		q.Set("top", strconv.Itoa(o.top))
	}
	u := c.BaseURL + "/v1/diff?" + q.Encode()
	var out DiffResponse
	err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
