package tmark

// The streaming client surface. Ingest pushes one batched edge
// mutation into a live model via POST /v1/ingest; the server applies
// it incrementally, re-solves warm from the previous equilibrium and
// seals a new content-addressed version. Diff compares two sealed
// versions via GET /v1/diff: which nodes changed class, which link
// types moved in a class's ranking.
//
// An ingest is not naturally idempotent — an add delta accumulates
// weight, so blindly replaying a batch whose first attempt actually
// committed would double-apply it. The Idempotency-Key header closes
// that hole: the server remembers applied keys and answers a resend
// with the originally sealed version. Ingest therefore sends a key on
// every attempt (a caller-pinned one via WithIdempotencyKey, or a
// random per-call key otherwise) and retries transient failures under
// the client's Retry policy exactly like the read calls, honouring the
// server's Retry-After hint.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"

	"tmark/internal/serve"
	"tmark/internal/stream"
)

// Op is the kind of one edge delta.
type Op = stream.Op

const (
	// OpAdd accumulates weight onto an edge, creating it if absent.
	OpAdd = stream.OpAdd
	// OpUpdate replaces the weight of an existing edge.
	OpUpdate = stream.OpUpdate
	// OpRemove deletes an existing edge; it takes no weight.
	OpRemove = stream.OpRemove
)

// Delta is one edge mutation of an ingest batch.
type Delta = stream.Delta

// IngestRequest is one /v1/ingest batch.
type IngestRequest = serve.IngestRequest

// IngestResponse reports what one ingest batch did: the sealed
// version's sequence number and hashes, the touched tensor regions and
// the re-solve cost. Duplicate marks an answer served from the server's
// idempotency window rather than a fresh apply.
type IngestResponse = serve.IngestResponse

// DiffResponse is one /v1/diff answer.
type DiffResponse = serve.DiffResponse

// Flip is one node whose predicted class differs between two versions.
type Flip = stream.Flip

// RankShift is one relation that moved in a class's link-type ranking
// between two versions.
type RankShift = stream.RankShift

// Ingest applies one batched edge mutation to the named model (""
// selects the server's default) and returns the sealed version.
// Transient failures (503 while draining, overloaded or recovering;
// transport errors) retry under the client's Retry policy; every
// attempt carries the same Idempotency-Key, so an attempt that
// committed server-side before the connection died is answered — not
// re-applied — by the retry (Duplicate set on the response). Only
// WithIdempotencyKey among the options is consulted.
func (c *Client) Ingest(ctx context.Context, model string, deltas []Delta, opts ...Option) (*IngestResponse, error) {
	req := &IngestRequest{Model: model, Deltas: deltas}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	key := applyOptions(opts).idempotencyKey
	if key == "" {
		// A fresh random key scopes idempotency to this call: the retry
		// loop below cannot double-apply, while two separate Ingest calls
		// with identical deltas stay two batches, as they should.
		var raw [16]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, err
		}
		key = "tmark-" + hex.EncodeToString(raw[:])
	}
	var out IngestResponse
	err = c.do(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("Idempotency-Key", key)
		return hreq, nil
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Diff compares two sealed model versions a and b (each a name,
// name@sha256:… or sha256:… reference) and returns the classification
// flips and link-type rank shifts of moving from a to b. WithTop
// bounds both lists; other options are ignored. A pure read: retried
// under the client's Retry policy.
func (c *Client) Diff(ctx context.Context, a, b string, opts ...Option) (*DiffResponse, error) {
	o := applyOptions(opts)
	q := url.Values{}
	q.Set("a", a)
	q.Set("b", b)
	if o.top > 0 {
		q.Set("top", strconv.Itoa(o.top))
	}
	u := c.BaseURL + "/v1/diff?" + q.Encode()
	var out DiffResponse
	err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
