package tmark

// Fault tolerance: checkpoint/resume and numerical-health guards,
// re-exported from internal/tmark.
//
// A long solve snapshots its state every K iterations and flushes a
// final snapshot when its context is cancelled:
//
//	sink := &tmark.DirSink{Dir: "ckpt", Name: "run.ckpt"}
//	res := model.RunContext(ctx, tmark.WithCheckpoint(sink, 8))
//
// A later process resumes bitwise identically:
//
//	cp, err := tmark.LoadCheckpointFile("ckpt/run.ckpt")
//	if err == nil && model.ValidateCheckpoint(cp) == nil {
//		res = model.RunContext(ctx, tmark.WithCheckpoint(sink, 8), tmark.ResumeFrom(cp))
//	}
//
// The solver always runs free numerical probes (simplex mass, finite
// residuals) and, on a corruption fault, retries once from the last
// healthy checkpoint with the assembly kernels demoted to the scalar
// reference (see WithScalarKernels). WithGuards adds the stricter
// opt-in tier: mass-drift tolerance, stagnation and divergence
// detection. A run that still ends unhealthy reports
// ReasonNumericalFault or ReasonStagnated and lists its Faults.

import (
	itmark "tmark/internal/tmark"
)

// Checkpoint is a resumable snapshot of a run's solver state.
type Checkpoint = itmark.Checkpoint

// CheckpointSink receives periodic snapshots during a run.
type CheckpointSink = itmark.CheckpointSink

// DirSink saves each snapshot atomically to Dir/Name.
type DirSink = itmark.DirSink

// MemorySink retains the most recent snapshot in memory.
type MemorySink = itmark.MemorySink

// Fault is one numerical-health incident observed during a run.
type Fault = itmark.Fault

// GuardConfig tunes the opt-in numerical-health guards; see
// DefaultGuards.
type GuardConfig = itmark.GuardConfig

// Further reasons a run can end with (see Result.Reason).
const (
	ReasonNumericalFault = itmark.ReasonNumericalFault
	ReasonStagnated      = itmark.ReasonStagnated
)

// ErrCheckpointMismatch reports a checkpoint that does not belong to
// the model it was offered to (dimensions or hyper-parameters differ).
var ErrCheckpointMismatch = itmark.ErrCheckpointMismatch

// ErrNumericalFault marks a run stopped by a numerical-health guard.
var ErrNumericalFault = itmark.ErrNumericalFault

// ErrStagnated marks a run whose residual went flat before converging.
var ErrStagnated = itmark.ErrStagnated

// DefaultGuards returns the recommended opt-in guard thresholds.
func DefaultGuards() GuardConfig { return itmark.DefaultGuards() }

// WithGuards enables the opt-in numerical-health tier for one run.
func WithGuards(g GuardConfig) RunOption { return itmark.WithGuards(g) }

// WithCheckpoint snapshots the solver state to sink every `every`
// iterations, plus a final flush when the run stops early.
func WithCheckpoint(sink CheckpointSink, every int) RunOption {
	return itmark.WithCheckpoint(sink, every)
}

// ResumeFrom restores a snapshot at the start of the run; the resumed
// run is bitwise identical to one that never stopped.
func ResumeFrom(cp *Checkpoint) RunOption { return itmark.ResumeFrom(cp) }

// WithScalarKernels(true) demotes the vectorised kernels to the scalar
// reference path for this run (the automatic numerical-fault retry
// does this itself).
func WithScalarKernels(on bool) RunOption { return itmark.WithScalarKernels(on) }

// DecodeCheckpoint parses and checksum-verifies an encoded snapshot.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return itmark.DecodeCheckpoint(data) }

// LoadCheckpointFile reads a snapshot written by Checkpoint.SaveFile
// or a DirSink.
func LoadCheckpointFile(path string) (*Checkpoint, error) { return itmark.LoadCheckpointFile(path) }
