package tmark

// The public client side of tmarkd, the warm-model classification
// service (cmd/tmarkd). The wire types are aliases of the server's own
// (internal/serve), so a program embedding the server and a program
// talking to one over HTTP share identical structs. Scores travel
// through encoding/json's shortest-round-trip float formatting: the
// float64 values a Client decodes are bitwise identical to the solver's.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"tmark/internal/serve"
)

// ClassifyRequest is one /classify query: a seed node set plus optional
// hyperparameter overrides.
type ClassifyRequest = serve.ClassifyRequest

// ClassifyResponse is one /classify answer.
type ClassifyResponse = serve.ClassifyResponse

// NodeScore is one entry of a ranked node list.
type NodeScore = serve.NodeScore

// LinkScore is one entry of a link-type ranking.
type LinkScore = serve.LinkScore

// ClassRanking is one class's slice of a /rank answer.
type ClassRanking = serve.ClassRanking

// RankResponse is a /rank answer: per-class link-type rankings.
type RankResponse = serve.RankResponse

// ServiceError is the decoded form of a non-2xx tmarkd answer.
type ServiceError struct {
	StatusCode int    // HTTP status
	Message    string // the server's error string
	// Reason is the machine-readable cause on 503s — "quarantined",
	// "draining" or "overloaded" — and empty on other statuses (or
	// against pre-reason servers).
	Reason     string
	RetryAfter time.Duration // the server's Retry-After hint, 0 when absent
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("tmarkd: %s (status %d)", e.Message, e.StatusCode)
}

// Overloaded reports whether the error is the server shedding load
// (full admission queue, draining, or a quarantined model rebuilding);
// such requests are retryable against another replica or after backoff.
func (e *ServiceError) Overloaded() bool {
	return e.StatusCode == http.StatusServiceUnavailable
}

// Temporary reports whether retrying the same request can succeed: the
// server shed it (503) or a gateway in front dropped it (502, 504). A
// Client with a Retry policy handles these itself.
func (e *ServiceError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Retry is the client's policy for transient failures: transport errors
// and temporary statuses (503 load shed or drain, 502/504 gateways)
// are retried with exponential backoff plus jitter. When the server
// sends a Retry-After hint — tmarkd stamps one on every 503 — it is
// honoured as the floor of that attempt's delay; MaxDelay caps every
// delay, hint included, so a client aimed at a long drain still fails
// over in bounded time. Every solve is a pure function of the immutable
// warm model, so retrying a /classify POST is safe.
type Retry struct {
	// MaxAttempts bounds the total tries, the first call included
	// (minimum 1; a 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry; each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps every delay, Retry-After hints included. 0 means no
	// cap.
	MaxDelay time.Duration
	// Jitter widens each delay by a uniformly random fraction of itself
	// in [0, Jitter) so synchronized clients spread out; 0 disables.
	Jitter float64
}

// DefaultRetry is the recommended client policy: four attempts, 100ms
// doubling backoff with 20% jitter, capped at 5s.
func DefaultRetry() *Retry {
	return &Retry{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, Jitter: 0.2}
}

// Delay computes the backoff before retry number retry (1-based),
// honouring the server hint as a floor and MaxDelay as the ceiling.
func (r *Retry) Delay(retry int, hint time.Duration) time.Duration {
	d := r.BaseDelay << (retry - 1)
	if d < 0 { // absurd retry counts shift into the sign bit
		d = r.MaxDelay
	}
	if hint > d {
		d = hint
	}
	if r.Jitter > 0 && d > 0 {
		d += time.Duration(rand.Float64() * r.Jitter * float64(d))
	}
	if r.MaxDelay > 0 && d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// Client talks to one tmarkd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8321".
	BaseURL string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	// Request deadlines and cancellation come from the per-call context
	// (a cancelled /classify retires the query's column server-side
	// within one solver iteration).
	HTTPClient *http.Client
	// Retry enables automatic retry of transient failures; nil performs
	// exactly one attempt per call. See DefaultRetry.
	Retry *Retry
}

// NewClient returns a Client for the server at baseURL with the default
// retry policy.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL, Retry: DefaultRetry()} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Classify runs one seed-set query and returns the scored result.
//
// Deprecated: use ClassifyModel, which addresses models by reference
// (name, name@sha256:… or sha256:…) through the /v1 surface and takes
// functional options. Classify keeps working against the frozen legacy
// /classify endpoint.
func (c *Client) Classify(ctx context.Context, req *ClassifyRequest) (*ClassifyResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out ClassifyResponse
	err = c.do(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/classify", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Rank fetches the per-class link-type rankings of a dataset from a
// full warm solve. dataset "" selects the server's default; top bounds
// each ranking (0 = all link types).
//
// Deprecated: use RankModel with WithTop, which addresses models by
// reference through the /v1 surface. Rank keeps working against the
// frozen legacy /rank endpoint.
func (c *Client) Rank(ctx context.Context, dataset string, top int) (*RankResponse, error) {
	return c.RankQuality(ctx, dataset, top, "")
}

// RankQuality is Rank with an explicit solve tier: "exact",
// "accelerated" (served from the same cached reference solve) or "fast"
// (the linearized approximate tier). "" keeps the server's default; an
// unknown spelling is rejected by the server with a 400.
//
// Deprecated: use RankModel with WithTop and WithQuality — each new
// request knob was a breaking signature change under this style, and
// RankModel ends that. RankQuality keeps working against the frozen
// legacy /rank endpoint.
func (c *Client) RankQuality(ctx context.Context, dataset string, top int, quality string) (*RankResponse, error) {
	q := url.Values{}
	if dataset != "" {
		q.Set("dataset", dataset)
	}
	if top > 0 {
		q.Set("top", strconv.Itoa(top))
	}
	if quality != "" {
		q.Set("quality", quality)
	}
	u := c.BaseURL + "/rank"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	var out RankResponse
	err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready reports nil when the server is accepting work, and a
// ServiceError (Overloaded() == true while draining) otherwise. A
// readiness probe answers "now", so Ready never retries — callers poll
// it on their own schedule.
func (c *Client) Ready(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	return c.once(hreq, nil)
}

// do runs one logical call through the retry policy: newReq mints a
// fresh request per attempt (bodies are single-use), transient failures
// back off and retry, and anything else — including a cancelled
// context — returns immediately.
func (c *Client) do(ctx context.Context, newReq func() (*http.Request, error), out any) error {
	attempts := 1
	if c.Retry != nil && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	var err error
	for attempt := 1; ; attempt++ {
		req, rerr := newReq()
		if rerr != nil {
			return rerr
		}
		err = c.once(req, out)
		if err == nil || attempt >= attempts || !transient(err) {
			return err
		}
		var hint time.Duration
		var se *ServiceError
		if errors.As(err, &se) {
			hint = se.RetryAfter
		}
		timer := time.NewTimer(c.Retry.Delay(attempt, hint))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}

// transient reports whether a failed attempt is worth retrying: a
// temporary ServiceError (503/502/504) or a transport error on a live
// context (a refused or dropped connection — the flapping-server case).
func transient(err error) bool {
	var se *ServiceError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return ue.Err != context.Canceled && ue.Err != context.DeadlineExceeded
	}
	return false
}

// once executes the request and decodes either the expected body into
// out or the server's error envelope into a ServiceError.
func (c *Client) once(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := http.StatusText(resp.StatusCode)
		var envelope serve.ErrorResponse
		if body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
				msg = envelope.Error
			}
		}
		return &ServiceError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			Reason:     envelope.Reason,
			RetryAfter: retryAfterHint(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("tmarkd: decode response: %w", err)
	}
	return nil
}

// retryAfterHint parses a Retry-After header: delay-seconds or an
// HTTP-date; malformed or absent values yield 0.
func retryAfterHint(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
