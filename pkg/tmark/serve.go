package tmark

// The public client side of tmarkd, the warm-model classification
// service (cmd/tmarkd). The wire types are aliases of the server's own
// (internal/serve), so a program embedding the server and a program
// talking to one over HTTP share identical structs. Scores travel
// through encoding/json's shortest-round-trip float formatting: the
// float64 values a Client decodes are bitwise identical to the solver's.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"tmark/internal/serve"
)

// ClassifyRequest is one /classify query: a seed node set plus optional
// hyperparameter overrides.
type ClassifyRequest = serve.ClassifyRequest

// ClassifyResponse is one /classify answer.
type ClassifyResponse = serve.ClassifyResponse

// NodeScore is one entry of a ranked node list.
type NodeScore = serve.NodeScore

// LinkScore is one entry of a link-type ranking.
type LinkScore = serve.LinkScore

// ClassRanking is one class's slice of a /rank answer.
type ClassRanking = serve.ClassRanking

// RankResponse is a /rank answer: per-class link-type rankings.
type RankResponse = serve.RankResponse

// ServiceError is the decoded form of a non-2xx tmarkd answer.
type ServiceError struct {
	StatusCode int    // HTTP status
	Message    string // the server's error string
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("tmarkd: %s (status %d)", e.Message, e.StatusCode)
}

// Overloaded reports whether the error is the server shedding load
// (full admission queue or draining); such requests are retryable
// against another replica or after backoff.
func (e *ServiceError) Overloaded() bool {
	return e.StatusCode == http.StatusServiceUnavailable
}

// Client talks to one tmarkd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8321".
	BaseURL string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	// Request deadlines and cancellation come from the per-call context
	// (a cancelled /classify retires the query's column server-side
	// within one solver iteration).
	HTTPClient *http.Client
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Classify runs one seed-set query and returns the scored result.
func (c *Client) Classify(ctx context.Context, req *ClassifyRequest) (*ClassifyResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/classify", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var out ClassifyResponse
	if err := c.do(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rank fetches the per-class link-type rankings of a dataset from a
// full warm solve. dataset "" selects the server's default; top bounds
// each ranking (0 = all link types).
func (c *Client) Rank(ctx context.Context, dataset string, top int) (*RankResponse, error) {
	q := url.Values{}
	if dataset != "" {
		q.Set("dataset", dataset)
	}
	if top > 0 {
		q.Set("top", strconv.Itoa(top))
	}
	u := c.BaseURL + "/rank"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	var out RankResponse
	if err := c.do(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready reports nil when the server is accepting work, and a
// ServiceError (Overloaded() == true while draining) otherwise.
func (c *Client) Ready(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	return c.do(hreq, nil)
}

// do executes the request and decodes either the expected body into out
// or the server's error envelope into a ServiceError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := http.StatusText(resp.StatusCode)
		var envelope serve.ErrorResponse
		if body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); err == nil {
			if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
				msg = envelope.Error
			}
		}
		return &ServiceError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("tmarkd: decode response: %w", err)
	}
	return nil
}
