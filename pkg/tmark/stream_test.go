package tmark_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmark/internal/serve"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

// newStreamServer is newClientServer plus a model directory, so ingest
// seals versions and diff can resolve them.
func newStreamServer(t *testing.T) *tmark.Client {
	t.Helper()
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	s, err := serve.New(serve.Options{
		Datasets: map[string]*hin.Graph{"toy": clientGraph()},
		Config:   cfg,
		ModelDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return tmark.NewClient(ts.URL)
}

func TestClientIngestDiff(t *testing.T) {
	c := newStreamServer(t)
	ctx := context.Background()

	r1, err := c.Ingest(ctx, "", []tmark.Delta{
		{Op: tmark.OpAdd, From: 0, To: 3, Relation: 0, Weight: 0.5},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if r1.Model != "toy" || r1.Seq != 1 || !r1.Sealed {
		t.Fatalf("first ingest: %+v", r1)
	}
	if !strings.HasPrefix(r1.NewHash, "sha256:") || r1.NewHash == r1.OldHash {
		t.Fatalf("first ingest hashes: %q -> %q", r1.OldHash, r1.NewHash)
	}
	r2, err := c.Ingest(ctx, "toy", []tmark.Delta{
		{Op: tmark.OpUpdate, From: 0, To: 3, Relation: 0, Weight: 2},
	})
	if err != nil {
		t.Fatalf("second Ingest: %v", err)
	}
	if r2.Seq != 2 || r2.OldHash != r1.NewHash || !r2.Warm {
		t.Fatalf("second ingest: %+v", r2)
	}

	d, err := c.Diff(ctx, r1.NewHash, r2.NewHash)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if d.Nodes != 12 || d.AHash != r1.NewHash || d.BHash != r2.NewHash {
		t.Fatalf("Diff: %+v", d)
	}
	if same, err := c.Diff(ctx, r2.NewHash, r2.NewHash, tmark.WithTop(1)); err != nil {
		t.Fatalf("self Diff: %v", err)
	} else if len(same.Flips) != 0 || len(same.Shifts) != 0 {
		t.Fatalf("self diff not empty: %+v", same)
	}
}

func TestClientIngestErrors(t *testing.T) {
	c := newStreamServer(t)
	ctx := context.Background()

	if _, err := c.Ingest(ctx, "", nil); err == nil {
		t.Fatalf("empty batch accepted")
	}
	var se *tmark.ServiceError
	if _, err := c.Ingest(ctx, "ghost", []tmark.Delta{{Op: tmark.OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}}); !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := c.Diff(ctx, "ghost", "ghost"); err == nil {
		t.Fatalf("unknown diff refs accepted")
	}
}

// TestClientIngestRetriesWithStableKey pins the idempotency contract:
// Ingest retries transient 503s under the policy, and every attempt of
// one logical call carries the same Idempotency-Key — the server-side
// dedup that makes the retry safe even if an earlier attempt committed.
func TestClientIngestRetriesWithStableKey(t *testing.T) {
	var hits atomic.Int64
	var mu sync.Mutex
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"draining","reason":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := tmark.NewClient(ts.URL)
	c.Retry = &tmark.Retry{MaxAttempts: 3, BaseDelay: time.Millisecond}

	var se *tmark.ServiceError
	_, err := c.Ingest(context.Background(), "", []tmark.Delta{{Op: tmark.OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}})
	if !errors.As(err, &se) || !se.Overloaded() {
		t.Fatalf("Ingest error: %v", err)
	}
	if se.Reason != "draining" {
		t.Fatalf("503 reason = %q, want draining", se.Reason)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("Ingest hit the server %d times, want the policy's 3", got)
	}
	if keys[0] == "" {
		t.Fatal("Ingest sent no Idempotency-Key")
	}
	for i, k := range keys {
		if k != keys[0] {
			t.Fatalf("attempt %d changed the Idempotency-Key: %q vs %q", i+1, k, keys[0])
		}
	}

	// A second logical call must NOT reuse the first call's auto key —
	// identical batches sent twice on purpose are two batches.
	mu.Lock()
	first := keys[0]
	keys = nil
	mu.Unlock()
	_, _ = c.Ingest(context.Background(), "", []tmark.Delta{{Op: tmark.OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}})
	mu.Lock()
	second := keys[0]
	mu.Unlock()
	if second == first {
		t.Fatalf("two Ingest calls shared the auto-generated key %q", first)
	}

	// A pinned key is sent verbatim.
	mu.Lock()
	keys = nil
	mu.Unlock()
	_, _ = c.Ingest(context.Background(), "", []tmark.Delta{{Op: tmark.OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}},
		tmark.WithIdempotencyKey("job-42"))
	mu.Lock()
	pinned := keys[0]
	mu.Unlock()
	if pinned != "job-42" {
		t.Fatalf("pinned Idempotency-Key sent as %q", pinned)
	}
}
