package tmark

// White-box tests of the consistent-hash replica ring: keyspace
// balance, remap locality when the fleet changes, and health-aware
// failover with the clock under test control.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewReplicaSetValidation(t *testing.T) {
	if _, err := NewReplicaSet(nil, nil); err == nil {
		t.Fatalf("empty fleet accepted")
	}
	if _, err := NewReplicaSet([]string{"http://a", ""}, nil); err == nil {
		t.Fatalf("empty URL accepted")
	}
	if _, err := NewReplicaSet([]string{"http://a", "http://a"}, nil); err == nil {
		t.Fatalf("duplicate URL accepted")
	}
}

// Every replica must own a sane share of the keyspace: with 64 virtual
// points each, no replica of four should stray far from 25%.
func TestRingDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	rs, err := NewReplicaSet(urls, nil)
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		seq := rs.sequence(fmt.Sprintf("model@sha256:%08d", i))
		counts[seq[0].url]++
	}
	for _, u := range urls {
		share := float64(counts[u]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("replica %s owns %.1f%% of the keyspace, want a sane share of 25%%", u, 100*share)
		}
	}
}

// Routing must be a pure function of (fleet, key): two independently
// built rings over the same URLs agree on every route, and the
// failover order is deterministic too — that is what lets every client
// in a fleet compute the same placement with no coordination.
func TestRingDeterminism(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	rs1, _ := NewReplicaSet(urls, nil)
	rs2, _ := NewReplicaSet([]string{urls[2], urls[0], urls[1]}, nil) // order must not matter
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sha256:%04x", i)
		s1, s2 := rs1.sequence(key), rs2.sequence(key)
		for j := range s1 {
			if s1[j].url != s2[j].url {
				t.Fatalf("key %q: ring order disagrees at position %d: %s vs %s", key, j, s1[j].url, s2[j].url)
			}
		}
	}
}

// Removing one replica of four must remap only the removed replica's
// keys: every key that routed elsewhere keeps its route. This is the
// consistent-hash property that makes rolling restarts cheap.
func TestRingRemapLocality(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	rsAll, _ := NewReplicaSet(all, nil)
	rsLess, _ := NewReplicaSet(all[:3], nil)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("model-%d@sha256:%08x", i%7, i)
		before := rsAll.sequence(key)[0].url
		after := rsLess.sequence(key)[0].url
		if before == all[3] {
			continue // its owner left; any new route is correct
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d/%d keys not owned by the removed replica changed routes, want 0", moved, keys)
	}
}

// fakeReplica is one httptest-backed fleet member whose failure mode
// the test flips at runtime.
type fakeReplica struct {
	srv  *httptest.Server
	fail atomic.Bool
	hits atomic.Int64
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if f.fail.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"converged":true}`)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// ringFixture builds a two-replica fleet with no per-client retry (the
// ring's failover is the subject under test) and a fake clock.
func ringFixture(t *testing.T) (*ReplicaSet, map[string]*fakeReplica, *time.Time) {
	t.Helper()
	a, b := newFakeReplica(t), newFakeReplica(t)
	byURL := map[string]*fakeReplica{a.srv.URL: a, b.srv.URL: b}
	rs, err := NewReplicaSet([]string{a.srv.URL, b.srv.URL}, &Client{})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	now := time.Unix(1700000000, 0)
	rs.now = func() time.Time { return now }
	return rs, byURL, &now
}

func TestReplicaFailover(t *testing.T) {
	rs, byURL, now := ringFixture(t)
	const model = "dblp@sha256:0011223344556677"
	seq := rs.sequence(model)
	primary, backup := byURL[seq[0].url], byURL[seq[1].url]

	// Healthy fleet: the primary answers, the backup is never touched.
	if _, err := rs.ClassifyModel(context.Background(), model, []int{0}); err != nil {
		t.Fatalf("ClassifyModel: %v", err)
	}
	if primary.hits.Load() != 1 || backup.hits.Load() != 0 {
		t.Fatalf("healthy routing hit primary %d / backup %d times, want 1/0", primary.hits.Load(), backup.hits.Load())
	}

	// Primary down: the call fails over to the backup and still succeeds.
	primary.fail.Store(true)
	resp, err := rs.ClassifyModel(context.Background(), model, []int{0})
	if err != nil {
		t.Fatalf("ClassifyModel with primary down: %v", err)
	}
	if !resp.Converged {
		t.Fatalf("failover response not decoded")
	}
	if primary.hits.Load() != 2 || backup.hits.Load() != 1 {
		t.Fatalf("failover hit primary %d / backup %d times, want 2/1", primary.hits.Load(), backup.hits.Load())
	}

	// The failed primary is cooling down: the next call skips it.
	if _, err := rs.ClassifyModel(context.Background(), model, []int{0}); err != nil {
		t.Fatalf("ClassifyModel during cooldown: %v", err)
	}
	if primary.hits.Load() != 2 || backup.hits.Load() != 2 {
		t.Fatalf("cooldown routing hit primary %d / backup %d times, want 2/2", primary.hits.Load(), backup.hits.Load())
	}
	if rs.Pick(model).BaseURL != seq[1].url {
		t.Fatalf("Pick during cooldown returned the downed primary")
	}

	// After the cooldown the recovered primary is probed and, on
	// success, owns the key again.
	primary.fail.Store(false)
	*now = now.Add(rs.Cooldown + time.Second)
	if _, err := rs.ClassifyModel(context.Background(), model, []int{0}); err != nil {
		t.Fatalf("ClassifyModel after cooldown: %v", err)
	}
	if primary.hits.Load() != 3 || backup.hits.Load() != 2 {
		t.Fatalf("recovery routing hit primary %d / backup %d times, want 3/2", primary.hits.Load(), backup.hits.Load())
	}
}

// A fleet-wide outage surfaces the last transient error — and the
// second-chance pass means a fully cooled-down fleet is still tried
// rather than failed client-side.
func TestReplicaFleetDown(t *testing.T) {
	rs, byURL, _ := ringFixture(t)
	for _, f := range byURL {
		f.fail.Store(true)
	}
	_, err := rs.ClassifyModel(context.Background(), "sha256:aa", []int{0})
	var se *ServiceError
	if !errors.As(err, &se) || !se.Overloaded() {
		t.Fatalf("fleet-down error = %v, want the replicas' 503", err)
	}
	for url, f := range byURL {
		if f.hits.Load() != 1 {
			t.Fatalf("replica %s saw %d calls, want 1", url, f.hits.Load())
		}
	}
	// Every replica is now cooling down; the second-chance pass still
	// reaches one once it recovers.
	for _, f := range byURL {
		f.fail.Store(false)
	}
	if _, err := rs.ClassifyModel(context.Background(), "sha256:aa", []int{0}); err != nil {
		t.Fatalf("cooled-down fleet not retried: %v", err)
	}
}

// Non-transient failures must not fail over: every replica would
// answer a 404 identically, so the first answer stands.
func TestReplicaNonTransientNoFailover(t *testing.T) {
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no such model"}`, http.StatusNotFound)
	}))
	t.Cleanup(notFound.Close)
	other := newFakeReplica(t)
	rs, err := NewReplicaSet([]string{notFound.URL, other.srv.URL}, &Client{})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	// Force the 404 server primary for this key by walking keys until
	// it owns one.
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("sha256:%04d", i)
		if rs.sequence(k)[0].url == notFound.URL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatalf("no key routed to the 404 replica")
	}
	_, err = rs.ClassifyModel(context.Background(), key, []int{0})
	var se *ServiceError
	if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want the primary's 404", err)
	}
	if other.hits.Load() != 0 {
		t.Fatalf("404 failed over to the backup (%d hits)", other.hits.Load())
	}
}
