// Package tmark is the public interface to the T-Mark algorithm: tensor-
// based Markov chain collective classification and link ranking for
// heterogeneous information networks, as published by Han, Chen, Tan, Ng
// and Wu. It re-exports the implementation in internal/tmark.
//
// Classify a network built with package hin:
//
//	model, err := tmark.New(g, tmark.DefaultConfig())
//	if err != nil { ... }
//	res := model.Run()
//	classes := res.Predict()          // argmax class per node
//	ranking := res.LinkRanking(0)     // link types ranked for class 0
//
// The Config fields follow the paper: Alpha is the restart probability of
// the labelled seeds, Gamma balances the feature-similarity channel
// against the relational tensor, Lambda is the ICA confidence threshold,
// and ICAUpdate toggles between T-Mark (true) and its TensorRrCc
// predecessor (false). RunWarm continues from a previous solution when
// labels change incrementally.
//
// # Concurrency
//
// Config.Workers bounds the compute concurrency: the hot-loop kernels
// (tensor contractions and the feature-matrix product) and the cosine
// construction are sharded across a pool of that many workers. 0 uses
// GOMAXPROCS, 1 runs fully serial; results are deterministic for any
// fixed value. WithWorkers overrides the configured count for a single
// run.
//
// Independently of the worker pool, Run advances all classes at once
// through blocked (SpMM-style) kernels, so every tensor entry is
// streamed once per iteration rather than once per class;
// WithBatchedClasses(false) selects the sequential per-class reference
// path, which computes bitwise identical results.
//
// # Cancellation and telemetry
//
// RunContext and RunWarmContext accept a context.Context checked between
// iterations, so a run stops within one iteration of cancellation or a
// deadline and returns a partial — but fully usable — Result whose
// Stopped field holds the context error and whose Reason field records
// why the run ended:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	var st tmark.RunStats
//	res := model.RunContext(ctx, tmark.WithStats(&st),
//		tmark.WithProgress(func(class, iter int, rho float64) { ... }))
//	if res.Stopped != nil { ... } // deadline or cancellation; Predict still works
//	fmt.Print(st.String())        // per-kernel wall-time split, pool activity
//
// WithStats fills a RunStats with the run's wall time, per-class
// iteration counts and residual traces, and the wall-time split across
// the compute kernels (the two tensor contractions, the feature-matrix
// product and the ICA reseed). Collection never changes numeric results
// and a disabled collector costs only nil-check branches.
package tmark

import (
	"io"

	ihin "tmark/internal/hin"
	itmark "tmark/internal/tmark"
)

// Config holds the algorithm's hyper-parameters.
type Config = itmark.Config

// Model is a solver bound to one network.
type Model = itmark.Model

// Result bundles the per-class stationary solutions.
type Result = itmark.Result

// ClassResult is one class's stationary solution.
type ClassResult = itmark.ClassResult

// RelationScore pairs a relation (or node) index with its score.
type RelationScore = itmark.RelationScore

// Explanation attributes one node's score for one class to its
// neighbourhood, feature channel and seed restart.
type Explanation = itmark.Explanation

// RunOption configures a single RunContext / RunWarmContext call.
type RunOption = itmark.RunOption

// Quality selects a solve tier: exact fixed-point iteration, the
// extrapolated power method (identical predictions, fewer iterations)
// or the linearized approximate tier.
type Quality = itmark.Quality

// The solve tiers. QualityDefault inherits the run's WithAcceleration /
// WithApproximate options.
const (
	QualityDefault     = itmark.QualityDefault
	QualityExact       = itmark.QualityExact
	QualityAccelerated = itmark.QualityAccelerated
	QualityFast        = itmark.QualityFast
)

// ParseQuality maps the wire spelling ("exact", "accelerated", "fast",
// or "" for the default) to its tier; anything else is an error.
func ParseQuality(s string) (Quality, error) { return itmark.ParseQuality(s) }

// RunStats is the telemetry record of one run; pass via WithStats.
type RunStats = itmark.RunStats

// ClassStats summarises one class's iteration history within a run.
type ClassStats = itmark.ClassStats

// KernelStats is the per-kernel slice of a run's wall time.
type KernelStats = itmark.KernelStats

// Kernel identifies one of the solver's compute kernels.
type Kernel = itmark.Kernel

// Reason records why a run ended (see the Reason* constants).
type Reason = itmark.Reason

// Reasons a run can end with, reported in Result.Reason.
const (
	ReasonUnknown       = itmark.ReasonUnknown
	ReasonConverged     = itmark.ReasonConverged
	ReasonMaxIterations = itmark.ReasonMaxIterations
	ReasonCanceled      = itmark.ReasonCanceled
	ReasonDeadline      = itmark.ReasonDeadline
)

// DefaultConfig returns the paper's default hyper-parameters.
func DefaultConfig() Config { return itmark.DefaultConfig() }

// New builds a model for the graph; labelled nodes are the training seeds.
func New(g *ihin.Graph, cfg Config) (*Model, error) { return itmark.New(g, cfg) }

// WithStats makes the run fill s with telemetry (wall time, per-kernel
// split, per-class iteration traces, pool activity, allocation delta).
func WithStats(s *RunStats) RunOption { return itmark.WithStats(s) }

// WithProgress invokes fn after every (class, iteration) step with the
// residual rho; cancelling the run's context from fn stops the run
// within one iteration.
func WithProgress(fn func(class, iter int, rho float64)) RunOption {
	return itmark.WithProgress(fn)
}

// WithWorkers overrides Config.Workers for this run; n <= 0 keeps the
// configured value.
func WithWorkers(n int) RunOption { return itmark.WithWorkers(n) }

// WithBatchedClasses selects between the batched multi-class solver (on,
// the default) and the sequential per-class reference path (off). The
// batched solver keeps the per-class distributions in one blocked n×q
// matrix and advances every class per kernel pass, so each tensor entry
// and CSR row is streamed once per iteration instead of q times;
// converged classes retire from the active column set. Per class both
// paths produce bitwise identical results for a fixed worker count — the
// sequential path exists as the reference to verify against and for the
// per-class cancellation semantics it implies (see the internal
// WithBatchedClasses documentation).
func WithBatchedClasses(on bool) RunOption { return itmark.WithBatchedClasses(on) }

// WithAcceleration turns the extrapolated power method on for this run:
// periodically a jump candidate is extrapolated from the iterate history
// and vetted through one ordinary iteration pass (finite, mass-
// conserving, residual strictly decreasing); a rejected candidate falls
// back to plain iteration from the last committed state, so answers
// keep the exact tier's guarantees while converged in fewer iterations.
func WithAcceleration(on bool) RunOption { return itmark.WithAcceleration(on) }

// WithApproximate selects the linearized fast tier for this run: the
// relation distribution is frozen at uniform, collapsing the tensor
// fixed point into one sparse linear solve per class. Approximate — see
// the internal documentation for the accuracy bound — and incompatible
// with checkpoint resume.
func WithApproximate(on bool) RunOption { return itmark.WithApproximate(on) }

// ReadResultJSON decodes a Result written by Result.WriteJSON.
func ReadResultJSON(rd io.Reader) (*Result, error) { return itmark.ReadResultJSON(rd) }

// LoadResultFile reads a Result saved with Result.SaveFile.
func LoadResultFile(path string) (*Result, error) { return itmark.LoadResultFile(path) }
