// Package tmark is the public interface to the T-Mark algorithm: tensor-
// based Markov chain collective classification and link ranking for
// heterogeneous information networks, as published by Han, Chen, Tan, Ng
// and Wu. It re-exports the implementation in internal/tmark.
//
// Classify a network built with package hin:
//
//	model, err := tmark.New(g, tmark.DefaultConfig())
//	if err != nil { ... }
//	res := model.Run()
//	classes := res.Predict()          // argmax class per node
//	ranking := res.LinkRanking(0)     // link types ranked for class 0
//
// The Config fields follow the paper: Alpha is the restart probability of
// the labelled seeds, Gamma balances the feature-similarity channel
// against the relational tensor, Lambda is the ICA confidence threshold,
// and ICAUpdate toggles between T-Mark (true) and its TensorRrCc
// predecessor (false). RunWarm continues from a previous solution when
// labels change incrementally.
//
// Config.Workers bounds the compute concurrency: the hot-loop kernels
// (tensor contractions and the feature-matrix product) and the cosine
// construction are sharded across a pool of that many workers. 0 uses
// GOMAXPROCS, 1 runs fully serial; results are deterministic for any
// fixed value.
package tmark

import (
	ihin "tmark/internal/hin"
	itmark "tmark/internal/tmark"
)

// Config holds the algorithm's hyper-parameters.
type Config = itmark.Config

// Model is a solver bound to one network.
type Model = itmark.Model

// Result bundles the per-class stationary solutions.
type Result = itmark.Result

// ClassResult is one class's stationary solution.
type ClassResult = itmark.ClassResult

// RelationScore pairs a relation (or node) index with its score.
type RelationScore = itmark.RelationScore

// DefaultConfig returns the paper's default hyper-parameters.
func DefaultConfig() Config { return itmark.DefaultConfig() }

// New builds a model for the graph; labelled nodes are the training seeds.
func New(g *ihin.Graph, cfg Config) (*Model, error) { return itmark.New(g, cfg) }
