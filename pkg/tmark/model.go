package tmark

// The /v1 model-reference client surface. ClassifyModel and RankModel
// address models the way the server names them — "dblp",
// "dblp@sha256:…" or a bare "sha256:…" content hash — and take
// functional options instead of positional knobs, so adding a request
// parameter never breaks a caller again. The older Classify/Rank/
// RankQuality methods keep working against the frozen legacy endpoints.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"

	"tmark/internal/serve"
)

// callOptions collects everything an Option can set. One option type
// serves both call shapes; options that a call has no use for are
// simply ignored (WithScores on RankModel, for instance).
type callOptions struct {
	quality  string
	top      int
	scores   bool
	ica      bool
	topLinks int

	alpha, gamma, lambda, epsilon *float64
	maxIterations                 *int

	idempotencyKey string
}

// Option configures one ClassifyModel or RankModel call.
type Option func(*callOptions)

func applyOptions(opts []Option) callOptions {
	var o callOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithQuality selects the solve tier: "exact", "accelerated" or
// "fast". The default (absent this option) is the server's default
// tier; an unknown spelling is rejected server-side with a 400, never
// silently defaulted.
func WithQuality(quality string) Option {
	return func(o *callOptions) { o.quality = quality }
}

// WithTop bounds the primary ranked list of the answer: the top link
// types per class for RankModel, the top scored nodes for
// ClassifyModel. 0 keeps the server default.
func WithTop(n int) Option {
	return func(o *callOptions) { o.top = n }
}

// WithIdempotencyKey pins the Idempotency-Key an Ingest call sends (at
// most 256 bytes). The server remembers the keys of applied batches, so
// a resend under the same key — a client retry, a replayed job — returns
// the originally sealed version instead of applying the batch twice.
// Absent this option, Ingest mints a random key per call, which makes
// its own automatic retries safe; supply an explicit key when retries
// span processes (a work queue redelivering the batch, for instance).
// Ignored by every call except Ingest.
func WithIdempotencyKey(key string) Option {
	return func(o *callOptions) { o.idempotencyKey = key }
}

// WithScores asks ClassifyModel for the full per-node score vector,
// bitwise identical to the solver's floats. Ignored by RankModel.
func WithScores() Option {
	return func(o *callOptions) { o.scores = true }
}

// WithICA enables the per-query self-training reseed, with the query's
// seed set playing the role of the labelled set. Ignored by RankModel.
func WithICA() Option {
	return func(o *callOptions) { o.ica = true }
}

// WithTopLinks bounds ClassifyModel's link-type ranking (default: all
// link types). Ignored by RankModel, whose bound is WithTop.
func WithTopLinks(n int) Option {
	return func(o *callOptions) { o.topLinks = n }
}

// WithAlpha overrides the restart probability α for this call. The
// override selects a different warm model server-side.
func WithAlpha(alpha float64) Option {
	return func(o *callOptions) { o.alpha = &alpha }
}

// WithGamma overrides the feature-channel scale γ for this call.
func WithGamma(gamma float64) Option {
	return func(o *callOptions) { o.gamma = &gamma }
}

// WithLambda overrides the ICA confidence threshold λ for this call.
func WithLambda(lambda float64) Option {
	return func(o *callOptions) { o.lambda = &lambda }
}

// WithEpsilon overrides the convergence threshold ε for this call.
func WithEpsilon(epsilon float64) Option {
	return func(o *callOptions) { o.epsilon = &epsilon }
}

// WithMaxIterations overrides the solve's iteration budget.
func WithMaxIterations(n int) Option {
	return func(o *callOptions) { o.maxIterations = &n }
}

// ClassifyModel runs one seed-set query against the referenced model
// via POST /v1/classify. model is a name, a pinned name@sha256:… or a
// bare sha256:… content hash; "" selects the server's default. The
// response's ModelHash is the content identity of the substrate that
// answered — pin it to keep getting bit-identical results.
func (c *Client) ClassifyModel(ctx context.Context, model string, seeds []int, opts ...Option) (*ClassifyResponse, error) {
	o := applyOptions(opts)
	req := &ClassifyRequest{
		Model:    model,
		Seeds:    seeds,
		Quality:  o.quality,
		Scores:   o.scores,
		ICA:      o.ica,
		TopNodes: o.top,
		TopLinks: o.topLinks,
		Alpha:    o.alpha, Gamma: o.gamma, Lambda: o.lambda,
		Epsilon: o.epsilon, MaxIterations: o.maxIterations,
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out ClassifyResponse
	err = c.do(ctx, func() (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/classify", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// RankModel fetches the per-class link-type rankings of the referenced
// model from a full warm solve via GET /v1/rank. model follows the
// same reference grammar as ClassifyModel; "" selects the server's
// default. Relevant options: WithTop, WithQuality.
func (c *Client) RankModel(ctx context.Context, model string, opts ...Option) (*RankResponse, error) {
	o := applyOptions(opts)
	q := url.Values{}
	if model != "" {
		q.Set("model", model)
	}
	if o.top > 0 {
		q.Set("top", strconv.Itoa(o.top))
	}
	if o.quality != "" {
		q.Set("quality", o.quality)
	}
	u := c.BaseURL + "/v1/rank"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	var out RankResponse
	err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ModelInfo is one entry of a ListModels answer: a resolvable model's
// name, content hash and serving source.
type ModelInfo = serve.ModelInfo

// ListModels enumerates every model the server can resolve — loaded
// graphs, registry names and untagged blobs — via GET /v1/models.
func (c *Client) ListModels(ctx context.Context) ([]ModelInfo, error) {
	var out serve.ModelsResponse
	err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	}, &out)
	if err != nil {
		return nil, err
	}
	return out.Models, nil
}
