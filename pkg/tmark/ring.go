package tmark

// Replica routing. A warm tmarkd fleet serves one immutable model from
// every replica, so any replica can answer any query — but cache
// affinity still matters: each replica warms models on demand, and a
// client that sprays references across the fleet forces every replica
// to warm every model. A ReplicaSet routes by consistent hash over the
// model reference (pin models by content hash — name@sha256:… — and
// the same replica keeps answering the same model until the fleet
// changes), with health-aware failover: a replica that fails a call
// transiently sits out a cooldown while the call proceeds around the
// ring to the next distinct replica.
//
// The ring is the classic sorted-points construction: every replica
// contributes ringVNodes virtual points (SHA-256 of "url#i"), a key
// hashes onto the circle, and the owner is the first point clockwise.
// Adding or removing one replica of R therefore remaps only ~1/R of
// the key space — a rolling restart does not flush every replica's
// warm cache, it shifts one replica's share.

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// ErrNoReplicas reports a ReplicaSet call with every replica either
// failed this call or sitting in its failure cooldown.
var ErrNoReplicas = errors.New("tmark: no replica available")

// ringVNodes is the virtual-point count per replica: enough that the
// keyspace split stays within a few percent of even for small fleets,
// small enough that ring construction stays microseconds.
const ringVNodes = 64

// DefaultReplicaCooldown is how long a replica sits out of primary
// routing after a transiently failed call before it is probed again.
const DefaultReplicaCooldown = 10 * time.Second

// replica is one fleet member: its client plus its health word.
type replica struct {
	url    string
	client *Client
	// downUntil is the unix-nano deadline of the replica's failure
	// cooldown; 0 (or any past instant) means healthy.
	downUntil atomic.Int64
}

// ringPoint is one virtual node: a position on the hash circle owned
// by a replica.
type ringPoint struct {
	hash uint64
	idx  int // index into ReplicaSet.replicas
}

// ReplicaSet routes model-addressed calls across a fleet of tmarkd
// replicas serving the same model store. Construct one with
// NewReplicaSet; the zero value is not usable. All methods are safe
// for concurrent use.
type ReplicaSet struct {
	// Cooldown is how long a replica that failed a call transiently is
	// skipped before being retried. NewReplicaSet sets
	// DefaultReplicaCooldown; 0 disables health tracking (every call
	// considers every replica).
	Cooldown time.Duration

	replicas []*replica
	points   []ringPoint
	now      func() time.Time // test seam; time.Now outside tests
}

// NewReplicaSet builds a consistent-hash ring over the replica base
// URLs. base, when non-nil, is the prototype client: each replica
// inherits its HTTPClient and Retry (BaseURL is replaced per replica).
// A nil base gives every replica NewClient defaults. Duplicate or
// empty URLs are rejected — each replica must be a distinct failover
// target.
func NewReplicaSet(urls []string, base *Client) (*ReplicaSet, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("tmark: replica set needs at least one URL")
	}
	rs := &ReplicaSet{
		Cooldown: DefaultReplicaCooldown,
		replicas: make([]*replica, 0, len(urls)),
		points:   make([]ringPoint, 0, len(urls)*ringVNodes),
		now:      time.Now,
	}
	seen := make(map[string]bool, len(urls))
	for _, u := range urls {
		if u == "" {
			return nil, fmt.Errorf("tmark: empty replica URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("tmark: duplicate replica URL %q", u)
		}
		seen[u] = true
		c := &Client{BaseURL: u, Retry: DefaultRetry()}
		if base != nil {
			c.HTTPClient, c.Retry = base.HTTPClient, base.Retry
		}
		idx := len(rs.replicas)
		rs.replicas = append(rs.replicas, &replica{url: u, client: c})
		for v := 0; v < ringVNodes; v++ {
			rs.points = append(rs.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", u, v)), idx: idx})
		}
	}
	sort.Slice(rs.points, func(i, j int) bool { return rs.points[i].hash < rs.points[j].hash })
	return rs, nil
}

// ringHash maps a string onto the hash circle. SHA-256 (truncated to
// 64 bits) rather than a fast non-cryptographic hash: ring placement
// must agree across processes and releases, and the crypto hash's
// definition never drifts.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Replicas reports the fleet size.
func (rs *ReplicaSet) Replicas() int { return len(rs.replicas) }

// sequence returns the fleet in the key's failover order: the ring
// walked clockwise from the key's position, each distinct replica
// once. The first entry is the key's primary; the rest are the
// fallbacks every client computes identically.
func (rs *ReplicaSet) sequence(key string) []*replica {
	h := ringHash(key)
	start := sort.Search(len(rs.points), func(i int) bool { return rs.points[i].hash >= h })
	seq := make([]*replica, 0, len(rs.replicas))
	taken := make([]bool, len(rs.replicas))
	for i := 0; i < len(rs.points) && len(seq) < len(rs.replicas); i++ {
		p := rs.points[(start+i)%len(rs.points)]
		if !taken[p.idx] {
			taken[p.idx] = true
			seq = append(seq, rs.replicas[p.idx])
		}
	}
	return seq
}

// Pick returns the client of the key's current route: the first
// replica in the key's failover order not sitting in a failure
// cooldown, or the primary when the whole fleet is cooling down.
// Callers that need automatic failover should prefer Do (or the
// ClassifyModel/RankModel wrappers), which advance past a replica
// that fails mid-call; Pick is the escape hatch for wiring a replica
// client into code that manages its own calls.
func (rs *ReplicaSet) Pick(model string) *Client {
	seq := rs.sequence(model)
	for _, r := range seq {
		if rs.healthy(r) {
			return r.client
		}
	}
	return seq[0].client
}

// healthy reports whether a replica is outside its failure cooldown.
func (rs *ReplicaSet) healthy(r *replica) bool {
	if rs.Cooldown <= 0 {
		return true
	}
	return rs.now().UnixNano() >= r.downUntil.Load()
}

// markDown starts a replica's failure cooldown.
func (rs *ReplicaSet) markDown(r *replica) {
	if rs.Cooldown > 0 {
		r.downUntil.Store(rs.now().Add(rs.Cooldown).UnixNano())
	}
}

// Do routes one call: walk the key's failover sequence, healthy
// replicas first, invoking call on each until one succeeds. A
// transient failure (the same test the per-client retry uses: 5xx
// overload or a transport error) marks the replica down for Cooldown
// and moves on; a non-transient failure — a 4xx, a cancelled context —
// returns immediately, because every replica would answer it the same
// way. When every replica is cooling down the sequence is tried anyway
// (a fleet-wide cooldown must not turn into a client-side outage); a
// success clears the replica's cooldown early.
func (rs *ReplicaSet) Do(ctx context.Context, model string, call func(*Client) error) error {
	seq := rs.sequence(model)
	tried := make([]bool, len(seq))
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for i, r := range seq {
			// First pass: healthy replicas only. Second pass: whoever was
			// already cooling down at the start, in the same ring order, as
			// a last resort — never a replica this call just failed.
			if tried[i] || (pass == 0 && !rs.healthy(r)) {
				continue
			}
			tried[i] = true
			if err := ctx.Err(); err != nil {
				if lastErr != nil {
					return lastErr
				}
				return err
			}
			err := call(r.client)
			if err == nil {
				r.downUntil.Store(0)
				return nil
			}
			if !transient(err) {
				return err
			}
			rs.markDown(r)
			lastErr = err
		}
	}
	if lastErr != nil {
		return lastErr
	}
	return ErrNoReplicas
}

// ClassifyModel is Client.ClassifyModel routed through the ring: the
// model reference picks the replica, and transient failures fail over
// around the ring. Pin models by content hash (name@sha256:… or bare
// sha256:…) for stable routing — a mutable name routes by its
// spelling, not by what it currently resolves to.
func (rs *ReplicaSet) ClassifyModel(ctx context.Context, model string, seeds []int, opts ...Option) (*ClassifyResponse, error) {
	var out *ClassifyResponse
	err := rs.Do(ctx, model, func(c *Client) error {
		resp, err := c.ClassifyModel(ctx, model, seeds, opts...)
		if err == nil {
			out = resp
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RankModel is Client.RankModel routed through the ring, with the same
// failover behaviour as ClassifyModel.
func (rs *ReplicaSet) RankModel(ctx context.Context, model string, opts ...Option) (*RankResponse, error) {
	var out *RankResponse
	err := rs.Do(ctx, model, func(c *Client) error {
		resp, err := c.RankModel(ctx, model, opts...)
		if err == nil {
			out = resp
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
