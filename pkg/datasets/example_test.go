package datasets_test

import (
	"fmt"

	"tmark/pkg/datasets"
)

// Generate the paper's evaluation networks at their default sizes.
func Example() {
	dblp := datasets.DBLP(datasets.DefaultDBLPConfig(1))
	movies := datasets.Movies(datasets.DefaultMoviesConfig(1))
	nus := datasets.NUS(datasets.DefaultNUSConfig(1), datasets.Tagset1())
	acm := datasets.ACM(datasets.DefaultACMConfig(1))
	fmt.Printf("DBLP:   %d nodes, %d link types, %d classes\n", dblp.N(), dblp.M(), dblp.Q())
	fmt.Printf("Movies: %d nodes, %d link types, %d classes\n", movies.N(), movies.M(), movies.Q())
	fmt.Printf("NUS:    %d nodes, %d link types, %d classes\n", nus.N(), nus.M(), nus.Q())
	fmt.Printf("ACM:    %d nodes, %d link types, %d classes\n", acm.N(), acm.M(), acm.Q())
	// Output:
	// DBLP:   400 nodes, 20 link types, 4 classes
	// Movies: 400 nodes, 90 link types, 5 classes
	// NUS:    400 nodes, 41 link types, 2 classes
	// ACM:    360 nodes, 6 link types, 6 classes
}

// Build a custom network with the generic generator.
func ExampleSynth() {
	g, err := datasets.Synth(datasets.SynthConfig{
		Seed:          7,
		Classes:       []string{"cat", "dog"},
		NodesPerClass: 30,
		Vocab:         20,
		TokensPerNode: 8,
		FeatureFocus:  0.6,
		Relations: []datasets.RelationSpec{
			{Name: "friendly", Homophily: 0.9, Edges: 120},
			{Name: "random", Homophily: 0, Edges: 60},
		},
		LabelFraction: 0.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Stats())
	// Output:
	// nodes=60 relations=2 classes=2 edges=177 labeled=30 featdim=20
}
