// Package datasets exposes the synthetic evaluation networks: seeded
// generators for the DBLP, Movies, NUS-WIDE and ACM stand-ins the paper
// evaluates on, the worked bibliography example of its Section 3.2, and a
// generic stochastic-block-model-style generator for custom workloads. It
// re-exports the implementation in internal/dataset.
package datasets

import (
	idataset "tmark/internal/dataset"
	ihin "tmark/internal/hin"
)

// Re-exported configuration types.
type (
	// DBLPConfig parameterises the author-classification network.
	DBLPConfig = idataset.DBLPConfig
	// MoviesConfig parameterises the genre-prediction network.
	MoviesConfig = idataset.MoviesConfig
	// NUSConfig parameterises the image tag network.
	NUSConfig = idataset.NUSConfig
	// ACMConfig parameterises the multi-label publication network.
	ACMConfig = idataset.ACMConfig
	// SynthConfig parameterises the generic generator.
	SynthConfig = idataset.SynthConfig
	// RelationSpec describes one generic link type.
	RelationSpec = idataset.RelationSpec
	// Tag describes one NUS user tag (affinity, purity, frequency).
	Tag = idataset.Tag
)

// Naming tables of the generated networks.
var (
	// DBLPAreas lists the four research areas.
	DBLPAreas = idataset.DBLPAreas
	// DBLPConferences maps each area to its five conferences.
	DBLPConferences = idataset.DBLPConferences
	// MovieGenres lists the five genres.
	MovieGenres = idataset.MovieGenres
	// NUSClasses lists the two image concepts (Scene, Object).
	NUSClasses = idataset.NUSClasses
	// ACMIndexTerms lists the multi-label classes.
	ACMIndexTerms = idataset.ACMIndexTerms
	// ACMLinkTypes lists the six ACM relations.
	ACMLinkTypes = idataset.ACMLinkTypes
)

// Generator entry points.
func DBLP(cfg DBLPConfig) *ihin.Graph            { return idataset.DBLP(cfg) }
func Movies(cfg MoviesConfig) *ihin.Graph        { return idataset.Movies(cfg) }
func NUS(cfg NUSConfig, tags []Tag) *ihin.Graph  { return idataset.NUS(cfg, tags) }
func ACM(cfg ACMConfig) *ihin.Graph              { return idataset.ACM(cfg) }
func Synth(cfg SynthConfig) (*ihin.Graph, error) { return idataset.Synth(cfg) }

// Example returns the paper's Section 3.2 worked bibliography network.
func Example() *ihin.Graph { return idataset.Example() }

// ExampleTruth returns the worked example's ground-truth classes.
func ExampleTruth() []int { return idataset.ExampleTruth() }

// Default configurations at the experiment scale.
func DefaultDBLPConfig(seed int64) DBLPConfig     { return idataset.DefaultDBLPConfig(seed) }
func DefaultMoviesConfig(seed int64) MoviesConfig { return idataset.DefaultMoviesConfig(seed) }
func DefaultNUSConfig(seed int64) NUSConfig       { return idataset.DefaultNUSConfig(seed) }
func DefaultACMConfig(seed int64) ACMConfig       { return idataset.DefaultACMConfig(seed) }

// Tagset1 returns the 41 purity-selected NUS tags (paper Table 6).
func Tagset1() []Tag { return idataset.Tagset1() }

// Tagset2 returns the 41 frequency-selected NUS tags (paper Table 7).
func Tagset2() []Tag { return idataset.Tagset2() }
