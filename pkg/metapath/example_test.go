package metapath_test

import (
	"fmt"

	"tmark/pkg/hin"
	"tmark/pkg/metapath"
)

// Count co-authorship-style meta-path instances: two papers are related
// when they share an author (paper —writtenBy→ author —writes→ paper).
func Example() {
	g := hin.New()
	p1 := g.AddNode("paper1", nil)
	p2 := g.AddNode("paper2", nil)
	p3 := g.AddNode("paper3", nil)
	author := g.AddNode("alice", nil)
	writtenBy := g.AddRelation("writtenBy", false)
	g.AddEdge(writtenBy, p1, author)
	g.AddEdge(writtenBy, p2, author)

	// Path writtenBy ∘ writtenBy: paper → author → paper.
	path := metapath.NewPath(writtenBy, writtenBy)
	counts := metapath.InstanceCounts(g, path)
	fmt.Printf("paper1↔paper2 instances: %v\n", counts.Count(p1, p2))
	fmt.Printf("paper1↔paper3 instances: %v\n", counts.Count(p1, p3))

	sim := metapath.PathSim(g, metapath.NewPath(writtenBy))
	fmt.Printf("PathSim(paper1, paper2) = %v\n", sim.Count(p1, p2))
	// Output:
	// paper1↔paper2 instances: 1
	// paper1↔paper3 instances: 0
	// PathSim(paper1, paper2) = 1
}
