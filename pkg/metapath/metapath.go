// Package metapath is the public interface to meta-path utilities over
// heterogeneous information networks: composing typed relations into
// multi-hop paths, counting path instances, and the PathSim similarity.
// It re-exports the implementation in internal/metapath.
package metapath

import (
	ihin "tmark/internal/hin"
	imp "tmark/internal/metapath"
)

// Path is a sequence of relation indices composed left to right.
type Path = imp.Path

// Counts holds sparse per-pair path-instance counts.
type Counts = imp.Counts

// NewPath builds a path from relation indices.
func NewPath(relations ...int) Path { return imp.NewPath(relations...) }

// InstanceCounts counts the path instances between every node pair.
func InstanceCounts(g *ihin.Graph, p Path) Counts { return imp.InstanceCounts(g, p) }

// Reach lists, per node, the distinct nodes reachable along the path.
func Reach(g *ihin.Graph, p Path) [][]int { return imp.Reach(g, p) }

// PathSim computes the symmetric meta-path similarity of Sun et al.
func PathSim(g *ihin.Graph, p Path) Counts { return imp.PathSim(g, p) }

// Enumerate lists every path up to maxLen hops.
func Enumerate(g *ihin.Graph, maxLen int) []Path { return imp.Enumerate(g, maxLen) }
