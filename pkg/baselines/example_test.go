package baselines_test

import (
	"fmt"
	"math/rand"

	"tmark/pkg/baselines"
	"tmark/pkg/datasets"
	"tmark/pkg/eval"
)

// Sweep the full nine-method suite over one split and report accuracies.
func Example() {
	cfg := datasets.DefaultDBLPConfig(3)
	cfg.AuthorsPerArea = 30
	full := datasets.DBLP(cfg)
	rng := rand.New(rand.NewSource(5))
	split := eval.StratifiedSplit(full, 0.3, rng)
	masked, truth := eval.MaskLabels(full, split)
	primary := eval.PrimaryTruth(truth)

	wins := 0
	var tmarkAcc float64
	for _, m := range baselines.All() {
		scores, err := m.Scores(masked, rand.New(rand.NewSource(9)))
		if err != nil {
			panic(err)
		}
		acc := eval.Accuracy(baselines.Predict(scores), primary, split.Test)
		if m.Name() == "T-Mark" {
			tmarkAcc = acc
		} else if acc <= tmarkAcc+0.1 {
			wins++
		}
	}
	fmt.Printf("methods swept: %d\n", len(baselines.All()))
	fmt.Printf("T-Mark competitive with the field: %v\n", wins >= 6)
	// Output:
	// methods swept: 9
	// T-Mark competitive with the field: true
}
