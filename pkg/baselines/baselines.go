// Package baselines is the public interface to the comparison methods of
// the paper's evaluation — ICA, Hcc, Hcc-ss, wvRN+RL, EMR, Highway
// Network and Graph Inception — plus adapters exposing T-Mark and
// TensorRrCc behind the same Method interface, so experiments can sweep
// all of them uniformly. It re-exports the implementation in
// internal/baselines.
package baselines

import (
	ibase "tmark/internal/baselines"
	ivec "tmark/internal/vec"
)

// Method is a node-classification algorithm under evaluation.
type Method = ibase.Method

// Concrete method types, for configuration beyond the constructors.
type (
	// ICA is the iterative classification baseline.
	ICA = ibase.ICA
	// Hcc is the meta-path collective classifier (and Hcc-ss variant).
	Hcc = ibase.Hcc
	// WVRN is weighted-vote relational neighbour with relaxation labelling.
	WVRN = ibase.WVRN
	// EMR is the per-link-type ensemble.
	EMR = ibase.EMR
	// HighwayNet is the gated network on content features.
	HighwayNet = ibase.HighwayNet
	// GraphInception is the label-propagating convolution baseline.
	GraphInception = ibase.GraphInception
	// TMark adapts the core algorithm to the Method interface.
	TMark = ibase.TMark
)

// Constructors with the experiment defaults.
func NewICA() *ICA                       { return ibase.NewICA() }
func NewHcc() *Hcc                       { return ibase.NewHcc() }
func NewHccSS() *Hcc                     { return ibase.NewHccSS() }
func NewWVRN() *WVRN                     { return ibase.NewWVRN() }
func NewEMR() *EMR                       { return ibase.NewEMR() }
func NewHighwayNet() *HighwayNet         { return ibase.NewHighwayNet() }
func NewGraphInception() *GraphInception { return ibase.NewGraphInception() }
func NewTMark() *TMark                   { return ibase.NewTMark() }
func NewTensorRrCc() *TMark              { return ibase.NewTensorRrCc() }

// All returns the paper's nine-method suite in table order.
func All() []Method { return ibase.All() }

// Predict reduces a score matrix to argmax classes per node.
func Predict(scores *ivec.Matrix) []int { return ibase.Predict(scores) }

// PredictMulti thresholds a score matrix into multi-label predictions.
func PredictMulti(scores *ivec.Matrix, share float64) [][]int {
	return ibase.PredictMulti(scores, share)
}
