// Package tune is the public interface to hyper-parameter selection:
// k-fold cross-validation over the labelled seeds picks the best α/γ/λ
// for a network, the production counterpart of the paper's manual
// parameter studies. It re-exports the implementation in internal/tune.
package tune

import (
	"math/rand"

	ihin "tmark/internal/hin"
	itmark "tmark/internal/tmark"
	itune "tmark/internal/tune"
)

// Grid enumerates candidate values per parameter.
type Grid = itune.Grid

// Point is one evaluated configuration.
type Point = itune.Point

// Result reports a tuning run, best configuration first.
type Result = itune.Result

// DefaultGrid covers the α/γ region the paper sweeps.
func DefaultGrid() Grid { return itune.DefaultGrid() }

// Tune cross-validates every grid candidate over g's labelled nodes.
func Tune(g *ihin.Graph, base itmark.Config, grid Grid, folds int, rng *rand.Rand) (*Result, error) {
	return itune.Tune(g, base, grid, folds, rng)
}
