package tune_test

import (
	"fmt"
	"math/rand"

	"tmark/pkg/datasets"
	"tmark/pkg/tmark"
	"tmark/pkg/tune"
)

// Select alpha and gamma by cross-validation over the labelled seeds.
func Example() {
	g, err := datasets.Synth(datasets.SynthConfig{
		Seed:          3,
		Classes:       []string{"x", "y"},
		NodesPerClass: 40,
		Vocab:         24,
		TokensPerNode: 8,
		FeatureFocus:  0.55,
		Relations: []datasets.RelationSpec{
			{Name: "strong", Homophily: 0.9, Edges: 300},
		},
		LabelFraction: 0.4,
	})
	if err != nil {
		panic(err)
	}
	res, err := tune.Tune(g, tmark.DefaultConfig(), tune.Grid{
		Alphas: []float64{0.5, 0.8},
		Gammas: []float64{0.3, 0.6},
	}, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidates evaluated: %d over %d folds\n", len(res.Points), res.Folds)
	fmt.Printf("best config valid: %v\n", res.Best.Validate() == nil)
	fmt.Printf("best cv accuracy reasonable: %v\n", res.Points[0].Accuracy > 0.6)
	// Output:
	// candidates evaluated: 4 over 3 folds
	// best config valid: true
	// best cv accuracy reasonable: true
}
