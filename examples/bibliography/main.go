// Bibliography: the paper's motivating scenario — classify authors into
// research areas from a DBLP-style network where conferences are the link
// types, and read the link ranking to see which venues define each area.
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tmark/pkg/datasets"
	"tmark/pkg/eval"
	"tmark/pkg/tmark"
)

func main() {
	// A 4-area author network with 20 conference link types, bag-of-words
	// title features, and three deliberately cross-area venues (CIKM, WWW,
	// CVPR) acting as noise links.
	full := datasets.DBLP(datasets.DefaultDBLPConfig(42))
	fmt.Printf("network: %v\n", full.Stats())

	// Keep 20% of the labels, hide the rest; that is the semi-supervised
	// problem T-Mark solves.
	rng := rand.New(rand.NewSource(7))
	split := eval.StratifiedSplit(full, 0.2, rng)
	masked, truth := eval.MaskLabels(full, split)

	cfg := tmark.DefaultConfig() // α=0.8, γ=0.6: the paper's DBLP setting
	model, err := tmark.New(masked, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := model.Run()

	acc := eval.Accuracy(res.Predict(), eval.PrimaryTruth(truth), split.Test)
	fmt.Printf("test accuracy with 20%% labels: %.3f\n\n", acc)

	fmt.Println("top-5 conferences per research area (link ranking):")
	for c, area := range datasets.DBLPAreas {
		fmt.Printf("  %-3s:", area)
		for _, rs := range res.LinkRanking(c)[:5] {
			fmt.Printf(" %s", masked.Relations[rs.Relation].Name)
		}
		fmt.Println()
	}

	fmt.Println("\nleast relevant venues per area (the designed noise links):")
	for c, area := range datasets.DBLPAreas {
		ranked := res.LinkRanking(c)
		fmt.Printf("  %-3s:", area)
		for _, rs := range ranked[len(ranked)-3:] {
			fmt.Printf(" %s", masked.Relations[rs.Relation].Name)
		}
		fmt.Println()
	}
}
