// Multilabel: the ACM scenario — publications carrying several index
// terms, classified with T-Mark's multi-label output, plus the Fig. 5
// style link-type importance profile.
//
//	go run ./examples/multilabel
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tmark/pkg/datasets"
	"tmark/pkg/eval"
	"tmark/pkg/tmark"
)

func main() {
	full := datasets.ACM(datasets.DefaultACMConfig(42))
	fmt.Printf("network: %v\n", full.Stats())
	multi := 0
	for i := 0; i < full.N(); i++ {
		if len(full.Nodes[i].Labels) > 1 {
			multi++
		}
	}
	fmt.Printf("%d of %d publications carry more than one index term\n\n", multi, full.N())

	rng := rand.New(rand.NewSource(7))
	split := eval.StratifiedSplit(full, 0.3, rng)
	masked, truth := eval.MaskLabels(full, split)

	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9 // the paper's ACM setting
	model, err := tmark.New(masked, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := model.Run()

	// Multi-label prediction: accept classes scoring at least 60% of a
	// node's best class.
	scores := res.LiftedProbabilities()
	pred := make([][]int, masked.N())
	for i := 0; i < masked.N(); i++ {
		row := scores.Row(i)
		best, bestC := 0.0, 0
		for c, v := range row {
			if v > best {
				best, bestC = v, c
			}
		}
		labels := []int{}
		for c, v := range row {
			if v >= 0.6*best && v > 0 {
				labels = append(labels, c)
			}
		}
		if len(labels) == 0 {
			labels = []int{bestC}
		}
		pred[i] = labels
	}
	fmt.Printf("Macro-F1 on held-out publications: %.3f\n", eval.MacroF1(pred, truth, full.Q(), split.Test))
	fmt.Printf("Micro-F1 on held-out publications: %.3f\n\n", eval.MicroF1(pred, truth, split.Test))

	fmt.Println("relative importance of the six link types (mean over index terms):")
	for k := range masked.Relations {
		var sum float64
		for c := range res.Classes {
			sum += res.Classes[c].Z[k]
		}
		fmt.Printf("  %-12s %.3f\n", masked.Relations[k].Name, sum/float64(full.Q()))
	}
	fmt.Println("\n\"concept\" and \"conference\" links matter most — publications sharing")
	fmt.Println("them usually share index terms, which is the paper's Fig. 5 finding.")
}
