// Linkselect: the paper's Section 6.3 study — the same images classified
// through two different tag sets. Purity-selected tags (Tagset1) give a
// far better network than frequency-selected tags (Tagset2), and T-Mark's
// per-class tag rankings show why.
//
//	go run ./examples/linkselect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tmark/pkg/baselines"
	"tmark/pkg/datasets"
	"tmark/pkg/eval"
	"tmark/pkg/tmark"
)

func main() {
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9 // the paper's NUS settings
	cfg.Gamma = 0.4

	for _, tc := range []struct {
		name string
		tags []datasets.Tag
	}{
		{"Tagset1 (purity-selected)", datasets.Tagset1()},
		{"Tagset2 (frequency-selected)", datasets.Tagset2()},
	} {
		full := datasets.NUS(datasets.DefaultNUSConfig(42), tc.tags)
		rng := rand.New(rand.NewSource(7))
		split := eval.StratifiedSplit(full, 0.1, rng)
		masked, truth := eval.MaskLabels(full, split)

		method := &baselines.TMark{Config: cfg, ICA: true}
		scores, err := method.Scores(masked, rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		acc := eval.Accuracy(baselines.Predict(scores), eval.PrimaryTruth(truth), split.Test)
		fmt.Printf("%-30s accuracy with 10%% labels: %.3f\n", tc.name, acc)

		model, err := tmark.New(full, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := model.Run()
		for c, class := range datasets.NUSClasses {
			fmt.Printf("  top tags for %-7s:", class)
			for _, rs := range res.LinkRanking(c)[:6] {
				fmt.Printf(" %s", full.Relations[rs.Relation].Name)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Under Tagset1 the two classes' top tags split cleanly by semantics;")
	fmt.Println("under Tagset2 the same generic tags top both lists — the paper's")
	fmt.Println("evidence that link selection, not volume, drives HIN classification.")
}
