// Movies: genre prediction on a sparse-links network (one link type per
// director), comparing T-Mark against the EMR ensemble — the regime where
// the paper found pooling beats per-type weighting — and ranking directors
// per genre.
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tmark/pkg/baselines"
	"tmark/pkg/datasets"
	"tmark/pkg/eval"
	"tmark/pkg/tmark"
)

func main() {
	full := datasets.Movies(datasets.DefaultMoviesConfig(42))
	fmt.Printf("network: %v\n", full.Stats())
	fmt.Printf("(each of the %d director link types touches only a handful of movies)\n\n", full.M())

	rng := rand.New(rand.NewSource(7))
	split := eval.StratifiedSplit(full, 0.5, rng)
	masked, truth := eval.MaskLabels(full, split)
	primary := eval.PrimaryTruth(truth)

	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9 // the paper's Movies setting
	for _, method := range []baselines.Method{
		&baselines.TMark{Config: cfg, ICA: true},
		baselines.NewEMR(),
		baselines.NewICA(),
	} {
		scores, err := method.Scores(masked, rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		acc := eval.Accuracy(baselines.Predict(scores), primary, split.Test)
		fmt.Printf("%-8s test accuracy: %.3f\n", method.Name(), acc)
	}

	// Director ranking needs the full label set, like the paper's Table 5.
	model, err := tmark.New(full, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := model.Run()
	fmt.Println("\ntop-5 directors per genre (link ranking):")
	for c, genre := range datasets.MovieGenres {
		fmt.Printf("  %-12s:", genre)
		for _, rs := range res.LinkRanking(c)[:5] {
			fmt.Printf(" %q", full.Relations[rs.Relation].Name)
		}
		fmt.Println()
	}
}
