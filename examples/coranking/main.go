// Coranking: the unsupervised ancestors of T-Mark — MultiRank co-ranks
// the nodes and link types of a network with no labels at all, and HAR
// separates hub nodes from authority nodes. T-Mark is these algorithms
// plus a labelled-seed restart and a feature channel.
//
//	go run ./examples/coranking
package main

import (
	"fmt"
	"log"

	"tmark/pkg/datasets"
	"tmark/pkg/rank"
)

func main() {
	g := datasets.DBLP(datasets.DefaultDBLPConfig(42))
	fmt.Printf("network: %v (labels ignored below)\n\n", g.Stats())

	mr, err := rank.MultiRank(g, rank.Options{Restart: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MultiRank %s\n", mr)
	fmt.Println("most central link types (no labels involved):")
	for _, k := range mr.TopRelations(5) {
		fmt.Printf("  %-8s z=%.4f\n", g.Relations[k].Name, mr.Z[k])
	}
	fmt.Println("\nmost central authors:")
	for _, i := range mr.TopNodes(5) {
		fmt.Printf("  %-12s x=%.5f\n", g.Nodes[i].Name, mr.X[i])
	}

	har, err := rank.HAR(g, rank.Options{Restart: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHAR converged=%v in %d iterations\n", har.Converged, har.Iterations)
	fmt.Println("top authorities vs top hubs (undirected venues make them similar here):")
	auth := har.TopAuthorities(3)
	hubs := har.TopHubs(3)
	for p := 0; p < 3; p++ {
		fmt.Printf("  authority %-12s | hub %-12s\n", g.Nodes[auth[p]].Name, g.Nodes[hubs[p]].Name)
	}
	fmt.Println("\nCompare with examples/bibliography: T-Mark turns exactly this")
	fmt.Println("machinery into a per-class ranking by adding the label restart.")
}
