// Quickstart: classify the paper's four-publication bibliography example
// with T-Mark in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tmark/pkg/datasets"
	"tmark/pkg/tmark"
)

func main() {
	// The Section 3.2 network: 4 publications, 3 link types (co-author,
	// citation, same-conference), p1 labelled DM and p2 labelled CV.
	g := datasets.Example()

	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0.5 // balance relations and feature similarity
	model, err := tmark.New(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := model.Run()

	pred := res.Predict()
	for i := range g.Nodes {
		status := "predicted"
		if g.Labeled(i) {
			status = "labelled "
		}
		fmt.Printf("%s %-18s → %s\n", status, g.Nodes[i].Name, g.Classes[pred[i]])
	}

	fmt.Println("\nlink-type relevance:")
	for c, class := range g.Classes {
		fmt.Printf("  %s:", class)
		for _, rs := range res.LinkRanking(c) {
			fmt.Printf("  %s=%.3f", g.Relations[rs.Relation].Name, rs.Score)
		}
		fmt.Println()
	}
}
