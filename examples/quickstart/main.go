// Quickstart: classify the paper's four-publication bibliography example
// with T-Mark in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tmark/pkg/datasets"
	"tmark/pkg/tmark"
)

func main() {
	// The Section 3.2 network: 4 publications, 3 link types (co-author,
	// citation, same-conference), p1 labelled DM and p2 labelled CV.
	g := datasets.Example()

	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0.5 // balance relations and feature similarity
	model, err := tmark.New(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// RunContext bounds the solve (cancel/deadline stop within one
	// iteration, leaving a usable partial result) and WithStats records
	// where the time went. Plain model.Run() works too.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var stats tmark.RunStats
	res := model.RunContext(ctx, tmark.WithStats(&stats))
	if res.Stopped != nil {
		log.Printf("stopped early (%s): %v", res.Reason, res.Stopped)
	}

	pred := res.Predict()
	for i := range g.Nodes {
		status := "predicted"
		if g.Labeled(i) {
			status = "labelled "
		}
		fmt.Printf("%s %-18s → %s\n", status, g.Nodes[i].Name, g.Classes[pred[i]])
	}

	fmt.Println("\nlink-type relevance:")
	for c, class := range g.Classes {
		fmt.Printf("  %s:", class)
		for _, rs := range res.LinkRanking(c) {
			fmt.Printf("  %s=%.3f", g.Relations[rs.Relation].Name, rs.Score)
		}
		fmt.Println()
	}

	fmt.Printf("\nsolved in %v (%d iterations over %d classes)\n",
		stats.Wall.Round(time.Microsecond), stats.Iterations, len(stats.Classes))
}
