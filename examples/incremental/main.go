// Incremental: the streaming-labels workflow. Labels arrive in batches;
// instead of solving from scratch each time, RunWarm continues from the
// previous stationary solution and converges in a fraction of the
// iterations.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tmark/pkg/datasets"
	"tmark/pkg/eval"
	"tmark/pkg/hin"
	"tmark/pkg/tmark"
)

func main() {
	full := datasets.DBLP(datasets.DefaultDBLPConfig(42))
	truth := make([]int, full.N())
	for i := 0; i < full.N(); i++ {
		truth[i] = full.PrimaryLabel(i)
	}

	// Start with 5% labels, then reveal 5% more per batch.
	rng := rand.New(rand.NewSource(7))
	order := rng.Perm(full.N())
	working := strip(full)
	batch := full.N() / 20
	revealed := 0
	reveal := func(k int) {
		for _, i := range order[revealed : revealed+k] {
			working.SetLabels(i, truth[i])
		}
		revealed += k
	}
	reveal(batch)

	cfg := tmark.DefaultConfig()
	// Disable the ICA reseeding so the warm start continues the pure tensor
	// iteration (with ICA on, the pseudo-seed schedule replays from scratch
	// and the iteration counts stay flat).
	cfg.ICAUpdate = false
	// A lower restart weight slows the contraction, which is where warm
	// starting visibly pays off.
	cfg.Alpha = 0.3
	cfg.Epsilon = 1e-10
	var prev *tmark.Result
	for step := 1; step <= 5; step++ {
		model, err := tmark.New(working, cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := model.RunWarm(prev) // nil prev = cold start
		mask := make([]bool, full.N())
		for i := range mask {
			mask[i] = !working.Labeled(i)
		}
		acc := eval.Accuracy(res.Predict(), truth, mask)
		fmt.Printf("step %d: %4d labels, %2d iterations (warm=%v), accuracy on unlabelled %.3f\n",
			step, revealed, res.MaxIterations(), prev != nil, acc)
		prev = res
		if step < 5 {
			reveal(batch)
		}
	}
	fmt.Println("\nwarm restarts converge in fewer iterations than the cold start,")
	fmt.Println("because each batch of labels only perturbs the previous fixed point.")
}

// strip returns a copy of g with every label removed.
func strip(g *hin.Graph) *hin.Graph {
	out := hin.New(g.Classes...)
	for i := range g.Nodes {
		out.AddNode(g.Nodes[i].Name, g.Nodes[i].Features)
	}
	for k := range g.Relations {
		r := g.Relations[k]
		nk := out.AddRelation(r.Name, r.Directed)
		for _, e := range r.Edges {
			out.AddWeightedEdge(nk, e.From, e.To, e.Weight)
		}
	}
	return out
}
