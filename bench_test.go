// Package main's benchmarks regenerate every table and figure of the
// paper's evaluation (Section 6) via internal/experiments, one benchmark
// per artifact, plus ablation benches for the design choices DESIGN.md
// calls out. Each iteration performs the complete experiment at the quick
// scale; run `go run ./cmd/experiments -full` for the paper-scale
// protocol.
package main

import (
	"math/rand"
	"testing"

	"tmark/internal/baselines"
	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/experiments"
	"tmark/internal/hin"
	"tmark/internal/markov"
	"tmark/internal/tensor"
	"tmark/internal/tmark"
)

// benchOptions keeps the sweep benchmarks affordable: one trial, three
// labelled fractions, reduced dataset scale.
func benchOptions() experiments.Options {
	opt := experiments.Quick(1)
	opt.Trials = 1
	opt.Fractions = []float64{0.1, 0.5, 0.9}
	return opt
}

func BenchmarkWorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		we := experiments.RunWorkedExample()
		if !we.Correct {
			b.Fatal("worked example misclassified")
		}
	}
}

func BenchmarkTable2ConferenceRanking(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if t := experiments.RunTable2(opt); len(t.Ranked) != 4 {
			b.Fatal("bad table 2")
		}
	}
}

func BenchmarkTable3DBLPAccuracy(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if t := experiments.RunTable3(opt); t.Mean(0.1, "T-Mark") <= 0 {
			b.Fatal("bad table 3")
		}
	}
}

func BenchmarkTable4MoviesAccuracy(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if t := experiments.RunTable4(opt); t.Mean(0.1, "EMR") <= 0 {
			b.Fatal("bad table 4")
		}
	}
}

func BenchmarkTable5DirectorRanking(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if t := experiments.RunTable5(opt); len(t.Ranked) != 5 {
			b.Fatal("bad table 5")
		}
	}
}

func BenchmarkTables6and7TagSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t6, t7 := experiments.RunTables6and7()
		if len(t6.Tags) != 41 || len(t7.Tags) != 41 {
			b.Fatal("bad tag lists")
		}
	}
}

func BenchmarkTable8TagsetComparison(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		cmp := experiments.RunTable8(opt)
		if cmp.Tagset1[0].Mean <= cmp.Tagset2[0].Mean {
			b.Fatal("tagset gap inverted")
		}
	}
}

func BenchmarkTables9and10TagRanking(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		t9, t10 := experiments.RunTables9and10(opt)
		if len(t9.Ranked[0]) != 12 || len(t10.Ranked[0]) != 12 {
			b.Fatal("bad tag rankings")
		}
	}
}

func BenchmarkTable11ACMMacroF1(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if t := experiments.RunTable11(opt); t.Mean(0.1, "T-Mark") <= 0 {
			b.Fatal("bad table 11")
		}
	}
}

func BenchmarkFigure5LinkImportance(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if li := experiments.RunFigure5(opt); li.MeanImportance("concept") <= 0 {
			b.Fatal("bad figure 5")
		}
	}
}

func BenchmarkFigure6AlphaSweepDBLP(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if s := experiments.RunFigure6(opt); len(s.Accuracy) != len(experiments.AlphaValues) {
			b.Fatal("bad figure 6")
		}
	}
}

func BenchmarkFigure7AlphaSweepNUS(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if s := experiments.RunFigure7(opt); len(s.Accuracy) != len(experiments.AlphaValues) {
			b.Fatal("bad figure 7")
		}
	}
}

func BenchmarkFigure8GammaSweepDBLP(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if s := experiments.RunFigure8(opt); len(s.Accuracy) != len(experiments.GammaValues) {
			b.Fatal("bad figure 8")
		}
	}
}

func BenchmarkFigure9GammaSweepNUS(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if s := experiments.RunFigure9(opt); len(s.Accuracy) != len(experiments.GammaValues) {
			b.Fatal("bad figure 9")
		}
	}
}

func BenchmarkFigure10Convergence(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if cc := experiments.RunFigure10(opt); len(cc.Datasets) != 4 {
			b.Fatal("bad figure 10")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// benchDBLPProblem builds one masked DBLP split shared by the ablations.
func benchDBLPProblem() (*problem, error) {
	cfg := dataset.DefaultDBLPConfig(1)
	cfg.AuthorsPerArea = 60
	full := dataset.DBLP(cfg)
	rng := rand.New(rand.NewSource(2))
	split := eval.StratifiedSplit(full, 0.3, rng)
	masked, truth := eval.MaskLabels(full, split)
	return &problem{masked: masked, truth: eval.PrimaryTruth(truth), test: split.Test}, nil
}

type problem struct {
	masked *hin.Graph
	truth  []int
	test   []bool
}

// BenchmarkAblationICA compares T-Mark against TensorRrCc (ICA label
// update on/off); the reported metric is accuracy ×1000.
func BenchmarkAblationICA(b *testing.B) {
	p, err := benchDBLPProblem()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		ica  bool
	}{{"tmark", true}, {"tensorrrcc", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				m := &baselines.TMark{Config: tmark.DefaultConfig(), ICA: mode.ica}
				scores, err := m.Scores(p.masked, rand.New(rand.NewSource(3)))
				if err != nil {
					b.Fatal(err)
				}
				acc = eval.Accuracy(baselines.Predict(scores), p.truth, p.test)
			}
			b.ReportMetric(acc*1000, "accuracy_x1000")
		})
	}
}

// BenchmarkAblationDangling compares the sparse contraction (implicit
// uniform dangling columns) against the dense reference that walks every
// cell.
func BenchmarkAblationDangling(b *testing.B) {
	g := dataset.DBLP(dataset.DefaultDBLPConfig(1))
	a := g.AdjacencyTensor()
	o := tensor.NewNodeTransition(a)
	x := make([]float64, a.N())
	z := make([]float64, a.M())
	for i := range x {
		x[i] = 1 / float64(len(x))
	}
	for k := range z {
		z[k] = 1 / float64(len(z))
	}
	dst := make([]float64, a.N())
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o.Apply(x, z, dst)
		}
	})
	b.Run("dense-reference", func(b *testing.B) {
		if testing.Short() {
			b.Skip("quadratic reference")
		}
		for i := 0; i < b.N; i++ {
			_ = tensor.DenseApplyO(o, x, z)
		}
	})
}

// BenchmarkContractionSparseVsDense measures the core O(D) contraction on
// growing networks, confirming the complexity analysis of Section 4.5.
func BenchmarkContractionSparseVsDense(b *testing.B) {
	for _, scale := range []int{50, 100, 200} {
		cfg := dataset.DefaultDBLPConfig(1)
		cfg.AuthorsPerArea = scale
		g := dataset.DBLP(cfg)
		a := g.AdjacencyTensor()
		o := tensor.NewNodeTransition(a)
		r := tensor.NewRelationTransition(a)
		x := make([]float64, a.N())
		z := make([]float64, a.M())
		for i := range x {
			x[i] = 1 / float64(len(x))
		}
		for k := range z {
			z[k] = 1 / float64(len(z))
		}
		dstX := make([]float64, a.N())
		dstZ := make([]float64, a.M())
		b.Run(benchName("authorsPerArea", scale), func(b *testing.B) {
			b.ReportMetric(float64(a.NNZ()), "nnz")
			for i := 0; i < b.N; i++ {
				o.Apply(x, z, dstX)
				r.Apply(x, dstZ)
			}
		})
	}
}

// BenchmarkAblationFeatureChannel compares dense W, sparse top-K W and no
// feature channel at all (γ=0).
func BenchmarkAblationFeatureChannel(b *testing.B) {
	p, err := benchDBLPProblem()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		gamma float64
		topK  int
	}{
		{"dense-w", 0.6, 0},
		{"topk-w", 0.6, 20},
		{"no-features", 0, 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := tmark.DefaultConfig()
				cfg.Gamma = mode.gamma
				cfg.FeatureTopK = mode.topK
				m := &baselines.TMark{Config: cfg, ICA: true}
				scores, err := m.Scores(p.masked, rand.New(rand.NewSource(3)))
				if err != nil {
					b.Fatal(err)
				}
				acc = eval.Accuracy(baselines.Predict(scores), p.truth, p.test)
			}
			b.ReportMetric(acc*1000, "accuracy_x1000")
		})
	}
}

// BenchmarkFeatureTransitionConstruction isolates the cost of building W.
func BenchmarkFeatureTransitionConstruction(b *testing.B) {
	g := dataset.DBLP(dataset.DefaultDBLPConfig(1))
	features := g.FeatureMatrix()
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			markov.FeatureTransition(features)
		}
	})
	b.Run("top20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			markov.SparseFeatureTransition(features, 20)
		}
	})
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for n > 0 {
		pos--
		buf[pos] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[pos:])
}
