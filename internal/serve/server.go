package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tmark/internal/artifact"
	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/shard"
	"tmark/internal/stream"
	"tmark/internal/tmark"
)

// Defaults for the zero values of Options.
const (
	DefaultCacheSize       = 4
	DefaultMaxBatch        = 8
	DefaultQueueDepth      = 64
	DefaultMaxConcurrent   = 2
	DefaultMaxBodyBytes    = 1 << 20
	DefaultTopNodes        = 10
	DefaultRetryAfter      = time.Second
	DefaultCheckpointEvery = 8
)

// Options configures a Server. At least one of Datasets and ModelDir
// must be set.
type Options struct {
	// Datasets maps dataset names to loaded graphs. The graphs must be
	// fully built (a model is constructed from each on first use) and
	// must not be mutated afterwards.
	Datasets map[string]*hin.Graph
	// Default names the model used by requests that name none. It may
	// stay empty when exactly one model is available (one loaded
	// dataset, or — with no datasets — one named artifact reference).
	Default string
	// ModelDir roots the content-addressed artifact registry (see
	// `tmark build`). When set, model references resolve artifact-first:
	// a request's model name that the registry knows activates by
	// mmapping the compiled blob (O(ms)) instead of rebuilding from the
	// raw graph; a name the registry does not know, or whose blob fails
	// verification, falls back to the loaded graph of the same name.
	ModelDir string
	// Config is the base hyperparameter set; the zero value means
	// tmark.DefaultConfig(). Per-request overrides derive new cache keys
	// from it.
	Config tmark.Config
	// DefaultQuality is the solve tier of requests that name none; the
	// zero value (tmark.QualityDefault) means exact. Requests override it
	// per query with "quality".
	DefaultQuality tmark.Quality
	// CacheSize bounds the warm-model LRU cache (default 4).
	CacheSize int
	// MaxBatch bounds the width of one coalesced lockstep solve
	// (default 8).
	MaxBatch int
	// QueueDepth bounds the per-model admission queue; a full queue
	// rejects with 503 (default 64).
	QueueDepth int
	// MaxConcurrent bounds how many batch solves run at once across all
	// warm models (default 2).
	MaxConcurrent int
	// MaxBodyBytes bounds a /classify request body (default 1 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint carried in the Retry-After header
	// of every 503 (load shed, drain, quarantined model); default 1s.
	RetryAfter time.Duration
	// CheckpointDir, when set, gives every warm model's /rank full
	// solve a per-model checkpoint file in this directory: snapshots
	// every CheckpointEvery iterations, a final flush on drain, and a
	// resume from the last snapshot on the next process start.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in solver iterations
	// (default 8); only meaningful with CheckpointDir.
	CheckpointEvery int
	// ScrubRegistry runs a registry scrub at startup: blob checksums
	// verify, corrupt blobs quarantine into <ModelDir>/corrupt/, and
	// refs left pointing at missing blobs roll back to the newest intact
	// version. tmarkd turns this on; embedded servers opt in because a
	// scrub mutates the registry directory. Without it, damaged blobs
	// are still caught (and routed to the rebuild fallback) at
	// activation time by the per-open content-hash check.
	ScrubRegistry bool
	// WALDir, when set, gives every ingest engine a write-ahead log
	// under this directory (one subdirectory per model name): each
	// accepted /v1/ingest batch is fsync'd to the log before it applies,
	// a restarted server replays the log so a kill -9 mid-ingest loses
	// nothing, and a quarantined engine heals itself in process instead
	// of staying poisoned until restart.
	WALDir string
	// ShardWorkers lists the base URLs of a shard-worker fleet (tmarkd
	// -shard-serve processes, one per shard of one partitioned model).
	// When set, New performs the coordinator handshake against the
	// fleet; warm models whose content hash matches the fleet's parent
	// model then solve their batches across the workers, with automatic
	// fallback to local solving (plus a cooldown) when the fleet fails
	// mid-pass. Models with any other hash are untouched.
	ShardWorkers []string
	// Registry receives the serving metrics and backs /metrics, /vars
	// and /debug/pprof; nil means obs.Default().
	Registry *obs.Registry
}

// Server is the tmarkd HTTP service: one mux serving /classify, /rank,
// /healthz, /readyz plus the obs metrics and pprof endpoints, over a
// warm-model cache with per-model request coalescers.
type Server struct {
	opts     Options
	registry *artifact.Registry // nil without ModelDir
	obsReg   *obs.Registry
	scrub    *artifact.ScrubReport // startup registry scrub outcome; nil without ModelDir
	cache    *modelCache
	met      *metrics
	mux      *http.ServeMux
	// slots is the server-wide solve semaphore shared by every
	// coalescer (capacity MaxConcurrent); tests pre-fill it to hold
	// batches at a deterministic point.
	slots chan struct{}

	// retryAfter is Options.RetryAfter pre-rendered for the Retry-After
	// header (whole seconds, at least 1).
	retryAfter string

	// coord is the connected shard-worker coordinator (nil without
	// Options.ShardWorkers); models matching its parent hash solve
	// through it.
	coord *shard.Coordinator

	// streams holds the live ingest engines, one per dataset-backed name
	// that has received a /v1/ingest batch (or, with Options.WALDir, per
	// name whose log survived a previous process). A quarantined engine
	// stays in the map: with a WAL it heals itself on the next ingest,
	// without one it stays sticky so later ingests keep reporting the
	// fault.
	streamMu sync.Mutex
	streams  map[string]*stream.Engine

	draining  atomic.Bool
	drainOnce sync.Once
}

// metrics is the request-level instrument set of one server.
type metrics struct {
	requests       *obs.Counter
	errors         *obs.Counter
	rejected       *obs.Counter
	canceled       *obs.Counter
	batches        *obs.Counter
	batchedReqs    *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	panics         *obs.Counter
	quarantines    *obs.Counter
	artifactHits   *obs.Counter
	artifactMisses *obs.Counter
	artifactFails  *obs.Counter
	shardDegrades  *obs.Counter
	latency        *obs.Latency
	batchTime      *obs.Timer
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		requests:       reg.Counter("tmarkd_requests_total"),
		errors:         reg.Counter("tmarkd_errors_total"),
		rejected:       reg.Counter("tmarkd_rejected_total"),
		canceled:       reg.Counter("tmarkd_canceled_total"),
		batches:        reg.Counter("tmarkd_batches_total"),
		batchedReqs:    reg.Counter("tmarkd_batched_requests_total"),
		cacheHits:      reg.Counter("tmarkd_cache_hits_total"),
		cacheMisses:    reg.Counter("tmarkd_cache_misses_total"),
		cacheEvictions: reg.Counter("tmarkd_cache_evictions_total"),
		panics:         reg.Counter("tmarkd_panics_recovered_total"),
		quarantines:    reg.Counter("tmarkd_model_quarantines_total"),
		artifactHits:   reg.Counter("tmark_artifact_hit_total"),
		artifactMisses: reg.Counter("tmark_artifact_miss_total"),
		artifactFails:  reg.Counter("tmark_artifact_verify_fail_total"),
		shardDegrades:  reg.Counter("tmarkd_shard_degraded_total"),
		latency:        obs.NewLatency(0),
		batchTime:      reg.Timer("tmarkd_batch_solve"),
	}
}

// observeBatch records one completed lockstep batch: width requests
// solved together in d.
func (m *metrics) observeBatch(width int, d time.Duration) {
	m.batches.Inc()
	m.batchedReqs.Add(int64(width))
	m.batchTime.Observe(d)
}

// New builds a Server over the given options.
func New(opts Options) (*Server, error) {
	if len(opts.Datasets) == 0 && opts.ModelDir == "" {
		return nil, errors.New("serve: no datasets loaded and no model directory")
	}
	var registry *artifact.Registry
	var scrub *artifact.ScrubReport
	if opts.ModelDir != "" {
		var err error
		if registry, err = artifact.OpenRegistry(opts.ModelDir); err != nil {
			return nil, err
		}
		// Heal the registry before anything resolves through it: corrupt
		// blobs move aside, dangling refs roll back to intact versions.
		if opts.ScrubRegistry {
			if scrub, err = registry.Scrub(); err != nil {
				return nil, fmt.Errorf("serve: registry scrub: %w", err)
			}
		}
	}
	if opts.Default == "" {
		switch {
		case len(opts.Datasets) == 1:
			for name := range opts.Datasets {
				opts.Default = name
			}
		case len(opts.Datasets) > 1:
			return nil, errors.New("serve: multiple datasets need an explicit default")
		default: // artifact-only serving
			infos, err := registry.List()
			if err != nil {
				return nil, err
			}
			for _, info := range infos {
				if info.Name == "" || artifact.IsShardRefName(info.Name) {
					continue
				}
				if opts.Default != "" {
					return nil, errors.New("serve: multiple artifact models need an explicit default")
				}
				opts.Default = info.Name
			}
			if opts.Default == "" {
				return nil, errors.New("serve: model directory holds no named models")
			}
		}
	}
	if _, ok := opts.Datasets[opts.Default]; !ok {
		ref, err := artifact.ParseRef(opts.Default)
		if err != nil {
			return nil, fmt.Errorf("serve: default model %q not loaded", opts.Default)
		}
		if registry == nil {
			return nil, fmt.Errorf("serve: default model %q not loaded", opts.Default)
		}
		if _, err := registry.Resolve(ref); err != nil {
			return nil, fmt.Errorf("serve: default model %q: %w", opts.Default, err)
		}
	}
	if opts.Config == (tmark.Config{}) {
		opts.Config = tmark.DefaultConfig()
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}

	s := &Server{opts: opts, registry: registry, obsReg: reg, scrub: scrub, met: newMetrics(reg)}
	if len(opts.ShardWorkers) > 0 {
		coord, err := shard.Connect(context.Background(), opts.ShardWorkers, nil)
		if err != nil {
			return nil, fmt.Errorf("serve: shard worker handshake: %w", err)
		}
		s.coord = coord
	}
	secs := int(opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	s.retryAfter = strconv.Itoa(secs)
	slots := make(chan struct{}, opts.MaxConcurrent)
	s.slots = slots
	s.cache = newModelCache(opts.CacheSize,
		s.buildModel,
		func(m *tmark.Model, hash string) *coalescer {
			coord := s.coord
			if coord != nil && hash != coord.Parent() {
				coord = nil
			}
			return newCoalescer(m, opts.MaxBatch, opts.QueueDepth, slots, s.met, coord)
		},
		s.met)
	s.cache.ckDir = opts.CheckpointDir
	s.cache.ckEvery = opts.CheckpointEvery

	reg.SetGauge("tmarkd_queue_depth", func() float64 { return float64(s.cache.queueDepth()) })
	reg.SetGauge("tmarkd_coalesce_ratio", func() float64 {
		b := s.met.batches.Load()
		if b == 0 {
			return 0
		}
		return float64(s.met.batchedReqs.Load()) / float64(b)
	})
	reg.SetGauge("tmarkd_classify_latency_p50_seconds", func() float64 { return s.met.latency.Quantile(0.50) })
	reg.SetGauge("tmarkd_classify_latency_p99_seconds", func() float64 { return s.met.latency.Quantile(0.99) })
	reg.SetGauge("tmarkd_wal_segment_bytes", func() float64 {
		s.streamMu.Lock()
		defer s.streamMu.Unlock()
		var total int64
		for _, e := range s.streams {
			total += e.WALSize()
		}
		return float64(total)
	})

	mux := http.NewServeMux()
	// The versioned surface; /classify and /rank remain as frozen legacy
	// aliases with identical behaviour.
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/diff", s.handleDiff)
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/vars", reg.JSONHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	// A surviving write-ahead log means a previous process died with
	// logged batches; build those engines now so the replayed state
	// serves from the first request (and a replay failure surfaces at
	// startup, not mid-traffic).
	if opts.WALDir != "" {
		for name := range opts.Datasets {
			if entries, err := os.ReadDir(s.walDirFor(name)); err == nil && len(entries) > 0 {
				if _, err := s.engineFor(name); err != nil {
					return nil, fmt.Errorf("serve: wal replay for model %q: %w", name, err)
				}
			}
		}
	}
	return s, nil
}

// ScrubReport returns the startup registry scrub's outcome, nil when
// the server runs without a model directory.
func (s *Server) ScrubReport() *artifact.ScrubReport { return s.scrub }

// Handler returns the server's mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops serving: /readyz flips to 503, new queries are
// rejected, and every in-flight or queued solve is cancelled so each
// pending request completes (with a usable partial result) within one
// solver iteration. Drain blocks until every pending request has been
// answered; shut the HTTP listener down afterwards so the responses
// flush to their clients.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.cache.drainAll()
	})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// unavailable sheds one request: a 503 carrying the server's
// Retry-After hint plus a machine-readable reason in the JSON body, so
// well-behaved clients (pkg/tmark honours the header) back off instead
// of hammering an overloaded, draining or recovering server — and can
// tell those three apart without parsing prose.
func (s *Server) unavailable(w http.ResponseWriter, msg, reason string) {
	w.Header().Set("Retry-After", s.retryAfter)
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: msg, Reason: reason})
}

// reasonFor classifies a shed error for the 503 body's reason field.
func reasonFor(err error) string {
	switch {
	case errors.Is(err, stream.ErrQuarantined):
		return ReasonQuarantined
	case errors.Is(err, ErrDraining):
		return ReasonDraining
	default:
		return ReasonOverloaded
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "draining", ReasonDraining)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// resolve maps a request's model reference + overrides onto a warm
// model. The reference resolves artifact-first: a name (or pin) the
// registry knows activates the compiled blob, a name it does not know
// builds from the loaded graph of that name, and a name known to both
// is the designed pairing — the blob serves, the graph stands by as the
// rebuild fallback should the blob fail verification.
func (s *Server) resolve(name string, req *ClassifyRequest) (string, *warmModel, int, error) {
	if name == "" {
		name = s.opts.Default
	}
	cfg := s.opts.Config
	if req != nil {
		if req.Alpha != nil {
			cfg.Alpha = *req.Alpha
		}
		if req.Gamma != nil {
			cfg.Gamma = *req.Gamma
		}
		if req.Lambda != nil {
			cfg.Lambda = *req.Lambda
		}
		if req.Epsilon != nil {
			cfg.Epsilon = *req.Epsilon
		}
		if req.MaxIterations != nil {
			cfg.MaxIterations = *req.MaxIterations
		}
		if err := cfg.Validate(); err != nil {
			return name, nil, http.StatusBadRequest, err
		}
	}
	key, status, err := s.modelKeyFor(name, cfg)
	if err != nil {
		return name, nil, status, err
	}
	e, err := s.cache.get(key)
	if err != nil {
		// A faulted (panicked) build is transient by construction — the
		// entry was dropped, so a later request rebuilds from scratch —
		// and therefore sheds as a retryable 503 rather than a 500.
		if errors.Is(err, ErrModelFault) {
			return name, nil, http.StatusServiceUnavailable, err
		}
		return name, nil, http.StatusInternalServerError, err
	}
	if req != nil {
		for _, seed := range req.Seeds {
			if seed >= e.model.Graph().N() {
				return name, nil, http.StatusBadRequest,
					fmt.Errorf("seed %d out of range: model %q has %d nodes", seed, name, e.model.Graph().N())
			}
		}
	}
	return name, e, http.StatusOK, nil
}

// modelKeyFor resolves a model reference to the cache key it denotes:
// the graph name available for builds, the artifact hash available for
// activation, or both.
func (s *Server) modelKeyFor(name string, cfg tmark.Config) (modelKey, int, error) {
	key := modelKey{cfg: cfg}
	ref, perr := artifact.ParseRef(name)
	if perr != nil {
		// Not a well-formed reference; a legacy dataset name may still
		// use characters the reference grammar rejects.
		if _, ok := s.opts.Datasets[name]; ok {
			key.name = name
			return key, http.StatusOK, nil
		}
		return key, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	if _, ok := s.opts.Datasets[ref.Name]; ok {
		key.name = ref.Name
	}
	if s.registry != nil {
		switch h, err := s.registry.Resolve(ref); {
		case err == nil:
			key.hash = h
		case !errors.Is(err, artifact.ErrNotFound):
			return key, http.StatusInternalServerError, err
		case ref.Hash != "":
			// A pin names exact bytes; a rebuild cannot honour it.
			return key, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
		}
	} else if ref.Hash != "" {
		return key, http.StatusNotFound, fmt.Errorf("model %q is pinned but no model directory is configured", name)
	}
	if key.name == "" && key.hash == "" {
		return key, http.StatusNotFound, fmt.Errorf("unknown model %q", name)
	}
	return key, http.StatusOK, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.met.requests.Inc()
	if s.draining.Load() {
		s.met.rejected.Inc()
		s.unavailable(w, "draining", ReasonDraining)
		return
	}
	req, err := DecodeClassifyRequest(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	name, e, status, err := s.resolve(req.ref(), req)
	if err != nil {
		s.met.errors.Inc()
		if status == http.StatusServiceUnavailable {
			s.unavailable(w, err.Error(), reasonFor(err))
			return
		}
		writeError(w, status, err.Error())
		return
	}

	// Validate() vetted the spelling; resolve the tier against the
	// server's default so the coalescer — and the response echo — see a
	// concrete quality. Tiers mix freely inside one coalesced batch.
	quality, _ := tmark.ParseQuality(req.Quality)
	if quality == tmark.QualityDefault {
		quality = s.opts.DefaultQuality
	}
	if quality == tmark.QualityDefault {
		quality = tmark.QualityExact
	}

	start := time.Now()
	res, width, err := e.coal.do(r.Context(), tmark.ColumnQuery{Seeds: req.Seeds, ICA: req.ICA, Quality: quality})
	s.met.latency.Observe(time.Since(start))
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining), errors.Is(err, ErrModelFault):
		s.met.rejected.Inc()
		s.unavailable(w, err.Error(), reasonFor(err))
		return
	case err != nil:
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.Context().Err() != nil {
		// The client is gone; its column already retired mid-batch.
		s.met.canceled.Inc()
		return
	}

	g := e.model.Graph()
	resp := &ClassifyResponse{
		Dataset:    name,
		Model:      name,
		ModelHash:  e.contentHash(),
		Seeds:      res.Seeds,
		Quality:    quality.String(),
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Coalesced:  width,
	}
	if len(res.Trace) > 0 {
		resp.Residual = res.Trace[len(res.Trace)-1]
	}
	if res.Stopped != nil {
		resp.Stopped = res.Stopped.Error()
	}
	if req.Scores {
		resp.Scores = res.X
	}
	topNodes := req.TopNodes
	if topNodes == 0 && !req.Scores {
		topNodes = DefaultTopNodes
	}
	resp.TopNodes = topNodeScores(g, res.X, topNodes)
	resp.Links = linkScores(g, res.Z, req.TopLinks)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.met.requests.Inc()
	if s.draining.Load() {
		s.met.rejected.Inc()
		s.unavailable(w, "draining", ReasonDraining)
		return
	}
	ref := r.URL.Query().Get("model")
	if ref == "" {
		ref = r.URL.Query().Get("dataset")
	}
	name, e, status, err := s.resolve(ref, nil)
	if err != nil {
		s.met.errors.Inc()
		if status == http.StatusServiceUnavailable {
			s.unavailable(w, err.Error(), reasonFor(err))
			return
		}
		writeError(w, status, err.Error())
		return
	}
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &top); err != nil || top < 0 {
			s.met.errors.Inc()
			writeError(w, http.StatusBadRequest, "top must be a non-negative integer")
			return
		}
	}
	quality, err := tmark.ParseQuality(r.URL.Query().Get("quality"))
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if quality == tmark.QualityDefault {
		quality = s.opts.DefaultQuality
	}
	g := e.model.Graph()
	// The full multi-class solve backing /rank is computed at most once
	// per warm model and cached, so the accelerated tier has nothing to
	// win here: it serves the same cached reference solve as exact. Only
	// the fast tier gets its own (cheaper) cached solve.
	var full *tmark.Result
	effective := "exact"
	if quality == tmark.QualityFast {
		full = e.fastResult()
		effective = "fast"
	} else {
		full = e.fullResult()
	}
	resp := &RankResponse{Dataset: name, Model: name, ModelHash: e.contentHash(), Quality: effective}
	for c := 0; c < full.Q(); c++ {
		cr := full.Classes[c]
		resp.Classes = append(resp.Classes, ClassRanking{
			Class:     c,
			Name:      g.Classes[c],
			Converged: cr.Converged,
			Links:     linkScores(g, cr.Z, top),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// topNodeScores ranks the nodes by score, descending, ties broken by
// lower index (matching Result.NodeRanking), truncated to top.
func topNodeScores(g *hin.Graph, x []float64, top int) []NodeScore {
	if top <= 0 || len(x) == 0 {
		return nil
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
	if top > len(idx) {
		top = len(idx)
	}
	out := make([]NodeScore, top)
	for i := 0; i < top; i++ {
		out[i] = NodeScore{Node: idx[i], Name: g.Nodes[idx[i]].Name, Score: x[idx[i]]}
	}
	return out
}

// linkScores ranks the link types by stationary probability, descending,
// ties broken by lower index (matching Result.LinkRanking). top <= 0
// keeps all of them.
func linkScores(g *hin.Graph, z []float64, top int) []LinkScore {
	if len(z) == 0 {
		return nil
	}
	idx := make([]int, len(z))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return z[idx[a]] > z[idx[b]] })
	if top <= 0 || top > len(idx) {
		top = len(idx)
	}
	out := make([]LinkScore, top)
	for i := 0; i < top; i++ {
		out[i] = LinkScore{Relation: idx[i], Name: g.Relations[idx[i]].Name, Score: z[idx[i]]}
	}
	return out
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains and shuts the listener down. It is the wiring used by cmd/tmarkd
// and the integration tests.
func (s *Server) ListenAndServe(ctx context.Context, addr string, shutdownTimeout time.Duration) error {
	httpSrv := &http.Server{Addr: addr, Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	return httpSrv.Shutdown(shCtx)
}
