package serve

// Streaming ingest. POST /v1/ingest applies one batched edge-delta
// mutation to a live model through its stream.Engine: the touched O
// columns / R tubes renormalise incrementally, the new version seals
// into the artifact registry under a fresh content hash (the floating
// name re-tags atomically, so the next /classify resolves the new
// version while in-flight requests keep their pinned pre-ingest model),
// and the stationary solve warm-restarts from the previous (x̄, z̄).
// GET /v1/diff compares the full solves of two sealed versions: per-node
// classification flips and per-class link-type ranking shifts.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"

	"tmark/internal/artifact"
	"tmark/internal/stream"
	"tmark/internal/tmark"
	"tmark/internal/wal"
)

// IngestRequest is the wire form of one /v1/ingest batch: a model name
// (empty selects the server's default) plus the delta list. The model
// must be dataset-backed — an artifact-only name has no source graph to
// mutate.
type IngestRequest struct {
	Model  string         `json:"model,omitempty"`
	Deltas []stream.Delta `json:"deltas"`
}

// DecodeIngestRequest parses and validates one /v1/ingest body. It is
// strict — unknown fields, trailing data and statically invalid deltas
// all error — and it never panics, whatever the input: it is fuzzed.
func DecodeIngestRequest(r io.Reader) (*IngestRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decode ingest request: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after ingest request object")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks the request's graph-independent invariants; index
// ranges and edge existence are checked against the live adjacency at
// apply time.
func (r *IngestRequest) Validate() error {
	return stream.ValidateDeltas(r.Deltas)
}

// IngestResponse is the wire form of one /v1/ingest answer — the sealed
// version the batch minted. Hashes carry the sha256: prefix like every
// other model identity on the wire; pin new_hash in later /classify or
// /v1/diff calls to address exactly this version.
type IngestResponse struct {
	Model   string `json:"model"`
	Seq     int    `json:"seq"`
	OldHash string `json:"old_hash"`
	NewHash string `json:"new_hash"`
	Deltas  int    `json:"deltas"`
	Changes int    `json:"changes"`
	// TouchedColumns/TouchedTubes count the O columns and R tubes the
	// batch renormalised; everything else kept its previous bytes.
	TouchedColumns int `json:"touched_columns"`
	TouchedTubes   int `json:"touched_tubes"`
	// Sealed reports whether the version was written to the registry
	// (false when the server runs without -model-dir).
	Sealed bool `json:"sealed"`
	// Warm reports whether the re-solve was seeded from the previous
	// stationary state.
	Warm       bool `json:"warm"`
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	// Duplicate reports that the request's Idempotency-Key matched an
	// already-applied batch: nothing was re-applied, and the fields above
	// describe the version the original request sealed.
	Duplicate bool `json:"duplicate,omitempty"`
}

// DiffResponse is the wire form of a /v1/diff answer: the diff plus the
// exact content identities that were compared.
type DiffResponse struct {
	AHash string `json:"a_hash,omitempty"`
	BHash string `json:"b_hash,omitempty"`
	*stream.Diff
}

// engine returns the live ingest engine for name, nil when no ingest
// has targeted it yet.
func (s *Server) engine(name string) *stream.Engine {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.streams[name]
}

// walDirFor is the per-model write-ahead-log directory under
// Options.WALDir; names are sanitised the same way the checkpoint dir
// sanitises them.
func (s *Server) walDirFor(name string) string {
	return filepath.Join(s.opts.WALDir, safeName(name))
}

// engineFor returns name's ingest engine, creating it on first use. An
// engine needs the loaded source graph (artifact blobs are immutable
// snapshots), so only dataset-backed names can ingest. With
// Options.WALDir set the engine opens its write-ahead log first and
// replays whatever a previous process left in it.
func (s *Server) engineFor(name string) (*stream.Engine, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if e, ok := s.streams[name]; ok {
		return e, nil
	}
	g, ok := s.opts.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("serve: model %q has no loaded graph to ingest into", name)
	}
	opts := []stream.EngineOption{stream.WithMetrics(s.obsReg)}
	if s.opts.WALDir != "" {
		log, err := wal.Open(s.walDirFor(name), wal.Options{})
		if err != nil {
			return nil, fmt.Errorf("serve: wal for model %q: %w", name, err)
		}
		opts = append(opts, stream.WithWAL(log))
	}
	eng, err := stream.NewEngine(name, g, s.opts.Config, s.registry, opts...)
	if err != nil {
		return nil, err
	}
	if s.streams == nil {
		s.streams = map[string]*stream.Engine{}
	}
	s.streams[name] = eng
	return eng, nil
}

// buildFromEngine serves a cache build for a name with a live ingest
// engine from the engine's current sealed version instead of the loaded
// graph: the graph is frozen at startup, so once deltas have applied, a
// rebuild from it would silently serve pre-ingest data under a
// post-ingest name. Per-request hyperparameter overrides assemble a new
// model over the same immutable substrate (O, R and W depend only on
// the adjacency and features, not the runtime knobs).
func (s *Server) buildFromEngine(eng *stream.Engine, key modelKey) (buildResult, error) {
	v := eng.Current()
	if key.cfg == eng.Config() {
		return buildResult{model: v.Model, hash: v.Hash}, nil
	}
	g, sub := v.Model.Graph(), v.Model.Substrate()
	m, err := tmark.Assemble(g, key.cfg, sub)
	if err != nil {
		return buildResult{}, err
	}
	data, err := artifact.EncodeModel(g, key.cfg, sub)
	if err != nil {
		return buildResult{}, err
	}
	return buildResult{model: m, hash: artifact.Hash(data)}, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.met.requests.Inc()
	if s.draining.Load() {
		s.met.rejected.Inc()
		s.unavailable(w, "draining", ReasonDraining)
		return
	}
	req, err := DecodeIngestRequest(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	name := req.Model
	if name == "" {
		name = s.opts.Default
	}
	if _, ok := s.opts.Datasets[name]; !ok {
		s.met.errors.Inc()
		writeError(w, http.StatusNotFound, fmt.Sprintf("model %q has no loaded graph to ingest into", name))
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if len(key) > wal.MaxKeyLen {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("Idempotency-Key of %d bytes exceeds the %d-byte cap", len(key), wal.MaxKeyLen))
		return
	}
	eng, err := s.engineFor(name)
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := eng.ApplyKeyed(r.Context(), key, req.Deltas)
	switch {
	case errors.Is(err, stream.ErrQuarantined):
		// A mid-ingest fault poisoned the engine: the last sealed version
		// keeps serving reads, but mutations are refused. With a WAL the
		// engine already tried (and failed) to heal itself; without one
		// the quarantine holds until restart. Either way, shed as a 503
		// so well-behaved clients back off on the Retry-After hint.
		s.met.quarantines.Inc()
		s.met.rejected.Inc()
		s.unavailable(w, err.Error(), reasonFor(err))
		return
	case err != nil:
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Cached warm models built from the pre-ingest engine state are now
	// stale; drop them so the next resolve rebuilds against the new
	// version. Entries keyed by content hash stay — they ARE pinned
	// versions, exactly what mid-ingest readers hold. A duplicate moved
	// nothing, so there is nothing to invalidate.
	if !res.Duplicate {
		s.cache.invalidateName(name)
	}
	writeJSON(w, http.StatusOK, &IngestResponse{
		Model:          res.Name,
		Seq:            res.Seq,
		OldHash:        "sha256:" + res.OldHash,
		NewHash:        "sha256:" + res.NewHash,
		Deltas:         res.Deltas,
		Changes:        res.Changes,
		TouchedColumns: res.TouchedColumns,
		TouchedTubes:   res.TouchedTubes,
		Sealed:         res.Sealed,
		Warm:           res.Warm,
		Iterations:     res.Iterations,
		Converged:      res.Converged,
		Duplicate:      res.Duplicate,
	})
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.met.requests.Inc()
	if s.draining.Load() {
		s.met.rejected.Inc()
		s.unavailable(w, "draining", ReasonDraining)
		return
	}
	q := r.URL.Query()
	refA, refB := q.Get("a"), q.Get("b")
	if refA == "" || refB == "" {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, "a and b model references required")
		return
	}
	top := 0
	if v := q.Get("top"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &top); err != nil || top < 0 {
			s.met.errors.Inc()
			writeError(w, http.StatusBadRequest, "top must be a non-negative integer")
			return
		}
	}
	_, ea, status, err := s.resolve(refA, nil)
	if err == nil {
		var eb *warmModel
		if _, eb, status, err = s.resolve(refB, nil); err == nil {
			s.serveDiff(w, refA, refB, top, ea, eb)
			return
		}
	}
	s.met.errors.Inc()
	if status == http.StatusServiceUnavailable {
		s.unavailable(w, err.Error(), reasonFor(err))
		return
	}
	writeError(w, status, err.Error())
}

// serveDiff runs (or reuses) the two versions' cached full solves and
// writes the diff.
func (s *Server) serveDiff(w http.ResponseWriter, refA, refB string, top int, ea, eb *warmModel) {
	d, err := stream.DiffResults(refA, refB, ea.model.Graph(), ea.fullResult(), eb.fullResult())
	if err != nil {
		s.met.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if top > 0 {
		if len(d.Flips) > top {
			d.Flips = d.Flips[:top]
		}
		if len(d.Shifts) > top {
			d.Shifts = d.Shifts[:top]
		}
	}
	writeJSON(w, http.StatusOK, &DiffResponse{
		AHash: ea.contentHash(),
		BHash: eb.contentHash(),
		Diff:  d,
	})
}
