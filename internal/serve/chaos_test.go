package serve

// Chaos tests for the serving edges: injected build panics, solve
// panics, overload and eviction-under-load must all degrade to correct
// (never wrong) answers — 503s with a Retry-After hint while the fault
// clears, then bitwise-correct results again. Run with -race (the
// `make chaos` target does) so the recovery paths are also proven free
// of data races.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tmark/internal/fault"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// mustClassifyRef solves the query offline as the correctness oracle.
func mustClassifyRef(t *testing.T, g *hin.Graph, cfg tmark.Config, seeds []int) tmark.ColumnResult {
	t.Helper()
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	ref, err := model.SolveColumn(context.Background(), tmark.ColumnQuery{Seeds: seeds})
	if err != nil {
		t.Fatalf("SolveColumn: %v", err)
	}
	return ref
}

// checkBitwise asserts a served score vector equals the oracle's.
func checkBitwise(t *testing.T, scores, ref []float64) {
	t.Helper()
	if len(scores) != len(ref) {
		t.Fatalf("scores length %d, want %d", len(scores), len(ref))
	}
	for i := range ref {
		if scores[i] != ref[i] {
			t.Fatalf("scores[%d] = %v, want %v (bitwise)", i, scores[i], ref[i])
		}
	}
}

func TestChaosModelBuildPanicSheds503ThenRecovers(t *testing.T) {
	t.Cleanup(fault.Reset)
	g := testGraph(80)
	cfg := fastConfig()
	s := newTestServer(t, g, cfg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Inject(fault.ServeModelBuild, fault.Once(func(...any) { panic("chaos: build blew up") }))

	seeds := classSeeds(g, 0)
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d during build panic, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from a panicked build carries no Retry-After")
	}
	if got := s.met.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}

	// The faulting placeholder was dropped, so the retry rebuilds from
	// the immutable graph and answers correctly.
	resp, body = postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after recovery, want 200: %s", resp.StatusCode, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	checkBitwise(t, out.Scores, mustClassifyRef(t, g, cfg, seeds).X)
}

func TestChaosBatchSolvePanicQuarantinesThenRebuilds(t *testing.T) {
	t.Cleanup(fault.Reset)
	g := testGraph(80)
	cfg := fastConfig()
	s := newTestServer(t, g, cfg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Inject(fault.ServeBatchSolve, fault.Once(func(...any) { panic("chaos: solver blew up") }))

	seeds := classSeeds(g, 2)
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d during solve panic, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from a quarantined model carries no Retry-After")
	}
	if got := s.met.quarantines.Load(); got != 1 {
		t.Errorf("quarantines counter = %d, want 1", got)
	}
	if got := s.cache.size(); got != 0 {
		t.Errorf("cache still holds %d entries after quarantine, want 0", got)
	}

	// The next request coalesces on a fresh build of the same immutable
	// graph and must answer bitwise-correctly.
	resp, body = postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after quarantine rebuild, want 200: %s", resp.StatusCode, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	checkBitwise(t, out.Scores, mustClassifyRef(t, g, cfg, seeds).X)
}

func TestChaosOverloadShedsOnly503WithRetryAfter(t *testing.T) {
	t.Cleanup(fault.Reset)
	g := testGraph(80)
	cfg := fastConfig()
	s := newTestServer(t, g, cfg, func(o *Options) {
		o.MaxBatch = 1
		o.QueueDepth = 2
		o.MaxConcurrent = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Slow every batch solve down so the tiny queue actually fills: the
	// 2x overload below must shed, not absorb.
	fault.Inject(fault.ServeBatchSolve, func(...any) { time.Sleep(30 * time.Millisecond) })

	seeds := classSeeds(g, 1)
	ref := mustClassifyRef(t, g, cfg, seeds)

	const requests = 12 // 2x the queue+batch+slot capacity, with margin
	type answer struct {
		status     int
		retryAfter string
		body       []byte
	}
	answers := make([]answer, requests)
	var wg sync.WaitGroup
	for i := range answers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
			answers[i] = answer{resp.StatusCode, resp.Header.Get("Retry-After"), body}
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, a := range answers {
		switch a.status {
		case http.StatusOK:
			ok++
			var out ClassifyResponse
			if err := json.Unmarshal(a.body, &out); err != nil {
				t.Fatalf("request %d: unmarshal: %v", i, err)
			}
			checkBitwise(t, out.Scores, ref.X)
		case http.StatusServiceUnavailable:
			shed++
			if a.retryAfter == "" {
				t.Errorf("request %d: shed without Retry-After", i)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 503", i, a.status)
		}
	}
	if ok == 0 {
		t.Error("overload shed every request; want some served")
	}
	if shed == 0 {
		t.Error("2x overload shed nothing; queue bound is not enforced")
	}
	t.Logf("overload: %d served, %d shed", ok, shed)
}

// TestEvictionDoesNotCancelBorrowedRank drives the satellite scenario:
// a /rank full solve is mid-flight when its model is evicted by cache
// pressure. The eviction retires the coalescer but must NOT cancel the
// borrowed solve — the response has to match an uninterrupted offline
// run bitwise.
func TestEvictionDoesNotCancelBorrowedRank(t *testing.T) {
	t.Cleanup(fault.Reset)
	g := testGraph(60)
	other := testGraph(40)
	cfg := fastConfig()
	cfg.Epsilon = 1e-300 // never converges: runs the full iteration budget
	cfg.MaxIterations = 120
	s := newTestServer(t, g, cfg, func(o *Options) {
		o.Datasets["other"] = other
		o.Default = "test"
		o.CacheSize = 1
		o.CheckpointDir = t.TempDir()
		o.CheckpointEvery = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The per-iteration checkpoint sink doubles as the chaos hook: it
	// tells us the rank solve started and stretches it long enough for
	// the eviction to land mid-flight.
	started := make(chan struct{})
	var once sync.Once
	fault.InjectErr(fault.CheckpointSave, func() error {
		once.Do(func() { close(started) })
		time.Sleep(time.Millisecond)
		return nil
	})

	rankDone := make(chan *RankResponse, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/rank?dataset=test")
		if err != nil {
			t.Errorf("GET /rank: %v", err)
			rankDone <- nil
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/rank status %d", resp.StatusCode)
			rankDone <- nil
			return
		}
		var out RankResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Errorf("decode /rank: %v", err)
			rankDone <- nil
			return
		}
		rankDone <- &out
	}()

	<-started
	// Cache capacity 1: touching the other dataset evicts the model
	// whose rank solve is still borrowing it.
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Dataset: "other", Seeds: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify(other) status %d: %s", resp.StatusCode, body)
	}
	if got := s.met.cacheEvictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	out := <-rankDone
	if out == nil {
		t.Fatal("rank request failed")
	}

	// Oracle: the same full solve, uninterrupted and checkpoint-free.
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	full := model.RunContext(context.Background())
	if full.Stopped != nil {
		t.Fatalf("reference run stopped: %v", full.Stopped)
	}
	for c, cls := range out.Classes {
		ranked := full.LinkRanking(c)
		if len(cls.Links) != len(ranked) {
			t.Fatalf("class %d: %d links, want %d", c, len(cls.Links), len(ranked))
		}
		for i, l := range cls.Links {
			if l.Score != ranked[i].Score || l.Relation != ranked[i].Relation {
				t.Fatalf("class %d link %d = %+v, want %+v (bitwise: eviction must not cancel the borrowed solve)",
					c, i, l, ranked[i])
			}
		}
	}
}

// TestServeRankDrainFlushesCheckpointAndResumes proves the serving
// checkpoint loop end to end: a drain interrupts a /rank full solve,
// the final snapshot lands in the checkpoint directory, and a new
// server over the same directory resumes it to an answer bitwise equal
// to an uninterrupted run.
func TestServeRankDrainFlushesCheckpointAndResumes(t *testing.T) {
	t.Cleanup(fault.Reset)
	g := testGraph(60)
	cfg := fastConfig()
	cfg.Epsilon = 1e-300
	cfg.MaxIterations = 60
	dir := t.TempDir()
	mutate := func(o *Options) {
		o.CheckpointDir = dir
		o.CheckpointEvery = 1
	}

	// First server: start the rank solve, drain mid-flight.
	s1 := newTestServer(t, g, cfg, mutate)
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	started := make(chan struct{})
	var once sync.Once
	iterated := make(chan struct{}, 1024)
	fault.InjectErr(fault.CheckpointSave, func() error {
		once.Do(func() { close(started) })
		select {
		case iterated <- struct{}{}:
		default:
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	rankDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts1.URL + "/rank")
		if err != nil {
			rankDone <- 0
			return
		}
		resp.Body.Close()
		rankDone <- resp.StatusCode
	}()
	<-started
	<-iterated // at least one periodic snapshot is on disk
	s1.Drain()
	if status := <-rankDone; status != http.StatusOK {
		t.Fatalf("/rank during drain: status %d, want 200 (partial result)", status)
	}
	fault.Reset()

	// The drain must have flushed a valid mid-flight snapshot: without
	// one, the "resumed" solve below would just be a cold rerun and the
	// bitwise check would prove nothing.
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files after drain: %v %v, want exactly one", files, err)
	}
	cp, err := tmark.LoadCheckpointFile(files[0])
	if err != nil {
		t.Fatalf("drained checkpoint does not decode: %v", err)
	}
	if cp.Iter <= 0 || cp.Iter >= cfg.MaxIterations {
		t.Fatalf("drained checkpoint at iteration %d, want mid-flight (0, %d)", cp.Iter, cfg.MaxIterations)
	}

	// Second server over the same directory: its rank solve resumes
	// from the drained snapshot and finishes the budget.
	s2 := newTestServer(t, g, cfg, mutate)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/rank")
	if err != nil {
		t.Fatalf("GET /rank (resumed): %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/rank (resumed) status %d", resp.StatusCode)
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}

	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	full := model.RunContext(context.Background())
	for c, cls := range out.Classes {
		ranked := full.LinkRanking(c)
		for i, l := range cls.Links {
			if l.Score != ranked[i].Score {
				t.Fatalf("class %d link %d score %v, want %v (resumed rank must match uninterrupted run bitwise)",
					c, i, l.Score, ranked[i].Score)
			}
		}
	}
}
