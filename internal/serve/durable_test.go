package serve

// Tests for the durable-ingest serve surface: Idempotency-Key handling
// on /v1/ingest, machine-readable 503 reason bodies, write-ahead-log
// replay across a server restart, and the startup registry scrub
// racing hash-pinned readers.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"tmark/internal/fault"
)

// postIngestKeyed is postIngest with an Idempotency-Key header.
func postIngestKeyed(t *testing.T, s *Server, key string, req any) (*httptest.ResponseRecorder, *IngestResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	if key != "" {
		hr.Header.Set("Idempotency-Key", key)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, hr)
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var out IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode ingest response: %v\n%s", err, rec.Body.String())
	}
	return rec, &out
}

// errorBody decodes a non-2xx answer's JSON envelope.
func errorBody(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decode error body: %v\n%s", err, rec.Body.String())
	}
	return e
}

// TestIngestIdempotencyKey: a resent key is answered with the original
// sealed version — Duplicate set, nothing re-applied — and an oversized
// key rejects before anything runs.
func TestIngestIdempotencyKey(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
		o.WALDir = t.TempDir()
	})
	first := &IngestRequest{Model: "test", Deltas: ingestDeltas(0)}
	rec, res := postIngestKeyed(t, s, "batch-7", first)
	if res == nil {
		t.Fatalf("keyed ingest failed: %d %s", rec.Code, rec.Body.String())
	}
	if res.Duplicate {
		t.Fatal("first send marked duplicate")
	}

	_, dup := postIngestKeyed(t, s, "batch-7", first)
	if dup == nil {
		t.Fatal("duplicate send failed")
	}
	if !dup.Duplicate || dup.NewHash != res.NewHash || dup.Seq != res.Seq {
		t.Fatalf("duplicate answer %+v, want the original %+v", dup, res)
	}
	if got := s.engine("test").Current().Seq; got != 1 {
		t.Fatalf("duplicate key advanced the engine to seq %d", got)
	}
	// A different key is a different batch.
	_, next := postIngestKeyed(t, s, "batch-8", &IngestRequest{Model: "test", Deltas: ingestDeltas(1)})
	if next == nil || next.Duplicate || next.Seq != 2 {
		t.Fatalf("fresh key: %+v", next)
	}

	rec, _ = postIngestKeyed(t, s, strings.Repeat("k", 257), first)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized key: status %d, want 400", rec.Code)
	}
}

// TestUnavailableReasons pins the machine-readable 503 bodies: each
// shed class names itself so clients can tell quarantine from draining
// from ordinary overload without parsing prose.
func TestUnavailableReasons(t *testing.T) {
	t.Cleanup(fault.Reset)

	t.Run("quarantined", func(t *testing.T) {
		// No WALDir: the quarantine cannot self-heal, so it stays visible.
		s := newTestServer(t, testGraph(20), fastConfig(), nil)
		remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: ingest crash") }))
		defer remove()
		rec, _ := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", rec.Code)
		}
		if e := errorBody(t, rec); e.Reason != ReasonQuarantined {
			t.Fatalf("reason %q, want %q (%s)", e.Reason, ReasonQuarantined, rec.Body.String())
		}
	})

	t.Run("draining", func(t *testing.T) {
		s := newTestServer(t, testGraph(20), fastConfig(), nil)
		s.Drain()
		rec, _ := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", rec.Code)
		}
		if e := errorBody(t, rec); e.Reason != ReasonDraining {
			t.Fatalf("reason %q, want %q", e.Reason, ReasonDraining)
		}
		rec2 := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec2.Code != http.StatusServiceUnavailable {
			t.Fatalf("readyz status %d, want 503", rec2.Code)
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec2.Body.Bytes(), &e); err != nil || e.Reason != ReasonDraining {
			t.Fatalf("readyz reason %q (%v), want %q", e.Reason, err, ReasonDraining)
		}
	})

	t.Run("overloaded", func(t *testing.T) {
		s := newTestServer(t, testGraph(20), fastConfig(), nil)
		// A panicked build surfaces as ErrModelFault — transient by
		// construction, shed as ordinary overload.
		remove := fault.Inject(fault.ServeModelBuild, fault.Once(func(...any) { panic("chaos: build blew up") }))
		defer remove()
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/classify",
			strings.NewReader(`{"model":"test","seeds":[0]}`)))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 (%s)", rec.Code, rec.Body.String())
		}
		if e := errorBody(t, rec); e.Reason != ReasonOverloaded {
			t.Fatalf("reason %q, want %q", e.Reason, ReasonOverloaded)
		}
	})
}

// TestServerWALRestartReplays is the daemon-level kill -9 drill: a
// second server over the same model and WAL directories replays the
// log at startup and serves exactly the versions the first one sealed.
func TestServerWALRestartReplays(t *testing.T) {
	modelDir, walDir := t.TempDir(), t.TempDir()
	opts := func(o *Options) {
		o.ModelDir = modelDir
		o.WALDir = walDir
	}
	s1 := newTestServer(t, testGraph(20), fastConfig(), opts)
	var last *IngestResponse
	for b := 0; b < 3; b++ {
		rec, res := postIngest(t, s1, &IngestRequest{Model: "test", Deltas: ingestDeltas(b)})
		if res == nil {
			t.Fatalf("ingest %d: %d %s", b, rec.Code, rec.Body.String())
		}
		last = res
	}

	// "Restart": no handoff, no shutdown hook — only what the WAL and the
	// registry hold on disk.
	s2 := newTestServer(t, testGraph(20), fastConfig(), opts)
	eng := s2.engine("test")
	if eng == nil {
		t.Fatal("restarted server did not eagerly replay the wal")
	}
	if got := "sha256:" + eng.Current().Hash; got != last.NewHash || eng.Current().Seq != 3 {
		t.Fatalf("replayed engine at seq %d hash %s, want seq 3 hash %s",
			eng.Current().Seq, got, last.NewHash)
	}
	code, hash := classifyHash(t, s2, "test", 0)
	if code != http.StatusOK || hash != last.NewHash {
		t.Fatalf("classify after restart: status %d hash %s, want 200 %s", code, hash, last.NewHash)
	}
	// The idempotency window replayed too: resending a committed batch's
	// key to the new process must not double-apply it.
	rec, res := postIngestKeyed(t, s2, "rebatch", &IngestRequest{Model: "test", Deltas: ingestDeltas(3)})
	if res == nil {
		t.Fatalf("keyed ingest on restarted server: %d %s", rec.Code, rec.Body.String())
	}
	_, dup := postIngestKeyed(t, s2, "rebatch", &IngestRequest{Model: "test", Deltas: ingestDeltas(3)})
	if dup == nil || !dup.Duplicate || dup.NewHash != res.NewHash {
		t.Fatalf("restarted server re-applied a known key: %+v", dup)
	}
}

// TestScrubRacesPinnedReaders is the satellite contract: a scrub that
// quarantines a damaged blob and rolls its ref back must not disturb
// readers pinned to an intact version's content hash — blobs are
// immutable and quarantine is a rename, so pinned reads never waver.
func TestScrubRacesPinnedReaders(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
	})
	_, r1 := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
	if r1 == nil {
		t.Fatal("first ingest failed")
	}
	_, r2 := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(1)})
	if r2 == nil {
		t.Fatal("second ingest failed")
	}
	// Warm the pinned entry, then damage the newest blob on disk.
	if code, hash := classifyHash(t, s, r1.NewHash, 0); code != http.StatusOK || hash != r1.NewHash {
		t.Fatalf("pinned classify before scrub: %d %s", code, hash)
	}
	rawHash2 := strings.TrimPrefix(r2.NewHash, "sha256:")
	blob, err := os.ReadFile(s.registry.BlobPath(rawHash2))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(s.registry.BlobPath(rawHash2), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, hash := classifyHash(t, s, r1.NewHash, seed)
				if code != http.StatusOK || hash != r1.NewHash {
					t.Errorf("pinned read during scrub: status %d hash %s, want 200 %s", code, hash, r1.NewHash)
					return
				}
			}
		}(r)
	}
	rep, err := s.registry.Scrub()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != rawHash2 {
		t.Fatalf("Corrupt = %v, want [%s]", rep.Corrupt, rawHash2)
	}
	// The pinned version still serves after the scrub's ref rollback.
	if code, hash := classifyHash(t, s, r1.NewHash, 0); code != http.StatusOK || hash != r1.NewHash {
		t.Fatalf("pinned classify after scrub: %d %s", code, hash)
	}
}

// TestServerScrubOption: with ScrubRegistry set, startup heals a
// pre-damaged registry and reports it; a healthy registry reports
// clean.
func TestServerScrubOption(t *testing.T) {
	modelDir := t.TempDir()
	s1 := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = modelDir
	})
	_, r1 := postIngest(t, s1, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
	if r1 == nil {
		t.Fatal("ingest failed")
	}
	raw := strings.TrimPrefix(r1.NewHash, "sha256:")
	blob, err := os.ReadFile(s1.registry.BlobPath(raw))
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0xff
	if err := os.WriteFile(s1.registry.BlobPath(raw), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = modelDir
		o.ScrubRegistry = true
	})
	rep := s2.ScrubReport()
	if rep == nil || !rep.Dirty() {
		t.Fatalf("startup scrub missed the damage: %+v", rep)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != raw {
		t.Fatalf("Corrupt = %v, want [%s]", rep.Corrupt, raw)
	}
	// Without the option the server must not touch the registry.
	s3 := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = modelDir
	})
	if s3.ScrubReport() != nil {
		t.Fatal("scrub ran without ScrubRegistry")
	}
}
