// Package serve implements tmarkd's HTTP layer: a warm-model cache over
// immutable T-Mark models (the normalized tensors O and R and the feature
// matrix W are fixed per dataset + hyperparameters — only the restart
// vector changes per request) and a request coalescer that batches
// concurrent /classify queries against the same warm model into one
// blocked lockstep solve.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"tmark/internal/tmark"
)

// MaxSeeds bounds the seed list of one request; a query naming more
// seeds than this is rejected before any work happens.
const MaxSeeds = 1 << 20

// ClassifyRequest is the wire form of one /classify query: a seed node
// set (the restart set of eq. 11) plus optional hyperparameter overrides.
// Overridden hyperparameters select a different warm model from the
// cache; requests that share dataset and hyperparameters share a model
// and can coalesce into one lockstep solve.
type ClassifyRequest struct {
	// Model references the model to query: a name, a pinned
	// name@sha256:… or a bare sha256:… content hash. Names resolve
	// artifact-first (a compiled blob in the server's model directory)
	// with the loaded graph of the same name as fallback. Empty selects
	// the server's default model.
	Model string `json:"model,omitempty"`
	// Dataset is the legacy spelling of Model, kept for pre-/v1 clients;
	// setting both to different values is an error.
	Dataset string `json:"dataset,omitempty"`
	// Seeds are the node indices of the query's restart set.
	Seeds []int `json:"seeds"`
	// ICA enables the per-query self-training reseed (the query's seed
	// set plays the role of the labelled set).
	ICA bool `json:"ica,omitempty"`
	// Scores requests the full per-node score vector in the response.
	Scores bool `json:"scores,omitempty"`
	// TopNodes bounds the ranked node list (default 10 when Scores is
	// unset, 0 otherwise).
	TopNodes int `json:"top_nodes,omitempty"`
	// TopLinks bounds the link-type ranking (default: all link types).
	TopLinks int `json:"top_links,omitempty"`
	// Quality selects the solve tier: "exact" (plain fixed-point
	// iteration), "accelerated" (extrapolated power method, identical
	// predictions in fewer iterations) or "fast" (linearized approximate
	// solve). Empty inherits the server's default tier. Any other value
	// is rejected with 400 — never silently defaulted.
	Quality string `json:"quality,omitempty"`

	// Hyperparameter overrides; nil keeps the server's base value.
	Alpha         *float64 `json:"alpha,omitempty"`
	Gamma         *float64 `json:"gamma,omitempty"`
	Lambda        *float64 `json:"lambda,omitempty"`
	Epsilon       *float64 `json:"epsilon,omitempty"`
	MaxIterations *int     `json:"max_iterations,omitempty"`
}

// DecodeClassifyRequest parses and validates one /classify body. It is
// strict — unknown fields, trailing data, non-finite numbers (which
// encoding/json already rejects) and malformed seed lists all error —
// and it never panics, whatever the input: it is fuzzed.
func DecodeClassifyRequest(r io.Reader) (*ClassifyRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ClassifyRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decode request: %w", err)
	}
	// A second document (or any trailing token) means the body was not
	// one JSON object.
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after request object")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// ref returns the model reference the request names: Model, or the
// legacy Dataset spelling.
func (r *ClassifyRequest) ref() string {
	if r.Model != "" {
		return r.Model
	}
	return r.Dataset
}

// Validate checks the request's model-independent invariants; the
// server checks seed indices against the dataset's node count later.
func (r *ClassifyRequest) Validate() error {
	if r.Model != "" && r.Dataset != "" && r.Model != r.Dataset {
		return errors.New("serve: model and dataset name different models")
	}
	if len(r.Seeds) == 0 {
		return errors.New("serve: request needs at least one seed node")
	}
	if len(r.Seeds) > MaxSeeds {
		return fmt.Errorf("serve: %d seeds exceeds the limit %d", len(r.Seeds), MaxSeeds)
	}
	for _, s := range r.Seeds {
		if s < 0 {
			return fmt.Errorf("serve: negative seed %d", s)
		}
	}
	if r.TopNodes < 0 || r.TopLinks < 0 {
		return errors.New("serve: top_nodes and top_links must be non-negative")
	}
	for name, p := range map[string]*float64{
		"alpha": r.Alpha, "gamma": r.Gamma, "lambda": r.Lambda, "epsilon": r.Epsilon,
	} {
		if p != nil && (math.IsNaN(*p) || math.IsInf(*p, 0)) {
			return fmt.Errorf("serve: %s must be finite", name)
		}
	}
	if r.MaxIterations != nil && *r.MaxIterations <= 0 {
		return errors.New("serve: max_iterations must be positive")
	}
	if _, err := tmark.ParseQuality(r.Quality); err != nil {
		return err
	}
	return nil
}

// NodeScore is one entry of the ranked node list.
type NodeScore struct {
	Node  int     `json:"node"`
	Name  string  `json:"name,omitempty"`
	Score float64 `json:"score"`
}

// LinkScore is one entry of the link-type ranking: the stationary
// probability z̄_k measuring relation k's importance to the query class.
type LinkScore struct {
	Relation int     `json:"relation"`
	Name     string  `json:"name,omitempty"`
	Score    float64 `json:"score"`
}

// ClassifyResponse is the wire form of one /classify answer. Scores are
// emitted through encoding/json's shortest-round-trip float formatting,
// so the decoded float64 values are bitwise identical to the solver's.
type ClassifyResponse struct {
	// Dataset echoes the legacy model name; Model is the same value
	// under the /v1 spelling.
	Dataset string `json:"dataset"`
	Model   string `json:"model,omitempty"`
	// ModelHash is the content identity (sha256:…) of the substrate
	// that answered: the activated artifact's blob hash, or the
	// canonical encoding hash of a raw-built model (the two agree for
	// equal graph + config — compilation is deterministic). Pin it as
	// model@sha256:… to keep getting bit-identical answers.
	ModelHash string `json:"model_hash,omitempty"`
	Seeds     int    `json:"seeds"`
	// Quality echoes the tier that actually solved the query ("exact",
	// "accelerated" or "fast"), after server defaults applied.
	Quality    string  `json:"quality"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Residual   float64 `json:"residual,omitempty"`
	// Stopped carries the cancellation error of a drained or cancelled
	// query; the scores are then the last completed iteration's state —
	// a usable partial solution.
	Stopped string `json:"stopped,omitempty"`
	// Coalesced is the width of the lockstep batch this query rode in
	// (1 = it ran alone).
	Coalesced int         `json:"coalesced"`
	Scores    []float64   `json:"scores,omitempty"`
	TopNodes  []NodeScore `json:"top_nodes,omitempty"`
	Links     []LinkScore `json:"links,omitempty"`
}

// ClassRanking is one class's slice of a /rank answer.
type ClassRanking struct {
	Class     int         `json:"class"`
	Name      string      `json:"name,omitempty"`
	Converged bool        `json:"converged"`
	Links     []LinkScore `json:"links"`
}

// RankResponse is the wire form of a /rank answer: the per-class
// link-type rankings of the dataset's own labelled classes. Quality is
// the tier that produced the rankings: "exact" (also serving
// quality=accelerated requests — the full solve is cached once per warm
// model, so there is no iteration count to cut) or "fast".
type RankResponse struct {
	Dataset string `json:"dataset"`
	Model   string `json:"model,omitempty"`
	// ModelHash is the substrate's content identity (see
	// ClassifyResponse.ModelHash).
	ModelHash string         `json:"model_hash,omitempty"`
	Quality   string         `json:"quality"`
	Classes   []ClassRanking `json:"classes"`
}

// ErrorResponse is the JSON body of every non-2xx answer. 503s
// additionally carry a machine-readable Reason so clients can
// distinguish "the model is quarantined" from ordinary load shedding
// without parsing prose.
type ErrorResponse struct {
	Error string `json:"error"`
	// Reason is one of the Reason* constants on 503 answers, empty on
	// every other status.
	Reason string `json:"reason,omitempty"`
}

// The machine-readable 503 reasons.
const (
	// ReasonQuarantined: the target model's ingest engine is poisoned;
	// reads keep serving the last sealed version, mutations are refused
	// until recovery (automatic with a WAL) or restart.
	ReasonQuarantined = "quarantined"
	// ReasonDraining: the server is shutting down gracefully.
	ReasonDraining = "draining"
	// ReasonOverloaded: transient load shedding (full queue, build
	// fault); retry after the Retry-After hint.
	ReasonOverloaded = "overloaded"
)
