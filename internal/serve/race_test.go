package serve

// The coalescing-correctness integration test: tmarkd serving on a real
// ephemeral TCP port, 64 concurrent /classify requests (with a cancel
// mix), against the bitwise reference of sequential Model.RunContext
// class results. Meant to run under -race (`make race` / the CI race
// job): the coalescer, cache and drain paths are the concurrent code
// this PR adds.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tmark/internal/tmark"
)

// TestServingCoalescedBitwiseEqualUnderRace fires 64 concurrent mixed
// /classify + cancel requests at an in-process tmarkd on a random port
// and asserts every completed response carries scores bitwise identical
// to the corresponding class of a sequential Model.RunContext solve.
// JSON's shortest-round-trip float64 formatting makes the comparison
// exact across the wire.
func TestServingCoalescedBitwiseEqualUnderRace(t *testing.T) {
	g := testGraph(100)
	cfg := fastConfig() // Workers=1, ICA off: deterministic, query ≡ class solve

	// The sequential reference: one full multi-class RunContext; class
	// c's result is what a query seeded with class c's labelled nodes
	// must reproduce.
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	full := model.RunContext(context.Background(), tmark.WithBatchedClasses(false))
	seeds := make([][]int, g.Q())
	for c := 0; c < g.Q(); c++ {
		seeds[c] = classSeeds(g, c)
	}

	s := newTestServer(t, g, cfg, func(o *Options) {
		o.MaxBatch = 8
		o.QueueDepth = 128
		o.MaxConcurrent = 2
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0") // random port, in-process
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
	ts.Start()
	defer ts.Close()

	const requests = 64
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	coalesced := make([]int, requests)
	for i := 0; i < requests; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			class := i % g.Q()
			body, err := json.Marshal(&ClassifyRequest{Seeds: seeds[class], Scores: true})
			if err != nil {
				errs <- err
				return
			}
			ctx := context.Background()
			if i%8 == 7 {
				// The cancel mix: an aggressive per-request deadline that
				// may fire before, during, or after the solve.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%16)*time.Millisecond)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/classify", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				if ctx.Err() != nil {
					return // cancelled client: abandoning the request is the point
				}
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			var out ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				if ctx.Err() != nil {
					return
				}
				errs <- fmt.Errorf("request %d: decode: %w", i, err)
				return
			}
			if out.Stopped != "" {
				// A cancelled column that still delivered: partial scores
				// are allowed, equality is not required.
				return
			}
			want := full.Classes[class]
			if out.Iterations != want.Iterations || !out.Converged {
				errs <- fmt.Errorf("request %d: iterations %d/converged %v, want %d/true",
					i, out.Iterations, out.Converged, want.Iterations)
				return
			}
			if len(out.Scores) != len(want.X) {
				errs <- fmt.Errorf("request %d: %d scores, want %d", i, len(out.Scores), len(want.X))
				return
			}
			for j := range want.X {
				if out.Scores[j] != want.X[j] {
					errs <- fmt.Errorf("request %d: scores[%d] = %v, want %v (bitwise)",
						i, j, out.Scores[j], want.X[j])
					return
				}
			}
			coalesced[i] = out.Coalesced
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	total, width := 0, 0
	for _, w := range coalesced {
		if w > 0 {
			total++
			width += w
		}
	}
	if total == 0 {
		t.Fatalf("no request completed successfully")
	}
	t.Logf("%d/%d requests completed; mean lockstep width %.1f",
		total, requests, float64(width)/float64(total))
}
