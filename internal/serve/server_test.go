package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/tmark"
)

// testGraph builds a small homophilous 4-class network with every class
// labelled.
func testGraph(n int) *hin.Graph {
	rng := rand.New(rand.NewSource(3))
	g := hin.New("c0", "c1", "c2", "c3")
	for i := 0; i < n; i++ {
		f := make([]float64, 16)
		for d := 0; d < 6; d++ {
			f[(i%4)*4+rng.Intn(4)]++
		}
		g.AddNode(fmt.Sprintf("n%d", i), f)
	}
	for k := 0; k < 3; k++ {
		g.AddRelation(fmt.Sprintf("rel%d", k), false)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if rng.Float64() < 0.7 {
				v = (v/4)*4 + u%4
				if v >= n {
					v -= 4
				}
			}
			if u != v {
				g.AddEdge(k, u, v)
			}
		}
	}
	for i := 0; i < n; i += 5 {
		g.SetLabels(i, i%4)
	}
	return g
}

// classSeeds lists class c's labelled nodes.
func classSeeds(g *hin.Graph, c int) []int {
	var out []int
	for i := 0; i < g.N(); i++ {
		if g.HasLabel(i, c) {
			out = append(out, i)
		}
	}
	return out
}

// fastConfig converges in a few iterations with one worker and no
// cross-class coupling, so query results are reproducible.
func fastConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.Epsilon = 1e-10
	cfg.ICAUpdate = false
	return cfg
}

// slowServeConfig never converges within the cap — for cancellation and
// drain tests.
func slowServeConfig() tmark.Config {
	cfg := fastConfig()
	cfg.Epsilon = 1e-300
	cfg.MaxIterations = 100000
	return cfg
}

func newTestServer(t *testing.T, g *hin.Graph, cfg tmark.Config, mutate func(*Options)) *Server {
	t.Helper()
	opts := Options{
		Datasets: map[string]*hin.Graph{"test": g},
		Config:   cfg,
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Drain)
	return s
}

func postClassify(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /classify: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func TestClassifyEndpoint(t *testing.T) {
	g := testGraph(80)
	cfg := fastConfig()
	s := newTestServer(t, g, cfg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seeds := classSeeds(g, 1)
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true, TopLinks: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Dataset != "test" || out.Seeds != len(seeds) || !out.Converged || out.Coalesced < 1 {
		t.Fatalf("bad response header fields: %+v", out)
	}
	if len(out.Scores) != g.N() {
		t.Fatalf("scores length %d, want %d", len(out.Scores), g.N())
	}
	if len(out.Links) != 2 {
		t.Fatalf("links length %d, want 2", len(out.Links))
	}
	if out.Links[0].Score < out.Links[1].Score {
		t.Fatalf("links not sorted: %+v", out.Links)
	}

	// The served scores round-trip bitwise to the direct solver result.
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	ref, err := model.SolveColumn(context.Background(), tmark.ColumnQuery{Seeds: seeds})
	if err != nil {
		t.Fatalf("SolveColumn: %v", err)
	}
	for i := range ref.X {
		if out.Scores[i] != ref.X[i] {
			t.Fatalf("scores[%d] = %v, want %v (bitwise)", i, out.Scores[i], ref.X[i])
		}
	}
	if out.Iterations != ref.Iterations {
		t.Fatalf("iterations %d, want %d", out.Iterations, ref.Iterations)
	}
}

func TestClassifyDefaultsTopNodes(t *testing.T) {
	g := testGraph(60)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0, 4}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Scores) != 0 {
		t.Fatalf("scores should be omitted by default")
	}
	if len(out.TopNodes) != DefaultTopNodes {
		t.Fatalf("top nodes %d, want %d", len(out.TopNodes), DefaultTopNodes)
	}
	for i := 1; i < len(out.TopNodes); i++ {
		if out.TopNodes[i-1].Score < out.TopNodes[i].Score {
			t.Fatalf("top nodes not sorted: %+v", out.TopNodes)
		}
	}
	if len(out.Links) != g.M() {
		t.Fatalf("links %d, want all %d", len(out.Links), g.M())
	}
}

func TestClassifyErrors(t *testing.T) {
	g := testGraph(60)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		return resp
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no seeds", `{}`, http.StatusBadRequest},
		{"unknown field", `{"seeds":[1],"bogus":true}`, http.StatusBadRequest},
		{"trailing data", `{"seeds":[1]} {"seeds":[2]}`, http.StatusBadRequest},
		{"negative seed", `{"seeds":[-1]}`, http.StatusBadRequest},
		{"out of range seed", `{"seeds":[100000]}`, http.StatusBadRequest},
		{"unknown dataset", `{"seeds":[1],"dataset":"nope"}`, http.StatusNotFound},
		{"bad alpha", `{"seeds":[1],"alpha":2.0}`, http.StatusBadRequest},
		{"bad max iterations", `{"seeds":[1],"max_iterations":-3}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := post(c.body).StatusCode; got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, got, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /classify: status %d, want 405", resp.StatusCode)
	}
}

func TestRankEndpoint(t *testing.T) {
	g := testGraph(80)
	cfg := fastConfig()
	s := newTestServer(t, g, cfg, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/rank?top=2")
	if err != nil {
		t.Fatalf("GET /rank: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Classes) != g.Q() {
		t.Fatalf("classes %d, want %d", len(out.Classes), g.Q())
	}
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	full := model.Run()
	for c, cl := range out.Classes {
		if cl.Name != g.Classes[c] || len(cl.Links) != 2 {
			t.Fatalf("class %d: %+v", c, cl)
		}
		wantTop := full.LinkRanking(c)[0].Relation
		if cl.Links[0].Relation != wantTop {
			t.Fatalf("class %d top link %d, want %d", c, cl.Links[0].Relation, wantTop)
		}
	}
}

func TestHealthzReadyzAndDrainFlip(t *testing.T) {
	g := testGraph(40)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", got)
	}
	s.Drain()
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d during drain (process is still alive)", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d during drain, want 503", got)
	}
	resp, _ := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/classify during drain = %d, want 503", resp.StatusCode)
	}
}

// TestDrainCancelsInflight: a request held at the solve gate when Drain
// fires still completes — with Stopped set and its partial (seed-state)
// scores — instead of running its full solve. The test pins the
// request deterministically by pre-filling the server's solve-slot
// semaphore, so the batch is collected but cannot start solving until
// after the drain has cancelled the solve context.
func TestDrainCancelsInflight(t *testing.T) {
	g := testGraph(60)
	s := newTestServer(t, g, slowServeConfig(), func(o *Options) { o.MaxConcurrent = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only solve slot.
	s.slots <- struct{}{}

	type reply struct {
		resp *http.Response
		body []byte
	}
	done := make(chan reply, 1)
	go func() {
		body, _ := json.Marshal(&ClassifyRequest{Seeds: []int{0, 4}, Scores: true})
		resp, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- reply{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		done <- reply{resp, buf.Bytes()}
	}()

	// Wait until the dispatcher has collected the request (the admission
	// queue empties) and is blocked on the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.requests.Load() == 0 || s.cache.queueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("request never reached the dispatcher")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	// Release the slot: the held batch now solves under the cancelled
	// drain context and must return within one solver iteration.
	<-s.slots

	select {
	case r := <-done:
		if r.resp == nil {
			t.Fatalf("in-flight request failed transport-level")
		}
		if r.resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request status %d: %s", r.resp.StatusCode, r.body)
		}
		var out ClassifyResponse
		if err := json.Unmarshal(r.body, &out); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if out.Stopped == "" {
			t.Fatalf("drained request should carry Stopped, got %+v", out)
		}
		// Within one solver iteration of the cancellation — here the
		// context was cancelled before the solve began, so not even one
		// iteration runs (the 100k-iteration cap would take far longer).
		if out.Iterations > 1 {
			t.Fatalf("drained request ran %d iterations, want ≤ 1", out.Iterations)
		}
		if len(out.Scores) != g.N() {
			t.Fatalf("partial scores length %d, want %d", len(out.Scores), g.N())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("drained request never completed")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatalf("Drain never returned")
	}
}

// TestCacheLRUEviction: hyperparameter overrides mint new cache keys and
// the LRU bound holds.
func TestCacheLRUEviction(t *testing.T) {
	g := testGraph(40)
	s := newTestServer(t, g, fastConfig(), func(o *Options) { o.CacheSize = 2 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, alpha := range []float64{0.5, 0.6, 0.7, 0.8} {
		a := alpha
		resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0}, Alpha: &a})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alpha=%v: status %d: %s", a, resp.StatusCode, body)
		}
	}
	if got := s.cache.size(); got != 2 {
		t.Fatalf("cache size %d, want 2", got)
	}
	if got := s.met.cacheEvictions.Load(); got != 2 {
		t.Fatalf("evictions %d, want 2", got)
	}
	// Re-hitting the most recent key is a cache hit.
	a := 0.8
	hitsBefore := s.met.cacheHits.Load()
	if resp, _ := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0}, Alpha: &a}); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-hit failed")
	}
	if s.met.cacheHits.Load() != hitsBefore+1 {
		t.Fatalf("expected a cache hit")
	}
}

// waitDepth polls the coalescer's admission queue until it holds want
// jobs.
func waitDepth(t *testing.T, c *coalescer, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.depth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, c.depth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerOverload: with the dispatcher held at the solve gate and
// a depth-1 queue filled, the next admission fails fast with
// ErrOverloaded.
func TestCoalescerOverload(t *testing.T) {
	g := testGraph(60)
	model, err := tmark.New(g, fastConfig())
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	slots := make(chan struct{}, 1)
	slots <- struct{}{} // hold every batch at the solve gate
	c := newCoalescer(model, 1, 1, slots, nil, nil)
	defer c.stop(true)

	res1 := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), tmark.ColumnQuery{Seeds: []int{0}})
		res1 <- err
	}()
	waitDepth(t, c, 0) // dispatcher took job 1 and is blocked on the slot
	res2 := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), tmark.ColumnQuery{Seeds: []int{4}})
		res2 <- err
	}()
	waitDepth(t, c, 1) // job 2 fills the queue
	if _, _, err := c.do(context.Background(), tmark.ColumnQuery{Seeds: []int{8}}); err != ErrOverloaded {
		t.Fatalf("third admission: err = %v, want ErrOverloaded", err)
	}
	<-slots // release the gate; both held queries now solve
	for i, ch := range []chan error{res1, res2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("request %d: %v", i+1, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never completed", i+1)
		}
	}
	c.stop(true)
	if _, _, err := c.do(context.Background(), tmark.ColumnQuery{Seeds: []int{0}}); err != ErrDraining {
		t.Fatalf("post-stop admission: err = %v, want ErrDraining", err)
	}
}

// TestCoalescingBatchesConcurrentQueries: queries that arrive while the
// dispatcher is held at the solve gate all fold into one lockstep batch,
// and the batch width is reported back to each of them.
func TestCoalescingBatchesConcurrentQueries(t *testing.T) {
	g := testGraph(60)
	model, err := tmark.New(g, fastConfig())
	if err != nil {
		t.Fatalf("tmark.New: %v", err)
	}
	slots := make(chan struct{}, 1)
	slots <- struct{}{} // hold the dispatcher at the solve gate
	c := newCoalescer(model, 8, 64, slots, nil, nil)
	defer c.stop(true)

	widths := make(chan int, 5)
	for i := 0; i < 5; i++ {
		i := i
		go func() {
			_, w, err := c.do(context.Background(), tmark.ColumnQuery{Seeds: []int{4 * i}})
			if err != nil {
				w = -1
			}
			widths <- w
		}()
	}
	// The dispatcher holds one job at the gate; the other four queue up.
	waitDepth(t, c, 4)
	<-slots // release: all five coalesce into one width-5 batch

	for i := 0; i < 5; i++ {
		if w := <-widths; w != 5 {
			t.Errorf("query rode a width-%d batch, want 5", w)
		}
	}
}

func TestNewOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Errorf("no datasets should be rejected")
	}
	g := testGraph(20)
	two := map[string]*hin.Graph{"a": g, "b": g}
	if _, err := New(Options{Datasets: two, Registry: obs.NewRegistry()}); err == nil {
		t.Errorf("ambiguous default should be rejected")
	}
	if _, err := New(Options{Datasets: two, Default: "c", Registry: obs.NewRegistry()}); err == nil {
		t.Errorf("missing default dataset should be rejected")
	}
	bad := tmark.DefaultConfig()
	bad.Alpha = 2
	if _, err := New(Options{Datasets: map[string]*hin.Graph{"a": g}, Config: bad, Registry: obs.NewRegistry()}); err == nil {
		t.Errorf("invalid base config should be rejected")
	}
}

func TestMetricsEndpointExposesServingGauges(t *testing.T) {
	g := testGraph(40)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"tmarkd_requests_total 1",
		"tmarkd_batches_total 1",
		"tmarkd_coalesce_ratio",
		"tmarkd_queue_depth",
		"tmarkd_classify_latency_p50_seconds",
		"tmarkd_classify_latency_p99_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
