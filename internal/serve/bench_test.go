package serve

// The serving-throughput benchmark behind BENCH_4.json: q = 8 concurrent
// single-class queries against one shared warm model, coalesced into one
// SolveColumns lockstep batch versus solved one SolveColumn at a time —
// the uncoalesced-serving baseline, which re-streams the tensors once
// per query. Epsilon is unreachable and MaxIterations fixed so both
// sides perform identical iteration counts; Workers is pinned to 1 so
// the ratio isolates the coalescing, not pool scheduling.

import (
	"context"
	"fmt"
	"testing"

	"tmark/internal/tmark"
)

func BenchmarkCoalescedServing(b *testing.B) {
	const q = 8
	for _, n := range []int{700, 7000} {
		g := testGraph(n)
		cfg := tmark.DefaultConfig()
		cfg.Workers = 1
		cfg.ICAUpdate = false
		cfg.Gamma = 0 // tensor-streaming dominated, like production HINs
		cfg.Epsilon = 1e-300
		cfg.MaxIterations = 30
		model, err := tmark.New(g, cfg)
		if err != nil {
			b.Fatalf("tmark.New: %v", err)
		}
		queries := make([]tmark.ColumnQuery, q)
		for i := range queries {
			queries[i] = tmark.ColumnQuery{Seeds: classSeeds(g, i%g.Q())}
		}
		ctx := context.Background()

		b.Run(fmt.Sprintf("mode=coalesced/n=%d/q=%d", n, q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.SolveColumns(ctx, queries); err != nil {
					b.Fatal(err)
				}
			}
			reportQueriesPerSec(b, q)
		})
		b.Run(fmt.Sprintf("mode=uncoalesced/n=%d/q=%d", n, q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, query := range queries {
					if _, err := model.SolveColumn(ctx, query); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportQueriesPerSec(b, q)
		})
	}
}

func reportQueriesPerSec(b *testing.B, q int) {
	b.ReportMetric(float64(q)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
