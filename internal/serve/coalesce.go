package serve

// The request coalescer. Concurrent /classify queries against one warm
// model are independent single-class solves over the same O/R/W, so
// instead of q independent runs each re-streaming every tensor entry,
// the coalescer folds waiting queries into one SolveColumns lockstep
// batch: an n×q blocked solve that streams the model once per iteration
// for all q columns. Each request's HTTP context rides in as the
// column's context, so a cancelled request retires its column mid-batch
// while the rest keep iterating — cancellation costs at most one solver
// iteration and never restarts the batch.
//
// Admission is a bounded queue with fail-fast overflow: a full queue
// rejects immediately (the caller maps it to 503) instead of building an
// unbounded backlog. One dispatcher goroutine takes a blocking first
// job, drains whatever else is already queued (up to the batch cap), and
// solves; a server-wide slot semaphore bounds how many batches solve
// concurrently across all warm models.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tmark/internal/fault"
	"tmark/internal/shard"
	"tmark/internal/tmark"
)

// ErrOverloaded reports a full admission queue; clients should retry
// with backoff.
var ErrOverloaded = errors.New("serve: admission queue full")

// ErrDraining reports a coalescer that has stopped accepting work.
var ErrDraining = errors.New("serve: draining")

// ErrModelFault reports a solve or build that panicked. The faulting
// model is quarantined — dropped from the cache so the next request
// rebuilds it from the immutable graph — and the requests that hit the
// fault are answered with this error (a 503: the rebuild usually
// clears a transient corruption, so clients should retry).
var ErrModelFault = errors.New("serve: model quarantined after fault")

// job is one enqueued query and its reply channel (buffered so the
// dispatcher never blocks on delivery).
type job struct {
	query tmark.ColumnQuery
	resp  chan jobResult
}

type jobResult struct {
	res   tmark.ColumnResult
	width int // lockstep batch width the query rode in
	err   error
}

// coalescer batches queries against one warm model.
type coalescer struct {
	model    *tmark.Model
	maxBatch int
	queue    chan *job
	batch    []*job // dispatcher-owned collection scratch

	// solveCtx is the base context of every batch solve; cancelling it
	// stops in-flight and queued work within one solver iteration.
	solveCtx context.Context
	cancel   context.CancelFunc

	slots chan struct{} // server-wide solve semaphore; nil = unbounded

	// onPanic is invoked (at most per batch) when a batch solve panics,
	// after the panic is recovered; the cache wires it to quarantine
	// this coalescer's model. The field is assigned before the warm
	// model is published, so the dispatcher never observes a torn write.
	onPanic func()

	closed   atomic.Bool   // intake rejected once set
	drainCh  chan struct{} // signals the dispatcher to empty and exit
	stopOnce sync.Once
	done     chan struct{} // closed when the dispatcher has exited

	// dist, when non-nil, is the shard-worker coordinator for exactly
	// this model (the server matches content hashes before wiring it).
	// Batches then solve through the worker fleet; a failed fleet puts
	// distributed solving on a cooldown (distDownUntil, unix nanos) and
	// batches run locally until it expires.
	dist          *shard.Coordinator
	distDownUntil atomic.Int64

	met *metrics
}

// distCooldown is how long a coalescer solves locally after its worker
// fleet fails a pass, before probing the fleet again.
const distCooldown = 15 * time.Second

func newCoalescer(model *tmark.Model, maxBatch, queueDepth int, slots chan struct{}, met *metrics, dist *shard.Coordinator) *coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	c := &coalescer{
		model:    model,
		maxBatch: maxBatch,
		queue:    make(chan *job, queueDepth),
		batch:    make([]*job, 0, maxBatch),
		slots:    slots,
		drainCh:  make(chan struct{}),
		done:     make(chan struct{}),
		dist:     dist,
		met:      met,
	}
	c.solveCtx, c.cancel = context.WithCancel(context.Background())
	go c.dispatch()
	return c
}

// do enqueues one query and waits for its result. ctx is the request's
// own context: it cancels only this query's column, and the partial
// result still comes back through the normal path. do fails fast with
// ErrOverloaded on a full queue and ErrDraining once the coalescer is
// stopping.
func (c *coalescer) do(ctx context.Context, q tmark.ColumnQuery) (tmark.ColumnResult, int, error) {
	if c.closed.Load() {
		return tmark.ColumnResult{}, 0, ErrDraining
	}
	q.Ctx = ctx
	j := &job{query: q, resp: make(chan jobResult, 1)}
	select {
	case c.queue <- j:
	default:
		return tmark.ColumnResult{}, 0, ErrOverloaded
	}
	select {
	case r := <-j.resp:
		return r.res, r.width, r.err
	case <-c.done:
		// The dispatcher exited while we waited. Either it answered us on
		// its way out (the reply is buffered) or our enqueue raced past
		// the drain sweep.
		select {
		case r := <-j.resp:
			return r.res, r.width, r.err
		default:
			return tmark.ColumnResult{}, 0, ErrDraining
		}
	}
}

// dispatch is the coalescer's single consumer: block for one job, fold
// in whatever else is queued, solve, repeat. On drain it empties the
// queue (those solves run under the already-cancelled solveCtx, so each
// returns within one iteration) and exits.
func (c *coalescer) dispatch() {
	defer close(c.done)
	for {
		select {
		case j := <-c.queue:
			c.collect(j)
		case <-c.drainCh:
			for {
				select {
				case j := <-c.queue:
					c.collect(j)
				default:
					return
				}
			}
		}
	}
}

// collect acquires a solve slot, folds everything queued behind first
// into one batch (queries that arrived while waiting for the slot
// coalesce too — the busier the server, the wider the batches), and
// solves it.
func (c *coalescer) collect(first *job) {
	batch := append(c.batch[:0], first)
	if c.slots != nil {
		c.slots <- struct{}{}
		defer func() { <-c.slots }()
	}
fill:
	for len(batch) < c.maxBatch {
		select {
		case j := <-c.queue:
			batch = append(batch, j)
		default:
			break fill
		}
	}
	c.run(batch)
}

// run executes one lockstep batch and answers every job. SolveColumns
// only fails on query validation, and the server validates before
// enqueueing, so err is defensively forwarded but not expected — except
// for ErrModelFault, which solve synthesises from a recovered panic.
func (c *coalescer) run(batch []*job) {
	queries := make([]tmark.ColumnQuery, len(batch))
	for i, j := range batch {
		queries[i] = j.query
	}
	start := time.Now()
	out, err := c.solve(queries)
	if c.met != nil {
		c.met.observeBatch(len(batch), time.Since(start))
	}
	for i, j := range batch {
		r := jobResult{width: len(batch), err: err}
		if err == nil {
			r.res = out[i]
		}
		j.resp <- r
	}
}

// solve runs the lockstep solve with a panic barrier: a crashing solver
// must take down neither the dispatcher (which still owes every queued
// job an answer) nor the process. A recovered panic quarantines the
// model via onPanic and surfaces as ErrModelFault on every job of the
// batch.
func (c *coalescer) solve(queries []tmark.ColumnQuery) (out []tmark.ColumnResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out, err = nil, fmt.Errorf("%w: batch solve panicked: %v", ErrModelFault, rec)
			if c.met != nil {
				c.met.panics.Inc()
			}
			if c.onPanic != nil {
				c.onPanic()
			}
		}
	}()
	if fault.Enabled() {
		fault.Fire(fault.ServeBatchSolve, len(queries))
	}
	var opts []tmark.RunOption
	var ap *shard.Applier
	if c.dist != nil && time.Now().UnixNano() >= c.distDownUntil.Load() {
		// Pin the local worker count to the shard count so a mid-solve
		// degradation continues with identical arithmetic — the answer
		// stays bitwise independent of when (or whether) the fleet died.
		ap = c.dist.Applier(c.solveCtx)
		opts = append(opts, tmark.WithWorkers(c.dist.Workers()), tmark.WithDistributedApply(ap))
	}
	out, err = c.model.SolveColumns(c.solveCtx, queries, opts...)
	if ap != nil && ap.Err() != nil {
		c.distDownUntil.Store(time.Now().Add(distCooldown).UnixNano())
		if c.met != nil {
			c.met.shardDegrades.Inc()
		}
	}
	return out, err
}

// stop closes intake and waits for the dispatcher to answer everything
// still queued. cancelInflight additionally cancels the solve context
// first, so in-flight and queued solves return within one solver
// iteration with partial results — the SIGTERM drain path. Eviction
// uses stop(false): the retired model finishes its accepted work at
// full quality and only then goes away.
func (c *coalescer) stop(cancelInflight bool) {
	c.stopOnce.Do(func() {
		c.closed.Store(true)
		if cancelInflight {
			c.cancel()
		}
		close(c.drainCh)
	})
	<-c.done
	c.cancel() // release the context either way once everything is done
}

// depth reports the current admission-queue length (a metrics gauge).
func (c *coalescer) depth() int { return len(c.queue) }
