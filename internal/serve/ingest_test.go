package serve

// Tests for the streaming-ingest surface: POST /v1/ingest semantics,
// the version-pinned read contract while batches apply (satellite of
// the live-graph test layer), quarantine surfacing as 503 + Retry-After,
// and GET /v1/diff.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tmark/internal/fault"
	"tmark/internal/stream"
)

// postIngest drives one /v1/ingest call against the server's handler.
func postIngest(t *testing.T, s *Server, req any) (*httptest.ResponseRecorder, *IngestResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var out IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode ingest response: %v\n%s", err, rec.Body.String())
	}
	return rec, &out
}

// classifyHash runs one /v1/classify and returns (status, model_hash).
func classifyHash(t *testing.T, s *Server, model string, seed int) (int, string) {
	t.Helper()
	body := fmt.Sprintf(`{"model":%q,"seeds":[%d]}`, model, seed)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/classify", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec.Code, ""
	}
	var out ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode classify response: %v", err)
	}
	return rec.Code, out.ModelHash
}

func ingestDeltas(b int) []stream.Delta {
	return []stream.Delta{{Op: stream.OpAdd, From: b % 7, To: (b + 9) % 20, Relation: b % 3, Weight: 0.25}}
}

// TestIngestEndpoint: a batch applies, seals a new version, and the
// next classify serves it — the name now resolves to the new content
// hash through the re-tagged registry.
func TestIngestEndpoint(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
	})
	code, baseHash := classifyHash(t, s, "test", 0)
	if code != http.StatusOK {
		t.Fatalf("base classify: status %d", code)
	}

	rec, res := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
	if res == nil {
		t.Fatalf("ingest failed: %d %s", rec.Code, rec.Body.String())
	}
	if res.Seq != 1 || !res.Sealed {
		t.Fatalf("first batch: seq %d sealed %v, want 1/true", res.Seq, res.Sealed)
	}
	if res.OldHash != baseHash {
		t.Fatalf("old hash %s, classify served %s", res.OldHash, baseHash)
	}
	if res.NewHash == res.OldHash || !strings.HasPrefix(res.NewHash, "sha256:") {
		t.Fatalf("new hash %s (old %s)", res.NewHash, res.OldHash)
	}
	if res.TouchedColumns == 0 || res.TouchedTubes == 0 {
		t.Fatalf("batch touched nothing: %+v", res)
	}
	// The first batch has no previous stationary state (no Solve ran on
	// the base version), so it re-solves cold; the second warms.
	_, res2 := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(1)})
	if res2 == nil {
		t.Fatal("second ingest failed")
	}
	if !res2.Warm {
		t.Fatal("second batch did not warm-restart")
	}
	if res2.OldHash != res.NewHash {
		t.Fatalf("version chain broken: %s -> %s", res.NewHash, res2.OldHash)
	}

	code, gotHash := classifyHash(t, s, "test", 0)
	if code != http.StatusOK {
		t.Fatalf("classify after ingest: status %d", code)
	}
	if gotHash != res2.NewHash {
		t.Fatalf("classify serves %s after ingest, want %s", gotHash, res2.NewHash)
	}
	// The pre-ingest version stays addressable by pin.
	if code, h := classifyHash(t, s, baseHash, 0); code != http.StatusOK || h != baseHash {
		t.Fatalf("pinned pre-ingest classify: status %d hash %s, want 200 %s", code, h, baseHash)
	}
}

// TestIngestServesEngineWithoutRegistry is the regression test for the
// latent staleness hazard: without a model directory nothing re-tags,
// so a name's cache key cannot change — a rebuild from the startup
// graph would serve pre-ingest data forever. The fix routes such
// rebuilds through the live engine.
func TestIngestServesEngineWithoutRegistry(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), nil)
	if _, baseHash := classifyHash(t, s, "test", 0); baseHash == "" {
		t.Fatal("base classify failed")
	}
	var last string
	for b := 0; b < 3; b++ {
		rec, res := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(b)})
		if res == nil {
			t.Fatalf("ingest %d: %d %s", b, rec.Code, rec.Body.String())
		}
		if res.Sealed {
			t.Fatal("no registry configured, yet the version claims sealed")
		}
		last = res.NewHash
		code, got := classifyHash(t, s, "test", 0)
		if code != http.StatusOK {
			t.Fatalf("classify after batch %d: status %d", b, code)
		}
		if got != last {
			t.Fatalf("batch %d: classify serves %s, engine is at %s (stale rebuild)", b, got, last)
		}
	}
}

// TestIngestErrors: malformed bodies, unknown models, and graph-level
// delta violations all reject cleanly without moving the engine.
func TestIngestErrors(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), nil)
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body)))
		return rec
	}
	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty deltas", `{"model":"test","deltas":[]}`, http.StatusBadRequest},
		{"unknown op", `{"model":"test","deltas":[{"op":"set","from":0,"to":1,"relation":0,"weight":1}]}`, http.StatusBadRequest},
		{"unknown field", `{"model":"test","deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}],"bogus":1}`, http.StatusBadRequest},
		{"trailing data", `{"model":"test","deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]} extra`, http.StatusBadRequest},
		{"unknown model", `{"model":"nope","deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]}`, http.StatusNotFound},
		{"relation out of range", `{"model":"test","deltas":[{"op":"add","from":0,"to":1,"relation":9,"weight":1}]}`, http.StatusBadRequest},
		{"remove absent edge", `{"model":"test","deltas":[{"op":"remove","from":0,"to":0,"relation":0}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := post(tc.body); rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body.String())
		}
	}
	if rec := post(`{"model":"test","deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]}`); rec.Code != http.StatusOK {
		t.Fatalf("valid batch after rejections: %d %s", rec.Code, rec.Body.String())
	}
	if s.engine("test").Current().Seq != 1 {
		t.Fatal("rejected batches moved the engine")
	}
}

// TestIngestQuarantineSurfacesRetryAfter is the serve-level chaos
// contract: a panic mid-ingest quarantines the engine, the client sees
// a 503 with the Retry-After hint, further ingests keep failing 503 —
// and reads still serve the last sealed version.
func TestIngestQuarantineSurfacesRetryAfter(t *testing.T) {
	t.Cleanup(fault.Reset)
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
	})
	_, good := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
	if good == nil {
		t.Fatal("good ingest failed")
	}

	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: ingest crash") }))
	defer remove()
	rec, _ := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(1)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("panicked ingest: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	// Quarantine is sticky even though the fault hook is inert now.
	rec, _ = postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(2)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after quarantine: status %d, want 503", rec.Code)
	}
	code, hash := classifyHash(t, s, "test", 0)
	if code != http.StatusOK {
		t.Fatalf("classify on quarantined model: status %d", code)
	}
	if hash != good.NewHash {
		t.Fatalf("classify serves %s, want last sealed %s", hash, good.NewHash)
	}
}

// TestIngestPinsConcurrentReaders races classify traffic against a
// stream of ingest batches: every 200 answer must carry the content
// hash of some sealed version — never a torn or unsealed state. Run
// under -race (make serve-race / make chaos) this also proves the
// engine's copy-on-write publication.
func TestIngestPinsConcurrentReaders(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
		o.MaxConcurrent = 8
		o.QueueDepth = 256
	})
	code, baseHash := classifyHash(t, s, "test", 0)
	if code != http.StatusOK {
		t.Fatal("base classify failed")
	}
	sealed := map[string]bool{baseHash: true}
	var observed sync.Map // hash -> true, recorded by the readers

	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan int, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				code, hash := classifyHash(t, s, "test", r)
				if code == http.StatusServiceUnavailable {
					continue // load shed under the race; retryable by contract
				}
				if code != http.StatusOK {
					select {
					case errs <- code:
					default:
					}
					return
				}
				observed.Store(hash, true)
			}
		}(r)
	}
	for b := 0; b < 5; b++ {
		rec, res := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(b)})
		if res == nil {
			t.Fatalf("ingest %d: %d %s", b, rec.Code, rec.Body.String())
		}
		sealed[res.NewHash] = true
	}
	close(done)
	wg.Wait()
	select {
	case code := <-errs:
		t.Fatalf("reader saw status %d", code)
	default:
	}
	// Every hash any reader was answered with must name a sealed version:
	// a mid-ingest read pins either the pre-ingest or the post-ingest
	// model, never a torn in-between state.
	observed.Range(func(k, _ any) bool {
		if !sealed[k.(string)] {
			t.Errorf("reader observed %q — not a sealed version", k.(string))
		}
		return true
	})
}

// TestDiffEndpoint: the diff of a version against itself is empty; the
// diff across an ingest reports the universe size and the two content
// identities, and unknown refs 404.
func TestDiffEndpoint(t *testing.T) {
	s := newTestServer(t, testGraph(20), fastConfig(), func(o *Options) {
		o.ModelDir = t.TempDir()
	})
	_, res := postIngest(t, s, &IngestRequest{Model: "test", Deltas: ingestDeltas(0)})
	if res == nil {
		t.Fatal("ingest failed")
	}
	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	rec := get("/v1/diff?a=" + res.OldHash + "&b=" + res.NewHash)
	if rec.Code != http.StatusOK {
		t.Fatalf("diff: status %d %s", rec.Code, rec.Body.String())
	}
	var d DiffResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("decode diff: %v", err)
	}
	if d.Nodes != 20 {
		t.Fatalf("diff nodes %d, want 20", d.Nodes)
	}
	if d.AHash != res.OldHash || d.BHash != res.NewHash {
		t.Fatalf("diff identities %s/%s, want %s/%s", d.AHash, d.BHash, res.OldHash, res.NewHash)
	}

	rec = get("/v1/diff?a=" + res.NewHash + "&b=" + res.NewHash)
	if rec.Code != http.StatusOK {
		t.Fatalf("self diff: status %d", rec.Code)
	}
	var self DiffResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &self); err != nil {
		t.Fatal(err)
	}
	if len(self.Flips) != 0 || len(self.Shifts) != 0 {
		t.Fatalf("self diff not empty: %d flips, %d shifts", len(self.Flips), len(self.Shifts))
	}

	for _, url := range []string{
		"/v1/diff?a=" + res.NewHash, // missing b
		"/v1/diff?a=nope&b=" + res.NewHash,
		"/v1/diff?a=" + res.NewHash + "&b=" + res.NewHash + "&top=-1",
	} {
		if rec := get(url); rec.Code == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", url)
		}
	}
}
