package serve

// Model sourcing. A warm model comes from one of two places: an
// artifact blob resolved through the registry (mmap + verify + O(1)
// assemble — the fast path), or a raw build from a loaded graph (the
// cold path, also the fallback when a resolved blob fails
// verification). Either way the entry carries the content hash of the
// substrate it serves, echoed in every response, so a client can pin
// the exact model that answered with model@sha256:….

import (
	"fmt"
	"net/http"
	"sort"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/tmark"
)

// contentHash renders the entry's substrate identity for responses.
func (e *warmModel) contentHash() string {
	if e.hash == "" {
		return ""
	}
	return "sha256:" + e.hash
}

// buildModel is the cache's build function: artifact activation when
// the key resolved to a blob, raw graph build otherwise — and, when a
// resolved blob turns out corrupt, truncated or incompatible, the raw
// build as fallback so a damaged model store degrades to slow cold
// starts instead of an outage.
func (s *Server) buildModel(key modelKey) (buildResult, error) {
	var actErr error
	if key.hash != "" {
		br, err := s.activateArtifact(key)
		if err == nil {
			s.met.artifactHits.Inc()
			return br, nil
		}
		s.met.artifactFails.Inc()
		if key.name == "" {
			// Nothing to rebuild from: the reference named only bytes.
			return buildResult{}, fmt.Errorf("serve: artifact sha256:%s failed verification with no graph fallback: %w", key.hash, err)
		}
		actErr = err
	}
	g, ok := s.opts.Datasets[key.name]
	if !ok {
		return buildResult{}, fmt.Errorf("serve: unknown model %q", key.name)
	}
	if key.hash == "" {
		s.met.artifactMisses.Inc()
	}
	if eng := s.engine(key.name); eng != nil {
		// The loaded graph froze at startup; once a live ingest engine
		// exists for the name, deltas may have moved the model past it,
		// and a raw rebuild would silently serve pre-ingest data. The
		// engine's current sealed version is the truth.
		br, err := s.buildFromEngine(eng, key)
		if err == nil || actErr == nil {
			return br, err
		}
		return br, fmt.Errorf("%w (after artifact fallback: %v)", err, actErr)
	}
	m, err := tmark.New(g, key.cfg)
	if err != nil {
		if actErr != nil {
			err = fmt.Errorf("%w (after artifact fallback: %v)", err, actErr)
		}
		return buildResult{}, err
	}
	// The canonical encoding names the rebuilt model too: deterministic
	// compilation means a rebuild and the blob `tmark build` would write
	// share one identity, so responses stay pinnable either way.
	data, err := artifact.EncodeModel(g, key.cfg, m.Substrate())
	if err != nil {
		return buildResult{}, err
	}
	return buildResult{model: m, hash: artifact.Hash(data)}, nil
}

// activateArtifact opens, verifies and assembles the blob a key
// resolved to. Every failure — unreadable file, truncation, checksum or
// content-hash mismatch, incompatible stored channel — comes back as an
// error for buildModel's fallback logic; none of them can produce a
// model that serves wrong answers, because nothing unverified reaches
// the kernels.
func (s *Server) activateArtifact(key modelKey) (buildResult, error) {
	a, _, err := s.registry.OpenRef(artifact.Ref{Hash: key.hash})
	if err != nil {
		return buildResult{}, err
	}
	if fault.Enabled() {
		if err := fault.Check(fault.ArtifactActivate); err != nil {
			return buildResult{}, err
		}
	}
	// FeatureTopK shapes the compiled channel and has no per-request
	// override, so an activation adopts the artifact's value — the
	// server's -topk only governs raw builds. A Gamma mismatch (config
	// wants a feature channel, artifact stores none) still fails:
	// Gamma is request-controlled arithmetic the substrate cannot fake.
	cfg := key.cfg
	cfg.FeatureTopK = a.BuiltConfig.FeatureTopK
	m, err := a.Activate(cfg)
	if err != nil {
		return buildResult{}, err
	}
	return buildResult{model: m, hash: key.hash, art: a}, nil
}

// ModelInfo is one /v1/models listing entry.
type ModelInfo struct {
	// Name is the model's reference name; empty for an untagged blob
	// reachable only by hash.
	Name string `json:"name,omitempty"`
	// Hash is the content hash (sha256:…) the name currently resolves
	// to; empty for a graph-only model that has never been compiled.
	Hash string `json:"hash,omitempty"`
	// Source tells where queries against this model are served from:
	// "artifact" (mmap activation), "graph" (raw build), or
	// "artifact+graph" (activation with rebuild fallback).
	Source string `json:"source"`
	// Default marks the model serving requests that name none.
	Default bool `json:"default,omitempty"`
}

// ModelsResponse is the wire form of a /v1/models answer.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// handleModels lists every model the server can resolve: loaded graphs,
// registry references, and the untagged blobs of the model directory.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.met.requests.Inc()
	byName := map[string]*ModelInfo{}
	var infos []*ModelInfo
	for name := range s.opts.Datasets {
		mi := &ModelInfo{Name: name, Source: "graph"}
		byName[name] = mi
		infos = append(infos, mi)
	}
	if s.registry != nil {
		listed, err := s.registry.List()
		if err != nil {
			s.met.errors.Inc()
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		for _, ref := range listed {
			if artifact.IsShardRefName(ref.Name) {
				// Shard blobs are worker-consumed sub-tensor slices,
				// not models a /v1/classify can target.
				continue
			}
			if mi, ok := byName[ref.Name]; ok && ref.Name != "" {
				mi.Hash = "sha256:" + ref.Hash
				mi.Source = "artifact+graph"
				continue
			}
			mi := &ModelInfo{Name: ref.Name, Hash: "sha256:" + ref.Hash, Source: "artifact"}
			if ref.Name != "" {
				byName[ref.Name] = mi
			}
			infos = append(infos, mi)
		}
	}
	sort.Slice(infos, func(i, j int) bool {
		if (infos[i].Name == "") != (infos[j].Name == "") {
			return infos[j].Name == "" // named first, blobs last
		}
		if infos[i].Name != infos[j].Name {
			return infos[i].Name < infos[j].Name
		}
		return infos[i].Hash < infos[j].Hash
	})
	resp := &ModelsResponse{}
	for _, mi := range infos {
		mi.Default = mi.Name != "" && mi.Name == s.opts.Default
		resp.Models = append(resp.Models, *mi)
	}
	writeJSON(w, http.StatusOK, resp)
}
