package serve

// End-to-end tests of the quality knob: per-request tier selection on
// /classify and /rank, the server-wide default, the response echo, and
// the hard 400 on unknown spellings.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tmark/internal/tmark"
)

func classifyAt(t *testing.T, url string, seeds []int, quality string) ClassifyResponse {
	t.Helper()
	resp, body := postClassify(t, url, &ClassifyRequest{Seeds: seeds, Quality: quality})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quality %q: status %d: %s", quality, resp.StatusCode, body)
	}
	var out ClassifyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

func TestClassifyQualityTiers(t *testing.T) {
	g := testGraph(80)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	seeds := classSeeds(g, 2)

	exact := classifyAt(t, ts.URL, seeds, "exact")
	if exact.Quality != "exact" || !exact.Converged {
		t.Fatalf("exact response: %+v", exact)
	}
	blank := classifyAt(t, ts.URL, seeds, "")
	if blank.Quality != "exact" {
		t.Fatalf("blank quality echoed %q, want the exact default", blank.Quality)
	}

	accel := classifyAt(t, ts.URL, seeds, "accelerated")
	if accel.Quality != "accelerated" || !accel.Converged {
		t.Fatalf("accelerated response: %+v", accel)
	}
	if accel.Iterations > exact.Iterations {
		t.Errorf("accelerated took %d iterations, exact %d", accel.Iterations, exact.Iterations)
	}
	if accel.TopNodes[0].Node != exact.TopNodes[0].Node {
		t.Errorf("accelerated top node %d, exact %d", accel.TopNodes[0].Node, exact.TopNodes[0].Node)
	}

	fast := classifyAt(t, ts.URL, seeds, "fast")
	if fast.Quality != "fast" || !fast.Converged {
		t.Fatalf("fast response: %+v", fast)
	}
	if len(fast.TopNodes) == 0 || len(fast.Links) == 0 {
		t.Fatalf("fast response missing rankings: %+v", fast)
	}
}

// An unknown quality is a client error, never a silent default.
func TestClassifyUnknownQualityRejected(t *testing.T) {
	g := testGraph(40)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: []int{0}, Quality: "best"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "quality") {
		t.Fatalf("error does not name the quality field: %s", body)
	}
}

// Options.DefaultQuality applies to requests that name no tier, and a
// per-request tier still overrides it.
func TestClassifyServerDefaultQuality(t *testing.T) {
	g := testGraph(60)
	s := newTestServer(t, g, fastConfig(), func(o *Options) {
		o.DefaultQuality = tmark.QualityFast
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	seeds := classSeeds(g, 0)

	blank := classifyAt(t, ts.URL, seeds, "")
	if blank.Quality != "fast" {
		t.Fatalf("default tier echoed %q, want fast", blank.Quality)
	}
	exact := classifyAt(t, ts.URL, seeds, "exact")
	if exact.Quality != "exact" {
		t.Fatalf("override echoed %q, want exact", exact.Quality)
	}
}

func rankAt(t *testing.T, url, query string) (*http.Response, RankResponse) {
	t.Helper()
	resp, err := http.Get(url + "/rank" + query)
	if err != nil {
		t.Fatalf("GET /rank%s: %v", query, err)
	}
	defer resp.Body.Close()
	var out RankResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp, out
}

func TestRankQualityParam(t *testing.T) {
	g := testGraph(80)
	s := newTestServer(t, g, fastConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, fast := rankAt(t, ts.URL, "?quality=fast&top=2")
	if resp.StatusCode != http.StatusOK || fast.Quality != "fast" {
		t.Fatalf("fast rank: status %d, quality %q", resp.StatusCode, fast.Quality)
	}
	if len(fast.Classes) != g.Q() {
		t.Fatalf("fast rank classes %d, want %d", len(fast.Classes), g.Q())
	}
	for c, cl := range fast.Classes {
		if !cl.Converged || len(cl.Links) != 2 {
			t.Fatalf("fast rank class %d: %+v", c, cl)
		}
	}

	// The accelerated tier serves the cached reference solve on /rank.
	resp, accel := rankAt(t, ts.URL, "?quality=accelerated")
	if resp.StatusCode != http.StatusOK || accel.Quality != "exact" {
		t.Fatalf("accelerated rank: status %d, quality %q (want the exact alias)", resp.StatusCode, accel.Quality)
	}

	resp, _ = rankAt(t, ts.URL, "?quality=best")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown quality: status %d, want 400", resp.StatusCode)
	}
}
