package serve

// Artifact-backed serving: equivalence (an mmap-activated model must be
// bitwise indistinguishable from a raw build), the /v1 surface, and the
// chaos cases — truncated, corrupted and swapped blobs must fall back
// to a rebuild and keep serving correct answers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/shard"
	"tmark/internal/tmark"
)

// buildRegistry compiles g under cfg into a fresh registry rooted in a
// temp dir, tagged as name, returning the dir and the content hash.
func buildRegistry(t *testing.T, name string, g *hin.Graph, cfg tmark.Config) (string, string) {
	t.Helper()
	dir := t.TempDir()
	reg, err := artifact.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := reg.Put(blob); err != nil {
		t.Fatal(err)
	}
	if err := reg.Tag(name, hash); err != nil {
		t.Fatal(err)
	}
	return dir, hash
}

// tryClassify posts one scores-on classify to the /v1 surface without
// touching t, so concurrent callers can report errors to the main
// goroutine.
func tryClassify(url string, req *ClassifyRequest) (*ClassifyResponse, error) {
	req.Scores = true
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	out := &ClassifyResponse{}
	if err := json.Unmarshal(buf.Bytes(), out); err != nil {
		return nil, err
	}
	return out, nil
}

// classifyScores is tryClassify with failures fatal to the test.
func classifyScores(t *testing.T, url string, req *ClassifyRequest) *ClassifyResponse {
	t.Helper()
	out, err := tryClassify(url, req)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	return out
}

func TestArtifactActivationBitwiseIdentical(t *testing.T) {
	g := testGraph(80)
	cfg := fastConfig()
	dir, hash := buildRegistry(t, "test", g, cfg)

	raw := newTestServer(t, g, cfg, nil)
	art := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
	tsRaw := httptest.NewServer(raw.Handler())
	defer tsRaw.Close()
	tsArt := httptest.NewServer(art.Handler())
	defer tsArt.Close()

	for c := 0; c < 4; c++ {
		req := &ClassifyRequest{Seeds: classSeeds(g, c)}
		a := classifyScores(t, tsRaw.URL, req)
		b := classifyScores(t, tsArt.URL, &ClassifyRequest{Seeds: classSeeds(g, c)})
		if len(a.Scores) == 0 || len(a.Scores) != len(b.Scores) {
			t.Fatalf("score lengths %d vs %d", len(a.Scores), len(b.Scores))
		}
		for i := range a.Scores {
			if a.Scores[i] != b.Scores[i] {
				t.Fatalf("class %d: score[%d] %v (raw) vs %v (artifact): not bitwise equal", c, i, a.Scores[i], b.Scores[i])
			}
		}
		if a.Iterations != b.Iterations {
			t.Fatalf("iterations %d vs %d", a.Iterations, b.Iterations)
		}
		// Deterministic compilation: the raw build's canonical hash IS
		// the blob hash, so both servers echo the same pin.
		want := "sha256:" + hash
		if a.ModelHash != want || b.ModelHash != want {
			t.Fatalf("model hashes %q (raw) / %q (artifact), want %q", a.ModelHash, b.ModelHash, want)
		}
	}
	if got := art.met.artifactHits.Load(); got == 0 {
		t.Fatal("artifact server served without an artifact hit")
	}
	if got := raw.met.artifactMisses.Load(); got == 0 {
		t.Fatal("raw server recorded no artifact miss")
	}

	// /v1/rank equivalence, full JSON bodies.
	rankBody := func(url string) []byte {
		resp, err := http.Get(url + "/v1/rank?model=test&top=3")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rank status %d: %s", resp.StatusCode, buf.Bytes())
		}
		return buf.Bytes()
	}
	if a, b := rankBody(tsRaw.URL), rankBody(tsArt.URL); !bytes.Equal(a, b) {
		t.Fatalf("/v1/rank differs:\nraw:      %s\nartifact: %s", a, b)
	}
}

func TestV1SurfaceAndPinnedRefs(t *testing.T) {
	g := testGraph(40)
	cfg := fastConfig()
	dir, hash := buildRegistry(t, "test", g, cfg)
	s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seeds := classSeeds(g, 0)
	base := classifyScores(t, ts.URL, &ClassifyRequest{Seeds: seeds})

	// The legacy alias answers identically (modulo the coalesced width,
	// which is timing-dependent; scores are not).
	resp, body := postClassify(t, ts.URL, &ClassifyRequest{Seeds: seeds, Scores: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /classify status %d: %s", resp.StatusCode, body)
	}
	var legacy ClassifyResponse
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	for i := range base.Scores {
		if base.Scores[i] != legacy.Scores[i] {
			t.Fatal("/v1/classify and /classify disagree")
		}
	}

	// Pinned references: name@hash and bare hash resolve to the same
	// model; a wrong pin is a 404, not a silent fallback.
	for _, ref := range []string{"test@sha256:" + hash, "sha256:" + hash} {
		got := classifyScores(t, ts.URL, &ClassifyRequest{Model: ref, Seeds: seeds})
		if got.ModelHash != "sha256:"+hash {
			t.Fatalf("ref %q echoed %q", ref, got.ModelHash)
		}
	}
	bogus := "sha256:" + "00" + hash[2:]
	resp, body = postClassify(t, ts.URL+"/v1", &ClassifyRequest{Model: "test@" + bogus, Seeds: seeds})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("wrong pin: status %d: %s", resp.StatusCode, body)
	}
	// model and dataset naming different models is a 400.
	resp, body = postClassify(t, ts.URL+"/v1", &ClassifyRequest{Model: "a", Dataset: "b", Seeds: seeds})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting names: status %d: %s", resp.StatusCode, body)
	}

	// /v1/models lists the pairing with its hash and default marker.
	resp2, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var models ModelsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 {
		t.Fatalf("models = %+v", models.Models)
	}
	m := models.Models[0]
	if m.Name != "test" || m.Hash != "sha256:"+hash || m.Source != "artifact+graph" || !m.Default {
		t.Fatalf("model entry = %+v", m)
	}
}

// damageBlob mutates the stored blob file in place.
func damageBlob(t *testing.T, dir, hash string, f func([]byte) []byte) {
	t.Helper()
	reg, err := artifact.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := reg.BlobPath(hash)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestArtifactChaosFallbackToRebuild(t *testing.T) {
	g := testGraph(60)
	cfg := fastConfig()
	seeds := classSeeds(g, 2)

	// Reference answer from a pristine raw build.
	ref := newTestServer(t, g, cfg, nil)
	tsRef := httptest.NewServer(ref.Handler())
	want := classifyScores(t, tsRef.URL, &ClassifyRequest{Seeds: seeds})
	tsRef.Close()

	// Internally valid bytes under the wrong name: only the content-hash
	// check can catch the swap.
	other, _, err := artifact.Compile(testGraph(24), cfg)
	if err != nil {
		t.Fatal(err)
	}
	damages := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"corrupted": func(b []byte) []byte { b[len(b)/2] ^= 0x20; return b },
		"swapped":   func([]byte) []byte { return other },
		"emptied":   func([]byte) []byte { return nil },
	}
	for name, f := range damages {
		t.Run(name, func(t *testing.T) {
			dir, hash := buildRegistry(t, "test", g, cfg)
			damageBlob(t, dir, hash, f)
			s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			// Concurrent first touches: every request must get the
			// correct rebuilt answer, none may observe the damage.
			var wg sync.WaitGroup
			got := make([]*ClassifyResponse, 4)
			errs := make([]error, len(got))
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = tryClassify(ts.URL, &ClassifyRequest{Seeds: seeds})
				}(i)
			}
			wg.Wait()
			for i, r := range got {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				for i := range want.Scores {
					if r.Scores[i] != want.Scores[i] {
						t.Fatalf("fallback scores differ at %d", i)
					}
				}
				// The rebuilt model's canonical identity replaces the
				// damaged blob's in the echo.
				if r.ModelHash == "" {
					t.Fatal("fallback response lost its model hash")
				}
			}
			if s.met.artifactFails.Load() == 0 {
				t.Fatal("damage served without a verify_fail tick")
			}
			if s.met.artifactHits.Load() != 0 {
				t.Fatal("damaged artifact counted as a hit")
			}
		})
	}
}

func TestArtifactChaosFaultInjection(t *testing.T) {
	g := testGraph(40)
	cfg := fastConfig()
	seeds := classSeeds(g, 1)

	t.Run("open-error", func(t *testing.T) {
		dir, _ := buildRegistry(t, "test", g, cfg)
		defer fault.Reset()
		fault.InjectErr(fault.ArtifactOpen, func() error { return fmt.Errorf("simulated unreadable blob") })
		s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if got := classifyScores(t, ts.URL, &ClassifyRequest{Seeds: seeds}); len(got.Scores) != g.N() {
			t.Fatalf("fallback served %d scores", len(got.Scores))
		}
		if s.met.artifactFails.Load() == 0 {
			t.Fatal("no verify_fail recorded")
		}
	})

	t.Run("decode-corruption", func(t *testing.T) {
		dir, _ := buildRegistry(t, "test", g, cfg)
		defer fault.Reset()
		// The hook sees a writable copy of the mapped bytes and flips
		// one mid-file: the crc64 trailer must reject it.
		fault.Inject(fault.ArtifactDecode, func(args ...any) {
			data := args[0].([]byte)
			data[len(data)/2] ^= 0x01
		})
		s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		if got := classifyScores(t, ts.URL, &ClassifyRequest{Seeds: seeds}); len(got.Scores) != g.N() {
			t.Fatalf("fallback served %d scores", len(got.Scores))
		}
		if s.met.artifactFails.Load() == 0 {
			t.Fatal("no verify_fail recorded")
		}
	})

	t.Run("activate-error-no-fallback", func(t *testing.T) {
		dir, hash := buildRegistry(t, "only", g, cfg)
		defer fault.Reset()
		fault.InjectErr(fault.ArtifactActivate, func() error { return fmt.Errorf("simulated activation fault") })
		// No dataset of that name: the artifact is the only source, so
		// the failure surfaces as a 5xx instead of silently serving.
		s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, body := postClassify(t, ts.URL+"/v1", &ClassifyRequest{Model: "sha256:" + hash, Seeds: seeds})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	})
}

func TestArtifactOnlyServing(t *testing.T) {
	g := testGraph(40)
	cfg := fastConfig()
	dir, hash := buildRegistry(t, "solo", g, cfg)
	s, err := New(Options{ModelDir: dir, Config: cfg, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("New without datasets: %v", err)
	}
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	got := classifyScores(t, ts.URL, &ClassifyRequest{Seeds: classSeeds(g, 0)})
	if got.Model != "solo" || got.ModelHash != "sha256:"+hash {
		t.Fatalf("echo %q %q", got.Model, got.ModelHash)
	}
	// Out-of-range seeds are checked against the artifact's dimensions.
	resp, body := postClassify(t, ts.URL+"/v1", &ClassifyRequest{Seeds: []int{g.N() + 7}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

// A registry that also holds shard artifacts (`tmark build -shards`)
// must serve exactly like one that doesn't: the sh-<hash>-<i>-<M> refs
// are worker-consumed sub-tensor slices, so artifact-only default
// inference must not count them (one parent model + its shards still
// boots without -default) and /v1/models must not list them.
func TestShardRefsInvisibleToServing(t *testing.T) {
	g := testGraph(40)
	cfg := fastConfig()
	dir, hash := buildRegistry(t, "test", g, cfg)
	reg, err := artifact.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "blobs", hash+".tmar"))
	if err != nil {
		t.Fatal(err)
	}
	art, err := artifact.DecodeBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.PartitionInto(reg, art.Substrate(), hash, 2); err != nil {
		t.Fatalf("partition: %v", err)
	}

	s := newTestServer(t, nil, cfg, func(o *Options) {
		o.Datasets = nil
		o.ModelDir = dir
	})
	if s.opts.Default != "test" {
		t.Fatalf("inferred default %q, want %q (shard refs must not count as models)", s.opts.Default, "test")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 {
		t.Fatalf("listed %d models, want only the parent: %+v", len(list.Models), list.Models)
	}
	if got := list.Models[0]; got.Name != "test" || got.Hash != "sha256:"+hash {
		t.Fatalf("listed %+v, want name=test hash=sha256:%s", got, hash)
	}
}
