package serve

// Fuzzing for the untrusted request decoders: whatever the body bytes,
// DecodeClassifyRequest and DecodeIngestRequest must either return a
// validated request or an error — never panic, and never accept a
// request that fails its own Validate. Additional seed inputs live in
// testdata/fuzz/FuzzDecodeClassifyRequest and
// testdata/fuzz/FuzzDecodeIngestRequest.

import (
	"bytes"
	"testing"

	"tmark/internal/stream"
)

func FuzzDecodeClassifyRequest(f *testing.F) {
	seeds := []string{
		`{"seeds":[0,1,2]}`,
		`{"seeds":[5],"dataset":"dblp","ica":true,"scores":true}`,
		`{"seeds":[1],"alpha":0.8,"gamma":0.6,"lambda":0.7,"epsilon":1e-8,"max_iterations":100}`,
		`{"seeds":[3,3,3],"top_nodes":5,"top_links":2}`,
		`{"seeds":[1],"quality":"fast"}`,
		`{"seeds":[1],"quality":"accelerated"}`,
		`{"seeds":[1],"quality":"exact"}`,
		`{"seeds":[1],"quality":""}`,
		`{"seeds":[1],"quality":"FAST"}`,
		`{"seeds":[1],"quality":"fast "}`,
		`{"seeds":[1],"quality":"fast"}`,
		`{"seeds":[1],"quality":42}`,
		`{"seeds":[]}`,
		`{"seeds":[-1]}`,
		`{"seeds":[1],"alpha":1e999}`,
		`{"seeds":[1],"unknown":"field"}`,
		`{"seeds":[1]} trailing`,
		`{`,
		``,
		`null`,
		`[1,2,3]`,
		`{"seeds":[9007199254740993]}`,
		"{\"seeds\":[1],\"dataset\":\"\\u0000\xff\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeClassifyRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatalf("error %v returned alongside a request", err)
			}
			return
		}
		if req == nil {
			t.Fatalf("nil request without error")
		}
		// Anything the decoder accepts must satisfy its own invariants.
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails validation: %v", err)
		}
		if len(req.Seeds) == 0 {
			t.Fatalf("decoded request has no seeds")
		}
		for _, s := range req.Seeds {
			if s < 0 {
				t.Fatalf("decoded request kept negative seed %d", s)
			}
		}
	})
}

func FuzzDecodeIngestRequest(f *testing.F) {
	seeds := []string{
		`{"model":"dblp","deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]}`,
		`{"deltas":[{"op":"update","from":3,"to":4,"relation":1,"weight":0.5}]}`,
		`{"deltas":[{"op":"remove","from":3,"to":4,"relation":1}]}`,
		`{"deltas":[{"op":"remove","from":3,"to":4,"relation":1,"weight":1}]}`,
		`{"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":-1}]}`,
		`{"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1e999}]}`,
		`{"deltas":[{"op":"set","from":0,"to":1,"relation":0,"weight":1}]}`,
		`{"deltas":[{"op":"add","from":-9007199254740993,"to":1,"relation":0,"weight":1}]}`,
		`{"deltas":[]}`,
		`{"deltas":null}`,
		`{"model":42,"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]}`,
		`{"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}],"unknown":true}`,
		`{"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1}]} extra`,
		`{"deltas":[{"op":"add","from":0,"to":1,"relation":0,"weight":1},{"op":"add"}]}`,
		`{`,
		``,
		`null`,
		`[{"op":"add"}]`,
		"{\"model\":\"\\u0000\xff\",\"deltas\":[{\"op\":\"add\",\"from\":0,\"to\":1,\"relation\":0,\"weight\":1}]}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeIngestRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatalf("error %v returned alongside a request", err)
			}
			return
		}
		if req == nil {
			t.Fatalf("nil request without error")
		}
		// Anything the decoder accepts must satisfy its own invariants.
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails validation: %v", err)
		}
		if len(req.Deltas) == 0 || len(req.Deltas) > stream.MaxDeltas {
			t.Fatalf("decoded request kept %d deltas", len(req.Deltas))
		}
		for _, d := range req.Deltas {
			if err := d.Validate(); err != nil {
				t.Fatalf("decoded request kept invalid delta: %v", err)
			}
		}
	})
}
