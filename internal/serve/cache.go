package serve

// The warm-model cache. Building a T-Mark model normalizes the
// adjacency tensor into O and R and materialises the feature matrix W —
// work worth doing once per (dataset, hyperparameters) pair, after which
// the model is immutable and serves any number of concurrent queries.
// The cache is LRU-bounded: hyperparameter overrides mint new keys, and
// without a bound a scan over (say) alpha values would pin one model
// per step forever. Each entry owns the coalescer batching requests
// against its model; eviction retires the coalescer gracefully (accepted
// work finishes at full quality) while new requests rebuild the entry.

import (
	"container/list"
	"sync"

	"tmark/internal/tmark"
)

// modelKey identifies one warm model: the dataset plus the full
// hyperparameter set. tmark.Config is a flat comparable struct, so the
// key works directly as a map key.
type modelKey struct {
	dataset string
	cfg     tmark.Config
}

// warmModel is one cache entry. ready is closed once the build finished
// (successfully or not); concurrent requests for the same key wait on it
// instead of building twice.
type warmModel struct {
	key   modelKey
	ready chan struct{}
	model *tmark.Model
	coal  *coalescer
	err   error
	elem  *list.Element

	// The full multi-class solve backing /rank, computed lazily at most
	// once per warm model.
	fullOnce sync.Once
	full     *tmark.Result
}

// fullResult lazily runs the full multi-class solve for /rank. The
// model's own ICA setting applies here (this is the dataset's real
// class structure, where the cross-class reseed is meaningful).
func (e *warmModel) fullResult() *tmark.Result {
	e.fullOnce.Do(func() {
		e.full = e.model.RunContext(e.coal.solveCtx)
	})
	return e.full
}

// modelCache is the LRU map of warm models.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[modelKey]*warmModel
	order    *list.List // front = most recently used
	build    func(modelKey) (*tmark.Model, error)
	newCoal  func(*tmark.Model) *coalescer
	met      *metrics
}

func newModelCache(capacity int, build func(modelKey) (*tmark.Model, error), newCoal func(*tmark.Model) *coalescer, met *metrics) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		capacity: capacity,
		entries:  make(map[modelKey]*warmModel),
		order:    list.New(),
		build:    build,
		newCoal:  newCoal,
		met:      met,
	}
}

// get returns the ready warm model for key, building it on a miss. The
// build runs outside the cache lock (models can be expensive), with
// duplicate requests for the same key waiting on the first builder.
// Failed builds are not cached: the placeholder is removed so a later
// request can retry.
func (c *modelCache) get(key modelKey) (*warmModel, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		if c.met != nil {
			c.met.cacheHits.Inc()
		}
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e, nil
	}
	e := &warmModel{key: key, ready: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	var evicted []*warmModel
	for len(c.entries) > c.capacity {
		back := c.order.Back()
		old := back.Value.(*warmModel)
		c.order.Remove(back)
		delete(c.entries, old.key)
		evicted = append(evicted, old)
	}
	c.mu.Unlock()
	if c.met != nil {
		c.met.cacheMisses.Inc()
	}
	for _, old := range evicted {
		if c.met != nil {
			c.met.cacheEvictions.Inc()
		}
		// Retire asynchronously: the evicted coalescer finishes its
		// accepted work before going away, and a slow drain must not
		// stall the request that triggered the eviction.
		go func(old *warmModel) {
			<-old.ready
			if old.coal != nil {
				old.coal.stop(false)
			}
		}(old)
	}

	model, err := c.build(key)
	if err != nil {
		e.err = err
		close(e.ready)
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
		c.mu.Unlock()
		return nil, err
	}
	e.model = model
	e.coal = c.newCoal(model)
	close(e.ready)
	return e, nil
}

// snapshot returns the current entries without touching LRU order.
func (c *modelCache) snapshot() []*warmModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*warmModel, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	return out
}

// queueDepth sums the admission-queue lengths of every ready entry —
// the tmarkd_queue_depth gauge.
func (c *modelCache) queueDepth() int {
	total := 0
	for _, e := range c.snapshot() {
		select {
		case <-e.ready:
			if e.coal != nil {
				total += e.coal.depth()
			}
		default:
		}
	}
	return total
}

// drainAll stops every coalescer, cancelling in-flight solves so each
// pending request completes within one solver iteration. It blocks until
// every dispatcher has answered its queue and exited.
func (c *modelCache) drainAll() {
	var wg sync.WaitGroup
	for _, e := range c.snapshot() {
		wg.Add(1)
		go func(e *warmModel) {
			defer wg.Done()
			<-e.ready
			if e.coal != nil {
				e.coal.stop(true)
			}
		}(e)
	}
	wg.Wait()
}

// size reports the current entry count.
func (c *modelCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
