package serve

// The warm-model cache. Building a T-Mark model normalizes the
// adjacency tensor into O and R and materialises the feature matrix W —
// work worth doing once per (dataset, hyperparameters) pair, after which
// the model is immutable and serves any number of concurrent queries.
// The cache is LRU-bounded: hyperparameter overrides mint new keys, and
// without a bound a scan over (say) alpha values would pin one model
// per step forever. Each entry owns the coalescer batching requests
// against its model; eviction retires the coalescer gracefully (accepted
// work finishes at full quality) while new requests rebuild the entry.

import (
	"container/list"
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/tmark"
)

// modelKey identifies one warm model: the resolved model source plus
// the full hyperparameter set. name is the loaded-graph name usable for
// a (re)build — empty for a model reachable only through the artifact
// store; hash is the resolved artifact content hash — empty for a model
// served from a raw graph with no artifact. At least one is set.
// tmark.Config is a flat comparable struct, so the key works directly
// as a map key.
type modelKey struct {
	name string
	hash string
	cfg  tmark.Config
}

// display names the key for humans: eviction logs, checkpoint files.
func (k modelKey) display() string {
	if k.name != "" {
		return k.name
	}
	return "sha256-" + k.hash[:16]
}

// buildResult is what the cache's build function hands back: the
// servable model, the content hash identifying the substrate it runs on
// (the blob's hash for an artifact activation, the canonical encoding's
// hash for a raw build), and — for activations — the backing artifact.
type buildResult struct {
	model *tmark.Model
	hash  string
	art   *artifact.Artifact
}

// warmModel is one cache entry. ready is closed once the build finished
// (successfully or not); concurrent requests for the same key wait on it
// instead of building twice.
type warmModel struct {
	key   modelKey
	ready chan struct{}
	model *tmark.Model
	coal  *coalescer
	err   error
	elem  *list.Element

	// hash is the content identity of the substrate this entry serves —
	// echoed in every response, so a client can pin exactly what
	// answered it.
	hash string
	// art is the backing artifact of an mmap-activated entry, nil for a
	// raw build. It is deliberately never Closed while the process
	// lives: an evicted entry's model may still be mid-solve for a
	// /rank borrower, and unmapping under it would fault. The cost is
	// the mapping's address space; its clean pages stay reclaimable.
	art *artifact.Artifact

	// ck holds the checkpoint/resume options of the /rank full solve
	// when the server has a checkpoint directory; empty otherwise.
	ck []tmark.RunOption

	// The full multi-class solves backing /rank, each computed lazily at
	// most once per warm model: the reference solve (serving the exact
	// and accelerated tiers) and the linearized fast-tier solve. They run
	// under their own context — NOT the coalescer's solveCtx — because
	// eviction retires the coalescer (which ends by cancelling solveCtx)
	// while a /rank borrower may still be mid-solve: an evicted model
	// must finish its borrowed work at full quality. Only the server
	// drain (or a failed build) cancels rankCtx; it stays live after a
	// solve finishes because the other tier's solve may start later.
	rankCtx    context.Context
	rankCancel context.CancelFunc
	fullOnce   sync.Once
	full       *tmark.Result
	fastOnce   sync.Once
	fastFull   *tmark.Result
}

// fullResult lazily runs the full multi-class solve for /rank. The
// model's own ICA setting applies here (this is the dataset's real
// class structure, where the cross-class reseed is meaningful). With a
// checkpoint directory configured the solve snapshots periodically and
// resumes from the previous process's last snapshot; a server drain
// cancels rankCtx, which flushes a final checkpoint before the solve
// returns its partial result.
func (e *warmModel) fullResult() *tmark.Result {
	e.fullOnce.Do(func() {
		e.full = e.model.RunContext(e.rankCtx, e.ck...)
	})
	return e.full
}

// fastResult lazily runs the linearized approximate solve for
// /rank?quality=fast. It never checkpoints or resumes — the fast tier is
// one linear solve per class, cheap enough to redo from scratch, and the
// iterative checkpoint format cannot describe it anyway.
func (e *warmModel) fastResult() *tmark.Result {
	e.fastOnce.Do(func() {
		e.fastFull = e.model.RunContext(e.rankCtx, tmark.WithApproximate(true))
	})
	return e.fastFull
}

// modelCache is the LRU map of warm models.
type modelCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[modelKey]*warmModel
	order    *list.List // front = most recently used
	build    func(modelKey) (buildResult, error)
	newCoal  func(*tmark.Model, string) *coalescer
	met      *metrics

	// ckDir, when set, gives every warm model a per-key checkpoint file
	// for its /rank full solve, written every ckEvery iterations.
	ckDir   string
	ckEvery int
}

func newModelCache(capacity int, build func(modelKey) (buildResult, error), newCoal func(*tmark.Model, string) *coalescer, met *metrics) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		capacity: capacity,
		entries:  make(map[modelKey]*warmModel),
		order:    list.New(),
		build:    build,
		newCoal:  newCoal,
		met:      met,
	}
}

// get returns the ready warm model for key, building it on a miss. The
// build runs outside the cache lock (models can be expensive), with
// duplicate requests for the same key waiting on the first builder.
// Failed builds are not cached: the placeholder is removed so a later
// request can retry.
func (c *modelCache) get(key modelKey) (*warmModel, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		if c.met != nil {
			c.met.cacheHits.Inc()
		}
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		return e, nil
	}
	e := &warmModel{key: key, ready: make(chan struct{})}
	e.rankCtx, e.rankCancel = context.WithCancel(context.Background())
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	var evicted []*warmModel
	for len(c.entries) > c.capacity {
		back := c.order.Back()
		old := back.Value.(*warmModel)
		c.order.Remove(back)
		delete(c.entries, old.key)
		evicted = append(evicted, old)
	}
	c.mu.Unlock()
	if c.met != nil {
		c.met.cacheMisses.Inc()
	}
	for _, old := range evicted {
		if c.met != nil {
			c.met.cacheEvictions.Inc()
		}
		if fault.Enabled() {
			fault.Fire(fault.ServeCacheEvict, old.key.display())
		}
		// Retire asynchronously: the evicted coalescer finishes its
		// accepted work before going away, and a slow drain must not
		// stall the request that triggered the eviction.
		go func(old *warmModel) {
			<-old.ready
			if old.coal != nil {
				old.coal.stop(false)
			}
		}(old)
	}

	br, err := c.buildSafe(key)
	if err != nil {
		e.err = err
		e.rankCancel()
		close(e.ready)
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
		c.mu.Unlock()
		return nil, err
	}
	e.model, e.hash, e.art = br.model, br.hash, br.art
	if c.ckDir != "" {
		e.ck = c.checkpointOptions(key, e.model)
	}
	e.coal = c.newCoal(e.model, e.hash)
	e.coal.onPanic = func() { c.quarantine(e) }
	close(e.ready)
	return e, nil
}

// buildSafe runs the model build behind a panic barrier. A crashing
// build fails like an erroring one — the placeholder entry is removed
// so the next request retries the build — instead of tearing down the
// request goroutine with waiters still parked on the entry.
func (c *modelCache) buildSafe(key modelKey) (br buildResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			br, err = buildResult{}, fmt.Errorf("%w: model build panicked: %v", ErrModelFault, rec)
			if c.met != nil {
				c.met.panics.Inc()
			}
		}
	}()
	if fault.Enabled() {
		if err := fault.Check(fault.ServeModelBuild); err != nil {
			return buildResult{}, err
		}
		fault.Fire(fault.ServeModelBuild, key.display())
	}
	return c.build(key)
}

// quarantine drops a faulting entry from the cache so the next request
// for its key rebuilds the model from the immutable graph (waiters
// coalesce on the rebuild exactly like a cold miss). The entry's
// coalescer retires asynchronously once its queue is answered; its
// remaining jobs finish against the old model — at worst with another
// ErrModelFault, never a wrong answer.
func (c *modelCache) quarantine(e *warmModel) {
	c.mu.Lock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		c.order.Remove(e.elem)
	}
	c.mu.Unlock()
	if c.met != nil {
		c.met.quarantines.Inc()
	}
	go func() {
		<-e.ready
		if e.coal != nil {
			e.coal.stop(false)
		}
	}()
}

// invalidateName drops every entry that would rebuild name from its
// mutable source (key.hash == ""): after an ingest moves the live
// version, such entries serve pre-ingest state under a post-ingest
// name. Hash-keyed entries stay — they are pinned immutable versions,
// exactly what a mid-ingest reader is entitled to keep. Dropped
// coalescers retire asynchronously after answering their queues, like
// an eviction.
func (c *modelCache) invalidateName(name string) {
	c.mu.Lock()
	var dropped []*warmModel
	for k, e := range c.entries {
		if k.name == name && k.hash == "" {
			delete(c.entries, k)
			c.order.Remove(e.elem)
			dropped = append(dropped, e)
		}
	}
	c.mu.Unlock()
	for _, e := range dropped {
		if c.met != nil {
			c.met.cacheEvictions.Inc()
		}
		go func(e *warmModel) {
			<-e.ready
			if e.coal != nil {
				e.coal.stop(false)
			}
		}(e)
	}
}

// checkpointOptions wires one warm model's /rank solve to its
// per-key checkpoint file: periodic snapshots while it runs (the drain
// path flushes a final one), resumed on the next process start when a
// matching snapshot is present. A stale or mismatching file is simply
// ignored — the solve starts cold and overwrites it.
func (c *modelCache) checkpointOptions(key modelKey, m *tmark.Model) []tmark.RunOption {
	name := fmt.Sprintf("%s-%016x.ckpt", safeName(key.display()), m.ConfigHash())
	opts := []tmark.RunOption{tmark.WithCheckpoint(&tmark.DirSink{Dir: c.ckDir, Name: name}, c.ckEvery)}
	if cp, err := tmark.LoadCheckpointFile(filepath.Join(c.ckDir, name)); err == nil && m.ValidateCheckpoint(cp) == nil {
		opts = append(opts, tmark.ResumeFrom(cp))
	}
	return opts
}

// safeName maps a dataset name onto a filename-safe form.
func safeName(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '-', b == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// snapshot returns the current entries without touching LRU order.
func (c *modelCache) snapshot() []*warmModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*warmModel, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	return out
}

// queueDepth sums the admission-queue lengths of every ready entry —
// the tmarkd_queue_depth gauge.
func (c *modelCache) queueDepth() int {
	total := 0
	for _, e := range c.snapshot() {
		select {
		case <-e.ready:
			if e.coal != nil {
				total += e.coal.depth()
			}
		default:
		}
	}
	return total
}

// drainAll stops every coalescer, cancelling in-flight solves so each
// pending request completes within one solver iteration. It blocks until
// every dispatcher has answered its queue and exited.
func (c *modelCache) drainAll() {
	var wg sync.WaitGroup
	for _, e := range c.snapshot() {
		wg.Add(1)
		go func(e *warmModel) {
			defer wg.Done()
			e.rankCancel() // in-flight /rank solves flush and return
			<-e.ready
			if e.coal != nil {
				e.coal.stop(true)
			}
		}(e)
	}
	wg.Wait()
}

// size reports the current entry count.
func (c *modelCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
