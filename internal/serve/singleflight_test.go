package serve

// The warm-model cache's build singleflight under real concurrency: N
// simultaneous requests pinning the same artifact reference must mmap
// and activate the blob exactly once, with every other request parked
// on the first builder's ready channel — asserted through the cache
// and artifact counters, and meaningful mainly under -race, where any
// unsynchronised sharing of the entry would be reported.

import (
	"net/http/httptest"
	"sync"
	"testing"
)

func TestConcurrentActivationSingleflight(t *testing.T) {
	g := testGraph(60)
	cfg := fastConfig()
	dir, hash := buildRegistry(t, "test", g, cfg)
	s := newTestServer(t, g, cfg, func(o *Options) { o.ModelDir = dir })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 16
	ref := "sha256:" + hash
	seeds := classSeeds(g, 0)

	// A start gate lines every goroutine up behind one barrier so the
	// requests genuinely race into the cold cache together.
	start := make(chan struct{})
	results := make([]*ClassifyResponse, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = tryClassify(ts.URL, &ClassifyRequest{Model: ref, Seeds: seeds})
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// One build, one activation: the first request in misses and mmaps;
	// the other N−1 coalesce onto it as hits whether they arrived
	// during the build or after it.
	if got := s.met.cacheMisses.Load(); got != 1 {
		t.Errorf("cache misses = %d, want 1 (singleflight build)", got)
	}
	if got := s.met.cacheHits.Load(); got != workers-1 {
		t.Errorf("cache hits = %d, want %d", got, workers-1)
	}
	if got := s.met.artifactHits.Load(); got != 1 {
		t.Errorf("artifact activations = %d, want exactly 1 mmap", got)
	}
	if got := s.met.artifactFails.Load(); got != 0 {
		t.Errorf("artifact failures = %d, want 0", got)
	}
	// Every answer came from the one activated substrate and is
	// bitwise identical.
	for i, r := range results {
		if r.ModelHash != ref {
			t.Fatalf("request %d answered by %q, want %q", i, r.ModelHash, ref)
		}
		if len(r.Scores) != len(results[0].Scores) {
			t.Fatalf("request %d: %d scores vs %d", i, len(r.Scores), len(results[0].Scores))
		}
		for j := range r.Scores {
			if r.Scores[j] != results[0].Scores[j] {
				t.Fatalf("request %d: score[%d] differs across coalesced activations", i, j)
			}
		}
	}
}
