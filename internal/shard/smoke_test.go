package shard

// The multi-process smoke: real worker OS processes, not httptest
// goroutines. The test re-execs its own binary in worker mode (the
// standard helper-process pattern), each child decoding one shard blob
// from disk and serving the apply RPC on a loopback port, and then
// drives a coordinated solve of a builtin dataset against the child
// fleet — asserting the predictions (and every float under them) match
// the single-process reference bitwise. `make shard-smoke` runs this.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

const (
	workerEnv     = "TMARK_SHARD_WORKER"
	workerFileEnv = "TMARK_SHARD_FILE"
	addrMarker    = "TMARK_WORKER_ADDR "
)

// TestShardWorkerProcess is not a test: it is the body of the child
// processes TestShardSmokeMultiProcess spawns. Invoked without the
// helper environment it skips immediately.
func TestShardWorkerProcess(t *testing.T) {
	if os.Getenv(workerEnv) != "1" {
		t.Skip("helper process body; spawned by TestShardSmokeMultiProcess")
	}
	blob, err := os.ReadFile(os.Getenv(workerFileEnv))
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	art, err := artifact.DecodeShardBytes(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	w, err := NewWorker(art, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s%s\n", addrMarker, ln.Addr())
	os.Stdout.Sync()
	// Serve until the parent kills the process.
	if err := http.Serve(ln, w.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
	}
	os.Exit(0)
}

// spawnWorker launches one helper process serving the shard blob at
// path and returns its base URL once the child reports its port.
func spawnWorker(t testing.TB, path string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestShardWorkerProcess$")
	cmd.Env = append(os.Environ(), workerEnv+"=1", workerFileEnv+"="+path)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, addrMarker) {
				addrCh <- strings.TrimPrefix(line, addrMarker)
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("worker %s exited before reporting its address", path)
		}
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("worker %s did not report an address in 30s", path)
	}
	panic("unreachable")
}

func TestShardSmokeMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	const of = 2
	g := dataset.DBLP(dataset.DefaultDBLPConfig(1))
	cfg := tmark.DefaultConfig()

	data, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	art, err := artifact.DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	blobs, err := Partition(art.Substrate(), hash, of)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	dir := t.TempDir()
	urls := make([]string, of)
	for s, blob := range blobs {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.tmsh", s))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatalf("write shard: %v", err)
		}
		urls[s] = spawnWorker(t, path)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coord, err := Connect(ctx, urls, nil)
	if err != nil {
		t.Fatalf("Connect across processes: %v", err)
	}
	if coord.Parent() != hash || coord.Workers() != of {
		t.Fatalf("coordinator bound to %s /%d workers", coord.Parent(), coord.Workers())
	}

	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	queries := testQueries(g.N())
	ref, err := model.SolveColumns(ctx, queries, tmark.WithWorkers(of))
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	dist, err := model.SolveColumns(ctx, queries,
		tmark.WithWorkers(of), tmark.WithDistributedApply(coord.Applier(ctx)))
	if err != nil {
		t.Fatalf("multi-process solve: %v", err)
	}
	assertSameResults(t, ref, dist)

	// The headline diff: per-node argmax predictions must agree column
	// by column (implied by the bitwise check above, stated here as the
	// smoke's contract).
	for i := range ref {
		rp, dp := argmaxes(ref[i].X), argmaxes(dist[i].X)
		for j := range rp {
			if rp[j] != dp[j] {
				t.Fatalf("column %d: prediction[%d] = %d (reference) vs %d (sharded)", i, j, rp[j], dp[j])
			}
		}
	}
}

// argmaxes reduces one score column to its index order — a stand-in
// for the per-node class decision a caller would make.
func argmaxes(x []float64) []int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return []int{best}
}
