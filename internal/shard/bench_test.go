package shard

// The horizontal-scale-out benchmark behind BENCH_8.json: a lockstep
// batched solve of q ∈ {4, 8} query columns against a synthetic HIN
// sized so the COO streams spill every cache level (the memory-bound
// regime a single box caps out in), solved single-process (M=1, the
// reference) and across a fleet of M ∈ {2, 4} real worker OS
// processes. Workers are spawned with the same re-exec helper the
// multi-process smoke test uses, so every sharded number includes the
// full wire cost: frame encode, loopback HTTP, strict decode, partial
// contraction, response, allreduce. The reduce-ns/pass metric isolates
// the coordinator's per-pass allreduce so the scaling numbers separate
// compute from coordination.
//
// Read the M>1 rows against the box: with one core per worker the
// fleet computes its shards genuinely in parallel and the wall-time
// target is ≥1.6× at M=2; on a single-core box (CI) the same fleet
// time-slices one core and the rows instead bound the protocol
// overhead the wire adds.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

// benchFixture is the compiled memory-bound model, built once per
// process however many sub-benchmarks run.
type benchFixture struct {
	model *tmark.Model
	art   *artifact.Artifact
	hash  string
	n     int
}

var (
	benchOnce sync.Once
	benchFix  *benchFixture
	benchErr  error
)

// benchConfig pins the solve shape: no feature channel (the production
// HIN regime where tensor streaming dominates), an unreachable epsilon
// and a fixed iteration budget so every configuration performs
// identical work per op.
func benchConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.ICAUpdate = false
	cfg.Gamma = 0
	cfg.Epsilon = 1e-300
	cfg.MaxIterations = 8
	return cfg
}

func fixture() (*benchFixture, error) {
	benchOnce.Do(func() {
		g, err := dataset.Synth(dataset.SynthConfig{
			Seed:          8,
			Classes:       []string{"a", "b", "c"},
			NodesPerClass: 14000,
			Relations: []dataset.RelationSpec{
				{Name: "cites", Homophily: 0.8, Edges: 450_000, Directed: true},
				{Name: "coauthor", Homophily: 0.7, Edges: 450_000},
				{Name: "venue", Homophily: 0.5, Edges: 300_000},
			},
			LabelFraction: 0.1,
		})
		if err != nil {
			benchErr = err
			return
		}
		cfg := benchConfig()
		data, hash, err := artifact.Compile(g, cfg)
		if err != nil {
			benchErr = err
			return
		}
		art, err := artifact.DecodeBytes(data)
		if err != nil {
			benchErr = err
			return
		}
		model, err := tmark.New(g, cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchFix = &benchFixture{model: model, art: art, hash: hash, n: g.N()}
	})
	return benchFix, benchErr
}

// spawnFleet partitions the fixture into of shards and launches one
// worker process per shard, returning the connected coordinator.
func spawnFleet(b *testing.B, fix *benchFixture, of int) *Coordinator {
	b.Helper()
	blobs, err := Partition(fix.art.Substrate(), fix.hash, of)
	if err != nil {
		b.Fatalf("Partition: %v", err)
	}
	dir := b.TempDir()
	urls := make([]string, of)
	for s, blob := range blobs {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.tmsh", s))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatalf("write shard: %v", err)
		}
		urls[s] = spawnWorker(b, path)
	}
	coord, err := Connect(context.Background(), urls, nil)
	if err != nil {
		b.Fatalf("Connect: %v", err)
	}
	return coord
}

func benchQueries(n, q int) []tmark.ColumnQuery {
	queries := make([]tmark.ColumnQuery, q)
	for i := range queries {
		queries[i] = tmark.ColumnQuery{Seeds: []int{(i * 7919) % n, (i*104729 + 13) % n}}
	}
	return queries
}

func BenchmarkShardedSolve(b *testing.B) {
	fix, err := fixture()
	if err != nil {
		b.Fatalf("fixture: %v", err)
	}
	ctx := context.Background()
	for _, of := range []int{1, 2, 4} {
		var coord *Coordinator
		if of > 1 {
			coord = spawnFleet(b, fix, of)
		}
		for _, q := range []int{4, 8} {
			queries := benchQueries(fix.n, q)
			b.Run(fmt.Sprintf("M=%d/q=%d", of, q), func(b *testing.B) {
				b.ReportAllocs()
				redTotal, redCount := regCoordReduce.Total(), regCoordReduce.Count()
				for i := 0; i < b.N; i++ {
					opts := []tmark.RunOption{tmark.WithWorkers(of)}
					if coord != nil {
						ap := coord.Applier(ctx)
						opts = append(opts, tmark.WithDistributedApply(ap))
						defer func() {
							if err := ap.Err(); err != nil {
								b.Fatalf("fleet degraded mid-benchmark: %v", err)
							}
						}()
					}
					if _, err := fix.model.SolveColumns(ctx, queries, opts...); err != nil {
						b.Fatal(err)
					}
				}
				if passes := regCoordReduce.Count() - redCount; passes > 0 {
					dt := (regCoordReduce.Total() - redTotal).Nanoseconds()
					b.ReportMetric(float64(dt)/float64(passes), "reduce-ns/pass")
				}
				reportQueriesPerSec(b, q)
			})
		}
	}
}

// reportQueriesPerSec mirrors the serving benchmark's throughput
// metric so BENCH_4 and BENCH_8 rows read on one scale.
func reportQueriesPerSec(b *testing.B, q int) {
	b.ReportMetric(float64(q)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
