package shard

// The shard worker: one process holding one shard's sub-tensors and
// answering per-iteration apply RPCs. A worker is a stateless pure
// function from (shard, iterate slabs) to partial contraction sums —
// it keeps no solve state between requests, so the coordinator can
// retry, reassign or drop workers without any resynchronisation
// protocol beyond resending the current slabs.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/obs"
)

// Info is the worker handshake document served at /v1/shard/info: the
// coordinator validates that its worker set covers every shard of one
// parent model exactly once before the first iteration.
type Info struct {
	Parent string `json:"parent"` // parent model content hash (hex)
	Shard  int    `json:"shard"`
	Of     int    `json:"of"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	HasW   bool   `json:"hasW"`
}

// Worker serves one shard artifact's apply pass. Applies are
// serialised by a mutex: the lockstep protocol sends one request per
// worker per pass, so concurrency would only add scratch copies.
type Worker struct {
	art       *artifact.ShardArtifact
	parentRaw [32]byte
	noASM     bool

	mu      sync.Mutex
	part    []float64 // node partial, n·b
	sumX    []float64
	sumZ    []float64
	mass    []float64
	wx      []float64 // W·x row slab, (wHi−wLo)·b
	rpart   []float64 // relation partial, m·b
	respBuf []byte
}

var (
	regWorkerApply    = obs.Default().Timer("shard_worker_apply")
	regWorkerRequests = obs.Default().Counter("shard_worker_requests_total")
	regWorkerRejected = obs.Default().Counter("shard_worker_rejected_total")
)

// NewWorker wraps a decoded shard artifact as a servable worker.
// noASM selects the portable kernels, matching the coordinator-side
// solver option so the bitwise contract holds under -tags noasm runs.
func NewWorker(art *artifact.ShardArtifact, noASM bool) (*Worker, error) {
	if art == nil {
		return nil, fmt.Errorf("shard: worker needs an artifact")
	}
	raw, err := hex.DecodeString(art.Parent)
	if err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("shard: artifact parent hash %q malformed", art.Parent)
	}
	w := &Worker{art: art, noASM: noASM}
	copy(w.parentRaw[:], raw)
	return w, nil
}

// Info returns the worker's handshake document.
func (w *Worker) Info() Info {
	return Info{
		Parent: w.art.Parent,
		Shard:  w.art.Shard,
		Of:     w.art.Of,
		N:      w.art.N,
		M:      w.art.M,
		HasW:   w.art.WCSR != nil || w.art.WDense != nil,
	}
}

// Handler returns the worker's HTTP surface: the apply RPC, the
// handshake document, and a liveness probe.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/apply", w.handleApply)
	mux.HandleFunc("/v1/shard/info", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(w.Info())
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, "ok\n")
	})
	return mux
}

// maxApplyBlock bounds the block width one apply request may carry;
// the solver blocks over classes or query columns, far below this.
const maxApplyBlock = 1 << 12

func (w *Worker) handleApply(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	regWorkerRequests.Inc()
	if fault.Enabled() {
		if err := fault.Check(fault.ShardWorkerApply); err != nil {
			regWorkerRejected.Inc()
			http.Error(rw, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	limit := int64(frameSize((w.art.N + w.art.M) * maxApplyBlock))
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, limit))
	if err != nil {
		regWorkerRejected.Inc()
		http.Error(rw, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	f, err := DecodeFrame(body)
	if err != nil {
		regWorkerRejected.Inc()
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	if f.Parent != w.parentRaw || f.N != w.art.N || f.M != w.art.M {
		regWorkerRejected.Inc()
		http.Error(rw, fmt.Sprintf("shard: request for model %x (%dx%d), worker holds %s (%dx%d)",
			f.Parent[:6], f.N, f.M, w.art.Parent[:12], w.art.N, w.art.M), http.StatusConflict)
		return
	}
	if f.B > maxApplyBlock {
		regWorkerRejected.Inc()
		http.Error(rw, fmt.Sprintf("shard: block width %d over the %d cap", f.B, maxApplyBlock), http.StatusBadRequest)
		return
	}

	start := time.Now()
	w.mu.Lock()
	var resp []byte
	switch f.Kind {
	case KindNodeRequest:
		resp = w.applyNode(f, start)
	case KindRelRequest:
		resp = w.applyRelation(f, start)
	default:
		w.mu.Unlock()
		regWorkerRejected.Inc()
		http.Error(rw, fmt.Sprintf("shard: frame kind %d is not a request", f.Kind), http.StatusBadRequest)
		return
	}
	// Copy the frame out under the lock: respBuf is reused by the next
	// apply, while rw.Write may block on a slow coordinator.
	out := append([]byte(nil), resp...)
	w.mu.Unlock()
	regWorkerApply.Observe(time.Since(start))

	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", fmt.Sprint(len(out)))
	rw.Write(out)
}

// applyNode runs the node-pass kernel over the worker's shard and the
// feature matvec over its W row slab, returning the encoded response.
// Caller holds w.mu.
func (w *Worker) applyNode(f *Frame, start time.Time) []byte {
	n, b := w.art.N, f.B
	w.part = growF(w.part, n*b)
	w.sumX = growF(w.sumX, b)
	w.sumZ = growF(w.sumZ, b)
	w.mass = growF(w.mass, b)
	w.art.Node.ApplyPartial(f.X, f.Z, w.part[:n*b], b, w.sumX[:b], w.sumZ[:b], w.mass[:b], w.noASM)

	wLo, wHi := 0, 0
	var wx []float64
	switch {
	case w.art.WCSR != nil:
		wLo, wHi = w.art.WLo, w.art.WHi
		w.wx = growF(w.wx, (wHi-wLo)*b)
		wx = w.wx[:(wHi-wLo)*b]
		w.art.WCSR.MulVecBatch(f.X, wx, b)
	case w.art.WDense != nil:
		wLo, wHi = w.art.WLo, w.art.WHi
		w.wx = growF(w.wx, (wHi-wLo)*b)
		wx = w.wx[:(wHi-wLo)*b]
		w.art.WDense.MulVecBatch(f.X, wx, b)
	}
	w.respBuf = EncodeNodeResponse(w.respBuf, w.parentRaw, uint64(time.Since(start)),
		w.art.Shard, w.art.Of, n, w.art.M, b, wLo, wHi,
		w.part[:n*b], w.sumX[:b], w.sumZ[:b], w.mass[:b], wx)
	return w.respBuf
}

// applyRelation runs the relation-pass kernel over the worker's shard.
// Caller holds w.mu.
func (w *Worker) applyRelation(f *Frame, start time.Time) []byte {
	m, b := w.art.M, f.B
	w.rpart = growF(w.rpart, m*b)
	w.sumX = growF(w.sumX, b)
	w.mass = growF(w.mass, b)
	w.art.Rel.ApplyPartial(f.X, w.rpart[:m*b], b, w.sumX[:b], w.mass[:b], w.noASM)
	w.respBuf = EncodeRelResponse(w.respBuf, w.parentRaw, uint64(time.Since(start)),
		w.art.Shard, w.art.Of, w.art.N, m, b,
		w.rpart[:m*b], w.sumX[:b], w.mass[:b])
	return w.respBuf
}

// growF returns buf with length ≥ n, reallocating only on growth.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
