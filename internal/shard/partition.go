package shard

// The partitioner: splitting one compiled model into M per-shard
// sub-tensor artifacts. Shard boundaries are exactly the contiguous
// ranges par.Split hands the in-process parallel kernels, so a worker
// computing its shard's partial serially and the coordinator reducing
// the partials in ascending shard order reproduce ApplyBatchParallel
// bit for bit — the sharded solve at M workers is float-identical to a
// single-process solve run with WithWorkers(M).

import (
	"fmt"

	"tmark/internal/artifact"
	"tmark/internal/sparse"
	"tmark/internal/tmark"
	"tmark/internal/vec"
)

// Partition splits a model's substrate into of per-shard blobs, each a
// self-contained TMSHARD1-sectioned artifact binding its parent's
// content hash. Shard s holds the O and R entry ranges of parallel
// shard s, plus the feature matrix's row slab for the shard's node
// rows (the same row split MulVecBatchParallel uses).
func Partition(sub tmark.Substrate, parentHash string, of int) ([][]byte, error) {
	if sub.O == nil || sub.R == nil {
		return nil, fmt.Errorf("shard: partition needs both transition tensors")
	}
	if of < 1 {
		return nil, fmt.Errorf("shard: partition into %d shards", of)
	}
	blobs := make([][]byte, of)
	for s := 0; s < of; s++ {
		nsh := sub.O.Shard(s, of)
		rsh := sub.R.Shard(s, of)
		var (
			csrSlab   *sparse.Matrix
			denseSlab *vec.Matrix
			err       error
		)
		lo, hi := nsh.XLo, nsh.XHi
		switch {
		case sub.WCSR != nil:
			csrSlab, err = csrRowSlab(sub.WCSR, lo, hi)
			if err != nil {
				return nil, fmt.Errorf("shard %d/%d: %w", s, of, err)
			}
		case sub.WDense != nil:
			n := sub.WDense.Cols
			denseSlab = &vec.Matrix{Rows: hi - lo, Cols: n, Data: sub.WDense.Data[lo*n : hi*n]}
		default:
			lo, hi = 0, 0 // no feature channel: no W row slab
		}
		blob, err := artifact.EncodeShard(parentHash, nsh, rsh, lo, hi, csrSlab, denseSlab)
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", s, of, err)
		}
		blobs[s] = blob
	}
	return blobs, nil
}

// csrRowSlab carves rows [lo, hi) out of a CSR matrix, rebasing the
// row pointers to the slab. ColIdx and Values alias the parent.
func csrRowSlab(w *sparse.Matrix, lo, hi int) (*sparse.Matrix, error) {
	raw := w.Raw()
	if lo < 0 || lo > hi || hi > raw.Rows {
		return nil, fmt.Errorf("shard: W row slab [%d,%d) outside %d rows", lo, hi, raw.Rows)
	}
	base := raw.RowPtr[lo]
	rowPtr := make([]int32, hi-lo+1)
	for i := range rowPtr {
		rowPtr[i] = raw.RowPtr[lo+i] - base
	}
	return sparse.FromRaw(sparse.Raw{
		Rows:   hi - lo,
		Cols:   raw.Cols,
		RowPtr: rowPtr,
		ColIdx: raw.ColIdx[base:raw.RowPtr[hi]],
		Values: raw.Values[base:raw.RowPtr[hi]],
	})
}

// PartitionInto partitions the substrate and stores every shard blob in
// the registry, tagging each under its deterministic shard ref name so
// `parent#shard=s/of` references resolve. It returns the shard blobs'
// content hashes in shard order.
func PartitionInto(reg *artifact.Registry, sub tmark.Substrate, parentHash string, of int) ([]string, error) {
	blobs, err := Partition(sub, parentHash, of)
	if err != nil {
		return nil, err
	}
	hashes := make([]string, of)
	for s, blob := range blobs {
		h, err := reg.Put(blob)
		if err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", s, of, err)
		}
		if err := reg.Tag(artifact.ShardRefName(parentHash, s, of), h); err != nil {
			return nil, fmt.Errorf("shard %d/%d: %w", s, of, err)
		}
		hashes[s] = h
	}
	return hashes, nil
}
