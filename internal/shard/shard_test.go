package shard

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/fault"
	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/tmark"
)

// cluster is one in-process worker fleet: of httptest servers each
// holding one shard of the compiled model, plus the connected
// coordinator and a full local model for reference solves.
type cluster struct {
	coord *Coordinator
	model *tmark.Model
	hash  string
	n     int
}

func newCluster(t *testing.T, g *hin.Graph, cfg tmark.Config, of int) *cluster {
	t.Helper()
	data, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	art, err := artifact.DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	blobs, err := Partition(art.Substrate(), hash, of)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	urls := make([]string, of)
	for s, blob := range blobs {
		dec, err := artifact.DecodeShardBytes(blob)
		if err != nil {
			t.Fatalf("DecodeShardBytes %d: %v", s, err)
		}
		w, err := NewWorker(dec, false)
		if err != nil {
			t.Fatalf("NewWorker %d: %v", s, err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	coord, err := Connect(context.Background(), urls, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	model, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &cluster{coord: coord, model: model, hash: hash, n: g.N()}
}

func testQueries(n int) []tmark.ColumnQuery {
	return []tmark.ColumnQuery{
		{Seeds: []int{0, 1 % n}},
		{Seeds: []int{2 % n, 3 % n, 5 % n}},
		{Seeds: []int{4 % n}, ICA: true},
		{Seeds: []int{n - 1, n / 2}},
	}
}

func assertSameResults(t *testing.T, ref, got []tmark.ColumnResult) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("result counts %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		r, g := &ref[i], &got[i]
		if r.Iterations != g.Iterations || r.Converged != g.Converged {
			t.Fatalf("column %d: %d/%v iterations vs %d/%v", i, r.Iterations, r.Converged, g.Iterations, g.Converged)
		}
		for j := range r.X {
			if r.X[j] != g.X[j] {
				t.Fatalf("column %d: x[%d] = %x vs %x", i, j, r.X[j], g.X[j])
			}
		}
		for j := range r.Z {
			if r.Z[j] != g.Z[j] {
				t.Fatalf("column %d: z[%d] = %x vs %x", i, j, r.Z[j], g.Z[j])
			}
		}
		for j := range r.Trace {
			if r.Trace[j] != g.Trace[j] {
				t.Fatalf("column %d: trace[%d] = %x vs %x", i, j, r.Trace[j], g.Trace[j])
			}
		}
	}
}

// The tentpole contract: a sharded solve across M worker processes is
// bitwise identical to a single-process solve with M workers, for
// every feature-channel shape and for accelerated runs.
func TestShardedSolveBitwiseIdentical(t *testing.T) {
	dense := tmark.DefaultConfig()
	csr := tmark.DefaultConfig()
	csr.FeatureTopK = 4
	noW := tmark.DefaultConfig()
	noW.Gamma = 0
	cfgs := map[string]tmark.Config{"dense": dense, "csr": csr, "noW": noW}
	g := dataset.DBLP(dataset.DefaultDBLPConfig(1))
	for name, cfg := range cfgs {
		for _, of := range []int{2, 4} {
			t.Run(name+"/"+string(rune('0'+of)), func(t *testing.T) {
				cl := newCluster(t, g, cfg, of)
				ctx := context.Background()
				queries := testQueries(cl.n)
				ref, err := cl.model.SolveColumns(ctx, queries, tmark.WithWorkers(of))
				if err != nil {
					t.Fatalf("reference solve: %v", err)
				}
				dist, err := cl.model.SolveColumns(ctx, queries,
					tmark.WithWorkers(of), tmark.WithDistributedApply(cl.coord.Applier(ctx)))
				if err != nil {
					t.Fatalf("sharded solve: %v", err)
				}
				assertSameResults(t, ref, dist)

				// Accelerated solves must stay exact too: the extrapolator
				// runs on the coordinator's reduced iterate.
				refAcc, err := cl.model.SolveColumns(ctx, queries,
					tmark.WithWorkers(of), tmark.WithAcceleration(true))
				if err != nil {
					t.Fatalf("reference accelerated solve: %v", err)
				}
				distAcc, err := cl.model.SolveColumns(ctx, queries,
					tmark.WithWorkers(of), tmark.WithAcceleration(true),
					tmark.WithDistributedApply(cl.coord.Applier(ctx)))
				if err != nil {
					t.Fatalf("sharded accelerated solve: %v", err)
				}
				assertSameResults(t, refAcc, distAcc)
			})
		}
	}
}

// TestChaosShardedSolveWorkerLoss kills the worker fleet mid-solve (a
// simulated network partition at the coordinator's RPC layer) and
// requires the solve to degrade to the local kernels and still return
// the exact single-process answer, never an error.
func TestChaosShardedSolveWorkerLoss(t *testing.T) {
	g := dataset.DBLP(dataset.DefaultDBLPConfig(2))
	const of = 2
	cl := newCluster(t, g, tmark.DefaultConfig(), of)
	ctx := context.Background()
	queries := testQueries(cl.n)

	ref, err := cl.model.SolveColumns(ctx, queries, tmark.WithWorkers(of))
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}

	// Let a few passes through, then fail every RPC (both attempts).
	var calls atomic.Int64
	remove := fault.InjectErr(fault.ShardCoordRPC, func() error {
		if calls.Add(1) > 3*of {
			return errors.New("injected partition")
		}
		return nil
	})
	defer remove()

	degraded := obs.Default().Counter("tmark_dist_degraded_total")
	before := degraded.Load()
	dist, err := cl.model.SolveColumns(ctx, queries,
		tmark.WithWorkers(of), tmark.WithDistributedApply(cl.coord.Applier(ctx)))
	if err != nil {
		t.Fatalf("degraded solve errored: %v", err)
	}
	if degraded.Load() != before+1 {
		t.Fatalf("degradation counter moved %d -> %d, want +1", before, degraded.Load())
	}
	// Degradation mid-solve stays bitwise exact: the distributed passes
	// already matched the local kernels, and the local fallback runs at
	// the same worker count.
	assertSameResults(t, ref, dist)
}

// A worker must refuse iterate slabs stamped with a different model's
// content hash rather than contracting garbage.
func TestWorkerRejectsForeignModel(t *testing.T) {
	g := dataset.Example()
	cfg := tmark.DefaultConfig()
	data, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	art, err := artifact.DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	blobs, err := Partition(art.Substrate(), hash, 1)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	dec, err := artifact.DecodeShardBytes(blobs[0])
	if err != nil {
		t.Fatalf("DecodeShardBytes: %v", err)
	}
	w, err := NewWorker(dec, false)
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	coord, err := Connect(context.Background(), []string{srv.URL}, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Forge a coordinator bound to a different parent hash.
	forged := *coord
	forged.parentRaw[0] ^= 0xff
	a := forged.Applier(context.Background())
	n, m := art.N, art.M
	x, z := make([]float64, n), make([]float64, m)
	if err := a.NodeBatch(x, z, make([]float64, n), 1); err == nil {
		t.Fatalf("worker accepted a foreign model's slabs")
	}
}

func TestConnectValidation(t *testing.T) {
	g := dataset.Example()
	cfg := tmark.DefaultConfig()
	data, hash, err := artifact.Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	art, err := artifact.DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	blobs, err := Partition(art.Substrate(), hash, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	urls := make([]string, 2)
	for s, blob := range blobs {
		dec, _ := artifact.DecodeShardBytes(blob)
		w, _ := NewWorker(dec, false)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	// A duplicate shard (same worker twice) must be rejected.
	if _, err := Connect(context.Background(), []string{urls[0], urls[0]}, nil); err == nil {
		t.Fatalf("Connect accepted a duplicate shard")
	}
	// An incomplete cover must be rejected.
	if _, err := Connect(context.Background(), []string{urls[1]}, nil); err == nil {
		t.Fatalf("Connect accepted a missing shard")
	}
	// The full set connects.
	c, err := Connect(context.Background(), urls, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if c.Parent() != hash || c.Workers() != 2 {
		t.Fatalf("coordinator bound to %s /%d", c.Parent(), c.Workers())
	}
}
