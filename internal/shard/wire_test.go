package shard

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

func randFloats(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parent := sha256.Sum256([]byte("parent"))
	const n, m, b = 13, 5, 4

	x, z := randFloats(rng, n*b), randFloats(rng, m*b)
	req := EncodeNodeRequest(nil, parent, 42, n, m, b, x, z)
	f, err := DecodeFrame(req)
	if err != nil {
		t.Fatalf("DecodeFrame(node req): %v", err)
	}
	if f.Kind != KindNodeRequest || f.B != b || f.N != n || f.M != m || f.Arg != 42 || f.Parent != parent {
		t.Fatalf("node req header %+v", f)
	}
	for i := range x {
		if f.X[i] != x[i] {
			t.Fatalf("x[%d] drifted", i)
		}
	}
	for i := range z {
		if f.Z[i] != z[i] {
			t.Fatalf("z[%d] drifted", i)
		}
	}

	wLo, wHi := 3, 9
	part := randFloats(rng, n*b)
	sumX, sumZ, mass := randFloats(rng, b), randFloats(rng, b), randFloats(rng, b)
	wx := randFloats(rng, (wHi-wLo)*b)
	resp := EncodeNodeResponse(nil, parent, 999, 1, 3, n, m, b, wLo, wHi, part, sumX, sumZ, mass, wx)
	f, err = DecodeFrame(resp)
	if err != nil {
		t.Fatalf("DecodeFrame(node resp): %v", err)
	}
	if f.Kind != KindNodeResponse || f.Shard != 1 || f.Of != 3 || f.Arg != 999 || f.WLo != wLo || f.WHi != wHi {
		t.Fatalf("node resp header %+v", f)
	}
	for i := range part {
		if f.Part[i] != part[i] {
			t.Fatalf("part[%d] drifted", i)
		}
	}
	for i := 0; i < b; i++ {
		if f.SumX[i] != sumX[i] || f.SumZ[i] != sumZ[i] || f.Mass[i] != mass[i] {
			t.Fatalf("sums[%d] drifted", i)
		}
	}
	for i := range wx {
		if f.WX[i] != wx[i] {
			t.Fatalf("wx[%d] drifted", i)
		}
	}

	rreq := EncodeRelRequest(nil, parent, 7, n, m, b, x)
	f, err = DecodeFrame(rreq)
	if err != nil {
		t.Fatalf("DecodeFrame(rel req): %v", err)
	}
	if f.Kind != KindRelRequest || len(f.X) != n*b || f.Z != nil {
		t.Fatalf("rel req %+v", f)
	}

	rpart := randFloats(rng, m*b)
	rresp := EncodeRelResponse(nil, parent, 11, 0, 2, n, m, b, rpart, sumX, mass)
	f, err = DecodeFrame(rresp)
	if err != nil {
		t.Fatalf("DecodeFrame(rel resp): %v", err)
	}
	if f.Kind != KindRelResponse || len(f.Part) != m*b || f.SumZ != nil || len(f.WX) != 0 {
		t.Fatalf("rel resp %+v", f)
	}
	for i := range rpart {
		if f.Part[i] != rpart[i] {
			t.Fatalf("rel part[%d] drifted", i)
		}
	}
}

// Encoders must reuse a caller buffer once it has steady-state capacity.
func TestFrameEncodeReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	parent := sha256.Sum256([]byte("p"))
	const n, m, b = 40, 9, 8
	x, z := randFloats(rng, n*b), randFloats(rng, m*b)
	buf := EncodeNodeRequest(nil, parent, 0, n, m, b, x, z)
	first := &buf[0]
	buf2 := EncodeNodeRequest(buf, parent, 1, n, m, b, x, z)
	if &buf2[0] != first {
		t.Fatalf("encode reallocated a sufficient buffer")
	}
	if !bytes.Equal(buf2[:8], frameMagic[:]) {
		t.Fatalf("reused buffer lost the magic")
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parent := sha256.Sum256([]byte("p"))
	const n, m, b = 6, 4, 2
	good := EncodeNodeRequest(nil, parent, 0, n, m, b, randFloats(rng, n*b), randFloats(rng, m*b))
	if _, err := DecodeFrame(good); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}
	// Truncation at every prefix length must error, not panic.
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := DecodeFrame(good[:cut]); err == nil {
			t.Fatalf("truncation to %d accepted", cut)
		}
	}
	// Any single-byte flip trips the checksum.
	for _, off := range []int{0, 9, 13, 50, headerSize + 3, len(good) - 9, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("flip at %d accepted", off)
		}
	}
	// A header lying about dimensions fails the exact-length check even
	// with a recomputed checksum.
	relabel := func(mutate func(body []byte)) []byte {
		body := append([]byte(nil), good[:len(good)-trailerLen]...)
		mutate(body)
		return seal(body)
	}
	for name, mutate := range map[string]func([]byte){
		"kind0":      func(body []byte) { body[8] = 0 },
		"kind5":      func(body []byte) { body[8] = 5 },
		"b0":         func(body []byte) { body[12] = 0 },
		"nGrown":     func(body []byte) { body[16]++ },
		"mZero":      func(body []byte) { body[20] = 0 },
		"reqShardID": func(body []byte) { body[28] = 2 },
		"reqWSlab":   func(body []byte) { body[44] = 1 },
	} {
		if _, err := DecodeFrame(relabel(mutate)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// A response claiming shard >= of is rejected.
	resp := EncodeRelResponse(nil, parent, 0, 1, 2, n, m, b,
		randFloats(rng, m*b), randFloats(rng, b), randFloats(rng, b))
	bad := append([]byte(nil), resp[:len(resp)-trailerLen]...)
	bad[24] = 2 // shard == of
	if _, err := DecodeFrame(seal(bad)); err == nil {
		t.Fatalf("shard==of accepted")
	}
}

// FuzzDecodeShardFrame drives the strict frame decoder with hostile
// input: it must never panic and never accept a frame whose re-encoding
// disagrees with the parse.
func FuzzDecodeShardFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	parent := sha256.Sum256([]byte("seed"))
	const n, m, b = 5, 3, 2
	x, z := randFloats(rng, n*b), randFloats(rng, m*b)
	f.Add(EncodeNodeRequest(nil, parent, 3, n, m, b, x, z))
	f.Add(EncodeNodeResponse(nil, parent, 10, 0, 2, n, m, b, 0, 3,
		randFloats(rng, n*b), randFloats(rng, b), randFloats(rng, b), randFloats(rng, b), randFloats(rng, 3*b)))
	f.Add(EncodeRelRequest(nil, parent, 1, n, m, b, x))
	f.Add(EncodeRelResponse(nil, parent, 2, 1, 2, n, m, b,
		randFloats(rng, m*b), randFloats(rng, b), randFloats(rng, b)))
	f.Add([]byte("TMSHARD1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// A frame that decodes must round-trip bitwise.
		var re []byte
		switch fr.Kind {
		case KindNodeRequest:
			re = EncodeNodeRequest(nil, fr.Parent, fr.Arg, fr.N, fr.M, fr.B, fr.X, fr.Z)
		case KindNodeResponse:
			re = EncodeNodeResponse(nil, fr.Parent, fr.Arg, fr.Shard, fr.Of, fr.N, fr.M, fr.B, fr.WLo, fr.WHi,
				fr.Part, fr.SumX, fr.SumZ, fr.Mass, fr.WX)
		case KindRelRequest:
			re = EncodeRelRequest(nil, fr.Parent, fr.Arg, fr.N, fr.M, fr.B, fr.X)
		case KindRelResponse:
			re = EncodeRelResponse(nil, fr.Parent, fr.Arg, fr.Shard, fr.Of, fr.N, fr.M, fr.B,
				fr.Part, fr.SumX, fr.Mass)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame does not round-trip (%d vs %d bytes)", len(re), len(data))
		}
	})
}
