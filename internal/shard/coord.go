package shard

// The coordinator: the solver-side half of the lockstep protocol. One
// Coordinator owns a validated set of worker addresses covering every
// shard of one parent model; Applier() hands the solver a
// tmark.DistApplier whose NodeBatch/RelationBatch fan one request out
// to all workers, wait for every partial, and reduce them in ascending
// shard order with tensor.ReduceNodePartials — reproducing the
// in-process parallel kernels bit for bit. The solver's extrapolation,
// guards and convergence checks all run locally on the reduced
// iterate, so accelerated solves stay exact across processes.
//
// Failure semantics: each RPC is retried once with a context-honoring
// backoff; a worker that stays down makes the pass return an error,
// which the solver answers by permanently degrading that run to its
// local kernels (the caller always holds the full model). A dead
// worker therefore costs one recomputed pass, never the solve.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tmark/internal/fault"
	"tmark/internal/obs"
	"tmark/internal/tensor"
)

var (
	regCoordNodeApply = obs.Default().Timer("shard_coord_node_apply")
	regCoordRelApply  = obs.Default().Timer("shard_coord_rel_apply")
	regCoordReduce    = obs.Default().Timer("shard_coord_reduce")
	regCoordRetries   = obs.Default().Counter("shard_coord_retries_total")
	regCoordRPCErrors = obs.Default().Counter("shard_coord_rpc_errors_total")
	// regStraggle holds the latest pass's straggle — the spread in
	// nanoseconds between the slowest and fastest worker's self-reported
	// kernel time — exported as the shard_straggler_ns gauge.
	regStraggle = func() *atomic.Int64 {
		v := new(atomic.Int64)
		obs.Default().SetGauge("shard_straggler_ns", func() float64 { return float64(v.Load()) })
		return v
	}()
)

// Coordinator drives lockstep iteration across the worker set of one
// partitioned model. It is cheap and read-only after Connect; each
// solve builds its own Applier, so one Coordinator serves concurrent
// solves.
type Coordinator struct {
	parent    string
	parentRaw [32]byte
	n, m, of  int
	hasW      bool
	urls      []string // indexed by shard
	client    *http.Client

	// Attempts is the per-worker try count per pass (default 2: one
	// retry); Backoff separates the tries.
	attempts int
	backoff  time.Duration
}

// Connect performs the handshake: it fetches /v1/shard/info from every
// URL and validates that the answers agree on one parent model and
// cover every shard exactly once. client may be nil for
// http.DefaultClient.
func Connect(ctx context.Context, urls []string, client *http.Client) (*Coordinator, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: no worker URLs")
	}
	if client == nil {
		client = http.DefaultClient
	}
	c := &Coordinator{client: client, attempts: 2, backoff: 50 * time.Millisecond}
	byShard := make([]string, 0)
	for _, u := range urls {
		info, err := fetchInfo(ctx, client, u)
		if err != nil {
			return nil, fmt.Errorf("shard: handshake with %s: %w", u, err)
		}
		if c.parent == "" {
			raw, err := hex.DecodeString(info.Parent)
			if err != nil || len(raw) != 32 {
				return nil, fmt.Errorf("shard: %s serves malformed parent hash %q", u, info.Parent)
			}
			c.parent, c.n, c.m, c.of, c.hasW = info.Parent, info.N, info.M, info.Of, info.HasW
			copy(c.parentRaw[:], raw)
			byShard = make([]string, c.of)
		}
		if info.Parent != c.parent || info.Of != c.of || info.N != c.n || info.M != c.m || info.HasW != c.hasW {
			return nil, fmt.Errorf("shard: %s serves %s shard %d/%d, expected a shard of %s /%d",
				u, info.Parent[:12], info.Shard, info.Of, c.parent[:12], c.of)
		}
		if info.Shard < 0 || info.Shard >= c.of {
			return nil, fmt.Errorf("shard: %s serves out-of-range shard %d/%d", u, info.Shard, info.Of)
		}
		if byShard[info.Shard] != "" {
			return nil, fmt.Errorf("shard: shard %d served by both %s and %s", info.Shard, byShard[info.Shard], u)
		}
		byShard[info.Shard] = u
	}
	for s, u := range byShard {
		if u == "" {
			return nil, fmt.Errorf("shard: no worker for shard %d/%d", s, c.of)
		}
	}
	c.urls = byShard
	return c, nil
}

func fetchInfo(ctx context.Context, client *http.Client, base string) (*Info, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/shard/info", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("info status %s", resp.Status)
	}
	var info Info
	if err := decodeJSONBody(resp.Body, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// decodeJSONBody parses a bounded JSON handshake document.
func decodeJSONBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<16))
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// Parent returns the content hash of the model the worker set serves.
func (c *Coordinator) Parent() string { return c.parent }

// Workers returns the shard count of the worker set. A solve that
// wants bitwise identity with this coordinator's output must run with
// WithWorkers(Workers()).
func (c *Coordinator) Workers() int { return c.of }

// Applier builds one solve's distributed applier. The context governs
// every RPC the applier issues; pass the solve's own context so a
// canceled solve abandons its in-flight fan-out.
func (c *Coordinator) Applier(ctx context.Context) *Applier {
	a := &Applier{c: c, ctx: ctx}
	a.frames = make([]*Frame, c.of)
	a.bodies = make([][]byte, c.of)
	a.parts = make([][]float64, c.of)
	a.sumA = make([][]float64, c.of)
	a.sumB = make([][]float64, c.of)
	a.masses = make([][]float64, c.of)
	return a
}

// Applier is one solve's view of the worker set; it implements
// tmark.DistApplier. It is owned by a single solver goroutine (like
// the runScratch it plugs into) and reuses its request and reduce
// buffers across iterations.
type Applier struct {
	c    *Coordinator
	ctx  context.Context
	iter uint64

	reqBuf []byte
	frames []*Frame
	bodies [][]byte // response buffers backing the frames
	parts  [][]float64
	sumA   [][]float64 // sumX (node) / sumI (relation)
	sumB   [][]float64 // sumZ (node)
	masses [][]float64
	u      []float64 // per-column reduce scratch

	// One-shot W·x stash: the node pass computes the feature matvec
	// from the same x it contracts, so FeatureBatch answers from here
	// when the solver asks with that exact slab.
	wx      []float64
	wxKey   *float64
	wxB     int
	wxValid bool

	// err is the applier's first pass failure, sticky: the solver
	// degrades on the first error anyway, and callers (the serve
	// coalescer) read it to start a worker-fleet cooldown.
	err error
}

// Err returns the first pass failure, or nil while the applier is
// healthy.
func (a *Applier) Err() error { return a.err }

// NodeBatch implements tmark.DistApplier: one distributed node pass.
func (a *Applier) NodeBatch(x, z, dst []float64, b int) error {
	if a.err != nil {
		return a.err
	}
	a.wxValid = false
	start := time.Now()
	a.iter++
	a.reqBuf = EncodeNodeRequest(a.reqBuf, a.c.parentRaw, a.iter, a.c.n, a.c.m, b, x, z)
	if err := a.fanout(KindNodeResponse, b); err != nil {
		return err
	}
	reduceStart := time.Now()
	for s, f := range a.frames {
		a.parts[s], a.sumA[s], a.sumB[s], a.masses[s] = f.Part, f.SumX, f.SumZ, f.Mass
	}
	a.u = growF(a.u, b)
	tensor.ReduceNodePartials(dst, a.u, a.c.n, b, a.parts, a.sumA, a.sumB, a.masses)
	if a.c.hasW {
		a.wx = growF(a.wx, a.c.n*b)
		for _, f := range a.frames {
			copy(a.wx[f.WLo*b:f.WHi*b], f.WX)
		}
		a.wxKey, a.wxB, a.wxValid = &x[0], b, true
	}
	regCoordReduce.Observe(time.Since(reduceStart))
	regCoordNodeApply.Observe(time.Since(start))
	return nil
}

// RelationBatch implements tmark.DistApplier: one distributed
// relation pass.
func (a *Applier) RelationBatch(x, dst []float64, b int) error {
	if a.err != nil {
		return a.err
	}
	start := time.Now()
	a.reqBuf = EncodeRelRequest(a.reqBuf, a.c.parentRaw, a.iter, a.c.n, a.c.m, b, x)
	if err := a.fanout(KindRelResponse, b); err != nil {
		return err
	}
	reduceStart := time.Now()
	for s, f := range a.frames {
		a.parts[s], a.sumA[s], a.masses[s] = f.Part, f.SumX, f.Mass
	}
	a.u = growF(a.u, b)
	tensor.ReduceRelationPartials(dst, a.u, a.c.m, b, a.parts, a.sumA, a.masses)
	regCoordReduce.Observe(time.Since(reduceStart))
	regCoordRelApply.Observe(time.Since(start))
	return nil
}

// FeatureBatch implements tmark.DistApplier: it answers from the node
// pass's W·x stash when the solver asks with the same x slab, and
// declines otherwise (the feature matvec is row-independent, so the
// local fallback is bitwise identical anyway).
func (a *Applier) FeatureBatch(x, dst []float64, b int) (bool, error) {
	if !a.wxValid || a.wxKey != &x[0] || a.wxB != b {
		return false, nil
	}
	a.wxValid = false
	copy(dst[:a.c.n*b], a.wx[:a.c.n*b])
	return true, nil
}

// fanout sends the encoded request in reqBuf to every worker
// concurrently, decodes and validates one response frame per shard
// into a.frames, and feeds the straggler gauge. Any worker that fails
// all its attempts fails the pass.
func (a *Applier) fanout(wantKind uint32, b int) error {
	c := a.c
	var wg sync.WaitGroup
	errs := make([]error, c.of)
	for s := 0; s < c.of; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a.bodies[s], errs[s] = c.post(a.ctx, c.urls[s], a.reqBuf, a.bodies[s])
			if errs[s] != nil {
				return
			}
			f, err := DecodeFrame(a.bodies[s])
			if err != nil {
				errs[s] = fmt.Errorf("worker %d: %w", s, err)
				return
			}
			if f.Kind != wantKind || f.Shard != s || f.Of != c.of || f.Parent != c.parentRaw ||
				f.N != c.n || f.M != c.m || f.B != b {
				errs[s] = fmt.Errorf("worker %d answered kind %d shard %d/%d b=%d", s, f.Kind, f.Shard, f.Of, f.B)
				return
			}
			a.frames[s] = f
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			regCoordRPCErrors.Inc()
			a.err = fmt.Errorf("shard: pass failed at worker %d (%s): %w", s, c.urls[s], err)
			return a.err
		}
	}
	var minNS, maxNS uint64
	for s, f := range a.frames {
		if s == 0 || f.Arg < minNS {
			minNS = f.Arg
		}
		if f.Arg > maxNS {
			maxNS = f.Arg
		}
	}
	regStraggle.Store(int64(maxNS - minNS))
	return nil
}

// post sends one apply RPC with retries. The backoff select honors ctx
// so a canceled solve never sleeps out its backoff.
func (c *Coordinator) post(ctx context.Context, url string, body []byte, respBuf []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			regCoordRetries.Inc()
			t := time.NewTimer(c.backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		if fault.Enabled() {
			if err := fault.Check(fault.ShardCoordRPC); err != nil {
				lastErr = err
				continue
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/shard/apply", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		data, err := readAllInto(respBuf, resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("status %s: %s", resp.Status, truncate(data, 120))
			continue
		}
		return data, nil
	}
	return nil, lastErr
}

// readAllInto is io.ReadAll reusing buf's capacity across iterations.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}
