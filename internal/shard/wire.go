// Package shard implements horizontal scale-out for the T-Mark solver:
// partitioning a compiled model into per-shard sub-tensor artifacts,
// the worker that serves one shard's apply pass over HTTP, and the
// coordinator that drives lockstep iteration across the workers while
// the solver's extrapolation, guards and convergence logic keep running
// locally on the reduced iterate.
//
// The per-iteration RPC bodies use a tight binary frame format rather
// than JSON: one frame is a fixed 80-byte header, 8-byte-aligned
// float64 payload slabs, and a crc64/ECMA trailer.
//
//	magic   "TMSHARD1"          8 bytes  @0
//	kind    uint32              @8   1 node req, 2 node resp, 3 rel req, 4 rel resp
//	b       uint32              @12  block width (columns)
//	n       uint32              @16  node count of the parent model
//	m       uint32              @20  link count of the parent model
//	shard   uint32              @24  responder's shard index (0 in requests)
//	of      uint32              @28  responder's shard count (0 in requests)
//	arg     uint64              @32  requests: lockstep iteration; responses: worker ns
//	wLo     uint32              @40  node responses: W row slab start (else 0)
//	wHi     uint32              @44  node responses: W row slab end   (else 0)
//	parent  raw sha256          @48  32 bytes, the parent model's content hash
//	payload float64 slabs       @80  little-endian, layout by kind (below)
//	crc     uint64              last 8 bytes, crc64/ECMA over everything above
//
// Payload layouts (all lengths in float64s):
//
//	kind 1 (node request):   x[n·b] z[m·b]
//	kind 2 (node response):  part[n·b] sumX[b] sumZ[b] mass[b] wx[(wHi−wLo)·b]
//	kind 3 (rel request):    x[n·b]
//	kind 4 (rel response):   part[m·b] sumI[b] mass[b]
//
// The total frame length must equal the header + payload + trailer
// exactly. DecodeFrame is strict in the same sense as the checkpoint
// decoder: checksum first, every dimension bounded before any
// dimension-derived arithmetic, no panics on hostile input, and no
// allocation beyond the input size (payloads alias the input buffer
// when aligned).
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"unsafe"
)

// Frame kinds: the four per-iteration RPC bodies.
const (
	KindNodeRequest  uint32 = 1
	KindNodeResponse uint32 = 2
	KindRelRequest   uint32 = 3
	KindRelResponse  uint32 = 4
)

const (
	headerSize = 80
	trailerLen = 8
	// maxBlock bounds the block width a frame may claim; the solver
	// blocks over classes or query columns, never more than a few
	// hundred, so 1<<20 is generous while keeping n·b overflow-free.
	maxBlock = 1 << 20
	// maxDim bounds the node/link counts; int32 COO indices cap real
	// models well below this already.
	maxDim = 1 << 31
)

var frameMagic = [8]byte{'T', 'M', 'S', 'H', 'A', 'R', 'D', '1'}

var frameCRC = crc64.MakeTable(crc64.ECMA)

// Frame is one decoded shard RPC body. The float slices alias the
// input buffer when the host is little-endian and the buffer is
// 8-byte aligned — they are read-only in that case and only valid
// while the buffer is.
type Frame struct {
	Kind      uint32
	B         int // block width
	N, M      int // parent model dimensions
	Shard, Of int // responder identity (0/0 in requests)
	// Arg carries the lockstep iteration number in requests and the
	// worker's wall time in nanoseconds in responses (the coordinator's
	// straggler gauge feeds on it).
	Arg      uint64
	WLo, WHi int      // node responses: W·x row slab range
	Parent   [32]byte // parent model content hash, raw

	X, Z []float64 // requests: iterate slabs (Z only in node requests)
	// Part is the partial contraction slab: n·b floats in node
	// responses, m·b in relation responses.
	Part []float64
	// SumX/SumZ/Mass are the per-column partial reduction sums. In
	// relation responses SumX holds sumI and SumZ is nil.
	SumX, SumZ, Mass []float64
	// WX is the node response's W·x row slab ((wHi−wLo)·b floats;
	// empty when the model has no feature matrix).
	WX []float64
}

// nativeLittleEndian reports whether raw little-endian frame bytes can
// be reinterpreted as host floats without conversion.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// appendFloats appends the little-endian encoding of fs. On
// little-endian hosts it is one bulk copy.
func appendFloats(buf []byte, fs []float64) []byte {
	if len(fs) == 0 {
		return buf
	}
	if nativeLittleEndian {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&fs[0])), 8*len(fs))...)
	}
	for _, f := range fs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// frameFloats reinterprets b as []float64 without copying when the
// host is little-endian and b is 8-byte aligned; otherwise it decodes
// a copy. Zero-copy views are read-only by contract.
func frameFloats(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// appendHeader writes the fixed 80-byte frame header.
func appendHeader(buf []byte, kind uint32, b, n, m, shard, of int, arg uint64, wLo, wHi int, parent [32]byte) []byte {
	buf = append(buf, frameMagic[:]...)
	for _, v := range []uint32{kind, uint32(b), uint32(n), uint32(m), uint32(shard), uint32(of)} {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, arg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(wLo))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(wHi))
	return append(buf, parent[:]...)
}

// seal appends the crc64 trailer and returns the finished frame.
func seal(buf []byte) []byte {
	return binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, frameCRC))
}

// frameSize returns the exact encoded size of a frame with the given
// payload float count, for pre-sizing reused buffers.
func frameSize(floats int) int { return headerSize + 8*floats + trailerLen }

// grow returns buf emptied, with capacity for at least size bytes, so
// a reused encode buffer reaches steady state after one allocation.
func grow(buf []byte, size int) []byte {
	if cap(buf) < size {
		return make([]byte, 0, size)
	}
	return buf[:0]
}

// EncodeNodeRequest encodes one node-pass request: the full (x, z)
// iterate slabs at block width b. buf is reused via buf[:0]; the
// encoders trust their caller (the coordinator and the worker tests)
// and panic on mismatched slab lengths rather than returning errors.
func EncodeNodeRequest(buf []byte, parent [32]byte, iter uint64, n, m, b int, x, z []float64) []byte {
	if len(x) != n*b || len(z) != m*b {
		panic(fmt.Sprintf("shard: node request slabs %d/%d for n=%d m=%d b=%d", len(x), len(z), n, m, b))
	}
	out := grow(buf, frameSize(len(x)+len(z)))
	out = appendHeader(out, KindNodeRequest, b, n, m, 0, 0, iter, 0, 0, parent)
	out = appendFloats(out, x)
	out = appendFloats(out, z)
	return seal(out)
}

// EncodeNodeResponse encodes one worker's node-pass partials: the n·b
// partial contraction slab, the per-column sums, and the worker's W·x
// row slab for rows [wLo, wHi) (nil when the model has no W).
func EncodeNodeResponse(buf []byte, parent [32]byte, elapsed uint64, shard, of, n, m, b, wLo, wHi int, part, sumX, sumZ, mass, wx []float64) []byte {
	if len(part) != n*b || len(sumX) != b || len(sumZ) != b || len(mass) != b || len(wx) != (wHi-wLo)*b {
		panic(fmt.Sprintf("shard: node response slabs %d/%d/%d/%d/%d for n=%d b=%d w=[%d,%d)",
			len(part), len(sumX), len(sumZ), len(mass), len(wx), n, b, wLo, wHi))
	}
	out := grow(buf, frameSize(len(part)+3*b+len(wx)))
	out = appendHeader(out, KindNodeResponse, b, n, m, shard, of, elapsed, wLo, wHi, parent)
	out = appendFloats(out, part)
	out = appendFloats(out, sumX)
	out = appendFloats(out, sumZ)
	out = appendFloats(out, mass)
	out = appendFloats(out, wx)
	return seal(out)
}

// EncodeRelRequest encodes one relation-pass request: the normalised
// node slab x at block width b.
func EncodeRelRequest(buf []byte, parent [32]byte, iter uint64, n, m, b int, x []float64) []byte {
	if len(x) != n*b {
		panic(fmt.Sprintf("shard: rel request slab %d for n=%d b=%d", len(x), n, b))
	}
	out := grow(buf, frameSize(len(x)))
	out = appendHeader(out, KindRelRequest, b, n, m, 0, 0, iter, 0, 0, parent)
	out = appendFloats(out, x)
	return seal(out)
}

// EncodeRelResponse encodes one worker's relation-pass partials: the
// m·b partial slab plus the per-column sumI and tube-mass sums.
func EncodeRelResponse(buf []byte, parent [32]byte, elapsed uint64, shard, of, n, m, b int, part, sumI, mass []float64) []byte {
	if len(part) != m*b || len(sumI) != b || len(mass) != b {
		panic(fmt.Sprintf("shard: rel response slabs %d/%d/%d for m=%d b=%d", len(part), len(sumI), len(mass), m, b))
	}
	out := grow(buf, frameSize(len(part)+2*b))
	out = appendHeader(out, KindRelResponse, b, n, m, shard, of, elapsed, 0, 0, parent)
	out = appendFloats(out, part)
	out = appendFloats(out, sumI)
	out = appendFloats(out, mass)
	return seal(out)
}

// DecodeFrame parses and validates one shard RPC frame. It returns an
// error — never panics, never returns partially-filled state — on
// truncation, checksum mismatch, unknown kind, out-of-range
// dimensions, or a payload whose length does not match the header
// exactly. Float payloads alias data when aligned, so the frame is
// only valid while data is.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < headerSize+trailerLen {
		return nil, fmt.Errorf("shard: frame too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := binary.LittleEndian.Uint64(tail), crc64.Checksum(body, frameCRC); got != want {
		return nil, fmt.Errorf("shard: frame checksum mismatch (stored %016x, computed %016x)", got, want)
	}
	if [8]byte(body[:8]) != frameMagic {
		return nil, fmt.Errorf("shard: not a shard frame (magic %q)", body[:8])
	}
	f := &Frame{
		Kind:  binary.LittleEndian.Uint32(body[8:]),
		B:     int(binary.LittleEndian.Uint32(body[12:])),
		N:     int(binary.LittleEndian.Uint32(body[16:])),
		M:     int(binary.LittleEndian.Uint32(body[20:])),
		Shard: int(binary.LittleEndian.Uint32(body[24:])),
		Of:    int(binary.LittleEndian.Uint32(body[28:])),
		Arg:   binary.LittleEndian.Uint64(body[32:]),
		WLo:   int(binary.LittleEndian.Uint32(body[40:])),
		WHi:   int(binary.LittleEndian.Uint32(body[44:])),
	}
	copy(f.Parent[:], body[48:80])
	if f.Kind < KindNodeRequest || f.Kind > KindRelResponse {
		return nil, fmt.Errorf("shard: frame kind %d unknown", f.Kind)
	}
	if f.B < 1 || f.B > maxBlock || f.N < 1 || f.N >= maxDim || f.M < 1 || f.M >= maxDim {
		return nil, fmt.Errorf("shard: frame dimensions b=%d n=%d m=%d out of range", f.B, f.N, f.M)
	}
	isResponse := f.Kind == KindNodeResponse || f.Kind == KindRelResponse
	if isResponse {
		if f.Of < 1 || f.Shard < 0 || f.Shard >= f.Of {
			return nil, fmt.Errorf("shard: frame responder %d/%d invalid", f.Shard, f.Of)
		}
	} else if f.Shard != 0 || f.Of != 0 {
		return nil, fmt.Errorf("shard: request frame carries responder identity %d/%d", f.Shard, f.Of)
	}
	if f.Kind == KindNodeResponse {
		if f.WLo < 0 || f.WLo > f.WHi || f.WHi > f.N {
			return nil, fmt.Errorf("shard: frame W slab [%d,%d) outside [0,%d)", f.WLo, f.WHi, f.N)
		}
	} else if f.WLo != 0 || f.WHi != 0 {
		return nil, fmt.Errorf("shard: frame kind %d carries a W slab [%d,%d)", f.Kind, f.WLo, f.WHi)
	}

	// With b ≤ 2^20 and n, m < 2^31 every product below stays well
	// inside int64, so the exact-length check cannot overflow.
	b64, n64, m64 := int64(f.B), int64(f.N), int64(f.M)
	var want int64
	switch f.Kind {
	case KindNodeRequest:
		want = (n64 + m64) * b64
	case KindNodeResponse:
		want = n64*b64 + 3*b64 + int64(f.WHi-f.WLo)*b64
	case KindRelRequest:
		want = n64 * b64
	case KindRelResponse:
		want = m64*b64 + 2*b64
	}
	if int64(len(body)-headerSize) != 8*want {
		return nil, fmt.Errorf("shard: frame payload %d bytes, header implies %d", len(body)-headerSize, 8*want)
	}

	p := body[headerSize:]
	take := func(floats int) []float64 {
		out := frameFloats(p[:8*floats])
		p = p[8*floats:]
		return out
	}
	switch f.Kind {
	case KindNodeRequest:
		f.X = take(f.N * f.B)
		f.Z = take(f.M * f.B)
	case KindNodeResponse:
		f.Part = take(f.N * f.B)
		f.SumX = take(f.B)
		f.SumZ = take(f.B)
		f.Mass = take(f.B)
		f.WX = take((f.WHi - f.WLo) * f.B)
	case KindRelRequest:
		f.X = take(f.N * f.B)
	case KindRelResponse:
		f.Part = take(f.M * f.B)
		f.SumX = take(f.B)
		f.Mass = take(f.B)
	}
	return f, nil
}
