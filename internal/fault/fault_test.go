package fault

import (
	"errors"
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	t.Cleanup(Reset)
	if Enabled() {
		t.Fatal("Enabled() = true with no hooks registered")
	}
	Fire(TensorNodeBatch, 1, 2) // must be a no-op
	if err := Check(ServeModelBuild); err != nil {
		t.Fatalf("Check on empty registry = %v, want nil", err)
	}
}

func TestInjectFireRemove(t *testing.T) {
	t.Cleanup(Reset)
	var got []any
	remove := Inject(TensorNodeBatch, func(args ...any) { got = append(got, args...) })
	if !Enabled() {
		t.Fatal("Enabled() = false after Inject")
	}
	Fire(TensorNodeBatch, "a", 7)
	Fire(TensorRelationBatch, "ignored") // different point
	if len(got) != 2 || got[0] != "a" || got[1] != 7 {
		t.Fatalf("hook saw %v, want [a 7]", got)
	}
	remove()
	remove() // idempotent
	if Enabled() {
		t.Fatal("Enabled() = true after removal")
	}
	Fire(TensorNodeBatch, "b")
	if len(got) != 2 {
		t.Fatalf("removed hook still fired: %v", got)
	}
}

func TestInjectErrCheck(t *testing.T) {
	t.Cleanup(Reset)
	want := errors.New("disk full")
	remove := InjectErr(CheckpointSave, func() error { return want })
	defer remove()
	if err := Check(CheckpointSave); !errors.Is(err, want) {
		t.Fatalf("Check = %v, want %v", err, want)
	}
	if err := Check(ServeModelBuild); err != nil {
		t.Fatalf("Check on other point = %v, want nil", err)
	}
}

func TestMultipleHooksRunInOrder(t *testing.T) {
	t.Cleanup(Reset)
	var order []int
	Inject(ServeBatchSolve, func(...any) { order = append(order, 1) })
	Inject(ServeBatchSolve, func(...any) { order = append(order, 2) })
	Fire(ServeBatchSolve)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hook order %v, want [1 2]", order)
	}
}

func TestReset(t *testing.T) {
	Inject(TensorNodeBatch, func(...any) {})
	InjectErr(ServeModelBuild, func() error { return errors.New("x") })
	Reset()
	if Enabled() {
		t.Fatal("Enabled() = true after Reset")
	}
	if err := Check(ServeModelBuild); err != nil {
		t.Fatalf("Check after Reset = %v, want nil", err)
	}
}

func TestNthAndOnce(t *testing.T) {
	t.Cleanup(Reset)
	hits := 0
	Inject(TensorNodeBatch, Nth(3, func(...any) { hits++ }))
	for i := 0; i < 10; i++ {
		Fire(TensorNodeBatch)
	}
	if hits != 1 {
		t.Fatalf("Nth(3) fired %d times over 10 hits, want 1", hits)
	}
	onceHits := 0
	Inject(TensorRelationBatch, Once(func(...any) { onceHits++ }))
	Fire(TensorRelationBatch)
	Fire(TensorRelationBatch)
	if onceHits != 1 {
		t.Fatalf("Once fired %d times, want 1", onceHits)
	}
}

// TestConcurrentFire exercises the registry from many goroutines — the
// kernels fire points from worker pools, so this must be race-clean.
func TestConcurrentFire(t *testing.T) {
	t.Cleanup(Reset)
	var mu sync.Mutex
	count := 0
	remove := Inject(TensorNodeBatch, func(...any) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Enabled() {
					Fire(TensorNodeBatch)
				}
			}
		}()
	}
	wg.Wait()
	remove()
	mu.Lock()
	defer mu.Unlock()
	if count != 800 {
		t.Fatalf("hook fired %d times, want 800", count)
	}
}

func TestPanicPropagates(t *testing.T) {
	t.Cleanup(Reset)
	Inject(ServeModelBuild, func(...any) { panic("injected crash") })
	defer func() {
		if recover() == nil {
			t.Fatal("panic from hook did not propagate")
		}
	}()
	Fire(ServeModelBuild)
}
