// Package fault is a deterministic fault-injection registry for chaos
// testing. Production code marks interesting places with named points —
// a tensor kernel finishing a blocked contraction, a model build, a
// coalescer about to solve a batch — and chaos tests attach hooks to
// those points to corrupt buffers, sleep, fail or panic on demand.
//
// The registry is designed to vanish in production. Nothing is ever
// registered outside tests, and the one question hot code asks —
// Enabled() — is a single atomic load. The calling convention keeps the
// disabled path allocation-free: guard every Fire with Enabled, so the
// variadic argument slice is only built when a test is actually
// listening:
//
//	if fault.Enabled() {
//		fault.Fire(fault.TensorNodeBatch, dst, b)
//	}
//
// Hooks run synchronously on the goroutine that hit the point, so a
// test's injection is deterministic with respect to the code path that
// fired it: a hook that writes NaN into the kernel's destination slice
// corrupts exactly the iteration it fired on. The registry itself is
// safe for concurrent use (kernels fire from worker pools); hooks that
// mutate shared test state must do their own locking.
package fault

import (
	"sync"
	"sync/atomic"
)

// Point names one injection site. Points are declared next to the code
// that fires them; the canonical set lives here so tests and production
// code agree on spelling.
type Point string

// The registry's named injection points.
const (
	// TensorNodeBatch fires after the blocked node contraction writes
	// dst; args are (dst []float64, b int).
	TensorNodeBatch Point = "tensor/node-batch"
	// TensorRelationBatch fires after the blocked relation contraction
	// writes dst; args are (dst []float64, b int).
	TensorRelationBatch Point = "tensor/relation-batch"
	// ServeModelBuild is checked (Check) before a warm-model build; a
	// registered error fails the build, and a hook that panics simulates
	// a crashing build.
	ServeModelBuild Point = "serve/model-build"
	// ServeBatchSolve fires before a coalesced lockstep batch solves;
	// args are (width int). A sleeping hook simulates a slow worker, a
	// panicking hook a crashing solve.
	ServeBatchSolve Point = "serve/batch-solve"
	// ServeCacheEvict fires when the model cache evicts an entry.
	ServeCacheEvict Point = "serve/cache-evict"
	// CheckpointSave is checked (Check) before a checkpoint sink write;
	// a registered error simulates a failing disk.
	CheckpointSave Point = "tmark/checkpoint-save"
	// AccelPropose fires when the extrapolated power method builds a
	// candidate iterate, before the simplex projection and the health
	// vetting; args are (cand []float64, n int, m int) — the concatenated
	// (x, z) candidate. A hook that writes NaN into cand exercises the
	// propose-time finite check; a hook that writes a finite but wildly
	// wrong distribution exercises the in-loop non-monotone-residual
	// rejection and its fallback to plain iteration.
	AccelPropose Point = "accel/propose"
	// ArtifactOpen is checked (Check) before an artifact blob is opened
	// and mapped; a registered error simulates an unreadable blob and
	// forces the serve cache onto the rebuild path.
	ArtifactOpen Point = "artifact/open"
	// ArtifactDecode fires with the raw artifact bytes (data []byte)
	// after the blob is read but before DecodeBytes parses it. A hook
	// that flips bytes simulates on-disk corruption; the crc64 trailer
	// must then reject the artifact.
	ArtifactDecode Point = "artifact/decode"
	// ArtifactActivate is checked (Check) after a blob decodes but
	// before the model is assembled from it; a registered error
	// simulates an artifact whose substrate fails activation.
	ArtifactActivate Point = "artifact/activate"
	// ShardWorkerApply is checked (Check) by a shard worker before it
	// runs a local apply pass; a registered error makes the worker
	// answer 503, simulating a dying or partitioned worker process.
	ShardWorkerApply Point = "shard/worker-apply"
	// ShardCoordRPC is checked (Check) by the coordinator before each
	// per-worker apply RPC; a registered error simulates a network
	// partition between coordinator and worker without needing a real
	// broken socket.
	ShardCoordRPC Point = "shard/coord-rpc"
	// StreamApply is checked (Check) before a delta batch is composed
	// and fires (Fire) after the new substrate is assembled but before
	// anything is sealed or published; args are (seq int, changes int).
	// A registered error rejects the batch; a panicking hook simulates
	// an ingest crashing mid-apply — the engine must quarantine without
	// publishing any partial state.
	StreamApply Point = "stream/apply"
	// StreamSeal fires between the registry Put of a new version's blob
	// and the Tag that moves the floating name to it; args are
	// (hash string). A panicking hook simulates a crash in the seal
	// window: the blob may exist untagged, but the name must still
	// resolve to the previous version.
	StreamSeal Point = "stream/seal"
	// StreamWarm is checked (Check) before a warm re-solve seeded from
	// the previous stationary distributions; a registered error forces
	// the cold path, and a panicking hook simulates a crashing warm
	// restart after the version was sealed.
	StreamWarm Point = "stream/warm"
	// WALAppend is checked (Check) before a delta batch is appended to
	// the write-ahead log — a registered error simulates a failing log
	// disk (the batch is rejected cleanly) — and fires (Fire) right
	// after the fsync'd append with args (seq uint64): a panicking hook
	// simulates a crash in the logged-but-unapplied window, the exact
	// state replay must heal.
	WALAppend Point = "wal/append"
	// StreamRecover is checked (Check) when a quarantined engine
	// attempts its in-process WAL recovery — a registered error keeps
	// the quarantine sticky — and fires (Fire) after a successful
	// recovery with args (seq int, replayed int).
	StreamRecover Point = "stream/recover"
)

// registry holds the active hooks. active mirrors the total hook count
// so Enabled stays one atomic load with no lock.
var (
	mu       sync.RWMutex
	hooks    = map[Point][]func(args ...any){}
	errHooks = map[Point][]func() error{}
	active   atomic.Int64
)

// Enabled reports whether any hook is registered anywhere. It is the
// hot-path gate: callers must check it before building Fire arguments,
// so disabled points cost one atomic load and a predictable branch.
func Enabled() bool { return active.Load() != 0 }

// Inject registers a hook on a point and returns its removal function.
// Hooks on the same point run in registration order.
func Inject(p Point, h func(args ...any)) (remove func()) {
	mu.Lock()
	hooks[p] = append(hooks[p], h)
	idx := len(hooks[p]) - 1
	mu.Unlock()
	active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			if hs := hooks[p]; idx < len(hs) && hs[idx] != nil {
				hs[idx] = nil
			}
			mu.Unlock()
			active.Add(-1)
		})
	}
}

// InjectErr registers an error hook on a point, consulted by Check.
func InjectErr(p Point, h func() error) (remove func()) {
	mu.Lock()
	errHooks[p] = append(errHooks[p], h)
	idx := len(errHooks[p]) - 1
	mu.Unlock()
	active.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			if hs := errHooks[p]; idx < len(hs) && hs[idx] != nil {
				hs[idx] = nil
			}
			mu.Unlock()
			active.Add(-1)
		})
	}
}

// Fire runs the hooks of a point with the given arguments. Callers on
// hot paths must gate on Enabled first so the args slice is never built
// when nothing is listening. Panics raised by hooks propagate — that is
// the mechanism for simulating a crashing component.
func Fire(p Point, args ...any) {
	if active.Load() == 0 {
		return
	}
	mu.RLock()
	hs := hooks[p]
	mu.RUnlock()
	for _, h := range hs {
		if h != nil {
			h(args...)
		}
	}
}

// Check returns the first non-nil error produced by the point's error
// hooks, or nil. Disabled points cost one atomic load.
func Check(p Point) error {
	if active.Load() == 0 {
		return nil
	}
	mu.RLock()
	hs := errHooks[p]
	mu.RUnlock()
	for _, h := range hs {
		if h == nil {
			continue
		}
		if err := h(); err != nil {
			return err
		}
	}
	return nil
}

// Reset removes every registered hook. Tests call it (usually via
// t.Cleanup) so one test's injections never leak into the next.
func Reset() {
	mu.Lock()
	n := 0
	for p, hs := range hooks {
		for _, h := range hs {
			if h != nil {
				n++
			}
		}
		delete(hooks, p)
	}
	for p, hs := range errHooks {
		for _, h := range hs {
			if h != nil {
				n++
			}
		}
		delete(errHooks, p)
	}
	mu.Unlock()
	active.Add(int64(-n))
}

// Nth wraps a hook so it runs only on its n-th firing (1-based) and is
// inert afterwards — the building block of "corrupt exactly iteration
// k" chaos tests. The counter is atomic, so Nth hooks are safe on
// points fired from worker pools.
func Nth(n int64, h func(args ...any)) func(args ...any) {
	var count atomic.Int64
	return func(args ...any) {
		if count.Add(1) == n {
			h(args...)
		}
	}
}

// Once is Nth(1, h): the hook fires on the first hit only.
func Once(h func(args ...any)) func(args ...any) { return Nth(1, h) }
