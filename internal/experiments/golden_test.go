package experiments

// Golden-file regression tests: fixed-seed solves of shrunk DBLP and
// Movies networks, compared field by field against checked-in fixtures
// under testdata/golden/. The stationary scores are the sensitive part —
// any kernel or ordering change that moves a score by more than 1e-9
// fails here, before it can silently shift the paper's tables. Regenerate
// the fixtures after an intentional numerical change with
//
//	go test ./internal/experiments/ -run TestGolden -update
//
// and review the diff like any other code change.

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden fixtures under testdata/golden/")

const goldenScoreTol = 1e-9

// goldenLink is one entry of a stored link-type ranking.
type goldenLink struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// goldenDoc is the stored outcome of one fixed-seed solve.
type goldenDoc struct {
	Dataset    string                  `json:"dataset"`
	Accuracy   float64                 `json:"accuracy"`
	NMI        float64                 `json:"nmi"`
	Iterations int                     `json:"iterations"`
	Converged  bool                    `json:"converged"`
	Links      map[string][]goldenLink `json:"links"`  // top-k per class
	Scores     map[string][]float64    `json:"scores"` // stationary x per class
}

// goldenCase builds one deterministic solve: generate, split 30% train,
// mask, solve with Workers=1, measure against the held-out truth.
func goldenCase(t *testing.T, name string, g *hin.Graph) *goldenDoc {
	t.Helper()
	split := eval.StratifiedSplit(g, 0.3, rand.New(rand.NewSource(17)))
	masked, truth := eval.MaskLabels(g, split)
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	model, err := tmark.New(masked, cfg)
	if err != nil {
		t.Fatalf("%s: tmark.New: %v", name, err)
	}
	res := model.Run()
	pred := res.Predict()
	primary := eval.PrimaryTruth(truth)
	doc := &goldenDoc{
		Dataset:    name,
		Accuracy:   eval.Accuracy(pred, primary, split.Test),
		NMI:        eval.NMI(pred, primary, split.Test),
		Iterations: res.MaxIterations(),
		Converged:  res.Converged(),
		Links:      map[string][]goldenLink{},
		Scores:     map[string][]float64{},
	}
	const topK = 3
	for c, class := range g.Classes {
		ranked := res.LinkRanking(c)
		k := topK
		if k > len(ranked) {
			k = len(ranked)
		}
		links := make([]goldenLink, k)
		for i, rs := range ranked[:k] {
			links[i] = goldenLink{Name: g.Relations[rs.Relation].Name, Score: rs.Score}
		}
		doc.Links[class] = links
		doc.Scores[class] = res.Classes[c].X
	}
	return doc
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func compareGolden(t *testing.T, got *goldenDoc) {
	t.Helper()
	path := goldenPath(got.Dataset)
	if *updateGolden {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (run with -update to create): %v", path, err)
	}
	var want goldenDoc
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Errorf("%s: iterations/converged %d/%v, want %d/%v",
			got.Dataset, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	if math.Abs(got.Accuracy-want.Accuracy) > goldenScoreTol {
		t.Errorf("%s: accuracy %v, want %v", got.Dataset, got.Accuracy, want.Accuracy)
	}
	if math.Abs(got.NMI-want.NMI) > goldenScoreTol {
		t.Errorf("%s: NMI %v, want %v", got.Dataset, got.NMI, want.NMI)
	}
	for class, wantLinks := range want.Links {
		gotLinks := got.Links[class]
		if len(gotLinks) != len(wantLinks) {
			t.Errorf("%s/%s: %d ranked links, want %d", got.Dataset, class, len(gotLinks), len(wantLinks))
			continue
		}
		for i := range wantLinks {
			if gotLinks[i].Name != wantLinks[i].Name {
				t.Errorf("%s/%s: rank %d is %q, want %q", got.Dataset, class, i, gotLinks[i].Name, wantLinks[i].Name)
			}
			if math.Abs(gotLinks[i].Score-wantLinks[i].Score) > goldenScoreTol {
				t.Errorf("%s/%s: rank %d score %v, want %v (drift %g)",
					got.Dataset, class, i, gotLinks[i].Score, wantLinks[i].Score,
					gotLinks[i].Score-wantLinks[i].Score)
			}
		}
	}
	for class, wantX := range want.Scores {
		gotX := got.Scores[class]
		if len(gotX) != len(wantX) {
			t.Errorf("%s/%s: %d scores, want %d", got.Dataset, class, len(gotX), len(wantX))
			continue
		}
		worst, at := 0.0, -1
		for i := range wantX {
			if d := math.Abs(gotX[i] - wantX[i]); d > worst {
				worst, at = d, i
			}
		}
		if worst > goldenScoreTol {
			t.Errorf("%s/%s: score drift %g at node %d (tolerance %g)",
				got.Dataset, class, worst, at, goldenScoreTol)
		}
	}
}

// goldenDBLP is a shrunk fixed-seed DBLP network: small enough that the
// fixture stays reviewable, structured enough that the link ranking is
// meaningful (home conferences above the cross-area noise venues).
func goldenDBLP() *hin.Graph {
	cfg := dataset.DefaultDBLPConfig(5)
	cfg.AuthorsPerArea = 30
	cfg.CrossAttendance = 20
	return dataset.DBLP(cfg)
}

// goldenMovies is a shrunk fixed-seed Movies network (the sparse-link
// regime the EMR ensemble experiments stress).
func goldenMovies() *hin.Graph {
	cfg := dataset.DefaultMoviesConfig(5)
	cfg.MoviesPerGenre = 25
	cfg.Directors = 30
	return dataset.Movies(cfg)
}

// goldenRing is a shrunk fixed-seed Ring network: the slow-mixing cycle
// fixture, where the power method's contraction sits near 1−α and deep
// iteration counts make the accelerated tier's extrapolation earn its
// keep (see accel_golden_test.go).
func goldenRing() *hin.Graph {
	cfg := dataset.DefaultRingConfig(5)
	cfg.ArcLength = 30
	return dataset.Ring(cfg)
}

func TestGoldenDBLP(t *testing.T) {
	compareGolden(t, goldenCase(t, "dblp", goldenDBLP()))
}

func TestGoldenMovies(t *testing.T) {
	compareGolden(t, goldenCase(t, "movies", goldenMovies()))
}

func TestGoldenRing(t *testing.T) {
	compareGolden(t, goldenCase(t, "ring", goldenRing()))
}
