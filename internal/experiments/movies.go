package experiments

import (
	"fmt"

	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// buildMovies applies the option scale to the Movies configuration.
func buildMovies(opt Options) func(seed int64) *hin.Graph {
	return func(seed int64) *hin.Graph {
		cfg := dataset.DefaultMoviesConfig(seed)
		cfg.MoviesPerGenre = opt.scaled(cfg.MoviesPerGenre)
		cfg.Directors = opt.scaled(cfg.Directors)
		return dataset.Movies(cfg)
	}
}

// RunTable4 reproduces Table 4: node classification accuracy on Movies.
// The paper's finding — EMR wins because each director link type is too
// sparse for per-type weighting — is a property of the dataset generator.
func RunTable4(opt Options) *AccuracyTable {
	return runSweep(opt, sweepConfig{
		title:    "Table 4: node classification accuracy on Movies",
		metric:   "accuracy",
		build:    buildMovies(opt),
		methods:  methodSuite(moviesTMarkConfig()),
		metricFn: accuracyMetric,
	})
}

// RunTable5 reproduces Table 5: the top-10 directors per movie genre by
// the relative link importance z̄.
func RunTable5(opt Options) *RankingTable {
	g := buildMovies(opt)(opt.Seed)
	model, err := tmark.New(g, moviesTMarkConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: table 5: %v", err))
	}
	res := model.Run()
	table := &RankingTable{Title: "Table 5: top-10 directors per genre (T-Mark link ranking)", Classes: dataset.MovieGenres}
	for c := range dataset.MovieGenres {
		ranked := res.LinkRanking(c)
		top := 10
		if len(ranked) < top {
			top = len(ranked)
		}
		var names []string
		for _, rs := range ranked[:top] {
			names = append(names, g.Relations[rs.Relation].Name)
		}
		table.Ranked = append(table.Ranked, names)
	}
	return table
}
