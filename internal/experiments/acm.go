package experiments

import (
	"fmt"
	"io"

	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// buildACM applies the option scale to the ACM configuration.
func buildACM(opt Options) func(seed int64) *hin.Graph {
	return func(seed int64) *hin.Graph {
		cfg := dataset.DefaultACMConfig(seed)
		cfg.Publications = opt.scaled(cfg.Publications)
		cfg.Citations = opt.scaled(cfg.Citations)
		return dataset.ACM(cfg)
	}
}

// RunTable11 reproduces Table 11: multi-label classification on ACM under
// Macro-F1 for all nine methods.
func RunTable11(opt Options) *AccuracyTable {
	return runSweep(opt, sweepConfig{
		title:      "Table 11: node classification performance under Macro F1 on ACM",
		metric:     "macro-F1",
		build:      buildACM(opt),
		methods:    methodSuite(acmTMarkConfig()),
		multiShare: 0.6,
		metricFn:   macroF1Metric,
	})
}

// LinkImportance is the shape of Fig. 5: the stationary link-type
// probability per class.
type LinkImportance struct {
	Title     string
	LinkTypes []string
	Classes   []string
	Z         [][]float64 // [class][link type]
}

// Format renders one row per link type, one column per class.
func (li *LinkImportance) Format(w io.Writer) {
	fmt.Fprintln(w, li.Title)
	fmt.Fprintf(w, "%-12s", "link type")
	for _, c := range li.Classes {
		fmt.Fprintf(w, " %10.10s", c)
	}
	fmt.Fprintln(w)
	for k, name := range li.LinkTypes {
		fmt.Fprintf(w, "%-12s", name)
		for c := range li.Classes {
			fmt.Fprintf(w, " %10.3f", li.Z[c][k])
		}
		fmt.Fprintln(w)
	}
}

// MeanImportance returns the link type's importance averaged over classes.
func (li *LinkImportance) MeanImportance(name string) float64 {
	for k, n := range li.LinkTypes {
		if n != name {
			continue
		}
		var sum float64
		for c := range li.Classes {
			sum += li.Z[c][k]
		}
		return sum / float64(len(li.Classes))
	}
	return -1
}

// RunFigure5 reproduces Fig. 5: the relative importance of the six ACM
// link types for every index term.
func RunFigure5(opt Options) *LinkImportance {
	g := buildACM(opt)(opt.Seed)
	model, err := tmark.New(g, acmTMarkConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: figure 5: %v", err))
	}
	res := model.Run()
	li := &LinkImportance{
		Title:   "Figure 5: relative importance of link types on ACM (T-Mark)",
		Classes: dataset.ACMIndexTerms,
	}
	for k := range g.Relations {
		li.LinkTypes = append(li.LinkTypes, g.Relations[k].Name)
	}
	for c := range li.Classes {
		li.Z = append(li.Z, res.Classes[c].Z)
	}
	return li
}
