package experiments

import (
	"fmt"
	"io"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
	"tmark/internal/vec"
)

// WorkedExample is the result of the Section 3.2/4.3 walkthrough: the
// matricisations of the example tensor and the stationary distributions
// per class.
type WorkedExample struct {
	Unfold1, Unfold3 *vec.Matrix
	X                [][]float64 // [class][node] stationary node scores
	Z                [][]float64 // [class][relation] stationary link scores
	Predictions      []int
	Truth            []int
	Correct          bool
}

// RunWorkedExample reproduces the computational procedure of the paper's
// synthetic bibliography example.
func RunWorkedExample() *WorkedExample {
	g := dataset.Example()
	a := g.AdjacencyTensor()
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.8
	cfg.Gamma = 0.5
	model, err := tmark.New(g, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: worked example: %v", err))
	}
	res := model.Run()
	we := &WorkedExample{
		Unfold1:     a.Unfold1(),
		Unfold3:     a.Unfold3(),
		Predictions: res.Predict(),
		Truth:       dataset.ExampleTruth(),
	}
	for c := range res.Classes {
		we.X = append(we.X, res.Classes[c].X)
		we.Z = append(we.Z, res.Classes[c].Z)
	}
	we.Correct = true
	for i, p := range we.Predictions {
		if p != we.Truth[i] {
			we.Correct = false
		}
	}
	return we
}

// Format renders the walkthrough like Section 3.2/4.3.
func (we *WorkedExample) Format(w io.Writer) {
	fmt.Fprintln(w, "Worked example (Section 3.2/4.3)")
	fmt.Fprintf(w, "A(1) — 1-mode matricisation (%dx%d):\n%s", we.Unfold1.Rows, we.Unfold1.Cols, we.Unfold1)
	fmt.Fprintf(w, "A(3) — 3-mode matricisation (%dx%d):\n%s", we.Unfold3.Rows, we.Unfold3.Cols, we.Unfold3)
	fmt.Fprintln(w, "stationary node distributions [x^DM x^CV]:")
	for i := range we.X[0] {
		fmt.Fprintf(w, "  p%d  %.3f  %.3f\n", i+1, we.X[0][i], we.X[1][i])
	}
	fmt.Fprintln(w, "stationary relation distributions [z^DM z^CV]:")
	names := []string{"co-author", "citation", "same-conference"}
	for k := range we.Z[0] {
		fmt.Fprintf(w, "  %-16s %.3f  %.3f\n", names[k], we.Z[0][k], we.Z[1][k])
	}
	fmt.Fprintf(w, "predictions %v, truth %v, correct=%v\n", we.Predictions, we.Truth, we.Correct)
}
