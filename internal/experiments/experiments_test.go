package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/eval"
)

// Experiment tests check the qualitative shape the paper reports, not the
// absolute numbers: who wins, what's flat, where the crossovers fall.

func TestWorkedExample(t *testing.T) {
	we := RunWorkedExample()
	if !we.Correct {
		t.Fatalf("worked example misclassified: pred=%v truth=%v", we.Predictions, we.Truth)
	}
	if we.Unfold1.Rows != 4 || we.Unfold1.Cols != 12 {
		t.Errorf("A(1) shape %dx%d, want 4x12", we.Unfold1.Rows, we.Unfold1.Cols)
	}
	if we.Unfold3.Rows != 3 || we.Unfold3.Cols != 16 {
		t.Errorf("A(3) shape %dx%d, want 3x16", we.Unfold3.Rows, we.Unfold3.Cols)
	}
	// Section 4.3: among unlabelled nodes, p3 leans CV and p4 leans DM.
	if we.X[1][2] <= we.X[0][2] {
		t.Errorf("p3 should lean CV: DM=%v CV=%v", we.X[0][2], we.X[1][2])
	}
	if we.X[0][3] <= we.X[1][3] {
		t.Errorf("p4 should lean DM: DM=%v CV=%v", we.X[0][3], we.X[1][3])
	}
	var buf bytes.Buffer
	we.Format(&buf)
	if !strings.Contains(buf.String(), "correct=true") {
		t.Errorf("Format output missing verdict:\n%s", buf.String())
	}
}

// Table 2's shape: the top-5 link types per research area are dominated by
// that area's own conferences.
func TestTable2RanksOwnConferences(t *testing.T) {
	table := RunTable2(Quick(1))
	for c, area := range dataset.DBLPAreas {
		own := map[string]bool{}
		for _, conf := range dataset.DBLPConferences[c] {
			own[conf] = true
		}
		if hits := table.TopOverlap(c, 5, own); hits < 3 {
			t.Errorf("area %s: only %d of top-5 are own conferences: %v", area, hits, table.Ranked[c])
		}
	}
	var buf bytes.Buffer
	table.Format(&buf)
	if !strings.Contains(buf.String(), "DB:") {
		t.Errorf("Format missing class rows")
	}
}

// Table 8's shape: purity-selected links beat frequency-selected links at
// every labelled fraction, clearly so at 10%.
func TestTable8TagsetGap(t *testing.T) {
	opt := Quick(1)
	opt.Fractions = []float64{0.1, 0.5, 0.9}
	cmp := RunTable8(opt)
	for i, f := range cmp.Fractions {
		if cmp.Tagset1[i].Mean <= cmp.Tagset2[i].Mean {
			t.Errorf("fraction %v: Tagset1 %.3f not above Tagset2 %.3f", f, cmp.Tagset1[i].Mean, cmp.Tagset2[i].Mean)
		}
	}
	if gap := cmp.Tagset1[0].Mean - cmp.Tagset2[0].Mean; gap < 0.05 {
		t.Errorf("10%% gap %.3f too small", gap)
	}
	var buf bytes.Buffer
	cmp.Format(&buf)
	if !strings.Contains(buf.String(), "Tagset1") {
		t.Errorf("Format output wrong")
	}
}

// Tables 6/7: the published tag lists, ordered by the respective criterion.
func TestTables6and7(t *testing.T) {
	t6, t7 := RunTables6and7()
	if len(t6.Tags) != 41 || len(t7.Tags) != 41 {
		t.Fatalf("tag lists sized %d/%d", len(t6.Tags), len(t7.Tags))
	}
	if t7.Tags[0] != "nature" {
		t.Errorf("Table 7 must lead with the most frequent tag, got %q", t7.Tags[0])
	}
	var buf bytes.Buffer
	t6.Format(&buf)
	t7.Format(&buf)
	if !strings.Contains(buf.String(), "sky") {
		t.Errorf("Format output missing tags")
	}
}

// Tables 9/10: under Tagset1 the per-class top tags split by affinity;
// under Tagset2 the two classes' top lists overlap heavily (the paper's
// "weak discriminating effect").
func TestTables9and10(t *testing.T) {
	t9, t10 := RunTables9and10(Quick(1))
	affinity := map[string]bool{} // name → Object?
	for _, tag := range dataset.Tagset1() {
		affinity[tag.Name] = tag.Object
	}
	sceneHits := 0
	for _, name := range t9.Ranked[0][:8] {
		if !affinity[name] {
			sceneHits++
		}
	}
	objectHits := 0
	for _, name := range t9.Ranked[1][:8] {
		if affinity[name] {
			objectHits++
		}
	}
	if sceneHits < 5 || objectHits < 5 {
		t.Errorf("Tagset1 rankings not affinity-aligned: scene %d/8, object %d/8\nscene: %v\nobject: %v",
			sceneHits, objectHits, t9.Ranked[0][:8], t9.Ranked[1][:8])
	}
	// Tagset2 overlap between the classes' top-12 exceeds Tagset1's.
	overlap := func(a, b []string) int {
		set := map[string]bool{}
		for _, x := range a {
			set[x] = true
		}
		n := 0
		for _, x := range b {
			if set[x] {
				n++
			}
		}
		return n
	}
	o9 := overlap(t9.Ranked[0], t9.Ranked[1])
	o10 := overlap(t10.Ranked[0], t10.Ranked[1])
	if o10 <= o9 {
		t.Errorf("Tagset2 class rankings should overlap more than Tagset1's: %d vs %d", o10, o9)
	}
}

// Figure 5's shape: concept and conference are the most important ACM link
// types on average.
func TestFigure5ConceptConferenceLead(t *testing.T) {
	li := RunFigure5(Quick(1))
	concept := li.MeanImportance("concept")
	conference := li.MeanImportance("conference")
	for _, weaker := range []string{"year", "keyword", "author"} {
		w := li.MeanImportance(weaker)
		if concept <= w {
			t.Errorf("concept %.3f not above %s %.3f", concept, weaker, w)
		}
		if conference <= w {
			t.Errorf("conference %.3f not above %s %.3f", conference, weaker, w)
		}
	}
	var buf bytes.Buffer
	li.Format(&buf)
	if !strings.Contains(buf.String(), "concept") {
		t.Errorf("Format output wrong")
	}
}

// Figure 10's shape: T-Mark converges within ~15 iterations on all four
// datasets.
func TestFigure10Converges(t *testing.T) {
	cc := RunFigure10(Quick(1))
	if len(cc.Datasets) != 4 {
		t.Fatalf("expected 4 datasets, got %v", cc.Datasets)
	}
	if !cc.ConvergedWithin(1e-6, 15) {
		t.Errorf("convergence slower than the paper's ~10 iterations: %v", cc.Traces)
	}
	for d, trace := range cc.Traces {
		for i := 1; i < len(trace); i++ {
			if trace[i] > trace[0] {
				t.Errorf("%s: residual grew above the first iterate", cc.Datasets[d])
				break
			}
		}
	}
	var buf bytes.Buffer
	cc.Format(&buf)
	if !strings.Contains(buf.String(), "DBLP") {
		t.Errorf("Format output wrong")
	}
}

// Figures 8/9's shape: on DBLP, relation-only beats feature-only and the
// peak is interior; on NUS the curve is flat at small gamma and feature-
// heavy settings never win.
func TestFigure8GammaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	opt := Quick(2)
	sweep := RunFigure8(opt)
	first := sweep.Accuracy[0].Mean                  // gamma = 0
	last := sweep.Accuracy[len(sweep.Values)-1].Mean // gamma = 1
	best := sweep.Best()
	if first <= last {
		t.Errorf("relation-only (%.3f) should beat feature-only (%.3f) on DBLP", first, last)
	}
	if best == 0 || best == 1 {
		t.Errorf("best gamma should be interior, got %v", best)
	}
	var buf bytes.Buffer
	sweep.Format(&buf)
	if !strings.Contains(buf.String(), "gamma") {
		t.Errorf("Format output wrong")
	}
}

// The headline result (Table 3): at 10% labels T-Mark is the best method.
func TestTable3TMarkLeadsAtLowLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("full method sweep")
	}
	opt := Quick(1)
	opt.Fractions = []float64{0.1}
	opt.Trials = 2
	table := RunTable3(opt)
	tm := table.Mean(0.1, "T-Mark")
	for _, method := range table.Methods {
		if method == "T-Mark" {
			continue
		}
		if m := table.Mean(0.1, method); m > tm+0.02 {
			t.Errorf("%s (%.3f) beats T-Mark (%.3f) at 10%% labels", method, m, tm)
		}
	}
	var buf bytes.Buffer
	table.Format(&buf)
	if !strings.Contains(buf.String(), "T-Mark") {
		t.Errorf("Format output wrong")
	}
}

// Table 11's shape: T-Mark clearly beats the link-type-agnostic baselines
// (wvRN+RL, EMR, ICA) at 10% labels under Macro-F1.
func TestTable11TMarkBeatsAgnosticBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full method sweep")
	}
	opt := Quick(1)
	opt.Fractions = []float64{0.1}
	opt.Trials = 2
	table := RunTable11(opt)
	tm := table.Mean(0.1, "T-Mark")
	for _, method := range []string{"wvRN+RL", "EMR", "ICA"} {
		if m := table.Mean(0.1, method); m >= tm {
			t.Errorf("%s (%.3f) not below T-Mark (%.3f) on ACM at 10%%", method, m, tm)
		}
	}
}

// Table 4's shape: Movies stays hard for everyone (no method saturates)
// and the ensemble EMR sits in the top group, per the paper's finding that
// sparse per-type links favour pooling.
func TestTable4MoviesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full method sweep")
	}
	opt := Quick(1)
	opt.Fractions = []float64{0.5}
	opt.Trials = 2
	table := RunTable4(opt)
	best, bestMethod := -1.0, ""
	for _, method := range table.Methods {
		if m := table.Mean(0.5, method); m > best {
			best, bestMethod = m, method
		}
	}
	if best > 0.85 {
		t.Errorf("Movies should stay hard; %s reached %.3f", bestMethod, best)
	}
	emr := table.Mean(0.5, "EMR")
	if emr < best-0.15 {
		t.Errorf("EMR (%.3f) should sit in the top group (best %.3f)", emr, best)
	}
}

func TestOptionsScaled(t *testing.T) {
	opt := Options{Scale: 0.5}
	if got := opt.scaled(100); got != 50 {
		t.Errorf("scaled(100) = %d, want 50", got)
	}
	opt.Scale = 0
	if got := opt.scaled(100); got != 100 {
		t.Errorf("zero scale should default to 1, got %d", got)
	}
	opt.Scale = 0.0001
	if got := opt.scaled(100); got != 10 {
		t.Errorf("scaled floor = %d, want 10", got)
	}
}

func TestAccuracyTableCellLookup(t *testing.T) {
	table := &AccuracyTable{
		Methods:   []string{"A"},
		Fractions: []float64{0.1},
		Cells:     [][]eval.TrialStats{{{Mean: 0.5}}},
	}
	if got := table.Mean(0.1, "A"); got != 0.5 {
		t.Errorf("Mean = %v, want 0.5", got)
	}
	if got := table.Mean(0.2, "A"); got != -1 {
		t.Errorf("missing fraction should give -1, got %v", got)
	}
	if got := table.Mean(0.1, "B"); got != -1 {
		t.Errorf("missing method should give -1, got %v", got)
	}
}
