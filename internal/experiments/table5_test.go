package experiments

import (
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/hin"
)

// Table 5's shape: each genre's top-10 directors are dominated by
// directors whose (generated) preferred genre matches, and the five
// rankings barely overlap — the paper's "most directors prefer one
// specific type of movie".
func TestTable5DirectorsAlignWithGenres(t *testing.T) {
	opt := Quick(1)
	table := RunTable5(opt)
	g := buildMovies(opt)(opt.Seed)
	nameToRel := map[string]int{}
	for k := range g.Relations {
		nameToRel[g.Relations[k].Name] = k
	}
	var fracSum float64
	for c, genre := range dataset.MovieGenres {
		matches := 0
		considered := 0
		for _, name := range table.Ranked[c] {
			k, ok := nameToRel[name]
			if !ok {
				t.Fatalf("ranked director %q not a relation", name)
			}
			if !directorHasFilms(g, k) {
				continue // empty filmographies rank arbitrarily
			}
			considered++
			if dataset.MovieDirectorPreferredGenre(k) == c {
				matches++
			}
		}
		if considered == 0 {
			t.Fatalf("genre %s: no ranked directors with films", genre)
		}
		// 1/5 would be chance; tiny per-director filmographies make single
		// genres noisy, so require above-chance per genre and a clear
		// aggregate signal below.
		frac := float64(matches) / float64(considered)
		fracSum += frac
		if frac < 0.25 {
			t.Errorf("genre %s: only %.0f%% of top directors prefer it (%d/%d)",
				genre, 100*frac, matches, considered)
		}
	}
	if mean := fracSum / float64(len(dataset.MovieGenres)); mean < 0.45 {
		t.Errorf("mean genre alignment %.2f, want >= 0.45 (chance 0.20)", mean)
	}
	// Distinct rankings: pairwise overlap of top-10 lists stays small.
	for a := 0; a < len(table.Ranked); a++ {
		for b := a + 1; b < len(table.Ranked); b++ {
			shared := 0
			set := map[string]bool{}
			for _, name := range table.Ranked[a] {
				set[name] = true
			}
			for _, name := range table.Ranked[b] {
				if set[name] {
					shared++
				}
			}
			if shared > 4 {
				t.Errorf("genres %d and %d share %d of their top-10 directors", a, b, shared)
			}
		}
	}
}

func directorHasFilms(g *hin.Graph, k int) bool {
	return len(g.Relations[k].Edges) > 0
}
