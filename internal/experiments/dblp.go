package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"tmark/internal/baselines"
	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// buildDBLP applies the option scale to the default DBLP configuration.
func buildDBLP(opt Options) func(seed int64) *hin.Graph {
	return func(seed int64) *hin.Graph {
		cfg := dataset.DefaultDBLPConfig(seed)
		cfg.AuthorsPerArea = opt.scaled(cfg.AuthorsPerArea)
		return dataset.DBLP(cfg)
	}
}

// RunTable2 reproduces Table 2: the top-5 conferences per research area by
// the relative link importance z̄. T-Mark is trained on a split with most
// labels visible (the paper ranks links on the full network).
func RunTable2(opt Options) *RankingTable {
	g := buildDBLP(opt)(opt.Seed)
	model, err := tmark.New(g, dblpTMarkConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: table 2: %v", err))
	}
	res := model.Run()
	table := &RankingTable{Title: "Table 2: top-5 conferences per research area (T-Mark link ranking)", Classes: dataset.DBLPAreas}
	for c := range dataset.DBLPAreas {
		var names []string
		for _, rs := range res.LinkRanking(c)[:5] {
			names = append(names, g.Relations[rs.Relation].Name)
		}
		table.Ranked = append(table.Ranked, names)
	}
	return table
}

// RunTable3 reproduces Table 3: node classification accuracy on DBLP for
// all nine methods across labelled fractions.
func RunTable3(opt Options) *AccuracyTable {
	return runSweep(opt, sweepConfig{
		title:    "Table 3: node classification accuracy on DBLP",
		metric:   "accuracy",
		build:    buildDBLP(opt),
		methods:  methodSuite(dblpTMarkConfig()),
		metricFn: accuracyMetric,
	})
}

// ParamSweep is the shape of Figures 6-9: metric versus one hyper-parameter.
type ParamSweep struct {
	Title     string
	Parameter string
	Values    []float64
	Accuracy  []eval.TrialStats
}

// Format renders one (value, accuracy) row per sweep point.
func (p *ParamSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n%-8s accuracy\n", p.Title, p.Parameter)
	for i, v := range p.Values {
		fmt.Fprintf(w, "%-8.2f %s\n", v, p.Accuracy[i].String())
	}
}

// Best returns the parameter value with the highest mean accuracy.
func (p *ParamSweep) Best() float64 {
	best, arg := -1.0, 0.0
	for i, s := range p.Accuracy {
		if s.Mean > best {
			best, arg = s.Mean, p.Values[i]
		}
	}
	return arg
}

// runParamSweep evaluates T-Mark accuracy while varying one parameter.
func runParamSweep(opt Options, title, param string, values []float64,
	build func(seed int64) *hin.Graph, base tmark.Config, apply func(*tmark.Config, float64)) *ParamSweep {
	sweep := &ParamSweep{Title: title, Parameter: param, Values: values}
	full := build(opt.Seed)
	const fraction = 0.1
	for _, v := range values {
		cfg := base
		apply(&cfg, v)
		method := &baselines.TMark{Config: cfg, ICA: true}
		stats := eval.RunTrials(opt.Trials, opt.Seed*17+int64(v*1000), func(trial int, rng *rand.Rand) float64 {
			split := eval.StratifiedSplit(full, fraction, rng)
			masked, truth := eval.MaskLabels(full, split)
			scores, err := method.Scores(masked, rng)
			if err != nil {
				panic(fmt.Sprintf("experiments: %s: %v", title, err))
			}
			return eval.Accuracy(baselines.Predict(scores), eval.PrimaryTruth(truth), split.Test)
		})
		sweep.Accuracy = append(sweep.Accuracy, stats)
	}
	return sweep
}

// AlphaValues is the α grid of Figures 6 and 7.
var AlphaValues = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}

// GammaValues is the γ grid of Figures 8 and 9.
var GammaValues = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// RunFigure6 reproduces Fig. 6: accuracy vs α on DBLP.
func RunFigure6(opt Options) *ParamSweep {
	return runParamSweep(opt, "Figure 6: T-Mark accuracy vs alpha on DBLP", "alpha", AlphaValues,
		buildDBLP(opt), dblpTMarkConfig(), func(c *tmark.Config, v float64) { c.Alpha = v })
}

// RunFigure8 reproduces Fig. 8: accuracy vs γ on DBLP.
func RunFigure8(opt Options) *ParamSweep {
	return runParamSweep(opt, "Figure 8: T-Mark accuracy vs gamma on DBLP", "gamma", GammaValues,
		buildDBLP(opt), dblpTMarkConfig(), func(c *tmark.Config, v float64) { c.Gamma = v })
}
