package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"tmark/internal/baselines"
	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// buildNUS applies the option scale to the NUS configuration for the given
// tag set.
func buildNUS(opt Options, tags []dataset.Tag) func(seed int64) *hin.Graph {
	return func(seed int64) *hin.Graph {
		cfg := dataset.DefaultNUSConfig(seed)
		cfg.Images = opt.scaled(cfg.Images)
		return dataset.NUS(cfg, tags)
	}
}

// TagListTable is the shape of Tables 6 and 7: the 41 selected tag names.
type TagListTable struct {
	Title string
	Tags  []string
}

// Format prints four tags per row, like the paper.
func (t *TagListTable) Format(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	for i := 0; i < len(t.Tags); i += 4 {
		end := i + 4
		if end > len(t.Tags) {
			end = len(t.Tags)
		}
		fmt.Fprintf(w, "  %2d-%2d:", i+1, end)
		for _, name := range t.Tags[i:end] {
			fmt.Fprintf(w, " %-14s", name)
		}
		fmt.Fprintln(w)
	}
}

// RunTables6and7 reproduces Tables 6 and 7: the purity-selected Tagset1
// (ranked by the probability of connecting same-class images) and the
// frequency-selected Tagset2.
func RunTables6and7() (*TagListTable, *TagListTable) {
	t1 := dataset.Tagset1()
	sort.SliceStable(t1, func(a, b int) bool {
		if t1[a].Purity != t1[b].Purity {
			return t1[a].Purity > t1[b].Purity
		}
		return t1[a].Freq > t1[b].Freq
	})
	t2 := dataset.Tagset2()
	sort.SliceStable(t2, func(a, b int) bool { return t2[a].Freq > t2[b].Freq })
	mk := func(title string, tags []dataset.Tag) *TagListTable {
		out := &TagListTable{Title: title}
		for _, tag := range tags {
			out.Tags = append(out.Tags, tag.Name)
		}
		return out
	}
	return mk("Table 6: Tagset1 (ranked by same-class connection probability)", t1),
		mk("Table 7: Tagset2 (ranked by frequency of appearance)", t2)
}

// TagsetComparison is the shape of Table 8: T-Mark accuracy per labelled
// fraction on the two NUS networks.
type TagsetComparison struct {
	Fractions []float64
	Tagset1   []eval.TrialStats
	Tagset2   []eval.TrialStats
}

// Format renders the two accuracy columns.
func (t *TagsetComparison) Format(w io.Writer) {
	fmt.Fprintln(w, "Table 8: T-Mark accuracy on NUS with Tagset1 vs Tagset2")
	fmt.Fprintf(w, "%-6s %12s %12s\n", "frac", "Tagset1", "Tagset2")
	for i, f := range t.Fractions {
		fmt.Fprintf(w, "%-6.1f %12s %12s\n", f, t.Tagset1[i].String(), t.Tagset2[i].String())
	}
}

// RunTable8 reproduces Table 8: the link-selection experiment. The same
// images are classified twice, once connected by the 41 purest tags and
// once by the 41 most frequent tags.
func RunTable8(opt Options) *TagsetComparison {
	out := &TagsetComparison{Fractions: opt.Fractions}
	for which, tags := range [][]dataset.Tag{dataset.Tagset1(), dataset.Tagset2()} {
		full := buildNUS(opt, tags)(opt.Seed)
		method := &baselines.TMark{Config: nusTMarkConfig(), ICA: true}
		for _, fraction := range opt.Fractions {
			fractionCopy := fraction
			stats := eval.RunTrials(opt.Trials, opt.Seed*13+int64(fractionCopy*1000), func(trial int, rng *rand.Rand) float64 {
				split := eval.StratifiedSplit(full, fractionCopy, rng)
				masked, truth := eval.MaskLabels(full, split)
				scores, err := method.Scores(masked, rng)
				if err != nil {
					panic(fmt.Sprintf("experiments: table 8: %v", err))
				}
				return eval.Accuracy(baselines.Predict(scores), eval.PrimaryTruth(truth), split.Test)
			})
			if which == 0 {
				out.Tagset1 = append(out.Tagset1, stats)
			} else {
				out.Tagset2 = append(out.Tagset2, stats)
			}
		}
	}
	return out
}

// RunTables9and10 reproduces Tables 9 and 10: the top-12 tags per class
// ranked by T-Mark's link importance, for each tag set.
func RunTables9and10(opt Options) (*RankingTable, *RankingTable) {
	run := func(title string, tags []dataset.Tag) *RankingTable {
		g := buildNUS(opt, tags)(opt.Seed)
		model, err := tmark.New(g, nusTMarkConfig())
		if err != nil {
			panic(fmt.Sprintf("experiments: tables 9/10: %v", err))
		}
		res := model.Run()
		table := &RankingTable{Title: title, Classes: dataset.NUSClasses}
		for c := range dataset.NUSClasses {
			var names []string
			for _, rs := range res.LinkRanking(c)[:12] {
				names = append(names, g.Relations[rs.Relation].Name)
			}
			table.Ranked = append(table.Ranked, names)
		}
		return table
	}
	return run("Table 9: top-12 Tagset1 tags per class (T-Mark)", dataset.Tagset1()),
		run("Table 10: top-12 Tagset2 tags per class (T-Mark)", dataset.Tagset2())
}

// RunFigure7 reproduces Fig. 7: accuracy vs α on NUS (Tagset1).
func RunFigure7(opt Options) *ParamSweep {
	return runParamSweep(opt, "Figure 7: T-Mark accuracy vs alpha on NUS", "alpha", AlphaValues,
		buildNUS(opt, dataset.Tagset1()), nusTMarkConfig(), func(c *tmark.Config, v float64) { c.Alpha = v })
}

// RunFigure9 reproduces Fig. 9: accuracy vs γ on NUS (Tagset1).
func RunFigure9(opt Options) *ParamSweep {
	return runParamSweep(opt, "Figure 9: T-Mark accuracy vs gamma on NUS", "gamma", GammaValues,
		buildNUS(opt, dataset.Tagset1()), nusTMarkConfig(), func(c *tmark.Config, v float64) { c.Gamma = v })
}
