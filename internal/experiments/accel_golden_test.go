package experiments

// Quality-tier equivalence on the golden datasets. The accelerated tier
// must reproduce the exact tier's predictions node for node while never
// spending more committed iterations (and strictly fewer on a
// slow-mixing configuration); the linearized fast tier must stay inside
// its documented accuracy envelope against the exact solve.

import (
	"context"
	"math/rand"
	"testing"

	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// The documented accuracy/NMI budget of the linearized tier on the
// golden datasets: freezing z̄ at uniform and dropping the ICA reseed
// may cost at most this much held-out accuracy (resp. NMI) against the
// exact solve. NMI gets the wider budget because it punishes the same
// handful of flipped predictions quadratically: measured on the golden
// fixtures the fast tier gives up ≈0.05 accuracy and ≈0.11 NMI on DBLP
// and is at parity on Movies, so these envelopes guard the
// approximation from quietly widening past what EXPERIMENTS.md states.
const (
	fastAccEnvelope = 0.05
	fastNMIEnvelope = 0.15
)

// goldenTierSetup mirrors goldenCase's deterministic split and masking.
func goldenTierSetup(t *testing.T, name string, g *hin.Graph, cfg tmark.Config) (*tmark.Model, eval.Split, []int) {
	t.Helper()
	split := eval.StratifiedSplit(g, 0.3, rand.New(rand.NewSource(17)))
	masked, truth := eval.MaskLabels(g, split)
	model, err := tmark.New(masked, cfg)
	if err != nil {
		t.Fatalf("%s: tmark.New: %v", name, err)
	}
	return model, split, eval.PrimaryTruth(truth)
}

func testAccelGoldenEquivalence(t *testing.T, name string, g *hin.Graph) {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	model, _, _ := goldenTierSetup(t, name, g, cfg)

	exact := model.Run()
	var st tmark.RunStats
	accel := model.RunContext(context.Background(), tmark.WithAcceleration(true), tmark.WithStats(&st))

	if accel.Converged() != exact.Converged() {
		t.Fatalf("%s: converged %v, exact %v", name, accel.Converged(), exact.Converged())
	}
	for c := range exact.Classes {
		if accel.Classes[c].Iterations > exact.Classes[c].Iterations {
			t.Errorf("%s: class %d accelerated took %d iterations, exact %d",
				name, c, accel.Classes[c].Iterations, exact.Classes[c].Iterations)
		}
	}
	ep, ap := exact.Predict(), accel.Predict()
	for i := range ep {
		if ap[i] != ep[i] {
			t.Fatalf("%s: node %d predicted %d accelerated, %d exact", name, i, ap[i], ep[i])
		}
	}
	t.Logf("%s: exact %d iterations, accelerated %d (%d proposed, %d accepted)",
		name, exact.MaxIterations(), accel.MaxIterations(), st.AccelProposed, st.AccelAccepted)
}

func TestAccelGoldenDBLP(t *testing.T) {
	testAccelGoldenEquivalence(t, "dblp", goldenDBLP())
}

func TestAccelGoldenMovies(t *testing.T) {
	testAccelGoldenEquivalence(t, "movies", goldenMovies())
}

func TestAccelGoldenRing(t *testing.T) {
	testAccelGoldenEquivalence(t, "ring", goldenRing())
}

// On the slow-mixing golden Ring network under a deep-iteration
// configuration (small restart weight, so the contraction sits near
// 1−α and the exact solve takes hundreds of iterations) the accelerated
// tier must cut the committed iteration count by at least 2× — the
// headline reduction the BENCH_6 archive tracks — while keeping the
// exact predictions. The expander-like DBLP/Movies networks converge in
// ~10 iterations under any configuration, which leaves extrapolation no
// tail to jump down; the cycle topology is precisely the regime the
// accelerated tier exists for.
func TestAccelGoldenSlowMixingTwofold(t *testing.T) {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.Alpha = 0.05
	cfg.Gamma = 0
	cfg.ICAUpdate = false
	cfg.Epsilon = 1e-9
	cfg.MaxIterations = 2000
	model, _, _ := goldenTierSetup(t, "ring", goldenRing(), cfg)

	exact := model.Run()
	accel := model.RunContext(context.Background(), tmark.WithAcceleration(true))
	if !exact.Converged() || !accel.Converged() {
		t.Fatalf("converged: exact %v, accel %v", exact.Converged(), accel.Converged())
	}
	ei, ai := exact.MaxIterations(), accel.MaxIterations()
	if ai*2 > ei {
		t.Errorf("accelerated %d iterations vs exact %d: less than the 2x reduction", ai, ei)
	}
	ep, ap := exact.Predict(), accel.Predict()
	for i := range ep {
		if ap[i] != ep[i] {
			t.Fatalf("node %d predicted %d accelerated, %d exact", i, ap[i], ep[i])
		}
	}
	t.Logf("slow-mixing ring: exact %d iterations, accelerated %d (%.1fx)", ei, ai, float64(ei)/float64(ai))
}

func testFastGoldenEnvelope(t *testing.T, name string, g *hin.Graph) {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	model, split, primary := goldenTierSetup(t, name, g, cfg)

	exact := model.Run()
	fast := model.RunContext(context.Background(), tmark.WithApproximate(true))
	for c := range fast.Classes {
		if !fast.Classes[c].Converged {
			t.Fatalf("%s: fast class %d did not converge", name, c)
		}
	}
	eAcc := eval.Accuracy(exact.Predict(), primary, split.Test)
	fAcc := eval.Accuracy(fast.Predict(), primary, split.Test)
	eNMI := eval.NMI(exact.Predict(), primary, split.Test)
	fNMI := eval.NMI(fast.Predict(), primary, split.Test)
	if fAcc < eAcc-fastAccEnvelope {
		t.Errorf("%s: fast accuracy %.4f below exact %.4f - %.2f envelope", name, fAcc, eAcc, fastAccEnvelope)
	}
	if fNMI < eNMI-fastNMIEnvelope {
		t.Errorf("%s: fast NMI %.4f below exact %.4f - %.2f envelope", name, fNMI, eNMI, fastNMIEnvelope)
	}
	t.Logf("%s: accuracy exact %.4f fast %.4f, NMI exact %.4f fast %.4f, fast iterations %d",
		name, eAcc, fAcc, eNMI, fNMI, fast.MaxIterations())
}

func TestFastGoldenDBLPEnvelope(t *testing.T) {
	testFastGoldenEnvelope(t, "dblp", goldenDBLP())
}

func TestFastGoldenMoviesEnvelope(t *testing.T) {
	testFastGoldenEnvelope(t, "movies", goldenMovies())
}
