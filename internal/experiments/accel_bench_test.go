package experiments

// The quality-tier benchmark behind BENCH_6.json (make bench-accel):
// one solve per tier on the golden networks, reporting wall time and the
// committed iteration count per solve. The headline row is the slow-
// mixing Ring network, where the extrapolated tier converges in ≥2×
// fewer iterations with identical predictions (asserted by
// TestAccelGoldenSlowMixingTwofold); the expander-like DBLP network
// bounds the other end — barely a dozen iterations to cut, so the tiers
// should be near parity there.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// slowMixConfig is the deep-iteration configuration the twofold
// assertion uses: small restart weight, no feature channel, no ICA.
func slowMixConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.Alpha = 0.05
	cfg.Gamma = 0
	cfg.ICAUpdate = false
	cfg.Epsilon = 1e-9
	cfg.MaxIterations = 2000
	return cfg
}

func BenchmarkAccelTiers(b *testing.B) {
	defaultCfg := tmark.DefaultConfig()
	defaultCfg.Workers = 1
	cases := []struct {
		name  string
		graph *hin.Graph
		cfg   tmark.Config
	}{
		{"ring-slowmix", goldenRing(), slowMixConfig()},
		{"dblp-default", goldenDBLP(), defaultCfg},
	}
	tiers := []struct {
		name string
		opts []tmark.RunOption
	}{
		{"exact", nil},
		{"accelerated", []tmark.RunOption{tmark.WithAcceleration(true)}},
		{"fast", []tmark.RunOption{tmark.WithApproximate(true)}},
	}
	for _, c := range cases {
		split := eval.StratifiedSplit(c.graph, 0.3, rand.New(rand.NewSource(17)))
		masked, _ := eval.MaskLabels(c.graph, split)
		model, err := tmark.New(masked, c.cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, tier := range tiers {
			b.Run(fmt.Sprintf("%s/%s", c.name, tier.name), func(b *testing.B) {
				b.ReportAllocs()
				var iters int64
				for i := 0; i < b.N; i++ {
					res := model.RunContext(context.Background(), tier.opts...)
					if !res.Converged() {
						b.Fatal("did not converge")
					}
					iters += int64(res.MaxIterations())
				}
				b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
			})
		}
	}
}
