package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"tmark/internal/baselines"
	"tmark/internal/eval"
	"tmark/internal/hin"
)

// AccuracyTable is the common shape of Tables 3, 4 and 11: methods ×
// labelled fractions, each cell aggregated over trials.
type AccuracyTable struct {
	Title     string
	Metric    string // "accuracy" or "macro-F1"
	Methods   []string
	Fractions []float64
	Cells     [][]eval.TrialStats // [fraction][method]
}

// Cell returns the stats for the given fraction and method name.
func (t *AccuracyTable) Cell(fraction float64, method string) (eval.TrialStats, bool) {
	fi, mi := -1, -1
	for i, f := range t.Fractions {
		if f == fraction {
			fi = i
		}
	}
	for i, m := range t.Methods {
		if m == method {
			mi = i
		}
	}
	if fi < 0 || mi < 0 {
		return eval.TrialStats{}, false
	}
	return t.Cells[fi][mi], true
}

// Mean returns the mean metric for (fraction, method), or -1 when absent.
func (t *AccuracyTable) Mean(fraction float64, method string) float64 {
	s, ok := t.Cell(fraction, method)
	if !ok {
		return -1
	}
	return s.Mean
}

// Format renders the table in the paper's layout.
func (t *AccuracyTable) Format(w io.Writer) {
	fmt.Fprintf(w, "%s (%s, mean±std)\n", t.Title, t.Metric)
	fmt.Fprintf(w, "%-6s", "frac")
	for _, m := range t.Methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for fi, f := range t.Fractions {
		fmt.Fprintf(w, "%-6.1f", f)
		for mi := range t.Methods {
			fmt.Fprintf(w, " %12s", t.Cells[fi][mi].String())
		}
		fmt.Fprintln(w)
	}
}

// metricFunc evaluates one method's scores on the test split.
type metricFunc func(g *hin.Graph, scores [][]int, truth [][]int, test []bool, q int) float64

// accuracyMetric grades single-label predictions (Tables 3, 4, 8).
func accuracyMetric(_ *hin.Graph, pred [][]int, truth [][]int, test []bool, _ int) float64 {
	return eval.Accuracy(firstOf(pred), eval.PrimaryTruth(truth), test)
}

// macroF1Metric grades multi-label predictions (Table 11).
func macroF1Metric(_ *hin.Graph, pred [][]int, truth [][]int, test []bool, q int) float64 {
	return eval.MacroF1(pred, truth, q, test)
}

func firstOf(labels [][]int) []int {
	out := make([]int, len(labels))
	for i, ls := range labels {
		if len(ls) == 0 {
			out[i] = -1
		} else {
			out[i] = ls[0]
		}
	}
	return out
}

// sweepConfig describes one accuracy-table experiment.
type sweepConfig struct {
	title   string
	metric  string
	build   func(seed int64) *hin.Graph
	methods []baselines.Method
	// multiShare > 0 switches to multi-label prediction with that share.
	multiShare float64
	metricFn   metricFunc
}

// runSweep executes the shared protocol of Tables 3/4/11: for every
// labelled fraction, for Trials random stratified splits, mask the labels,
// run every method, grade on the test nodes.
func runSweep(opt Options, sc sweepConfig) *AccuracyTable {
	table := &AccuracyTable{
		Title:     sc.title,
		Metric:    sc.metric,
		Fractions: opt.Fractions,
	}
	for _, m := range sc.methods {
		table.Methods = append(table.Methods, m.Name())
	}
	full := sc.build(opt.Seed)
	for _, fraction := range opt.Fractions {
		row := make([]eval.TrialStats, len(sc.methods))
		for mi, method := range sc.methods {
			method := method
			fractionCopy := fraction
			row[mi] = eval.RunTrials(opt.Trials, opt.Seed*31+int64(fractionCopy*1000), func(trial int, rng *rand.Rand) float64 {
				split := eval.StratifiedSplit(full, fractionCopy, rng)
				masked, truth := eval.MaskLabels(full, split)
				scores, err := method.Scores(masked, rng)
				if err != nil {
					panic(fmt.Sprintf("experiments: %s on %s: %v", method.Name(), sc.title, err))
				}
				var pred [][]int
				if sc.multiShare > 0 {
					pred = baselines.PredictMulti(scores, sc.multiShare)
				} else {
					pred = singletons(baselines.Predict(scores))
				}
				return sc.metricFn(masked, pred, truth, split.Test, full.Q())
			})
		}
		table.Cells = append(table.Cells, row)
	}
	return table
}

func singletons(pred []int) [][]int {
	out := make([][]int, len(pred))
	for i, c := range pred {
		out[i] = []int{c}
	}
	return out
}

// RankingTable is the shape of Tables 2, 5, 9 and 10: per class, an
// ordered list of link-type names.
type RankingTable struct {
	Title   string
	Classes []string
	Ranked  [][]string // [class][rank] → name
}

// Format renders one ranked column per class.
func (t *RankingTable) Format(w io.Writer) {
	fmt.Fprintln(w, t.Title)
	for c, class := range t.Classes {
		fmt.Fprintf(w, "  %-14s %s\n", class+":", strings.Join(t.Ranked[c], ", "))
	}
}

// TopOverlap counts how many of the first k entries of the ranking for
// class c appear in the expected set; rankings shorter than k count what
// they have.
func (t *RankingTable) TopOverlap(c, k int, expected map[string]bool) int {
	hits := 0
	for i, name := range t.Ranked[c] {
		if i >= k {
			break
		}
		if expected[name] {
			hits++
		}
	}
	return hits
}
