// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic datasets. Each Run* function returns
// a typed result plus a Format method rendering the same rows/series the
// paper reports, so `cmd/experiments` and the root benchmarks share one
// implementation.
package experiments

import (
	"tmark/internal/tmark"
)

// Options sizes an experiment run. The zero value is not usable; start
// from Quick (CI-scale) or Full (paper-scale protocol: all nine labelled
// fractions, 10 trials).
type Options struct {
	// Seed drives every dataset generator and split.
	Seed int64
	// Trials is the number of random splits per labelled fraction.
	Trials int
	// Fractions are the labelled-data fractions to sweep.
	Fractions []float64
	// Scale multiplies dataset sizes (1 = the defaults in package dataset).
	Scale float64
}

// Quick returns the options used by tests and benchmarks: small but large
// enough that every qualitative shape of the paper holds.
func Quick(seed int64) Options {
	return Options{
		Seed:      seed,
		Trials:    2,
		Fractions: []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Scale:     0.6,
	}
}

// Full returns the paper's protocol: fractions 10%..90% and 10 trials.
func Full(seed int64) Options {
	return Options{
		Seed:      seed,
		Trials:    10,
		Fractions: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Scale:     1,
	}
}

func (o Options) scaled(base int) int {
	s := o.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < 10 {
		n = 10
	}
	return n
}

// dblpTMarkConfig returns the paper's DBLP hyper-parameters (α=0.8, γ=0.6).
func dblpTMarkConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.8
	cfg.Gamma = 0.6
	return cfg
}

// moviesTMarkConfig returns the Movies parameters (α=0.9).
func moviesTMarkConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9
	cfg.Gamma = 0.6
	return cfg
}

// nusTMarkConfig returns the NUS parameters (α=0.9, γ=0.4).
func nusTMarkConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9
	cfg.Gamma = 0.4
	return cfg
}

// acmTMarkConfig returns the ACM parameters (α=0.9).
func acmTMarkConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Alpha = 0.9
	cfg.Gamma = 0.6
	return cfg
}
