package experiments

import (
	"strings"
	"testing"
)

func TestSVGRenderers(t *testing.T) {
	opt := Quick(1)
	opt.Trials = 1
	opt.Fractions = []float64{0.1, 0.5}

	cases := map[string]interface{ SVG() (string, error) }{
		"fig10":  RunFigure10(opt),
		"fig5":   RunFigure5(opt),
		"table8": RunTable8(opt),
	}
	for name, artifact := range cases {
		svg, err := artifact.SVG()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: output not an SVG document", name)
		}
		if strings.Contains(svg, "NaN") {
			t.Errorf("%s: NaN coordinates in SVG", name)
		}
	}
}

func TestAccuracyTableSVG(t *testing.T) {
	opt := Quick(1)
	opt.Trials = 1
	opt.Fractions = []float64{0.1}
	table := RunAblation(opt)
	svg, err := table.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range table.Methods {
		if !strings.Contains(svg, method) {
			t.Errorf("SVG legend missing %q", method)
		}
	}
}

// The figure runners must return one stats entry per grid value with the
// values themselves intact.
func TestFigureRunnersPlumbing(t *testing.T) {
	opt := Quick(3)
	opt.Trials = 1
	for name, sweep := range map[string]*ParamSweep{
		"fig6": RunFigure6(opt),
		"fig7": RunFigure7(opt),
	} {
		wantValues := AlphaValues
		if len(sweep.Values) != len(wantValues) {
			t.Fatalf("%s: %d values, want %d", name, len(sweep.Values), len(wantValues))
		}
		for i, v := range wantValues {
			if sweep.Values[i] != v {
				t.Errorf("%s: value[%d] = %v, want %v", name, i, sweep.Values[i], v)
			}
			s := sweep.Accuracy[i]
			if s.Mean <= 0 || s.Mean > 1 {
				t.Errorf("%s: accuracy[%d] = %v out of (0,1]", name, i, s.Mean)
			}
		}
		if best := sweep.Best(); best < wantValues[0] || best > wantValues[len(wantValues)-1] {
			t.Errorf("%s: Best() = %v outside the grid", name, best)
		}
	}
}
