package experiments

import (
	"tmark/internal/eval"
	"tmark/internal/plot"
)

// SVG renders the sweep as a line chart (Figs. 6–9).
func (p *ParamSweep) SVG() (string, error) {
	means := make([]float64, len(p.Values))
	for i, s := range p.Accuracy {
		means[i] = s.Mean
	}
	chart := &plot.Line{
		Title:  p.Title,
		XLabel: p.Parameter,
		YLabel: "accuracy",
		Series: []plot.Series{{Name: "T-Mark", X: p.Values, Y: means}},
	}
	return chart.SVG()
}

// SVG renders the per-dataset convergence residuals on a log axis
// (Fig. 10).
func (cc *ConvergenceCurves) SVG() (string, error) {
	chart := &plot.Line{
		Title:  "Convergence of T-Mark",
		XLabel: "iteration",
		YLabel: "rho (log10)",
		LogY:   true,
	}
	for d, name := range cc.Datasets {
		xs := make([]float64, len(cc.Traces[d]))
		ys := make([]float64, len(cc.Traces[d]))
		for i, rho := range cc.Traces[d] {
			xs[i] = float64(i + 1)
			// Converged residuals can underflow to zero; clamp for the log
			// axis without distorting the curve's visible part.
			if rho <= 0 {
				rho = 1e-16
			}
			ys[i] = rho
		}
		chart.Series = append(chart.Series, plot.Series{Name: name, X: xs, Y: ys})
	}
	return chart.SVG()
}

// SVG renders the link-type importance as grouped bars (Fig. 5).
func (li *LinkImportance) SVG() (string, error) {
	chart := &plot.Bars{
		Title:  li.Title,
		YLabel: "stationary probability",
		Groups: li.LinkTypes,
		Labels: li.Classes,
	}
	for k := range li.LinkTypes {
		row := make([]float64, len(li.Classes))
		for c := range li.Classes {
			row[c] = li.Z[c][k]
		}
		chart.Values = append(chart.Values, row)
	}
	return chart.SVG()
}

// SVG renders the Tagset1/Tagset2 accuracy comparison (Table 8 as a
// figure).
func (t *TagsetComparison) SVG() (string, error) {
	mk := func(stats []eval.TrialStats) []float64 {
		out := make([]float64, len(stats))
		for i, s := range stats {
			out[i] = s.Mean
		}
		return out
	}
	chart := &plot.Line{
		Title:  "NUS accuracy: Tagset1 vs Tagset2",
		XLabel: "labelled fraction",
		YLabel: "accuracy",
		Series: []plot.Series{
			{Name: "Tagset1", X: t.Fractions, Y: mk(t.Tagset1)},
			{Name: "Tagset2", X: t.Fractions, Y: mk(t.Tagset2)},
		},
	}
	return chart.SVG()
}

// SVG renders an accuracy table as one line per method over the labelled
// fractions (the usual way Tables 3/4/11 are visualised).
func (t *AccuracyTable) SVG() (string, error) {
	chart := &plot.Line{
		Title:  t.Title,
		XLabel: "labelled fraction",
		YLabel: t.Metric,
	}
	for mi, method := range t.Methods {
		ys := make([]float64, len(t.Fractions))
		for fi := range t.Fractions {
			ys[fi] = t.Cells[fi][mi].Mean
		}
		chart.Series = append(chart.Series, plot.Series{Name: method, X: t.Fractions, Y: ys})
	}
	return chart.SVG()
}
