package experiments

import (
	"fmt"
	"io"

	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// ConvergenceCurves is the shape of Fig. 10: the per-iteration residual
// ρ_t = ‖x_t−x_{t−1}‖ + ‖z_t−z_{t−1}‖ on the four datasets (class 0's
// trace, which the paper plots).
type ConvergenceCurves struct {
	Datasets []string
	Traces   [][]float64
}

// Format renders each dataset's residuals.
func (cc *ConvergenceCurves) Format(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: convergence of T-Mark (rho per iteration)")
	for d, name := range cc.Datasets {
		fmt.Fprintf(w, "  %-8s", name)
		for i, rho := range cc.Traces[d] {
			if i >= 15 {
				fmt.Fprintf(w, " …(%d iters)", len(cc.Traces[d]))
				break
			}
			fmt.Fprintf(w, " %.2e", rho)
		}
		fmt.Fprintln(w)
	}
}

// ConvergedWithin reports whether every dataset's residual fell below tol
// within maxIter iterations — the paper's observation that convergence
// needs roughly 10 iterations.
func (cc *ConvergenceCurves) ConvergedWithin(tol float64, maxIter int) bool {
	for _, trace := range cc.Traces {
		ok := false
		for i, rho := range trace {
			if rho < tol && i < maxIter {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// RunFigure10 reproduces Fig. 10 on DBLP, Movies, NUS and ACM.
func RunFigure10(opt Options) *ConvergenceCurves {
	type entry struct {
		name  string
		build func(seed int64) *hin.Graph
		cfg   tmark.Config
	}
	entries := []entry{
		{"DBLP", buildDBLP(opt), dblpTMarkConfig()},
		{"Movies", buildMovies(opt), moviesTMarkConfig()},
		{"NUS", buildNUS(opt, dataset.Tagset1()), nusTMarkConfig()},
		{"ACM", buildACM(opt), acmTMarkConfig()},
	}
	cc := &ConvergenceCurves{}
	for _, e := range entries {
		g := e.build(opt.Seed)
		model, err := tmark.New(g, e.cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: figure 10 (%s): %v", e.name, err))
		}
		cr := model.RunClass(0)
		cc.Datasets = append(cc.Datasets, e.name)
		cc.Traces = append(cc.Traces, cr.Trace)
	}
	return cc
}
