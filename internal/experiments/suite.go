package experiments

import (
	"tmark/internal/baselines"
	"tmark/internal/tmark"
)

// methodSuite builds the paper's nine-method comparison with the T-Mark
// variants configured for the dataset at hand. The Graph Inception and
// Highway baselines are sized down together with the datasets so the full
// sweep stays laptop-fast.
func methodSuite(cfg tmark.Config) []baselines.Method {
	return []baselines.Method{
		&baselines.TMark{Config: cfg, ICA: true},
		&baselines.TMark{Config: cfg, ICA: false},
		&baselines.GraphInception{Depth: 1, Hidden: 16, Epochs: 25},
		&baselines.HighwayNet{Hidden: 24, Depth: 2, Epochs: 40},
		baselines.NewHcc(),
		baselines.NewHccSS(),
		baselines.NewWVRN(),
		baselines.NewEMR(),
		baselines.NewICA(),
	}
}

// tmarkOnly wraps a single configured T-Mark for the parameter sweeps.
func tmarkOnly(cfg tmark.Config) []baselines.Method {
	return []baselines.Method{&baselines.TMark{Config: cfg, ICA: true}}
}
