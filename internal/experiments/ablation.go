package experiments

import (
	"math/rand"

	"tmark/internal/baselines"
	"tmark/internal/hin"
	"tmark/internal/vec"
)

// RunAblation compares T-Mark against its own ablated variants on DBLP:
// the ICA label update removed (TensorRrCc), the feature channel removed
// (γ=0), the relational tensor removed (γ=1), and the sparse top-K
// feature transition instead of the dense cosine matrix. It quantifies
// the design choices DESIGN.md calls out, in the same table shape as the
// paper's method sweeps.
func RunAblation(opt Options) *AccuracyTable {
	base := dblpTMarkConfig()

	noFeatures := base
	noFeatures.Gamma = 0
	noRelations := base
	noRelations.Gamma = 1
	sparseW := base
	sparseW.FeatureTopK = 20

	variants := []baselines.Method{
		&namedTMark{name: "full", inner: baselines.TMark{Config: base, ICA: true}},
		&namedTMark{name: "no-ICA", inner: baselines.TMark{Config: base, ICA: false}},
		&namedTMark{name: "no-features", inner: baselines.TMark{Config: noFeatures, ICA: true}},
		&namedTMark{name: "no-relations", inner: baselines.TMark{Config: noRelations, ICA: true}},
		&namedTMark{name: "topK-W", inner: baselines.TMark{Config: sparseW, ICA: true}},
	}
	return runSweep(opt, sweepConfig{
		title:    "Ablation: T-Mark design choices on DBLP",
		metric:   "accuracy",
		build:    buildDBLP(opt),
		methods:  variants,
		metricFn: accuracyMetric,
	})
}

// namedTMark renames a configured T-Mark variant for the ablation table.
type namedTMark struct {
	name  string
	inner baselines.TMark
}

func (v *namedTMark) Name() string { return v.name }

func (v *namedTMark) Scores(g *hin.Graph, rng *rand.Rand) (*vec.Matrix, error) {
	return v.inner.Scores(g, rng)
}
