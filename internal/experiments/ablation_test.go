package experiments

import (
	"testing"
)

// The ablation must show every removed component costing accuracy at low
// label rates: the full configuration beats (or ties within noise) each
// ablated variant, and removing the relational tensor hurts the most.
func TestAblationFullConfigurationWins(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	opt := Quick(1)
	opt.Fractions = []float64{0.1, 0.5}
	table := RunAblation(opt)
	full := table.Mean(0.1, "full")
	if full <= 0 {
		t.Fatalf("ablation table missing the full variant")
	}
	for _, variant := range []string{"no-ICA", "no-features", "no-relations", "topK-W"} {
		if m := table.Mean(0.1, variant); m > full+0.03 {
			t.Errorf("ablated %s (%.3f) beats full (%.3f) at 10%%", variant, m, full)
		}
	}
	if noRel := table.Mean(0.5, "no-relations"); noRel >= table.Mean(0.5, "full") {
		t.Errorf("dropping the relational tensor should cost accuracy at 50%%: %.3f vs %.3f",
			noRel, table.Mean(0.5, "full"))
	}
}
