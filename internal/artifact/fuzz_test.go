package artifact

import (
	"bytes"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

// FuzzDecodeArtifact throws arbitrary bytes at the strict decoder. The
// invariants: never panic, never accept bytes whose crc64 trailer
// disagrees, and anything accepted must re-encode canonically and
// assemble into a servable model — an artifact the decoder lets through
// is an artifact the kernels may trust blindly.
func FuzzDecodeArtifact(f *testing.F) {
	seed := func(g func() ([]byte, string, error)) {
		data, _, err := g()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Pre-damaged variants steer the fuzzer at the interesting
		// branches: table parsing, META bounds, crc.
		trunc := data[:len(data)*3/4]
		f.Add(trunc)
		flip := append([]byte(nil), data...)
		flip[len(flip)/3] ^= 0x40
		f.Add(flip)
	}
	seed(func() ([]byte, string, error) { return Compile(dataset.Example(), tmark.DefaultConfig()) })
	seed(func() ([]byte, string, error) {
		cfg := tmark.DefaultConfig()
		cfg.Gamma = 0
		return Compile(dataset.Example(), cfg)
	})
	seed(func() ([]byte, string, error) {
		cfg := tmark.DefaultConfig()
		cfg.FeatureTopK = 2
		return Compile(dataset.Ring(dataset.DefaultRingConfig(1)), cfg)
	})
	f.Add([]byte("TMARKAR1"))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeBytes(data)
		if err != nil {
			return
		}
		again, err := EncodeModel(a.Graph(), a.BuiltConfig, a.Substrate())
		if err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted artifact is not canonical")
		}
		m, err := a.Activate(a.BuiltConfig)
		if err != nil {
			t.Fatalf("accepted artifact does not activate: %v", err)
		}
		// One solve proves the kernels can walk the decoded layouts
		// without faulting; cap the work so the fuzzer stays fast.
		cfg := a.BuiltConfig
		cfg.MaxIterations = 2
		if m, err = a.Activate(cfg); err == nil {
			m.Run()
		}
	})
}
