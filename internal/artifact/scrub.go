package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ScrubReport summarises one registry scrub pass.
type ScrubReport struct {
	// Blobs is the number of blob files whose content hash was verified.
	Blobs int
	// Corrupt lists the hashes of blobs whose bytes no longer hash to
	// their filename; each was moved to <dir>/corrupt/ for post-mortem.
	Corrupt []string
	// Repaired lists refs that pointed at a missing or quarantined blob
	// and were rolled back to the newest intact blob, as "name sha256:…".
	Repaired []string
	// Removed lists refs that pointed at a missing blob with no intact
	// blob left to roll back to; the ref file was deleted.
	Removed []string
}

// Dirty reports whether the scrub changed anything.
func (s *ScrubReport) Dirty() bool {
	return len(s.Corrupt) > 0 || len(s.Repaired) > 0 || len(s.Removed) > 0
}

// String renders the report for startup logs.
func (s *ScrubReport) String() string {
	return fmt.Sprintf("scrubbed %d blobs: %d corrupt, %d refs repaired, %d refs removed",
		s.Blobs, len(s.Corrupt), len(s.Repaired), len(s.Removed))
}

// Scrub verifies every blob in the registry against its content hash
// and repairs what it can: a blob whose bytes no longer hash to its
// filename is quarantined into <dir>/corrupt/ (kept, not destroyed — it
// is evidence), and a ref left pointing at a missing blob is rolled
// back to the newest intact blob by modification time, or removed when
// no intact blob remains. The registry keeps no per-name history, so
// the rollback target is the best durable approximation of "the last
// version that sealed"; a serving process re-seals the true head on its
// next applied batch.
//
// Scrub is safe to run against a registry with live readers: blobs are
// immutable, quarantine is a rename (open handles and mmaps keep their
// bytes), and hash-pinned readers are unaffected by ref rollbacks.
func (r *Registry) Scrub() (*ScrubReport, error) {
	rep := &ScrubReport{}
	blobDir := filepath.Join(r.dir, "blobs")
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		return nil, err
	}
	type intact struct {
		hash  string
		mtime int64
	}
	var intactBlobs []intact
	for _, e := range entries {
		name := e.Name()
		hash, ok := strings.CutSuffix(name, ".tmar")
		if e.IsDir() || !ok || !validHash(hash) {
			continue // foreign files and in-flight temp files are not ours to judge
		}
		data, rerr := os.ReadFile(filepath.Join(blobDir, name))
		if rerr != nil {
			return nil, rerr
		}
		rep.Blobs++
		if Hash(data) == hash {
			info, ierr := e.Info()
			if ierr != nil {
				return nil, ierr
			}
			intactBlobs = append(intactBlobs, intact{hash: hash, mtime: info.ModTime().UnixNano()})
			continue
		}
		if merr := os.MkdirAll(filepath.Join(r.dir, "corrupt"), 0o755); merr != nil {
			return nil, merr
		}
		if merr := os.Rename(filepath.Join(blobDir, name), filepath.Join(r.dir, "corrupt", name)); merr != nil {
			return nil, merr
		}
		rep.Corrupt = append(rep.Corrupt, hash)
	}
	sort.Slice(intactBlobs, func(a, b int) bool { return intactBlobs[a].mtime > intactBlobs[b].mtime })
	sort.Strings(rep.Corrupt)

	refs, err := os.ReadDir(filepath.Join(r.dir, "refs"))
	if err != nil {
		return nil, err
	}
	for _, e := range refs {
		name := e.Name()
		if e.IsDir() || !ValidName(name) {
			continue
		}
		line, rerr := os.ReadFile(r.refPath(name))
		if rerr != nil {
			return nil, rerr
		}
		h, ok := strings.CutPrefix(strings.TrimSpace(string(line)), "sha256:")
		if ok && validHash(h) {
			if _, serr := os.Stat(r.BlobPath(h)); serr == nil {
				continue // healthy
			}
		}
		// Dangling (or malformed) ref: roll back to the newest intact
		// blob, or remove the ref when the registry has nothing left.
		if len(intactBlobs) == 0 {
			if rmerr := os.Remove(r.refPath(name)); rmerr != nil {
				return nil, rmerr
			}
			rep.Removed = append(rep.Removed, name)
			continue
		}
		target := intactBlobs[0].hash
		if terr := r.Tag(name, target); terr != nil {
			return nil, terr
		}
		rep.Repaired = append(rep.Repaired, name+" sha256:"+target)
	}
	sort.Strings(rep.Repaired)
	sort.Strings(rep.Removed)
	return rep, nil
}
