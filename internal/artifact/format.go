// Package artifact implements the content-addressed model artifact
// store: compiled T-Mark models as versioned, checksummed, memory-
// mappable TMARKAR1 files, plus the registry that resolves
// name[@sha256:…] model references to blobs on disk.
//
// A tmarkd model is, once built, exactly the normalised transition
// tensors O and R, the optional feature channel W, and the graph's
// label seeds and display names — all immutable. Building those parts
// from raw input is the expensive step (counting sorts over the
// adjacency stream, the O(n²·d) cosine matrix); everything afterwards
// only reads flat arrays. TMARKAR1 therefore serialises the flat
// arrays exactly as the kernels consume them, each in its own 8-byte
// aligned section, so activation is: mmap the file, verify the
// checksum, wrap the sections as slices — zero copies, O(ms).
//
// # TMARKAR1 layout (little-endian)
//
//	magic    "TMARKAR1"                          8 bytes
//	count    uint32    number of sections
//	reserved uint32    0
//	table    count × {kind u32, reserved u32, off u64, len u64}
//	…        sections, each 8-byte aligned, zero padding between
//	crc      uint64    crc64/ECMA over everything above
//
// Section offsets are absolute file offsets; lengths are in bytes. The
// META section is a strict, allocation-bounded binary stream (the
// TMARKCP1 decoder discipline): dimensions, the FNV-1a config hash and
// the arithmetic config fields, the W kind, class/relation/node names,
// and the label seeds. The hot sections are raw little-endian int32 /
// float64 arrays in the exact order the tensor and CSR layouts store
// them; DecodeBytes re-checks every structural invariant the kernels
// assume (sort orders, index ranges, offset monotonicity) because a
// file, unlike freshly normalised memory, proves nothing by
// construction.
//
// The artifact's identity is the SHA-256 of its full byte content; the
// registry names blobs by that hash, so equal models dedupe and a
// pinned reference can never silently change meaning.
package artifact

import "hash/crc64"

// Magic identifies a TMARKAR1 artifact file.
var magic = [8]byte{'T', 'M', 'A', 'R', 'K', 'A', 'R', '1'}

// Section kinds. The decoder rejects duplicate kinds and unknown kinds
// are skipped (forward compatibility: a newer writer may add sections a
// reader built from this source does not know).
const (
	secMeta uint32 = 1

	// NodeTransition O: entries in (k, j, i) order + non-dangling column list.
	secOI    uint32 = 10 // int32
	secOJ    uint32 = 11 // int32
	secOK    uint32 = 12 // int32
	secOP    uint32 = 13 // float64
	secOColJ uint32 = 14 // int32
	secOColK uint32 = 15 // int32

	// RelationTransition R: entries in (j, i, k) order + tube list/offsets.
	secRI     uint32 = 20 // int32
	secRJ     uint32 = 21 // int32
	secRK     uint32 = 22 // int32
	secRP     uint32 = 23 // float64
	secRTubeI uint32 = 24 // int32
	secRTubeJ uint32 = 25 // int32
	secRTubeS uint32 = 26 // int32, len tubes+1

	// Feature channel W: CSR arrays or the dense row-major matrix.
	secWRowPtr uint32 = 30 // int32, len n+1
	secWColIdx uint32 = 31 // int32
	secWVal    uint32 = 32 // float64
	secWDense  uint32 = 33 // float64, n×n row-major
)

// W kinds stored in META.
const (
	wNone  uint8 = 0
	wDense uint8 = 1
	wCSR   uint8 = 2
)

const (
	metaVersion  = 1
	headerFixed  = 8 + 4 + 4 // magic + count + reserved
	sectionEntry = 24        // kind + reserved + off + len
	trailerLen   = 8         // crc64
)

var crcTable = crc64.MakeTable(crc64.ECMA)
