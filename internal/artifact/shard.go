package artifact

// Shard artifacts: the horizontal scale-out layer (internal/shard)
// splits a compiled model's tensors by contiguous node ranges, and each
// piece is stored as its own content-addressed, mmap-able blob in the
// same TMARKAR1 container (its own section kinds, its own META), so the
// registry machinery — Put/Tag/Resolve, crc64 verification, zero-copy
// activation — applies unchanged. A shard blob records its parent
// model's content hash, so `name@sha256:…#shard=i/M` references bind a
// shard to exactly one model version; the deterministic ref name
// sh-<parent-hash>-<i>-<M> lets workers find shard blobs from the
// parent reference alone.
//
// DecodeShardBytes and DecodeBytes are disjoint by construction: a
// shard blob has no secMeta section and a model blob has no secShMeta,
// so neither decoder can misread the other's files.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"regexp"

	"tmark/internal/sparse"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// Shard-blob section kinds (disjoint from the model kinds in format.go).
const (
	secShMeta uint32 = 40

	secShOI    uint32 = 41 // int32
	secShOJ    uint32 = 42 // int32
	secShOK    uint32 = 43 // int32
	secShOP    uint32 = 44 // float64
	secShOColJ uint32 = 45 // int32
	secShOColK uint32 = 46 // int32

	secShRI    uint32 = 50 // int32
	secShRJ    uint32 = 51 // int32
	secShRK    uint32 = 52 // int32
	secShRP    uint32 = 53 // float64
	secShRTbI  uint32 = 54 // int32
	secShRTbJ  uint32 = 55 // int32

	secShWRowPtr uint32 = 60 // int32, len rows+1, rebased to the slab
	secShWColIdx uint32 = 61 // int32
	secShWVal    uint32 = 62 // float64
	secShWDense  uint32 = 63 // float64, rows×n row-major
)

const shardMetaVersion = 1

// ShardArtifact is one decoded shard blob: the node/relation sub-tensors
// a worker streams, plus its row slab of the feature channel. The hot
// arrays alias the blob's bytes (mmap when possible), exactly like a
// model Artifact.
type ShardArtifact struct {
	// Parent is the content hash (hex) of the model this shard was cut
	// from; a worker refuses iterate slabs stamped with any other hash.
	Parent    string
	Shard, Of int
	N, M      int

	Node tensor.NodeShard
	Rel  tensor.RelationShard

	// WLo/WHi is this shard's feature-matrix row range; exactly one of
	// WCSR/WDense is non-nil when the parent has a feature channel (the
	// slab has WHi−WLo rows and n columns).
	WLo, WHi int
	WCSR     *sparse.Matrix
	WDense   *vec.Matrix

	data   []byte
	munmap func() error
}

// Size returns the encoded blob length in bytes.
func (a *ShardArtifact) Size() int { return len(a.data) }

// ContentHash returns the SHA-256 of the blob's full encoding.
func (a *ShardArtifact) ContentHash() string { return Hash(a.data) }

// Close releases the underlying mapping. The shard's slices must not be
// used afterwards.
func (a *ShardArtifact) Close() error {
	if a.munmap != nil {
		err := a.munmap()
		a.munmap = nil
		return err
	}
	return nil
}

// ShardRefName returns the deterministic registry ref name binding
// shard i of M of the model with the given content hash:
// sh-<hash>-<i>-<M>. It fits ValidName (3+64+1+…, well under 128).
func ShardRefName(parentHash string, shard, of int) string {
	return fmt.Sprintf("sh-%s-%d-%d", parentHash, shard, of)
}

var shardRefNameRE = regexp.MustCompile(`^sh-[0-9a-f]{64}-[0-9]+-[0-9]+$`)

// IsShardRefName reports whether name is a shard-binding ref written by
// PartitionInto. Shard blobs are sub-tensor slices consumed by worker
// processes, not classifiable models, so anything enumerating servable
// models must skip refs matching this form.
func IsShardRefName(name string) bool {
	return shardRefNameRE.MatchString(name)
}

// EncodeShard serialises one shard of a compiled model. parentHash is
// the parent blob's content hash (64 lowercase hex); node and rel are
// the par.Split slices of the parent's tensors; wCSR/wDense (at most
// one non-nil) is the [wLo, wHi) row slab of the feature matrix, with
// CSR row pointers rebased to the slab.
func EncodeShard(parentHash string, node tensor.NodeShard, rel tensor.RelationShard, wLo, wHi int, csrSlab *sparse.Matrix, denseSlab *vec.Matrix) ([]byte, error) {
	rawParent, err := hex.DecodeString(parentHash)
	if err != nil || len(rawParent) != 32 {
		return nil, fmt.Errorf("artifact: shard parent hash %q is not 64 hex digits", parentHash)
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if node.Shard != rel.Shard || node.Of != rel.Of || node.N != rel.N || node.M != rel.M {
		return nil, fmt.Errorf("artifact: node shard %d/%d (%dx%d) and relation shard %d/%d (%dx%d) disagree",
			node.Shard, node.Of, node.N, node.M, rel.Shard, rel.Of, rel.N, rel.M)
	}
	if csrSlab != nil && denseSlab != nil {
		return nil, fmt.Errorf("artifact: shard cannot carry both CSR and dense W slabs")
	}
	if csrSlab != nil || denseSlab != nil {
		// The feature slab tiles by the same par.Split row ranges as the
		// node sums, so the coordinator's reassembled W·X matches the
		// in-process MulVecBatchParallel split bitwise.
		if wLo != node.XLo || wHi != node.XHi {
			return nil, fmt.Errorf("artifact: shard W rows [%d,%d), want the node range [%d,%d)", wLo, wHi, node.XLo, node.XHi)
		}
		rows := wHi - wLo
		if denseSlab != nil && (denseSlab.Rows != rows || denseSlab.Cols != node.N || len(denseSlab.Data) != rows*node.N) {
			return nil, fmt.Errorf("artifact: dense W slab %dx%d, want %dx%d", denseSlab.Rows, denseSlab.Cols, rows, node.N)
		}
		if csrSlab != nil {
			if r, c := csrSlab.Dims(); r != rows || c != node.N {
				return nil, fmt.Errorf("artifact: CSR W slab %dx%d, want %dx%d", r, c, rows, node.N)
			}
		}
	} else if wLo != 0 || wHi != 0 {
		return nil, fmt.Errorf("artifact: no W slab but rows [%d,%d)", wLo, wHi)
	}
	var w metaWriter
	w.u32(shardMetaVersion)
	w.buf = append(w.buf, rawParent...)
	w.u32(uint32(node.Shard))
	w.u32(uint32(node.Of))
	w.u32(uint32(node.N))
	w.u32(uint32(node.M))
	w.u32(uint32(node.XLo))
	w.u32(uint32(node.XHi))
	w.u32(uint32(node.ZLo))
	w.u32(uint32(node.ZHi))
	w.u32(uint32(rel.XLo))
	w.u32(uint32(rel.XHi))
	switch {
	case denseSlab != nil:
		w.u8(wDense)
	case csrSlab != nil:
		w.u8(wCSR)
	default:
		w.u8(wNone)
	}
	w.u32(uint32(wLo))
	w.u32(uint32(wHi))

	secs := []rawSection{
		{secShMeta, w.buf},
		{secShOI, i32Bytes(node.I)}, {secShOJ, i32Bytes(node.J)}, {secShOK, i32Bytes(node.K)},
		{secShOP, f64Bytes(node.P)},
		{secShOColJ, i32Bytes(node.ColJ)}, {secShOColK, i32Bytes(node.ColK)},
		{secShRI, i32Bytes(rel.I)}, {secShRJ, i32Bytes(rel.J)}, {secShRK, i32Bytes(rel.K)},
		{secShRP, f64Bytes(rel.P)},
		{secShRTbI, i32Bytes(rel.TubeI)}, {secShRTbJ, i32Bytes(rel.TubeJ)},
	}
	switch {
	case denseSlab != nil:
		secs = append(secs, rawSection{secShWDense, f64Bytes(denseSlab.Data)})
	case csrSlab != nil:
		raw := csrSlab.Raw()
		secs = append(secs,
			rawSection{secShWRowPtr, i32Bytes(raw.RowPtr)},
			rawSection{secShWColIdx, i32Bytes(raw.ColIdx)},
			rawSection{secShWVal, f64Bytes(raw.Values)})
	}
	return assembleContainer(secs)
}

// rawSection is one section to be laid into a container.
type rawSection struct {
	kind uint32
	data []byte
}

// assembleContainer lays sections into the TMARKAR1 header-table /
// align8 / crc64 container (the EncodeModel layout, shared with the
// model writer so the two cannot drift).
func assembleContainer(secs []rawSection) ([]byte, error) {
	headerLen := headerFixed + len(secs)*sectionEntry
	off := align8(headerLen)
	total := off
	offs := make([]int, len(secs))
	for i, sc := range secs {
		offs[i] = total
		total = align8(total + len(sc.data))
	}
	buf := make([]byte, total+trailerLen)
	copy(buf, magic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(secs)))
	for i, sc := range secs {
		e := headerFixed + i*sectionEntry
		binary.LittleEndian.PutUint32(buf[e:], sc.kind)
		binary.LittleEndian.PutUint64(buf[e+8:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(buf[e+16:], uint64(len(sc.data)))
		copy(buf[offs[i]:], sc.data)
	}
	binary.LittleEndian.PutUint64(buf[total:], crc64.Checksum(buf[:total], crcTable))
	return buf, nil
}

// DecodeShardBytes parses and validates a serialised shard blob with
// the same strictness discipline as DecodeBytes: checksum first, then
// the section table, then every structural invariant — never panicking
// on hostile input, never allocating more than a small multiple of the
// input (fuzzed via the wire codec's sibling, FuzzDecodeShardFrame, and
// the artifact fuzzer's shard seeds). The decoded arrays alias data.
func DecodeShardBytes(data []byte) (*ShardArtifact, error) {
	body, secs, seen, err := parseContainer(data)
	if err != nil {
		return nil, err
	}
	metaIdx, ok := seen[secShMeta]
	if !ok {
		return nil, corrupt("no shard META section")
	}
	a := &ShardArtifact{data: data}
	wKind, err := a.parseShardMeta(body[secs[metaIdx].off : secs[metaIdx].off+secs[metaIdx].len])
	if err != nil {
		return nil, err
	}
	i32 := func(kind uint32) ([]int32, error) { return i32Section(body, secs, seen, kind) }
	f64 := func(kind uint32) ([]float64, error) { return f64Section(body, secs, seen, kind) }
	if a.Node.I, err = i32(secShOI); err != nil {
		return nil, err
	}
	if a.Node.J, err = i32(secShOJ); err != nil {
		return nil, err
	}
	if a.Node.K, err = i32(secShOK); err != nil {
		return nil, err
	}
	if a.Node.P, err = f64(secShOP); err != nil {
		return nil, err
	}
	if a.Node.ColJ, err = i32(secShOColJ); err != nil {
		return nil, err
	}
	if a.Node.ColK, err = i32(secShOColK); err != nil {
		return nil, err
	}
	if a.Rel.I, err = i32(secShRI); err != nil {
		return nil, err
	}
	if a.Rel.J, err = i32(secShRJ); err != nil {
		return nil, err
	}
	if a.Rel.K, err = i32(secShRK); err != nil {
		return nil, err
	}
	if a.Rel.P, err = f64(secShRP); err != nil {
		return nil, err
	}
	if a.Rel.TubeI, err = i32(secShRTbI); err != nil {
		return nil, err
	}
	if a.Rel.TubeJ, err = i32(secShRTbJ); err != nil {
		return nil, err
	}
	if err := a.Node.Validate(); err != nil {
		return nil, corrupt("%v", err)
	}
	if err := a.Rel.Validate(); err != nil {
		return nil, corrupt("%v", err)
	}

	rows := a.WHi - a.WLo
	switch wKind {
	case wNone:
		if a.WLo != 0 || a.WHi != 0 {
			return nil, corrupt("shard META says no feature slab but rows [%d,%d)", a.WLo, a.WHi)
		}
		for _, k := range []uint32{secShWDense, secShWRowPtr, secShWColIdx, secShWVal} {
			if _, present := seen[k]; present {
				return nil, corrupt("shard META says no feature slab but section %d is present", k)
			}
		}
	case wDense:
		dense, err := f64(secShWDense)
		if err != nil {
			return nil, err
		}
		if uint64(len(dense)) != uint64(rows)*uint64(a.N) {
			return nil, corrupt("dense W slab has %d entries, want %d×%d", len(dense), rows, a.N)
		}
		for _, v := range dense {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, corrupt("dense W slab holds a non-finite entry")
			}
		}
		a.WDense = &vec.Matrix{Rows: rows, Cols: a.N, Data: dense}
	case wCSR:
		raw := sparse.Raw{Rows: rows, Cols: a.N}
		if raw.RowPtr, err = i32(secShWRowPtr); err != nil {
			return nil, err
		}
		if raw.ColIdx, err = i32(secShWColIdx); err != nil {
			return nil, err
		}
		if raw.Values, err = f64(secShWVal); err != nil {
			return nil, err
		}
		for _, v := range raw.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, corrupt("CSR W slab holds a non-finite entry")
			}
		}
		if a.WCSR, err = sparse.FromRaw(raw); err != nil {
			return nil, corrupt("%v", err)
		}
	default:
		return nil, corrupt("unknown shard W kind %d", wKind)
	}
	return a, nil
}

// parseContainer verifies the crc trailer, magic and section table —
// the container-level half of DecodeBytes, shared with the shard
// decoder.
func parseContainer(data []byte) (body []byte, secs []section, seen map[uint32]int, err error) {
	if len(data) < headerFixed+trailerLen {
		return nil, nil, nil, corrupt("%d bytes is shorter than the fixed header", len(data))
	}
	body, tail := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if got, want := binary.LittleEndian.Uint64(tail), crc64.Checksum(body, crcTable); got != want {
		return nil, nil, nil, corrupt("checksum mismatch (stored %016x, computed %016x)", got, want)
	}
	if [8]byte(data[:8]) != magic {
		return nil, nil, nil, corrupt("bad magic %q", data[:8])
	}
	count := int(binary.LittleEndian.Uint32(data[8:]))
	headerLen := headerFixed + count*sectionEntry
	if count < 1 || headerLen > len(body) {
		return nil, nil, nil, corrupt("section count %d does not fit in %d bytes", count, len(body))
	}
	secs = make([]section, count)
	seen = map[uint32]int{}
	prevEnd := align8(headerLen)
	for i := range secs {
		e := headerFixed + i*sectionEntry
		s := section{
			kind: binary.LittleEndian.Uint32(data[e:]),
			off:  int(int64(binary.LittleEndian.Uint64(data[e+8:]))),
			len:  int(int64(binary.LittleEndian.Uint64(data[e+16:]))),
		}
		if s.off < prevEnd || s.len < 0 || s.off%8 != 0 || s.len > len(body) || s.off > len(body)-s.len {
			return nil, nil, nil, corrupt("section %d (kind %d) range [%d,%d) invalid", i, s.kind, s.off, s.off+s.len)
		}
		if _, dup := seen[s.kind]; dup {
			return nil, nil, nil, corrupt("duplicate section kind %d", s.kind)
		}
		seen[s.kind] = i
		prevEnd = align8(s.off + s.len)
		secs[i] = s
	}
	return body, secs, seen, nil
}

// parseShardMeta decodes the shard META stream into a, returning the W
// kind. Bounds on the dimensions (≥ 0, shard < of) are enforced here;
// the par.Split consistency of the ranges is re-checked by the tensor
// shard validators.
func (a *ShardArtifact) parseShardMeta(data []byte) (uint8, error) {
	r := &metaReader{data: data}
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if v != shardMetaVersion {
		return 0, corrupt("shard META version %d, want %d", v, shardMetaVersion)
	}
	raw, err := r.bytes(32)
	if err != nil {
		return 0, err
	}
	a.Parent = hex.EncodeToString(raw)
	ints := make([]int, 10)
	for i := range ints {
		if ints[i], err = r.u32(); err != nil {
			return 0, err
		}
	}
	a.Shard, a.Of, a.N, a.M = ints[0], ints[1], ints[2], ints[3]
	wKind, err := r.u8()
	if err != nil {
		return 0, err
	}
	wr := make([]int, 2)
	for i := range wr {
		if wr[i], err = r.u32(); err != nil {
			return 0, err
		}
	}
	a.WLo, a.WHi = wr[0], wr[1]
	if r.remaining() != 0 {
		return 0, corrupt("shard META has %d trailing bytes", r.remaining())
	}
	if a.Of < 1 || a.Shard < 0 || a.Shard >= a.Of || a.N < 0 || a.M < 0 {
		return 0, corrupt("shard META %d/%d over %dx%d out of range", a.Shard, a.Of, a.N, a.M)
	}
	if a.WLo < 0 || a.WHi < a.WLo || a.WHi > a.N {
		return 0, corrupt("shard META W rows [%d,%d) out of range", a.WLo, a.WHi)
	}
	a.Node.N, a.Node.M, a.Node.Shard, a.Node.Of = a.N, a.M, a.Shard, a.Of
	a.Node.XLo, a.Node.XHi, a.Node.ZLo, a.Node.ZHi = ints[4], ints[5], ints[6], ints[7]
	a.Rel.N, a.Rel.M, a.Rel.Shard, a.Rel.Of = a.N, a.M, a.Shard, a.Of
	a.Rel.XLo, a.Rel.XHi = ints[8], ints[9]
	return wKind, nil
}

// OpenShard maps the shard blob at path and decodes it; the mmap /
// read-fallback behaviour matches Open.
func OpenShard(path string) (*ShardArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerFixed+trailerLen {
		return nil, corrupt("%s: %d bytes is shorter than the fixed header", path, st.Size())
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("artifact: %s: %d bytes exceeds the address space", path, st.Size())
	}
	data, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		if data, err = os.ReadFile(path); err != nil {
			return nil, err
		}
		unmap = nil
	}
	a, err := DecodeShardBytes(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	a.munmap = unmap
	return a, nil
}

// OpenShardRef resolves a `…#shard=i/M` reference: the base reference
// resolves to the parent model's hash, the deterministic shard ref
// sh-<parent>-<i>-<M> resolves to the shard blob, and the blob's actual
// content hash and recorded parent binding are both verified before it
// is returned.
func (r *Registry) OpenShardRef(ref Ref) (*ShardArtifact, error) {
	if ref.Of < 1 {
		return nil, fmt.Errorf("artifact: reference %q selects no shard", ref)
	}
	parent, err := r.Resolve(Ref{Name: ref.Name, Hash: ref.Hash})
	if err != nil {
		return nil, err
	}
	hash, err := r.Resolve(Ref{Name: ShardRefName(parent, ref.Shard, ref.Of)})
	if err != nil {
		return nil, err
	}
	a, err := OpenShard(r.BlobPath(hash))
	if err != nil {
		return nil, err
	}
	if got := a.ContentHash(); got != hash {
		a.Close()
		return nil, corrupt("shard blob filed under sha256:%s hashes to sha256:%s", hash, got)
	}
	if a.Parent != parent || a.Shard != ref.Shard || a.Of != ref.Of {
		a.Close()
		return nil, corrupt("shard blob sha256:%s is %d/%d of sha256:%s, want %d/%d of sha256:%s",
			hash, a.Shard, a.Of, a.Parent, ref.Shard, ref.Of, parent)
	}
	return a, nil
}
