package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// Hash returns the content identity of an encoded artifact: the
// lowercase hex SHA-256 of its full byte content.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Compile builds the model for (g, cfg) and encodes it as a TMARKAR1
// artifact, returning the encoding and its content hash. This is the
// `tmark build` entry point; serving uses it as the canonical-identity
// computation for models rebuilt from raw input, so the encoding is
// fully deterministic: equal graph + config always yield equal bytes.
func Compile(g *hin.Graph, cfg tmark.Config) (data []byte, hash string, err error) {
	model, err := tmark.New(g, cfg)
	if err != nil {
		return nil, "", err
	}
	data, err = EncodeModel(g, cfg, model.Substrate())
	if err != nil {
		return nil, "", err
	}
	return data, Hash(data), nil
}

// EncodeModel serialises a built model's substrate into the TMARKAR1
// format. The graph supplies the metadata (names, classes, label
// seeds); edges and features are deliberately not stored — the
// normalised tensors already embody them.
func EncodeModel(g *hin.Graph, cfg tmark.Config, s tmark.Substrate) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g == nil || s.O == nil || s.R == nil {
		return nil, fmt.Errorf("artifact: encode needs a graph and both transition tensors")
	}
	oRaw, rRaw := s.O.Raw(), s.R.Raw()
	if oRaw.N != g.N() || oRaw.M != g.M() || rRaw.N != g.N() || rRaw.M != g.M() {
		return nil, fmt.Errorf("artifact: substrate %dx%d / %dx%d disagrees with graph %dx%d",
			oRaw.N, oRaw.M, rRaw.N, rRaw.M, g.N(), g.M())
	}

	meta := encodeMeta(g, cfg, s)

	secs := []rawSection{
		{secMeta, meta},
		{secOI, i32Bytes(oRaw.I)}, {secOJ, i32Bytes(oRaw.J)}, {secOK, i32Bytes(oRaw.K)},
		{secOP, f64Bytes(oRaw.P)},
		{secOColJ, i32Bytes(oRaw.ColJ)}, {secOColK, i32Bytes(oRaw.ColK)},
		{secRI, i32Bytes(rRaw.I)}, {secRJ, i32Bytes(rRaw.J)}, {secRK, i32Bytes(rRaw.K)},
		{secRP, f64Bytes(rRaw.P)},
		{secRTubeI, i32Bytes(rRaw.TubeI)}, {secRTubeJ, i32Bytes(rRaw.TubeJ)},
		{secRTubeS, i32Bytes(rRaw.TubeStart)},
	}
	switch {
	case s.WDense != nil:
		secs = append(secs, rawSection{secWDense, f64Bytes(s.WDense.Data)})
	case s.WCSR != nil:
		w := s.WCSR.Raw()
		secs = append(secs,
			rawSection{secWRowPtr, i32Bytes(w.RowPtr)},
			rawSection{secWColIdx, i32Bytes(w.ColIdx)},
			rawSection{secWVal, f64Bytes(w.Values)})
	}
	return assembleContainer(secs)
}

// encodeMeta serialises the metadata stream: dimensions, config,
// W kind, names and label seeds.
func encodeMeta(g *hin.Graph, cfg tmark.Config, s tmark.Substrate) []byte {
	var w metaWriter
	w.u32(metaVersion)
	w.u32(uint32(g.N()))
	w.u32(uint32(g.M()))
	w.u32(uint32(g.Q()))
	w.u64(tmark.HashConfig(cfg))
	w.f64(cfg.Alpha)
	w.f64(cfg.Gamma)
	w.f64(cfg.Lambda)
	w.f64(cfg.Epsilon)
	w.u32(uint32(cfg.MaxIterations))
	w.bool(cfg.ICAUpdate)
	w.u32(uint32(cfg.FeatureTopK))
	switch {
	case s.WDense != nil:
		w.u8(wDense)
	case s.WCSR != nil:
		w.u8(wCSR)
	default:
		w.u8(wNone)
	}
	w.bool(s.Irreducible)
	for _, c := range g.Classes {
		w.str(c)
	}
	for k := range g.Relations {
		w.str(g.Relations[k].Name)
		w.bool(g.Relations[k].Directed)
	}
	total := 0
	for i := range g.Nodes {
		w.str(g.Nodes[i].Name)
		total += len(g.Nodes[i].Labels)
	}
	w.u32(uint32(total))
	for i := range g.Nodes {
		w.u32(uint32(len(g.Nodes[i].Labels)))
		for _, c := range g.Nodes[i].Labels {
			w.u32(uint32(c))
		}
	}
	return w.buf
}

type metaWriter struct{ buf []byte }

func (w *metaWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *metaWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *metaWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *metaWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *metaWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *metaWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func i32Bytes(xs []int32) []byte {
	out := make([]byte, 4*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func f64Bytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func align8(n int) int { return (n + 7) &^ 7 }
