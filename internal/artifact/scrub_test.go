package artifact

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

// scrubRegistry seeds a registry with two sealed versions (distinct
// configs, distinct mtimes so rollback order is deterministic) and a
// ref on each, returning the hashes oldest-first.
func scrubRegistry(t *testing.T) (*Registry, string, string) {
	t.Helper()
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	dataA, hashA := mustCompile(t, dataset.Example(), tmark.DefaultConfig())
	if _, err := r.Put(dataA); err != nil {
		t.Fatalf("Put A: %v", err)
	}
	cfgB := tmark.DefaultConfig()
	cfgB.Alpha = 0.5
	dataB, hashB := mustCompile(t, dataset.Example(), cfgB)
	if _, err := r.Put(dataB); err != nil {
		t.Fatalf("Put B: %v", err)
	}
	// Pin the mtime order explicitly — sub-nanosecond put spacing must
	// not decide which blob is "newest".
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(r.BlobPath(hashA), old, old); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
	if err := r.Tag("stable", hashA); err != nil {
		t.Fatalf("Tag stable: %v", err)
	}
	if err := r.Tag("head", hashB); err != nil {
		t.Fatalf("Tag head: %v", err)
	}
	return r, hashA, hashB
}

func TestScrubCleanRegistry(t *testing.T) {
	r, _, _ := scrubRegistry(t)
	rep, err := r.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rep.Dirty() {
		t.Fatalf("clean registry reported dirty: %s", rep)
	}
	if rep.Blobs != 2 {
		t.Fatalf("verified %d blobs, want 2", rep.Blobs)
	}
}

func TestScrubQuarantinesCorruptBlobAndRepairsRef(t *testing.T) {
	r, hashA, hashB := scrubRegistry(t)
	// Flip one byte of B's blob: its ref "head" now points at damage.
	data, err := os.ReadFile(r.BlobPath(hashB))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(r.BlobPath(hashB), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := r.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != hashB {
		t.Fatalf("Corrupt = %v, want [%s]", rep.Corrupt, hashB)
	}
	// The damaged bytes are evidence, not garbage: moved, not deleted.
	if _, err := os.Stat(filepath.Join(r.Dir(), "corrupt", hashB+".tmar")); err != nil {
		t.Fatalf("quarantined blob missing: %v", err)
	}
	if _, err := os.Stat(r.BlobPath(hashB)); err == nil {
		t.Fatal("corrupt blob still in blobs/")
	}
	// The dangling ref rolled back to the newest intact blob (A).
	if len(rep.Repaired) != 1 || rep.Repaired[0] != "head sha256:"+hashA {
		t.Fatalf("Repaired = %v", rep.Repaired)
	}
	if got, err := r.Resolve(Ref{Name: "head"}); err != nil || got != hashA {
		t.Fatalf("head resolves to %s (%v), want %s", got, err, hashA)
	}
	// The repaired ref opens and verifies like any other.
	a, _, err := r.OpenRef(Ref{Name: "head"})
	if err != nil {
		t.Fatalf("OpenRef after repair: %v", err)
	}
	a.Close()
	// A second pass finds nothing left to fix.
	rep2, err := r.Scrub()
	if err != nil {
		t.Fatalf("second Scrub: %v", err)
	}
	if rep2.Dirty() {
		t.Fatalf("second scrub still dirty: %s", rep2)
	}
}

func TestScrubRepairsDanglingRef(t *testing.T) {
	r, hashA, hashB := scrubRegistry(t)
	// Delete A's blob outright — "stable" now dangles.
	if err := os.Remove(r.BlobPath(hashA)); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("Corrupt = %v, want none", rep.Corrupt)
	}
	if len(rep.Repaired) != 1 || rep.Repaired[0] != "stable sha256:"+hashB {
		t.Fatalf("Repaired = %v, want stable -> %s", rep.Repaired, hashB)
	}
	if got, _ := r.Resolve(Ref{Name: "stable"}); got != hashB {
		t.Fatalf("stable resolves to %s, want %s", got, hashB)
	}
}

func TestScrubRemovesRefWithNothingLeft(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	data, hash := mustCompile(t, dataset.Example(), tmark.DefaultConfig())
	if _, err := r.Put(data); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag("only", hash); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(r.BlobPath(hash)); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "only" {
		t.Fatalf("Removed = %v, want [only]", rep.Removed)
	}
	if _, err := r.Resolve(Ref{Name: "only"}); err == nil {
		t.Fatal("removed ref still resolves")
	}
}
