package artifact

import (
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

// BenchmarkColdStart measures the two ways a serving process gets a
// warm model: the raw build (full tensor normalisation — counting
// sorts over every relation slice plus the all-pairs cosine feature
// matrix) and artifact activation (mmap, checksum, strict decode,
// assemble). The headline rows are the top-K sparse feature channel —
// the configuration any non-toy deployment runs, since the dense W is
// O(n²) memory — where activation skips the O(n²·d) cosine pass
// entirely and must land at least an order of magnitude under the
// rebuild. The dense rows are kept as the honest lower bound: there
// activation is dominated by the crc64 + finite-value scan over the
// n×n W section, worth ~5× rather than ~50×.
func BenchmarkColdStart(b *testing.B) {
	cases := []struct {
		name string
		spec string
		topK int
	}{
		{"dblp-topk8", "dblp", 8},
		{"movies-topk8", "movies", 8},
		{"dblp-dense", "dblp", 0},
	}
	for _, c := range cases {
		g, err := dataset.LoadSpec(c.spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := tmark.DefaultConfig()
		cfg.Workers = 1 // single-threaded: measure work, not scheduling
		cfg.FeatureTopK = c.topK
		blob, hash, err := Compile(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := OpenRegistry(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Put(blob); err != nil {
			b.Fatal(err)
		}
		path := reg.BlobPath(hash)

		b.Run(c.name+"/rebuild", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tmark.New(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/mmap-activate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := Open(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := a.Activate(cfg); err != nil {
					b.Fatal(err)
				}
				if err := a.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
