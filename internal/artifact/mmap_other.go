//go:build !unix

package artifact

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; Open falls back to reading
// the whole file into memory, which keeps every artifact code path
// working at the cost of the zero-copy activation.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errors.New("artifact: mmap unsupported on this platform")
}
