package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"

	"tmark/internal/hin"
	"tmark/internal/sparse"
	"tmark/internal/tensor"
	"tmark/internal/tmark"
	"tmark/internal/vec"
)

// ErrCorrupt wraps every decode failure: truncation, checksum mismatch,
// bad magic, or any violated structural invariant. Callers (the serve
// cache) treat it as "this artifact is unusable — fall back to a
// rebuild", never as a programming error.
var ErrCorrupt = errors.New("artifact: corrupt or truncated artifact")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Artifact is one decoded TMARKAR1 model artifact. The substrate's
// arrays alias the backing bytes (a memory mapping when opened through
// Open), so the artifact must stay alive — and must not be Closed —
// while any model assembled from it is still in use.
type Artifact struct {
	// N, M, Q are the node / relation / class dimensions.
	N, M, Q int
	// ConfigHash is the FNV-1a identity of BuiltConfig, as stored.
	ConfigHash uint64
	// BuiltConfig is the hyper-parameter set the artifact was compiled
	// with (Workers is a deployment knob and is never stored).
	BuiltConfig tmark.Config
	// Irreducible records whether the source tensor satisfied the
	// paper's irreducibility assumption.
	Irreducible bool

	graph *hin.Graph
	sub   tmark.Substrate
	wKind uint8

	data   []byte
	munmap func() error
}

// Graph returns the artifact's reconstructed graph: dimensions, class /
// relation / node names and label seeds. Edges and features are not
// stored (the normalised tensors embody them), so the graph serves
// classification and ranking but cannot be re-normalised.
func (a *Artifact) Graph() *hin.Graph { return a.graph }

// Substrate returns the decoded model substrate. Its arrays alias the
// artifact's backing bytes and are strictly read-only.
func (a *Artifact) Substrate() tmark.Substrate { return a.sub }

// Size returns the artifact's encoded length in bytes.
func (a *Artifact) Size() int { return len(a.data) }

// Close releases the backing memory mapping, if any. Models assembled
// from the artifact must not be used afterwards.
func (a *Artifact) Close() error {
	if a.munmap == nil {
		return nil
	}
	f := a.munmap
	a.munmap = nil
	a.data = nil
	return f()
}

// CompatibleWith reports whether the artifact's substrate can serve a
// model with config cfg. O and R are config-independent; the feature
// channel W depends only on whether Gamma is positive and on
// FeatureTopK, so any cfg whose feature-channel shape matches the
// stored one activates — per-request alpha/lambda/epsilon/iteration
// overrides reuse one artifact instead of minting rebuilds.
func (a *Artifact) CompatibleWith(cfg tmark.Config) error {
	if cfg.Gamma <= 0 {
		return nil // W unused
	}
	if a.wKind == wNone {
		return fmt.Errorf("artifact: config needs a feature channel (gamma=%v) but the artifact stores none", cfg.Gamma)
	}
	if cfg.FeatureTopK != a.BuiltConfig.FeatureTopK {
		return fmt.Errorf("artifact: config FeatureTopK=%d but the artifact's channel was built with %d",
			cfg.FeatureTopK, a.BuiltConfig.FeatureTopK)
	}
	return nil
}

// Activate assembles a servable model from the artifact under config
// cfg (use BuiltConfig to reproduce the compiled model exactly). It
// costs O(1): every array is aliased from the (typically mmap'd)
// artifact, none copied.
func (a *Artifact) Activate(cfg tmark.Config) (*tmark.Model, error) {
	if err := a.CompatibleWith(cfg); err != nil {
		return nil, err
	}
	return tmark.Assemble(a.graph, cfg, a.sub)
}

// section is one parsed table entry.
type section struct {
	kind uint32
	off  int
	len  int
}

// DecodeBytes parses and validates a serialised artifact. It is strict:
// truncation, checksum mismatch, misordered or overlapping sections,
// and every structural invariant violation error out — it never panics
// on hostile input and never allocates more than a small multiple of
// the input size (it is fuzzed: FuzzDecodeArtifact). The decoded
// substrate aliases data wherever alignment allows; data must therefore
// stay immutable for the artifact's lifetime.
func DecodeBytes(data []byte) (*Artifact, error) {
	body, secs, seen, err := parseContainer(data)
	if err != nil {
		return nil, err
	}

	metaIdx, ok := seen[secMeta]
	if !ok {
		return nil, corrupt("no META section")
	}
	a := &Artifact{data: data}
	if err := a.parseMeta(body[secs[metaIdx].off : secs[metaIdx].off+secs[metaIdx].len]); err != nil {
		return nil, err
	}

	i32 := func(kind uint32) ([]int32, error) { return i32Section(body, secs, seen, kind) }
	f64 := func(kind uint32) ([]float64, error) { return f64Section(body, secs, seen, kind) }

	oRaw := tensor.NodeRaw{N: a.N, M: a.M}
	if oRaw.I, err = i32(secOI); err != nil {
		return nil, err
	}
	if oRaw.J, err = i32(secOJ); err != nil {
		return nil, err
	}
	if oRaw.K, err = i32(secOK); err != nil {
		return nil, err
	}
	if oRaw.P, err = f64(secOP); err != nil {
		return nil, err
	}
	if oRaw.ColJ, err = i32(secOColJ); err != nil {
		return nil, err
	}
	if oRaw.ColK, err = i32(secOColK); err != nil {
		return nil, err
	}
	rRaw := tensor.RelationRaw{N: a.N, M: a.M}
	if rRaw.I, err = i32(secRI); err != nil {
		return nil, err
	}
	if rRaw.J, err = i32(secRJ); err != nil {
		return nil, err
	}
	if rRaw.K, err = i32(secRK); err != nil {
		return nil, err
	}
	if rRaw.P, err = f64(secRP); err != nil {
		return nil, err
	}
	if rRaw.TubeI, err = i32(secRTubeI); err != nil {
		return nil, err
	}
	if rRaw.TubeJ, err = i32(secRTubeJ); err != nil {
		return nil, err
	}
	if rRaw.TubeStart, err = i32(secRTubeS); err != nil {
		return nil, err
	}
	if a.sub.O, err = tensor.NodeTransitionFromRaw(oRaw); err != nil {
		return nil, corrupt("%v", err)
	}
	if a.sub.R, err = tensor.RelationTransitionFromRaw(rRaw); err != nil {
		return nil, corrupt("%v", err)
	}
	a.sub.Irreducible = a.Irreducible

	switch a.wKind {
	case wNone:
		for _, k := range []uint32{secWDense, secWRowPtr, secWColIdx, secWVal} {
			if _, present := seen[k]; present {
				return nil, corrupt("META says no feature channel but section %d is present", k)
			}
		}
	case wDense:
		dense, err := f64(secWDense)
		if err != nil {
			return nil, err
		}
		if uint64(len(dense)) != uint64(a.N)*uint64(a.N) {
			return nil, corrupt("dense W has %d entries, want %d×%d", len(dense), a.N, a.N)
		}
		for _, v := range dense {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, corrupt("dense W holds a non-finite entry")
			}
		}
		a.sub.WDense = &vec.Matrix{Rows: a.N, Cols: a.N, Data: dense}
	case wCSR:
		wRaw := sparse.Raw{Rows: a.N, Cols: a.N}
		if wRaw.RowPtr, err = i32(secWRowPtr); err != nil {
			return nil, err
		}
		if wRaw.ColIdx, err = i32(secWColIdx); err != nil {
			return nil, err
		}
		if wRaw.Values, err = f64(secWVal); err != nil {
			return nil, err
		}
		for _, v := range wRaw.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, corrupt("CSR W holds a non-finite entry")
			}
		}
		if a.sub.WCSR, err = sparse.FromRaw(wRaw); err != nil {
			return nil, corrupt("%v", err)
		}
	default:
		return nil, corrupt("unknown W kind %d", a.wKind)
	}
	return a, nil
}

// i32Section returns the typed view of one int32 section; a missing
// section is an empty slice (zero-entry arrays are simply not written).
func i32Section(body []byte, secs []section, seen map[uint32]int, kind uint32) ([]int32, error) {
	idx, ok := seen[kind]
	if !ok {
		return nil, nil
	}
	s := secs[idx]
	if s.len%4 != 0 {
		return nil, corrupt("section kind %d length %d not int32-aligned", kind, s.len)
	}
	return viewI32(body[s.off : s.off+s.len]), nil
}

// f64Section returns the typed view of one float64 section.
func f64Section(body []byte, secs []section, seen map[uint32]int, kind uint32) ([]float64, error) {
	idx, ok := seen[kind]
	if !ok {
		return nil, nil
	}
	s := secs[idx]
	if s.len%8 != 0 {
		return nil, corrupt("section kind %d length %d not float64-aligned", kind, s.len)
	}
	return viewF64(body[s.off : s.off+s.len]), nil
}

// nativeLittleEndian reports whether raw little-endian file bytes can
// be reinterpreted as host integers/floats without conversion.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// viewI32 reinterprets b as []int32 without copying when the host is
// little-endian and b is 4-byte aligned; otherwise it decodes a copy.
// Zero-copy views are read-only by contract (the backing store may be a
// PROT_READ mapping — a write faults).
func viewI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewF64 reinterprets b as []float64 (see viewI32).
func viewF64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// metaReader is the strict bounded reader of the META stream.
type metaReader struct {
	data []byte
	off  int
}

func (r *metaReader) remaining() int { return len(r.data) - r.off }

func (r *metaReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corrupt("META truncated at offset %d (need %d, have %d)", r.off, n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *metaReader) u8() (uint8, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *metaReader) u32() (int, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

func (r *metaReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *metaReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *metaReader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, corrupt("META bool %d at offset %d", v, r.off-1)
	}
	return v == 1, nil
}

func (r *metaReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// parseMeta fills the artifact's metadata from the META section. Every
// loop consumes at least one byte per element, so hostile counts fail
// on truncation before they can drive allocations past the input size.
func (a *Artifact) parseMeta(data []byte) error {
	r := &metaReader{data: data}
	ver, err := r.u32()
	if err != nil {
		return err
	}
	if ver != metaVersion {
		return corrupt("META version %d unknown", ver)
	}
	if a.N, err = r.u32(); err != nil {
		return err
	}
	if a.M, err = r.u32(); err != nil {
		return err
	}
	if a.Q, err = r.u32(); err != nil {
		return err
	}
	if a.N < 1 || a.Q < 1 {
		return corrupt("dimensions n=%d m=%d q=%d unusable", a.N, a.M, a.Q)
	}
	if a.ConfigHash, err = r.u64(); err != nil {
		return err
	}
	cfg := tmark.Config{}
	if cfg.Alpha, err = r.f64(); err != nil {
		return err
	}
	if cfg.Gamma, err = r.f64(); err != nil {
		return err
	}
	if cfg.Lambda, err = r.f64(); err != nil {
		return err
	}
	if cfg.Epsilon, err = r.f64(); err != nil {
		return err
	}
	if cfg.MaxIterations, err = r.u32(); err != nil {
		return err
	}
	if cfg.ICAUpdate, err = r.bool(); err != nil {
		return err
	}
	if cfg.FeatureTopK, err = r.u32(); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return corrupt("stored config invalid: %v", err)
	}
	if got := tmark.HashConfig(cfg); got != a.ConfigHash {
		return corrupt("config hash %016x disagrees with stored fields (%016x)", a.ConfigHash, got)
	}
	a.BuiltConfig = cfg
	if a.wKind, err = r.u8(); err != nil {
		return err
	}
	if a.Irreducible, err = r.bool(); err != nil {
		return err
	}

	g := &hin.Graph{}
	for c := 0; c < a.Q; c++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		g.Classes = append(g.Classes, name)
	}
	for k := 0; k < a.M; k++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		directed, err := r.bool()
		if err != nil {
			return err
		}
		g.Relations = append(g.Relations, hin.Relation{Name: name, Directed: directed})
	}
	for i := 0; i < a.N; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		g.Nodes = append(g.Nodes, hin.Node{Name: name})
	}
	totalLabels, err := r.u32()
	if err != nil {
		return err
	}
	if totalLabels > r.remaining()/4 {
		return corrupt("label total %d exceeds remaining META", totalLabels)
	}
	labelVals := make([]int, 0, totalLabels)
	read := 0
	for i := 0; i < a.N; i++ {
		count, err := r.u32()
		if err != nil {
			return err
		}
		if count > totalLabels-read {
			return corrupt("node %d claims %d labels with %d left of the declared %d", i, count, totalLabels-read, totalLabels)
		}
		prev := -1
		for l := 0; l < count; l++ {
			c, err := r.u32()
			if err != nil {
				return err
			}
			if c <= prev || c >= a.Q {
				return corrupt("node %d label %d out of order or range %d", i, c, a.Q)
			}
			prev = c
			labelVals = append(labelVals, c)
		}
		read += count
		// Slice into the flat backing so n small label sets cost one
		// allocation, not n.
		g.Nodes[i].Labels = labelVals[len(labelVals)-count : len(labelVals) : len(labelVals)]
		if count == 0 {
			g.Nodes[i].Labels = nil
		}
	}
	if read != totalLabels {
		return corrupt("declared %d labels, found %d", totalLabels, read)
	}
	if r.remaining() != 0 {
		return corrupt("META has %d trailing bytes", r.remaining())
	}
	a.graph = g
	return nil
}
