//go:build unix

package artifact

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping is private: the
// blob is content-addressed and immutable, but a private read-only map
// additionally shields the decoder from any concurrent rewrite of the
// underlying file. The returned unmap releases the mapping.
func mmapFile(f *os.File, size int) (data []byte, unmap func() error, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
