package artifact

import (
	"errors"
	"os"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
)

func TestParseRef(t *testing.T) {
	hash := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	good := map[string]Ref{
		"dblp":                {Name: "dblp"},
		"my.model_v2-final":   {Name: "my.model_v2-final"},
		"dblp@sha256:" + hash: {Name: "dblp", Hash: hash},
		"sha256:" + hash:      {Hash: hash},
	}
	for in, want := range good {
		got, err := ParseRef(in)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseRef(%q) = %+v, want %+v", in, got, want)
		}
		if got.String() != in {
			t.Fatalf("Ref(%q).String() = %q", in, got.String())
		}
	}
	bad := []string{
		"", ".hidden", "-flag", "a/b", "a b", "a@", "a@sha256:",
		"a@sha256:short", "a@md5:" + hash, "sha256:" + hash[:63],
		"sha256:" + hash[:63] + "G", // uppercase / non-hex digit
		"dblp@" + hash,              // pin without algorithm prefix
	}
	for _, in := range bad {
		if _, err := ParseRef(in); err == nil {
			t.Fatalf("ParseRef(%q) accepted", in)
		}
	}
}

func TestRegistryPutTagResolveOpen(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data, hash := mustCompile(t, dataset.Example(), tmark.DefaultConfig())

	got, err := r.Put(data)
	if err != nil || got != hash {
		t.Fatalf("Put = %q, %v; want %q", got, err, hash)
	}
	if got, err = r.Put(data); err != nil || got != hash { // idempotent
		t.Fatalf("second Put = %q, %v", got, err)
	}
	// A damaged blob under the right name is repaired, not trusted: the
	// registry re-hashes existing bytes before skipping the write.
	if err := os.WriteFile(r.BlobPath(hash), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err = r.Put(data); err != nil || got != hash {
		t.Fatalf("repair Put = %q, %v", got, err)
	}
	if a, _, err := r.OpenRef(Ref{Hash: hash}); err != nil {
		t.Fatalf("open after repair: %v", err)
	} else {
		a.Close()
	}
	if err := r.Tag("example", hash); err != nil {
		t.Fatalf("Tag: %v", err)
	}
	if err := r.Tag("dangling", "ab"+hash[2:]); err == nil {
		t.Fatal("Tag accepted a missing blob")
	}

	for _, ref := range []string{"example", "example@sha256:" + hash, "sha256:" + hash} {
		parsed, err := ParseRef(ref)
		if err != nil {
			t.Fatal(err)
		}
		h, err := r.Resolve(parsed)
		if err != nil || h != hash {
			t.Fatalf("Resolve(%q) = %q, %v", ref, h, err)
		}
		a, h, err := r.OpenRef(parsed)
		if err != nil || h != hash {
			t.Fatalf("OpenRef(%q): %q, %v", ref, h, err)
		}
		if _, err := a.Activate(a.BuiltConfig); err != nil {
			t.Fatalf("activate via %q: %v", ref, err)
		}
		a.Close()
	}

	if _, err := r.Resolve(Ref{Name: "nosuch"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing ref: %v", err)
	}
	if _, err := r.Resolve(Ref{Hash: "ab" + hash[2:]}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: %v", err)
	}

	// Retag moves the name; the old pin keeps meaning the old bytes.
	cfg2 := tmark.DefaultConfig()
	cfg2.Alpha = 0.9
	data2, hash2 := mustCompile(t, dataset.Example(), cfg2)
	if _, err := r.Put(data2); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag("example", hash2); err != nil {
		t.Fatal(err)
	}
	if h, _ := r.Resolve(Ref{Name: "example"}); h != hash2 {
		t.Fatalf("retagged name resolves to %q, want %q", h, hash2)
	}
	if h, _ := r.Resolve(Ref{Name: "example", Hash: hash}); h != hash {
		t.Fatal("pinned ref moved with the tag")
	}

	infos, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "example" || infos[0].Hash != hash2 || infos[1].Name != "" || infos[1].Hash != hash {
		t.Fatalf("List = %+v", infos)
	}
}

func TestOpenRefDetectsSwappedBlob(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dataA, hashA := mustCompile(t, dataset.Example(), tmark.DefaultConfig())
	cfgB := tmark.DefaultConfig()
	cfgB.Alpha = 0.9
	dataB, _ := mustCompile(t, dataset.Example(), cfgB)
	if _, err := r.Put(dataA); err != nil {
		t.Fatal(err)
	}
	// Adversarial (or fat-fingered) swap: file B's bytes under A's name.
	// The blob is internally consistent — only the content hash betrays
	// it, so OpenRef must compare.
	if err := os.WriteFile(r.BlobPath(hashA), dataB, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.OpenRef(Ref{Hash: hashA}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped blob opened: %v", err)
	}
}
