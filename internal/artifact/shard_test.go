package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/tmark"
	"tmark/internal/vec"
)

func TestParseRefShardFragment(t *testing.T) {
	good := map[string]Ref{
		"dblp#shard=0/2":           {Name: "dblp", Shard: 0, Of: 2},
		"dblp@sha256:" + strings.Repeat("ab", 32) + "#shard=3/4": {Name: "dblp", Hash: strings.Repeat("ab", 32), Shard: 3, Of: 4},
		"sha256:" + strings.Repeat("0f", 32) + "#shard=1/16":     {Hash: strings.Repeat("0f", 32), Shard: 1, Of: 16},
	}
	for in, want := range good {
		got, err := ParseRef(in)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseRef(%q) = %+v, want %+v", in, got, want)
		}
		if got.String() != in {
			t.Fatalf("Ref(%q).String() = %q", in, got.String())
		}
	}
	bad := []string{
		"dblp#shard=2/2",  // index == count
		"dblp#shard=-1/2", // sign
		"dblp#shard=0/0",  // zero count
		"dblp#shard=01/2", // leading zero
		"dblp#shard=1",    // no count
		"dblp#frag=1/2",   // unknown fragment
		"dblp#",           // empty fragment
	}
	for _, in := range bad {
		if _, err := ParseRef(in); err == nil {
			t.Fatalf("ParseRef(%q) accepted", in)
		}
	}
	// Whole-model references stay exactly as before.
	r, err := ParseRef("dblp")
	if err != nil || r.Of != 0 || r.String() != "dblp" {
		t.Fatalf("plain ref parsed as %+v (%v)", r, err)
	}
}

// A shard blob must round-trip bitwise through the codec, bind to its
// parent hash, and be rejected by the model decoder (and vice versa).
func TestShardEncodeDecodeRoundTrip(t *testing.T) {
	g := dataset.Example()
	cfg := tmark.DefaultConfig() // dense W
	data, hash := mustCompile(t, g, cfg)
	a, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	sub := a.Substrate()
	n := a.N
	const of = 3
	for s := 0; s < of; s++ {
		nsh := sub.O.Shard(s, of)
		rsh := sub.R.Shard(s, of)
		slab := &vec.Matrix{
			Rows: nsh.XHi - nsh.XLo, Cols: n,
			Data: sub.WDense.Data[nsh.XLo*n : nsh.XHi*n],
		}
		blob, err := EncodeShard(hash, nsh, rsh, nsh.XLo, nsh.XHi, nil, slab)
		if err != nil {
			t.Fatalf("EncodeShard %d: %v", s, err)
		}
		dec, err := DecodeShardBytes(blob)
		if err != nil {
			t.Fatalf("DecodeShardBytes %d: %v", s, err)
		}
		if dec.Parent != hash || dec.Shard != s || dec.Of != of || dec.N != n || dec.M != a.M {
			t.Fatalf("shard %d meta = %+v", s, dec)
		}
		if len(dec.Node.P) != len(nsh.P) || len(dec.Rel.P) != len(rsh.P) {
			t.Fatalf("shard %d entry counts %d/%d, want %d/%d", s, len(dec.Node.P), len(dec.Rel.P), len(nsh.P), len(rsh.P))
		}
		for q := range nsh.P {
			if dec.Node.P[q] != nsh.P[q] || dec.Node.I[q] != nsh.I[q] {
				t.Fatalf("shard %d entry %d drifted", s, q)
			}
		}
		if dec.WDense == nil || dec.WLo != nsh.XLo || dec.WHi != nsh.XHi {
			t.Fatalf("shard %d W slab [%d,%d) kind %v", s, dec.WLo, dec.WHi, dec.WDense)
		}
		for i := range slab.Data {
			if dec.WDense.Data[i] != slab.Data[i] {
				t.Fatalf("shard %d W cell %d drifted", s, i)
			}
		}
		// Cross-decoder rejection and damage rejection.
		if _, err := DecodeBytes(blob); err == nil {
			t.Fatalf("model decoder accepted a shard blob")
		}
		damaged := append([]byte(nil), blob...)
		damaged[len(damaged)/2] ^= 0x40
		if _, err := DecodeShardBytes(damaged); err == nil {
			t.Fatalf("shard decoder accepted a damaged blob")
		}
	}
	if _, err := DecodeShardBytes(data); err == nil {
		t.Fatalf("shard decoder accepted a model blob")
	}
}

func TestOpenShardRef(t *testing.T) {
	g := dataset.Example()
	cfg := tmark.DefaultConfig()
	cfg.Gamma = 0 // no W: the simplest slab-free shards
	data, hash := mustCompile(t, g, cfg)
	a, err := DecodeBytes(data)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	if _, err := reg.Put(data); err != nil {
		t.Fatalf("Put parent: %v", err)
	}
	if err := reg.Tag("example", hash); err != nil {
		t.Fatalf("Tag: %v", err)
	}
	sub := a.Substrate()
	const of = 2
	for s := 0; s < of; s++ {
		blob, err := EncodeShard(hash, sub.O.Shard(s, of), sub.R.Shard(s, of), 0, 0, nil, nil)
		if err != nil {
			t.Fatalf("EncodeShard: %v", err)
		}
		shHash, err := reg.Put(blob)
		if err != nil {
			t.Fatalf("Put shard: %v", err)
		}
		if err := reg.Tag(ShardRefName(hash, s, of), shHash); err != nil {
			t.Fatalf("Tag shard: %v", err)
		}
	}
	for _, refStr := range []string{"example#shard=1/2", "sha256:" + hash + "#shard=0/2"} {
		ref, err := ParseRef(refStr)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", refStr, err)
		}
		sh, err := reg.OpenShardRef(ref)
		if err != nil {
			t.Fatalf("OpenShardRef(%q): %v", refStr, err)
		}
		if sh.Parent != hash || sh.Of != of {
			t.Fatalf("OpenShardRef(%q) = %d/%d of %s", refStr, sh.Shard, sh.Of, sh.Parent)
		}
		sh.Close()
	}
	// A missing shard count errors cleanly.
	if _, err := reg.OpenShardRef(Ref{Name: "example", Shard: 0, Of: 4}); err == nil {
		t.Fatalf("OpenShardRef resolved an unpartitioned count")
	}
	// A blob swapped under the shard ref is rejected by the content check.
	ref, _ := ParseRef("example#shard=0/2")
	other, _ := reg.Resolve(Ref{Name: ShardRefName(hash, 1, of)})
	if err := os.WriteFile(filepath.Join(reg.Dir(), "refs", ShardRefName(hash, 0, of)), []byte("sha256:"+other+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if sh, err := reg.OpenShardRef(ref); err == nil {
		sh.Close()
		t.Fatalf("OpenShardRef accepted shard 1's blob for shard 0")
	}
}
