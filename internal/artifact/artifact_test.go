package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tmark/internal/dataset"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// variants covers the three feature-channel shapes an artifact can
// store: none (Gamma 0), dense (full cosine matrix) and CSR (top-K
// sparsified).
func variants() []struct {
	name string
	g    *hin.Graph
	cfg  tmark.Config
} {
	dense := tmark.DefaultConfig()
	noW := tmark.DefaultConfig()
	noW.Gamma = 0
	csr := tmark.DefaultConfig()
	csr.FeatureTopK = 4
	return []struct {
		name string
		g    *hin.Graph
		cfg  tmark.Config
	}{
		{"example-dense", dataset.Example(), dense},
		{"example-noW", dataset.Example(), noW},
		{"dblp-csr", dataset.DBLP(dataset.DefaultDBLPConfig(1)), csr},
	}
}

// mustCompile builds and encodes, failing the test on error.
func mustCompile(t *testing.T, g *hin.Graph, cfg tmark.Config) ([]byte, string) {
	t.Helper()
	data, hash, err := Compile(g, cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return data, hash
}

// sameResults demands bitwise-equal stationary distributions: the
// activated model must be indistinguishable from the raw-built one.
func sameResults(t *testing.T, want, got *tmark.Result) {
	t.Helper()
	if len(want.Classes) != len(got.Classes) {
		t.Fatalf("class count %d vs %d", len(want.Classes), len(got.Classes))
	}
	for c := range want.Classes {
		w, g := want.Classes[c], got.Classes[c]
		if w.Iterations != g.Iterations || w.Converged != g.Converged {
			t.Fatalf("class %d: iterations %d/%v vs %d/%v", c, w.Iterations, w.Converged, g.Iterations, g.Converged)
		}
		for i := range w.X {
			if w.X[i] != g.X[i] {
				t.Fatalf("class %d: x[%d] = %v vs %v (not bitwise equal)", c, i, w.X[i], g.X[i])
			}
		}
		for k := range w.Z {
			if w.Z[k] != g.Z[k] {
				t.Fatalf("class %d: z[%d] = %v vs %v (not bitwise equal)", c, k, w.Z[k], g.Z[k])
			}
		}
	}
}

func TestRoundTripBitwise(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			data, _ := mustCompile(t, v.g, v.cfg)
			a, err := DecodeBytes(data)
			if err != nil {
				t.Fatalf("DecodeBytes: %v", err)
			}
			if a.N != v.g.N() || a.M != v.g.M() || a.Q != v.g.Q() {
				t.Fatalf("dims %d/%d/%d, want %d/%d/%d", a.N, a.M, a.Q, v.g.N(), v.g.M(), v.g.Q())
			}
			if a.BuiltConfig != stripWorkers(v.cfg) {
				t.Fatalf("BuiltConfig %+v, want %+v", a.BuiltConfig, v.cfg)
			}
			raw, err := tmark.New(v.g, v.cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			activated, err := a.Activate(a.BuiltConfig)
			if err != nil {
				t.Fatalf("Activate: %v", err)
			}
			sameResults(t, raw.Run(), activated.Run())

			// The decoded graph carries the same label seeds and names.
			for i := 0; i < v.g.N(); i++ {
				if a.Graph().Nodes[i].Name != v.g.Nodes[i].Name {
					t.Fatalf("node %d name %q, want %q", i, a.Graph().Nodes[i].Name, v.g.Nodes[i].Name)
				}
				if a.Graph().PrimaryLabel(i) != v.g.PrimaryLabel(i) {
					t.Fatalf("node %d label %d, want %d", i, a.Graph().PrimaryLabel(i), v.g.PrimaryLabel(i))
				}
			}

			// Re-encoding the decoded substrate reproduces the bytes:
			// the encoding is canonical, so artifact identity survives a
			// decode/encode cycle.
			again, err := EncodeModel(a.Graph(), a.BuiltConfig, a.Substrate())
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatal("decode → encode is not the identity")
			}
		})
	}
}

// stripWorkers zeroes the deployment-only field New may carry.
func stripWorkers(c tmark.Config) tmark.Config {
	c.Workers = 0
	return c
}

func TestCompileDeterministic(t *testing.T) {
	g := dataset.DBLP(dataset.DefaultDBLPConfig(1))
	cfg := tmark.DefaultConfig()
	cfg.FeatureTopK = 4
	_, h1 := mustCompile(t, g, cfg)
	cfg.Workers = 3 // deployment knob: must not change identity
	_, h2 := mustCompile(t, g, cfg)
	if h1 != h2 {
		t.Fatalf("hash depends on build parallelism: %s vs %s", h1, h2)
	}
	cfg.Alpha = 0.9 // arithmetic knob: must change identity
	_, h3 := mustCompile(t, g, cfg)
	if h3 == h1 {
		t.Fatal("hash ignores Alpha")
	}
}

func TestOpenMmapServesIdenticalModel(t *testing.T) {
	g := dataset.Example()
	cfg := tmark.DefaultConfig()
	data, hash := mustCompile(t, g, cfg)
	path := filepath.Join(t.TempDir(), "m.tmar")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer a.Close()
	if a.ContentHash() != hash {
		t.Fatalf("content hash %s, want %s", a.ContentHash(), hash)
	}
	raw, err := tmark.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	activated, err := a.Activate(a.BuiltConfig)
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	sameResults(t, raw.Run(), activated.Run())
}

func TestCompatibleWith(t *testing.T) {
	g := dataset.Example()

	noW := tmark.DefaultConfig()
	noW.Gamma = 0
	data, _ := mustCompile(t, g, noW)
	a, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Activate(tmark.DefaultConfig()); err == nil {
		t.Fatal("artifact without W activated a Gamma>0 config")
	}

	csr := tmark.DefaultConfig()
	csr.FeatureTopK = 2
	data, _ = mustCompile(t, g, csr)
	if a, err = DecodeBytes(data); err != nil {
		t.Fatal(err)
	}
	other := csr
	other.FeatureTopK = 3
	if _, err := a.Activate(other); err == nil {
		t.Fatal("artifact activated across a FeatureTopK mismatch")
	}
	// Hyper-parameter overrides that keep the channel shape reuse the
	// substrate — and genuinely change the arithmetic.
	override := csr
	override.Alpha = 0.9
	m, err := a.Activate(override)
	if err != nil {
		t.Fatalf("override activation: %v", err)
	}
	base, err := a.Activate(csr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Run().Classes[0].X[0] == base.Run().Classes[0].X[0] {
		t.Fatal("alpha override did not change the solution")
	}
	// Gamma 0 ignores the stored channel entirely.
	if _, err := a.Activate(noW); err != nil {
		t.Fatalf("Gamma 0 activation: %v", err)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data, _ := mustCompile(t, dataset.Example(), tmark.DefaultConfig())

	damage := map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:10] },
		"truncated-half":    func(b []byte) []byte { return b[:len(b)/2] },
		"truncated-tail":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped-magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped-payload":   func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"flipped-crc":       func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"zeroed-table":      func(b []byte) []byte { copy(b[16:40], make([]byte, 24)); return b },
		"appended-garbage":  func(b []byte) []byte { return append(b, 0xde, 0xad) },
		"empty":             func([]byte) []byte { return nil },
		"section-count-max": func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff; return b },
	}
	for name, f := range damage {
		t.Run(name, func(t *testing.T) {
			hurt := f(append([]byte(nil), data...))
			if _, err := DecodeBytes(hurt); err == nil {
				t.Fatal("damaged artifact decoded")
			}
		})
	}
	// And the pristine copy still decodes (the damage helpers didn't
	// mutate the shared original).
	if _, err := DecodeBytes(data); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
}
