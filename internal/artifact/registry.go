package artifact

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Registry is a content-addressed artifact store on disk, laid out in
// the git-refs style:
//
//	<dir>/blobs/<sha256-hex>.tmar   the immutable artifacts
//	<dir>/refs/<name>               one line: sha256:<hex>
//
// A blob's filename is the SHA-256 of its content, so equal models
// dedupe and every reference is reproducible. Refs are mutable name →
// hash pointers (`tmark build` moves them); a pinned reference
// (name@sha256:… or bare sha256:…) bypasses the ref file entirely and
// can never change meaning.
type Registry struct {
	dir string
}

// ErrNotFound reports a reference that resolves to nothing: no ref file
// by that name, or no blob under the pinned hash.
var ErrNotFound = errors.New("artifact: not found")

// OpenRegistry opens (creating if needed) the registry rooted at dir.
func OpenRegistry(dir string) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("artifact: registry needs a directory")
	}
	for _, sub := range []string{"blobs", "refs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Registry{dir: dir}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// BlobPath returns the on-disk path a blob with the given content hash
// lives at (whether or not it exists).
func (r *Registry) BlobPath(hash string) string {
	return filepath.Join(r.dir, "blobs", hash+".tmar")
}

func (r *Registry) refPath(name string) string {
	return filepath.Join(r.dir, "refs", name)
}

// ValidName reports whether name is usable as a model reference name:
// nonempty, at most 128 bytes, drawn from [A-Za-z0-9._-], and not
// starting with a dot or dash (keeps refs/ free of path tricks and
// flag-lookalikes).
func ValidName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Ref is a parsed model reference.
type Ref struct {
	// Name is the symbolic name; empty for a bare sha256:… reference.
	Name string
	// Hash pins the content hash; empty when the reference floats on
	// the name alone.
	Hash string
	// Shard/Of select one horizontal shard of the referenced model
	// (the `#shard=i/M` fragment). Of == 0 means the whole model.
	Shard, Of int
}

func (f Ref) String() string {
	var s string
	switch {
	case f.Name != "" && f.Hash != "":
		s = f.Name + "@sha256:" + f.Hash
	case f.Hash != "":
		s = "sha256:" + f.Hash
	default:
		s = f.Name
	}
	if f.Of > 0 {
		s += fmt.Sprintf("#shard=%d/%d", f.Shard, f.Of)
	}
	return s
}

// ParseRef parses a model reference of one of the forms
//
//	name
//	name@sha256:<64 hex>
//	sha256:<64 hex>
//
// any of which may carry a trailing `#shard=i/M` fragment selecting
// shard i of a model partitioned M ways (0 ≤ i < M).
//
// Hex digits must be lowercase — the hash is an identity, and a single
// canonical spelling keeps equal references equal as strings.
func ParseRef(ref string) (Ref, error) {
	base, frag, hasFrag := strings.Cut(ref, "#")
	var shard, of int
	if hasFrag {
		spec, ok := strings.CutPrefix(frag, "shard=")
		if !ok {
			return Ref{}, fmt.Errorf("artifact: reference %q fragment must be shard=i/M", ref)
		}
		i, m, ok := strings.Cut(spec, "/")
		if !ok {
			return Ref{}, fmt.Errorf("artifact: reference %q fragment must be shard=i/M", ref)
		}
		var err error
		if shard, err = parseShardInt(i); err != nil {
			return Ref{}, fmt.Errorf("artifact: reference %q shard index: %v", ref, err)
		}
		if of, err = parseShardInt(m); err != nil {
			return Ref{}, fmt.Errorf("artifact: reference %q shard count: %v", ref, err)
		}
		if of < 1 || shard >= of {
			return Ref{}, fmt.Errorf("artifact: reference %q shard %d/%d out of range", ref, shard, of)
		}
	}
	parsed, err := parseBaseRef(base)
	if err != nil {
		return Ref{}, err
	}
	parsed.Shard, parsed.Of = shard, of
	return parsed, nil
}

// parseShardInt parses a small decimal without signs, spaces or leading
// zeros — one canonical spelling, like the hash rule.
func parseShardInt(s string) (int, error) {
	if s == "" || len(s) > 6 || (len(s) > 1 && s[0] == '0') {
		return 0, fmt.Errorf("malformed number %q", s)
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("malformed number %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

func parseBaseRef(ref string) (Ref, error) {
	if h, ok := strings.CutPrefix(ref, "sha256:"); ok {
		if !validHash(h) {
			return Ref{}, fmt.Errorf("artifact: malformed hash in reference %q", ref)
		}
		return Ref{Hash: h}, nil
	}
	name, rest, pinned := strings.Cut(ref, "@")
	if !ValidName(name) {
		return Ref{}, fmt.Errorf("artifact: malformed model name in reference %q", ref)
	}
	if !pinned {
		return Ref{Name: name}, nil
	}
	h, ok := strings.CutPrefix(rest, "sha256:")
	if !ok || !validHash(h) {
		return Ref{}, fmt.Errorf("artifact: reference %q pin must be sha256:<64 lowercase hex>", ref)
	}
	return Ref{Name: name, Hash: h}, nil
}

// Put stores an encoded artifact blob, returning its content hash. The
// write is atomic (temp file + rename) and idempotent — but an existing
// blob is trusted only after its bytes actually hash to its name, so
// re-Putting over a damaged file repairs it (`tmark build` is the
// repair tool for a corrupted registry).
func (r *Registry) Put(data []byte) (string, error) {
	hash := Hash(data)
	path := r.BlobPath(hash)
	if existing, err := os.ReadFile(path); err == nil && Hash(existing) == hash {
		return hash, nil
	}
	tmp, err := os.CreateTemp(filepath.Join(r.dir, "blobs"), ".put-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	// CreateTemp's 0600 would keep the blob from other readers (a
	// serving user distinct from the building one); artifacts are
	// immutable public data.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return hash, nil
}

// Tag points name at the blob with the given content hash. The blob
// must already exist (Put first), so a ref can never dangle at birth.
func (r *Registry) Tag(name, hash string) error {
	if !ValidName(name) {
		return fmt.Errorf("artifact: malformed model name %q", name)
	}
	if !validHash(hash) {
		return fmt.Errorf("artifact: malformed hash %q", hash)
	}
	if _, err := os.Stat(r.BlobPath(hash)); err != nil {
		return fmt.Errorf("artifact: cannot tag %s: blob sha256:%s %w", name, hash, ErrNotFound)
	}
	tmp, err := os.CreateTemp(filepath.Join(r.dir, "refs"), ".tag-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString("sha256:" + hash + "\n"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), r.refPath(name))
}

// Resolve turns a parsed reference into the content hash it denotes. A
// pinned reference resolves to its pin (after confirming the blob
// exists, and — when both name and pin are present — that the name is
// not even consulted: the pin wins, matching container-image @digest
// semantics). A floating name reads refs/<name>.
func (r *Registry) Resolve(ref Ref) (string, error) {
	if ref.Hash != "" {
		if _, err := os.Stat(r.BlobPath(ref.Hash)); err != nil {
			return "", fmt.Errorf("artifact: blob sha256:%s %w", ref.Hash, ErrNotFound)
		}
		return ref.Hash, nil
	}
	if !ValidName(ref.Name) {
		return "", fmt.Errorf("artifact: malformed model name %q", ref.Name)
	}
	line, err := os.ReadFile(r.refPath(ref.Name))
	if err != nil {
		if os.IsNotExist(err) {
			return "", fmt.Errorf("artifact: model %q %w", ref.Name, ErrNotFound)
		}
		return "", err
	}
	h, ok := strings.CutPrefix(strings.TrimSpace(string(line)), "sha256:")
	if !ok || !validHash(h) {
		return "", fmt.Errorf("artifact: ref %q holds a malformed hash", ref.Name)
	}
	if _, err := os.Stat(r.BlobPath(h)); err != nil {
		return "", fmt.Errorf("artifact: ref %q points at missing blob sha256:%s: %w", ref.Name, h, ErrNotFound)
	}
	return h, nil
}

// OpenRef resolves a reference, opens its blob and verifies that the
// blob's actual content hash matches the hash it resolved to — a
// swapped, renamed or silently rewritten blob is rejected here rather
// than trusted because of its filename. The resolved hash is returned
// alongside the artifact.
func (r *Registry) OpenRef(ref Ref) (*Artifact, string, error) {
	hash, err := r.Resolve(ref)
	if err != nil {
		return nil, "", err
	}
	a, err := Open(r.BlobPath(hash))
	if err != nil {
		return nil, hash, err
	}
	if got := a.ContentHash(); got != hash {
		a.Close()
		return nil, hash, corrupt("blob filed under sha256:%s hashes to sha256:%s", hash, got)
	}
	return a, hash, nil
}

// RefInfo is one registry listing entry.
type RefInfo struct {
	Name string // empty for an untagged blob
	Hash string
}

// List enumerates the registry: every named ref (sorted by name),
// followed by blobs no ref points at (sorted by hash). Malformed ref
// files and foreign files in blobs/ are skipped, not errors — the
// registry must stay listable even after manual surgery.
func (r *Registry) List() ([]RefInfo, error) {
	refs, err := os.ReadDir(filepath.Join(r.dir, "refs"))
	if err != nil {
		return nil, err
	}
	var out []RefInfo
	tagged := map[string]bool{}
	for _, e := range refs {
		if e.IsDir() || !ValidName(e.Name()) {
			continue
		}
		h, err := r.Resolve(Ref{Name: e.Name()})
		if err != nil {
			continue
		}
		tagged[h] = true
		out = append(out, RefInfo{Name: e.Name(), Hash: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	blobs, err := os.ReadDir(filepath.Join(r.dir, "blobs"))
	if err != nil {
		return nil, err
	}
	var loose []RefInfo
	for _, e := range blobs {
		h, ok := strings.CutSuffix(e.Name(), ".tmar")
		if e.IsDir() || !ok || !validHash(h) || tagged[h] {
			continue
		}
		loose = append(loose, RefInfo{Hash: h})
	}
	sort.Slice(loose, func(i, j int) bool { return loose[i].Hash < loose[j].Hash })
	return append(out, loose...), nil
}
