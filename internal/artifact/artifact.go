package artifact

import (
	"fmt"
	"os"

	"tmark/internal/fault"
)

// Open maps the artifact file at path and decodes it. On platforms with
// mmap the hot arrays alias the mapping (the file's pages load lazily
// and are shared between processes serving the same blob); elsewhere,
// or if the mapping fails, the file is read into memory instead. Either
// way the crc64 trailer and every structural invariant are verified
// before any kernel may touch the data.
//
// Fault points: ArtifactOpen (Check) gates the open, ArtifactDecode
// (Fire, args (data []byte)) sees the raw bytes before parsing — while
// fault injection is enabled the bytes are a private writable copy, so
// a chaos hook may flip them to simulate on-disk corruption.
func Open(path string) (*Artifact, error) {
	if err := fault.Check(fault.ArtifactOpen); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerFixed+trailerLen {
		return nil, corrupt("%s: %d bytes is shorter than the fixed header", path, st.Size())
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("artifact: %s: %d bytes exceeds the address space", path, st.Size())
	}

	data, unmap, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// Mapping failed (platform, filesystem, exhausted maps): degrade
		// to a plain read so the artifact still serves.
		if data, err = os.ReadFile(path); err != nil {
			return nil, err
		}
		unmap = nil
	}
	if fault.Enabled() {
		// Chaos hooks mutate bytes to simulate corruption; give them a
		// writable private copy instead of a PROT_READ mapping.
		writable := append([]byte(nil), data...)
		if unmap != nil {
			unmap()
			unmap = nil
		}
		data = writable
		fault.Fire(fault.ArtifactDecode, data)
	}

	a, err := DecodeBytes(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	a.munmap = unmap
	return a, nil
}

// ContentHash returns the artifact's content identity: the SHA-256 of
// its full encoding. The registry compares it against the hash a blob
// is filed under, so a swapped or renamed blob cannot impersonate a
// pinned reference.
func (a *Artifact) ContentHash() string { return Hash(a.data) }
