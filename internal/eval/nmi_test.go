package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestNMIPerfectAndPermuted(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(truth, truth, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(identical) = %v, want 1", got)
	}
	// NMI is invariant under relabeling: a pure permutation of cluster
	// ids is still a perfect match.
	perm := []int{2, 2, 0, 0, 1, 1}
	if got := NMI(perm, truth, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(permuted) = %v, want 1", got)
	}
}

func TestNMIIndependent(t *testing.T) {
	// A prediction that is constant carries no information.
	truth := []int{0, 1, 0, 1}
	if got := NMI([]int{0, 0, 0, 0}, truth, nil); got != 0 {
		t.Errorf("NMI(constant pred) = %v, want 0", got)
	}
	// Perfectly balanced independence: every (pred, truth) cell equally
	// likely → MI 0.
	pred := []int{0, 1, 0, 1}
	indep := []int{0, 0, 1, 1}
	if got := NMI(pred, indep, nil); math.Abs(got) > 1e-12 {
		t.Errorf("NMI(independent) = %v, want 0", got)
	}
}

func TestNMIKnownValue(t *testing.T) {
	// Hand-computed 2×2 case: pred splits {a,a,b,b}, truth {a,b,b,b}.
	// H(P) = ln 2, H(T) = -(1/4)ln(1/4)-(3/4)ln(3/4),
	// I = Σ pxy ln(pxy/(px py)) over cells (0,0)=1/4, (0,1)=1/4, (1,1)=1/2.
	pred := []int{0, 0, 1, 1}
	truth := []int{0, 1, 1, 1}
	hp := math.Log(2)
	ht := -(0.25*math.Log(0.25) + 0.75*math.Log(0.75))
	mi := 0.25*math.Log(0.25/(0.5*0.25)) +
		0.25*math.Log(0.25/(0.5*0.75)) +
		0.5*math.Log(0.5/(0.5*0.75))
	want := 2 * mi / (hp + ht)
	if got := NMI(pred, truth, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("NMI = %v, want %v", got, want)
	}
}

func TestNMIMaskAndUnlabelled(t *testing.T) {
	pred := []int{0, 1, 9, 9}
	truth := []int{0, 1, -1, 2}
	mask := []bool{true, true, true, false}
	// Position 2 is unlabelled, position 3 masked out → the evaluated
	// pairs are a perfect two-cluster match.
	if got := NMI(pred, truth, mask); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(masked) = %v, want 1", got)
	}
	if got := NMI(nil, nil, nil); got != 0 {
		t.Errorf("NMI(empty) = %v, want 0", got)
	}
	if got := NMI([]int{3, 3}, []int{1, 1}, nil); got != 1 {
		t.Errorf("NMI(single cluster both) = %v, want 1", got)
	}
}

func TestNMIBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(3)
		}
		got := NMI(pred, truth, nil)
		if got < 0 || got > 1+1e-12 || math.IsNaN(got) {
			t.Fatalf("NMI out of [0,1]: %v (pred %v truth %v)", got, pred, truth)
		}
	}
}

func TestNMIPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	NMI([]int{0}, []int{0, 1}, nil)
}
