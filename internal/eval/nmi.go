package eval

import (
	"fmt"
	"math"
)

// NMI returns the normalized mutual information between the predicted
// and true labelings, restricted to indices where mask is true (nil mask
// = all positions); truth entries of −1 (unlabelled) are skipped, like
// Accuracy. Normalization is by the arithmetic mean of the two entropies
// (the common "NMI_sum" variant: 2·I(P;T)/(H(P)+H(T))). Degenerate
// cases follow the usual clustering-metric conventions: if both sides
// are single-cluster the score is 1 (perfect agreement carries no
// information but no disagreement either); if exactly one side is
// single-cluster the score is 0; an empty evaluation set scores 0.
func NMI(pred, truth []int, mask []bool) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: NMI length mismatch %d vs %d", len(pred), len(truth)))
	}
	joint := map[[2]int]float64{}
	pCount := map[int]float64{}
	tCount := map[int]float64{}
	n := 0.0
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		if truth[i] < 0 {
			continue
		}
		joint[[2]int{pred[i], truth[i]}]++
		pCount[pred[i]]++
		tCount[truth[i]]++
		n++
	}
	if n == 0 {
		return 0
	}
	hp := entropy(pCount, n)
	ht := entropy(tCount, n)
	if hp == 0 && ht == 0 {
		return 1
	}
	if hp == 0 || ht == 0 {
		return 0
	}
	mi := 0.0
	for pt, c := range joint {
		pxy := c / n
		px := pCount[pt[0]] / n
		py := tCount[pt[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0 { // float round-off on independent labelings
		mi = 0
	}
	return 2 * mi / (hp + ht)
}

func entropy(counts map[int]float64, n float64) float64 {
	h := 0.0
	for _, c := range counts {
		p := c / n
		h -= p * math.Log(p)
	}
	return h
}
