package eval

import (
	"fmt"
	"io"
	"math"
)

// ConfusionMatrix counts (truth, predicted) pairs for single-label
// classification; entry [t][p] is the number of masked nodes with truth t
// predicted as p.
type ConfusionMatrix struct {
	Classes []string
	Counts  [][]int
}

// Confusion builds the matrix over masked positions (nil mask = all),
// skipping truth entries of −1.
func Confusion(pred, truth []int, mask []bool, classes []string) *ConfusionMatrix {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: Confusion length mismatch %d vs %d", len(pred), len(truth)))
	}
	q := len(classes)
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, q)}
	for t := range cm.Counts {
		cm.Counts[t] = make([]int, q)
	}
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		t, p := truth[i], pred[i]
		if t < 0 || t >= q || p < 0 || p >= q {
			continue
		}
		cm.Counts[t][p]++
	}
	return cm
}

// Accuracy returns the trace fraction.
func (cm *ConfusionMatrix) Accuracy() float64 {
	var hit, total float64
	for t, row := range cm.Counts {
		for p, c := range row {
			total += float64(c)
			if t == p {
				hit += float64(c)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// PerClassRecall returns recall per class; classes without truth examples
// report 0.
func (cm *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, len(cm.Classes))
	for t, row := range cm.Counts {
		var total float64
		for _, c := range row {
			total += float64(c)
		}
		if total > 0 {
			out[t] = float64(cm.Counts[t][t]) / total
		}
	}
	return out
}

// Format renders the matrix with class names.
func (cm *ConfusionMatrix) Format(w io.Writer) {
	fmt.Fprintf(w, "%-14s", "truth\\pred")
	for _, c := range cm.Classes {
		fmt.Fprintf(w, " %10.10s", c)
	}
	fmt.Fprintln(w)
	for t, row := range cm.Counts {
		fmt.Fprintf(w, "%-14.14s", cm.Classes[t])
		for _, c := range row {
			fmt.Fprintf(w, " %10d", c)
		}
		fmt.Fprintln(w)
	}
}

// PairedTTest compares two methods' per-trial metrics (paired by trial)
// and returns the t statistic and a conservative significance verdict at
// the 5% level (two-sided, using the t-distribution critical values for
// the given degrees of freedom). Positive t means a's mean exceeds b's.
func PairedTTest(a, b []float64) (t float64, significant bool) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("eval: PairedTTest length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0, false
	}
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	var variance float64
	for _, d := range diffs {
		variance += (d - mean) * (d - mean)
	}
	variance /= float64(n - 1)
	if variance == 0 {
		if mean == 0 {
			return 0, false
		}
		// All differences identical and nonzero: infinitely significant.
		return math.Inf(sign(mean)), true
	}
	t = mean / math.Sqrt(variance/float64(n))
	return t, math.Abs(t) > tCritical95(n-1)
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// tCritical95 returns the two-sided 5% critical value of Student's t for
// the given degrees of freedom (tabulated; large df falls back to the
// normal 1.96).
func tCritical95(df int) float64 {
	table := []float64{ // df 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}
