package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrix(t *testing.T) {
	truth := []int{0, 0, 1, 1, -1}
	pred := []int{0, 1, 1, 1, 0}
	cm := Confusion(pred, truth, nil, []string{"a", "b"})
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 {
		t.Errorf("row a = %v, want [1 1]", cm.Counts[0])
	}
	if cm.Counts[1][1] != 2 {
		t.Errorf("b→b = %d, want 2", cm.Counts[1][1])
	}
	if got := cm.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	recall := cm.PerClassRecall()
	if recall[0] != 0.5 || recall[1] != 1 {
		t.Errorf("recall = %v, want [0.5 1]", recall)
	}
	var buf bytes.Buffer
	cm.Format(&buf)
	if !strings.Contains(buf.String(), "truth\\pred") {
		t.Errorf("Format output: %q", buf.String())
	}
}

func TestConfusionMask(t *testing.T) {
	truth := []int{0, 1}
	pred := []int{0, 1}
	cm := Confusion(pred, truth, []bool{true, false}, []string{"a", "b"})
	if cm.Counts[1][1] != 0 {
		t.Errorf("masked position counted")
	}
}

func TestConfusionEmpty(t *testing.T) {
	cm := Confusion(nil, nil, nil, []string{"a"})
	if cm.Accuracy() != 0 {
		t.Errorf("empty accuracy should be 0")
	}
	if cm.PerClassRecall()[0] != 0 {
		t.Errorf("empty recall should be 0")
	}
}

func TestPairedTTestSignificance(t *testing.T) {
	// Consistent +0.1 advantage with tiny noise: clearly significant.
	a := []float64{0.91, 0.92, 0.90, 0.93, 0.91}
	b := []float64{0.81, 0.82, 0.80, 0.83, 0.81}
	tt, sig := PairedTTest(a, b)
	if !sig || tt <= 0 {
		t.Errorf("consistent advantage should be significant: t=%v sig=%v", tt, sig)
	}
	// Reversed inputs flip the sign.
	tt2, _ := PairedTTest(b, a)
	if tt2 >= 0 {
		t.Errorf("reversed comparison should be negative, got %v", tt2)
	}
}

func TestPairedTTestNoise(t *testing.T) {
	a := []float64{0.5, 0.9, 0.2, 0.8}
	b := []float64{0.6, 0.7, 0.4, 0.7}
	if _, sig := PairedTTest(a, b); sig {
		t.Errorf("noisy overlapping samples should not be significant")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if _, sig := PairedTTest([]float64{1}, []float64{0}); sig {
		t.Errorf("single sample can never be significant")
	}
	if tt, sig := PairedTTest([]float64{1, 1}, []float64{1, 1}); tt != 0 || sig {
		t.Errorf("identical samples: t=%v sig=%v", tt, sig)
	}
	// Constant nonzero difference: infinite t, significant.
	tt, sig := PairedTTest([]float64{1, 1}, []float64{0, 0})
	if !math.IsInf(tt, 1) || !sig {
		t.Errorf("constant difference: t=%v sig=%v", tt, sig)
	}
}

func TestPairedTTestPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	PairedTTest([]float64{1}, []float64{1, 2})
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Errorf("df=1 critical = %v", got)
	}
	if got := tCritical95(100); got != 1.96 {
		t.Errorf("large df critical = %v, want 1.96", got)
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Errorf("df=0 must be infinite")
	}
}
