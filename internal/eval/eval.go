// Package eval provides the evaluation machinery shared by every
// experiment: accuracy and F1 metrics, stratified train/test splits over a
// HIN, and a deterministic multi-trial runner reporting mean ± std, the
// protocol the paper uses (10 random splits per labelled fraction).
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tmark/internal/hin"
)

// Accuracy returns the fraction of positions where pred equals truth,
// restricted to indices where mask is true. A nil mask evaluates all
// positions. Truth entries of −1 (unlabelled) are skipped.
func Accuracy(pred, truth []int, mask []bool) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: Accuracy length mismatch %d vs %d", len(pred), len(truth)))
	}
	hits, total := 0, 0
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		if truth[i] < 0 {
			continue
		}
		total++
		if pred[i] == truth[i] {
			hits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// LabelSetF1 holds per-class counts for multi-label F1.
type labelCounts struct{ tp, fp, fn float64 }

// MacroF1 computes the macro-averaged F1 over classes for multi-label
// predictions, restricted to masked positions (nil mask = all). Classes
// that never occur in either truth or prediction are skipped.
func MacroF1(pred, truth [][]int, q int, mask []bool) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: MacroF1 length mismatch %d vs %d", len(pred), len(truth)))
	}
	counts := make([]labelCounts, q)
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		p := toSet(pred[i])
		t := toSet(truth[i])
		for c := range p {
			if t[c] {
				counts[c].tp++
			} else {
				counts[c].fp++
			}
		}
		for c := range t {
			if !p[c] {
				counts[c].fn++
			}
		}
	}
	var f1Sum float64
	active := 0
	for c := 0; c < q; c++ {
		lc := counts[c]
		if lc.tp+lc.fp+lc.fn == 0 {
			continue
		}
		active++
		if lc.tp == 0 {
			continue // F1 = 0
		}
		precision := lc.tp / (lc.tp + lc.fp)
		recall := lc.tp / (lc.tp + lc.fn)
		f1Sum += 2 * precision * recall / (precision + recall)
	}
	if active == 0 {
		return 0
	}
	return f1Sum / float64(active)
}

// MicroF1 computes the micro-averaged F1 over all classes jointly.
func MicroF1(pred, truth [][]int, mask []bool) float64 {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: MicroF1 length mismatch %d vs %d", len(pred), len(truth)))
	}
	var tp, fp, fn float64
	for i := range pred {
		if mask != nil && !mask[i] {
			continue
		}
		p := toSet(pred[i])
		t := toSet(truth[i])
		for c := range p {
			if t[c] {
				tp++
			} else {
				fp++
			}
		}
		for c := range t {
			if !p[c] {
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

func toSet(labels []int) map[int]bool {
	s := make(map[int]bool, len(labels))
	for _, c := range labels {
		s[c] = true
	}
	return s
}

// Split describes one train/test partition of a graph's nodes.
type Split struct {
	Train []bool // node index → in training set
	Test  []bool
}

// StratifiedSplit samples a fraction of nodes per class into the training
// set, matching the paper's "randomly pick up p% of the examples as the
// training data" protocol while keeping every class represented (at least
// one training node per nonempty class). Nodes without labels always land
// in neither set.
func StratifiedSplit(g *hin.Graph, trainFraction float64, rng *rand.Rand) Split {
	if trainFraction <= 0 || trainFraction >= 1 {
		panic(fmt.Sprintf("eval: train fraction %v out of (0,1)", trainFraction))
	}
	n := g.N()
	split := Split{Train: make([]bool, n), Test: make([]bool, n)}
	byClass := make(map[int][]int)
	for i := 0; i < n; i++ {
		c := g.PrimaryLabel(i)
		if c >= 0 {
			byClass[c] = append(byClass[c], i)
		}
	}
	// Iterate classes in sorted order, NOT map order: each class's
	// shuffle consumes the shared seeded rng, so the iteration order
	// decides which random numbers each class gets. Ranging over the
	// map made the "deterministic" split a per-process coin flip — the
	// golden-file solves drifted whenever the runtime's map order
	// differed from the fixture generator's.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		nodes := byClass[c]
		rng.Shuffle(len(nodes), func(a, b int) { nodes[a], nodes[b] = nodes[b], nodes[a] })
		take := int(math.Round(trainFraction * float64(len(nodes))))
		if take < 1 {
			take = 1
		}
		if take >= len(nodes) {
			take = len(nodes) - 1
			if take < 1 {
				take = 1 // single-node class: train on it, nothing to test
			}
		}
		for p, node := range nodes {
			if p < take {
				split.Train[node] = true
			} else {
				split.Test[node] = true
			}
		}
	}
	return split
}

// MaskLabels returns a copy of g in which only training nodes keep their
// labels; the full ground truth is returned separately. This is how every
// experiment feeds a split into the semi-supervised methods.
func MaskLabels(g *hin.Graph, split Split) (masked *hin.Graph, truth [][]int) {
	truth = make([][]int, g.N())
	masked = hin.New(g.Classes...)
	for i := range g.Nodes {
		node := g.Nodes[i]
		masked.AddNode(node.Name, node.Features)
		truth[i] = append([]int(nil), node.Labels...)
		if split.Train[i] && len(node.Labels) > 0 {
			masked.SetLabels(i, node.Labels...)
		}
	}
	for k := range g.Relations {
		r := g.Relations[k]
		nk := masked.AddRelation(r.Name, r.Directed)
		for _, e := range r.Edges {
			masked.AddWeightedEdge(nk, e.From, e.To, e.Weight)
		}
	}
	return masked, truth
}

// PrimaryTruth flattens multi-label ground truth to primary labels (−1 for
// unlabelled), the form Accuracy consumes.
func PrimaryTruth(truth [][]int) []int {
	out := make([]int, len(truth))
	for i, labels := range truth {
		if len(labels) == 0 {
			out[i] = -1
		} else {
			out[i] = labels[0]
		}
	}
	return out
}

// TrialStats aggregates a metric over repeated trials.
type TrialStats struct {
	Mean, Std float64
	Values    []float64
}

// String renders mean±std with three decimals, the paper's table format.
func (s TrialStats) String() string { return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Std) }

// RunTrials runs fn for each trial with an independent deterministic RNG
// derived from seed, and aggregates the returned metric.
func RunTrials(trials int, seed int64, fn func(trial int, rng *rand.Rand) float64) TrialStats {
	if trials <= 0 {
		panic(fmt.Sprintf("eval: trials %d must be positive", trials))
	}
	stats := TrialStats{Values: make([]float64, trials)}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)*7919))
		stats.Values[trial] = fn(trial, rng)
	}
	var sum float64
	for _, v := range stats.Values {
		sum += v
	}
	stats.Mean = sum / float64(trials)
	var variance float64
	for _, v := range stats.Values {
		d := v - stats.Mean
		variance += d * d
	}
	stats.Std = math.Sqrt(variance / float64(trials))
	return stats
}
