package eval

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/hin"
)

func TestAccuracy(t *testing.T) {
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, -1}
	if got := Accuracy(pred, truth, nil); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3 (unlabelled skipped)", got)
	}
	mask := []bool{true, false, true, true}
	if got := Accuracy(pred, truth, mask); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("masked Accuracy = %v, want 0.5", got)
	}
	if got := Accuracy(nil, nil, nil); got != 0 {
		t.Errorf("empty Accuracy = %v, want 0", got)
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2}, nil)
}

func TestMacroF1Perfect(t *testing.T) {
	pred := [][]int{{0}, {1}, {0, 1}}
	if got := MacroF1(pred, pred, 2, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect MacroF1 = %v, want 1", got)
	}
}

func TestMacroF1Partial(t *testing.T) {
	truth := [][]int{{0}, {1}}
	pred := [][]int{{0}, {0}}
	// Class 0: tp=1 fp=1 fn=0 → P=0.5 R=1 F1=2/3. Class 1: tp=0 → F1=0.
	got := MacroF1(pred, truth, 2, nil)
	want := (2.0/3 + 0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MacroF1 = %v, want %v", got, want)
	}
}

func TestMacroF1SkipsInactiveClasses(t *testing.T) {
	truth := [][]int{{0}}
	pred := [][]int{{0}}
	// q=5 but only class 0 active: average over active classes only.
	if got := MacroF1(pred, truth, 5, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("MacroF1 with inactive classes = %v, want 1", got)
	}
}

func TestMicroF1(t *testing.T) {
	truth := [][]int{{0, 1}, {1}}
	pred := [][]int{{0}, {1, 0}}
	// tp=2 (0@0, 1@1), fp=1 (0@1), fn=1 (1@0). P=2/3 R=2/3 F1=2/3.
	got := MicroF1(pred, truth, nil)
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MicroF1 = %v, want 2/3", got)
	}
	if got := MicroF1([][]int{{1}}, [][]int{{0}}, nil); got != 0 {
		t.Errorf("all-wrong MicroF1 = %v, want 0", got)
	}
}

func labeledGraph(n, q int) *hin.Graph {
	g := hin.New()
	for c := 0; c < q; c++ {
		g.AddClass(string(rune('A' + c)))
	}
	for i := 0; i < n; i++ {
		id := g.AddNode("", []float64{float64(i)})
		g.SetLabels(id, i%q)
	}
	g.AddRelation("r", false)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i-1, i)
	}
	return g
}

func TestStratifiedSplitFractions(t *testing.T) {
	g := labeledGraph(100, 4)
	rng := rand.New(rand.NewSource(1))
	split := StratifiedSplit(g, 0.3, rng)
	train, test := 0, 0
	perClassTrain := make([]int, 4)
	for i := 0; i < g.N(); i++ {
		switch {
		case split.Train[i] && split.Test[i]:
			t.Fatalf("node %d in both sets", i)
		case split.Train[i]:
			train++
			perClassTrain[g.PrimaryLabel(i)]++
		case split.Test[i]:
			test++
		}
	}
	if train+test != 100 {
		t.Errorf("train+test = %d, want 100", train+test)
	}
	if train < 25 || train > 35 {
		t.Errorf("train size %d not near 30", train)
	}
	for c, cnt := range perClassTrain {
		if cnt == 0 {
			t.Errorf("class %d has no training nodes", c)
		}
	}
}

func TestStratifiedSplitSmallFractionKeepsOnePerClass(t *testing.T) {
	g := labeledGraph(40, 4)
	rng := rand.New(rand.NewSource(2))
	split := StratifiedSplit(g, 0.01, rng)
	perClass := make([]int, 4)
	for i := 0; i < g.N(); i++ {
		if split.Train[i] {
			perClass[g.PrimaryLabel(i)]++
		}
	}
	for c, cnt := range perClass {
		if cnt != 1 {
			t.Errorf("class %d train count = %d, want 1", c, cnt)
		}
	}
}

func TestStratifiedSplitPanics(t *testing.T) {
	g := labeledGraph(10, 2)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fraction %v should panic", frac)
				}
			}()
			StratifiedSplit(g, frac, rand.New(rand.NewSource(0)))
		}()
	}
}

func TestMaskLabels(t *testing.T) {
	g := labeledGraph(10, 2)
	rng := rand.New(rand.NewSource(3))
	split := StratifiedSplit(g, 0.5, rng)
	masked, truth := MaskLabels(g, split)
	if masked.N() != g.N() || masked.M() != g.M() || masked.Q() != g.Q() {
		t.Fatalf("masked shape changed")
	}
	for i := 0; i < g.N(); i++ {
		if split.Train[i] {
			if !masked.Labeled(i) {
				t.Errorf("training node %d lost its label", i)
			}
		} else if masked.Labeled(i) {
			t.Errorf("test node %d kept its label", i)
		}
		if len(truth[i]) != len(g.Nodes[i].Labels) {
			t.Errorf("truth for node %d wrong", i)
		}
	}
	// Mutating the masked graph must not touch the original labels.
	masked.SetLabels(0, 1)
	if g.PrimaryLabel(0) != 0 {
		t.Errorf("MaskLabels aliased label storage")
	}
}

func TestPrimaryTruth(t *testing.T) {
	got := PrimaryTruth([][]int{{2, 3}, nil, {0}})
	want := []int{2, -1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PrimaryTruth[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRunTrials(t *testing.T) {
	stats := RunTrials(4, 1, func(trial int, rng *rand.Rand) float64 {
		return float64(trial)
	})
	if math.Abs(stats.Mean-1.5) > 1e-12 {
		t.Errorf("Mean = %v, want 1.5", stats.Mean)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(stats.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", stats.Std, wantStd)
	}
	if stats.String() == "" {
		t.Errorf("empty String()")
	}
}

func TestRunTrialsDeterministicRNG(t *testing.T) {
	collect := func() []float64 {
		s := RunTrials(3, 99, func(trial int, rng *rand.Rand) float64 { return rng.Float64() })
		return s.Values
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial RNGs not deterministic")
		}
	}
	if a[0] == a[1] {
		t.Errorf("different trials should get different RNG streams")
	}
}

func TestRunTrialsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("trials=0 should panic")
		}
	}()
	RunTrials(0, 0, func(int, *rand.Rand) float64 { return 0 })
}
