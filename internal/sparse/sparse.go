// Package sparse provides a compressed sparse row (CSR) matrix with the
// matrix–vector product the solvers need. The dense feature-transition
// matrix W costs n² floats, which caps the network size; with a top-K
// sparsified W this package brings the cost down to O(nK) and keeps the
// T-Mark iteration linear in the number of stored similarities.
package sparse

import (
	"fmt"

	"tmark/internal/vec"
)

// Matrix is an immutable CSR matrix.
type Matrix struct {
	rows, cols int
	rowPtr     []int32 // len rows+1
	colIdx     []int32 // len nnz
	values     []float64
}

// Triplet is one (row, col, value) entry for FromTriplets.
type Triplet struct {
	Row, Col int
	Value    float64
}

// FromTriplets builds a CSR matrix from unordered entries; duplicate
// (row, col) pairs are summed. Entries out of range panic.
//
// The build is a two-pass counting sort: a stable pass by column followed
// by a stable pass by row leaves the entries in (row, col) order, after
// which duplicates are merged in place. Everything is O(nnz + rows + cols)
// with five flat allocations — no per-row maps, whose allocation cost
// dominated construction on large feature matrices.
func FromTriplets(rows, cols int, entries []Triplet) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative shape %dx%d", rows, cols))
	}
	// Validation pass; count the entries that survive the zero-drop and
	// the per-row occupancy for the second counting pass.
	rowCounts := make([]int, rows+1)
	nnz := 0
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		if e.Value == 0 {
			continue
		}
		rowCounts[e.Row+1]++
		nnz++
	}
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int32, rows+1)}
	if nnz == 0 {
		return m
	}
	// Pass 1: stable counting sort by column.
	colCounts := make([]int, cols+1)
	for _, e := range entries {
		if e.Value != 0 {
			colCounts[e.Col+1]++
		}
	}
	for c := 1; c <= cols; c++ {
		colCounts[c] += colCounts[c-1]
	}
	byColRow := make([]int32, nnz)
	byColCol := make([]int32, nnz)
	byColVal := make([]float64, nnz)
	for _, e := range entries {
		if e.Value == 0 {
			continue
		}
		pos := colCounts[e.Col]
		colCounts[e.Col]++
		byColRow[pos] = int32(e.Row)
		byColCol[pos] = int32(e.Col)
		byColVal[pos] = e.Value
	}
	// Pass 2: stable counting sort by row. Stability keeps each row's
	// columns in ascending order from pass 1.
	for r := 1; r <= rows; r++ {
		rowCounts[r] += rowCounts[r-1]
	}
	m.colIdx = make([]int32, nnz)
	m.values = make([]float64, nnz)
	rowOf := make([]int32, nnz)
	for p := 0; p < nnz; p++ {
		r := byColRow[p]
		pos := rowCounts[r]
		rowCounts[r]++
		rowOf[pos] = r
		m.colIdx[pos] = byColCol[p]
		m.values[pos] = byColVal[p]
	}
	// Merge duplicate (row, col) pairs in place and build rowPtr.
	out := 0
	for p := 0; p < nnz; p++ {
		if out > 0 && rowOf[out-1] == rowOf[p] && m.colIdx[out-1] == m.colIdx[p] {
			m.values[out-1] += m.values[p]
			continue
		}
		rowOf[out] = rowOf[p]
		m.colIdx[out] = m.colIdx[p]
		m.values[out] = m.values[p]
		out++
	}
	m.colIdx = m.colIdx[:out]
	m.values = m.values[:out]
	next := 0
	for r := 0; r <= rows; r++ {
		m.rowPtr[r] = int32(next)
		for next < out && int(rowOf[next]) == r {
			next++
		}
	}
	m.rowPtr[rows] = int32(out)
	return m
}

// FromDense converts a dense matrix, dropping entries with |v| <= tol.
func FromDense(d *vec.Matrix, tol float64) *Matrix {
	var entries []Triplet
	for r := 0; r < d.Rows; r++ {
		row := d.Row(r)
		for c, v := range row {
			if v > tol || v < -tol {
				entries = append(entries, Triplet{Row: r, Col: c, Value: v})
			}
		}
	}
	return FromTriplets(d.Rows, d.Cols, entries)
}

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the stored entry count.
func (m *Matrix) NNZ() int { return len(m.values) }

// At returns the entry at (r, c) by binary search within the row.
func (m *Matrix) At(r, c int) float64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := int(m.rowPtr[r]), int(m.rowPtr[r+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(m.colIdx[mid]) < c:
			lo = mid + 1
		case int(m.colIdx[mid]) > c:
			hi = mid
		default:
			return m.values[mid]
		}
	}
	return 0
}

// MulVec computes dst = M·x. dst must have length rows and not alias x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec x length %d, want %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec dst length %d, want %d", len(dst), m.rows))
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		dst[r] = s
	}
}

// ColumnSums returns the per-column sums (useful to verify stochasticity).
func (m *Matrix) ColumnSums() []float64 {
	sums := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			sums[m.colIdx[p]] += m.values[p]
		}
	}
	return sums
}

// Each visits every stored entry in row-major order.
func (m *Matrix) Each(fn func(r, c int, v float64)) {
	for r := 0; r < m.rows; r++ {
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			fn(r, int(m.colIdx[p]), m.values[p])
		}
	}
}
