// Package sparse provides a compressed sparse row (CSR) matrix with the
// matrix–vector product the solvers need. The dense feature-transition
// matrix W costs n² floats, which caps the network size; with a top-K
// sparsified W this package brings the cost down to O(nK) and keeps the
// T-Mark iteration linear in the number of stored similarities.
package sparse

import (
	"fmt"

	"tmark/internal/vec"
)

// Matrix is an immutable CSR matrix.
type Matrix struct {
	rows, cols int
	rowPtr     []int32 // len rows+1
	colIdx     []int32 // len nnz
	values     []float64
}

// Triplet is one (row, col, value) entry for FromTriplets.
type Triplet struct {
	Row, Col int
	Value    float64
}

// FromTriplets builds a CSR matrix from unordered entries; duplicate
// (row, col) pairs are summed. Entries out of range panic.
func FromTriplets(rows, cols int, entries []Triplet) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative shape %dx%d", rows, cols))
	}
	// Bucket by row, then sort-and-merge columns per row.
	perRow := make([]map[int]float64, rows)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		if e.Value == 0 {
			continue
		}
		if perRow[e.Row] == nil {
			perRow[e.Row] = make(map[int]float64)
		}
		perRow[e.Row][e.Col] += e.Value
	}
	m := &Matrix{rows: rows, cols: cols, rowPtr: make([]int32, rows+1)}
	for r := 0; r < rows; r++ {
		m.rowPtr[r] = int32(len(m.values))
		cols := make([]int, 0, len(perRow[r]))
		for c := range perRow[r] {
			cols = append(cols, c)
		}
		insertionSort(cols)
		for _, c := range cols {
			m.colIdx = append(m.colIdx, int32(c))
			m.values = append(m.values, perRow[r][c])
		}
	}
	m.rowPtr[rows] = int32(len(m.values))
	return m
}

// FromDense converts a dense matrix, dropping entries with |v| <= tol.
func FromDense(d *vec.Matrix, tol float64) *Matrix {
	var entries []Triplet
	for r := 0; r < d.Rows; r++ {
		row := d.Row(r)
		for c, v := range row {
			if v > tol || v < -tol {
				entries = append(entries, Triplet{Row: r, Col: c, Value: v})
			}
		}
	}
	return FromTriplets(d.Rows, d.Cols, entries)
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the stored entry count.
func (m *Matrix) NNZ() int { return len(m.values) }

// At returns the entry at (r, c) by binary search within the row.
func (m *Matrix) At(r, c int) float64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := int(m.rowPtr[r]), int(m.rowPtr[r+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(m.colIdx[mid]) < c:
			lo = mid + 1
		case int(m.colIdx[mid]) > c:
			hi = mid
		default:
			return m.values[mid]
		}
	}
	return 0
}

// MulVec computes dst = M·x. dst must have length rows and not alias x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec x length %d, want %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("sparse: MulVec dst length %d, want %d", len(dst), m.rows))
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		dst[r] = s
	}
}

// ColumnSums returns the per-column sums (useful to verify stochasticity).
func (m *Matrix) ColumnSums() []float64 {
	sums := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			sums[m.colIdx[p]] += m.values[p]
		}
	}
	return sums
}

// Each visits every stored entry in row-major order.
func (m *Matrix) Each(fn func(r, c int, v float64)) {
	for r := 0; r < m.rows; r++ {
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			fn(r, int(m.colIdx[p]), m.values[p])
		}
	}
}
