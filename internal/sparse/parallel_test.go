package sparse

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// Reference CSR semantics: duplicates summed, zeros dropped, rows in
// order, columns ascending within a row. The counting-sort build must
// reproduce a brute-force map build exactly.
func TestFromTripletsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		nnz := rng.Intn(4 * rows)
		entries := make([]Triplet, 0, nnz)
		ref := make(map[[2]int]float64)
		for e := 0; e < nnz; e++ {
			tr := Triplet{Row: rng.Intn(rows), Col: rng.Intn(cols), Value: float64(rng.Intn(5))}
			entries = append(entries, tr)
			if tr.Value != 0 {
				ref[[2]int{tr.Row, tr.Col}] += tr.Value
			}
		}
		m := FromTriplets(rows, cols, entries)
		want := 0
		for key, v := range ref {
			want++
			if got := m.At(key[0], key[1]); got != v {
				t.Fatalf("trial %d: At(%d,%d) = %v, want %v", trial, key[0], key[1], got, v)
			}
		}
		if m.NNZ() != want {
			t.Fatalf("trial %d: NNZ = %d, want %d", trial, m.NNZ(), want)
		}
		// Each must visit rows in order with ascending columns.
		lastRow, lastCol := -1, -1
		m.Each(func(r, c int, v float64) {
			if r < lastRow || (r == lastRow && c <= lastCol) {
				t.Fatalf("trial %d: Each out of order at (%d,%d) after (%d,%d)", trial, r, c, lastRow, lastCol)
			}
			lastRow, lastCol = r, c
		})
	}
}

func TestFromTripletsEmptyAndZeroShapes(t *testing.T) {
	if m := FromTriplets(0, 0, nil); m.NNZ() != 0 {
		t.Fatalf("empty matrix NNZ = %d", m.NNZ())
	}
	m := FromTriplets(4, 3, []Triplet{{Row: 2, Col: 1, Value: 0}})
	if m.NNZ() != 0 {
		t.Fatalf("all-zero entries should drop, NNZ = %d", m.NNZ())
	}
	x := []float64{1, 2, 3}
	dst := make([]float64, 4)
	m.MulVec(x, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("empty MulVec dst[%d] = %v", i, v)
		}
	}
}

// Rows are computed whole by a single worker with unchanged arithmetic, so
// the parallel product must be bitwise identical to the serial one — even
// with skewed rows and empty leading/trailing rows.
func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(200), 1+rng.Intn(50)
		var entries []Triplet
		for r := 0; r < rows; r++ {
			if r%5 == 0 {
				continue // empty rows
			}
			k := rng.Intn(8)
			if r == rows/2 {
				k = cols // one heavy row to skew the nnz balance
			}
			for e := 0; e < k; e++ {
				entries = append(entries, Triplet{Row: r, Col: rng.Intn(cols), Value: rng.NormFloat64()})
			}
		}
		m := FromTriplets(rows, cols, entries)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.MulVec(x, want)
		for _, workers := range []int{2, 3, 8} {
			p := par.New(workers)
			s := NewMulScratch(workers)
			got := make([]float64, rows)
			m.MulVecParallel(p, s, x, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers %d: row %d = %v, want %v", trial, workers, i, got[i], want[i])
				}
			}
			p.Close()
		}
	}
}

func TestMulVecParallelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var entries []Triplet
	for e := 0; e < 5000; e++ {
		entries = append(entries, Triplet{Row: rng.Intn(500), Col: rng.Intn(500), Value: rng.Float64()})
	}
	m := FromTriplets(500, 500, entries)
	x := make([]float64, 500)
	dst := make([]float64, 500)
	for i := range x {
		x[i] = rng.Float64()
	}
	p := par.New(4)
	defer p.Close()
	s := NewMulScratch(4)
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecParallel(p, s, x, dst)
	}); allocs != 0 {
		t.Errorf("MulVecParallel allocates %v per call, want 0", allocs)
	}
}
