package sparse

// Multi-right-hand-side (blocked) CSR product: the batched solver's
// SpMV → SpMM upgrade. Each stored entry is read once per iteration and
// applied to every active class column, so the kernel's memory traffic
// is independent of the class count. Per column the entries of a row are
// accumulated in the same ascending order as MulVec, so column c of the
// blocked result is bitwise equal to MulVec run on column c alone.

import (
	"fmt"
	"sync"

	"tmark/internal/obs"
	"tmark/internal/par"
)

// MulVecBatch computes the blocked product dst = M·x for b interleaved
// right-hand sides: x is a cols×b block, dst a rows×b block (node-major,
// stride b), and dst must not alias x.
func (m *Matrix) MulVecBatch(x, dst []float64, b int) {
	if b <= 0 {
		panic(fmt.Sprintf("sparse: MulVecBatch column count %d", b))
	}
	if len(x) < m.cols*b {
		panic(fmt.Sprintf("sparse: MulVecBatch x block %d, want %d", len(x), m.cols*b))
	}
	if len(dst) < m.rows*b {
		panic(fmt.Sprintf("sparse: MulVecBatch dst block %d, want %d", len(dst), m.rows*b))
	}
	m.mulBatchRows(x, dst, b, 0, m.rows)
}

// mulBatchRows computes rows [lo, hi) of the blocked product; every
// output cell is owned by exactly one caller, so disjoint row ranges can
// run concurrently.
func (m *Matrix) mulBatchRows(x, dst []float64, b, lo, hi int) {
	for r := lo; r < hi; r++ {
		out := dst[r*b : (r+1)*b]
		for c := range out {
			out[c] = 0
		}
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			v := m.values[p]
			xr := x[int(m.colIdx[p])*b:]
			for c := range out {
				out[c] += v * xr[c]
			}
		}
	}
}

// MulBatchScratch holds the reusable dispatch state of
// MulVecBatchParallel; see MulScratch for the contract.
type MulBatchScratch struct {
	shards int
	task   mulBatchTask
	wg     sync.WaitGroup

	// Probe, when non-nil, counts MulVecBatchParallel calls, the stored
	// entries they stream, and the columns they apply them to.
	Probe *obs.Probe
}

// NewMulBatchScratch returns batch scratch for the given shard count.
// shards < 1 is treated as 1.
func NewMulBatchScratch(shards int) *MulBatchScratch {
	if shards < 1 {
		shards = 1
	}
	return &MulBatchScratch{shards: shards}
}

type mulBatchTask struct {
	m      *Matrix
	x, dst []float64
	b      int
}

func (t *mulBatchTask) RunShard(shard, shards int) {
	m := t.m
	nnz := len(m.values)
	lo := m.rowAtNNZ(shard * nnz / shards)
	hi := m.rowAtNNZ((shard + 1) * nnz / shards)
	if shard == shards-1 {
		hi = m.rows // trailing empty rows belong to the last shard
	}
	m.mulBatchRows(t.x, t.dst, t.b, lo, hi)
}

// MulVecBatchParallel is MulVecBatch with the rows sharded across the
// pool by stored-entry count — the same split as MulVecParallel, whose
// boundaries depend only on the matrix and shard count, never on b. Each
// row is computed by exactly one worker with the serial arithmetic, so
// the result is bitwise identical to MulVecBatch. A nil/serial pool or
// single-shard scratch falls back to the serial path.
func (m *Matrix) MulVecBatchParallel(p *par.Pool, s *MulBatchScratch, x, dst []float64, b int) {
	if p.Serial() || s == nil || s.shards <= 1 || m.rows == 0 {
		m.MulVecBatch(x, dst, b)
		return
	}
	if b <= 0 || len(x) < m.cols*b || len(dst) < m.rows*b {
		panic("sparse: MulVecBatchParallel block length mismatch")
	}
	s.Probe.ObserveCols(len(m.values), b)
	s.task.m, s.task.x, s.task.dst, s.task.b = m, x, dst, b
	p.Run(s.shards, &s.task, &s.wg)
	s.task.x, s.task.dst = nil, nil
}
