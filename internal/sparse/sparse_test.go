package sparse

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

func TestFromTripletsBasics(t *testing.T) {
	m := FromTriplets(3, 4, []Triplet{
		{0, 1, 2},
		{2, 3, 5},
		{0, 1, 1}, // duplicate: summed
		{1, 0, 0}, // zero: dropped
	})
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 1); got != 3 {
		t.Errorf("At(0,1) = %v, want 3 (summed duplicates)", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %v, want 0", got)
	}
	if got := m.At(2, 3); got != 5 {
		t.Errorf("At(2,3) = %v, want 5", got)
	}
}

func TestFromTripletsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative shape": func() { FromTriplets(-1, 2, nil) },
		"entry range":    func() { FromTriplets(2, 2, []Triplet{{5, 0, 1}}) },
		"at range":       func() { FromTriplets(1, 1, nil).At(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		d := vec.NewMatrix(rows, cols)
		for i := range d.Data {
			if rng.Float64() < 0.3 {
				d.Data[i] = rng.NormFloat64()
			}
		}
		s := FromDense(d, 0)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		got := make([]float64, rows)
		d.MulVec(x, want)
		s.MulVec(x, got)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Fatalf("trial %d: sparse MulVec[%d] = %v, dense %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestFromDenseDropsBelowTolerance(t *testing.T) {
	d := vec.FromRows([][]float64{{1e-12, 1}, {-1e-12, -2}})
	s := FromDense(d, 1e-9)
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 after tolerance drop", s.NNZ())
	}
}

func TestColumnSums(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 0.5}, {1, 0, 0.5}, {0, 1, 1}})
	sums := m.ColumnSums()
	if sums[0] != 1 || sums[1] != 1 {
		t.Errorf("ColumnSums = %v, want [1 1]", sums)
	}
}

func TestEachOrder(t *testing.T) {
	m := FromTriplets(2, 3, []Triplet{{1, 2, 3}, {0, 1, 1}, {1, 0, 2}})
	var visits [][3]float64
	m.Each(func(r, c int, v float64) { visits = append(visits, [3]float64{float64(r), float64(c), v}) })
	want := [][3]float64{{0, 1, 1}, {1, 0, 2}, {1, 2, 3}}
	if len(visits) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(visits), len(want))
	}
	for i := range want {
		if visits[i] != want[i] {
			t.Errorf("visit %d = %v, want %v", i, visits[i], want[i])
		}
	}
}

func TestMulVecPanics(t *testing.T) {
	m := FromTriplets(2, 2, nil)
	for name, f := range map[string]func(){
		"x length":   func() { m.MulVec([]float64{1}, []float64{0, 0}) },
		"dst length": func() { m.MulVec([]float64{1, 2}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}
