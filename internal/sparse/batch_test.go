package sparse

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// skewedMatrix builds a CSR matrix with empty rows and one heavy row, the
// shapes that stress the nnz-balanced shard split.
func skewedMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	var entries []Triplet
	for r := 0; r < rows; r++ {
		if r%5 == 0 {
			continue
		}
		k := rng.Intn(8)
		if r == rows/2 {
			k = cols
		}
		for e := 0; e < k; e++ {
			entries = append(entries, Triplet{Row: r, Col: rng.Intn(cols), Value: rng.NormFloat64()})
		}
	}
	return FromTriplets(rows, cols, entries)
}

// Column c of the blocked product must be bitwise equal to MulVec on
// column c alone, serial and parallel, for every worker count.
func TestMulVecBatchMatchesSingleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(200), 1+rng.Intn(50)
		m := skewedMatrix(rng, rows, cols)
		for _, b := range []int{1, 3, 6} {
			x := make([]float64, cols*b)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			dst := make([]float64, rows*b)
			m.MulVecBatch(x, dst, b)
			check := func(label string, got []float64) {
				t.Helper()
				for c := 0; c < b; c++ {
					xc := make([]float64, cols)
					for j := range xc {
						xc[j] = x[j*b+c]
					}
					want := make([]float64, rows)
					m.MulVec(xc, want)
					for i := range want {
						if got[i*b+c] != want[i] {
							t.Fatalf("trial %d b=%d col %d %s: row %d = %v, want %v",
								trial, b, c, label, i, got[i*b+c], want[i])
						}
					}
				}
			}
			check("serial", dst)
			for _, workers := range []int{2, 3, 8} {
				p := par.New(workers)
				s := NewMulBatchScratch(workers)
				gotP := make([]float64, rows*b)
				m.MulVecBatchParallel(p, s, x, gotP, b)
				check("parallel", gotP)
				p.Close()
			}
		}
	}
}

// Steady-state blocked products must not allocate.
func TestMulVecBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var entries []Triplet
	for e := 0; e < 5000; e++ {
		entries = append(entries, Triplet{Row: rng.Intn(500), Col: rng.Intn(500), Value: rng.Float64()})
	}
	m := FromTriplets(500, 500, entries)
	const b = 4
	x := make([]float64, 500*b)
	dst := make([]float64, 500*b)
	for i := range x {
		x[i] = rng.Float64()
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecBatch(x, dst, b)
	}); allocs != 0 {
		t.Errorf("MulVecBatch allocates %v per call, want 0", allocs)
	}
	p := par.New(4)
	defer p.Close()
	s := NewMulBatchScratch(4)
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecBatchParallel(p, s, x, dst, b)
	}); allocs != 0 {
		t.Errorf("MulVecBatchParallel allocates %v per call, want 0", allocs)
	}
}
