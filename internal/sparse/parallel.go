package sparse

// Parallel row-range MulVec. CSR rows are independent — every output
// element is owned by exactly one shard — so there is no reduction and no
// per-worker buffer; shards only need balanced row ranges, which are cut
// by stored-entry count rather than row count so skewed matrices still
// load-balance.

import (
	"sync"

	"tmark/internal/obs"
	"tmark/internal/par"
)

// MulScratch holds the reusable dispatch state of MulVecParallel. Build
// one per solver run with NewMulScratch; steady-state calls then allocate
// nothing. A scratch must not be shared by concurrent calls.
type MulScratch struct {
	shards int
	task   mulTask
	wg     sync.WaitGroup

	// Probe, when non-nil, counts MulVecParallel calls and the stored
	// entries they touch; nil disables observation.
	Probe *obs.Probe
}

// NewMulScratch returns scratch for the given shard count (typically the
// worker-pool size). shards < 1 is treated as 1.
func NewMulScratch(shards int) *MulScratch {
	if shards < 1 {
		shards = 1
	}
	return &MulScratch{shards: shards}
}

type mulTask struct {
	m      *Matrix
	x, dst []float64
}

func (t *mulTask) RunShard(shard, shards int) {
	m := t.m
	nnz := len(m.values)
	lo := m.rowAtNNZ(shard * nnz / shards)
	hi := m.rowAtNNZ((shard + 1) * nnz / shards)
	if shard == shards-1 {
		hi = m.rows // trailing empty rows belong to the last shard
	}
	x, dst := t.x, t.dst
	for r := lo; r < hi; r++ {
		var s float64
		for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		dst[r] = s
	}
}

// rowAtNNZ returns the smallest row whose rowPtr is >= target. Because the
// targets s·nnz/shards are nondecreasing in s, consecutive shards receive
// disjoint row ranges that tile [0, rows).
func (m *Matrix) rowAtNNZ(target int) int {
	lo, hi := 0, m.rows
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(m.rowPtr[mid]) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MulVecParallel computes dst = M·x like MulVec, with the rows sharded
// across the pool by stored-entry count. Each row is computed by exactly
// one worker with the same arithmetic as the serial path, so the result is
// bitwise identical to MulVec. A nil/serial pool or single-shard scratch
// falls back to the serial path.
func (m *Matrix) MulVecParallel(p *par.Pool, s *MulScratch, x, dst []float64) {
	if p.Serial() || s == nil || s.shards <= 1 || m.rows == 0 {
		m.MulVec(x, dst)
		return
	}
	if len(x) != m.cols {
		panic("sparse: MulVecParallel x length mismatch")
	}
	if len(dst) != m.rows {
		panic("sparse: MulVecParallel dst length mismatch")
	}
	s.Probe.Observe(len(m.values))
	s.task.m, s.task.x, s.task.dst = m, x, dst
	p.Run(s.shards, &s.task, &s.wg)
	s.task.x, s.task.dst = nil, nil
}
