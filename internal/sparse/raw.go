package sparse

// Raw access to the CSR storage for the artifact codec: Raw exposes the
// flat arrays for serialisation and FromRaw re-wraps externally owned
// (typically memory-mapped) arrays after validating every invariant the
// kernels assume. The arrays are aliased, never copied — FromRaw inputs
// must stay immutable and alive for the matrix's lifetime.

import "fmt"

// Raw is the flat CSR storage of a Matrix.
type Raw struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1, nondecreasing, last == nnz
	ColIdx     []int32 // len nnz, strictly ascending within each row
	Values     []float64
}

// Raw exposes the matrix's storage for serialisation. The slices alias
// the matrix — callers must not mutate them.
func (m *Matrix) Raw() Raw {
	return Raw{Rows: m.rows, Cols: m.cols, RowPtr: m.rowPtr, ColIdx: m.colIdx, Values: m.values}
}

// FromRaw wraps externally owned CSR arrays as a Matrix, validating the
// row-pointer monotonicity, the per-row column ordering and the index
// ranges that MulVec dereferences without checks of its own.
func FromRaw(raw Raw) (*Matrix, error) {
	if raw.Rows < 0 || raw.Cols < 0 {
		return nil, fmt.Errorf("sparse: raw shape %dx%d negative", raw.Rows, raw.Cols)
	}
	if len(raw.RowPtr) != raw.Rows+1 {
		return nil, fmt.Errorf("sparse: raw rowPtr length %d, want %d", len(raw.RowPtr), raw.Rows+1)
	}
	nnz := len(raw.Values)
	if len(raw.ColIdx) != nnz {
		return nil, fmt.Errorf("sparse: raw colIdx length %d, values %d", len(raw.ColIdx), nnz)
	}
	if raw.RowPtr[0] != 0 || int(raw.RowPtr[raw.Rows]) != nnz {
		return nil, fmt.Errorf("sparse: raw rowPtr bounds [%d, %d], want [0, %d]",
			raw.RowPtr[0], raw.RowPtr[raw.Rows], nnz)
	}
	for r := 0; r < raw.Rows; r++ {
		lo, hi := raw.RowPtr[r], raw.RowPtr[r+1]
		if lo > hi || int(hi) > nnz {
			return nil, fmt.Errorf("sparse: raw rowPtr not monotone at row %d (%d > %d)", r, lo, hi)
		}
		for p := lo; p < hi; p++ {
			c := raw.ColIdx[p]
			if c < 0 || int(c) >= raw.Cols {
				return nil, fmt.Errorf("sparse: raw column %d out of %d at row %d", c, raw.Cols, r)
			}
			if p > lo && c <= raw.ColIdx[p-1] {
				return nil, fmt.Errorf("sparse: raw columns not strictly ascending in row %d", r)
			}
		}
	}
	return &Matrix{rows: raw.Rows, cols: raw.Cols, rowPtr: raw.RowPtr, colIdx: raw.ColIdx, values: raw.Values}, nil
}
