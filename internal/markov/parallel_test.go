package markov

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

func testFeatures(rng *rand.Rand, n, d int) [][]float64 {
	f := make([][]float64, n)
	for i := range f {
		f[i] = make([]float64, d)
		for j := range f[i] {
			if rng.Float64() < 0.5 {
				f[i][j] = rng.Float64()
			}
		}
	}
	return f
}

// The parallel feature-channel builds must be bitwise identical to the
// serial ones: every column is computed independently with unchanged
// arithmetic.
func TestFeatureTransitionParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := testFeatures(rng, 40, 6)
	want := FeatureTransition(f)
	p := par.New(4)
	defer p.Close()
	got := FeatureTransitionPar(f, p)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("cell %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSparseFeatureTransitionCSRParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := testFeatures(rng, 35, 5)
	for _, topK := range []int{1, 4, 10, 40} {
		want := SparseFeatureTransitionCSR(f, topK)
		p := par.New(3)
		got := SparseFeatureTransitionCSRPar(f, topK, p)
		p.Close()
		if want.NNZ() != got.NNZ() {
			t.Fatalf("topK=%d: NNZ %d, want %d", topK, got.NNZ(), want.NNZ())
		}
		for r := 0; r < 35; r++ {
			for c := 0; c < 35; c++ {
				if want.At(r, c) != got.At(r, c) {
					t.Fatalf("topK=%d: At(%d,%d) = %v, want %v", topK, r, c, got.At(r, c), want.At(r, c))
				}
			}
		}
	}
}
