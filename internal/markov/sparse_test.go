package markov

import (
	"math"
	"math/rand"
	"testing"
)

func TestKthLargest(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 5}, {2, 4}, {3, 3}, {5, 1},
		{0, 5},  // clamped to 1
		{99, 1}, // clamped to len
	}
	for _, c := range cases {
		if got := kthLargest(xs, c.k); got != c.want {
			t.Errorf("kthLargest(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 || xs[4] != 5 {
		t.Errorf("kthLargest mutated its input: %v", xs)
	}
}

func TestSparseFeatureTransitionTopK(t *testing.T) {
	features := [][]float64{
		{1, 0, 0},
		{0.9, 0.1, 0},
		{0.8, 0.2, 0},
		{0, 0, 1},
		{0, 0.1, 1},
	}
	w := SparseFeatureTransition(features, 2)
	if !w.IsColumnStochastic(1e-9) {
		t.Fatalf("sparse W must stay column-stochastic")
	}
	// Each column keeps at most topK strictly-positive entries (ties can
	// add more; none here).
	for j := 0; j < w.Cols; j++ {
		nonzero := 0
		for i := 0; i < w.Rows; i++ {
			if w.At(i, j) > 0 {
				nonzero++
			}
		}
		if nonzero > 3 {
			t.Errorf("column %d kept %d entries, want <= topK+ties", j, nonzero)
		}
	}
}

func TestSparseFeatureTransitionFallsBackToDense(t *testing.T) {
	features := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	dense := FeatureTransition(features)
	for _, k := range []int{0, -1, 3, 99} {
		sparse := SparseFeatureTransition(features, k)
		for i := range dense.Data {
			if math.Abs(sparse.Data[i]-dense.Data[i]) > 1e-12 {
				t.Fatalf("topK=%d should be the dense matrix", k)
			}
		}
	}
}

func TestSparseFeatureTransitionStochasticProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		dim := 1 + rng.Intn(6)
		features := make([][]float64, n)
		for i := range features {
			features[i] = make([]float64, dim)
			for d := range features[i] {
				if rng.Float64() < 0.7 {
					features[i][d] = rng.Float64()
				}
			}
		}
		k := 1 + rng.Intn(n)
		w := SparseFeatureTransition(features, k)
		if !w.IsColumnStochastic(1e-8) {
			t.Fatalf("trial %d: sparse W (k=%d) not stochastic", trial, k)
		}
	}
}

func TestSparseFeatureTransitionCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, dim := 25, 6
	features := make([][]float64, n)
	for i := range features {
		features[i] = make([]float64, dim)
		for d := range features[i] {
			features[i][d] = rng.Float64()
		}
	}
	const k = 5
	dense := SparseFeatureTransition(features, k)
	csr := SparseFeatureTransitionCSR(features, k)
	if csr.NNZ() > n*(k+3) {
		t.Errorf("CSR kept %d entries for topK=%d over %d nodes", csr.NNZ(), k, n)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make([]float64, n)
	got := make([]float64, n)
	dense.MulVec(x, want)
	csr.MulVec(x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("CSR MulVec[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestSparseFeatureTransitionCSRPanicsOnDenseRequest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("topK=0 should panic (use FeatureTransition)")
		}
	}()
	SparseFeatureTransitionCSR([][]float64{{1}}, 0)
}
