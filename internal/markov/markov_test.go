package markov

import (
	"math"
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

func twoState() *Chain {
	// P = [[0.9, 0.5], [0.1, 0.5]] column-stochastic; stationary = [5/6, 1/6].
	p := vec.FromRows([][]float64{{0.9, 0.5}, {0.1, 0.5}})
	c, err := NewChain(p, 1e-12)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewChainRejects(t *testing.T) {
	if _, err := NewChain(vec.NewMatrix(2, 3), 1e-9); err == nil {
		t.Errorf("non-square matrix should be rejected")
	}
	bad := vec.FromRows([][]float64{{0.5, 0.5}, {0.4, 0.5}})
	if _, err := NewChain(bad, 1e-9); err == nil {
		t.Errorf("non-stochastic matrix should be rejected")
	}
}

func TestStationaryTwoState(t *testing.T) {
	c := twoState()
	x, res := c.Stationary(1e-12, 0)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	want := []float64{5.0 / 6, 1.0 / 6}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Errorf("stationary[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if !vec.IsStochastic(x, 1e-9) {
		t.Errorf("stationary distribution must be stochastic")
	}
}

func TestStationaryIdentityConvergesImmediately(t *testing.T) {
	c, _ := NewChain(vec.Identity(3), 1e-12)
	x, res := c.Stationary(1e-12, 0)
	if !res.Converged || res.Iterations != 1 {
		t.Errorf("identity chain should converge in one step: %+v", res)
	}
	for _, v := range x {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("identity stationary = %v, want uniform", x)
		}
	}
}

func TestStationaryPeriodicChainDoesNotConverge(t *testing.T) {
	// A two-cycle flips the distribution forever.
	p := vec.FromRows([][]float64{{0, 1}, {1, 0}})
	c, _ := NewChain(p, 1e-12)
	x, res := c.Stationary(1e-12, 50)
	// Starting from uniform the iteration is actually at the fixed point.
	if !res.Converged {
		t.Fatalf("uniform start on a doubly stochastic chain is stationary")
	}
	_ = x
	// But an RWR with a biased restart breaks periodicity and converges.
	restart := vec.Vector{1, 0}
	y, res2 := c.RandomWalkWithRestart(0.2, restart, 1e-12, 500)
	if !res2.Converged {
		t.Fatalf("RWR should converge on periodic chain: %+v", res2)
	}
	if y[0] <= y[1] {
		t.Errorf("restart bias should favour state 0: %v", y)
	}
}

func TestRandomWalkWithRestartAlphaOneIsRestart(t *testing.T) {
	c := twoState()
	restart := vec.Vector{0.3, 0.7}
	x, res := c.RandomWalkWithRestart(1, restart, 1e-12, 10)
	if !res.Converged {
		t.Fatalf("alpha=1 should converge instantly")
	}
	for i := range restart {
		if math.Abs(x[i]-restart[i]) > 1e-12 {
			t.Errorf("alpha=1 stationary = %v, want restart %v", x, restart)
		}
	}
}

func TestRandomWalkWithRestartPanics(t *testing.T) {
	c := twoState()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("alpha>1", func() { c.RandomWalkWithRestart(1.5, vec.Vector{1, 0}, 0, 0) })
	mustPanic("restart length", func() { c.RandomWalkWithRestart(0.5, vec.Vector{1}, 0, 0) })
}

func TestFeatureTransitionStochastic(t *testing.T) {
	features := [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{0, 0, 1},
		{0, 0, 0}, // featureless: its column must become uniform
	}
	w := FeatureTransition(features)
	if !w.IsColumnStochastic(1e-9) {
		t.Fatalf("W must be column-stochastic")
	}
	// Featureless node's column is uniform.
	for i := 0; i < 4; i++ {
		if math.Abs(w.At(i, 3)-0.25) > 1e-12 {
			t.Errorf("W[%d,3] = %v, want 0.25", i, w.At(i, 3))
		}
	}
	// Similar nodes get more mass than dissimilar ones.
	if w.At(0, 1) <= w.At(2, 1) {
		t.Errorf("similar node should out-weigh orthogonal: %v vs %v", w.At(0, 1), w.At(2, 1))
	}
}

// Property: RWR output is stochastic for random chains, restarts and alpha.
func TestRWRStochasticProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		p := vec.NewMatrix(n, n)
		for i := range p.Data {
			p.Data[i] = rng.Float64()
		}
		p.NormalizeColumns(true)
		c, err := NewChain(p, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		restart := make(vec.Vector, n)
		restart[rng.Intn(n)] = 1
		alpha := rng.Float64()
		x, _ := c.RandomWalkWithRestart(alpha, restart, 1e-10, 200)
		if !vec.IsStochastic(x, 1e-8) {
			t.Fatalf("trial %d: RWR left the simplex: sum=%v", trial, vec.Sum(x))
		}
	}
}

// The stationary distribution satisfies x = P x.
func TestStationaryIsFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	p := vec.NewMatrix(n, n)
	for i := range p.Data {
		p.Data[i] = rng.Float64() + 0.05 // strictly positive → ergodic
	}
	p.NormalizeColumns(true)
	c, _ := NewChain(p, 1e-9)
	x, res := c.Stationary(1e-13, 2000)
	if !res.Converged {
		t.Fatalf("positive chain must converge")
	}
	px := vec.New(n)
	c.P.MulVec(x, px)
	if d := vec.Diff1(x, px); d > 1e-9 {
		t.Errorf("fixed-point residual %v too large", d)
	}
}

func TestResultTraceMonotoneTail(t *testing.T) {
	c := twoState()
	_, res := c.Stationary(1e-14, 500)
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
	}
	// For an ergodic 2-state chain the residual should shrink geometrically;
	// check the last residual is below the first.
	if res.Trace[len(res.Trace)-1] >= res.Trace[0] {
		t.Errorf("residual did not decrease: first %v last %v", res.Trace[0], res.Trace[len(res.Trace)-1])
	}
}
