// Package markov provides the classic (matrix) Markov-chain machinery that
// T-Mark composes with its tensor chains: column-stochastic transition
// matrices, power iteration to a stationary distribution, and personalised
// PageRank (random walk with restart). The feature-similarity channel W of
// the paper's eq. (9) is built here.
package markov

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tmark/internal/obs"
	"tmark/internal/par"
	"tmark/internal/sparse"
	"tmark/internal/vec"
)

// DefaultTolerance is the convergence threshold used when a caller passes
// a nonpositive tolerance.
const DefaultTolerance = 1e-10

// DefaultMaxIterations bounds the power iterations when a caller passes a
// nonpositive limit.
const DefaultMaxIterations = 1000

// Chain is a finite Markov chain with a column-stochastic transition
// matrix P: P[i][j] is the probability of moving to state i from state j.
type Chain struct {
	P *vec.Matrix

	// Probe, when non-nil, counts power-iteration steps and the matrix
	// cells each step touches; the nil default disables observation at the
	// cost of one branch per iteration.
	Probe *obs.Probe
}

// NewChain validates that p is square and column-stochastic within tol and
// wraps it in a Chain.
func NewChain(p *vec.Matrix, tol float64) (*Chain, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("markov: transition matrix %dx%d not square", p.Rows, p.Cols)
	}
	if !p.IsColumnStochastic(tol) {
		return nil, errors.New("markov: transition matrix not column-stochastic")
	}
	return &Chain{P: p}, nil
}

// FeatureTransition builds the paper's feature channel: the cosine
// similarity matrix C of the node features, column-normalised into the
// transition matrix W (eq. 9). Zero columns (featureless nodes nobody is
// similar to) become uniform, keeping W stochastic.
func FeatureTransition(features [][]float64) *vec.Matrix {
	return FeatureTransitionPar(features, nil)
}

// FeatureTransitionPar is FeatureTransition with the O(n²·d) cosine build
// and the column normalisation spread over the pool; a nil pool runs
// serially. The result is bitwise identical to the serial build. The
// build duration is published to the default obs registry
// (tmark_build_w_seconds_total), a once-per-model cost.
func FeatureTransitionPar(features [][]float64, p *par.Pool) *vec.Matrix {
	start := time.Now()
	w := vec.CosineMatrixPar(features, p)
	w.NormalizeColumnsPar(true, p)
	obs.Default().Timer("tmark_build_w").ObserveSince(start)
	return w
}

// SparseFeatureTransition builds the feature channel keeping only the
// topK most similar nodes per column before normalising. Dense cosine
// similarity over bag-of-words features is dominated by a background level
// that makes W nearly uniform; restricting each column to its nearest
// neighbours concentrates the walk on genuinely similar nodes. topK <= 0
// falls back to the dense variant.
func SparseFeatureTransition(features [][]float64, topK int) *vec.Matrix {
	return SparseFeatureTransitionPar(features, topK, nil)
}

// SparseFeatureTransitionPar is SparseFeatureTransition with the cosine
// build, the per-column top-K thresholding, and the normalisation spread
// over the pool; a nil pool runs serially. Columns are thresholded
// independently, so the result is bitwise identical to the serial build.
// Like FeatureTransitionPar, the build duration is published to the
// default obs registry.
func SparseFeatureTransitionPar(features [][]float64, topK int, p *par.Pool) *vec.Matrix {
	start := time.Now()
	defer obs.Default().Timer("tmark_build_w").ObserveSince(start)
	w := vec.CosineMatrixPar(features, p)
	if topK <= 0 || topK >= w.Rows {
		w.NormalizeColumnsPar(true, p)
		return w
	}
	p.For(w.Cols, func(lo, hi int) {
		col := make([]float64, w.Rows)
		for j := lo; j < hi; j++ {
			for i := 0; i < w.Rows; i++ {
				col[i] = w.At(i, j)
			}
			// Keep entries >= the topK-th largest; zero the rest.
			threshold := kthLargest(col, topK)
			for i := 0; i < w.Rows; i++ {
				if w.At(i, j) < threshold {
					w.Set(i, j, 0)
				}
			}
		}
	})
	w.NormalizeColumnsPar(true, p)
	return w
}

// SparseFeatureTransitionCSR builds the top-K feature transition as a
// compressed sparse row matrix: the construction is still O(n²·d) (every
// cosine must be examined once) but the stored channel is O(n·K), which is
// what lets the solver iterate on large networks. topK <= 0 is rejected —
// use FeatureTransition for the dense channel.
func SparseFeatureTransitionCSR(features [][]float64, topK int) *sparse.Matrix {
	return SparseFeatureTransitionCSRPar(features, topK, nil)
}

// SparseFeatureTransitionCSRPar is SparseFeatureTransitionCSR with the
// dense construction phases spread over the pool; a nil pool runs
// serially.
func SparseFeatureTransitionCSRPar(features [][]float64, topK int, p *par.Pool) *sparse.Matrix {
	if topK <= 0 {
		panic("markov: SparseFeatureTransitionCSR needs topK > 0")
	}
	dense := SparseFeatureTransitionPar(features, topK, p)
	return sparse.FromDense(dense, 0)
}

// kthLargest returns the k-th largest value of xs (1-based) without
// mutating xs; k is clamped to len(xs).
func kthLargest(xs []float64, k int) float64 {
	if k <= 0 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	cp := append([]float64(nil), xs...)
	// Quickselect would be asymptotically better; columns here are short
	// enough that a sort keeps the code obvious.
	sortDescending(cp)
	return cp[k-1]
}

func sortDescending(xs []float64) {
	sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
}

// Result reports how a fixed-point iteration terminated.
type Result struct {
	Iterations int
	Residual   float64 // L1 distance between the last two iterates
	Converged  bool
	Trace      []float64 // residual after each iteration
}

// Stationary runs power iteration x ← P·x from the uniform distribution
// until the L1 change falls below tol, returning the stationary
// distribution estimate and the iteration diagnostics.
func (c *Chain) Stationary(tol float64, maxIter int) (vec.Vector, Result) {
	n := c.P.Rows
	x := vec.Uniform(n)
	return c.iterate(x, func(cur, next vec.Vector) {
		c.P.MulVec(cur, next)
	}, tol, maxIter)
}

// RandomWalkWithRestart computes the stationary distribution of
// x ← (1−α)·P·x + α·restart, i.e. personalised PageRank with restart
// probability alpha and restart distribution restart (must sum to one).
func (c *Chain) RandomWalkWithRestart(alpha float64, restart vec.Vector, tol float64, maxIter int) (vec.Vector, Result) {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("markov: restart probability %v out of [0,1]", alpha))
	}
	if len(restart) != c.P.Rows {
		panic(fmt.Sprintf("markov: restart length %d, want %d", len(restart), c.P.Rows))
	}
	x := vec.Clone(restart)
	return c.iterate(x, func(cur, next vec.Vector) {
		c.P.MulVec(cur, next)
		vec.Scale(1-alpha, next)
		vec.Axpy(alpha, restart, next)
	}, tol, maxIter)
}

func (c *Chain) iterate(x vec.Vector, step func(cur, next vec.Vector), tol float64, maxIter int) (vec.Vector, Result) {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	next := vec.New(len(x))
	var res Result
	for it := 1; it <= maxIter; it++ {
		step(x, next)
		c.Probe.Observe(c.P.Rows * c.P.Cols)
		res.Iterations = it
		res.Residual = vec.Diff1(x, next)
		res.Trace = append(res.Trace, res.Residual)
		x, next = next, x
		if res.Residual < tol {
			res.Converged = true
			break
		}
	}
	return x, res
}
