// Package classify provides the from-scratch base learners the relational
// baselines are built on: multinomial logistic regression, multinomial
// naive Bayes, a linear SVM (Pegasos) and cosine k-nearest-neighbours.
// All trainers are deterministic given their seed, which keeps every
// experiment in this repository reproducible.
package classify

import (
	"errors"
	"fmt"
)

// Model is a trained multiclass classifier.
type Model interface {
	// Predict returns the most probable class for x.
	Predict(x []float64) int
	// Probabilities returns a distribution over the classes for x.
	Probabilities(x []float64) []float64
	// Classes returns the number of classes the model was trained on.
	Classes() int
}

// Trainer fits a Model to a design matrix X (one row per example), integer
// labels y in [0, q) and class count q.
type Trainer interface {
	Train(X [][]float64, y []int, q int) (Model, error)
}

// validateTrainingSet performs the shared sanity checks for all trainers.
func validateTrainingSet(X [][]float64, y []int, q int) (dim int, err error) {
	if len(X) == 0 {
		return 0, errors.New("classify: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("classify: %d examples but %d labels", len(X), len(y))
	}
	if q <= 0 {
		return 0, fmt.Errorf("classify: class count %d must be positive", q)
	}
	dim = len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return 0, fmt.Errorf("classify: example %d has dim %d, want %d", i, len(row), dim)
		}
	}
	for i, c := range y {
		if c < 0 || c >= q {
			return 0, fmt.Errorf("classify: label %d of example %d out of range %d", c, i, q)
		}
	}
	return dim, nil
}

// argmax returns the index of the largest value, ties toward lower index.
func argmax(v []float64) int {
	best, arg := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, arg = v[i], i
		}
	}
	return arg
}
