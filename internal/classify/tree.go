package classify

import (
	"math"
	"sort"
)

// regTree is a depth-limited regression tree fitted by variance-reduction
// splits; it is the weak learner inside GBDT.
type regTree struct {
	// Internal nodes: feature + threshold, children indices.
	// Leaves: value. Stored flat to keep the structure allocation-light.
	feature   []int
	threshold []float64
	left      []int32
	right     []int32
	value     []float64
	isLeaf    []bool
}

// treeParams controls the fit.
type treeParams struct {
	maxDepth    int
	minLeaf     int
	minGain     float64
	leafShrink  float64 // Newton-step damping applied to leaf values
	hessianFunc func(idx int) float64
}

// fitRegTree fits targets (gradients) over X restricted to the given
// sample indices.
func fitRegTree(X [][]float64, targets []float64, samples []int, p treeParams) *regTree {
	t := &regTree{}
	t.build(X, targets, samples, p, 0)
	return t
}

// build appends a node for the sample set and returns its index.
func (t *regTree) build(X [][]float64, targets []float64, samples []int, p treeParams, depth int) int {
	node := len(t.isLeaf)
	t.feature = append(t.feature, -1)
	t.threshold = append(t.threshold, 0)
	t.left = append(t.left, -1)
	t.right = append(t.right, -1)
	t.value = append(t.value, 0)
	t.isLeaf = append(t.isLeaf, true)

	leafValue := func() float64 {
		// Newton-ish leaf: sum(gradient) / sum(hessian); uniform hessian
		// degrades to the mean.
		var g, h float64
		for _, i := range samples {
			g += targets[i]
			if p.hessianFunc != nil {
				h += p.hessianFunc(i)
			} else {
				h++
			}
		}
		if h < 1e-12 {
			return 0
		}
		return p.leafShrink * g / h
	}

	if depth >= p.maxDepth || len(samples) < 2*p.minLeaf {
		t.value[node] = leafValue()
		return node
	}

	feat, thresh, gain := bestSplit(X, targets, samples, p.minLeaf)
	if feat < 0 || gain < p.minGain {
		t.value[node] = leafValue()
		return node
	}

	var leftSet, rightSet []int
	for _, i := range samples {
		if X[i][feat] <= thresh {
			leftSet = append(leftSet, i)
		} else {
			rightSet = append(rightSet, i)
		}
	}
	t.isLeaf[node] = false
	t.feature[node] = feat
	t.threshold[node] = thresh
	t.left[node] = int32(t.build(X, targets, leftSet, p, depth+1))
	t.right[node] = int32(t.build(X, targets, rightSet, p, depth+1))
	return node
}

// bestSplit scans every feature for the variance-minimising threshold.
func bestSplit(X [][]float64, targets []float64, samples []int, minLeaf int) (feat int, thresh, gain float64) {
	feat = -1
	if len(samples) == 0 {
		return feat, 0, 0
	}
	dim := len(X[samples[0]])
	var totalSum, totalSq float64
	for _, i := range samples {
		totalSum += targets[i]
		totalSq += targets[i] * targets[i]
	}
	n := float64(len(samples))
	baseImpurity := totalSq - totalSum*totalSum/n

	order := make([]int, len(samples))
	for d := 0; d < dim; d++ {
		copy(order, samples)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][d] < X[order[b]][d] })
		var leftSum, leftSq float64
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftSum += targets[i]
			leftSq += targets[i] * targets[i]
			// Can't split between equal feature values.
			if X[order[pos]][d] == X[order[pos+1]][d] {
				continue
			}
			nl := float64(pos + 1)
			nr := n - nl
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			impurity := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if g := baseImpurity - impurity; g > gain {
				gain = g
				feat = d
				thresh = (X[order[pos]][d] + X[order[pos+1]][d]) / 2
			}
		}
	}
	return feat, thresh, gain
}

// predict evaluates the tree on one example.
func (t *regTree) predict(x []float64) float64 {
	node := 0
	for !t.isLeaf[node] {
		f := t.feature[node]
		v := 0.0
		if f < len(x) {
			v = x[f]
		}
		if v <= t.threshold[node] {
			node = int(t.left[node])
		} else {
			node = int(t.right[node])
		}
	}
	return t.value[node]
}

// depth reports the tree's maximum depth (for tests).
func (t *regTree) depth() int {
	var walk func(node, d int) int
	walk = func(node, d int) int {
		if t.isLeaf[node] {
			return d
		}
		return int(math.Max(float64(walk(int(t.left[node]), d+1)), float64(walk(int(t.right[node]), d+1))))
	}
	if len(t.isLeaf) == 0 {
		return 0
	}
	return walk(0, 0)
}
