package classify

import (
	"errors"
	"math"
)

// NaiveBayes trains a multinomial naive Bayes classifier, the classic
// choice for bag-of-words features. Features must be nonnegative counts or
// weights. Smoothing is the Laplace/Lidstone additive constant.
type NaiveBayes struct {
	Smoothing float64
}

// NewNaiveBayes returns a trainer with Laplace smoothing.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{Smoothing: 1} }

// Train implements Trainer.
func (t *NaiveBayes) Train(X [][]float64, y []int, q int) (Model, error) {
	dim, err := validateTrainingSet(X, y, q)
	if err != nil {
		return nil, err
	}
	smooth := t.Smoothing
	if smooth <= 0 {
		smooth = 1
	}
	for i, row := range X {
		for _, v := range row {
			if v < 0 {
				return nil, errors.New("classify: naive Bayes requires nonnegative features")
			}
		}
		_ = i
	}
	m := &bayesModel{q: q, dim: dim,
		logPrior: make([]float64, q),
		logCond:  make([]float64, q*dim),
	}
	classCount := make([]float64, q)
	featSum := make([]float64, q*dim)
	for i, row := range X {
		c := y[i]
		classCount[c]++
		for d, v := range row {
			featSum[c*dim+d] += v
		}
	}
	total := float64(len(X))
	for c := 0; c < q; c++ {
		m.logPrior[c] = math.Log((classCount[c] + smooth) / (total + smooth*float64(q)))
		var classTotal float64
		for d := 0; d < dim; d++ {
			classTotal += featSum[c*dim+d]
		}
		denom := math.Log(classTotal + smooth*float64(dim))
		for d := 0; d < dim; d++ {
			m.logCond[c*dim+d] = math.Log(featSum[c*dim+d]+smooth) - denom
		}
	}
	return m, nil
}

type bayesModel struct {
	q, dim   int
	logPrior []float64
	logCond  []float64
}

func (m *bayesModel) Classes() int { return m.q }

func (m *bayesModel) Probabilities(x []float64) []float64 {
	p := make([]float64, m.q)
	for c := 0; c < m.q; c++ {
		s := m.logPrior[c]
		row := m.logCond[c*m.dim : (c+1)*m.dim]
		for d, v := range x {
			if d >= m.dim {
				break
			}
			if v != 0 {
				s += v * row[d]
			}
		}
		p[c] = s
	}
	softmaxInPlace(p) // log-probabilities → normalised posterior
	return p
}

func (m *bayesModel) Predict(x []float64) int {
	return argmax(m.Probabilities(x))
}
