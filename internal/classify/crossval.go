package classify

import (
	"fmt"
	"math"
	"math/rand"
)

// CVResult reports a cross-validation run.
type CVResult struct {
	FoldAccuracies []float64
	Mean, Std      float64
}

// CrossValidate estimates a trainer's accuracy with k-fold cross
// validation over the labelled examples. Folds are a deterministic
// shuffle of rng; k is clamped to the example count.
func CrossValidate(tr Trainer, X [][]float64, y []int, q, k int, rng *rand.Rand) (CVResult, error) {
	if _, err := validateTrainingSet(X, y, q); err != nil {
		return CVResult{}, err
	}
	if k < 2 {
		return CVResult{}, fmt.Errorf("classify: cross validation needs k >= 2, got %d", k)
	}
	if k > len(X) {
		k = len(X)
	}
	order := rng.Perm(len(X))
	var res CVResult
	for fold := 0; fold < k; fold++ {
		var trainX, testX [][]float64
		var trainY, testY []int
		for pos, idx := range order {
			if pos%k == fold {
				testX = append(testX, X[idx])
				testY = append(testY, y[idx])
			} else {
				trainX = append(trainX, X[idx])
				trainY = append(trainY, y[idx])
			}
		}
		if len(trainX) == 0 || len(testX) == 0 {
			continue
		}
		model, err := tr.Train(trainX, trainY, q)
		if err != nil {
			return CVResult{}, fmt.Errorf("classify: fold %d: %w", fold, err)
		}
		hits := 0
		for i, x := range testX {
			if model.Predict(x) == testY[i] {
				hits++
			}
		}
		res.FoldAccuracies = append(res.FoldAccuracies, float64(hits)/float64(len(testX)))
	}
	if len(res.FoldAccuracies) == 0 {
		return CVResult{}, fmt.Errorf("classify: no usable folds")
	}
	var sum float64
	for _, a := range res.FoldAccuracies {
		sum += a
	}
	res.Mean = sum / float64(len(res.FoldAccuracies))
	var variance float64
	for _, a := range res.FoldAccuracies {
		variance += (a - res.Mean) * (a - res.Mean)
	}
	res.Std = math.Sqrt(variance / float64(len(res.FoldAccuracies)))
	return res, nil
}

// SelectTrainer cross-validates each candidate and returns the index of
// the best by mean accuracy (ties to the earlier candidate).
func SelectTrainer(candidates []Trainer, X [][]float64, y []int, q, k int, rng *rand.Rand) (best int, results []CVResult, err error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("classify: no candidates")
	}
	results = make([]CVResult, len(candidates))
	bestMean := -1.0
	// Every candidate sees identical folds: one shared fold seed drawn
	// from the caller's RNG.
	foldSeed := rng.Int63()
	for i, tr := range candidates {
		res, cvErr := CrossValidate(tr, X, y, q, k, rand.New(rand.NewSource(foldSeed)))
		if cvErr != nil {
			return 0, nil, cvErr
		}
		results[i] = res
		if res.Mean > bestMean {
			bestMean = res.Mean
			best = i
		}
	}
	return best, results, nil
}
