package classify

import (
	"math"
	"math/rand"
)

// GBDT trains gradient-boosted regression trees with the multiclass
// softmax objective — the learner family the paper's related work cites
// for heterogeneous-source fusion (Shi et al.'s stochastic gradient
// boosting). Each boosting round fits one depth-limited tree per class to
// the softmax residuals, with Newton leaf values and shrinkage.
type GBDT struct {
	Rounds    int
	MaxDepth  int
	MinLeaf   int
	Shrinkage float64
	// Subsample draws this fraction of examples per round (stochastic
	// gradient boosting); 1 uses everything.
	Subsample float64
	Seed      int64
}

// NewGBDT returns a trainer with small-data-friendly defaults.
func NewGBDT(seed int64) *GBDT {
	return &GBDT{Rounds: 40, MaxDepth: 3, MinLeaf: 2, Shrinkage: 0.2, Subsample: 0.8, Seed: seed}
}

// String identifies the trainer in tables.
func (t *GBDT) String() string { return "gbdt" }

// Train implements Trainer.
func (t *GBDT) Train(X [][]float64, y []int, q int) (Model, error) {
	if _, err := validateTrainingSet(X, y, q); err != nil {
		return nil, err
	}
	rounds := t.Rounds
	if rounds <= 0 {
		rounds = 40
	}
	depth := t.MaxDepth
	if depth <= 0 {
		depth = 3
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 2
	}
	shrink := t.Shrinkage
	if shrink <= 0 || shrink > 1 {
		shrink = 0.2
	}
	subsample := t.Subsample
	if subsample <= 0 || subsample > 1 {
		subsample = 1
	}

	n := len(X)
	rng := rand.New(rand.NewSource(t.Seed))
	scores := make([][]float64, n) // F_k(x_i)
	for i := range scores {
		scores[i] = make([]float64, q)
	}
	probs := make([]float64, q)
	gradients := make([]float64, n)
	hessians := make([]float64, n)

	m := &gbdtModel{q: q}
	for round := 0; round < rounds; round++ {
		// Round sample (stochastic boosting).
		var samples []int
		for i := 0; i < n; i++ {
			if subsample == 1 || rng.Float64() < subsample {
				samples = append(samples, i)
			}
		}
		if len(samples) == 0 {
			samples = append(samples, rng.Intn(n))
		}
		roundTrees := make([]*regTree, q)
		for c := 0; c < q; c++ {
			for i := 0; i < n; i++ {
				copy(probs, scores[i])
				softmaxInPlace(probs)
				indicator := 0.0
				if y[i] == c {
					indicator = 1
				}
				gradients[i] = indicator - probs[c]
				// Softmax hessian diagonal, with the usual multiclass
				// correction factor (q-1)/q.
				hessians[i] = math.Max(probs[c]*(1-probs[c])*float64(q-1)/float64(q), 1e-6)
			}
			tree := fitRegTree(X, gradients, samples, treeParams{
				maxDepth:    depth,
				minLeaf:     minLeaf,
				minGain:     1e-9,
				leafShrink:  shrink,
				hessianFunc: func(i int) float64 { return hessians[i] },
			})
			roundTrees[c] = tree
			for i := 0; i < n; i++ {
				scores[i][c] += tree.predict(X[i])
			}
		}
		m.trees = append(m.trees, roundTrees)
	}
	return m, nil
}

type gbdtModel struct {
	q     int
	trees [][]*regTree // [round][class]
}

func (m *gbdtModel) Classes() int { return m.q }

func (m *gbdtModel) Probabilities(x []float64) []float64 {
	scores := make([]float64, m.q)
	for _, round := range m.trees {
		for c, tree := range round {
			scores[c] += tree.predict(x)
		}
	}
	softmaxInPlace(scores)
	return scores
}

func (m *gbdtModel) Predict(x []float64) int {
	return argmax(m.Probabilities(x))
}

var _ Trainer = (*GBDT)(nil)
