package classify

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossValidateSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(rng, 120)
	res, err := CrossValidate(NewLogistic(1), X, y, 2, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 5 {
		t.Fatalf("folds = %d, want 5", len(res.FoldAccuracies))
	}
	if res.Mean < 0.95 {
		t.Errorf("CV mean %.3f on separable blobs, want >= 0.95", res.Mean)
	}
	if res.Std < 0 || math.IsNaN(res.Std) {
		t.Errorf("bad std %v", res.Std)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := blobs(rng, 20)
	if _, err := CrossValidate(NewLogistic(1), X, y, 2, 1, rng); err == nil {
		t.Errorf("k=1 should error")
	}
	if _, err := CrossValidate(NewLogistic(1), nil, nil, 2, 3, rng); err == nil {
		t.Errorf("empty set should error")
	}
}

func TestCrossValidateClampsK(t *testing.T) {
	X := [][]float64{{0}, {1}, {0}, {1}}
	y := []int{0, 1, 0, 1}
	res, err := CrossValidate(NewKNN(), X, y, 2, 99, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) > 4 {
		t.Errorf("folds = %d, want <= 4 (clamped)", len(res.FoldAccuracies))
	}
}

func TestSelectTrainerPrefersBetterModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Bag-of-words: naive Bayes and logistic should both beat a
	// deliberately crippled SVM (zero epochs of training signal).
	X, y := bagOfWords(rng, 240, 30)
	candidates := []Trainer{
		&SVM{Epochs: 1, Lambda: 10, Seed: 1}, // under-trained, over-regularised
		NewLogistic(1),
	}
	best, results, err := SelectTrainer(candidates, X, y, 3, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if best != 1 {
		t.Errorf("SelectTrainer picked %d (means %.3f vs %.3f), want logistic",
			best, results[0].Mean, results[1].Mean)
	}
}

func TestSelectTrainerEmpty(t *testing.T) {
	if _, _, err := SelectTrainer(nil, nil, nil, 1, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("no candidates should error")
	}
}

func TestSelectTrainerSharedFolds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := blobs(rng, 60)
	// The same trainer twice must produce identical CV results (identical
	// folds and identical training).
	_, results, err := SelectTrainer([]Trainer{NewLogistic(3), NewLogistic(3)}, X, y, 2, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for f := range results[0].FoldAccuracies {
		if results[0].FoldAccuracies[f] != results[1].FoldAccuracies[f] {
			t.Fatalf("identical candidates saw different folds")
		}
	}
}
