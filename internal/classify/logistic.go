package classify

import (
	"math"
	"math/rand"
)

// Logistic trains multinomial logistic regression (softmax regression) by
// stochastic gradient descent with L2 regularisation. The zero value is
// unusable; use NewLogistic for sensible defaults.
type Logistic struct {
	Epochs       int
	LearningRate float64
	L2           float64
	Seed         int64
}

// NewLogistic returns a trainer with defaults that work well on the
// bag-of-words features used throughout this repository.
func NewLogistic(seed int64) *Logistic {
	return &Logistic{Epochs: 50, LearningRate: 0.1, L2: 1e-4, Seed: seed}
}

// Train implements Trainer.
func (t *Logistic) Train(X [][]float64, y []int, q int) (Model, error) {
	dim, err := validateTrainingSet(X, y, q)
	if err != nil {
		return nil, err
	}
	m := &logisticModel{q: q, dim: dim,
		w: make([]float64, q*(dim+1)), // per class: dim weights + bias
	}
	rng := rand.New(rand.NewSource(t.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, q)
	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		lr := t.LearningRate / (1 + 0.1*float64(epoch))
		for _, idx := range order {
			m.scores(X[idx], probs)
			softmaxInPlace(probs)
			for c := 0; c < q; c++ {
				g := probs[c]
				if c == y[idx] {
					g -= 1
				}
				row := m.w[c*(dim+1) : (c+1)*(dim+1)]
				for d, xd := range X[idx] {
					row[d] -= lr * (g*xd + t.L2*row[d])
				}
				row[dim] -= lr * g // bias, unregularised
			}
		}
	}
	return m, nil
}

type logisticModel struct {
	q, dim int
	w      []float64
}

func (m *logisticModel) Classes() int { return m.q }

func (m *logisticModel) scores(x []float64, dst []float64) {
	for c := 0; c < m.q; c++ {
		row := m.w[c*(m.dim+1) : (c+1)*(m.dim+1)]
		s := row[m.dim]
		for d, xd := range x {
			s += row[d] * xd
		}
		dst[c] = s
	}
}

func (m *logisticModel) Probabilities(x []float64) []float64 {
	p := make([]float64, m.q)
	m.scores(x, p)
	softmaxInPlace(p)
	return p
}

func (m *logisticModel) Predict(x []float64) int {
	return argmax(m.Probabilities(x))
}

// softmaxInPlace converts raw scores into a probability distribution,
// subtracting the max for numerical stability.
func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}
