package classify

import (
	"fmt"
	"sort"

	"tmark/internal/vec"
)

// KNN is a cosine-similarity k-nearest-neighbours classifier. It keeps the
// training set and votes among the K most similar examples, weighting each
// vote by its similarity.
type KNN struct {
	K int
}

// NewKNN returns a trainer with K=5.
func NewKNN() *KNN { return &KNN{K: 5} }

// Train implements Trainer.
func (t *KNN) Train(X [][]float64, y []int, q int) (Model, error) {
	if _, err := validateTrainingSet(X, y, q); err != nil {
		return nil, err
	}
	k := t.K
	if k <= 0 {
		k = 5
	}
	if k > len(X) {
		k = len(X)
	}
	// Copy the training rows so later mutation by the caller cannot change
	// the model.
	rows := make([][]float64, len(X))
	for i, r := range X {
		rows[i] = append([]float64(nil), r...)
	}
	return &knnModel{q: q, k: k, x: rows, y: append([]int(nil), y...)}, nil
}

type knnModel struct {
	q, k int
	x    [][]float64
	y    []int
}

func (m *knnModel) Classes() int { return m.q }

func (m *knnModel) Probabilities(x []float64) []float64 {
	type scored struct {
		sim float64
		y   int
	}
	sims := make([]scored, len(m.x))
	for i, row := range m.x {
		sims[i] = scored{sim: vec.Cosine(row, x), y: m.y[i]}
	}
	sort.SliceStable(sims, func(a, b int) bool { return sims[a].sim > sims[b].sim })
	p := make([]float64, m.q)
	for _, s := range sims[:m.k] {
		w := s.sim
		if w <= 0 {
			w = 1e-9 // keep zero-similarity neighbours as weak votes
		}
		p[s.y] += w
	}
	if !vec.Normalize1(p) {
		// Degenerate: fall back to uniform.
		for c := range p {
			p[c] = 1 / float64(m.q)
		}
	}
	return p
}

func (m *knnModel) Predict(x []float64) int {
	return argmax(m.Probabilities(x))
}

var _ Trainer = (*KNN)(nil)
var _ Trainer = (*SVM)(nil)
var _ Trainer = (*NaiveBayes)(nil)
var _ Trainer = (*Logistic)(nil)

// String implementations make experiment tables self-describing.
func (t *KNN) String() string        { return fmt.Sprintf("knn(k=%d)", t.K) }
func (t *SVM) String() string        { return fmt.Sprintf("svm(epochs=%d)", t.Epochs) }
func (t *NaiveBayes) String() string { return "naive-bayes" }
func (t *Logistic) String() string   { return fmt.Sprintf("logistic(epochs=%d)", t.Epochs) }
