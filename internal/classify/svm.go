package classify

import (
	"math"
	"math/rand"
)

// SVM trains one-vs-rest linear support vector machines with the Pegasos
// stochastic sub-gradient solver (Shalev-Shwartz et al.). It is the base
// classifier the EMR baseline votes with, mirroring the paper's use of SVM
// inside its ensemble.
type SVM struct {
	Epochs int
	Lambda float64 // regularisation strength
	Seed   int64
}

// NewSVM returns a trainer with Pegasos defaults.
func NewSVM(seed int64) *SVM { return &SVM{Epochs: 40, Lambda: 1e-3, Seed: seed} }

// Train implements Trainer.
func (t *SVM) Train(X [][]float64, y []int, q int) (Model, error) {
	dim, err := validateTrainingSet(X, y, q)
	if err != nil {
		return nil, err
	}
	lambda := t.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	// Scale inputs to unit L2 norm: Pegasos step sizes assume bounded
	// examples, and bag-of-words counts are not.
	scaled := make([][]float64, len(X))
	for i, row := range X {
		var norm float64
		for _, v := range row {
			norm += v * v
		}
		cp := append([]float64(nil), row...)
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for d := range cp {
				cp[d] *= inv
			}
		}
		scaled[i] = cp
	}
	w := make([]float64, q*(dim+1))
	avg := make([]float64, q*(dim+1))
	rng := rand.New(rand.NewSource(t.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	step := 0
	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, idx := range order {
			step++
			// Offset the schedule so early steps are not wild; combined
			// with iterate averaging this is the standard stabilised
			// Pegasos.
			eta := 1 / (lambda * float64(step+10))
			for c := 0; c < q; c++ {
				label := -1.0
				if y[idx] == c {
					label = 1
				}
				row := w[c*(dim+1) : (c+1)*(dim+1)]
				margin := row[dim]
				for d, xd := range scaled[idx] {
					margin += row[d] * xd
				}
				margin *= label
				// Pegasos update: shrink, then push on margin violation.
				shrink := 1 - eta*lambda
				for d := 0; d < dim; d++ {
					row[d] *= shrink
				}
				if margin < 1 {
					for d, xd := range scaled[idx] {
						row[d] += eta * label * xd
					}
					row[dim] += eta * label
				}
			}
			for i, v := range w {
				avg[i] += (v - avg[i]) / float64(step)
			}
		}
	}
	return &svmModel{q: q, dim: dim, w: avg}, nil
}

type svmModel struct {
	q, dim int
	w      []float64
}

func (m *svmModel) Classes() int { return m.q }

func (m *svmModel) margins(x []float64) []float64 {
	// Apply the same unit-norm scaling used during training.
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	inv := 1.0
	if norm > 0 {
		inv = 1 / math.Sqrt(norm)
	}
	out := make([]float64, m.q)
	for c := 0; c < m.q; c++ {
		row := m.w[c*(m.dim+1) : (c+1)*(m.dim+1)]
		s := row[m.dim]
		for d, xd := range x {
			if d >= m.dim {
				break
			}
			s += row[d] * xd * inv
		}
		out[c] = s
	}
	return out
}

// Probabilities maps the one-vs-rest margins through a softmax; SVM margins
// are not calibrated probabilities, but the ensemble voting in EMR only
// needs a monotone confidence, which this provides.
func (m *svmModel) Probabilities(x []float64) []float64 {
	p := m.margins(x)
	softmaxInPlace(p)
	return p
}

func (m *svmModel) Predict(x []float64) int {
	return argmax(m.margins(x))
}
