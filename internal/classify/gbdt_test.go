package classify

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegTreeFitsSteps(t *testing.T) {
	// A step function in one dimension: the tree must find the boundary.
	X := [][]float64{{0}, {1}, {2}, {3}, {10}, {11}, {12}, {13}}
	targets := []float64{1, 1, 1, 1, -1, -1, -1, -1}
	samples := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tree := fitRegTree(X, targets, samples, treeParams{maxDepth: 2, minLeaf: 1, leafShrink: 1})
	if got := tree.predict([]float64{1.5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("left side = %v, want 1", got)
	}
	if got := tree.predict([]float64{12.5}); math.Abs(got+1) > 1e-9 {
		t.Errorf("right side = %v, want -1", got)
	}
	if d := tree.depth(); d != 1 {
		t.Errorf("depth = %d, want 1 (single split suffices)", d)
	}
}

func TestRegTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	targets := make([]float64, n)
	samples := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		targets[i] = rng.NormFloat64()
		samples[i] = i
	}
	tree := fitRegTree(X, targets, samples, treeParams{maxDepth: 3, minLeaf: 1, leafShrink: 1})
	if d := tree.depth(); d > 3 {
		t.Errorf("depth = %d exceeds limit 3", d)
	}
}

func TestRegTreeConstantTargetsSingleLeaf(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	targets := []float64{5, 5, 5}
	tree := fitRegTree(X, targets, []int{0, 1, 2}, treeParams{maxDepth: 4, minLeaf: 1, minGain: 1e-9, leafShrink: 1})
	if !tree.isLeaf[0] {
		t.Errorf("constant targets should produce a single leaf")
	}
	if got := tree.predict([]float64{9}); math.Abs(got-5) > 1e-9 {
		t.Errorf("leaf value = %v, want 5", got)
	}
}

func TestGBDTBlobsAndXor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 160)
	m, err := NewGBDT(1).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, X, y); acc < 0.95 {
		t.Errorf("GBDT blob accuracy %.3f, want >= 0.95", acc)
	}

	// XOR is the classic linearly inseparable case trees handle natively.
	var xorX [][]float64
	var xorY []int
	for i := 0; i < 120; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		xorX = append(xorX, []float64{float64(a) + rng.NormFloat64()*0.1, float64(b) + rng.NormFloat64()*0.1})
		xorY = append(xorY, a^b)
	}
	mx, err := NewGBDT(1).Train(xorX, xorY, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(mx, xorX, xorY); acc < 0.95 {
		t.Errorf("GBDT XOR accuracy %.3f, want >= 0.95 (linear models get ~0.5)", acc)
	}
}

func TestGBDTMulticlassBagOfWords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := bagOfWords(rng, 240, 30)
	testX, testY := bagOfWords(rng, 120, 30)
	m, err := NewGBDT(1).Train(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, testX, testY); acc < 0.8 {
		t.Errorf("GBDT bag-of-words accuracy %.3f, want >= 0.8", acc)
	}
}

func TestGBDTProbabilitiesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 60)
	m, err := NewGBDT(2).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p := m.Probabilities(X[i])
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum %v", sum)
		}
		if m.Classes() != 2 {
			t.Fatalf("Classes = %d", m.Classes())
		}
	}
}

func TestGBDTDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(rng, 80)
	m1, err := NewGBDT(7).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewGBDT(7).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p1, p2 := m1.Probabilities(X[i]), m2.Probabilities(X[i])
		for c := range p1 {
			if p1[c] != p2[c] {
				t.Fatalf("GBDT not deterministic")
			}
		}
	}
}

func TestGBDTValidation(t *testing.T) {
	if _, err := NewGBDT(0).Train(nil, nil, 2); err == nil {
		t.Errorf("empty set should error")
	}
}

// GBDT must plug straight into the collective-classification engine.
func TestGBDTAsICABase(t *testing.T) {
	if NewGBDT(0).String() == "" {
		t.Errorf("GBDT must identify itself")
	}
}
