package classify

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tmark/internal/vec"
)

// blobs generates a linearly separable 2-class problem with a margin.
func blobs(rng *rand.Rand, n int) (X [][]float64, y []int) {
	for i := 0; i < n; i++ {
		c := i % 2
		cx := -2.0
		if c == 1 {
			cx = 2.0
		}
		X = append(X, []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5})
		y = append(y, c)
	}
	return X, y
}

// bagOfWords generates class-specific token counts for 3 classes.
func bagOfWords(rng *rand.Rand, n, vocab int) (X [][]float64, y []int) {
	perClass := vocab / 3
	for i := 0; i < n; i++ {
		c := i % 3
		row := make([]float64, vocab)
		for w := 0; w < 10; w++ {
			var tok int
			if rng.Float64() < 0.8 {
				tok = c*perClass + rng.Intn(perClass) // class vocabulary
			} else {
				tok = rng.Intn(vocab) // noise
			}
			row[tok]++
		}
		X = append(X, row)
		y = append(y, c)
	}
	return X, y
}

func accuracy(m Model, X [][]float64, y []int) float64 {
	hits := 0
	for i, row := range X {
		if m.Predict(row) == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(X))
}

func trainers() map[string]Trainer {
	return map[string]Trainer{
		"logistic": NewLogistic(1),
		"svm":      NewSVM(1),
		"knn":      NewKNN(),
	}
}

func TestSeparableBlobsAllLearners(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := blobs(rng, 200)
	testX, testY := blobs(rng, 100)
	for name, tr := range trainers() {
		m, err := tr.Train(X, y, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if acc := accuracy(m, testX, testY); acc < 0.95 {
			t.Errorf("%s: accuracy %v on separable blobs, want >= 0.95", name, acc)
		}
	}
}

func TestBagOfWordsLearners(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := bagOfWords(rng, 300, 60)
	testX, testY := bagOfWords(rng, 150, 60)
	for name, c := range map[string]struct {
		tr  Trainer
		min float64
	}{
		"bayes":    {NewNaiveBayes(), 0.9},
		"logistic": {NewLogistic(1), 0.9},
		// Pegasos on raw counts is a little noisier than the probabilistic
		// learners; it only needs to be a serviceable ensemble member.
		"svm": {NewSVM(1), 0.85},
	} {
		m, err := c.tr.Train(X, y, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if acc := accuracy(m, testX, testY); acc < c.min {
			t.Errorf("%s: bag-of-words accuracy %v, want >= %v", name, acc, c.min)
		}
	}
}

func TestProbabilitiesAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := bagOfWords(rng, 120, 30)
	all := trainers()
	all["bayes"] = NewNaiveBayes()
	for name, tr := range all {
		m, err := tr.Train(X, y, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Classes() != 3 {
			t.Errorf("%s: Classes = %d, want 3", name, m.Classes())
		}
		for trial := 0; trial < 20; trial++ {
			x := X[rng.Intn(len(X))]
			p := m.Probabilities(x)
			if !vec.IsStochastic(p, 1e-8) {
				t.Errorf("%s: probabilities not a distribution: %v", name, p)
			}
			if m.Predict(x) != argmax(p) {
				t.Errorf("%s: Predict disagrees with argmax of Probabilities", name)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		X    [][]float64
		y    []int
		q    int
	}{
		{"empty", nil, nil, 2},
		{"mismatch", [][]float64{{1}}, []int{0, 1}, 2},
		{"ragged", [][]float64{{1, 2}, {1}}, []int{0, 1}, 2},
		{"bad label", [][]float64{{1}}, []int{5}, 2},
		{"no classes", [][]float64{{1}}, []int{0}, 0},
	}
	for _, c := range cases {
		for name, tr := range trainers() {
			if _, err := tr.Train(c.X, c.y, c.q); err == nil {
				t.Errorf("%s/%s: expected error", name, c.name)
			}
		}
	}
}

func TestNaiveBayesRejectsNegativeFeatures(t *testing.T) {
	_, err := NewNaiveBayes().Train([][]float64{{-1}}, []int{0}, 1)
	if err == nil {
		t.Errorf("negative features must be rejected")
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blobs(rng, 100)
	m1, err := NewLogistic(42).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewLogistic(42).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := X[trial]
		p1, p2 := m1.Probabilities(x), m2.Probabilities(x)
		for c := range p1 {
			if p1[c] != p2[c] {
				t.Fatalf("same seed must give identical models: %v vs %v", p1, p2)
			}
		}
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	X := [][]float64{{1, 0}, {0, 1}}
	y := []int{0, 1}
	m, err := (&KNN{K: 50}).Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1, 0.1}); got != 0 {
		t.Errorf("Predict = %d, want 0", got)
	}
}

func TestKNNCopiesTrainingData(t *testing.T) {
	X := [][]float64{{1, 0}, {0, 1}}
	y := []int{0, 1}
	m, err := NewKNN().Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	X[0][0] = -1 // mutate after training
	if got := m.Predict([]float64{1, 0}); got != 0 {
		t.Errorf("model must not alias caller data, got %d", got)
	}
}

func TestSoftmaxStability(t *testing.T) {
	v := []float64{1000, 1001, 999}
	softmaxInPlace(v)
	var sum float64
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("softmax overflowed: %v", v)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if argmax(v) != 1 {
		t.Errorf("softmax should keep the argmax")
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []fmt.Stringer{NewKNN(), NewSVM(0), NewNaiveBayes(), NewLogistic(0)} {
		if s.String() == "" {
			t.Errorf("%T: empty String()", s)
		}
	}
}
