package vec

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

// Column c of the dense blocked product must be bitwise equal to MulVec
// on column c alone, serial and parallel.
func TestDenseMulVecBatchMatchesSingleColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(40)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		for _, b := range []int{1, 3, 5} {
			x := make([]float64, cols*b)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			dst := make([]float64, rows*b)
			m.MulVecBatch(x, dst, b)
			check := func(label string, got []float64) {
				t.Helper()
				for c := 0; c < b; c++ {
					xc := make([]float64, cols)
					for j := range xc {
						xc[j] = x[j*b+c]
					}
					want := make([]float64, rows)
					m.MulVec(xc, want)
					for i := range want {
						if got[i*b+c] != want[i] {
							t.Fatalf("trial %d b=%d col %d %s: row %d = %v, want %v",
								trial, b, c, label, i, got[i*b+c], want[i])
						}
					}
				}
			}
			check("serial", dst)
			for _, workers := range []int{2, 4} {
				p := par.New(workers)
				s := NewMulBatchScratch(workers)
				gotP := make([]float64, rows*b)
				m.MulVecBatchParallel(p, s, x, gotP, b)
				check("parallel", gotP)
				p.Close()
			}
		}
	}
}

// Steady-state blocked dense products must not allocate.
func TestDenseMulVecBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := NewMatrix(200, 200)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	const b = 4
	x := make([]float64, 200*b)
	dst := make([]float64, 200*b)
	for i := range x {
		x[i] = rng.Float64()
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecBatch(x, dst, b)
	}); allocs != 0 {
		t.Errorf("MulVecBatch allocates %v per call, want 0", allocs)
	}
	p := par.New(4)
	defer p.Close()
	s := NewMulBatchScratch(4)
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecBatchParallel(p, s, x, dst, b)
	}); allocs != 0 {
		t.Errorf("MulVecBatchParallel allocates %v per call, want 0", allocs)
	}
}

// The blocked column helpers must agree with their single-vector
// counterparts bitwise, and CompactCols must left-pack without clobbering
// surviving columns.
func TestBlockColumnHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const rows, b = 37, 5
	block := make([]float64, rows*b)
	for i := range block {
		block[i] = rng.NormFloat64()
	}
	cols := make([]Vector, b)
	for c := 0; c < b; c++ {
		cols[c] = New(rows)
		GatherCol(block, c, b, cols[c])
		for i := 0; i < rows; i++ {
			if cols[c][i] != block[i*b+c] {
				t.Fatalf("GatherCol col %d row %d mismatch", c, i)
			}
		}
	}

	// Sum / Diff1 / Normalize1 against the flat versions.
	for c := 0; c < b; c++ {
		if got, want := SumCol(block, c, b), Sum(cols[c]); got != want {
			t.Errorf("SumCol(%d) = %v, want %v", c, got, want)
		}
	}
	other := make([]float64, rows*b)
	for i := range other {
		other[i] = rng.NormFloat64()
	}
	for c := 0; c < b; c++ {
		oc := New(rows)
		GatherCol(other, c, b, oc)
		if got, want := Diff1Col(block, other, c, b), Diff1(cols[c], oc); got != want {
			t.Errorf("Diff1Col(%d) = %v, want %v", c, got, want)
		}
	}
	normBlock := append([]float64(nil), block...)
	for c := 0; c < b; c++ {
		ref := Clone(cols[c])
		okRef := Normalize1(ref)
		if ok := Normalize1Col(normBlock, c, b); ok != okRef {
			t.Fatalf("Normalize1Col(%d) ok = %v, want %v", c, ok, okRef)
		}
		for i := 0; i < rows; i++ {
			if normBlock[i*b+c] != ref[i] {
				t.Fatalf("Normalize1Col(%d) row %d = %v, want %v", c, i, normBlock[i*b+c], ref[i])
			}
		}
	}

	// Axpy against the flat version.
	axBlock := append([]float64(nil), block...)
	x := New(rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for c := 0; c < b; c++ {
		ref := Clone(cols[c])
		Axpy(0.37, x, ref)
		AxpyCol(0.37, x, axBlock, c, b)
		for i := 0; i < rows; i++ {
			if axBlock[i*b+c] != ref[i] {
				t.Fatalf("AxpyCol(%d) row %d mismatch", c, i)
			}
		}
	}

	// Compact columns {0, 2, 4}: survivors keep their exact values.
	keep := []int{0, 2, 4}
	compact := append([]float64(nil), block...)
	CompactCols(compact, rows, b, keep)
	for nc, oc := range keep {
		for i := 0; i < rows; i++ {
			if compact[i*len(keep)+nc] != block[i*b+oc] {
				t.Fatalf("CompactCols col %d->%d row %d mismatch", oc, nc, i)
			}
		}
	}

	// Scatter back and compare round-trip.
	rt := make([]float64, rows*b)
	for c := 0; c < b; c++ {
		ScatterCol(cols[c], rt, c, b)
	}
	for i := range block {
		if rt[i] != block[i] {
			t.Fatalf("Scatter/Gather round trip differs at %d", i)
		}
	}
}
