package vec

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return &Matrix{}
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("vec: FromRows ragged row %d: %d vs %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the entry at row i, column j.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m * x. dst must have length m.Rows and must not
// alias x.
func (m *Matrix) MulVec(x, dst Vector) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec x length %d, want %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("vec: MulVec dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ * x without materialising the transpose. dst
// must have length m.Cols and must not alias x.
func (m *Matrix) MulVecT(x, dst Vector) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("vec: MulVecT x length %d, want %d", len(x), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("vec: MulVecT dst length %d, want %d", len(dst), m.Cols))
	}
	Fill(dst, 0)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// Mul returns the product a*b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vec: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// NormalizeColumns rescales each column of m in place so it sums to one.
// Columns whose sum is zero are replaced by the uniform column 1/Rows,
// mirroring the paper's dangling-node convention; set fillUniform to false
// to leave zero columns untouched instead. It returns the number of zero
// columns encountered.
func (m *Matrix) NormalizeColumns(fillUniform bool) int {
	return m.normalizeColumnRange(0, m.Cols, fillUniform)
}

// normalizeColumnRange normalises columns [lo, hi); each column's
// arithmetic is independent, so disjoint ranges can run concurrently.
func (m *Matrix) normalizeColumnRange(lo, hi int, fillUniform bool) int {
	zero := 0
	for j := lo; j < hi; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += m.Data[i*m.Cols+j]
		}
		if s == 0 {
			zero++
			if fillUniform && m.Rows > 0 {
				u := 1 / float64(m.Rows)
				for i := 0; i < m.Rows; i++ {
					m.Data[i*m.Cols+j] = u
				}
			}
			continue
		}
		inv := 1 / s
		for i := 0; i < m.Rows; i++ {
			m.Data[i*m.Cols+j] *= inv
		}
	}
	return zero
}

// IsColumnStochastic reports whether every column of m is nonnegative and
// sums to one within tol.
func (m *Matrix) IsColumnStochastic(tol float64) bool {
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			v := m.Data[i*m.Cols+j]
			if v < -tol || math.IsNaN(v) {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix with 4-decimal entries, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CosineMatrix returns the n-by-n matrix of pairwise cosine similarities of
// the given feature rows (one feature vector per node). This is the matrix
// C of Section 4.2 of the paper.
func CosineMatrix(features [][]float64) *Matrix {
	n := len(features)
	m := NewMatrix(n, n)
	norms := make([]float64, n)
	for i, f := range features {
		norms[i] = Norm2(f)
	}
	for i := 0; i < n; i++ {
		cosineRow(m, features, norms, i)
	}
	return m
}

// cosineRow fills row i's upper triangle and the mirrored lower-triangle
// cells. Cell (a, b) with a < b is written only by the call with i == a,
// so distinct rows can be computed concurrently without racing.
func cosineRow(m *Matrix, features [][]float64, norms []float64, i int) {
	n := len(features)
	m.Set(i, i, 1)
	if norms[i] == 0 {
		m.Set(i, i, 0)
	}
	for j := i + 1; j < n; j++ {
		var c float64
		if norms[i] != 0 && norms[j] != 0 {
			c = Dot(features[i], features[j]) / (norms[i] * norms[j])
			if c < 0 {
				c = 0 // transition weights must be nonnegative
			}
		}
		m.Set(i, j, c)
		m.Set(j, i, c)
	}
}
