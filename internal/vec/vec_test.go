package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestUniform(t *testing.T) {
	u := Uniform(4)
	if len(u) != 4 {
		t.Fatalf("len = %d, want 4", len(u))
	}
	for i, v := range u {
		if v != 0.25 {
			t.Errorf("u[%d] = %v, want 0.25", i, v)
		}
	}
	if Uniform(0) != nil || Uniform(-1) != nil {
		t.Errorf("Uniform of nonpositive length should be nil")
	}
}

func TestBasis(t *testing.T) {
	b := Basis(3, 1)
	want := Vector{0, 1, 0}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Basis(3,1) = %v, want %v", b, want)
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot(Vector{1, 2, 3}, Vector{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Dot with mismatched lengths should panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestAxpyScaleSum(t *testing.T) {
	dst := Vector{1, 1, 1}
	Axpy(2, Vector{1, 2, 3}, dst)
	want := Vector{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", dst, want)
		}
	}
	Scale(0.5, dst)
	if got := Sum(dst); got != 7.5 {
		t.Errorf("Sum after Scale = %v, want 7.5", got)
	}
}

func TestNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := Norm1(v); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := Norm2(v); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Diff1(Vector{1, 2}, Vector{3, 0}); got != 4 {
		t.Errorf("Diff1 = %v, want 4", got)
	}
}

func TestNormalize1(t *testing.T) {
	v := Vector{1, 3}
	if !Normalize1(v) {
		t.Fatal("Normalize1 returned false for nonzero vector")
	}
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Errorf("Normalize1 = %v, want [0.25 0.75]", v)
	}
	z := Vector{0, 0}
	if Normalize1(z) {
		t.Errorf("Normalize1 of zero vector should report false")
	}
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize1 of zero vector must leave it untouched, got %v", z)
	}
}

func TestArgmax(t *testing.T) {
	cases := []struct {
		v    Vector
		want int
	}{
		{nil, -1},
		{Vector{1}, 0},
		{Vector{1, 3, 2}, 1},
		{Vector{2, 2}, 0}, // ties break low
		{Vector{-5, -1, -3}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.v); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestIsStochastic(t *testing.T) {
	if !IsStochastic(Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("[0.5 0.5] should be stochastic")
	}
	if IsStochastic(Vector{0.7, 0.5}, 1e-12) {
		t.Errorf("sum 1.2 should not be stochastic")
	}
	if IsStochastic(Vector{-0.1, 1.1}, 1e-12) {
		t.Errorf("negative entry should not be stochastic")
	}
	if IsStochastic(Vector{math.NaN(), 1}, 1e-12) {
		t.Errorf("NaN entry should not be stochastic")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := Cosine(Vector{2, 0}, Vector{5, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v, want 1", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 2}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := Clone(v)
	c[0] = 9
	if v[0] != 1 {
		t.Errorf("Clone shares storage with original")
	}
	if Clone(nil) != nil {
		t.Errorf("Clone(nil) should be nil")
	}
}

// Property: Normalize1 of any positive vector yields a stochastic vector.
func TestNormalize1StochasticProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := make(Vector, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Fold arbitrary magnitudes into a bounded range so the sum
			// cannot overflow; the property under test is about Normalize1,
			// not float64 saturation.
			v = append(v, math.Abs(math.Mod(x, 1e6)))
		}
		if !Normalize1(v) {
			return Sum(v) == 0 // nothing to normalise
		}
		return IsStochastic(v, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cosine is symmetric and bounded by [-1, 1].
func TestCosineSymmetricBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a, b := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		ab, ba := Cosine(a, b), Cosine(b, a)
		if !almostEqual(ab, ba, 1e-12) {
			t.Fatalf("Cosine not symmetric: %v vs %v", ab, ba)
		}
		if ab > 1+1e-12 || ab < -1-1e-12 {
			t.Fatalf("Cosine out of range: %v", ab)
		}
	}
}
