package vec

// Column operations on blocked multi-vector storage. The batched solver
// keeps q per-class vectors interleaved in one node-major block: entry
// (i, c) of an n×b block lives at i*stride+c, so one pass over the block
// touches every class's value for a node consecutively. Each helper
// visits the rows of one column in ascending index order — exactly the
// order of its single-vector counterpart in vec.go — so a column of a
// block and a standalone vector accumulate bitwise-identical floats.

import (
	"fmt"
	"math"
)

// ScatterCol copies src into column col of the blocked dst:
// dst[i*stride+col] = src[i].
func ScatterCol(src Vector, dst []float64, col, stride int) {
	checkBlock("ScatterCol", len(src), len(dst), col, stride)
	for i, v := range src {
		dst[i*stride+col] = v
	}
}

// GatherCol copies column col of the blocked src into dst:
// dst[i] = src[i*stride+col].
func GatherCol(src []float64, col, stride int, dst Vector) {
	checkBlock("GatherCol", len(dst), len(src), col, stride)
	for i := range dst {
		dst[i] = src[i*stride+col]
	}
}

// AxpyCol computes column col of dst += alpha*x, mirroring Axpy on one
// column of the block.
func AxpyCol(alpha float64, x Vector, dst []float64, col, stride int) {
	checkBlock("AxpyCol", len(x), len(dst), col, stride)
	for i, v := range x {
		dst[i*stride+col] += alpha * v
	}
}

// SumCol returns the sum of column col, adding rows in ascending order
// like Sum.
func SumCol(v []float64, col, stride int) float64 {
	var s float64
	for p := col; p < len(v); p += stride {
		s += v[p]
	}
	return s
}

// Diff1Col returns the L1 distance between column col of the equally
// blocked a and b, mirroring Diff1's row order.
func Diff1Col(a, b []float64, col, stride int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Diff1Col length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for p := col; p < len(a); p += stride {
		s += math.Abs(a[p] - b[p])
	}
	return s
}

// Normalize1Col rescales column col in place so it sums to one, with
// Normalize1's zero/NaN/Inf guard: a bad sum leaves the column untouched
// and reports false. The arithmetic (one 1/s, then a multiply per row)
// matches Normalize1 exactly.
func Normalize1Col(v []float64, col, stride int) bool {
	_, ok := Normalize1ColMass(v, col, stride)
	return ok
}

// Normalize1ColMass is Normalize1Col returning the pre-normalisation
// column mass alongside the verdict — the solver's numerical-health
// guards read the mass the projection already computed, so the probe
// costs nothing extra. The arithmetic is identical to Normalize1Col.
func Normalize1ColMass(v []float64, col, stride int) (float64, bool) {
	s := SumCol(v, col, stride)
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return s, false
	}
	inv := 1 / s
	for p := col; p < len(v); p += stride {
		v[p] *= inv
	}
	return s, true
}

// CompactCols left-packs the columns listed in keep (strictly ascending)
// of an n-row block, shrinking the stride from oldStride to len(keep).
// The move is in-place safe: for every row the destination offset
// i*len(keep)+nc never exceeds the source offset i*oldStride+keep[nc],
// so ascending iteration never overwrites unread data.
func CompactCols(v []float64, rows, oldStride int, keep []int) {
	newStride := len(keep)
	if newStride == oldStride {
		return
	}
	for i := 0; i < rows; i++ {
		src := i * oldStride
		dst := i * newStride
		for nc, oc := range keep {
			v[dst+nc] = v[src+oc]
		}
	}
}

// checkBlock validates that a blocked operand with the given length can
// hold rows×stride entries addressed at column col.
func checkBlock(op string, rows, blockLen, col, stride int) {
	if col < 0 || col >= stride || rows*stride > blockLen {
		panic(fmt.Sprintf("vec: %s column %d stride %d over %d rows exceeds block of %d",
			op, col, stride, rows, blockLen))
	}
}
