package vec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewMatrixAndAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := m.Row(1); got[2] != 7 {
		t.Errorf("Row(1) = %v, want last entry 7", got)
	}
}

func TestFromRowsAndIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows layout wrong: %v", m.Data)
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(3)[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("FromRows with ragged rows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := New(3)
	m.MulVec(Vector{1, 1}, dst)
	want := Vector{3, 7, 11}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", dst, want)
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	dst := New(2)
	m.MulVecT(Vector{1, 0, 1}, dst)
	want := Vector{6, 8}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := Mul(a, b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestNormalizeColumnsUniformFill(t *testing.T) {
	m := FromRows([][]float64{
		{1, 0},
		{3, 0},
	})
	zero := m.NormalizeColumns(true)
	if zero != 1 {
		t.Errorf("zero columns = %d, want 1", zero)
	}
	if !m.IsColumnStochastic(1e-12) {
		t.Errorf("matrix not column stochastic after normalisation:\n%v", m)
	}
	if m.At(0, 1) != 0.5 || m.At(1, 1) != 0.5 {
		t.Errorf("dangling column not uniform: %v %v", m.At(0, 1), m.At(1, 1))
	}
	if m.At(0, 0) != 0.25 || m.At(1, 0) != 0.75 {
		t.Errorf("column 0 wrong: %v %v", m.At(0, 0), m.At(1, 0))
	}
}

func TestNormalizeColumnsNoFill(t *testing.T) {
	m := FromRows([][]float64{{0}, {0}})
	zero := m.NormalizeColumns(false)
	if zero != 1 {
		t.Errorf("zero columns = %d, want 1", zero)
	}
	if m.At(0, 0) != 0 || m.At(1, 0) != 0 {
		t.Errorf("no-fill mode must leave zero columns at zero")
	}
}

func TestIsColumnStochasticRejects(t *testing.T) {
	m := FromRows([][]float64{{0.5}, {0.6}})
	if m.IsColumnStochastic(1e-9) {
		t.Errorf("column summing to 1.1 should not be stochastic")
	}
	m2 := FromRows([][]float64{{-0.1}, {1.1}})
	if m2.IsColumnStochastic(1e-9) {
		t.Errorf("negative entry should not be stochastic")
	}
}

func TestCosineMatrix(t *testing.T) {
	feats := [][]float64{
		{1, 0},
		{1, 0},
		{0, 1},
		{0, 0}, // featureless node
	}
	c := CosineMatrix(feats)
	if got := c.At(0, 1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("identical features cosine = %v, want 1", got)
	}
	if got := c.At(0, 2); got != 0 {
		t.Errorf("orthogonal features cosine = %v, want 0", got)
	}
	if got := c.At(3, 3); got != 0 {
		t.Errorf("featureless diagonal = %v, want 0", got)
	}
	if got := c.At(0, 3); got != 0 {
		t.Errorf("featureless off-diagonal = %v, want 0", got)
	}
	// Symmetry.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if c.At(i, j) != c.At(j, i) {
				t.Fatalf("CosineMatrix not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestCosineMatrixClampsNegative(t *testing.T) {
	c := CosineMatrix([][]float64{{1, 0}, {-1, 0}})
	if got := c.At(0, 1); got != 0 {
		t.Errorf("negative cosine must clamp to 0 for transition weights, got %v", got)
	}
}

func TestCloneMatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Errorf("Clone shares storage")
	}
}

func TestStringFormat(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0.25}})
	s := m.String()
	if !strings.Contains(s, "0.5000 0.2500") {
		t.Errorf("String = %q", s)
	}
}

// Property: MulVec with a column-stochastic matrix preserves the simplex.
func TestStochasticMulVecPreservesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		m.NormalizeColumns(true)
		x := make(Vector, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		if !Normalize1(x) {
			continue
		}
		dst := New(n)
		m.MulVec(x, dst)
		if !IsStochastic(dst, 1e-9) {
			t.Fatalf("trial %d: stochastic matvec left simplex: sum=%v", trial, Sum(dst))
		}
	}
}

func TestMulVecAliasingPanics(t *testing.T) {
	m := Identity(2)
	x := Vector{1, 2}
	dstShort := New(1)
	defer func() {
		if recover() == nil {
			t.Errorf("MulVec with wrong dst length should panic")
		}
	}()
	m.MulVec(x, dstShort)
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Mul with mismatched shapes should panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestNormalizeColumnsEmptyMatrix(t *testing.T) {
	m := NewMatrix(0, 0)
	if got := m.NormalizeColumns(true); got != 0 {
		t.Errorf("empty matrix zero columns = %d, want 0", got)
	}
	if math.IsNaN(Sum(m.Data)) {
		t.Errorf("empty matrix produced NaN")
	}
}
