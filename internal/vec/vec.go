// Package vec provides the small dense linear-algebra kernels used by the
// rest of the repository: vectors, row-major matrices, norms, stochastic
// normalisation and cosine similarity.
//
// Everything is written against plain float64 slices so callers can reuse
// buffers across iterations without allocation; functions that write into a
// destination slice follow the dst-first convention of the standard library
// (copy, append).
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector = []float64

// New returns a zero vector of length n.
func New(n int) Vector { return make(Vector, n) }

// Uniform returns the uniform probability vector of length n (each entry
// 1/n). It returns an empty vector when n <= 0.
func Uniform(n int) Vector {
	if n <= 0 {
		return nil
	}
	v := make(Vector, n)
	p := 1 / float64(n)
	for i := range v {
		v[i] = p
	}
	return v
}

// Basis returns the length-n standard basis vector with a one at index i.
func Basis(n, i int) Vector {
	v := make(Vector, n)
	v[i] = 1
	return v
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	if v == nil {
		return nil
	}
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product of a and b. It panics when the lengths
// differ, since that is always a programming error.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Axpy computes dst = dst + alpha*x, in place.
func Axpy(alpha float64, x, dst Vector) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d vs %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every entry of v by alpha, in place.
func Scale(alpha float64, v Vector) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every entry of v to value.
func Fill(v Vector, value float64) {
	for i := range v {
		v[i] = value
	}
}

// Sum returns the sum of the entries of v.
func Sum(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the L1 norm of v.
func Norm1(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Diff1 returns the L1 distance between a and b without allocating.
func Diff1(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Diff1 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += math.Abs(x - b[i])
	}
	return s
}

// Normalize1 rescales v in place so its entries sum to one. When the sum is
// zero (or not finite) it leaves v untouched and reports false.
func Normalize1(v Vector) bool {
	s := Sum(v)
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false
	}
	Scale(1/s, v)
	return true
}

// Argmax returns the index of the largest entry of v, breaking ties toward
// the smaller index. It returns -1 for an empty vector.
func Argmax(v Vector) int {
	if len(v) == 0 {
		return -1
	}
	best, arg := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, arg = v[i], i
		}
	}
	return arg
}

// IsStochastic reports whether v is entrywise nonnegative and sums to one
// within tol.
func IsStochastic(v Vector, tol float64) bool {
	for _, x := range v {
		if x < -tol || math.IsNaN(x) {
			return false
		}
	}
	return math.Abs(Sum(v)-1) <= tol
}

// Cosine returns the cosine similarity of a and b. Two zero vectors have
// similarity zero rather than NaN, which is the convention the paper's
// feature graph needs for featureless nodes.
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Cosine length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i, x := range a {
		dot += x * b[i]
		na += x * x
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
