package vec

// Multi-right-hand-side (blocked) companions to MulVec. The batched
// solver advances all classes at once, so the feature product becomes a
// dense SpMM-style pass: each matrix row is streamed once and applied to
// every active class column. Per column the accumulation order over the
// row entries is identical to MulVec, so column c of the blocked result
// is bitwise equal to MulVec run on column c alone.

import (
	"fmt"
	"sync"

	"tmark/internal/obs"
	"tmark/internal/par"
)

// MulVecBatch computes the blocked product dst = m·x for b interleaved
// right-hand sides: x is a Cols×b block, dst a Rows×b block (both
// node-major, stride b), and dst must not alias x.
func (m *Matrix) MulVecBatch(x, dst []float64, b int) {
	if b <= 0 {
		panic(fmt.Sprintf("vec: MulVecBatch column count %d", b))
	}
	if len(x) < m.Cols*b {
		panic(fmt.Sprintf("vec: MulVecBatch x block %d, want %d", len(x), m.Cols*b))
	}
	if len(dst) < m.Rows*b {
		panic(fmt.Sprintf("vec: MulVecBatch dst block %d, want %d", len(dst), m.Rows*b))
	}
	m.mulBatchRows(x, dst, b, 0, m.Rows)
}

// mulBatchRows computes rows [lo, hi) of the blocked product; each output
// cell is owned by exactly one caller, so disjoint row ranges can run
// concurrently.
func (m *Matrix) mulBatchRows(x, dst []float64, b, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out := dst[i*b : (i+1)*b]
		for c := range out {
			out[c] = 0
		}
		for j, v := range row {
			xr := x[j*b : (j+1)*b]
			for c, xv := range xr {
				out[c] += v * xv
			}
		}
	}
}

// MulBatchScratch holds the reusable dispatch state of the dense
// MulVecBatchParallel; see MulScratch for the contract.
type MulBatchScratch struct {
	shards int
	task   denseMulBatchTask
	wg     sync.WaitGroup

	// Probe, when non-nil, counts MulVecBatchParallel calls, the dense
	// cells they stream, and the columns they apply them to.
	Probe *obs.Probe
}

// NewMulBatchScratch returns batch scratch for the given shard count.
// shards < 1 is treated as 1.
func NewMulBatchScratch(shards int) *MulBatchScratch {
	if shards < 1 {
		shards = 1
	}
	return &MulBatchScratch{shards: shards}
}

type denseMulBatchTask struct {
	m      *Matrix
	x, dst []float64
	b      int
}

func (t *denseMulBatchTask) RunShard(shard, shards int) {
	lo, hi := par.Split(t.m.Rows, shards, shard)
	t.m.mulBatchRows(t.x, t.dst, t.b, lo, hi)
}

// MulVecBatchParallel is MulVecBatch with the rows sharded across the
// pool, using the same row split as MulVecParallel (boundaries depend
// only on Rows and the shard count, never on b). Each row is computed by
// exactly one worker with the serial arithmetic, so the result is
// bitwise identical to MulVecBatch. A nil/serial pool or single-shard
// scratch falls back to the serial path.
func (m *Matrix) MulVecBatchParallel(p *par.Pool, s *MulBatchScratch, x, dst []float64, b int) {
	if p.Serial() || s == nil || s.shards <= 1 || m.Rows == 0 {
		m.MulVecBatch(x, dst, b)
		return
	}
	if b <= 0 || len(x) < m.Cols*b || len(dst) < m.Rows*b {
		panic(fmt.Sprintf("vec: MulVecBatchParallel blocks %d/%d for %dx%d with %d columns",
			len(x), len(dst), m.Rows, m.Cols, b))
	}
	s.Probe.ObserveCols(m.Rows*m.Cols, b)
	s.task.m, s.task.x, s.task.dst, s.task.b = m, x, dst, b
	p.Run(s.shards, &s.task, &s.wg)
	s.task.x, s.task.dst = nil, nil
}
