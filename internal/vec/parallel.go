package vec

// Parallel companions to the dense-matrix operations on the solver's hot
// and construction paths. All of them produce results bitwise identical to
// their serial counterparts: work is partitioned so that every output cell
// is written by exactly one worker with unchanged arithmetic.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tmark/internal/obs"
	"tmark/internal/par"
)

// MulScratch holds the reusable dispatch state of the dense MulVecParallel.
// Build one per solver run with NewMulScratch; steady-state calls then
// allocate nothing. A scratch must not be shared by concurrent calls.
type MulScratch struct {
	shards int
	task   denseMulTask
	wg     sync.WaitGroup

	// Probe, when non-nil, counts MulVecParallel calls and the dense cells
	// they touch; nil disables observation.
	Probe *obs.Probe
}

// NewMulScratch returns scratch for the given shard count. shards < 1 is
// treated as 1.
func NewMulScratch(shards int) *MulScratch {
	if shards < 1 {
		shards = 1
	}
	return &MulScratch{shards: shards}
}

type denseMulTask struct {
	m      *Matrix
	x, dst []float64
}

func (t *denseMulTask) RunShard(shard, shards int) {
	m := t.m
	lo, hi := par.Split(m.Rows, shards, shard)
	x := t.x
	for i := lo; i < hi; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		t.dst[i] = s
	}
}

// MulVecParallel computes dst = m·x like MulVec with the rows sharded
// across the pool. Dense rows cost the same, so plain equal ranges
// balance. Bitwise identical to MulVec; a nil/serial pool or single-shard
// scratch falls back to the serial path.
func (m *Matrix) MulVecParallel(p *par.Pool, s *MulScratch, x, dst Vector) {
	if p.Serial() || s == nil || s.shards <= 1 || m.Rows == 0 {
		m.MulVec(x, dst)
		return
	}
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVecParallel x length %d, want %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("vec: MulVecParallel dst length %d, want %d", len(dst), m.Rows))
	}
	s.Probe.Observe(m.Rows * m.Cols)
	s.task.m, s.task.x, s.task.dst = m, x, dst
	p.Run(s.shards, &s.task, &s.wg)
	s.task.x, s.task.dst = nil, nil
}

// cosineTask computes cosine rows strided by shard: row i does n−i dot
// products, so striding balances the triangular workload across workers.
type cosineTask struct {
	features [][]float64
	norms    []float64
	m        *Matrix
}

func (t *cosineTask) RunShard(shard, shards int) {
	for i := shard; i < len(t.features); i += shards {
		cosineRow(t.m, t.features, t.norms, i)
	}
}

// CosineMatrixPar is CosineMatrix with the O(n²·d) pairwise dot products
// spread over the pool. Every cell is written by exactly one worker, so
// the result is bitwise identical to the serial build.
func CosineMatrixPar(features [][]float64, p *par.Pool) *Matrix {
	if p.Serial() || len(features) <= 1 {
		return CosineMatrix(features)
	}
	n := len(features)
	m := NewMatrix(n, n)
	norms := make([]float64, n)
	for i, f := range features {
		norms[i] = Norm2(f)
	}
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	t := &cosineTask{features: features, norms: norms, m: m}
	var wg sync.WaitGroup
	p.Run(shards, t, &wg)
	return m
}

// NormalizeColumnsPar is NormalizeColumns with the column sweeps spread
// over the pool; columns are independent, so the per-column arithmetic —
// and hence the result — matches the serial method exactly.
func (m *Matrix) NormalizeColumnsPar(fillUniform bool, p *par.Pool) int {
	if p.Serial() {
		return m.NormalizeColumns(fillUniform)
	}
	var zero int64
	p.For(m.Cols, func(lo, hi int) {
		z := m.normalizeColumnRange(lo, hi, fillUniform)
		atomic.AddInt64(&zero, int64(z))
	})
	return int(zero)
}
