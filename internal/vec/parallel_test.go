package vec

import (
	"math/rand"
	"testing"

	"tmark/internal/par"
)

func randomFeatures(rng *rand.Rand, n, d int) [][]float64 {
	f := make([][]float64, n)
	for i := range f {
		f[i] = make([]float64, d)
		if i%7 == 0 {
			continue // featureless node: zero vector
		}
		for j := range f[i] {
			f[i][j] = rng.Float64()
		}
	}
	return f
}

// Every cosine cell is written by exactly one worker with unchanged
// arithmetic, so the parallel build must be bitwise identical.
func TestCosineMatrixParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 13, 64} {
		f := randomFeatures(rng, n, 8)
		want := CosineMatrix(f)
		for _, workers := range []int{2, 5} {
			p := par.New(workers)
			got := CosineMatrixPar(f, p)
			p.Close()
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d workers=%d: cell %d = %v, want %v", n, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestNormalizeColumnsParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			if rng.Float64() < 0.6 {
				a.Data[i] = rng.Float64()
			}
		}
		b := a.Clone()
		wantZero := a.NormalizeColumns(true)
		p := par.New(3)
		gotZero := b.NormalizeColumnsPar(true, p)
		p.Close()
		if wantZero != gotZero {
			t.Fatalf("trial %d: zero-column count %d, want %d", trial, gotZero, wantZero)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("trial %d: cell %d = %v, want %v", trial, i, b.Data[i], a.Data[i])
			}
		}
	}
}

func TestDenseMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 1+rng.Intn(80), 1+rng.Intn(40)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.MulVec(x, want)
		p := par.New(4)
		s := NewMulScratch(4)
		got := make([]float64, rows)
		m.MulVecParallel(p, s, x, got)
		p.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: row %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDenseMulVecParallelZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMatrix(300, 300)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	x := make([]float64, 300)
	dst := make([]float64, 300)
	p := par.New(4)
	defer p.Close()
	s := NewMulScratch(4)
	if allocs := testing.AllocsPerRun(50, func() {
		m.MulVecParallel(p, s, x, dst)
	}); allocs != 0 {
		t.Errorf("dense MulVecParallel allocates %v per call, want 0", allocs)
	}
}
