package dataset

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
)

// RingConfig parameterises the synthetic Ring network: class communities
// laid out as arcs of one large cycle. Its defining property is the
// opposite of DBLP's — diffusion is slow. The cycle's spectral gap
// shrinks with its circumference, so the power method's contraction sits
// near 1 − α and a solve takes hundreds of iterations where the
// expander-like conference networks take a dozen. That makes it the
// stress fixture for the accelerated tier, whose extrapolated jumps pay
// off exactly in this long-geometric-tail regime.
type RingConfig struct {
	Seed int64
	// Classes is the number of arc communities (and label classes).
	Classes int
	// ArcLength is the number of nodes per arc; the cycle has
	// Classes × ArcLength nodes.
	ArcLength int
	// ChordEvery adds one random long-range chord per this many nodes
	// (0 disables). Chords are the noise link type: they shortcut the
	// cycle across arbitrary arcs, so the link ranking should discount
	// them against the class-respecting neighbour steps.
	ChordEvery int
}

// DefaultRingConfig returns the size used by the experiments: a
// four-class, 240-node cycle with sparse chords.
func DefaultRingConfig(seed int64) RingConfig {
	return RingConfig{Seed: seed, Classes: 4, ArcLength: 60, ChordEvery: 12}
}

// Ring generates the slow-mixing cycle network: Classes arcs of
// ArcLength nodes each, joined into one cycle. Three link types: "next"
// steps along the cycle, "self" is a lazy self-loop on every node — it
// keeps the walk aperiodic, so the slow eigenmode is positive and the
// iterates decay geometrically instead of oscillating — and "chord"
// holds the sparse random shortcuts. Every node is labelled with its
// arc's class; nodes carry no features (the network is purely
// relational).
func Ring(cfg RingConfig) *hin.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := make([]string, cfg.Classes)
	for c := range names {
		names[c] = fmt.Sprintf("Arc%d", c)
	}
	g := hin.New(names...)
	next := g.AddRelation("next", false)
	self := g.AddRelation("self", false)
	chord := g.AddRelation("chord", false)

	total := cfg.Classes * cfg.ArcLength
	for i := 0; i < total; i++ {
		g.AddNode(fmt.Sprintf("r%d", i), nil)
	}
	for i := 0; i < total; i++ {
		g.AddEdge(next, i, (i+1)%total)
		g.AddEdge(self, i, i)
		g.SetLabels(i, i/cfg.ArcLength)
	}
	if cfg.ChordEvery > 0 {
		for k := 0; k < total/cfg.ChordEvery; k++ {
			from := rng.Intn(total)
			to := rng.Intn(total)
			if from != to {
				g.AddEdge(chord, from, to)
			}
		}
	}
	return g
}
