package dataset

// Fuzzing for the COO ingest path: arbitrary bytes must either produce
// a validating graph within the declared dims or an error — never a
// panic (the hin builder panics on out-of-range writes, so every index
// must be checked before it reaches the builder). Additional seed
// inputs live in testdata/fuzz/FuzzReadCOO.

import (
	"math"
	"strings"
	"testing"
)

func FuzzReadCOO(f *testing.F) {
	f.Add(cooSample)
	f.Add("coo 2 1 1\ne 0 0 1\n")
	f.Add("coo 2 1 1\ne 0 0 1 NaN\n")
	f.Add("coo 2 1 1\ne 0 0 1 +Inf\n")
	f.Add("coo 2 1 1\ne 0 0 1 1e999\n")
	f.Add("coo 2 1 1\ne 0 0 1\ne 0 0 1\n")
	f.Add("coo 2 1 1\ne 0 5 1\n")
	f.Add("coo 2 1 1\ne 0 -1 1\n")
	f.Add("coo 99999999999999999999 1 1\n")
	f.Add("coo 2 1 1 # trailing comment\ne 0 0 1 # another\n")
	f.Add("coo\t2 1 1\r\ne 0 1 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadCOO panicked: %v (input %q)", r, data)
			}
		}()
		g, err := ReadCOO(strings.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("ReadCOO returned invalid graph: %v", vErr)
		}
		for k := range g.Relations {
			for _, e := range g.Relations[k].Edges {
				if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
					t.Fatalf("accepted graph carries weight %v", e.Weight)
				}
				if e.From < 0 || e.From >= g.N() || e.To < 0 || e.To >= g.N() {
					t.Fatalf("accepted graph carries edge (%d, %d) outside %d nodes", e.From, e.To, g.N())
				}
			}
		}
	})
}
