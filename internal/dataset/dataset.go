// Package dataset generates the four evaluation networks of the paper as
// seeded synthetic equivalents (the original DBLP / IMDB / NUS-WIDE / ACM
// dumps are not redistributable and unavailable offline). Each generator
// preserves the structural properties the experiments measure:
//
//   - DBLP: link types (conferences) whose connections concentrate within
//     one research area, plus class-correlated title words;
//   - Movies: extremely sparse per-type links (directors), which is what
//     makes the EMR ensemble win Table 4;
//   - NUS: a large tag pool in which tag *purity* and tag *frequency*
//     diverge, driving the Tagset1 vs Tagset2 gap of Table 8;
//   - ACM: multi-label publications with six link types of differing
//     class-coherence ("concept" and "conference" highest, as in Fig. 5).
//
// All generators are deterministic functions of their Config seeds.
package dataset

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
)

// bagOfWords draws a document of length tokens: with probability focus a
// token from the class's own vocabulary block, otherwise a shared noise
// token. vocab is split into q equal class blocks followed by a noise
// block.
func bagOfWords(rng *rand.Rand, class, q, vocab, classBlock, tokens int, focus float64) []float64 {
	return bagOfWordsPick(rng, func() int { return class }, q, vocab, classBlock, tokens, focus)
}

// bagOfWordsPick generalises bagOfWords to a per-token class picker, so
// generators can model nodes whose content mixes two classes.
func bagOfWordsPick(rng *rand.Rand, pick func() int, q, vocab, classBlock, tokens int, focus float64) []float64 {
	doc := make([]float64, vocab)
	noiseStart := q * classBlock
	noiseSize := vocab - noiseStart
	for w := 0; w < tokens; w++ {
		if rng.Float64() < focus {
			doc[pick()*classBlock+rng.Intn(classBlock)]++
		} else if noiseSize > 0 {
			doc[noiseStart+rng.Intn(noiseSize)]++
		} else {
			doc[rng.Intn(vocab)]++
		}
	}
	return doc
}

// linkGroup wires the member nodes of one group (a conference's authors, a
// director's movies, a tag's images) into relation rel: every member links
// to ≈degree random other members. Groups of one node produce no edges.
func linkGroup(g *hin.Graph, rng *rand.Rand, rel int, members []int, degree int) {
	if len(members) < 2 {
		return
	}
	for _, u := range members {
		for e := 0; e < degree; e++ {
			v := members[rng.Intn(len(members))]
			if v != u {
				g.AddEdge(rel, u, v)
			}
		}
	}
}

// pickDistinct samples k distinct ints from [0, n); k must not exceed n.
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("dataset: pickDistinct %d from %d", k, n))
	}
	perm := rng.Perm(n)
	return perm[:k]
}
