package dataset

import "tmark/internal/hin"

// Example builds the worked bibliography network of Section 3.2/4.3: four
// publications (p1..p4), relations co-author / citation / same-conference,
// classes DM and CV, with p1 labelled DM and p2 labelled CV. The feature
// vectors realise the cosine matrix C of Section 4.3 (p1~p4, p2~p3).
func Example() *hin.Graph {
	g := hin.New("DM", "CV")
	p1 := g.AddNode("p1 (TKDE 2008)", []float64{1, 0})
	p2 := g.AddNode("p2 (WWW 2016)", []float64{0, 1})
	p3 := g.AddNode("p3 (WWW 2019)", []float64{0, 1})
	p4 := g.AddNode("p4 (SIGMOD 2014)", []float64{1, 0})

	co := g.AddRelation("co-author", false)
	cite := g.AddRelation("citation", true)
	conf := g.AddRelation("same-conference", false)

	g.AddEdge(co, p1, p2)   // p1 and p2 share Jiawei Han
	g.AddEdge(cite, p3, p2) // p3 cites p2
	g.AddEdge(cite, p3, p4) // p3 cites p4
	g.AddEdge(cite, p4, p1) // p4 cites p1
	g.AddEdge(conf, p2, p3) // both at WWW

	g.SetLabels(p1, 0) // DM
	g.SetLabels(p2, 1) // CV
	return g
}

// ExampleTruth returns the ground-truth classes of the worked example
// (p3 is CV, p4 is DM).
func ExampleTruth() []int { return []int{0, 1, 1, 0} }
