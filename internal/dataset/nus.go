package dataset

import (
	"math/rand"

	"tmark/internal/hin"
)

// NUSClasses are the two high-level concepts of the NUS-WIDE experiment.
var NUSClasses = []string{"Scene", "Object"}

// Tag describes one user tag of the NUS tag pool: its class affinity, how
// pure its usage is (probability an image carrying it belongs to the
// affinity class) and how frequent it is (fraction of images carrying it).
// Purity and frequency are the two axes the link-selection experiment of
// Section 6.3 plays against each other.
type Tag struct {
	Name   string
	Object bool // affinity: false = Scene, true = Object
	Purity float64
	Freq   float64
}

// nusSharedTags appear in both tag sets: pure and frequent.
var nusSharedTags = []Tag{
	{"sky", false, 0.76, 0.06}, {"water", false, 0.75, 0.06}, {"clouds", false, 0.76, 0.06},
	{"landscape", false, 0.76, 0.05}, {"sunset", false, 0.75, 0.05}, {"architecture", false, 0.74, 0.04},
	{"portrait", true, 0.76, 0.05}, {"reflection", false, 0.73, 0.04}, {"animal", true, 0.75, 0.04},
	{"building", false, 0.72, 0.04}, {"animals", true, 0.74, 0.04}, {"lake", false, 0.74, 0.04},
	{"abandoned", false, 0.72, 0.04}, {"window", false, 0.71, 0.04}, {"cat", true, 0.76, 0.04},
	{"sunrise", false, 0.72, 0.04}, {"zoo", true, 0.74, 0.04}, {"bridge", false, 0.72, 0.04},
	{"dog", true, 0.75, 0.04},
}

// nusPureTags complete Tagset1: high purity, moderate frequency.
var nusPureTags = []Tag{
	{"mountains", false, 0.97, 0.10}, {"cute", true, 0.96, 0.10}, {"grass", false, 0.96, 0.10},
	{"mountain", false, 0.97, 0.10}, {"cloud", false, 0.96, 0.10}, {"fall", true, 0.94, 0.10},
	{"face", true, 0.97, 0.10}, {"square", false, 0.94, 0.10}, {"rain", true, 0.94, 0.10},
	{"airplane", true, 0.97, 0.10}, {"eyes", true, 0.97, 0.10}, {"home", false, 0.94, 0.10},
	{"cold", false, 0.94, 0.10}, {"windows", false, 0.95, 0.10}, {"sign", false, 0.94, 0.10},
	{"flying", true, 0.95, 0.10}, {"plane", true, 0.96, 0.10}, {"arizona", false, 0.95, 0.10},
	{"manhattan", false, 0.96, 0.10}, {"peace", false, 0.93, 0.10}, {"rural", false, 0.95, 0.10},
	{"sports", true, 0.96, 0.10},
}

// nusFrequentTags complete Tagset2: very frequent but nearly uninformative.
var nusFrequentTags = []Tag{
	{"nature", false, 0.51, 0.45}, {"blue", false, 0.50, 0.43}, {"red", false, 0.50, 0.42},
	{"green", false, 0.51, 0.40}, {"bravo", false, 0.50, 0.39}, {"explore", false, 0.50, 0.38},
	{"white", false, 0.50, 0.37}, {"night", false, 0.52, 0.36}, {"city", false, 0.53, 0.35},
	{"travel", false, 0.50, 0.34}, {"trees", false, 0.52, 0.33}, {"california", false, 0.50, 0.32},
	{"girl", true, 0.54, 0.31}, {"interestingness", false, 0.50, 0.31}, {"river", false, 0.52, 0.30},
	{"baby", true, 0.54, 0.30}, {"buildings", false, 0.53, 0.29}, {"food", true, 0.53, 0.29},
	{"storm", false, 0.52, 0.28}, {"moon", false, 0.51, 0.28}, {"skyline", false, 0.53, 0.27},
	{"cats", true, 0.54, 0.27},
}

// Tagset1 returns the 41 purity-selected tags of Table 6.
func Tagset1() []Tag {
	out := append([]Tag(nil), nusSharedTags...)
	return append(out, nusPureTags...)
}

// Tagset2 returns the 41 frequency-selected tags of Table 7.
func Tagset2() []Tag {
	out := append([]Tag(nil), nusSharedTags...)
	return append(out, nusFrequentTags...)
}

// NUSConfig parameterises the synthetic NUS-WIDE image network.
type NUSConfig struct {
	Seed   int64
	Images int
	// Vocab / TokensPerImage / FeatureFocus shape the SIFT-like visual
	// bag-of-words; the experiments show tags dominate features on NUS, so
	// the focus is low.
	Vocab          int
	TokensPerImage int
	FeatureFocus   float64
	// LinkDegree is the per-tag linking degree.
	LinkDegree int
	// Confusion is the fraction of images whose visual content and tagging
	// behave like the other class (a scene photo dominated by an object,
	// say); it caps the best achievable accuracy near the paper's 0.96.
	Confusion float64
}

// DefaultNUSConfig returns the size used by the experiments.
func DefaultNUSConfig(seed int64) NUSConfig {
	return NUSConfig{
		Seed:           seed,
		Images:         400,
		Vocab:          100,
		TokensPerImage: 16,
		FeatureFocus:   0.36,
		LinkDegree:     3,
		Confusion:      0.05,
	}
}

// NUS generates the Scene/Object image network using the given tag set as
// its link types. The same seed with different tag sets yields the same
// images with different connectivity, matching the paper's controlled
// comparison.
func NUS(cfg NUSConfig, tags []Tag) *hin.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hin.New(NUSClasses...)
	q := len(NUSClasses)
	classBlock := cfg.Vocab / (q + 1)

	// byBehavior groups images by how their content and tagging read, which
	// differs from the label for the Confusion fraction.
	byBehavior := make([][]int, q)
	for i := 0; i < cfg.Images; i++ {
		class := i % q
		behavior := class
		if rng.Float64() < cfg.Confusion {
			behavior = 1 - class
		}
		f := bagOfWords(rng, behavior, q, cfg.Vocab, classBlock, cfg.TokensPerImage, cfg.FeatureFocus)
		id := g.AddNode("", f)
		g.SetLabels(id, class)
		byBehavior[behavior] = append(byBehavior[behavior], id)
	}

	// Tag memberships follow each tag's frequency and purity; the tag RNG
	// is derived from the tag name so both tag sets see identical usage for
	// the shared tags.
	for _, tag := range tags {
		rel := g.AddRelation(tag.Name, false)
		trng := rand.New(rand.NewSource(cfg.Seed ^ nameSeed(tag.Name)))
		count := int(tag.Freq * float64(cfg.Images))
		if count < 2 {
			count = 2
		}
		affinity := 0
		if tag.Object {
			affinity = 1
		}
		members := make([]int, 0, count)
		seen := make(map[int]bool, count)
		for len(members) < count {
			class := affinity
			if trng.Float64() >= tag.Purity {
				class = 1 - affinity
			}
			img := byBehavior[class][trng.Intn(len(byBehavior[class]))]
			if !seen[img] {
				seen[img] = true
				members = append(members, img)
			}
		}
		linkGroup(g, trng, rel, members, cfg.LinkDegree)
	}
	return g
}

// nameSeed derives a stable seed from a tag name (FNV-1a).
func nameSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
