package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tmark/internal/hin"
)

// LoadSpec resolves one dataset spec — the grammar shared by tmarkd's
// -dataset flag, `tmark build` and `tmark -data`: a file path dispatched
// on extension (.json for the hin.Graph JSON codec, .csv for a
// from,to,relation edge list, .coo for sparse-coordinate tensor text),
// or the name of a built-in synthetic generator (example, dblp, movies,
// nus, acm or ring), seeded by seed.
func LoadSpec(spec string, seed int64) (*hin.Graph, error) {
	switch ext := strings.ToLower(filepath.Ext(spec)); ext {
	case ".json":
		return hin.LoadFile(spec)
	case ".csv", ".coo":
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if ext == ".csv" {
			return hin.ReadEdgeCSV(f)
		}
		return ReadCOO(f)
	case "":
		switch spec {
		case "example":
			return Example(), nil
		case "dblp":
			return DBLP(DefaultDBLPConfig(seed)), nil
		case "movies":
			return Movies(DefaultMoviesConfig(seed)), nil
		case "nus":
			return NUS(DefaultNUSConfig(seed), Tagset1()), nil
		case "acm":
			return ACM(DefaultACMConfig(seed)), nil
		case "ring":
			return Ring(DefaultRingConfig(seed)), nil
		}
		return nil, fmt.Errorf("unknown built-in dataset %q (want example, dblp, movies, nus, acm or ring)", spec)
	default:
		return nil, fmt.Errorf("unsupported dataset format %q (want .json, .csv or .coo)", ext)
	}
}
