package dataset

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
)

// RelationSpec describes one link type of a synthetic network.
type RelationSpec struct {
	Name string
	// Homophily is the probability an edge of this type connects two
	// nodes of the same class; (1−Homophily) edges pair random classes.
	Homophily float64
	// Edges is the number of edges of this type.
	Edges int
	// Directed marks the relation as one-way.
	Directed bool
}

// SynthConfig describes a fully generic stochastic-block-model-style HIN:
// a number of classes, nodes with class-correlated bag-of-words features,
// and an arbitrary set of link types with individual homophily levels. It
// is the workhorse for property tests, fuzz-style experiments and custom
// benchmarks beyond the four paper datasets.
type SynthConfig struct {
	Seed          int64
	Classes       []string
	NodesPerClass int
	// Vocab / TokensPerNode / FeatureFocus shape the node features, as in
	// the paper-specific generators; FeatureFocus 0 generates no features.
	Vocab         int
	TokensPerNode int
	FeatureFocus  float64
	// Relations lists the link types to generate.
	Relations []RelationSpec
	// LabelFraction keeps this fraction of labels per class (1 = all).
	LabelFraction float64
}

// Validate checks the configuration.
func (c SynthConfig) Validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("dataset: synth needs classes")
	}
	if c.NodesPerClass <= 0 {
		return fmt.Errorf("dataset: synth NodesPerClass %d", c.NodesPerClass)
	}
	if len(c.Relations) == 0 {
		return fmt.Errorf("dataset: synth needs relations")
	}
	for _, r := range c.Relations {
		if r.Homophily < 0 || r.Homophily > 1 {
			return fmt.Errorf("dataset: relation %q homophily %v out of [0,1]", r.Name, r.Homophily)
		}
		if r.Edges < 0 {
			return fmt.Errorf("dataset: relation %q negative edges", r.Name)
		}
	}
	if c.LabelFraction < 0 || c.LabelFraction > 1 {
		return fmt.Errorf("dataset: label fraction %v out of [0,1]", c.LabelFraction)
	}
	return nil
}

// Synth generates the configured network. Nodes are laid out class-major;
// labels beyond LabelFraction per class are withheld (the node stays
// unlabelled, as a test target).
func Synth(cfg SynthConfig) (*hin.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hin.New(cfg.Classes...)
	q := len(cfg.Classes)
	labelFraction := cfg.LabelFraction
	if labelFraction == 0 {
		labelFraction = 1
	}

	byClass := make([][]int, q)
	for c := 0; c < q; c++ {
		labelled := int(labelFraction * float64(cfg.NodesPerClass))
		if labelled < 1 {
			labelled = 1
		}
		for i := 0; i < cfg.NodesPerClass; i++ {
			var features []float64
			if cfg.FeatureFocus > 0 && cfg.Vocab > 0 {
				block := cfg.Vocab / (q + 1)
				if block == 0 {
					block = 1
				}
				features = bagOfWords(rng, c, q, cfg.Vocab, block, cfg.TokensPerNode, cfg.FeatureFocus)
			}
			id := g.AddNode(fmt.Sprintf("%s-%d", cfg.Classes[c], i), features)
			if i < labelled {
				g.SetLabels(id, c)
			}
			byClass[c] = append(byClass[c], id)
		}
	}

	for _, spec := range cfg.Relations {
		rel := g.AddRelation(spec.Name, spec.Directed)
		for e := 0; e < spec.Edges; e++ {
			cu := rng.Intn(q)
			u := byClass[cu][rng.Intn(len(byClass[cu]))]
			var v int
			if rng.Float64() < spec.Homophily {
				v = byClass[cu][rng.Intn(len(byClass[cu]))]
			} else {
				cv := rng.Intn(q)
				v = byClass[cv][rng.Intn(len(byClass[cv]))]
			}
			if u != v {
				g.AddEdge(rel, u, v)
			}
		}
	}
	return g, nil
}
