package dataset

import (
	"math/rand"

	"tmark/internal/hin"
)

// DBLPAreas lists the four research areas of the DBLP benchmark.
var DBLPAreas = []string{"DB", "DM", "AI", "IR"}

// DBLPConferences maps each area to its five conferences (Table 1 of the
// paper). The flattened order defines the 20 link types of the network.
var DBLPConferences = [][]string{
	{"VLDB", "SIGMOD", "ICDE", "EDBT", "PODS"},
	{"KDD", "ICDM", "PAKDD", "SDM", "PKDD"},
	{"IJCAI", "AAAI", "ICML", "ECML", "CVPR"},
	{"SIGIR", "CIKM", "ECIR", "WWW", "WSDM"},
}

// DBLPConfig parameterises the synthetic DBLP author network.
type DBLPConfig struct {
	Seed           int64
	AuthorsPerArea int
	// Vocab is the bag-of-words dimensionality (split into 4 area blocks
	// plus shared noise).
	Vocab int
	// TokensPerAuthor is the document length of each author's title bag.
	TokensPerAuthor int
	// AreaFocus is the probability a token comes from the author's own
	// area vocabulary.
	AreaFocus float64
	// HomeConferenceBias is the probability a publication lands in one of
	// the author's own-area conferences.
	HomeConferenceBias float64
	// CrossAreaFraction is the share of authors who genuinely work across
	// two areas: their titles and venues mix a secondary area, which is
	// what keeps real-DBLP accuracy below ~0.94 no matter the method.
	CrossAreaFraction float64
	// CrossAreaShare is how often a cross-area author's tokens/venues come
	// from the secondary area.
	CrossAreaShare float64
	// PublicationsPerAuthor controls how many conference memberships each
	// author has.
	PublicationsPerAuthor int
	// CoAuthorDegree is the per-conference linking degree.
	CoAuthorDegree int
	// CrossConferences lists venues that attract authors from every area
	// (the paper's "noise links"): each also receives CrossAttendance
	// random memberships. Methods that weight all link types equally pay
	// for these; T-Mark's link ranking is designed to discount them.
	CrossConferences []string
	// CrossAttendance is the number of extra random memberships per cross
	// conference.
	CrossAttendance int
}

// DefaultDBLPConfig returns the size used by the experiments (fast yet
// structurally faithful).
func DefaultDBLPConfig(seed int64) DBLPConfig {
	return DBLPConfig{
		Seed:                  seed,
		AuthorsPerArea:        100,
		Vocab:                 140,
		TokensPerAuthor:       18,
		AreaFocus:             0.30,
		HomeConferenceBias:    0.85,
		PublicationsPerAuthor: 4,
		CoAuthorDegree:        3,
		CrossAreaFraction:     0.18,
		CrossAreaShare:        0.45,
		CrossConferences:      []string{"CIKM", "WWW", "CVPR"},
		CrossAttendance:       60,
	}
}

// DBLP generates the author classification network: 4 areas × AuthorsPerArea
// authors, 20 conference link types, bag-of-words title features, every
// author labelled with its research area.
func DBLP(cfg DBLPConfig) *hin.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hin.New(DBLPAreas...)
	q := len(DBLPAreas)
	classBlock := cfg.Vocab / (q + 1) // q area blocks + shared noise

	// Authors. Cross-area authors mix a secondary area into both their
	// vocabulary and (below) their venue choices.
	secondary := make([]int, 0, q*cfg.AuthorsPerArea)
	for area := 0; area < q; area++ {
		for a := 0; a < cfg.AuthorsPerArea; a++ {
			sec := area
			if rng.Float64() < cfg.CrossAreaFraction {
				sec = rng.Intn(q)
			}
			pick := func() int {
				if sec != area && rng.Float64() < cfg.CrossAreaShare {
					return sec
				}
				return area
			}
			f := bagOfWordsPick(rng, pick, q, cfg.Vocab, classBlock, cfg.TokensPerAuthor, cfg.AreaFocus)
			id := g.AddNode(DBLPAreas[area]+"-author", f)
			g.SetLabels(id, area)
			secondary = append(secondary, sec)
		}
	}

	// Conference link types, flattened area-major so relation k belongs to
	// area k/5.
	confRel := make([]int, 0, 20)
	for area := range DBLPConferences {
		for _, conf := range DBLPConferences[area] {
			confRel = append(confRel, g.AddRelation(conf, false))
			_ = area
		}
	}

	// Conference memberships: each author publishes in a few conferences,
	// mostly in the home area.
	membership := make([][]int, len(confRel)) // relation → member authors
	n := g.N()
	for author := 0; author < n; author++ {
		area := g.PrimaryLabel(author)
		for p := 0; p < cfg.PublicationsPerAuthor; p++ {
			home := area
			if sec := secondary[author]; sec != area && rng.Float64() < cfg.CrossAreaShare {
				home = sec
			}
			var conf int
			if rng.Float64() < cfg.HomeConferenceBias {
				conf = home*5 + rng.Intn(5)
			} else {
				conf = rng.Intn(len(confRel))
			}
			membership[conf] = append(membership[conf], author)
		}
	}
	// Cross-area venues additionally attract authors from everywhere.
	cross := make(map[string]bool, len(cfg.CrossConferences))
	for _, name := range cfg.CrossConferences {
		cross[name] = true
	}
	for k := range confRel {
		if cross[DBLPConferenceName(k)] {
			for a := 0; a < cfg.CrossAttendance; a++ {
				membership[k] = append(membership[k], rng.Intn(n))
			}
		}
	}
	for k, members := range membership {
		linkGroup(g, rng, confRel[k], members, cfg.CoAuthorDegree)
	}
	return g
}

// DBLPConferenceArea returns the home area index of conference link type k
// under the flattened ordering used by DBLP.
func DBLPConferenceArea(k int) int { return k / 5 }

// DBLPConferenceName returns the conference name of link type k.
func DBLPConferenceName(k int) string { return DBLPConferences[k/5][k%5] }
