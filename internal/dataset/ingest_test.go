package dataset

import (
	"strings"
	"testing"
)

const cooSample = `# tiny two-class network
coo 4 2 2
r 0 cites!
r 1 coauthor
l 0 0
l 3 1
e 0 0 1 2.5
e 0 1 2
e 1 2 3 0.5
e 1 3 0
`

func TestReadCOO(t *testing.T) {
	g, err := ReadCOO(strings.NewReader(cooSample))
	if err != nil {
		t.Fatalf("ReadCOO: %v", err)
	}
	if g.N() != 4 || g.M() != 2 || g.Q() != 2 {
		t.Fatalf("dims (%d, %d, %d), want (4, 2, 2)", g.N(), g.M(), g.Q())
	}
	if g.Relations[0].Name != "cites" || !g.Relations[0].Directed {
		t.Errorf("relation 0 = %q directed %v, want cites directed", g.Relations[0].Name, g.Relations[0].Directed)
	}
	if g.Relations[1].Name != "coauthor" || g.Relations[1].Directed {
		t.Errorf("relation 1 = %q directed %v, want coauthor undirected", g.Relations[1].Name, g.Relations[1].Directed)
	}
	if !g.HasLabel(0, 0) || !g.HasLabel(3, 1) || g.Labeled(1) || g.Labeled(2) {
		t.Errorf("labels wrong: %v %v %v %v", g.Nodes[0].Labels, g.Nodes[1].Labels, g.Nodes[2].Labels, g.Nodes[3].Labels)
	}
	if len(g.Relations[0].Edges) != 2 || len(g.Relations[1].Edges) != 2 {
		t.Fatalf("edge counts %d/%d, want 2/2", len(g.Relations[0].Edges), len(g.Relations[1].Edges))
	}
	if w := g.Relations[0].Edges[0].Weight; w != 2.5 {
		t.Errorf("edge weight %v, want 2.5", w)
	}
	if w := g.Relations[0].Edges[1].Weight; w != 1 {
		t.Errorf("default edge weight %v, want 1", w)
	}
}

func TestReadCOOMultiLabel(t *testing.T) {
	in := "coo 2 1 3\nl 0 2\nl 0 0\ne 0 0 1\n"
	g, err := ReadCOO(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCOO: %v", err)
	}
	if !g.HasLabel(0, 0) || !g.HasLabel(0, 2) || g.HasLabel(0, 1) {
		t.Fatalf("node 0 labels %v, want [0 2]", g.Nodes[0].Labels)
	}
}

func TestReadCOOErrors(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no header":          "e 0 0 1\n",
		"bad header":         "coo 4 2\n",
		"zero nodes":         "coo 0 1 1\ne 0 0 0\n",
		"huge dims":          "coo 99999999999 1 1\n",
		"relation range":     "coo 2 1 1\ne 1 0 1\n",
		"node range":         "coo 2 1 1\ne 0 0 2\n",
		"negative node":      "coo 2 1 1\ne 0 -1 1\n",
		"class range":        "coo 2 1 1\nl 0 1\ne 0 0 1\n",
		"nan weight":         "coo 2 1 1\ne 0 0 1 NaN\n",
		"inf weight":         "coo 2 1 1\ne 0 0 1 Inf\n",
		"overflow weight":    "coo 2 1 1\ne 0 0 1 1e999\n",
		"zero weight":        "coo 2 1 1\ne 0 0 1 0\n",
		"negative weight":    "coo 2 1 1\ne 0 0 1 -3\n",
		"duplicate edge":     "coo 2 1 1\ne 0 0 1 2\ne 0 0 1 5\n",
		"duplicate label":    "coo 2 1 1\nl 0 0\nl 0 0\ne 0 0 1\n",
		"duplicate relation": "coo 2 1 1\nr 0 a\nr 0 b\ne 0 0 1\n",
		"unknown record":     "coo 2 1 1\nx 0 0 1\n",
		"short edge":         "coo 2 1 1\ne 0 0\n",
		"no edges":           "coo 2 1 1\nl 0 0\n",
		"empty rel name":     "coo 2 1 1\nr 0 !\ne 0 0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadCOO(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
