package dataset

import (
	"math/rand"
	"testing"

	"tmark/internal/hin"
)

func TestDBLPShape(t *testing.T) {
	g := DBLP(DefaultDBLPConfig(1))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 400 {
		t.Errorf("N = %d, want 400", g.N())
	}
	if g.M() != 20 {
		t.Errorf("M = %d, want 20 conferences", g.M())
	}
	if g.Q() != 4 {
		t.Errorf("Q = %d, want 4 areas", g.Q())
	}
	perArea := make([]int, 4)
	for i := 0; i < g.N(); i++ {
		perArea[g.PrimaryLabel(i)]++
	}
	for a, cnt := range perArea {
		if cnt != 100 {
			t.Errorf("area %d has %d authors, want 100", a, cnt)
		}
	}
}

func TestDBLPDeterministic(t *testing.T) {
	a := DBLP(DefaultDBLPConfig(7))
	b := DBLP(DefaultDBLPConfig(7))
	if a.Stats().String() != b.Stats().String() {
		t.Errorf("same seed different graphs: %v vs %v", a.Stats(), b.Stats())
	}
	c := DBLP(DefaultDBLPConfig(8))
	if a.Stats().Edges == c.Stats().Edges {
		t.Errorf("different seeds gave identical edge counts (suspicious)")
	}
}

// The defining property: a conference's links mostly connect same-area
// authors.
func TestDBLPConferenceHomophily(t *testing.T) {
	cfg := DefaultDBLPConfig(2)
	g := DBLP(cfg)
	cross := map[string]bool{}
	for _, name := range cfg.CrossConferences {
		cross[name] = true
	}
	var cleanSum, crossSum float64
	cleanCount, crossCount := 0, 0
	for k := range g.Relations {
		var same, total float64
		for _, e := range g.Relations[k].Edges {
			total++
			if g.PrimaryLabel(e.From) == g.PrimaryLabel(e.To) {
				same++
			}
		}
		if total == 0 {
			continue
		}
		hom := same / total
		if cross[g.Relations[k].Name] {
			crossSum += hom
			crossCount++
			continue
		}
		cleanSum += hom
		cleanCount++
		// Chance level is 0.25; clean conferences must stay clearly
		// informative.
		if hom < 0.45 {
			t.Errorf("conference %s homophily %.2f too low", g.Relations[k].Name, hom)
		}
	}
	cleanMean := cleanSum / float64(cleanCount)
	crossMean := crossSum / float64(crossCount)
	if cleanMean < 0.55 {
		t.Errorf("mean clean-conference homophily %.2f, want >= 0.55", cleanMean)
	}
	// The designed noise venues must be clearly less informative: that gap
	// is what T-Mark's link ranking exploits.
	if crossMean >= cleanMean-0.1 {
		t.Errorf("cross conferences homophily %.2f not clearly below clean %.2f", crossMean, cleanMean)
	}
}

func TestDBLPConferenceHelpers(t *testing.T) {
	if DBLPConferenceArea(0) != 0 || DBLPConferenceArea(7) != 1 || DBLPConferenceArea(19) != 3 {
		t.Errorf("DBLPConferenceArea wrong")
	}
	if DBLPConferenceName(0) != "VLDB" || DBLPConferenceName(19) != "WSDM" {
		t.Errorf("DBLPConferenceName wrong")
	}
}

func TestMoviesShapeAndSparsity(t *testing.T) {
	g := Movies(DefaultMoviesConfig(1))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 400 || g.M() != 90 || g.Q() != 5 {
		t.Fatalf("shape %d/%d/%d, want 400/90/5", g.N(), g.M(), g.Q())
	}
	// Sparsity is the point of Movies: every director connects at most a
	// handful of movies.
	for k := range g.Relations {
		if got := len(g.Relations[k].Edges); got > 10 {
			t.Errorf("director %q has %d edges; link types must stay sparse", g.Relations[k].Name, got)
		}
	}
	// Named directors from the paper appear as relations.
	if g.Relations[0].Name != "Akira Kurosawa" {
		t.Errorf("first director = %q, want a Table 5 name", g.Relations[0].Name)
	}
}

func TestNUSTagsets(t *testing.T) {
	t1, t2 := Tagset1(), Tagset2()
	if len(t1) != 41 || len(t2) != 41 {
		t.Fatalf("tag sets sized %d/%d, want 41/41", len(t1), len(t2))
	}
	shared := map[string]bool{}
	for _, tag := range t1 {
		shared[tag.Name] = true
	}
	overlap := 0
	for _, tag := range t2 {
		if shared[tag.Name] {
			overlap++
		}
	}
	if overlap != len(nusSharedTags) {
		t.Errorf("overlap = %d, want %d", overlap, len(nusSharedTags))
	}
	// Tagset1 must be purer on average; Tagset2 more frequent.
	avg := func(tags []Tag, f func(Tag) float64) float64 {
		var s float64
		for _, tg := range tags {
			s += f(tg)
		}
		return s / float64(len(tags))
	}
	if avg(t1, func(tg Tag) float64 { return tg.Purity }) <= avg(t2, func(tg Tag) float64 { return tg.Purity }) {
		t.Errorf("Tagset1 should be purer on average")
	}
	if avg(t2, func(tg Tag) float64 { return tg.Freq }) <= avg(t1, func(tg Tag) float64 { return tg.Freq }) {
		t.Errorf("Tagset2 should be more frequent on average")
	}
}

func TestNUSGraphs(t *testing.T) {
	cfg := DefaultNUSConfig(3)
	g1 := NUS(cfg, Tagset1())
	g2 := NUS(cfg, Tagset2())
	for name, g := range map[string]*hin.Graph{"tagset1": g1, "tagset2": g2} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() != cfg.Images || g.M() != 41 || g.Q() != 2 {
			t.Errorf("%s: shape %d/%d/%d", name, g.N(), g.M(), g.Q())
		}
	}
	// Shared tags use name-derived seeds, so their membership is identical
	// across tag sets: edge counts for "sky" must agree.
	if len(g1.Relations[0].Edges) != len(g2.Relations[0].Edges) {
		t.Errorf("shared tag edges differ: %d vs %d", len(g1.Relations[0].Edges), len(g2.Relations[0].Edges))
	}
}

// Tag purity must translate into link homophily: pure tags connect
// same-class images far more often than frequent noisy tags.
func TestNUSHomophilyGap(t *testing.T) {
	cfg := DefaultNUSConfig(4)
	homophily := func(g *hin.Graph, k int) float64 {
		var same, total float64
		for _, e := range g.Relations[k].Edges {
			total++
			if g.PrimaryLabel(e.From) == g.PrimaryLabel(e.To) {
				same++
			}
		}
		if total == 0 {
			return 0
		}
		return same / total
	}
	g1 := NUS(cfg, Tagset1())
	g2 := NUS(cfg, Tagset2())
	avg1, avg2 := 0.0, 0.0
	for k := 0; k < 41; k++ {
		avg1 += homophily(g1, k) / 41
		avg2 += homophily(g2, k) / 41
	}
	if avg1 < avg2+0.1 {
		t.Errorf("Tagset1 homophily %.2f should clearly exceed Tagset2's %.2f", avg1, avg2)
	}
}

func TestACMShape(t *testing.T) {
	g := ACM(DefaultACMConfig(1))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.M() != 6 || g.Q() != 6 {
		t.Fatalf("shape M=%d Q=%d, want 6/6", g.M(), g.Q())
	}
	// Multi-label: a meaningful fraction of publications carries 2+ terms.
	multi := 0
	for i := 0; i < g.N(); i++ {
		if len(g.Nodes[i].Labels) > 1 {
			multi++
		}
	}
	if frac := float64(multi) / float64(g.N()); frac < 0.15 {
		t.Errorf("multi-label fraction %.2f too small", frac)
	}
	// Citation is the only directed relation.
	for k := range g.Relations {
		wantDirected := g.Relations[k].Name == "citation"
		if g.Relations[k].Directed != wantDirected {
			t.Errorf("relation %q directed=%v", g.Relations[k].Name, g.Relations[k].Directed)
		}
	}
}

// Fig. 5's premise: concept and conference links are the most coherent.
func TestACMCoherenceOrdering(t *testing.T) {
	g := ACM(DefaultACMConfig(2))
	coherence := make(map[string]float64)
	for k := range g.Relations {
		var same, total float64
		for _, e := range g.Relations[k].Edges {
			total++
			if shareLabel(g, e.From, e.To) {
				same++
			}
		}
		coherence[g.Relations[k].Name] = same / total
	}
	for _, weaker := range []string{"author", "keyword", "year"} {
		if coherence["concept"] <= coherence[weaker] {
			t.Errorf("concept coherence %.2f not above %s %.2f", coherence["concept"], weaker, coherence[weaker])
		}
		if coherence["conference"] <= coherence[weaker] {
			t.Errorf("conference coherence %.2f not above %s %.2f", coherence["conference"], weaker, coherence[weaker])
		}
	}
}

func shareLabel(g *hin.Graph, a, b int) bool {
	for _, c := range g.Nodes[a].Labels {
		if g.HasLabel(b, c) {
			return true
		}
	}
	return false
}

func TestExample(t *testing.T) {
	g := Example()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 4 || g.M() != 3 || g.Q() != 2 {
		t.Fatalf("shape %d/%d/%d, want 4/3/2", g.N(), g.M(), g.Q())
	}
	a := g.AdjacencyTensor()
	if a.NNZ() != 7 {
		t.Errorf("NNZ = %d, want 7", a.NNZ())
	}
	if !a.Irreducible() {
		t.Errorf("example must be irreducible")
	}
	truth := ExampleTruth()
	if truth[2] != 1 || truth[3] != 0 {
		t.Errorf("ExampleTruth wrong: %v", truth)
	}
}

func TestBagOfWordsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	doc := bagOfWords(rng, 1, 3, 40, 10, 25, 0.8)
	if len(doc) != 40 {
		t.Fatalf("doc length %d", len(doc))
	}
	var total, inClass float64
	for w, cnt := range doc {
		total += cnt
		if w >= 10 && w < 20 {
			inClass += cnt
		}
	}
	if total != 25 {
		t.Errorf("token count %v, want 25", total)
	}
	if inClass/total < 0.5 {
		t.Errorf("class focus %.2f too low for focus=0.8", inClass/total)
	}
}

func TestLinkGroupTinyGroups(t *testing.T) {
	g := hin.New("c")
	g.AddNode("", nil)
	g.AddNode("", nil)
	r := g.AddRelation("r", false)
	rng := rand.New(rand.NewSource(1))
	linkGroup(g, rng, r, []int{0}, 3) // singleton: no edges
	if len(g.Relations[r].Edges) != 0 {
		t.Errorf("singleton group must add no edges")
	}
	linkGroup(g, rng, r, []int{0, 1}, 3)
	if len(g.Relations[r].Edges) == 0 {
		t.Errorf("pair group should add edges")
	}
}

func TestPickDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	got := pickDistinct(rng, 10, 5)
	seen := map[int]bool{}
	for _, x := range got {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("pickDistinct invalid: %v", got)
		}
		seen[x] = true
	}
	defer func() {
		if recover() == nil {
			t.Errorf("k > n should panic")
		}
	}()
	pickDistinct(rng, 3, 4)
}

func TestNameSeedStable(t *testing.T) {
	if nameSeed("sky") != nameSeed("sky") {
		t.Errorf("nameSeed not stable")
	}
	if nameSeed("sky") == nameSeed("water") {
		t.Errorf("nameSeed collisions for distinct short names")
	}
	if nameSeed("sky") < 0 {
		t.Errorf("nameSeed must be nonnegative for rand.NewSource")
	}
}

func TestRingShape(t *testing.T) {
	g := Ring(DefaultRingConfig(1))
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 240 {
		t.Errorf("N = %d, want 240", g.N())
	}
	if g.M() != 3 {
		t.Errorf("M = %d, want next/self/chord", g.M())
	}
	if g.Q() != 4 {
		t.Errorf("Q = %d, want 4 arcs", g.Q())
	}
	perArc := make([]int, g.Q())
	for i := 0; i < g.N(); i++ {
		perArc[g.PrimaryLabel(i)]++
	}
	for a, cnt := range perArc {
		if cnt != 60 {
			t.Errorf("arc %d has %d nodes, want 60", a, cnt)
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a := Ring(DefaultRingConfig(7))
	b := Ring(DefaultRingConfig(7))
	if a.Stats().String() != b.Stats().String() {
		t.Errorf("same seed different graphs: %v vs %v", a.Stats(), b.Stats())
	}
}

// The defining property: the ring mixes slowly. The lazy cycle's
// diffusion distance grows with the circumference, so a label seeded on
// one arc should reach the antipodal arc only through many short steps —
// structurally, the cycle has no high-degree hubs: every node touches at
// most 2 next-edges, 1 self-loop and a couple of chords.
func TestRingNoHubs(t *testing.T) {
	g := Ring(DefaultRingConfig(3))
	deg := make([]int, g.N())
	for _, rel := range g.Relations {
		for _, e := range rel.Edges {
			deg[e.From]++
			deg[e.To]++
		}
	}
	for i, d := range deg {
		if d > 10 {
			t.Errorf("node %d has degree %d, want a hub-free cycle", i, d)
		}
	}
}
