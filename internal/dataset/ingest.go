package dataset

// COO ingest: a line-oriented sparse-coordinate text format for loading
// an adjacency tensor (plus labels) directly, without going through the
// JSON codec. The format mirrors how the paper presents the model — the
// HIN *is* the (m, n, n) tensor — and is trivial to emit from numpy /
// MATLAB dumps of real datasets:
//
//	# comments and blank lines are ignored
//	coo <n> <m> <q>          header: nodes, relations, classes (first line)
//	r <k> <name>[!]          optional relation naming; "!" marks directed
//	l <i> <c>                label: node i belongs to class c
//	e <k> <i> <j> [w]        tensor entry: edge i→j of relation k, weight w (default 1)
//
// The reader is strict: indices must be in range, weights positive and
// finite, and duplicate coordinates (the classic COO ambiguity — does a
// repeated (k,i,j) sum or overwrite?) are an error rather than a silent
// policy choice. Malformed input must always surface as an error, never
// a panic: ReadCOO is fuzzed (FuzzReadCOO).

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tmark/internal/hin"
)

// cooMaxDim bounds the declared header dimensions so a hostile header
// ("coo 9999999999 9999999999 1") cannot make the reader allocate
// unboundedly before any real content is seen.
const cooMaxDim = 1 << 24

// ReadCOO builds a graph from the COO text format above.
func ReadCOO(r io.Reader) (*hin.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	line := 0
	next := func() ([]string, bool) {
		for sc.Scan() {
			line++
			text := sc.Text()
			if i := strings.IndexByte(text, '#'); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			if len(fields) > 0 {
				return fields, true
			}
		}
		return nil, false
	}

	header, ok := next()
	if !ok {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("dataset: coo: %w", err)
		}
		return nil, fmt.Errorf("dataset: coo: empty input, want 'coo n m q' header")
	}
	if len(header) != 4 || header[0] != "coo" {
		return nil, fmt.Errorf("dataset: coo line %d: header %q, want 'coo n m q'", line, strings.Join(header, " "))
	}
	dims := make([]int, 3)
	for i, name := range []string{"n", "m", "q"} {
		v, err := strconv.Atoi(header[i+1])
		if err != nil {
			return nil, fmt.Errorf("dataset: coo line %d: %s: %w", line, name, err)
		}
		if v < 1 || v > cooMaxDim {
			return nil, fmt.Errorf("dataset: coo line %d: %s = %d out of range [1, %d]", line, name, v, cooMaxDim)
		}
		dims[i] = v
	}
	n, m, q := dims[0], dims[1], dims[2]

	g := hin.New()
	for c := 0; c < q; c++ {
		g.AddClass(fmt.Sprintf("c%d", c))
	}
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	for k := 0; k < m; k++ {
		g.AddRelation(fmt.Sprintf("r%d", k), false)
	}

	index := func(fields []string, pos, limit int, what string) (int, error) {
		v, err := strconv.Atoi(fields[pos])
		if err != nil {
			return 0, fmt.Errorf("dataset: coo line %d: %s %q: %w", line, what, fields[pos], err)
		}
		if v < 0 || v >= limit {
			return 0, fmt.Errorf("dataset: coo line %d: %s %d out of range [0, %d)", line, what, v, limit)
		}
		return v, nil
	}

	type coord struct{ k, i, j int }
	type labelCoord struct{ i, c int }
	seenEdge := make(map[coord]bool)
	seenLabel := make(map[labelCoord]bool)
	namedRel := make(map[int]bool)
	edges := 0

	for {
		fields, ok := next()
		if !ok {
			break
		}
		switch fields[0] {
		case "e":
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("dataset: coo line %d: edge wants 'e k i j [w]', got %d fields", line, len(fields))
			}
			k, err := index(fields, 1, m, "relation")
			if err != nil {
				return nil, err
			}
			i, err := index(fields, 2, n, "from node")
			if err != nil {
				return nil, err
			}
			j, err := index(fields, 3, n, "to node")
			if err != nil {
				return nil, err
			}
			w := 1.0
			if len(fields) == 5 {
				w, err = strconv.ParseFloat(fields[4], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: coo line %d: weight %q: %w", line, fields[4], err)
				}
				if err := hin.ValidWeight(w); err != nil {
					return nil, fmt.Errorf("dataset: coo line %d: %v", line, err)
				}
			}
			at := coord{k, i, j}
			if seenEdge[at] {
				return nil, fmt.Errorf("dataset: coo line %d: duplicate entry (%d, %d, %d)", line, k, i, j)
			}
			seenEdge[at] = true
			g.AddWeightedEdge(k, i, j, w)
			edges++
		case "l":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: coo line %d: label wants 'l i c', got %d fields", line, len(fields))
			}
			i, err := index(fields, 1, n, "node")
			if err != nil {
				return nil, err
			}
			c, err := index(fields, 2, q, "class")
			if err != nil {
				return nil, err
			}
			at := labelCoord{i, c}
			if seenLabel[at] {
				return nil, fmt.Errorf("dataset: coo line %d: duplicate label (%d, %d)", line, i, c)
			}
			seenLabel[at] = true
			g.SetLabels(i, append(append([]int{}, g.Nodes[i].Labels...), c)...)
		case "r":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: coo line %d: relation wants 'r k name', got %d fields", line, len(fields))
			}
			k, err := index(fields, 1, m, "relation")
			if err != nil {
				return nil, err
			}
			if namedRel[k] {
				return nil, fmt.Errorf("dataset: coo line %d: duplicate relation declaration %d", line, k)
			}
			namedRel[k] = true
			name := fields[2]
			if directed := strings.HasSuffix(name, "!"); directed {
				name = strings.TrimSuffix(name, "!")
				g.Relations[k].Directed = true
			}
			if name == "" {
				return nil, fmt.Errorf("dataset: coo line %d: empty relation name", line)
			}
			g.Relations[k].Name = name
		default:
			return nil, fmt.Errorf("dataset: coo line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: coo: %w", err)
	}
	if edges == 0 {
		return nil, fmt.Errorf("dataset: coo: no edges")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: coo: %w", err)
	}
	return g, nil
}
