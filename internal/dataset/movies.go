package dataset

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
)

// MovieGenres lists the five genres of the Movies benchmark.
var MovieGenres = []string{"Adventure", "Documentary", "Romance", "Thriller", "War"}

// MovieDirectors holds the paper's Table 5 director names; they seed the
// synthetic director link types so the ranking experiment reads like the
// paper's. Remaining directors get generated names.
var MovieDirectors = []string{
	"Akira Kurosawa", "Ivan Reitman", "Alfred Hitchcock", "Joel Schumacher",
	"Clint Eastwood", "Steven Spielberg", "William Wyler", "Woody Allen",
	"Howard Hawks", "Renny Harlin", "Martin Scorsese", "Roger Donaldson",
	"John Badham", "George Miller", "Sydney Pollack", "Werner Herzog",
	"Wes Craven", "Oliver Stone", "Stephen Hopkins", "Brian De Palma",
	"Peter Howitt", "John Huston", "John Woo", "Ron Howard",
	"Richard Fleischer", "Michael Mann", "Phillip Noyce", "Ethan Coen",
	"Don Siegel", "Michael Apted", "Oliver Hirschbiegel", "Billy Wilder",
	"Sidney Lumet", "Terry Gilliam", "Jim Gillespie", "Peter Jackson",
	"John Sturges", "Kenneth Branagh", "Christian Duguay",
}

// MoviesConfig parameterises the synthetic Movies network. The defining
// property is sparsity: each director link type touches only a handful of
// movies, so per-type relational signal is thin.
type MoviesConfig struct {
	Seed           int64
	MoviesPerGenre int
	Directors      int
	// MoviesPerDirector bounds each director's filmography (uniform in
	// [2, MoviesPerDirector]).
	MoviesPerDirector int
	// GenreLoyalty is the probability a director's movie falls in the
	// director's preferred genre.
	GenreLoyalty float64
	// Vocab / TokensPerMovie / TagFocus shape the tag bag-of-words; the
	// paper notes tags are only weakly discriminative, so TagFocus is low.
	Vocab          int
	TokensPerMovie int
	TagFocus       float64
	// Ambiguity is the fraction of movies whose tags and director read as a
	// different genre than their label (genre mash-ups); it caps the
	// achievable accuracy, matching the paper's observation that 90%
	// training data still leaves Movies accuracy "undesirable".
	Ambiguity float64
}

// DefaultMoviesConfig returns the size used by the experiments.
func DefaultMoviesConfig(seed int64) MoviesConfig {
	return MoviesConfig{
		Seed:              seed,
		MoviesPerGenre:    80,
		Directors:         90,
		MoviesPerDirector: 5,
		GenreLoyalty:      0.68,
		Vocab:             120,
		TokensPerMovie:    10,
		TagFocus:          0.32,
		Ambiguity:         0.25,
	}
}

// Movies generates the genre-prediction network: five genres, one link
// type per director (sparse), weak tag features.
func Movies(cfg MoviesConfig) *hin.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hin.New(MovieGenres...)
	q := len(MovieGenres)
	classBlock := cfg.Vocab / (q + 1)

	// byBehavior groups movies by how they *read* (tags, director choices),
	// which differs from the labelled genre for Ambiguity of them.
	byBehavior := make([][]int, q)
	for genre := 0; genre < q; genre++ {
		for m := 0; m < cfg.MoviesPerGenre; m++ {
			behavior := genre
			if rng.Float64() < cfg.Ambiguity {
				behavior = rng.Intn(q)
			}
			f := bagOfWords(rng, behavior, q, cfg.Vocab, classBlock, cfg.TokensPerMovie, cfg.TagFocus)
			id := g.AddNode(fmt.Sprintf("%s-movie-%d", MovieGenres[genre], m), f)
			g.SetLabels(id, genre)
			byBehavior[behavior] = append(byBehavior[behavior], id)
		}
	}

	for d := 0; d < cfg.Directors; d++ {
		name := fmt.Sprintf("Director %d", d)
		if d < len(MovieDirectors) {
			name = MovieDirectors[d]
		}
		rel := g.AddRelation(name, false)
		preferred := d % q
		count := 2 + rng.Intn(cfg.MoviesPerDirector-1)
		var films []int
		for c := 0; c < count; c++ {
			genre := preferred
			if rng.Float64() >= cfg.GenreLoyalty {
				genre = rng.Intn(q)
			}
			pool := byBehavior[genre]
			if len(pool) == 0 {
				continue // tiny configs can leave a behaviour group empty
			}
			films = append(films, pool[rng.Intn(len(pool))])
		}
		// A director's movies are pairwise related; with 2-5 films this is
		// a tiny clique, keeping every link type sparse by construction.
		for a := 0; a < len(films); a++ {
			for b := a + 1; b < len(films); b++ {
				if films[a] != films[b] {
					g.AddEdge(rel, films[a], films[b])
				}
			}
		}
	}
	return g
}

// MovieDirectorPreferredGenre returns the genre director link type k leans
// toward under the generator's assignment.
func MovieDirectorPreferredGenre(k int) int { return k % len(MovieGenres) }
