package dataset

import (
	"testing"
)

func synthSpec() SynthConfig {
	return SynthConfig{
		Seed:          1,
		Classes:       []string{"a", "b", "c"},
		NodesPerClass: 40,
		Vocab:         30,
		TokensPerNode: 10,
		FeatureFocus:  0.6,
		Relations: []RelationSpec{
			{Name: "strong", Homophily: 0.9, Edges: 300},
			{Name: "noise", Homophily: 0.0, Edges: 150, Directed: true},
		},
		LabelFraction: 0.5,
	}
}

func TestSynthShape(t *testing.T) {
	g, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 120 || g.M() != 2 || g.Q() != 3 {
		t.Fatalf("shape %d/%d/%d, want 120/2/3", g.N(), g.M(), g.Q())
	}
	labelled := 0
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			labelled++
		}
	}
	if labelled != 60 {
		t.Errorf("labelled = %d, want 60 (half per class)", labelled)
	}
	if !g.Relations[1].Directed || g.Relations[0].Directed {
		t.Errorf("directedness not honoured")
	}
}

func TestSynthHomophilyHonoured(t *testing.T) {
	g, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	hom := func(k int) float64 {
		var same, total float64
		for _, e := range g.Relations[k].Edges {
			total++
			if classOf(g, e.From) == classOf(g, e.To) {
				same++
			}
		}
		return same / total
	}
	if h := hom(0); h < 0.8 {
		t.Errorf("strong relation homophily %.2f, want >= 0.8", h)
	}
	// Chance for 3 balanced classes is 1/3.
	if h := hom(1); h > 0.5 {
		t.Errorf("noise relation homophily %.2f, want near chance", h)
	}
}

// classOf recovers the construction class from the class-major layout,
// independent of whether the node kept its label.
func classOf(g interface{ N() int }, node int) int {
	return node / 40
}

func TestSynthDeterministic(t *testing.T) {
	a, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().String() != b.Stats().String() {
		t.Errorf("same seed, different graphs")
	}
}

func TestSynthValidation(t *testing.T) {
	cases := []func(*SynthConfig){
		func(c *SynthConfig) { c.Classes = nil },
		func(c *SynthConfig) { c.NodesPerClass = 0 },
		func(c *SynthConfig) { c.Relations = nil },
		func(c *SynthConfig) { c.Relations[0].Homophily = 2 },
		func(c *SynthConfig) { c.Relations[0].Edges = -1 },
		func(c *SynthConfig) { c.LabelFraction = 1.5 },
	}
	for i, mutate := range cases {
		cfg := synthSpec()
		mutate(&cfg)
		if _, err := Synth(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSynthNoFeatures(t *testing.T) {
	cfg := synthSpec()
	cfg.FeatureFocus = 0
	g, err := Synth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes[0].Features != nil {
		t.Errorf("FeatureFocus=0 should generate no features")
	}
}
