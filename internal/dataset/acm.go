package dataset

import (
	"fmt"
	"math/rand"

	"tmark/internal/hin"
)

// ACMIndexTerms are the multi-label classes of the ACM experiment
// (synthetic stand-ins for ACM Computing Classification index terms).
var ACMIndexTerms = []string{
	"H.2 Database Management",
	"H.3 Information Storage and Retrieval",
	"I.2 Artificial Intelligence",
	"I.5 Pattern Recognition",
	"G.3 Probability and Statistics",
	"H.4 Information Systems Applications",
}

// ACMLinkTypes are the six link types of the ACM network in the paper's
// order; "citation" is the only directed one.
var ACMLinkTypes = []string{"author", "concept", "conference", "keyword", "year", "citation"}

// acmCoherence is the probability that a link of each type connects
// publications sharing an index term. The ordering matches Fig. 5:
// "concept" and "conference" are the most class-coherent types.
var acmCoherence = map[string]float64{
	"author":     0.70,
	"concept":    0.92,
	"conference": 0.88,
	"keyword":    0.65,
	"year":       0.40,
	"citation":   0.72,
}

// acmGroupsPerType controls how many shared-attribute groups each link
// type has (more groups → sparser per-group cliques).
var acmGroupsPerType = map[string]int{
	"author":     60,
	"concept":    18,
	"conference": 10,
	"keyword":    50,
	"year":       12,
	"citation":   0, // citations are pairwise, not grouped
}

// ACMConfig parameterises the synthetic ACM publication network.
type ACMConfig struct {
	Seed         int64
	Publications int
	// ExtraLabelProb is the chance a publication carries a second (and
	// then a third) index term, making the task genuinely multi-label.
	ExtraLabelProb float64
	// Vocab / TokensPerTitle / TitleFocus shape the title bag-of-words.
	Vocab          int
	TokensPerTitle int
	TitleFocus     float64
	// GroupDegree is the per-group linking degree.
	GroupDegree int
	// Citations is the number of directed citation edges.
	Citations int
}

// DefaultACMConfig returns the size used by the experiments.
func DefaultACMConfig(seed int64) ACMConfig {
	return ACMConfig{
		Seed:           seed,
		Publications:   360,
		ExtraLabelProb: 0.35,
		Vocab:          130,
		TokensPerTitle: 14,
		TitleFocus:     0.45,
		GroupDegree:    3,
		Citations:      500,
	}
}

// ACM generates the multi-label publication network with six link types of
// differing class coherence.
func ACM(cfg ACMConfig) *hin.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := hin.New(ACMIndexTerms...)
	q := len(ACMIndexTerms)
	classBlock := cfg.Vocab / (q + 1)

	byTerm := make([][]int, q)
	for i := 0; i < cfg.Publications; i++ {
		primary := i % q
		f := bagOfWords(rng, primary, q, cfg.Vocab, classBlock, cfg.TokensPerTitle, cfg.TitleFocus)
		id := g.AddNode(fmt.Sprintf("pub-%d", i), f)
		labels := []int{primary}
		if rng.Float64() < cfg.ExtraLabelProb {
			labels = append(labels, acmRelatedTerm(rng, primary, q))
			if rng.Float64() < cfg.ExtraLabelProb/2 {
				labels = append(labels, acmRelatedTerm(rng, primary, q))
			}
		}
		labels = dedupInts(labels)
		g.SetLabels(id, labels...)
		for _, c := range labels {
			byTerm[c] = append(byTerm[c], id)
		}
	}

	n := g.N()
	for _, typeName := range ACMLinkTypes {
		directed := typeName == "citation"
		rel := g.AddRelation(typeName, directed)
		coherence := acmCoherence[typeName]
		if typeName == "citation" {
			for e := 0; e < cfg.Citations; e++ {
				from := rng.Intn(n)
				var to int
				if rng.Float64() < coherence {
					term := g.PrimaryLabel(from)
					to = byTerm[term][rng.Intn(len(byTerm[term]))]
				} else {
					to = rng.Intn(n)
				}
				if to != from {
					g.AddEdge(rel, from, to)
				}
			}
			continue
		}
		groups := acmGroupsPerType[typeName]
		for grp := 0; grp < groups; grp++ {
			term := grp % q
			// Keep the total membership (and so edge volume) comparable
			// across link types: the relative importance of Fig. 5 must be
			// driven by each type's class coherence, not by raw edge count.
			size := 13*n/(10*groups) + 1 + rng.Intn(3)
			members := make([]int, 0, size)
			for s := 0; s < size; s++ {
				if rng.Float64() < coherence {
					members = append(members, byTerm[term][rng.Intn(len(byTerm[term]))])
				} else {
					members = append(members, rng.Intn(n))
				}
			}
			linkGroup(g, rng, rel, dedupInts(members), cfg.GroupDegree)
		}
	}
	return g
}

// acmRelatedTerms pairs each index term with the terms it co-occurs with
// (databases with retrieval, AI with pattern recognition, …); secondary
// labels come from here so multi-label structure is learnable rather than
// random noise.
var acmRelatedTerms = [][]int{
	0: {1, 5}, // database → retrieval, applications
	1: {0, 5}, // retrieval → database, applications
	2: {3, 4}, // AI → pattern recognition, statistics
	3: {2, 4}, // pattern recognition → AI, statistics
	4: {2, 3}, // statistics → AI, pattern recognition
	5: {0, 1}, // applications → database, retrieval
}

// acmRelatedTerm samples a secondary term: usually a related one, sometimes
// anything.
func acmRelatedTerm(rng *rand.Rand, primary, q int) int {
	if primary < len(acmRelatedTerms) && rng.Float64() < 0.8 {
		rel := acmRelatedTerms[primary]
		return rel[rng.Intn(len(rel))]
	}
	return rng.Intn(q)
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
