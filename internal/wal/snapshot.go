package wal

// The TMARKWS1 snapshot codec. A snapshot is the log's checkpoint: the
// raw adjacency COO of a committed, sealed batch sequence point, plus
// the content hash the engine sealed there. Once a snapshot is durable,
// every record at or below its sequence number is redundant — replay
// restores the adjacency from the snapshot, re-derives the normalised
// substrate (a pure function of the raw values) and verifies the stored
// hash before trusting any of it — so Checkpoint prunes the covered
// segments.
//
// The raw adjacency must be snapshotted, not re-derived: a sealed
// artifact stores the normalised transition tensors, and normalisation
// divides each column by its sum, so the raw per-edge weights (the
// state future deltas compose against) are not recoverable from any
// artifact.
//
//	magic   "TMARKWS1"                8 bytes
//	seq     uint64
//	hashLen uint16   ≤ 128
//	hash    hashLen bytes (lowercase hex content hash)
//	n, m    uint32   node and relation counts
//	nnz     uint32   stored adjacency entries
//	i, j, k nnz × int32 each
//	v       nnz × float64
//	crc     uint64   crc64/ECMA over everything above

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
)

var snapMagic = [8]byte{'T', 'M', 'A', 'R', 'K', 'W', 'S', '1'}

const (
	maxSnapHashLen = 128
	snapFixed      = 8 + 8 + 2 + 4 + 4 + 4 + 8 // magic..nnz plus crc
)

// Snapshot is one log checkpoint: the raw adjacency at sequence Seq,
// whose substrate sealed under Hash.
type Snapshot struct {
	Seq  uint64
	Hash string
	// N, M are the adjacency dimensions; I, J, K, V its entries in the
	// engine's (k, j, i) order.
	N, M    int
	I, J, K []int32
	V       []float64
}

// Validate checks the snapshot's structural invariants.
func (s *Snapshot) Validate() error {
	if len(s.Hash) > maxSnapHashLen {
		return fmt.Errorf("wal: snapshot hash of %d bytes exceeds the %d cap", len(s.Hash), maxSnapHashLen)
	}
	nnz := len(s.V)
	if len(s.I) != nnz || len(s.J) != nnz || len(s.K) != nnz {
		return fmt.Errorf("wal: snapshot index arrays disagree (%d/%d/%d/%d)", len(s.I), len(s.J), len(s.K), nnz)
	}
	if s.N < 0 || s.M < 0 {
		return fmt.Errorf("wal: snapshot dimensions %dx%d invalid", s.N, s.M)
	}
	return nil
}

// Encode serialises the snapshot into the versioned, checksummed form.
func (s *Snapshot) Encode() []byte {
	nnz := len(s.V)
	buf := make([]byte, 0, snapFixed+len(s.Hash)+nnz*(3*4+8))
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Hash)))
	buf = append(buf, s.Hash...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.M))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nnz))
	for _, arr := range [][]int32{s.I, s.J, s.K} {
		for _, x := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
	}
	for _, f := range s.V {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf
}

// DecodeSnapshot parses and validates a serialised snapshot. Strict in
// the usual way: checksum first, every length checked against the
// remaining input before allocation, no panics on hostile bytes.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapFixed {
		return nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if got, want := binary.LittleEndian.Uint64(tail), crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch (stored %016x, computed %016x)", got, want)
	}
	if [8]byte(body[:8]) != snapMagic {
		return nil, fmt.Errorf("wal: not a snapshot (magic %q, want %q)", body[:8], snapMagic[:])
	}
	s := &Snapshot{Seq: binary.LittleEndian.Uint64(body[8:])}
	hashLen := int(binary.LittleEndian.Uint16(body[16:]))
	if hashLen > maxSnapHashLen {
		return nil, fmt.Errorf("wal: snapshot hash of %d bytes exceeds the %d cap", hashLen, maxSnapHashLen)
	}
	off := 18
	if len(body) < off+hashLen+12 {
		return nil, fmt.Errorf("wal: snapshot too short for its %d-byte hash", hashLen)
	}
	s.Hash = string(body[off : off+hashLen])
	off += hashLen
	s.N = int(binary.LittleEndian.Uint32(body[off:]))
	s.M = int(binary.LittleEndian.Uint32(body[off+4:]))
	nnz := int(binary.LittleEndian.Uint32(body[off+8:]))
	off += 12
	if want := nnz * (3*4 + 8); nnz < 0 || len(body)-off != want {
		return nil, fmt.Errorf("wal: %d snapshot bytes left for %d entries (want %d)", len(body)-off, nnz, want)
	}
	ints := func() []int32 {
		out := make([]int32, nnz)
		for q := range out {
			out[q] = int32(binary.LittleEndian.Uint32(body[off:]))
			off += 4
		}
		return out
	}
	s.I, s.J, s.K = ints(), ints(), ints()
	s.V = make([]float64, nnz)
	for q := range s.V {
		s.V[q] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	return s, nil
}

// snapshotPath is the one checkpoint file of a log directory; saves
// replace it atomically.
func snapshotPath(dir string) string { return filepath.Join(dir, "checkpoint.tmws") }

// saveSnapshot writes the snapshot atomically (temp file + fsync +
// rename), so a crash mid-checkpoint leaves the previous one intact.
func saveSnapshot(dir string, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmws-*")
	if err != nil {
		return fmt.Errorf("wal: snapshot save: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(s.Encode())
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, snapshotPath(dir))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot save: %w", werr)
	}
	return syncDir(dir)
}
