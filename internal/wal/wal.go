// Package wal is the durable ingest log: an append-only, fsync'd,
// crc64-checksummed write-ahead log of delta batches (TMARKWL1 record
// format) plus a checkpoint snapshot of the raw adjacency (TMARKWS1).
// The streaming engine appends every accepted batch before mutating
// anything, so a crash — process kill mid-apply, panic mid-seal — loses
// nothing: a restart (or an in-process quarantine recovery) restores
// the adjacency from the snapshot, verifies it by content-hash
// equality against the sealed history, and replays the logged suffix
// to exactly the state an uninterrupted run would hold.
//
// On disk a log is one directory:
//
//	<dir>/seg-<index>.tmwl    append-only record segments
//	<dir>/checkpoint.tmws     the latest snapshot (atomic replace)
//
// Each segment starts with the 8-byte magic "TMARKWL1" followed by
// framed records (see record.go). Appends fsync before returning — an
// acknowledged batch is durable. When the active segment passes the
// configured size the log rotates to a fresh one, and Checkpoint
// prunes every segment fully covered by the new snapshot, so the log's
// footprint is bounded by the snapshot cadence, not the ingest
// history.
//
// Open heals a torn tail: a crash mid-append leaves a partial frame at
// the end of the final segment, which is truncated away (the batch was
// never acknowledged). Corruption anywhere else — a flipped byte in an
// interior record, a bad segment header before the tail — is damage,
// not a torn write, and fails Open loudly.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var segMagic = [8]byte{'T', 'M', 'A', 'R', 'K', 'W', 'L', '1'}

// DefaultSegmentBytes is the rotation threshold of Options' zero value.
const DefaultSegmentBytes = 4 << 20

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (default DefaultSegmentBytes). A single record larger than
	// the threshold still lands whole — segments never split a frame.
	SegmentBytes int64
}

// segment is one on-disk record file.
type segment struct {
	path string
	idx  uint64 // rotation index (encoded in the name, append order)
	size int64
	max  uint64 // largest record seq it holds; 0 when empty
}

// Log is one model's write-ahead log. All methods are safe for
// concurrent use; the engine serialises appends under its own lock
// anyway, so the log's mutex is contention-free in practice.
type Log struct {
	mu       sync.Mutex
	dir      string
	segBytes int64
	segs     []segment
	nextIdx  uint64
	active   *os.File // nil until the first append after open/rotate/checkpoint
	records  []Record // live (unpruned) records in append order
	snap     *Snapshot
}

// Open opens (creating if needed) the log rooted at dir, loading the
// snapshot and every live record, and truncating a torn tail left by a
// crash mid-append.
func Open(dir string, opts Options) (*Log, error) {
	if dir == "" {
		return nil, errors.New("wal: log needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, segBytes: opts.SegmentBytes, nextIdx: 1}
	if l.segBytes <= 0 {
		l.segBytes = DefaultSegmentBytes
	}
	if data, err := os.ReadFile(snapshotPath(dir)); err == nil {
		snap, derr := DecodeSnapshot(data)
		if derr != nil {
			return nil, fmt.Errorf("wal: %s: %w", snapshotPath(dir), derr)
		}
		l.snap = snap
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	idxs, err := segmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	for i, idx := range idxs {
		if err := l.loadSegment(idx, i == len(idxs)-1); err != nil {
			return nil, err
		}
		l.nextIdx = idx + 1
	}
	return l, nil
}

func segmentPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%012d.tmwl", idx))
}

// segmentIndexes lists the segment files of dir in rotation order.
func segmentIndexes(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".tmwl") {
			continue
		}
		idx, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".tmwl"), 10, 64)
		if perr != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return idxs, nil
}

// loadSegment reads one segment's records into the log. Only the final
// segment may carry a torn tail (or a torn header from a crash during
// rotation); it is truncated (or removed) silently — those bytes were
// never acknowledged. The same damage earlier in the log is an error.
func (l *Log) loadSegment(idx uint64, last bool) error {
	path := segmentPath(l.dir, idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < len(segMagic) || [8]byte(data[:8]) != segMagic {
		if last && len(data) < len(segMagic) {
			return os.Remove(path)
		}
		return fmt.Errorf("wal: %s is not a TMARKWL1 segment", path)
	}
	seg := segment{path: path, idx: idx}
	off := len(segMagic)
	for off < len(data) {
		rec, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			if last && errors.Is(derr, ErrTruncated) {
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return terr
				}
				break
			}
			return fmt.Errorf("wal: %s at offset %d: %w", path, off, derr)
		}
		seg.max = rec.Seq
		l.records = append(l.records, *rec)
		off += n
	}
	seg.size = int64(off)
	l.segs = append(l.segs, seg)
	return nil
}

// Snapshot returns the latest checkpoint, nil when none was taken.
func (l *Log) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// SnapshotSeq returns the latest checkpoint's sequence number, 0 when
// no checkpoint exists.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap == nil {
		return 0
	}
	return l.snap.Seq
}

// Records returns the live (unpruned) records in append order. The
// slice is a copy; the records alias the log's storage and must be
// treated as read-only.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Size returns the total bytes of the live segments — the value behind
// the tmarkd_wal_segment_bytes gauge.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, s := range l.segs {
		total += s.size
	}
	return total
}

// Append logs one record durably: frame, write, fsync. On return the
// batch survives a kill -9. An append that fails leaves the engine
// free to reject the batch cleanly — nothing downstream has happened
// yet.
func (l *Log) Append(rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	frame := rec.Encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active != nil && l.activeSeg().size+int64(len(frame)) > l.segBytes && l.activeSeg().size > int64(len(segMagic)) {
		if err := l.closeActive(); err != nil {
			return err
		}
	}
	if l.active == nil {
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	if _, err := l.active.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: append sync: %w", err)
	}
	seg := l.activeSeg()
	seg.size += int64(len(frame))
	seg.max = rec.Seq
	l.records = append(l.records, rec)
	return nil
}

func (l *Log) activeSeg() *segment { return &l.segs[len(l.segs)-1] }

// openSegment starts a fresh active segment under the next rotation
// index.
func (l *Log) openSegment() error {
	path := segmentPath(l.dir, l.nextIdx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header sync: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.segs = append(l.segs, segment{path: path, idx: l.nextIdx, size: int64(len(segMagic))})
	l.nextIdx++
	return nil
}

func (l *Log) closeActive() error {
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	return err
}

// Checkpoint makes snap the log's new recovery base and prunes every
// segment it fully covers: once the caller's sealed state at snap.Seq
// is durable (artifact in the registry, snapshot on disk), records at
// or below snap.Seq can never be needed again. The active segment is
// rotated out first, so a checkpoint taken at the current head empties
// the log entirely.
func (l *Log) Checkpoint(snap Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap != nil && snap.Seq < l.snap.Seq {
		return fmt.Errorf("wal: checkpoint at seq %d behind existing snapshot seq %d", snap.Seq, l.snap.Seq)
	}
	if err := saveSnapshot(l.dir, &snap); err != nil {
		return err
	}
	l.snap = &snap
	if err := l.closeActive(); err != nil {
		return err
	}
	kept := l.segs[:0]
	for _, seg := range l.segs {
		if seg.max <= snap.Seq {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: prune: %w", err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if err := syncDir(l.dir); err != nil {
		return err
	}
	live := l.records[:0]
	for _, rec := range l.records {
		if rec.Seq > snap.Seq {
			live = append(live, rec)
		}
	}
	l.records = live
	return nil
}

// Close releases the active segment handle. The log stays reopenable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closeActive()
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable before the caller acknowledges anything that depends on them.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: dir sync: %w", serr)
	}
	return cerr
}
