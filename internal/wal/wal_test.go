package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecord(seq uint64, key string, n int) Record {
	rec := Record{Seq: seq, Key: key}
	for q := 0; q < n; q++ {
		rec.Deltas = append(rec.Deltas, Delta{
			Op: OpAdd, From: int32(q), To: int32(q + 1), Relation: int32(q % 3),
			Weight: 0.5 + float64(q),
		})
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		testRecord(1, "", 1),
		testRecord(2, "client-key-α", 3),
		{Seq: 7, Key: "k", Deltas: []Delta{
			{Op: OpUpdate, From: 5, To: 5, Relation: 0, Weight: 2.25},
			{Op: OpRemove, From: 1, To: 2, Relation: 1},
		}},
	}
	for _, want := range recs {
		frame := want.Encode()
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("round trip: got %+v want %+v", *got, want)
		}
		// A decode from the front of a longer buffer consumes exactly one
		// frame.
		double := append(append([]byte(nil), frame...), frame...)
		if _, n2, err := DecodeRecord(double); err != nil || n2 != len(frame) {
			t.Fatalf("framed decode: n=%d err=%v", n2, err)
		}
	}
}

func TestRecordDecodeRejectsDamage(t *testing.T) {
	rec := testRecord(3, "key", 2)
	frame := rec.Encode()
	// Truncations anywhere must report ErrTruncated (the torn-tail
	// shape) — that is what lets Open cut the tail instead of failing.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// A flipped payload byte must fail the checksum.
	for _, off := range []int{4, 12, len(frame) - 9} {
		bad := append([]byte(nil), frame...)
		bad[off] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil || errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at %d: err = %v, want hard corruption", off, err)
		}
	}
	// An absurd length prefix is rejected before any allocation.
	huge := append([]byte(nil), frame...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeRecord(huge); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("oversized prefix: err = %v, want hard error", err)
	}
	// Validate gates what Encode will even produce.
	if err := (&Record{Seq: 1, Deltas: nil}).Validate(); err == nil {
		t.Fatal("empty batch validated")
	}
	if err := (&Record{Seq: 1, Key: string(make([]byte, MaxKeyLen+1)), Deltas: []Delta{{Op: OpAdd}}}).Validate(); err == nil {
		t.Fatal("oversized key validated")
	}
	if err := (&Record{Seq: 1, Deltas: []Delta{{Op: 9}}}).Validate(); err == nil {
		t.Fatal("unknown op validated")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := &Snapshot{
		Seq: 12, Hash: "abc123", N: 6, M: 3,
		I: []int32{0, 1, 2}, J: []int32{1, 2, 3}, K: []int32{0, 0, 1},
		V: []float64{1, 0.5, 2},
	}
	got, err := DecodeSnapshot(want.Encode())
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	enc := want.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[10] ^= 1
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("flipped byte decoded")
	}
}

func TestLogAppendReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want []Record
	for q := 1; q <= 5; q++ {
		rec := testRecord(uint64(q), "", q)
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", q, err)
		}
		want = append(want, rec)
	}
	if got := l.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("live records: got %d want %d", len(got), len(want))
	}
	if l.Size() <= 0 {
		t.Fatal("Size() not positive after appends")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened records differ: got %+v", got)
	}
}

func TestLogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	r1, r2 := testRecord(1, "a", 2), testRecord(2, "b", 2)
	if err := l.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(r2); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the tail mid-frame, as a crash mid-append would.
	seg := segmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if got := re.Records(); len(got) != 1 || !reflect.DeepEqual(got[0], r1) {
		t.Fatalf("torn tail kept %d records", len(got))
	}
	// The tear healed durably: appending works and a further reopen sees
	// a clean log.
	r2b := testRecord(2, "b2", 1)
	if err := re.Append(r2b); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	re.Close()
	re2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if got := re2.Records(); len(got) != 2 || !reflect.DeepEqual(got[1], r2b) {
		t.Fatalf("healed log holds %d records", len(got))
	}

	// Interior corruption is damage, not a torn write: it must fail Open.
	re2.Close()
	data, err = os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+6] ^= 0x10
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("interior corruption opened silently")
	}
}

func TestLogRotationAndCheckpointPruning(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment threshold forces a rotation on nearly every append.
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for q := 1; q <= 6; q++ {
		if err := l.Append(testRecord(uint64(q), "", 2)); err != nil {
			t.Fatalf("Append %d: %v", q, err)
		}
	}
	segs, err := segmentIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: %d segments", len(segs))
	}

	snap := Snapshot{Seq: 4, Hash: "h4", N: 8, M: 3,
		I: []int32{0}, J: []int32{1}, K: []int32{0}, V: []float64{1}}
	if err := l.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for _, rec := range l.Records() {
		if rec.Seq <= 4 {
			t.Fatalf("record %d survived the checkpoint", rec.Seq)
		}
	}
	if got := l.SnapshotSeq(); got != 4 {
		t.Fatalf("SnapshotSeq = %d", got)
	}
	// A checkpoint behind the existing snapshot is a caller bug.
	if err := l.Checkpoint(Snapshot{Seq: 2, Hash: "h2"}); err == nil {
		t.Fatal("regressing checkpoint accepted")
	}
	l.Close()

	// Reopen: the snapshot and only the live suffix come back.
	re, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Snapshot() == nil || re.Snapshot().Seq != 4 || re.Snapshot().Hash != "h4" {
		t.Fatalf("snapshot lost on reopen: %+v", re.Snapshot())
	}
	recs := re.Records()
	if len(recs) != 2 || recs[0].Seq != 5 || recs[1].Seq != 6 {
		t.Fatalf("reopened live records: %+v", recs)
	}
	// Appends continue after the pruned prefix.
	if err := re.Append(testRecord(7, "", 1)); err != nil {
		t.Fatalf("append after checkpoint: %v", err)
	}
	// Checkpoint at the head empties the log entirely.
	if err := re.Checkpoint(Snapshot{Seq: 7, Hash: "h7", N: 8, M: 3}); err != nil {
		t.Fatalf("head checkpoint: %v", err)
	}
	if got := re.Records(); len(got) != 0 {
		t.Fatalf("head checkpoint left %d records", len(got))
	}
	segs, err = segmentIndexes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("head checkpoint left %d segments", len(segs))
	}
}

func TestLogCorruptSnapshotFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(Snapshot{Seq: 1, Hash: "h", N: 2, M: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(snapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapshotPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot opened silently")
	}
}

func TestSegmentMagicGuards(t *testing.T) {
	dir := t.TempDir()
	// A non-final segment with a wrong header must fail open; a torn
	// final header (crash during rotation) is removed.
	if err := os.WriteFile(filepath.Join(dir, "seg-000000000001.tmwl"), bytes.Repeat([]byte{0x7f}, 32), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("bogus segment header opened")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "seg-000000000001.tmwl"), []byte("TMA"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir2, Options{})
	if err != nil {
		t.Fatalf("torn rotation header: %v", err)
	}
	if err := l.Append(testRecord(1, "", 1)); err != nil {
		t.Fatalf("append after torn-header cleanup: %v", err)
	}
	l.Close()
}
