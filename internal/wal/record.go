package wal

// The TMARKWL1 record codec. One record is one logged ingest batch,
// framed for an append-only segment file:
//
//	length  uint32    payload byte count
//	payload
//	  seq     uint64  the sequence number the batch was assigned
//	  keyLen  uint16  idempotency-key length, ≤ MaxKeyLen
//	  key     keyLen bytes
//	  count   uint32  delta count, 1 ≤ count ≤ MaxDeltas
//	  deltas  count × (op uint8, from int32, to int32, relation int32,
//	                   weight float64-bits), little-endian
//	crc     uint64    crc64/ECMA over the payload
//
// DecodeRecord is strict in the checkpoint-decoder tradition: it
// validates the length prefix against hard caps before allocating,
// verifies the checksum, checks every structural invariant, and never
// panics on hostile input — it is fuzzed (FuzzDecodeWALRecord).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
)

// Op codes of one logged delta. They mirror stream's add/update/remove
// ops; the WAL keeps its own compact spelling so the log format does
// not depend on (or import) the engine package.
const (
	OpAdd    uint8 = 1
	OpUpdate uint8 = 2
	OpRemove uint8 = 3
)

const (
	// MaxKeyLen bounds one idempotency key, matching the serve layer's
	// header validation.
	MaxKeyLen = 256
	// MaxDeltas bounds one logged batch; it matches stream.MaxDeltas so
	// every batch the engine accepts is loggable.
	MaxDeltas = 1 << 17

	deltaBytes = 1 + 3*4 + 8 // op + from/to/relation + weight
	// maxPayload is the largest well-formed payload: a full batch under
	// a maximal key. The length prefix is validated against it before
	// any allocation, so a hostile prefix cannot drive memory use past
	// the input size.
	maxPayload = 8 + 2 + MaxKeyLen + 4 + MaxDeltas*deltaBytes
	frameHead  = 4 // length prefix
	frameTail  = 8 // crc64 trailer
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrTruncated reports a frame that ends before its declared length —
// the torn-tail shape a crash mid-append leaves behind. Open truncates
// the final segment at the first such frame; DecodeRecord callers use
// it to tell "cut here" from real corruption.
var ErrTruncated = errors.New("wal: truncated record")

// Delta is one logged edge mutation in wire form: the coordinates the
// engine addresses plus the compact op code.
type Delta struct {
	Op                uint8
	From, To, Relation int32
	Weight            float64
}

// Record is one logged ingest batch: the sequence number it was
// assigned, the client's idempotency key ("" when none was supplied)
// and the original delta batch, pre-composition — replay re-derives
// every downstream effect deterministically.
type Record struct {
	Seq    uint64
	Key    string
	Deltas []Delta
}

// Validate checks the record's static encoding invariants.
func (r *Record) Validate() error {
	if len(r.Key) > MaxKeyLen {
		return fmt.Errorf("wal: idempotency key of %d bytes exceeds the %d cap", len(r.Key), MaxKeyLen)
	}
	if len(r.Deltas) == 0 {
		return errors.New("wal: empty delta batch")
	}
	if len(r.Deltas) > MaxDeltas {
		return fmt.Errorf("wal: batch of %d deltas exceeds the %d cap", len(r.Deltas), MaxDeltas)
	}
	for q, d := range r.Deltas {
		if d.Op != OpAdd && d.Op != OpUpdate && d.Op != OpRemove {
			return fmt.Errorf("wal: delta %d has unknown op code %d", q, d.Op)
		}
	}
	return nil
}

// Encode serialises the record into one framed segment entry.
func (r *Record) Encode() []byte {
	payload := 8 + 2 + len(r.Key) + 4 + len(r.Deltas)*deltaBytes
	buf := make([]byte, 0, frameHead+payload+frameTail)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Deltas)))
	for _, d := range r.Deltas {
		buf = append(buf, d.Op)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.To))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Relation))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d.Weight))
	}
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf[frameHead:], crcTable))
	return buf
}

// DecodeRecord parses one framed record from the front of data,
// returning the record and the frame size consumed. A frame that ends
// early wraps ErrTruncated (the torn-tail signal); everything else —
// checksum mismatch, oversized or undersized length prefix, bad op
// codes, key/count bounds — is a hard corruption error. It never
// panics and never allocates more than the frame it accepts.
func DecodeRecord(data []byte) (*Record, int, error) {
	if len(data) < frameHead {
		return nil, 0, fmt.Errorf("%w: %d bytes before the length prefix", ErrTruncated, len(data))
	}
	payload := int(binary.LittleEndian.Uint32(data))
	if payload < 8+2+4+deltaBytes || payload > maxPayload {
		return nil, 0, fmt.Errorf("wal: record length prefix %d outside [%d, %d]", payload, 8+2+4+deltaBytes, maxPayload)
	}
	frame := frameHead + payload + frameTail
	if len(data) < frame {
		return nil, 0, fmt.Errorf("%w: frame wants %d bytes, have %d", ErrTruncated, frame, len(data))
	}
	body := data[frameHead : frameHead+payload]
	stored := binary.LittleEndian.Uint64(data[frameHead+payload:])
	if got := crc64.Checksum(body, crcTable); got != stored {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch (stored %016x, computed %016x)", stored, got)
	}
	rec := &Record{Seq: binary.LittleEndian.Uint64(body)}
	keyLen := int(binary.LittleEndian.Uint16(body[8:]))
	if keyLen > MaxKeyLen {
		return nil, 0, fmt.Errorf("wal: idempotency key of %d bytes exceeds the %d cap", keyLen, MaxKeyLen)
	}
	off := 8 + 2
	if len(body) < off+keyLen+4 {
		return nil, 0, fmt.Errorf("wal: record payload too short for its %d-byte key", keyLen)
	}
	rec.Key = string(body[off : off+keyLen])
	off += keyLen
	count := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if count < 1 || count > MaxDeltas {
		return nil, 0, fmt.Errorf("wal: delta count %d outside [1, %d]", count, MaxDeltas)
	}
	if len(body)-off != count*deltaBytes {
		return nil, 0, fmt.Errorf("wal: %d payload bytes left for %d deltas (want %d)", len(body)-off, count, count*deltaBytes)
	}
	rec.Deltas = make([]Delta, count)
	for q := range rec.Deltas {
		d := &rec.Deltas[q]
		d.Op = body[off]
		if d.Op != OpAdd && d.Op != OpUpdate && d.Op != OpRemove {
			return nil, 0, fmt.Errorf("wal: delta %d has unknown op code %d", q, d.Op)
		}
		d.From = int32(binary.LittleEndian.Uint32(body[off+1:]))
		d.To = int32(binary.LittleEndian.Uint32(body[off+5:]))
		d.Relation = int32(binary.LittleEndian.Uint32(body[off+9:]))
		d.Weight = math.Float64frombits(binary.LittleEndian.Uint64(body[off+13:]))
		off += deltaBytes
	}
	return rec, frame, nil
}
