package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeWALRecord hammers the record decoder with hostile bytes,
// mirroring the checkpoint codec's FuzzDecodeCheckpoint. The decoder
// sits on the recovery path — it reads whatever a crash left on disk —
// so it must never panic, never over-consume, and accept only frames
// that re-encode to the identical bytes.
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeWALRecord seeds
// the interesting shapes: a valid frame, a truncated tail, a flipped
// crc byte, an oversized length prefix, and a zero-length batch.
func FuzzDecodeWALRecord(f *testing.F) {
	valid := (&Record{Seq: 3, Key: "k", Deltas: []Delta{
		{Op: OpAdd, From: 0, To: 1, Relation: 0, Weight: 1},
		{Op: OpRemove, From: 2, To: 3, Relation: 1},
	}}).Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-6])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if rec != nil || n != 0 {
				t.Fatalf("failed decode leaked rec=%v n=%d", rec, n)
			}
			// The torn-tail signal must stay distinguishable: a frame cut
			// short is ErrTruncated; Open treats anything else as damage.
			_ = errors.Is(err, ErrTruncated)
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if verr := rec.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid record: %v", verr)
		}
		// Round trip: an accepted frame re-encodes bitwise identically,
		// so replay and re-logging can never drift from what was stored.
		if !bytes.Equal(rec.Encode(), data[:n]) {
			t.Fatalf("accepted frame does not re-encode to itself")
		}
	})
}
