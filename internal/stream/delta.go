// Package stream maintains live, mutating HIN models: batched edge
// deltas applied incrementally to the normalised tensor substrate
// (renormalising only the touched O columns and R tubes), warm
// re-solves seeded from the previous stationary (x̄, z̄), and a sealed
// content-hash version per applied batch in the artifact registry.
//
// The engine is transactional: a batch is validated completely, every
// derived structure is built off to the side, and the engine's visible
// state moves only in the final assignment — a failure (or injected
// panic) anywhere earlier leaves the previous version serving and the
// registry pointing at it. Published arrays are never mutated in
// place, so models handed out before an ingest keep serving the exact
// pre-ingest bytes (version-pinned reads).
package stream

import (
	"fmt"
	"sort"

	"tmark/internal/hin"
	"tmark/internal/tensor"
)

// Op is the kind of one edge delta.
type Op string

const (
	// OpAdd accumulates weight onto an edge, creating it if absent —
	// exactly what appending the edge to the source graph and
	// rebuilding would compute, including float summation order.
	OpAdd Op = "add"
	// OpUpdate replaces the raw weight of an existing edge; the edge
	// must exist.
	OpUpdate Op = "update"
	// OpRemove deletes an existing edge; the edge must exist and the
	// delta must carry no weight.
	OpRemove Op = "remove"
)

// Delta is one edge mutation. From/To/Relation address the edge the
// way hin.Graph stores it; for an undirected relation the mirrored
// adjacency entry moves with it, exactly as AdjacencyTensor would
// place it.
type Delta struct {
	Op       Op      `json:"op"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Relation int     `json:"relation"`
	Weight   float64 `json:"weight,omitempty"`
}

// MaxDeltas bounds one batch; large mutations should arrive as several
// batches (each seals its own version).
const MaxDeltas = 1 << 17

// Validate checks one delta against static rules (op spelling, weight
// domain). Graph-dependent checks (index ranges, existence) happen at
// apply time.
func (d Delta) Validate() error {
	switch d.Op {
	case OpAdd, OpUpdate:
		if err := hin.ValidWeight(d.Weight); err != nil {
			return fmt.Errorf("stream: %s delta: %w", d.Op, err)
		}
	case OpRemove:
		if d.Weight != 0 {
			return fmt.Errorf("stream: remove delta carries weight %v; removals take none", d.Weight)
		}
	default:
		return fmt.Errorf("stream: unknown delta op %q", d.Op)
	}
	return nil
}

// ValidateDeltas checks a whole batch's static rules.
func ValidateDeltas(deltas []Delta) error {
	if len(deltas) == 0 {
		return fmt.Errorf("stream: empty delta batch")
	}
	if len(deltas) > MaxDeltas {
		return fmt.Errorf("stream: batch of %d deltas exceeds the %d cap", len(deltas), MaxDeltas)
	}
	for q, d := range deltas {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("delta %d: %w", q, err)
		}
	}
	return nil
}

// batchEffect is the composed, validated effect of one delta batch on
// the raw adjacency: final per-coordinate values plus the touched
// column/tube sets.
type batchEffect struct {
	kji, jik     []tensor.Change
	touchedCols  map[[2]int32]bool // (j, k)
	touchedTubes map[[2]int32]bool // (i, j)
}

// compose folds the batch, in order, into final per-coordinate raw
// values against the current adjacency ao ((k,j,i)-ordered). Each delta
// expands to its adjacency coordinates the same way AdjacencyTensor
// does — a[to, from, k], plus the mirror for an undirected relation
// with from != to — and add composes v += w left to right, so the
// result is bitwise what a graph rebuild with the same mutations would
// produce. Any rule violation rejects the whole batch.
func compose(g *hin.Graph, ao tensor.COO, deltas []Delta) (*batchEffect, error) {
	if err := ValidateDeltas(deltas); err != nil {
		return nil, err
	}
	type state struct {
		v       float64
		present bool // exists after the ops so far
		inBase  bool // existed before the batch
	}
	pending := map[[3]int32]*state{}
	lookup := func(i, j, k int32) *state {
		c := [3]int32{i, j, k}
		st, ok := pending[c]
		if !ok {
			v, present := ao.AtKJI(i, j, k)
			st = &state{v: v, present: present, inBase: present}
			pending[c] = st
		}
		return st
	}
	for q, d := range deltas {
		if d.Relation < 0 || d.Relation >= g.M() {
			return nil, fmt.Errorf("delta %d: relation %d out of range %d", q, d.Relation, g.M())
		}
		if d.From < 0 || d.From >= g.N() || d.To < 0 || d.To >= g.N() {
			return nil, fmt.Errorf("delta %d: edge (%d,%d) out of range %d", q, d.From, d.To, g.N())
		}
		coords := [][3]int32{{int32(d.To), int32(d.From), int32(d.Relation)}}
		if !g.Relations[d.Relation].Directed && d.From != d.To {
			coords = append(coords, [3]int32{int32(d.From), int32(d.To), int32(d.Relation)})
		}
		for _, c := range coords {
			st := lookup(c[0], c[1], c[2])
			switch d.Op {
			case OpAdd:
				if st.present {
					st.v += d.Weight
				} else {
					st.v = d.Weight
					st.present = true
				}
			case OpUpdate:
				if !st.present {
					return nil, fmt.Errorf("delta %d: update of absent edge (%d→%d, relation %d)", q, d.From, d.To, d.Relation)
				}
				st.v = d.Weight
			case OpRemove:
				if !st.present {
					return nil, fmt.Errorf("delta %d: remove of absent edge (%d→%d, relation %d)", q, d.From, d.To, d.Relation)
				}
				st.v, st.present = 0, false
			}
		}
	}
	eff := &batchEffect{
		touchedCols:  map[[2]int32]bool{},
		touchedTubes: map[[2]int32]bool{},
	}
	for c, st := range pending {
		if !st.present && !st.inBase {
			continue // created and destroyed within the batch: no effect
		}
		v := st.v
		if !st.present {
			v = 0
		}
		eff.kji = append(eff.kji, tensor.Change{I: c[0], J: c[1], K: c[2], V: v})
		eff.touchedCols[[2]int32{c[1], c[2]}] = true
		eff.touchedTubes[[2]int32{c[0], c[1]}] = true
	}
	eff.jik = append([]tensor.Change(nil), eff.kji...)
	sort.Slice(eff.kji, func(a, b int) bool {
		x, y := eff.kji[a], eff.kji[b]
		if x.K != y.K {
			return x.K < y.K
		}
		if x.J != y.J {
			return x.J < y.J
		}
		return x.I < y.I
	})
	sort.Slice(eff.jik, func(a, b int) bool {
		x, y := eff.jik[a], eff.jik[b]
		if x.J != y.J {
			return x.J < y.J
		}
		if x.I != y.I {
			return x.I < y.I
		}
		return x.K < y.K
	})
	return eff, nil
}
