package stream

import (
	"context"
	"math/rand"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/dataset"
	"tmark/internal/eval"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// The golden fixtures here mirror internal/experiments/golden_test.go
// exactly (same generator configs, same split seed, same masking), so
// the engine's warm re-solves are checked against the very graphs the
// repository's golden tripwires watch.

type goldenFixture struct {
	name  string
	build func() *hin.Graph
	// delta is a single-edge perturbation whose cold re-solve stays in
	// the base ICA basin (a bump of an existing edge, small weight). The
	// ICA self-training schedule is knife-edge sensitive — some edges
	// flip the cold trajectory's pseudo-seed acceptance and land it on a
	// different (equally valid) equilibrium than the warm continuation —
	// so the equivalence contract is stated on schedule-stable deltas.
	delta Delta
}

var goldenFixtures = []goldenFixture{
	{"dblp", func() *hin.Graph {
		cfg := dataset.DefaultDBLPConfig(5)
		cfg.AuthorsPerArea = 30
		cfg.CrossAttendance = 20
		return dataset.DBLP(cfg)
	}, Delta{Op: OpAdd, From: 1, To: 19, Relation: 0, Weight: 0.01}},
	{"movies", func() *hin.Graph {
		cfg := dataset.DefaultMoviesConfig(5)
		cfg.MoviesPerGenre = 25
		cfg.Directors = 30
		return dataset.Movies(cfg)
	}, Delta{Op: OpAdd, From: 90, To: 19, Relation: 5, Weight: 0.01}},
	{"ring", func() *hin.Graph {
		cfg := dataset.DefaultRingConfig(5)
		cfg.ArcLength = 30
		return dataset.Ring(cfg)
	}, Delta{Op: OpAdd, From: 66, To: 76, Relation: 2, Weight: 0.01}},
}

// maskedGolden rebuilds the fixture from scratch (the generators are
// config-seeded and deterministic) and applies the golden label mask.
// Each call returns an independent graph, safe to mutate separately.
func maskedGolden(f goldenFixture) *hin.Graph {
	g := f.build()
	split := eval.StratifiedSplit(g, 0.3, rand.New(rand.NewSource(17)))
	masked, _ := eval.MaskLabels(g, split)
	return masked
}

func goldenConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	return cfg
}

// TestWarmRestartEquivalenceGolden is the satellite-2 contract on every
// golden fixture: after a single-edge delta, (a) the incrementally
// sealed version hashes identically to a full rebuild of the mutated
// graph — so the substrate is bitwise the from-scratch one — (b) the
// warm re-solve seeded from the previous stationary (x̄, z̄) predicts
// exactly what a cold solve of that rebuilt model predicts, and (c) the
// warm solve needs at least 3× fewer iterations than the cold one.
func TestWarmRestartEquivalenceGolden(t *testing.T) {
	for _, f := range goldenFixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			cfg := goldenConfig()
			g := maskedGolden(f)
			eng, err := NewEngine(f.name, g, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if _, err := eng.Solve(context.Background()); err != nil {
				t.Fatalf("base solve: %v", err)
			}

			delta := f.delta
			res, err := eng.Apply(context.Background(), []Delta{delta})
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if !res.Warm {
				t.Fatal("Apply after a base solve must re-solve warm")
			}

			// Full rebuild: independent fixture copy with the same edge.
			rebuilt := maskedGolden(f)
			rebuilt.AddWeightedEdge(delta.Relation, delta.From, delta.To, delta.Weight)
			_, wantHash, err := artifact.Compile(rebuilt, cfg)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if res.NewHash != wantHash {
				t.Fatalf("incremental hash %s, full rebuild %s", res.NewHash, wantHash)
			}

			coldModel, err := tmark.New(rebuilt, cfg)
			if err != nil {
				t.Fatalf("tmark.New(rebuilt): %v", err)
			}
			cold := coldModel.Run()
			warmPred, coldPred := eng.Current().Result().Predict(), cold.Predict()
			for i := range coldPred {
				if warmPred[i] != coldPred[i] {
					t.Fatalf("node %d: warm predicts %d, cold rebuild predicts %d", i, warmPred[i], coldPred[i])
				}
			}
			coldIters := cold.MaxIterations()
			t.Logf("%s: warm %d iterations vs cold %d", f.name, res.Iterations, coldIters)
			if res.Iterations*3 > coldIters {
				t.Fatalf("warm solve took %d iterations, cold %d: want at least 3x fewer", res.Iterations, coldIters)
			}
		})
	}
}

// TestWarmChainStaysEquivalent drives several consecutive single-edge
// batches through one engine and checks every intermediate version —
// hash and predictions — against an independent from-scratch rebuild,
// proving warm restarts do not accumulate drift across a chain.
func TestWarmChainStaysEquivalent(t *testing.T) {
	f := goldenFixtures[0] // dblp
	cfg := goldenConfig()
	eng, err := NewEngine(f.name, maskedGolden(f), cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Solve(context.Background()); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	rebuilt := maskedGolden(f)
	deltas := []Delta{
		{Op: OpAdd, From: 1, To: 19, Relation: 0, Weight: 0.01},
		{Op: OpAdd, From: 0, To: 37, Relation: 1, Weight: 0.01},
		{Op: OpAdd, From: 0, To: 84, Relation: 2, Weight: 0.01},
	}
	for step, d := range deltas {
		res, err := eng.Apply(context.Background(), []Delta{d})
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		rebuilt.AddWeightedEdge(d.Relation, d.From, d.To, d.Weight)
		_, wantHash, err := artifact.Compile(rebuilt, cfg)
		if err != nil {
			t.Fatalf("step %d: Compile: %v", step, err)
		}
		if res.NewHash != wantHash {
			t.Fatalf("step %d: incremental hash %s, full rebuild %s", step, res.NewHash, wantHash)
		}
		coldModel, err := tmark.New(rebuilt, cfg)
		if err != nil {
			t.Fatalf("step %d: tmark.New: %v", step, err)
		}
		coldPred := coldModel.Run().Predict()
		warmPred := eng.Current().Result().Predict()
		for i := range coldPred {
			if warmPred[i] != coldPred[i] {
				t.Fatalf("step %d node %d: warm predicts %d, cold predicts %d", step, i, warmPred[i], coldPred[i])
			}
		}
	}
}

// TestColdApplyWithoutBaseSolve: an Apply before any Solve has no
// previous stationary state to seed from and must fall back cold.
func TestColdApplyWithoutBaseSolve(t *testing.T) {
	eng, err := NewEngine("cold", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Apply(context.Background(), []Delta{{Op: OpAdd, From: 0, To: 3, Relation: 0, Weight: 1}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Warm {
		t.Fatal("first Apply without a base solve cannot be warm")
	}
	if !res.Converged {
		t.Fatal("cold fallback solve did not converge")
	}
}
