package stream

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// edgeKey addresses one graph edge (not one adjacency coordinate): the
// reference mutation model keyed the way deltas address edges.
type edgeKey struct {
	from, to, rel int
}

// refGraph is the from-scratch reference: the effective single-edge
// weight per (from, to, relation). Because tensor coalescing sums
// duplicate coordinates in insertion order, the engine's running
// "current value plus delta" composition lands on the same float64 the
// reference's one-edge-per-coordinate rebuild stores.
type refGraph struct {
	base  *hin.Graph
	edges map[edgeKey]float64
	order []edgeKey // deterministic build order
}

func newRefGraph(base *hin.Graph) *refGraph {
	r := &refGraph{base: base, edges: map[edgeKey]float64{}}
	for k := range base.Relations {
		for _, e := range base.Relations[k].Edges {
			r.apply(Delta{Op: OpAdd, From: e.From, To: e.To, Relation: k, Weight: e.Weight})
		}
	}
	return r
}

func (r *refGraph) apply(d Delta) {
	key := edgeKey{d.From, d.To, d.Relation}
	switch d.Op {
	case OpAdd:
		if _, ok := r.edges[key]; !ok {
			r.order = append(r.order, key)
		}
		r.edges[key] += d.Weight
	case OpUpdate:
		r.edges[key] = d.Weight
	case OpRemove:
		delete(r.edges, key)
	}
}

// build reconstructs a graph with exactly one edge per live key, in
// first-touch order, sharing the base graph's nodes/classes/relations.
func (r *refGraph) build() *hin.Graph {
	g := &hin.Graph{
		Nodes:   r.base.Nodes,
		Classes: r.base.Classes,
	}
	g.Relations = make([]hin.Relation, len(r.base.Relations))
	for k := range r.base.Relations {
		g.Relations[k] = hin.Relation{
			Name:     r.base.Relations[k].Name,
			Directed: r.base.Relations[k].Directed,
		}
	}
	seen := map[edgeKey]bool{}
	for _, key := range r.order {
		if seen[key] {
			continue // removed and later re-added: order holds the key twice
		}
		seen[key] = true
		w, ok := r.edges[key]
		if !ok {
			continue
		}
		g.AddWeightedEdge(key.rel, key.from, key.to, w)
	}
	return g
}

// randomGraph builds a labelled multi-relation HIN with a mix of
// directed and undirected relations.
func randomGraph(rng *rand.Rand, n int) *hin.Graph {
	g := hin.New("alpha", "beta", "gamma")
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("node-%d", i), nil)
	}
	for i := 0; i < 6 && i < n; i++ {
		g.SetLabels(i, i%3)
	}
	g.AddRelation("cites", true)
	g.AddRelation("coauthor", false)
	for e := 0; e < 4*n; e++ {
		k := rng.Intn(2)
		f, to := rng.Intn(n), rng.Intn(n)
		if k == 1 && f > to {
			// Canonical orientation for undirected pairs, so one edge key
			// addresses one adjacency coordinate pair (the delta API is
			// coordinate-level: remove drops the whole coordinate).
			f, to = to, f
		}
		g.AddWeightedEdge(k, f, to, 0.1+rng.Float64())
	}
	return g
}

// tinyGraph is a fully deterministic fixture for tests that need to
// know exactly which edges exist.
func tinyGraph() *hin.Graph {
	g := hin.New("alpha", "beta", "gamma")
	for i := 0; i < 6; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), nil)
	}
	for i := 0; i < 6; i++ {
		g.SetLabels(i, i%3)
	}
	g.AddRelation("cites", true)
	g.AddRelation("coauthor", false)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}} {
		g.AddWeightedEdge(0, e[0], e[1], 1)
	}
	for _, e := range [][2]int{{0, 2}, {1, 3}, {2, 4}, {3, 5}} {
		g.AddWeightedEdge(1, e[0], e[1], 1)
	}
	return g
}

// randomBatch generates a valid batch against the reference state:
// updates/removes target live edges, adds hit both fresh and existing
// pairs.
func randomBatch(rng *rand.Rand, ref *refGraph, n int) []Delta {
	var live []edgeKey
	for _, key := range ref.order {
		if _, ok := ref.edges[key]; ok {
			live = append(live, key)
		}
	}
	count := 1 + rng.Intn(6)
	batch := make([]Delta, 0, count)
	for q := 0; q < count; q++ {
		switch {
		case len(live) > 0 && rng.Intn(3) == 0:
			key := live[rng.Intn(len(live))]
			d := Delta{Op: OpUpdate, From: key.from, To: key.to, Relation: key.rel, Weight: 0.1 + rng.Float64()}
			if rng.Intn(2) == 0 {
				d = Delta{Op: OpRemove, From: key.from, To: key.to, Relation: key.rel}
			}
			batch = append(batch, d)
		default:
			k := rng.Intn(2)
			f, to := rng.Intn(n), rng.Intn(n)
			if k == 1 && f > to {
				f, to = to, f
			}
			batch = append(batch, Delta{
				Op: OpAdd, From: f, To: to,
				Relation: k, Weight: 0.1 + rng.Float64(),
			})
		}
		// Keep the reference in lockstep so later deltas in this batch
		// can legally target edges the batch itself created or removed.
		d := batch[len(batch)-1]
		if d.Op != OpAdd {
			if _, ok := ref.edges[edgeKey{d.From, d.To, d.Relation}]; !ok {
				batch = batch[:len(batch)-1]
				continue
			}
		}
		ref.apply(d)
	}
	return batch
}

func streamConfig() tmark.Config {
	cfg := tmark.DefaultConfig()
	cfg.Workers = 1
	cfg.Gamma = 0 // no feature channel: the random graphs carry no features
	return cfg
}

// TestEngineMatchesFullRebuild is the engine-level property: after any
// random add/update/remove batch sequence, the incrementally sealed
// version's content hash equals artifact.Compile of a from-scratch
// rebuild of the equivalently mutated graph — sha256 equality over the
// canonical encoding, i.e. the O columns, R tubes, column/tube lists
// and irreducibility flag are bitwise identical.
func TestEngineMatchesFullRebuild(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 8 + rng.Intn(10)
		g := randomGraph(rng, n)
		cfg := streamConfig()
		eng, err := NewEngine("rand", g, cfg, nil)
		if err != nil {
			t.Fatalf("trial %d: NewEngine: %v", trial, err)
		}
		ref := newRefGraph(g)
		for batchNo := 0; batchNo < 6; batchNo++ {
			batch := randomBatch(rng, ref, n)
			if len(batch) == 0 {
				continue
			}
			res, err := eng.Apply(context.Background(), batch)
			if err != nil {
				t.Fatalf("trial %d batch %d: Apply: %v", trial, batchNo, err)
			}
			_, wantHash, err := artifact.Compile(ref.build(), cfg)
			if err != nil {
				t.Fatalf("trial %d batch %d: Compile: %v", trial, batchNo, err)
			}
			if res.NewHash != wantHash {
				t.Fatalf("trial %d batch %d: incremental hash %s, full rebuild %s",
					trial, batchNo, res.NewHash, wantHash)
			}
			sub := eng.Current().Model.Substrate()
			if !sub.O.ColumnsStochastic(1e-12) {
				t.Fatalf("trial %d batch %d: O columns not stochastic", trial, batchNo)
			}
			if !sub.R.TubesStochastic(1e-12) {
				t.Fatalf("trial %d batch %d: R tubes not stochastic", trial, batchNo)
			}
		}
	}
}

// TestEngineSharesFeatureChannel verifies the structural-sharing claim:
// edge deltas never rebuild W, so every version aliases the base
// version's feature channel, and the sealed hash still matches a full
// rebuild (whose W build is deterministic).
func TestEngineSharesFeatureChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 10
	g := randomGraph(rng, n)
	for i := range g.Nodes {
		g.Nodes[i].Features = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	cfg := streamConfig()
	cfg.Gamma = 0.4
	eng, err := NewEngine("feat", g, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base := eng.Current().Model.Substrate()
	ref := newRefGraph(g)
	batch := []Delta{{Op: OpAdd, From: 0, To: 1, Relation: 0, Weight: 2}}
	ref.apply(batch[0])
	res, err := eng.Apply(context.Background(), batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	next := eng.Current().Model.Substrate()
	if next.WDense != base.WDense || next.WCSR != base.WCSR {
		t.Fatal("feature channel was rebuilt; versions must share W")
	}
	_, wantHash, err := artifact.Compile(ref.build(), cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if res.NewHash != wantHash {
		t.Fatalf("incremental hash %s, full rebuild %s", res.NewHash, wantHash)
	}
}

// TestEngineSealsVersions runs the engine against a real registry and
// checks the version chain: every applied batch tags the floating name
// to the new hash while the previous blobs stay addressable.
func TestEngineSealsVersions(t *testing.T) {
	reg, err := artifact.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 9)
	eng, err := NewEngine("live", g, streamConfig(), reg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base := eng.Current().Hash
	var hashes []string
	for b := 0; b < 3; b++ {
		res, err := eng.Apply(context.Background(), []Delta{
			{Op: OpAdd, From: b, To: b + 1, Relation: 0, Weight: 1.5},
		})
		if err != nil {
			t.Fatalf("Apply %d: %v", b, err)
		}
		if !res.Sealed {
			t.Fatalf("Apply %d: version not sealed", b)
		}
		hashes = append(hashes, res.NewHash)
		got, err := reg.Resolve(artifact.Ref{Name: "live"})
		if err != nil {
			t.Fatalf("Resolve: %v", err)
		}
		if got != res.NewHash {
			t.Fatalf("Apply %d: name resolves to %s, want %s", b, got, res.NewHash)
		}
	}
	// Every sealed version (and the untagged base) verifies end to end.
	for _, h := range append([]string{base}, hashes...) {
		a, _, err := reg.OpenRef(artifact.Ref{Hash: h})
		if err != nil {
			t.Fatalf("OpenRef(%s): %v", h, err)
		}
		if _, err := a.Activate(a.BuiltConfig); err != nil {
			t.Fatalf("Activate(%s): %v", h, err)
		}
		a.Close()
	}
}

// TestEngineRejectsBadBatches: validation failures reject the whole
// batch atomically — the engine stays on its version and a subsequent
// valid batch behaves as if the bad one never arrived.
func TestEngineRejectsBadBatches(t *testing.T) {
	g := tinyGraph()
	eng, err := NewEngine("atomic", g, streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before := eng.Current()
	bad := [][]Delta{
		nil, // empty
		{{Op: "set", From: 0, To: 1, Relation: 0, Weight: 1}},
		{{Op: OpAdd, From: 0, To: 1, Relation: 9, Weight: 1}},
		{{Op: OpAdd, From: -1, To: 1, Relation: 0, Weight: 1}},
		{{Op: OpAdd, From: 0, To: 99, Relation: 0, Weight: 1}},
		{{Op: OpAdd, From: 0, To: 1, Relation: 0, Weight: -2}},
		{{Op: OpRemove, From: 0, To: 1, Relation: 0, Weight: 3}},
		{{Op: OpUpdate, From: 0, To: 3, Relation: 0, Weight: 1}}, // 0→3 cite does not exist
		{{Op: OpRemove, From: 1, To: 4, Relation: 1}},            // 1-4 coauthor does not exist
		// Valid head, invalid tail: nothing of the batch may land.
		{{Op: OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}, {Op: OpRemove, From: 0, To: 4, Relation: 0}},
	}
	for q, batch := range bad {
		if _, err := eng.Apply(context.Background(), batch); err == nil {
			t.Fatalf("bad batch %d accepted", q)
		}
		if cur := eng.Current(); cur != before {
			t.Fatalf("bad batch %d moved the engine to seq %d", q, cur.Seq)
		}
	}
	if _, err := eng.Apply(context.Background(), []Delta{{Op: OpAdd, From: 0, To: 1, Relation: 0, Weight: 1}}); err != nil {
		t.Fatalf("valid batch after rejections: %v", err)
	}
}

// TestEngineRemoveThenAddWithinBatch exercises the in-batch lifecycle:
// an edge created and removed in one batch is a no-op, and re-adding
// after removal starts from zero, matching the rebuild semantics.
func TestEngineRemoveThenAddWithinBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 8)
	cfg := streamConfig()
	eng, err := NewEngine("lifecycle", g, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ref := newRefGraph(g)
	batch := []Delta{
		{Op: OpAdd, From: 2, To: 3, Relation: 0, Weight: 5},
		{Op: OpRemove, From: 2, To: 3, Relation: 0},
		{Op: OpAdd, From: 2, To: 3, Relation: 0, Weight: 1.25},
		{Op: OpAdd, From: 4, To: 5, Relation: 1, Weight: 2},
		{Op: OpRemove, From: 4, To: 5, Relation: 1},
	}
	for _, d := range batch {
		ref.apply(d)
	}
	res, err := eng.Apply(context.Background(), batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	_, wantHash, err := artifact.Compile(ref.build(), cfg)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if res.NewHash != wantHash {
		t.Fatalf("incremental hash %s, full rebuild %s", res.NewHash, wantHash)
	}
}

// TestDiffResults covers the diff report over two hand-built results.
func TestDiffResults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 9)
	cfg := streamConfig()
	eng, err := NewEngine("diffy", g, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ra, err := eng.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	aHash := eng.Current().Hash
	// A heavy rewiring so at least the link rankings move.
	if _, err := eng.Apply(context.Background(), []Delta{
		{Op: OpAdd, From: 1, To: 2, Relation: 1, Weight: 50},
		{Op: OpAdd, From: 2, To: 4, Relation: 1, Weight: 50},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	cur := eng.Current()
	d, err := DiffResults("sha256:"+aHash, "sha256:"+cur.Hash, g, ra, cur.Result())
	if err != nil {
		t.Fatalf("DiffResults: %v", err)
	}
	if d.Nodes != g.N() {
		t.Fatalf("diff over %d nodes, want %d", d.Nodes, g.N())
	}
	for _, f := range d.Flips {
		if f.From == f.To {
			t.Fatalf("flip with identical classes: %+v", f)
		}
	}
	for _, s := range d.Shifts {
		if s.FromRank == s.ToRank {
			t.Fatalf("rank shift without movement: %+v", s)
		}
	}
}
