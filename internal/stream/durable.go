package stream

// Durability: the engine's write-ahead-log restore, replay and
// self-healing quarantine recovery paths.
//
// Two invariants make replay sound:
//
//   - A record is appended (fsync'd) after the batch composes but
//     before any derived state is built, carrying the sequence number
//     the batch would commit as. Sequence numbers only advance on
//     commit, so several records can share one value: every record of a
//     group except the last was a clean post-append rejection, and the
//     last record of group X committed if and only if the history moved
//     past X.
//
//   - The committed state at any sequence point is a pure function of
//     the raw adjacency there, and a full renormalisation of that
//     adjacency is bitwise identical to the engine's incremental path.
//     Recovery therefore proves its rebuild against the sealed history
//     by content-hash equality before trusting it.
//
// For the final, un-acknowledged record group (the crash window),
// replay is at-least-once: each surviving record re-applies in order,
// and clean failures skip. The client-facing idempotency keys ride in
// the records, so a retried batch deduplicates across the crash instead
// of double-applying.

import (
	"context"
	"fmt"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/tensor"
	"tmark/internal/tmark"
	"tmark/internal/wal"
)

// toWALDeltas translates a validated batch into the log's wire form.
func toWALDeltas(deltas []Delta) []wal.Delta {
	out := make([]wal.Delta, len(deltas))
	for q, d := range deltas {
		w := wal.Delta{
			From:     int32(d.From),
			To:       int32(d.To),
			Relation: int32(d.Relation),
			Weight:   d.Weight,
		}
		switch d.Op {
		case OpAdd:
			w.Op = wal.OpAdd
		case OpUpdate:
			w.Op = wal.OpUpdate
		case OpRemove:
			w.Op = wal.OpRemove
		}
		out[q] = w
	}
	return out
}

// fromWALDeltas translates a decoded record's deltas back into the
// engine's form. DecodeRecord already rejected unknown op codes.
func fromWALDeltas(ds []wal.Delta) []Delta {
	out := make([]Delta, len(ds))
	for q, d := range ds {
		s := Delta{
			From:     int(d.From),
			To:       int(d.To),
			Relation: int(d.Relation),
			Weight:   d.Weight,
		}
		switch d.Op {
		case wal.OpAdd:
			s.Op = OpAdd
		case wal.OpUpdate:
			s.Op = OpUpdate
		case wal.OpRemove:
			s.Op = OpRemove
		}
		out[q] = s
	}
	return out
}

// rebuildAt derives the full committed state at a raw adjacency: both
// sort orders, the assembled model and the content hash it would seal
// under. The W channel never moves with edges, so it is shared from the
// base substrate; everything else is recomputed from scratch, which is
// bitwise identical to the incremental path (renormalisation with every
// column touched is the same arithmetic NewNodeTransition runs).
func (e *Engine) rebuildAt(ao tensor.COO) (*tmark.Model, tensor.COO, string, error) {
	ar := ao.SortedJIK()
	all2 := func(int32, int32) bool { return true }
	o, err := tensor.NodeTransitionFromRaw(tensor.RenormalizeNode(ao, tensor.NodeRaw{}, all2))
	if err != nil {
		return nil, tensor.COO{}, "", fmt.Errorf("stream: rebuilt O failed validation: %w", err)
	}
	r, err := tensor.RelationTransitionFromRaw(tensor.RenormalizeRelation(ar, tensor.RelationRaw{}, all2))
	if err != nil {
		return nil, tensor.COO{}, "", fmt.Errorf("stream: rebuilt R failed validation: %w", err)
	}
	sub := tmark.Substrate{
		O:           o,
		R:           r,
		WDense:      e.baseSub.WDense,
		WCSR:        e.baseSub.WCSR,
		Irreducible: ao.Irreducible(),
	}
	model, err := tmark.Assemble(e.g, e.cfg, sub)
	if err != nil {
		return nil, tensor.COO{}, "", err
	}
	data, err := artifact.EncodeModel(e.g, e.cfg, sub)
	if err != nil {
		return nil, tensor.COO{}, "", err
	}
	return model, ar, artifact.Hash(data), nil
}

// foldCommitted folds the log's committed records over (base, baseSeq]
// up to and including target into a new raw adjacency. Only the last
// record of each sequence group folds — the earlier members were clean
// post-append rejections that never moved state. Composition is merge
// only: no renormalisation, sealing or solving happens here.
func (e *Engine) foldCommitted(base tensor.COO, baseSeq, target uint64) (tensor.COO, error) {
	recs := e.log.Records()
	ao := base
	for q, rec := range recs {
		if rec.Seq <= baseSeq || rec.Seq > target {
			continue
		}
		if q+1 < len(recs) && recs[q+1].Seq == rec.Seq {
			continue // superseded: a later record re-used the sequence number
		}
		eff, err := compose(e.g, ao, fromWALDeltas(rec.Deltas))
		if err != nil {
			return tensor.COO{}, fmt.Errorf("stream: committed record at seq %d no longer composes: %w", rec.Seq, err)
		}
		merged, err := tensor.MergeKJI(ao, eff.kji)
		if err != nil {
			return tensor.COO{}, fmt.Errorf("stream: committed record at seq %d no longer merges: %w", rec.Seq, err)
		}
		ao = merged
	}
	return ao, nil
}

// replayLog restores the engine from its write-ahead log at
// construction: rewind to the snapshot (verified by content-hash
// equality), then run every surviving record through the full apply
// path. Clean failures skip — the final record group is the
// un-acknowledged crash window and replays at-least-once — but a panic
// mid-replay fails construction rather than publishing a state the log
// cannot vouch for.
func (e *Engine) replayLog(ctx context.Context) error {
	if snap := e.log.Snapshot(); snap != nil {
		if snap.N != e.g.N() || snap.M != e.g.M() {
			return fmt.Errorf("stream: wal snapshot is %dx%d, graph is %dx%d — wrong dataset?",
				snap.N, snap.M, e.g.N(), e.g.M())
		}
		ao := tensor.COO{N: snap.N, M: snap.M, I: snap.I, J: snap.J, K: snap.K, V: snap.V}
		model, ar, hash, err := e.rebuildAt(ao)
		if err != nil {
			return fmt.Errorf("stream: wal snapshot at seq %d: %w", snap.Seq, err)
		}
		if hash != snap.Hash {
			return fmt.Errorf("stream: wal snapshot at seq %d rebuilds to %s, snapshot sealed as %s",
				snap.Seq, hash, snap.Hash)
		}
		e.ao, e.ar = ao, ar
		e.cur = &Version{Seq: int(snap.Seq), Hash: hash, Model: model}
	}
	for _, rec := range e.log.Records() {
		if rec.Seq <= uint64(e.cur.Seq) {
			continue
		}
		if _, err := e.applyLocked(ctx, rec.Key, fromWALDeltas(rec.Deltas), false); err != nil {
			if e.poisoned != nil {
				return fmt.Errorf("stream: wal replay at seq %d: %w", rec.Seq, err)
			}
			continue // clean rejection, same as the original timeline
		}
		e.met.replayed.Inc()
	}
	return nil
}

// recoverLocked is the self-healing path out of quarantine: discard the
// poisoned in-memory substrate, rewind to the log's snapshot (or the
// pristine source graph), fold the committed records, and prove the
// rebuild equals the sealed history — content-hash equality with the
// last published version, whose blob must still verify in the registry.
// Only then does the rebuilt state install, the quarantine lift and the
// logged-but-unsealed suffix replay. Any mismatch keeps the quarantine:
// a log that cannot re-derive the published state is worse than no log.
// Callers hold e.mu.
func (e *Engine) recoverLocked(ctx context.Context) error {
	cause := e.poisoned
	if e.log == nil {
		return fmt.Errorf("%w: %v (no write-ahead log; restart required)", ErrQuarantined, cause)
	}
	if fault.Enabled() {
		if err := fault.Check(fault.StreamRecover); err != nil {
			return fmt.Errorf("%w: recovery: %v (quarantined by: %v)", ErrQuarantined, err, cause)
		}
	}
	base, baseSeq := e.srcAO, uint64(0)
	if snap := e.log.Snapshot(); snap != nil {
		base = tensor.COO{N: snap.N, M: snap.M, I: snap.I, J: snap.J, K: snap.K, V: snap.V}
		baseSeq = snap.Seq
	}
	target := uint64(e.cur.Seq)
	ao, err := e.foldCommitted(base, baseSeq, target)
	if err != nil {
		return fmt.Errorf("%w: recovery: %v (quarantined by: %v)", ErrQuarantined, err, cause)
	}
	model, ar, hash, err := e.rebuildAt(ao)
	if err != nil {
		return fmt.Errorf("%w: recovery: %v (quarantined by: %v)", ErrQuarantined, err, cause)
	}
	if hash != e.cur.Hash {
		return fmt.Errorf("%w: recovery rebuilt seq %d as %s, sealed history says %s (quarantined by: %v)",
			ErrQuarantined, target, hash, e.cur.Hash, cause)
	}
	if e.reg != nil {
		a, _, rerr := e.reg.OpenRef(artifact.Ref{Hash: hash})
		if rerr != nil {
			return fmt.Errorf("%w: recovery: sealed version %s unavailable: %v (quarantined by: %v)",
				ErrQuarantined, hash, rerr, cause)
		}
		a.Close()
	}
	// The rebuild is proven: install it and lift the quarantine. The
	// stationary cache is gone with the poisoned version, so the next
	// Solve runs cold.
	e.ao, e.ar = ao, ar
	e.cur = &Version{Seq: int(target), Hash: hash, Model: model}
	e.poisoned = nil
	e.met.recoveries.Inc()

	replayed := 0
	for _, rec := range e.log.Records() {
		if rec.Seq <= target {
			continue
		}
		if _, aerr := e.applyLocked(ctx, rec.Key, fromWALDeltas(rec.Deltas), false); aerr != nil {
			if e.poisoned != nil {
				return fmt.Errorf("%w: replay re-poisoned at seq %d: %v", ErrQuarantined, rec.Seq, e.poisoned)
			}
			continue
		}
		e.met.replayed.Inc()
		replayed++
	}
	if fault.Enabled() {
		fault.Fire(fault.StreamRecover, int(target), replayed)
	}
	return nil
}
