package stream

// Chaos tests for the ingest path: injected faults in delta apply,
// version seal and warm restart must leave the engine either cleanly
// rejecting (error, state untouched) or quarantined (ErrQuarantined,
// last version still serving, registry still consistent) — never
// half-applied. Run with -race (the `make chaos` target does) so the
// recovery paths are also proven free of data races.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/fault"
)

func chaosDelta(b int) []Delta {
	return []Delta{{Op: OpAdd, From: b % 6, To: (b + 3) % 6, Relation: 1, Weight: 0.5}}
}

// TestChaosApplyPanicQuarantines: a panic mid-apply (after the new
// substrate assembles, before sealing) must poison the engine — the
// batch is lost, the previous version keeps serving, nothing was
// written to the registry, and every later call reports ErrQuarantined.
func TestChaosApplyPanicQuarantines(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg, err := artifact.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	eng, err := NewEngine("chaos", tinyGraph(), streamConfig(), reg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before := eng.Current()

	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: apply blew up") }))
	defer remove()

	if _, err := eng.Apply(context.Background(), chaosDelta(0)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply under panic: err = %v, want ErrQuarantined", err)
	}
	if eng.Current() != before {
		t.Fatal("panicked apply moved the engine version")
	}
	if eng.Quarantined() == nil {
		t.Fatal("engine not marked quarantined")
	}
	// The floating name was never tagged (no batch ever sealed), and no
	// stray blob appeared for the aborted batch.
	if _, err := reg.Resolve(artifact.Ref{Name: "chaos"}); err == nil {
		t.Fatal("aborted ingest tagged the floating name")
	}
	// The fault hook is inert now (Once), but the engine must still
	// refuse: quarantine is sticky until the process restarts.
	if _, err := eng.Apply(context.Background(), chaosDelta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply after quarantine: err = %v, want ErrQuarantined", err)
	}
	if _, err := eng.Solve(context.Background()); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Solve after quarantine: err = %v, want ErrQuarantined", err)
	}
}

// TestChaosSealPanicNeverHalfSeals: a panic between the blob write and
// the tag move must leave the registry fully consistent — the floating
// name still resolves to the previous sealed version and the orphaned
// blob, if present, is complete and verifiable (tags only ever point at
// fully written blobs, so there is no "half-sealed" observable state).
func TestChaosSealPanicNeverHalfSeals(t *testing.T) {
	t.Cleanup(fault.Reset)
	reg, err := artifact.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	eng, err := NewEngine("chaos", tinyGraph(), streamConfig(), reg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	good, err := eng.Apply(context.Background(), chaosDelta(0))
	if err != nil {
		t.Fatalf("first Apply: %v", err)
	}

	var orphan string
	remove := fault.Inject(fault.StreamSeal, fault.Once(func(args ...any) {
		orphan = args[0].(string)
		panic("chaos: crashed between put and tag")
	}))
	defer remove()

	if _, err := eng.Apply(context.Background(), chaosDelta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply under seal panic: err = %v, want ErrQuarantined", err)
	}
	got, err := reg.Resolve(artifact.Ref{Name: "chaos"})
	if err != nil {
		t.Fatalf("Resolve after seal panic: %v", err)
	}
	if got != good.NewHash {
		t.Fatalf("name resolves to %s after aborted seal, want previous %s", got, good.NewHash)
	}
	if eng.Current().Hash != good.NewHash {
		t.Fatalf("engine moved to %s, want %s", eng.Current().Hash, good.NewHash)
	}
	// The orphaned blob was fully written before the crash point: it
	// must open and activate like any sealed version.
	if orphan == "" {
		t.Fatal("seal fault never fired")
	}
	a, _, err := reg.OpenRef(artifact.Ref{Hash: orphan})
	if err != nil {
		t.Fatalf("orphan blob unreadable: %v", err)
	}
	defer a.Close()
	if _, err := a.Activate(a.BuiltConfig); err != nil {
		t.Fatalf("orphan blob does not activate: %v", err)
	}
}

// TestChaosWarmFaultFallsBackCold: an error at the warm-restart point
// must not fail or quarantine the ingest — the engine re-solves cold
// and the version seals normally.
func TestChaosWarmFaultFallsBackCold(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, err := NewEngine("chaos", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Solve(context.Background()); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	remove := fault.InjectErr(fault.StreamWarm, func() error { return errors.New("chaos: warm state unavailable") })
	defer remove()

	res, err := eng.Apply(context.Background(), chaosDelta(0))
	if err != nil {
		t.Fatalf("Apply under warm fault: %v", err)
	}
	if res.Warm {
		t.Fatal("warm fault did not force the cold path")
	}
	if !res.Converged {
		t.Fatal("cold fallback did not converge")
	}
	if eng.Quarantined() != nil {
		t.Fatal("warm fallback quarantined the engine")
	}
}

// TestChaosApplyCheckRejectsCleanly: an error (not panic) at the apply
// entry point is an ordinary rejection — no quarantine, and the next
// batch applies once the fault clears.
func TestChaosApplyCheckRejectsCleanly(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, err := NewEngine("chaos", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	injected := errors.New("chaos: ingest backpressure")
	remove := fault.InjectErr(fault.StreamApply, func() error { return injected })

	if _, err := eng.Apply(context.Background(), chaosDelta(0)); !errors.Is(err, injected) {
		t.Fatalf("Apply under check fault: err = %v, want injected error", err)
	}
	if eng.Quarantined() != nil {
		t.Fatal("clean rejection must not quarantine")
	}
	remove()
	if _, err := eng.Apply(context.Background(), chaosDelta(0)); err != nil {
		t.Fatalf("Apply after fault cleared: %v", err)
	}
}

// TestChaosConcurrentReadsDuringApply hammers version reads (and solves
// on pinned versions) while batches apply and one apply panics — the
// version-pinned read contract under -race: a reader's model never
// observes a mutation, before, during, or after a fault.
func TestChaosConcurrentReadsDuringApply(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, err := NewEngine("chaos", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng.Solve(context.Background()); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	remove := fault.Inject(fault.StreamApply, fault.Nth(3, func(...any) { panic("chaos: mid-stream crash") }))
	defer remove()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := eng.Current()
				// Re-solving the pinned version's model must be safe and
				// deterministic regardless of concurrent ingests.
				res := v.Model.RunContext(context.Background())
				if pred := res.Predict(); len(pred) != 6 {
					t.Errorf("pinned solve returned %d predictions", len(pred))
					return
				}
			}
		}()
	}
	var sawQuarantine bool
	for b := 0; b < 6; b++ {
		if _, err := eng.Apply(context.Background(), chaosDelta(b)); err != nil {
			if !errors.Is(err, ErrQuarantined) {
				t.Errorf("batch %d: unexpected error %v", b, err)
			}
			sawQuarantine = true
		}
	}
	close(stop)
	wg.Wait()
	if !sawQuarantine {
		t.Fatal("the injected panic never surfaced")
	}
}
