package stream

import (
	"fmt"
	"io"
	"sort"

	"tmark/internal/hin"
	"tmark/internal/tmark"
)

// Flip is one node whose predicted class differs between two model
// versions.
type Flip struct {
	Node     int    `json:"node"`
	Name     string `json:"name,omitempty"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	FromName string `json:"from_class"`
	ToName   string `json:"to_class"`
	// Labeled marks seed nodes; a labelled node flipping is usually a
	// sign the mutation cut it off from its class's mass.
	Labeled bool `json:"labeled,omitempty"`
}

// RankShift is one relation whose position in a class's link-type
// ranking (the stationary z̄, eq. 8) moved between two versions.
type RankShift struct {
	Class        int     `json:"class"`
	ClassName    string  `json:"class_name"`
	Relation     int     `json:"relation"`
	RelationName string  `json:"relation_name"`
	FromRank     int     `json:"from_rank"`
	ToRank       int     `json:"to_rank"`
	FromScore    float64 `json:"from_score"`
	ToScore      float64 `json:"to_score"`
}

// Diff reports the classification and ranking consequences of moving
// from model version A to version B.
type Diff struct {
	A      string      `json:"a"`
	B      string      `json:"b"`
	Nodes  int         `json:"nodes"`
	Flips  []Flip      `json:"flips,omitempty"`
	Shifts []RankShift `json:"rank_shifts,omitempty"`
}

// DiffResults compares two solved results over the same node/class/
// relation universe. The graph supplies names and label flags only; it
// may be either version's graph, since deltas never change metadata.
func DiffResults(aID, bID string, g *hin.Graph, ra, rb *tmark.Result) (*Diff, error) {
	pa, pb := ra.Predict(), rb.Predict()
	if len(pa) != len(pb) || len(pa) != g.N() {
		return nil, fmt.Errorf("stream: diff dimension mismatch: %d vs %d nodes (graph %d)", len(pa), len(pb), g.N())
	}
	d := &Diff{A: aID, B: bID, Nodes: len(pa)}
	for i := range pa {
		if pa[i] == pb[i] {
			continue
		}
		d.Flips = append(d.Flips, Flip{
			Node:     i,
			Name:     g.Nodes[i].Name,
			From:     pa[i],
			To:       pb[i],
			FromName: g.Classes[pa[i]],
			ToName:   g.Classes[pb[i]],
			Labeled:  len(g.Nodes[i].Labels) > 0,
		})
	}
	for c := range g.Classes {
		la, lb := ra.LinkRanking(c), rb.LinkRanking(c)
		if len(la) != len(lb) {
			return nil, fmt.Errorf("stream: diff relation mismatch in class %d: %d vs %d", c, len(la), len(lb))
		}
		posA := make(map[int]int, len(la))
		scoreA := make(map[int]float64, len(la))
		for rank, rs := range la {
			posA[rs.Relation] = rank
			scoreA[rs.Relation] = rs.Score
		}
		for rank, rs := range lb {
			if posA[rs.Relation] == rank {
				continue
			}
			d.Shifts = append(d.Shifts, RankShift{
				Class:        c,
				ClassName:    g.Classes[c],
				Relation:     rs.Relation,
				RelationName: g.Relations[rs.Relation].Name,
				FromRank:     posA[rs.Relation],
				ToRank:       rank,
				FromScore:    scoreA[rs.Relation],
				ToScore:      rs.Score,
			})
		}
	}
	sort.Slice(d.Shifts, func(a, b int) bool {
		if d.Shifts[a].Class != d.Shifts[b].Class {
			return d.Shifts[a].Class < d.Shifts[b].Class
		}
		return d.Shifts[a].Relation < d.Shifts[b].Relation
	})
	return d, nil
}

// Render writes the diff in its stable human-readable form (the `tmark
// diff` output, golden-tested).
func (d *Diff) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "diff %s %s\n", d.A, d.B); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "nodes: %d  flips: %d  rank shifts: %d\n", d.Nodes, len(d.Flips), len(d.Shifts)); err != nil {
		return err
	}
	for _, f := range d.Flips {
		label := ""
		if f.Labeled {
			label = " [labeled]"
		}
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("node-%d", f.Node)
		}
		if _, err := fmt.Fprintf(w, "flip node %d (%s)%s: %s -> %s\n", f.Node, name, label, f.FromName, f.ToName); err != nil {
			return err
		}
	}
	for _, s := range d.Shifts {
		if _, err := fmt.Fprintf(w, "rank class %d (%s): relation %d (%s) %d -> %d (%.6f -> %.6f)\n",
			s.Class, s.ClassName, s.Relation, s.RelationName, s.FromRank+1, s.ToRank+1, s.FromScore, s.ToScore); err != nil {
			return err
		}
	}
	return nil
}
