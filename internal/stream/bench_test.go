package stream

// The delta-size sweep behind BENCH_9.json: one op is a full ingest
// batch — compose, touched-region renormalisation, canonical re-encode
// and hash, warm re-solve — against a fixed random network. The
// custom metrics put the warm-restart claim on record: warm_iters/op
// is the average re-solve cost after each batch, cold_iters what the
// same solve costs from scratch.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkStreamIngest(b *testing.B) {
	const nodes = 300
	for _, size := range []int{1, 16, 256, 2048} {
		b.Run(fmt.Sprintf("deltas=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			g := randomGraph(rng, nodes)
			cfg := streamConfig()
			eng, err := NewEngine("bench", g, cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			base, err := eng.Solve(ctx)
			if err != nil {
				b.Fatal(err)
			}
			coldIters := base.MaxIterations()
			// Pre-generate every batch: adds only, so any coordinate is
			// valid whatever earlier batches did.
			batches := make([][]Delta, b.N)
			for i := range batches {
				batch := make([]Delta, size)
				for d := range batch {
					batch[d] = Delta{
						Op:       OpAdd,
						From:     rng.Intn(nodes),
						To:       rng.Intn(nodes),
						Relation: rng.Intn(g.M()),
						Weight:   0.1 + rng.Float64(),
					}
				}
				batches[i] = batch
			}
			warmIters := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Apply(ctx, batches[i])
				if err != nil {
					b.Fatal(err)
				}
				warmIters += res.Iterations
			}
			b.StopTimer()
			b.ReportMetric(float64(warmIters)/float64(b.N), "warm_iters/op")
			b.ReportMetric(float64(coldIters), "cold_iters")
		})
	}
}
