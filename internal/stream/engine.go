package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/hin"
	"tmark/internal/obs"
	"tmark/internal/tensor"
	"tmark/internal/tmark"
	"tmark/internal/wal"
)

// ErrQuarantined marks an engine poisoned by a mid-ingest fault. The
// last published version keeps serving (it was never touched). With a
// write-ahead log attached the quarantine is self-healing: the next
// Apply or Solve discards the poisoned substrate, rebuilds from the
// log's snapshot, proves the rebuild against the sealed history by
// content-hash equality and replays the logged suffix. Without a log
// the quarantine is sticky until the process restarts.
var ErrQuarantined = errors.New("stream: ingest engine quarantined")

// DefaultDedupWindow bounds the idempotency-key window: how many
// recently committed batch keys Apply remembers for duplicate
// detection.
const DefaultDedupWindow = 1024

// DefaultWALCheckpointEvery is the log-checkpoint cadence in committed
// batches: how often the engine snapshots the raw adjacency so the log
// can prune its sealed prefix.
const DefaultWALCheckpointEvery = 64

// Version is one sealed model state: the substrate after some prefix of
// the applied batches, its content hash, and (once solved) the
// stationary result that seeds the next warm restart.
type Version struct {
	// Seq counts applied batches; 0 is the unmutated source graph.
	Seq int
	// Hash is the canonical content hash of the version's artifact
	// encoding — identical to what artifact.Compile of an equivalently
	// mutated graph would produce.
	Hash string
	// Model is the assembled servable model for this version.
	Model *tmark.Model

	res *tmark.Result
}

// Result returns the version's stationary solve, if one has run.
func (v *Version) Result() *tmark.Result { return v.res }

// EngineOption configures NewEngine beyond its required arguments.
type EngineOption func(*Engine)

// WithWAL attaches a write-ahead log: every accepted batch is logged
// (fsync'd) before any state moves, construction replays the log's
// live suffix on top of its snapshot, and quarantines become
// self-healing. The engine owns the log's append position; nothing
// else may append to it.
func WithWAL(l *wal.Log) EngineOption { return func(e *Engine) { e.log = l } }

// WithMetrics wires the engine's durability counters
// (tmarkd_wal_appends_total, tmarkd_wal_replayed_total,
// tmarkd_ingest_duplicates_total, tmarkd_quarantine_recoveries_total)
// into reg. Counters are shared per name, so engines on one registry
// aggregate.
func WithMetrics(reg *obs.Registry) EngineOption {
	return func(e *Engine) {
		e.met = engineMetrics{
			appends:    reg.Counter("tmarkd_wal_appends_total"),
			replayed:   reg.Counter("tmarkd_wal_replayed_total"),
			duplicates: reg.Counter("tmarkd_ingest_duplicates_total"),
			recoveries: reg.Counter("tmarkd_quarantine_recoveries_total"),
		}
	}
}

// WithDedupWindow overrides the idempotency-key window size (default
// DefaultDedupWindow).
func WithDedupWindow(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.dedupCap = n
		}
	}
}

// WithWALCheckpointEvery overrides the log-checkpoint cadence in
// committed batches (default DefaultWALCheckpointEvery). Lower values
// prune the log more aggressively at the cost of a raw-adjacency
// snapshot per checkpoint.
func WithWALCheckpointEvery(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.walEvery = n
		}
	}
}

// engineMetrics is the durability instrument set; the zero value (no
// WithMetrics) is inert because obs counters are nil-safe.
type engineMetrics struct {
	appends    *obs.Counter
	replayed   *obs.Counter
	duplicates *obs.Counter
	recoveries *obs.Counter
}

// Engine owns the mutable state of one live model: the raw adjacency in
// both kernel sort orders, the current Version, and the registry the
// versions seal into. All methods are safe for concurrent use; Apply
// calls serialise.
type Engine struct {
	mu   sync.Mutex
	name string
	g    *hin.Graph
	cfg  tmark.Config
	reg  *artifact.Registry

	ao, ar   tensor.COO // raw adjacency, (k,j,i) and (j,i,k) orders
	cur      *Version
	poisoned error

	// Durability state. srcAO and baseSub pin the pristine source
	// adjacency and the base substrate (the W channel never moves with
	// edges), so recovery can always rewind to sequence 0.
	log      *wal.Log
	met      engineMetrics
	srcAO    tensor.COO
	baseSub  tmark.Substrate
	dedup    map[string]*ApplyResult
	dedupQ   []string
	dedupCap int
	walEvery int
}

// NewEngine builds the live-model engine for a dataset-backed graph.
// The base version (Seq 0) is compiled and, when a registry is given,
// its blob written (but not tagged — the floating name only moves when
// a batch actually applies). The graph is aliased and must not be
// mutated by the caller afterwards; deltas are the only mutation path.
// With WithWAL, construction then restores from the log's snapshot and
// replays its live records, so a restarted process resumes exactly
// where the crashed one's last durable append left off.
func NewEngine(name string, g *hin.Graph, cfg tmark.Config, reg *artifact.Registry, opts ...EngineOption) (*Engine, error) {
	m, err := tmark.New(g, cfg)
	if err != nil {
		return nil, err
	}
	data, err := artifact.EncodeModel(g, cfg, m.Substrate())
	if err != nil {
		return nil, err
	}
	hash := artifact.Hash(data)
	if reg != nil {
		if _, err := reg.Put(data); err != nil {
			return nil, fmt.Errorf("stream: sealing base version: %w", err)
		}
	}
	a := g.AdjacencyTensor()
	ao := a.COOView()
	e := &Engine{
		name:     name,
		g:        g,
		cfg:      cfg,
		reg:      reg,
		ao:       ao,
		ar:       ao.SortedJIK(),
		cur:      &Version{Seq: 0, Hash: hash, Model: m},
		srcAO:    ao,
		baseSub:  m.Substrate(),
		dedup:    map[string]*ApplyResult{},
		dedupCap: DefaultDedupWindow,
		walEvery: DefaultWALCheckpointEvery,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.log != nil {
		if err := e.replayLog(context.Background()); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Name returns the engine's model name.
func (e *Engine) Name() string { return e.name }

// Config returns the engine's hyper-parameter set.
func (e *Engine) Config() tmark.Config { return e.cfg }

// Current returns the engine's live version.
func (e *Engine) Current() *Version {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur
}

// Quarantined reports the poisoning fault, if any.
func (e *Engine) Quarantined() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.poisoned
}

// WALSize reports the attached log's live segment bytes, 0 without a
// log — the per-engine term of the tmarkd_wal_segment_bytes gauge.
func (e *Engine) WALSize() int64 {
	if e.log == nil {
		return 0
	}
	return e.log.Size()
}

// Solve runs (and caches) the current version's stationary solve. The
// first call after engine creation is cold; versions minted by Apply
// carry the warm re-solve Apply already ran. A quarantined engine
// attempts its in-process recovery first.
func (e *Engine) Solve(ctx context.Context) (*tmark.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poisoned != nil {
		if err := e.recoverLocked(ctx); err != nil {
			return nil, err
		}
	}
	if e.cur.res == nil {
		e.cur.res = e.cur.Model.RunContext(ctx)
	}
	return e.cur.res, nil
}

// ApplyResult summarises one applied batch.
type ApplyResult struct {
	// Name is the engine's model name.
	Name string `json:"name"`
	// Seq is the new version's sequence number.
	Seq int `json:"seq"`
	// OldHash/NewHash are the content hashes before and after.
	OldHash string `json:"old_hash"`
	NewHash string `json:"new_hash"`
	// Deltas is the batch size; Changes the distinct adjacency
	// coordinates it resolved to.
	Deltas  int `json:"deltas"`
	Changes int `json:"changes"`
	// TouchedColumns/TouchedTubes count the O columns and R tubes that
	// were renormalised; everything else kept its previous bytes.
	TouchedColumns int `json:"touched_columns"`
	TouchedTubes   int `json:"touched_tubes"`
	// Sealed reports whether the version was written to a registry.
	Sealed bool `json:"sealed"`
	// Warm reports whether the re-solve was seeded from the previous
	// stationary state; Iterations is its max per-class iteration
	// count and Converged its convergence flag.
	Warm       bool `json:"warm"`
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	// Duplicate reports that the batch's idempotency key matched an
	// already-committed batch: nothing was re-applied and the original
	// sealed version's summary is returned.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Apply validates and applies one delta batch without an idempotency
// key; see ApplyKeyed.
func (e *Engine) Apply(ctx context.Context, deltas []Delta) (*ApplyResult, error) {
	return e.ApplyKeyed(ctx, "", deltas)
}

// ApplyKeyed validates and applies one delta batch: merge the raw
// adjacency, renormalise only the touched O columns / R tubes (bitwise
// identical to a from-scratch rebuild of the mutated graph), assemble
// the new model sharing the previous W channel, seal the version in
// the registry, warm re-solve from the previous stationary (x̄, z̄),
// and only then publish. A failure before the final assignment leaves
// the engine on the previous version; a panic additionally quarantines
// the engine (ErrQuarantined), because a fault mid-ingest means the
// process can no longer prove its in-memory adjacency matches the
// sealed history — with a WAL attached, the next call re-proves it and
// heals.
//
// A non-empty key makes the batch idempotent: after the batch commits,
// a later ApplyKeyed carrying the same key returns the original sealed
// version's summary (Duplicate set) instead of re-applying — the
// contract that makes client retries safe. With a WAL attached the
// batch is logged durably before anything mutates, so an acknowledged
// batch survives a crash at any later point.
func (e *Engine) ApplyKeyed(ctx context.Context, key string, deltas []Delta) (*ApplyResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poisoned != nil {
		if err := e.recoverLocked(ctx); err != nil {
			return nil, err
		}
	}
	return e.applyLocked(ctx, key, deltas, true)
}

// applyLocked is the transaction body shared by live applies (logIt)
// and WAL replay (the record is already durable). Callers hold e.mu.
func (e *Engine) applyLocked(ctx context.Context, key string, deltas []Delta, logIt bool) (ar *ApplyResult, err error) {
	if key != "" {
		if prev, ok := e.dedup[key]; ok {
			dup := *prev
			dup.Duplicate = true
			e.met.duplicates.Inc()
			return &dup, nil
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			e.poisoned = fmt.Errorf("ingest panic at seq %d: %v", e.cur.Seq+1, rec)
			ar, err = nil, fmt.Errorf("%w: %v", ErrQuarantined, e.poisoned)
		}
	}()
	if fault.Enabled() {
		if err := fault.Check(fault.StreamApply); err != nil {
			return nil, err
		}
	}

	eff, err := compose(e.g, e.ao, deltas)
	if err != nil {
		return nil, err
	}
	if logIt && e.log != nil {
		// The write-ahead point: the batch has passed validation and is
		// logged durably before any derived state is built. An append
		// failure is a clean rejection — nothing has moved. A crash
		// anywhere after this line is recoverable by replay.
		if fault.Enabled() {
			if ferr := fault.Check(fault.WALAppend); ferr != nil {
				return nil, fmt.Errorf("stream: wal append: %w", ferr)
			}
		}
		rec := wal.Record{Seq: uint64(e.cur.Seq + 1), Key: key, Deltas: toWALDeltas(deltas)}
		if aerr := e.log.Append(rec); aerr != nil {
			return nil, fmt.Errorf("stream: wal append: %w", aerr)
		}
		e.met.appends.Inc()
		if fault.Enabled() {
			fault.Fire(fault.WALAppend, rec.Seq)
		}
	}
	newAO, err := tensor.MergeKJI(e.ao, eff.kji)
	if err != nil {
		return nil, err
	}
	newAR, err := tensor.MergeJIK(e.ar, eff.jik)
	if err != nil {
		return nil, err
	}

	prevSub := e.cur.Model.Substrate()
	oRaw := tensor.RenormalizeNode(newAO, prevSub.O.Raw(), func(j, k int32) bool {
		return eff.touchedCols[[2]int32{j, k}]
	})
	rRaw := tensor.RenormalizeRelation(newAR, prevSub.R.Raw(), func(i, j int32) bool {
		return eff.touchedTubes[[2]int32{i, j}]
	})
	o, err := tensor.NodeTransitionFromRaw(oRaw)
	if err != nil {
		return nil, fmt.Errorf("stream: incremental O failed validation: %w", err)
	}
	r, err := tensor.RelationTransitionFromRaw(rRaw)
	if err != nil {
		return nil, fmt.Errorf("stream: incremental R failed validation: %w", err)
	}
	sub := tmark.Substrate{
		O:           o,
		R:           r,
		WDense:      prevSub.WDense, // features never move with edges:
		WCSR:        prevSub.WCSR,   // the W channel is shared across versions
		Irreducible: newAO.Irreducible(),
	}
	model, err := tmark.Assemble(e.g, e.cfg, sub)
	if err != nil {
		return nil, err
	}
	if fault.Enabled() {
		fault.Fire(fault.StreamApply, e.cur.Seq+1, len(eff.kji))
	}

	data, err := artifact.EncodeModel(e.g, e.cfg, sub)
	if err != nil {
		return nil, err
	}
	hash := artifact.Hash(data)
	sealed := false
	if e.reg != nil {
		if _, err := e.reg.Put(data); err != nil {
			return nil, fmt.Errorf("stream: sealing version %d: %w", e.cur.Seq+1, err)
		}
		if fault.Enabled() {
			fault.Fire(fault.StreamSeal, hash)
		}
		if err := e.reg.Tag(e.name, hash); err != nil {
			return nil, fmt.Errorf("stream: tagging version %d: %w", e.cur.Seq+1, err)
		}
		sealed = true
	}

	prevRes := e.cur.res
	warm := prevRes != nil
	if warm && fault.Enabled() {
		if ferr := fault.Check(fault.StreamWarm); ferr != nil {
			warm = false
		} else {
			fault.Fire(fault.StreamWarm, e.cur.Seq+1)
		}
	}
	var res *tmark.Result
	if warm {
		// Deltas mutate edges only — labels cannot change — so the
		// previous equilibrium restart is still valid and the warm solve
		// may skip the ICA schedule replay.
		res = model.RunWarmContext(ctx, prevRes, tmark.WithEquilibriumRestart(true))
	} else {
		res = model.RunContext(ctx)
	}

	next := &Version{Seq: e.cur.Seq + 1, Hash: hash, Model: model, res: res}
	out := &ApplyResult{
		Name:           e.name,
		Seq:            next.Seq,
		OldHash:        e.cur.Hash,
		NewHash:        hash,
		Deltas:         len(deltas),
		Changes:        len(eff.kji),
		TouchedColumns: len(eff.touchedCols),
		TouchedTubes:   len(eff.touchedTubes),
		Sealed:         sealed,
		Warm:           warm,
		Iterations:     res.MaxIterations(),
		Converged:      res.Converged(),
	}
	// The transaction commits here: every fallible step is behind us.
	e.ao, e.ar, e.cur = newAO, newAR, next
	if key != "" {
		e.rememberLocked(key, out)
	}
	e.maybeCheckpointLocked(sealed)
	return out, nil
}

// rememberLocked records a committed batch's key in the bounded dedup
// window.
func (e *Engine) rememberLocked(key string, res *ApplyResult) {
	if _, ok := e.dedup[key]; ok {
		return
	}
	e.dedup[key] = res
	e.dedupQ = append(e.dedupQ, key)
	for len(e.dedupQ) > e.dedupCap {
		delete(e.dedup, e.dedupQ[0])
		e.dedupQ = e.dedupQ[1:]
	}
}

// maybeCheckpointLocked snapshots the raw adjacency into the log once
// enough batches have committed since the last snapshot, letting the
// log prune its covered segments. Only sealed versions checkpoint —
// pruning is safe exactly when the state at the snapshot point is
// durable beyond the log itself. A checkpoint failure is deliberately
// not an apply failure: the batch committed and its record is durable;
// the log just stays longer.
func (e *Engine) maybeCheckpointLocked(sealed bool) {
	if e.log == nil || !sealed {
		return
	}
	if uint64(e.cur.Seq) < e.log.SnapshotSeq()+uint64(e.walEvery) {
		return
	}
	_ = e.log.Checkpoint(wal.Snapshot{
		Seq: uint64(e.cur.Seq), Hash: e.cur.Hash,
		N: e.ao.N, M: e.ao.M, I: e.ao.I, J: e.ao.J, K: e.ao.K, V: e.ao.V,
	})
}
