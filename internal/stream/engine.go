package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/hin"
	"tmark/internal/tensor"
	"tmark/internal/tmark"
)

// ErrQuarantined marks an engine poisoned by a mid-ingest fault. The
// last published version keeps serving (it was never touched); further
// ingests are refused until the process restarts and replays from the
// source graph plus the registry's sealed history.
var ErrQuarantined = errors.New("stream: ingest engine quarantined")

// Version is one sealed model state: the substrate after some prefix of
// the applied batches, its content hash, and (once solved) the
// stationary result that seeds the next warm restart.
type Version struct {
	// Seq counts applied batches; 0 is the unmutated source graph.
	Seq int
	// Hash is the canonical content hash of the version's artifact
	// encoding — identical to what artifact.Compile of an equivalently
	// mutated graph would produce.
	Hash string
	// Model is the assembled servable model for this version.
	Model *tmark.Model

	res *tmark.Result
}

// Result returns the version's stationary solve, if one has run.
func (v *Version) Result() *tmark.Result { return v.res }

// Engine owns the mutable state of one live model: the raw adjacency in
// both kernel sort orders, the current Version, and the registry the
// versions seal into. All methods are safe for concurrent use; Apply
// calls serialise.
type Engine struct {
	mu   sync.Mutex
	name string
	g    *hin.Graph
	cfg  tmark.Config
	reg  *artifact.Registry

	ao, ar   tensor.COO // raw adjacency, (k,j,i) and (j,i,k) orders
	cur      *Version
	poisoned error
}

// NewEngine builds the live-model engine for a dataset-backed graph.
// The base version (Seq 0) is compiled and, when a registry is given,
// its blob written (but not tagged — the floating name only moves when
// a batch actually applies). The graph is aliased and must not be
// mutated by the caller afterwards; deltas are the only mutation path.
func NewEngine(name string, g *hin.Graph, cfg tmark.Config, reg *artifact.Registry) (*Engine, error) {
	m, err := tmark.New(g, cfg)
	if err != nil {
		return nil, err
	}
	data, err := artifact.EncodeModel(g, cfg, m.Substrate())
	if err != nil {
		return nil, err
	}
	hash := artifact.Hash(data)
	if reg != nil {
		if _, err := reg.Put(data); err != nil {
			return nil, fmt.Errorf("stream: sealing base version: %w", err)
		}
	}
	a := g.AdjacencyTensor()
	ao := a.COOView()
	return &Engine{
		name: name,
		g:    g,
		cfg:  cfg,
		reg:  reg,
		ao:   ao,
		ar:   ao.SortedJIK(),
		cur:  &Version{Seq: 0, Hash: hash, Model: m},
	}, nil
}

// Name returns the engine's model name.
func (e *Engine) Name() string { return e.name }

// Config returns the engine's hyper-parameter set.
func (e *Engine) Config() tmark.Config { return e.cfg }

// Current returns the engine's live version.
func (e *Engine) Current() *Version {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur
}

// Quarantined reports the poisoning fault, if any.
func (e *Engine) Quarantined() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.poisoned
}

// Solve runs (and caches) the current version's stationary solve. The
// first call after engine creation is cold; versions minted by Apply
// carry the warm re-solve Apply already ran.
func (e *Engine) Solve(ctx context.Context) (*tmark.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poisoned != nil {
		return nil, fmt.Errorf("%w: %v", ErrQuarantined, e.poisoned)
	}
	if e.cur.res == nil {
		e.cur.res = e.cur.Model.RunContext(ctx)
	}
	return e.cur.res, nil
}

// ApplyResult summarises one applied batch.
type ApplyResult struct {
	// Name is the engine's model name.
	Name string `json:"name"`
	// Seq is the new version's sequence number.
	Seq int `json:"seq"`
	// OldHash/NewHash are the content hashes before and after.
	OldHash string `json:"old_hash"`
	NewHash string `json:"new_hash"`
	// Deltas is the batch size; Changes the distinct adjacency
	// coordinates it resolved to.
	Deltas  int `json:"deltas"`
	Changes int `json:"changes"`
	// TouchedColumns/TouchedTubes count the O columns and R tubes that
	// were renormalised; everything else kept its previous bytes.
	TouchedColumns int `json:"touched_columns"`
	TouchedTubes   int `json:"touched_tubes"`
	// Sealed reports whether the version was written to a registry.
	Sealed bool `json:"sealed"`
	// Warm reports whether the re-solve was seeded from the previous
	// stationary state; Iterations is its max per-class iteration
	// count and Converged its convergence flag.
	Warm       bool `json:"warm"`
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
}

// Apply validates and applies one delta batch: merge the raw adjacency,
// renormalise only the touched O columns / R tubes (bitwise identical
// to a from-scratch rebuild of the mutated graph), assemble the new
// model sharing the previous W channel, seal the version in the
// registry, warm re-solve from the previous stationary (x̄, z̄), and
// only then publish. A failure before the final assignment leaves the
// engine on the previous version; a panic additionally quarantines the
// engine (ErrQuarantined), because a fault mid-ingest means the process
// can no longer prove its in-memory adjacency matches the sealed
// history.
func (e *Engine) Apply(ctx context.Context, deltas []Delta) (ar *ApplyResult, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.poisoned != nil {
		return nil, fmt.Errorf("%w: %v", ErrQuarantined, e.poisoned)
	}
	defer func() {
		if rec := recover(); rec != nil {
			e.poisoned = fmt.Errorf("ingest panic at seq %d: %v", e.cur.Seq+1, rec)
			ar, err = nil, fmt.Errorf("%w: %v", ErrQuarantined, e.poisoned)
		}
	}()
	if fault.Enabled() {
		if err := fault.Check(fault.StreamApply); err != nil {
			return nil, err
		}
	}

	eff, err := compose(e.g, e.ao, deltas)
	if err != nil {
		return nil, err
	}
	newAO, err := tensor.MergeKJI(e.ao, eff.kji)
	if err != nil {
		return nil, err
	}
	newAR, err := tensor.MergeJIK(e.ar, eff.jik)
	if err != nil {
		return nil, err
	}

	prevSub := e.cur.Model.Substrate()
	oRaw := tensor.RenormalizeNode(newAO, prevSub.O.Raw(), func(j, k int32) bool {
		return eff.touchedCols[[2]int32{j, k}]
	})
	rRaw := tensor.RenormalizeRelation(newAR, prevSub.R.Raw(), func(i, j int32) bool {
		return eff.touchedTubes[[2]int32{i, j}]
	})
	o, err := tensor.NodeTransitionFromRaw(oRaw)
	if err != nil {
		return nil, fmt.Errorf("stream: incremental O failed validation: %w", err)
	}
	r, err := tensor.RelationTransitionFromRaw(rRaw)
	if err != nil {
		return nil, fmt.Errorf("stream: incremental R failed validation: %w", err)
	}
	sub := tmark.Substrate{
		O:           o,
		R:           r,
		WDense:      prevSub.WDense, // features never move with edges:
		WCSR:        prevSub.WCSR,   // the W channel is shared across versions
		Irreducible: newAO.Irreducible(),
	}
	model, err := tmark.Assemble(e.g, e.cfg, sub)
	if err != nil {
		return nil, err
	}
	if fault.Enabled() {
		fault.Fire(fault.StreamApply, e.cur.Seq+1, len(eff.kji))
	}

	data, err := artifact.EncodeModel(e.g, e.cfg, sub)
	if err != nil {
		return nil, err
	}
	hash := artifact.Hash(data)
	sealed := false
	if e.reg != nil {
		if _, err := e.reg.Put(data); err != nil {
			return nil, fmt.Errorf("stream: sealing version %d: %w", e.cur.Seq+1, err)
		}
		if fault.Enabled() {
			fault.Fire(fault.StreamSeal, hash)
		}
		if err := e.reg.Tag(e.name, hash); err != nil {
			return nil, fmt.Errorf("stream: tagging version %d: %w", e.cur.Seq+1, err)
		}
		sealed = true
	}

	prevRes := e.cur.res
	warm := prevRes != nil
	if warm && fault.Enabled() {
		if ferr := fault.Check(fault.StreamWarm); ferr != nil {
			warm = false
		} else {
			fault.Fire(fault.StreamWarm, e.cur.Seq+1)
		}
	}
	var res *tmark.Result
	if warm {
		// Deltas mutate edges only — labels cannot change — so the
		// previous equilibrium restart is still valid and the warm solve
		// may skip the ICA schedule replay.
		res = model.RunWarmContext(ctx, prevRes, tmark.WithEquilibriumRestart(true))
	} else {
		res = model.RunContext(ctx)
	}

	next := &Version{Seq: e.cur.Seq + 1, Hash: hash, Model: model, res: res}
	out := &ApplyResult{
		Name:           e.name,
		Seq:            next.Seq,
		OldHash:        e.cur.Hash,
		NewHash:        hash,
		Deltas:         len(deltas),
		Changes:        len(eff.kji),
		TouchedColumns: len(eff.touchedCols),
		TouchedTubes:   len(eff.touchedTubes),
		Sealed:         sealed,
		Warm:           warm,
		Iterations:     res.MaxIterations(),
		Converged:      res.Converged(),
	}
	// The transaction commits here: every fallible step is behind us.
	e.ao, e.ar, e.cur = newAO, newAR, next
	return out, nil
}
