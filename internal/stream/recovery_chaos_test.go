package stream

// Chaos tests for the durable ingest path: with a write-ahead log
// attached, a fault injected at any point past the append — mid-apply,
// mid-seal, in the post-append hook itself — must be survivable. The
// crash-equivalence property under test: after an in-process recovery
// or a restart-replay over the same log directory, the engine's
// content hash and predictions are bitwise identical to an
// uninterrupted reference engine fed the same batches. Run with -race
// (the `make recovery-chaos` target does).

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tmark/internal/artifact"
	"tmark/internal/fault"
	"tmark/internal/obs"
	"tmark/internal/wal"
)

// walEngine builds a WAL-attached engine over its own registry and log
// directory, returning both directories for restart tests.
func walEngine(t *testing.T, extra ...EngineOption) (*Engine, *artifact.Registry, string) {
	t.Helper()
	reg, err := artifact.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatalf("OpenRegistry: %v", err)
	}
	walDir := t.TempDir()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	opts := append([]EngineOption{WithWAL(l)}, extra...)
	eng, err := NewEngine("durable", tinyGraph(), streamConfig(), reg, opts...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng, reg, walDir
}

// referenceState applies batches to a fresh fault-free engine and
// returns its final hash and predictions — the uninterrupted timeline a
// recovered engine must reproduce exactly.
func referenceState(t *testing.T, batches [][]Delta) (string, []int) {
	t.Helper()
	ref, err := NewEngine("reference", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("reference NewEngine: %v", err)
	}
	for q, b := range batches {
		if _, err := ref.Apply(context.Background(), b); err != nil {
			t.Fatalf("reference batch %d: %v", q, err)
		}
	}
	res, err := ref.Solve(context.Background())
	if err != nil {
		t.Fatalf("reference Solve: %v", err)
	}
	return ref.Current().Hash, res.Predict()
}

// assertMatchesReference proves crash equivalence: hash and predictions
// equal the uninterrupted timeline's.
func assertMatchesReference(t *testing.T, eng *Engine, batches [][]Delta) {
	t.Helper()
	wantHash, wantPred := referenceState(t, batches)
	if got := eng.Current().Hash; got != wantHash {
		t.Fatalf("recovered hash %s, uninterrupted reference %s", got, wantHash)
	}
	if eng.Current().Seq != len(batches) {
		t.Fatalf("recovered seq %d, want %d", eng.Current().Seq, len(batches))
	}
	res, err := eng.Solve(context.Background())
	if err != nil {
		t.Fatalf("recovered Solve: %v", err)
	}
	if !reflect.DeepEqual(res.Predict(), wantPred) {
		t.Fatalf("recovered predictions diverge from the uninterrupted reference")
	}
}

// TestRecoveryHealsApplyPanic: a panic mid-apply on a WAL-attached
// engine quarantines as before, but the batch's record is already
// durable — the next call recovers in process, replays the crashed
// batch and continues, landing on the uninterrupted timeline.
func TestRecoveryHealsApplyPanic(t *testing.T) {
	t.Cleanup(fault.Reset)
	mets := obs.NewRegistry()
	eng, _, _ := walEngine(t, WithMetrics(mets))
	ctx := context.Background()
	for b := 0; b < 2; b++ {
		if _, err := eng.Apply(ctx, chaosDelta(b)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}

	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: apply blew up") }))
	defer remove()
	if _, err := eng.Apply(ctx, chaosDelta(2)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply under panic: err = %v, want ErrQuarantined", err)
	}
	if eng.Quarantined() == nil {
		t.Fatal("engine not quarantined after the panic")
	}

	// The next batch heals first: the crashed batch replays from the log
	// (at-least-once), then this batch applies on top.
	res, err := eng.Apply(ctx, chaosDelta(3))
	if err != nil {
		t.Fatalf("Apply after quarantine did not self-heal: %v", err)
	}
	if eng.Quarantined() != nil {
		t.Fatalf("quarantine not lifted: %v", eng.Quarantined())
	}
	if res.Seq != 4 {
		t.Fatalf("post-heal seq %d, want 4 (crashed batch replayed)", res.Seq)
	}
	assertMatchesReference(t, eng, [][]Delta{
		chaosDelta(0), chaosDelta(1), chaosDelta(2), chaosDelta(3),
	})
	if mets.Counter("tmarkd_quarantine_recoveries_total").Load() != 1 {
		t.Fatal("recovery counter did not tick")
	}
	if mets.Counter("tmarkd_wal_replayed_total").Load() == 0 {
		t.Fatal("replay counter did not tick")
	}
	if mets.Counter("tmarkd_wal_appends_total").Load() != 4 {
		t.Fatalf("append counter = %d, want 4", mets.Counter("tmarkd_wal_appends_total").Load())
	}
}

// TestRecoveryHealsSealPanic: a crash between the blob write and the
// tag move recovers too — the rebuild proves against the last published
// version, and the crashed batch's replay re-seals and re-tags it.
func TestRecoveryHealsSealPanic(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, reg, _ := walEngine(t)
	ctx := context.Background()
	if _, err := eng.Apply(ctx, chaosDelta(0)); err != nil {
		t.Fatalf("first Apply: %v", err)
	}

	remove := fault.Inject(fault.StreamSeal, fault.Once(func(...any) { panic("chaos: crashed between put and tag") }))
	defer remove()
	if _, err := eng.Apply(ctx, chaosDelta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply under seal panic: err = %v, want ErrQuarantined", err)
	}

	if _, err := eng.Solve(ctx); err != nil {
		t.Fatalf("Solve did not self-heal: %v", err)
	}
	assertMatchesReference(t, eng, [][]Delta{chaosDelta(0), chaosDelta(1)})
	// The replayed seal finished the interrupted tag move.
	got, err := reg.Resolve(artifact.Ref{Name: "durable"})
	if err != nil {
		t.Fatalf("Resolve after heal: %v", err)
	}
	if got != eng.Current().Hash {
		t.Fatalf("floating name at %s, engine at %s", got, eng.Current().Hash)
	}
}

// TestRecoveryHealsAppendHookPanic: a crash immediately after the
// fsync'd append (the narrowest crash window) is the canonical WAL
// case — the record is durable, nothing else moved.
func TestRecoveryHealsAppendHookPanic(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, _, _ := walEngine(t)
	ctx := context.Background()

	remove := fault.Inject(fault.WALAppend, fault.Once(func(...any) { panic("chaos: crashed right after fsync") }))
	defer remove()
	if _, err := eng.Apply(ctx, chaosDelta(0)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply under append-hook panic: err = %v, want ErrQuarantined", err)
	}
	if _, err := eng.Solve(ctx); err != nil {
		t.Fatalf("Solve did not self-heal: %v", err)
	}
	assertMatchesReference(t, eng, [][]Delta{chaosDelta(0)})
}

// TestWALAppendErrorRejectsCleanly: an append that fails before the
// write is an ordinary rejection — nothing was logged, nothing moved,
// no quarantine.
func TestWALAppendErrorRejectsCleanly(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, _, _ := walEngine(t)
	ctx := context.Background()
	injected := errors.New("chaos: disk full")
	remove := fault.InjectErr(fault.WALAppend, func() error { return injected })

	before := eng.Current()
	size := eng.WALSize()
	if _, err := eng.Apply(ctx, chaosDelta(0)); !errors.Is(err, injected) {
		t.Fatalf("Apply under append fault: err = %v, want injected error", err)
	}
	if eng.Quarantined() != nil {
		t.Fatal("clean append rejection quarantined the engine")
	}
	if eng.Current() != before || eng.WALSize() != size {
		t.Fatal("rejected batch moved state or logged bytes")
	}
	remove()
	if _, err := eng.Apply(ctx, chaosDelta(0)); err != nil {
		t.Fatalf("Apply after fault cleared: %v", err)
	}
}

// TestRecoveryFaultKeepsQuarantineSticky: when the recovery path itself
// is failing, the quarantine must hold — serving the last good version
// — and heal once recovery succeeds.
func TestRecoveryFaultKeepsQuarantineSticky(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, _, _ := walEngine(t)
	ctx := context.Background()
	if _, err := eng.Apply(ctx, chaosDelta(0)); err != nil {
		t.Fatalf("first Apply: %v", err)
	}
	good := eng.Current()

	removePanic := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: poison") }))
	defer removePanic()
	blocked := fault.InjectErr(fault.StreamRecover, func() error { return errors.New("chaos: recovery storage offline") })

	if _, err := eng.Apply(ctx, chaosDelta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("poisoning Apply: err = %v, want ErrQuarantined", err)
	}
	if _, err := eng.Apply(ctx, chaosDelta(2)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Apply with recovery blocked: err = %v, want ErrQuarantined", err)
	}
	if eng.Current() != good {
		t.Fatal("blocked recovery moved the serving version")
	}
	blocked()
	if _, err := eng.Solve(ctx); err != nil {
		t.Fatalf("Solve after recovery unblocked: %v", err)
	}
	assertMatchesReference(t, eng, [][]Delta{chaosDelta(0), chaosDelta(1)})
}

// TestNoWALQuarantineStaysSticky: without a log, recovery must refuse —
// the pre-WAL contract (restart required) still holds, and the error
// says so.
func TestNoWALQuarantineStaysSticky(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, err := NewEngine("bare", tinyGraph(), streamConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: poison") }))
	defer remove()
	if _, err := eng.Apply(context.Background(), chaosDelta(0)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("poisoning Apply: err = %v", err)
	}
	if _, err := eng.Solve(context.Background()); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Solve healed without a log: err = %v", err)
	}
}

// TestRestartReplayMatchesReference is the kill -9 property: abandon a
// poisoned engine mid-stream, rebuild a fresh one over the same log
// directory, and land bitwise-identical to the uninterrupted timeline —
// including the batch whose apply crashed after its append.
func TestRestartReplayMatchesReference(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, reg, walDir := walEngine(t)
	ctx := context.Background()
	for b := 0; b < 3; b++ {
		if _, err := eng.Apply(ctx, chaosDelta(b)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: kill -9") }))
	if _, err := eng.Apply(ctx, chaosDelta(3)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("crashing Apply: err = %v", err)
	}
	remove()
	fault.Reset()

	// "Restart": a fresh engine over the same directory. The crashed
	// batch's record is durable, so replay includes it.
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	mets := obs.NewRegistry()
	re, err := NewEngine("durable", tinyGraph(), streamConfig(), reg, WithWAL(l), WithMetrics(mets))
	if err != nil {
		t.Fatalf("restart NewEngine: %v", err)
	}
	assertMatchesReference(t, re, [][]Delta{
		chaosDelta(0), chaosDelta(1), chaosDelta(2), chaosDelta(3),
	})
	if got := mets.Counter("tmarkd_wal_replayed_total").Load(); got != 4 {
		t.Fatalf("restart replayed %d records, want 4", got)
	}
}

// TestRestartReplayFromCheckpoint: an aggressive checkpoint cadence
// prunes the log mid-stream; a restart rewinds to the snapshot, proves
// it by content-hash equality, and replays only the live suffix.
func TestRestartReplayFromCheckpoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	eng, reg, walDir := walEngine(t, WithWALCheckpointEvery(1))
	ctx := context.Background()
	for b := 0; b < 3; b++ {
		if _, err := eng.Apply(ctx, chaosDelta(b)); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	remove := fault.Inject(fault.StreamSeal, fault.Once(func(...any) { panic("chaos: kill -9 mid-seal") }))
	if _, err := eng.Apply(ctx, chaosDelta(3)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("crashing Apply: err = %v", err)
	}
	remove()
	fault.Reset()

	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	if l.SnapshotSeq() != 3 {
		t.Fatalf("snapshot at seq %d, want 3", l.SnapshotSeq())
	}
	if recs := l.Records(); len(recs) != 1 || recs[0].Seq != 4 {
		t.Fatalf("live records after pruning: %+v", recs)
	}
	re, err := NewEngine("durable", tinyGraph(), streamConfig(), reg, WithWAL(l), WithWALCheckpointEvery(1))
	if err != nil {
		t.Fatalf("restart NewEngine: %v", err)
	}
	assertMatchesReference(t, re, [][]Delta{
		chaosDelta(0), chaosDelta(1), chaosDelta(2), chaosDelta(3),
	})
}

// TestApplyKeyedDeduplicates pins the idempotency contract through a
// quarantine recovery and across a restart: a key that committed is
// answered from the window, never re-applied.
func TestApplyKeyedDeduplicates(t *testing.T) {
	t.Cleanup(fault.Reset)
	mets := obs.NewRegistry()
	eng, reg, walDir := walEngine(t, WithMetrics(mets))
	ctx := context.Background()

	first, err := eng.ApplyKeyed(ctx, "job-1", chaosDelta(0))
	if err != nil {
		t.Fatalf("keyed Apply: %v", err)
	}
	dup, err := eng.ApplyKeyed(ctx, "job-1", chaosDelta(0))
	if err != nil {
		t.Fatalf("duplicate Apply: %v", err)
	}
	if !dup.Duplicate || dup.NewHash != first.NewHash || dup.Seq != first.Seq {
		t.Fatalf("duplicate answer: %+v, want the original %+v", dup, first)
	}
	if eng.Current().Seq != 1 {
		t.Fatalf("duplicate advanced the engine to seq %d", eng.Current().Seq)
	}
	if mets.Counter("tmarkd_ingest_duplicates_total").Load() != 1 {
		t.Fatal("duplicate counter did not tick")
	}

	// The window survives an in-process recovery.
	remove := fault.Inject(fault.StreamApply, fault.Once(func(...any) { panic("chaos: poison") }))
	defer remove()
	if _, err := eng.Apply(ctx, chaosDelta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("poisoning Apply: err = %v", err)
	}
	dup2, err := eng.ApplyKeyed(ctx, "job-1", chaosDelta(0))
	if err != nil {
		t.Fatalf("duplicate after recovery: %v", err)
	}
	if !dup2.Duplicate || dup2.NewHash != first.NewHash {
		t.Fatalf("recovery forgot the key: %+v", dup2)
	}

	// And a restart rebuilds it from the replayed records.
	fault.Reset()
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	re, err := NewEngine("durable", tinyGraph(), streamConfig(), reg, WithWAL(l))
	if err != nil {
		t.Fatalf("restart NewEngine: %v", err)
	}
	dup3, err := re.ApplyKeyed(ctx, "job-1", chaosDelta(0))
	if err != nil {
		t.Fatalf("duplicate after restart: %v", err)
	}
	if !dup3.Duplicate || dup3.NewHash != first.NewHash || dup3.Seq != first.Seq {
		t.Fatalf("restart forgot the key: %+v", dup3)
	}
}
