package hin

import (
	"strings"
	"testing"
)

// bibliography builds the Section 3.2 example network.
func bibliography() *Graph {
	g := New("DM", "CV")
	p1 := g.AddNode("p1", []float64{1, 0})
	p2 := g.AddNode("p2", []float64{0, 1})
	p3 := g.AddNode("p3", []float64{0, 1})
	p4 := g.AddNode("p4", []float64{1, 0})
	co := g.AddRelation("co-author", false)
	cite := g.AddRelation("citation", true)
	conf := g.AddRelation("same-conference", false)
	g.AddEdge(co, p1, p2)
	g.AddEdge(cite, p3, p2)
	g.AddEdge(cite, p3, p4)
	g.AddEdge(cite, p4, p1)
	g.AddEdge(conf, p2, p3)
	g.SetLabels(p1, 0)
	g.SetLabels(p2, 1)
	return g
}

func TestBuilderAndCounts(t *testing.T) {
	g := bibliography()
	if g.N() != 4 || g.M() != 3 || g.Q() != 2 {
		t.Fatalf("N/M/Q = %d/%d/%d, want 4/3/2", g.N(), g.M(), g.Q())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddClassDeduplicates(t *testing.T) {
	g := New("a")
	if got := g.AddClass("a"); got != 0 {
		t.Errorf("AddClass existing = %d, want 0", got)
	}
	if got := g.AddClass("b"); got != 1 {
		t.Errorf("AddClass new = %d, want 1", got)
	}
}

func TestLabels(t *testing.T) {
	g := bibliography()
	if !g.Labeled(0) || g.Labeled(2) {
		t.Errorf("Labeled wrong: p1 labelled, p3 not")
	}
	if !g.HasLabel(1, 1) || g.HasLabel(1, 0) {
		t.Errorf("HasLabel wrong for p2")
	}
	if g.PrimaryLabel(0) != 0 || g.PrimaryLabel(2) != -1 {
		t.Errorf("PrimaryLabel wrong")
	}
	g.SetLabels(2, 1, 0) // multi-label, stored sorted
	if got := g.Nodes[2].Labels; got[0] != 0 || got[1] != 1 {
		t.Errorf("SetLabels should sort, got %v", got)
	}
}

func TestAdjacencyTensorConvention(t *testing.T) {
	g := bibliography()
	a := g.AdjacencyTensor()
	// Directed citation p3 cites p2: edge from=2 to=1 → a[1,2,cite]=1 only.
	if a.At(1, 2, 1) != 1 {
		t.Errorf("a[1,2,cite] = %v, want 1", a.At(1, 2, 1))
	}
	if a.At(2, 1, 1) != 0 {
		t.Errorf("directed edge must not be mirrored: a[2,1,cite] = %v", a.At(2, 1, 1))
	}
	// Undirected co-author p1–p2 appears in both orientations.
	if a.At(0, 1, 0) != 1 || a.At(1, 0, 0) != 1 {
		t.Errorf("undirected edge must appear twice")
	}
	if a.NNZ() != 7 {
		t.Errorf("NNZ = %d, want 7 (2 coauthor + 3 citation + 2 conference)", a.NNZ())
	}
	if !a.Irreducible() {
		t.Errorf("example network should be irreducible")
	}
}

func TestUndirectedSelfLoopNotDoubled(t *testing.T) {
	g := New()
	n0 := g.AddNode("n0", nil)
	r := g.AddRelation("self", false)
	g.AddEdge(r, n0, n0)
	a := g.AdjacencyTensor()
	if a.At(0, 0, 0) != 1 {
		t.Errorf("self-loop weight = %v, want 1 (not doubled)", a.At(0, 0, 0))
	}
}

func TestNeighborLists(t *testing.T) {
	g := bibliography()
	lists := g.NeighborLists()
	// Citation (k=1) is directed: p3 (index 2) has out-neighbours p2, p4.
	got := lists[1][2]
	if len(got) != 2 {
		t.Fatalf("p3 citation neighbours = %v, want 2", got)
	}
	// Co-author (k=0) is undirected: p2 sees p1.
	if len(lists[0][1]) != 1 || lists[0][1][0] != 0 {
		t.Errorf("p2 co-author neighbours = %v, want [0]", lists[0][1])
	}
	// p1 has no citation out-links (it cites nobody).
	if len(lists[1][0]) != 0 {
		t.Errorf("p1 citation out-neighbours = %v, want none", lists[1][0])
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	empty := New()
	if err := empty.Validate(); err == nil {
		t.Errorf("empty graph should fail validation")
	}

	ragged := New("c")
	ragged.AddNode("a", []float64{1, 2})
	ragged.AddNode("b", []float64{1})
	if err := ragged.Validate(); err == nil || !strings.Contains(err.Error(), "feature dim") {
		t.Errorf("ragged features should fail, got %v", err)
	}

	dupRel := New("c")
	dupRel.AddNode("a", nil)
	dupRel.AddRelation("r", false)
	dupRel.AddRelation("r", false)
	if err := dupRel.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate relation") {
		t.Errorf("duplicate relation should fail, got %v", err)
	}

	dupClass := &Graph{Classes: []string{"x", "x"}, Nodes: []Node{{}}}
	if err := dupClass.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Errorf("duplicate class should fail, got %v", err)
	}

	badLabel := &Graph{Classes: []string{"x"}, Nodes: []Node{{Labels: []int{2}}}}
	if err := badLabel.Validate(); err == nil || !strings.Contains(err.Error(), "label") {
		t.Errorf("out-of-range label should fail, got %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	g := New("c")
	g.AddNode("a", nil)
	g.AddRelation("r", false)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("bad relation", func() { g.AddEdge(5, 0, 0) })
	mustPanic("bad node", func() { g.AddEdge(0, 0, 9) })
	mustPanic("bad weight", func() { g.AddWeightedEdge(0, 0, 0, 0) })
	mustPanic("bad class", func() { g.SetLabels(0, 7) })
}

func TestStats(t *testing.T) {
	g := bibliography()
	s := g.Stats()
	if s.Nodes != 4 || s.Relations != 3 || s.Classes != 2 {
		t.Errorf("Stats counts wrong: %+v", s)
	}
	if s.Edges != 5 || s.LabeledNodes != 2 || s.FeatureDim != 2 {
		t.Errorf("Stats detail wrong: %+v", s)
	}
	if s.EdgesPerRelation[1] != 3 {
		t.Errorf("citation edges = %d, want 3", s.EdgesPerRelation[1])
	}
	if !strings.Contains(s.String(), "nodes=4") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestFeatureMatrixAliases(t *testing.T) {
	g := bibliography()
	f := g.FeatureMatrix()
	f[0][0] = 42
	if g.Nodes[0].Features[0] != 42 {
		t.Errorf("FeatureMatrix should alias node storage")
	}
}
