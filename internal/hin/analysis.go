package hin

import (
	"fmt"
	"sort"
)

// Degrees returns, per node, the total degree (in+out across every
// relation; undirected edges count once per endpoint).
func (g *Graph) Degrees() []int {
	deg := make([]int, g.N())
	for k := range g.Relations {
		for _, e := range g.Relations[k].Edges {
			deg[e.From]++
			deg[e.To]++
		}
	}
	return deg
}

// RelationHomophily returns, per relation, the fraction of its edges that
// connect nodes sharing at least one label. Relations without edges, or
// whose endpoints lack labels, report NaN-free 0 with ok=false in the
// second slice.
func (g *Graph) RelationHomophily() (fractions []float64, defined []bool) {
	fractions = make([]float64, g.M())
	defined = make([]bool, g.M())
	for k := range g.Relations {
		var same, total float64
		for _, e := range g.Relations[k].Edges {
			if !g.Labeled(e.From) || !g.Labeled(e.To) {
				continue
			}
			total++
			if shareAnyLabel(g, e.From, e.To) {
				same++
			}
		}
		if total > 0 {
			fractions[k] = same / total
			defined[k] = true
		}
	}
	return fractions, defined
}

func shareAnyLabel(g *Graph, a, b int) bool {
	for _, c := range g.Nodes[a].Labels {
		if g.HasLabel(b, c) {
			return true
		}
	}
	return false
}

// Components returns the weakly connected components over the union of
// all relations, as sorted node-index slices, largest first.
func (g *Graph) Components() [][]int {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for k := range g.Relations {
		for _, e := range g.Relations[k].Edges {
			union(e.From, e.To)
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// Subgraph extracts the induced subgraph on the given nodes (indices into
// g), keeping features, labels, classes and every edge whose endpoints
// both survive. The second return maps old node indices to new ones.
func (g *Graph) Subgraph(nodes []int) (*Graph, map[int]int) {
	remap := make(map[int]int, len(nodes))
	sub := New(g.Classes...)
	for _, old := range nodes {
		if old < 0 || old >= g.N() {
			panic(fmt.Sprintf("hin: Subgraph node %d out of range %d", old, g.N()))
		}
		if _, dup := remap[old]; dup {
			continue
		}
		node := g.Nodes[old]
		id := sub.AddNode(node.Name, node.Features)
		if len(node.Labels) > 0 {
			sub.SetLabels(id, node.Labels...)
		}
		remap[old] = id
	}
	for k := range g.Relations {
		r := g.Relations[k]
		nk := sub.AddRelation(r.Name, r.Directed)
		for _, e := range r.Edges {
			from, okF := remap[e.From]
			to, okT := remap[e.To]
			if okF && okT {
				sub.AddWeightedEdge(nk, from, to, e.Weight)
			}
		}
	}
	return sub, remap
}

// LargestComponent returns the induced subgraph of the largest weakly
// connected component; T-Mark's irreducibility assumption often calls for
// restricting analysis to it.
func (g *Graph) LargestComponent() (*Graph, map[int]int) {
	comps := g.Components()
	if len(comps) == 0 {
		return New(g.Classes...), map[int]int{}
	}
	return g.Subgraph(comps[0])
}
