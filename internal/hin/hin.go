// Package hin models heterogeneous information networks: nodes carrying
// description features and (multi-)labels, connected by multiple typed
// relations. It is the input format shared by the T-Mark core and every
// baseline in this repository, and it knows how to extract the adjacency
// tensor A of the paper (entry a[i,j,k] > 0 means node j links to node i
// through relation k).
package hin

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tmark/internal/tensor"
)

// ValidWeight reports whether w can serve as an edge weight: positive
// and finite. NaN fails every comparison, so the naive `w <= 0` check
// alone would wave NaN (and +Inf) through into the stochastic
// normalisation, where a single bad entry poisons every score it
// touches. Every ingest path (builder, CSV, COO, JSON) funnels
// through this one predicate so they cannot drift apart.
func ValidWeight(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return fmt.Errorf("weight %v must be positive and finite", w)
	}
	return nil
}

// Edge is one typed link from node From to node To. Weight defaults to 1
// when built through AddEdge; the tensor representation keeps weights so
// multigraph-style repeated links accumulate.
type Edge struct {
	From, To int
	Weight   float64
}

// Relation is one link type: a named edge set, directed or not. Undirected
// relations are stored once per pair and expanded to both tensor directions.
type Relation struct {
	Name     string
	Directed bool
	Edges    []Edge
}

// Node is one classified object in the network.
type Node struct {
	Name     string
	Features []float64
	Labels   []int // class indices; empty means unlabelled
}

// Graph is a heterogeneous information network. Build one with New and the
// Add* methods; it is not safe for concurrent mutation.
type Graph struct {
	Nodes     []Node
	Relations []Relation
	Classes   []string
}

// New returns an empty graph with the given class names (may be nil and
// extended later with AddClass).
func New(classes ...string) *Graph {
	return &Graph{Classes: append([]string(nil), classes...)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Nodes) }

// M returns the number of relations (link types).
func (g *Graph) M() int { return len(g.Relations) }

// Q returns the number of classes.
func (g *Graph) Q() int { return len(g.Classes) }

// AddClass registers a class name and returns its index. Registering an
// existing name returns the existing index.
func (g *Graph) AddClass(name string) int {
	for c, existing := range g.Classes {
		if existing == name {
			return c
		}
	}
	g.Classes = append(g.Classes, name)
	return len(g.Classes) - 1
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode(name string, features []float64) int {
	g.Nodes = append(g.Nodes, Node{Name: name, Features: features})
	return len(g.Nodes) - 1
}

// AddRelation registers a link type and returns its index.
func (g *Graph) AddRelation(name string, directed bool) int {
	g.Relations = append(g.Relations, Relation{Name: name, Directed: directed})
	return len(g.Relations) - 1
}

// AddEdge adds a unit-weight link of the given relation from node from to
// node to.
func (g *Graph) AddEdge(relation, from, to int) {
	g.AddWeightedEdge(relation, from, to, 1)
}

// AddWeightedEdge adds a weighted link. Indices are validated eagerly so
// dataset-construction bugs surface at the call site.
func (g *Graph) AddWeightedEdge(relation, from, to int, weight float64) {
	if relation < 0 || relation >= len(g.Relations) {
		panic(fmt.Sprintf("hin: relation %d out of range %d", relation, len(g.Relations)))
	}
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		panic(fmt.Sprintf("hin: edge (%d,%d) out of range %d", from, to, len(g.Nodes)))
	}
	if err := ValidWeight(weight); err != nil {
		panic(fmt.Sprintf("hin: edge (%d,%d): %v", from, to, err))
	}
	r := &g.Relations[relation]
	r.Edges = append(r.Edges, Edge{From: from, To: to, Weight: weight})
}

// SetLabels replaces the label set of a node with the given class indices.
func (g *Graph) SetLabels(node int, classes ...int) {
	for _, c := range classes {
		if c < 0 || c >= len(g.Classes) {
			panic(fmt.Sprintf("hin: class %d out of range %d", c, len(g.Classes)))
		}
	}
	sorted := append([]int(nil), classes...)
	sort.Ints(sorted)
	g.Nodes[node].Labels = sorted
}

// Labeled reports whether node i carries at least one label.
func (g *Graph) Labeled(i int) bool { return len(g.Nodes[i].Labels) > 0 }

// HasLabel reports whether node i carries class c.
func (g *Graph) HasLabel(i, c int) bool {
	for _, l := range g.Nodes[i].Labels {
		if l == c {
			return true
		}
	}
	return false
}

// PrimaryLabel returns the first (lowest-index) label of node i, or -1 when
// unlabelled. Single-label datasets use this as the ground truth class.
func (g *Graph) PrimaryLabel(i int) int {
	if len(g.Nodes[i].Labels) == 0 {
		return -1
	}
	return g.Nodes[i].Labels[0]
}

// AdjacencyTensor builds the finalized n×n×m tensor A: for each directed
// edge u→v of relation k it sets a[v,u,k] += w (the paper's convention that
// column j of a slice holds the out-links of node j), and for undirected
// relations it adds both orientations.
func (g *Graph) AdjacencyTensor() *tensor.Tensor {
	a := tensor.New(g.N(), g.M())
	for k := range g.Relations {
		r := &g.Relations[k]
		for _, e := range r.Edges {
			a.Add(e.To, e.From, k, e.Weight)
			if !r.Directed && e.From != e.To {
				a.Add(e.From, e.To, k, e.Weight)
			}
		}
	}
	a.Finalize()
	return a
}

// FeatureMatrix returns one feature row per node. Rows alias node storage.
func (g *Graph) FeatureMatrix() [][]float64 {
	f := make([][]float64, g.N())
	for i := range g.Nodes {
		f[i] = g.Nodes[i].Features
	}
	return f
}

// NeighborLists returns, per relation, the out-neighbour list of every node
// (undirected relations appear in both directions). Baselines that walk the
// graph directly (ICA, wvRN, Hcc) use this instead of the tensor.
func (g *Graph) NeighborLists() [][][]int {
	out := make([][][]int, g.M())
	for k := range g.Relations {
		lists := make([][]int, g.N())
		for _, e := range g.Relations[k].Edges {
			lists[e.From] = append(lists[e.From], e.To)
			if !g.Relations[k].Directed && e.From != e.To {
				lists[e.To] = append(lists[e.To], e.From)
			}
		}
		out[k] = lists
	}
	return out
}

// Validate checks internal consistency: feature dimensions agree, labels
// and edges are in range, and class/relation names are unique. Returns nil
// on a well-formed graph.
func (g *Graph) Validate() error {
	if g.N() == 0 {
		return errors.New("hin: graph has no nodes")
	}
	dim := -1
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Features != nil {
			if dim == -1 {
				dim = len(n.Features)
			} else if len(n.Features) != dim {
				return fmt.Errorf("hin: node %d feature dim %d, want %d", i, len(n.Features), dim)
			}
		}
		for _, c := range n.Labels {
			if c < 0 || c >= g.Q() {
				return fmt.Errorf("hin: node %d label %d out of range %d", i, c, g.Q())
			}
		}
	}
	seenClass := map[string]bool{}
	for _, c := range g.Classes {
		if seenClass[c] {
			return fmt.Errorf("hin: duplicate class %q", c)
		}
		seenClass[c] = true
	}
	seenRel := map[string]bool{}
	for k := range g.Relations {
		r := &g.Relations[k]
		if seenRel[r.Name] {
			return fmt.Errorf("hin: duplicate relation %q", r.Name)
		}
		seenRel[r.Name] = true
		for _, e := range r.Edges {
			if e.From < 0 || e.From >= g.N() || e.To < 0 || e.To >= g.N() {
				return fmt.Errorf("hin: relation %q edge (%d,%d) out of range %d", r.Name, e.From, e.To, g.N())
			}
			if e.Weight <= 0 {
				return fmt.Errorf("hin: relation %q edge (%d,%d) weight %v", r.Name, e.From, e.To, e.Weight)
			}
		}
	}
	return nil
}

// Stats summarises a graph for logging and docs.
type Stats struct {
	Nodes, Relations, Classes int
	Edges                     int
	EdgesPerRelation          []int
	LabeledNodes              int
	FeatureDim                int
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.N(), Relations: g.M(), Classes: g.Q()}
	s.EdgesPerRelation = make([]int, g.M())
	for k := range g.Relations {
		s.EdgesPerRelation[k] = len(g.Relations[k].Edges)
		s.Edges += len(g.Relations[k].Edges)
	}
	for i := range g.Nodes {
		if g.Labeled(i) {
			s.LabeledNodes++
		}
		if s.FeatureDim == 0 {
			s.FeatureDim = len(g.Nodes[i].Features)
		}
	}
	return s
}

// String renders Stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d relations=%d classes=%d edges=%d labeled=%d featdim=%d",
		s.Nodes, s.Relations, s.Classes, s.Edges, s.LabeledNodes, s.FeatureDim)
}
