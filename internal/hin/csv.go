package hin

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeCSV builds a graph from a CSV edge list with the header
//
//	from,to,relation[,weight]
//
// Node and relation names are arbitrary strings; nodes and relations are
// created on first sight. A relation name ending in "!" is directed (the
// marker is stripped). The loader complements the JSON codec for ingesting
// existing tabular datasets; labels and features must be attached
// afterwards (see SetLabels / Node.Features).
func ReadEdgeCSV(r io.Reader) (*Graph, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow 3 or 4 columns
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("hin: csv header: %w", err)
	}
	if len(header) < 3 || !strings.EqualFold(header[0], "from") ||
		!strings.EqualFold(header[1], "to") || !strings.EqualFold(header[2], "relation") {
		return nil, fmt.Errorf("hin: csv header %v, want from,to,relation[,weight]", header)
	}

	g := New()
	nodeID := map[string]int{}
	relID := map[string]int{}
	node := func(name string) int {
		if id, ok := nodeID[name]; ok {
			return id
		}
		id := g.AddNode(name, nil)
		nodeID[name] = id
		return id
	}
	relation := func(name string) int {
		directed := strings.HasSuffix(name, "!")
		clean := strings.TrimSuffix(name, "!")
		if id, ok := relID[clean]; ok {
			return id
		}
		id := g.AddRelation(clean, directed)
		relID[clean] = id
		return id
	}

	line := 1
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hin: csv line %d: %w", line, err)
		}
		line++
		if len(record) < 3 {
			return nil, fmt.Errorf("hin: csv line %d: %d fields, want >= 3", line, len(record))
		}
		weight := 1.0
		if len(record) >= 4 && record[3] != "" {
			weight, err = strconv.ParseFloat(record[3], 64)
			if err != nil {
				return nil, fmt.Errorf("hin: csv line %d: weight %q: %w", line, record[3], err)
			}
		}
		if err := ValidWeight(weight); err != nil {
			return nil, fmt.Errorf("hin: csv line %d: %v", line, err)
		}
		g.AddWeightedEdge(relation(record[2]), node(record[0]), node(record[1]), weight)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("hin: csv contained no edges")
	}
	return g, nil
}

// WriteEdgeCSV emits the graph's edges in the ReadEdgeCSV format. Node
// names must be unique and nonempty; directed relations get the "!"
// marker.
func (g *Graph) WriteEdgeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"from", "to", "relation", "weight"}); err != nil {
		return err
	}
	for k := range g.Relations {
		r := &g.Relations[k]
		name := r.Name
		if r.Directed {
			name += "!"
		}
		for _, e := range r.Edges {
			record := []string{
				g.Nodes[e.From].Name,
				g.Nodes[e.To].Name,
				name,
				strconv.FormatFloat(e.Weight, 'g', -1, 64),
			}
			if record[0] == "" || record[1] == "" {
				return fmt.Errorf("hin: WriteEdgeCSV requires node names (edge %d of %q)", e.From, r.Name)
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
