package hin

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadJSON must never panic and must only return graphs that validate.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := bibliography().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"version":1,"classes":["a"],"nodes":[{}],"relations":[]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"classes":["a"],"nodes":[{"labels":[99]}],"relations":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			// The builder panics on structurally impossible edges; decode
			// wraps user input, so a panic that escapes ReadJSON would be a
			// bug, but a recovered one inside malformed-edge handling is
			// tolerated only if it doesn't reach us.
			if r := recover(); r != nil {
				t.Fatalf("ReadJSON panicked: %v (input %q)", r, data)
			}
		}()
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("ReadJSON returned invalid graph: %v", vErr)
		}
	})
}

// FuzzReadEdgeCSV must never panic and must return connected, validating
// graphs on success.
func FuzzReadEdgeCSV(f *testing.F) {
	f.Add("from,to,relation,weight\na,b,r,1\nb,c,r!,2")
	f.Add("from,to,relation\nx,y,z")
	f.Add("bad,header,here\n1,2,3")
	f.Add("from,to,relation,weight\na,b,r,nope")
	f.Add("from,to,relation,weight\na,b,r,NaN")
	f.Add("from,to,relation,weight\na,b,r,+Inf")
	f.Add("from,to,relation,weight\na,b,r,-Inf")
	f.Add("from,to,relation,weight\na,b,r,1e999")
	f.Add("from,to,relation,weight\na,b,r,-0")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadEdgeCSV panicked: %v (input %q)", r, data)
			}
		}()
		g, err := ReadEdgeCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if g.N() == 0 {
			t.Fatalf("successful parse with zero nodes")
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("ReadEdgeCSV returned invalid graph: %v", vErr)
		}
		// Every edge weight of an accepted graph must be positive and
		// finite — NaN/Inf must have been rejected at parse time.
		for k := range g.Relations {
			for _, e := range g.Relations[k].Edges {
				if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
					t.Fatalf("accepted graph carries weight %v on relation %q", e.Weight, g.Relations[k].Name)
				}
			}
		}
	})
}
