package hin

import (
	"bytes"
	"strings"
	"testing"
)

func TestDegrees(t *testing.T) {
	g := bibliography()
	deg := g.Degrees()
	// p1: co-author with p2 + cited by p4 = 2.
	if deg[0] != 2 {
		t.Errorf("deg(p1) = %d, want 2", deg[0])
	}
	// p3: cites p2, cites p4, same-conf with p2 = 3.
	if deg[2] != 3 {
		t.Errorf("deg(p3) = %d, want 3", deg[2])
	}
	var total int
	for _, d := range deg {
		total += d
	}
	if total != 10 { // 5 edges × 2 endpoints
		t.Errorf("degree sum = %d, want 10", total)
	}
}

func TestRelationHomophily(t *testing.T) {
	g := New("a", "b")
	n0 := g.AddNode("", nil)
	n1 := g.AddNode("", nil)
	n2 := g.AddNode("", nil)
	n3 := g.AddNode("", nil) // unlabelled
	g.SetLabels(n0, 0)
	g.SetLabels(n1, 0)
	g.SetLabels(n2, 1)
	same := g.AddRelation("same", false)
	mixed := g.AddRelation("mixed", false)
	empty := g.AddRelation("empty", false)
	g.AddEdge(same, n0, n1)
	g.AddEdge(mixed, n0, n2)
	g.AddEdge(mixed, n0, n1)
	g.AddEdge(mixed, n0, n3) // skipped: endpoint unlabelled
	fr, ok := g.RelationHomophily()
	if !ok[same] || fr[same] != 1 {
		t.Errorf("same relation homophily = %v (defined %v), want 1", fr[same], ok[same])
	}
	if !ok[mixed] || fr[mixed] != 0.5 {
		t.Errorf("mixed relation homophily = %v, want 0.5", fr[mixed])
	}
	if ok[empty] {
		t.Errorf("empty relation should be undefined")
	}
}

func TestComponents(t *testing.T) {
	g := New("c")
	for i := 0; i < 5; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("r", false)
	g.AddEdge(r, 0, 1)
	g.AddEdge(r, 1, 2)
	g.AddEdge(r, 3, 4)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("largest component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 3 {
		t.Errorf("second component = %v, want [3 4]", comps[1])
	}
}

func TestSubgraph(t *testing.T) {
	g := bibliography()
	sub, remap := g.Subgraph([]int{0, 1, 3})
	if sub.N() != 3 {
		t.Fatalf("subgraph N = %d, want 3", sub.N())
	}
	if sub.Q() != g.Q() || sub.M() != g.M() {
		t.Errorf("subgraph must keep classes and relations")
	}
	// co-author p1–p2 survives; citation p4→p1 survives; edges touching p3
	// are dropped.
	edges := 0
	for k := range sub.Relations {
		edges += len(sub.Relations[k].Edges)
	}
	if edges != 2 {
		t.Errorf("surviving edges = %d, want 2", edges)
	}
	if sub.PrimaryLabel(remap[0]) != 0 || sub.PrimaryLabel(remap[1]) != 1 {
		t.Errorf("labels lost in subgraph")
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subgraph invalid: %v", err)
	}
}

func TestSubgraphDeduplicatesAndPanics(t *testing.T) {
	g := bibliography()
	sub, _ := g.Subgraph([]int{0, 0, 1})
	if sub.N() != 2 {
		t.Errorf("duplicate input nodes must collapse, N = %d", sub.N())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range node should panic")
		}
	}()
	g.Subgraph([]int{99})
}

func TestLargestComponent(t *testing.T) {
	g := New("c")
	for i := 0; i < 4; i++ {
		g.AddNode("", nil)
	}
	r := g.AddRelation("r", false)
	g.AddEdge(r, 0, 1)
	g.AddEdge(r, 1, 2)
	lc, remap := g.LargestComponent()
	if lc.N() != 3 {
		t.Errorf("largest component N = %d, want 3", lc.N())
	}
	if _, isolated := remap[3]; isolated {
		t.Errorf("isolated node must not survive")
	}
	empty, _ := New("c").LargestComponent()
	if empty.N() != 0 {
		t.Errorf("empty graph largest component should be empty")
	}
}

func TestEdgeCSVRoundTrip(t *testing.T) {
	g := bibliography()
	var buf bytes.Buffer
	if err := g.WriteEdgeCSV(&buf); err != nil {
		t.Fatalf("WriteEdgeCSV: %v", err)
	}
	back, err := ReadEdgeCSV(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeCSV: %v", err)
	}
	if back.M() != g.M() {
		t.Errorf("relations = %d, want %d", back.M(), g.M())
	}
	// Directedness survives via the "!" marker.
	for k := range back.Relations {
		if back.Relations[k].Name == "citation" && !back.Relations[k].Directed {
			t.Errorf("citation lost directedness")
		}
		if back.Relations[k].Name == "co-author" && back.Relations[k].Directed {
			t.Errorf("co-author gained directedness")
		}
	}
	edges := 0
	for k := range back.Relations {
		edges += len(back.Relations[k].Edges)
	}
	if edges != 5 {
		t.Errorf("edges = %d, want 5", edges)
	}
}

func TestReadEdgeCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":      "a,b,c\nx,y,r",
		"bad weight":      "from,to,relation,weight\nx,y,r,notanumber",
		"negative weight": "from,to,relation,weight\nx,y,r,-1",
		"no edges":        "from,to,relation",
	}
	for name, input := range cases {
		if _, err := ReadEdgeCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadEdgeCSVDefaultsWeight(t *testing.T) {
	g, err := ReadEdgeCSV(strings.NewReader("from,to,relation\nx,y,r\ny,z,r"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 1 {
		t.Fatalf("shape %d/%d, want 3/1", g.N(), g.M())
	}
	if g.Relations[0].Edges[0].Weight != 1 {
		t.Errorf("default weight = %v, want 1", g.Relations[0].Edges[0].Weight)
	}
}

func TestWriteEdgeCSVRequiresNames(t *testing.T) {
	g := New("c")
	g.AddNode("", nil)
	g.AddNode("", nil)
	r := g.AddRelation("r", false)
	g.AddEdge(r, 0, 1)
	if err := g.WriteEdgeCSV(&bytes.Buffer{}); err == nil {
		t.Errorf("unnamed nodes should fail CSV export")
	}
}
