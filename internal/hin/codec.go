package hin

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// jsonGraph is the on-disk JSON shape. It mirrors Graph but keeps the
// format explicit and versioned so future layout changes stay decodable.
type jsonGraph struct {
	Version   int            `json:"version"`
	Classes   []string       `json:"classes"`
	Nodes     []jsonNode     `json:"nodes"`
	Relations []jsonRelation `json:"relations"`
}

type jsonNode struct {
	Name     string    `json:"name,omitempty"`
	Features []float64 `json:"features,omitempty"`
	Labels   []int     `json:"labels,omitempty"`
}

type jsonRelation struct {
	Name     string     `json:"name"`
	Directed bool       `json:"directed,omitempty"`
	Edges    [][3]int64 `json:"edges"` // from, to, weight*1e6 (fixed point)
}

const (
	codecVersion     = 1
	weightFixedPoint = 1e6
)

// fixedPointWeight converts an edge weight into the codec's 1e-6
// fixed-point form, rejecting anything the conversion would corrupt.
// float64→int64 of an out-of-range value is implementation-defined in
// Go, so an Inf or huge weight would silently encode as garbage (and a
// tiny one as 0) that ReadJSON then rejects — or worse, accepts as a
// different weight. Failing at encode time names the bad edge while
// the caller can still do something about it.
func fixedPointWeight(w float64) (int64, error) {
	if err := ValidWeight(w); err != nil {
		return 0, err
	}
	fp := w * weightFixedPoint
	if fp >= math.MaxInt64 {
		return 0, fmt.Errorf("weight %v overflows the 1e-6 fixed-point encoding", w)
	}
	n := int64(fp)
	if n <= 0 {
		return 0, fmt.Errorf("weight %v rounds to zero in the 1e-6 fixed-point encoding", w)
	}
	return n, nil
}

// WriteJSON serialises the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Version: codecVersion, Classes: g.Classes}
	for i := range g.Nodes {
		n := &g.Nodes[i]
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Features: n.Features, Labels: n.Labels})
	}
	for k := range g.Relations {
		r := &g.Relations[k]
		jr := jsonRelation{Name: r.Name, Directed: r.Directed}
		for _, e := range r.Edges {
			fp, err := fixedPointWeight(e.Weight)
			if err != nil {
				return fmt.Errorf("hin: encode: relation %q edge (%d,%d): %w", r.Name, e.From, e.To, err)
			}
			jr.Edges = append(jr.Edges, [3]int64{int64(e.From), int64(e.To), fp})
		}
		jg.Relations = append(jg.Relations, jr)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// ReadJSON deserialises a graph written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("hin: decode: %w", err)
	}
	if jg.Version != codecVersion {
		return nil, fmt.Errorf("hin: unsupported codec version %d", jg.Version)
	}
	// The builder methods panic on malformed indices (programming errors);
	// decoded input is untrusted, so range-check everything first and
	// return errors instead.
	g := New(jg.Classes...)
	for i, n := range jg.Nodes {
		id := g.AddNode(n.Name, n.Features)
		for _, c := range n.Labels {
			if c < 0 || c >= g.Q() {
				return nil, fmt.Errorf("hin: decode: node %d label %d out of range %d", i, c, g.Q())
			}
		}
		if len(n.Labels) > 0 {
			g.SetLabels(id, n.Labels...)
		}
	}
	for _, jr := range jg.Relations {
		k := g.AddRelation(jr.Name, jr.Directed)
		for _, e := range jr.Edges {
			from, to := int(e[0]), int(e[1])
			weight := float64(e[2]) / weightFixedPoint
			if from < 0 || from >= g.N() || to < 0 || to >= g.N() {
				return nil, fmt.Errorf("hin: decode: relation %q edge (%d,%d) out of range %d", jr.Name, from, to, g.N())
			}
			if err := ValidWeight(weight); err != nil {
				return nil, fmt.Errorf("hin: decode: relation %q edge (%d,%d): %v", jr.Name, from, to, err)
			}
			g.AddWeightedEdge(k, from, to, weight)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveFile writes the graph to path as JSON.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph saved with SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
