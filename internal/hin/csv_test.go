package hin

import (
	"strings"
	"testing"
)

// TestReadEdgeCSVRejectsNonFiniteWeights pins the fix for the NaN hole:
// strconv.ParseFloat happily parses "NaN" and "Inf", and `weight <= 0`
// is false for NaN, so without an explicit finiteness check those
// weights used to flow straight into the graph.
func TestReadEdgeCSVRejectsNonFiniteWeights(t *testing.T) {
	for _, w := range []string{"NaN", "nan", "+Inf", "-Inf", "Infinity", "1e999", "0", "-1", "-0"} {
		in := "from,to,relation,weight\na,b,r," + w
		if _, err := ReadEdgeCSV(strings.NewReader(in)); err == nil {
			t.Errorf("weight %q accepted, want error", w)
		} else if !strings.Contains(err.Error(), "weight") {
			t.Errorf("weight %q: error %v does not mention the weight", w, err)
		}
	}
}

func TestReadEdgeCSVAcceptsFiniteWeights(t *testing.T) {
	in := "from,to,relation,weight\na,b,r,0.25\nb,c,r,3"
	g, err := ReadEdgeCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeCSV: %v", err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
}
