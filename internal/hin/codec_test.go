package hin

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := bibliography()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.N() != g.N() || back.M() != g.M() || back.Q() != g.Q() {
		t.Fatalf("round trip changed shape: %d/%d/%d", back.N(), back.M(), back.Q())
	}
	for i := range g.Nodes {
		if back.Nodes[i].Name != g.Nodes[i].Name {
			t.Errorf("node %d name %q != %q", i, back.Nodes[i].Name, g.Nodes[i].Name)
		}
		if len(back.Nodes[i].Labels) != len(g.Nodes[i].Labels) {
			t.Errorf("node %d labels differ", i)
		}
	}
	for k := range g.Relations {
		if back.Relations[k].Directed != g.Relations[k].Directed {
			t.Errorf("relation %d directedness lost", k)
		}
		if len(back.Relations[k].Edges) != len(g.Relations[k].Edges) {
			t.Errorf("relation %d edges differ", k)
		}
	}
}

func TestJSONWeightFixedPoint(t *testing.T) {
	g := New("c")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	r := g.AddRelation("r", true)
	g.AddWeightedEdge(r, a, b, 2.5)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w := back.Relations[0].Edges[0].Weight; math.Abs(w-2.5) > 1e-9 {
		t.Errorf("weight round trip = %v, want 2.5", w)
	}
}

func TestReadJSONRejectsBadVersion(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"version":99,"classes":[],"nodes":[{}],"relations":[]}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version should be rejected, got %v", err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage should fail to decode")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Node 5 referenced by an edge but only one node exists. AddWeightedEdge
	// panics on bad indices, so decode must surface that as a failure; here
	// we go through raw JSON to simulate a corrupted file.
	defer func() { recover() }() // builder panic is acceptable; error also acceptable
	_, err := ReadJSON(strings.NewReader(
		`{"version":1,"classes":["c"],"nodes":[{}],"relations":[{"name":"r","edges":[[0,5,1000000]]}]}`))
	if err == nil {
		t.Errorf("corrupt edge should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := bibliography()
	path := filepath.Join(t.TempDir(), "g.json")
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Stats().String() != g.Stats().String() {
		t.Errorf("file round trip changed stats: %v vs %v", back.Stats(), g.Stats())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("missing file should error")
	}
}
