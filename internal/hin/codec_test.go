package hin

import (
	"bytes"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := bibliography()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.N() != g.N() || back.M() != g.M() || back.Q() != g.Q() {
		t.Fatalf("round trip changed shape: %d/%d/%d", back.N(), back.M(), back.Q())
	}
	for i := range g.Nodes {
		if back.Nodes[i].Name != g.Nodes[i].Name {
			t.Errorf("node %d name %q != %q", i, back.Nodes[i].Name, g.Nodes[i].Name)
		}
		if len(back.Nodes[i].Labels) != len(g.Nodes[i].Labels) {
			t.Errorf("node %d labels differ", i)
		}
	}
	for k := range g.Relations {
		if back.Relations[k].Directed != g.Relations[k].Directed {
			t.Errorf("relation %d directedness lost", k)
		}
		if len(back.Relations[k].Edges) != len(g.Relations[k].Edges) {
			t.Errorf("relation %d edges differ", k)
		}
	}
}

func TestJSONWeightFixedPoint(t *testing.T) {
	g := New("c")
	a := g.AddNode("a", nil)
	b := g.AddNode("b", nil)
	r := g.AddRelation("r", true)
	g.AddWeightedEdge(r, a, b, 2.5)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w := back.Relations[0].Edges[0].Weight; math.Abs(w-2.5) > 1e-9 {
		t.Errorf("weight round trip = %v, want 2.5", w)
	}
}

func TestReadJSONRejectsBadVersion(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"version":99,"classes":[],"nodes":[{}],"relations":[]}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version should be rejected, got %v", err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage should fail to decode")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Node 5 referenced by an edge but only one node exists. AddWeightedEdge
	// panics on bad indices, so decode must surface that as a failure; here
	// we go through raw JSON to simulate a corrupted file.
	defer func() { recover() }() // builder panic is acceptable; error also acceptable
	_, err := ReadJSON(strings.NewReader(
		`{"version":1,"classes":["c"],"nodes":[{}],"relations":[{"name":"r","edges":[[0,5,1000000]]}]}`))
	if err == nil {
		t.Errorf("corrupt edge should fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := bibliography()
	path := filepath.Join(t.TempDir(), "g.json")
	if err := g.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Stats().String() != g.Stats().String() {
		t.Errorf("file round trip changed stats: %v vs %v", back.Stats(), g.Stats())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestValidWeight(t *testing.T) {
	for _, w := range []float64{1, 0.5, 1e-6, 1e6, 1e300} {
		if err := ValidWeight(w); err != nil {
			t.Errorf("ValidWeight(%v) = %v, want nil", w, err)
		}
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := ValidWeight(w); err == nil {
			t.Errorf("ValidWeight(%v) accepted", w)
		}
	}
}

// TestWriteJSONRejectsUnencodableWeights covers the fixed-point edge of
// the codec: a weight whose *1e6 encoding overflows int64 (or truncates
// to zero) must fail the encode with the offending edge named, instead
// of writing a document that decodes to Inf, garbage, or a rejection in
// some later process. The weights are smuggled past the builder's
// validation by mutating the edge in place, standing in for upstream
// arithmetic bugs (e.g. an Inf produced by 1/0 feature scaling).
func TestWriteJSONRejectsUnencodableWeights(t *testing.T) {
	for _, w := range []float64{math.Inf(1), math.NaN(), 1e300, math.MaxInt64, 1e-9, -3} {
		g := New("a", "b")
		g.AddNode("x", nil)
		g.AddNode("y", nil)
		g.SetLabels(0, 0)
		g.SetLabels(1, 1)
		g.AddRelation("r", false)
		g.AddWeightedEdge(0, 0, 1, 1)
		g.Relations[0].Edges[0].Weight = w
		if err := g.WriteJSON(io.Discard); err == nil {
			t.Errorf("WriteJSON accepted weight %v", w)
		} else if !strings.Contains(err.Error(), `relation "r" edge (0,1)`) {
			t.Errorf("weight %v: error %q does not name the edge", w, err)
		}
	}

	// The largest representable weight still round-trips exactly enough
	// to decode and re-validate.
	g := New("a", "b")
	g.AddNode("x", nil)
	g.AddNode("y", nil)
	g.SetLabels(0, 0)
	g.SetLabels(1, 1)
	g.AddRelation("r", false)
	g.AddWeightedEdge(0, 0, 1, 9e12)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON(9e12): %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got := g2.Relations[0].Edges[0].Weight; got != 9e12 {
		t.Errorf("round-tripped weight %v, want 9e12", got)
	}
}

func TestAddWeightedEdgeRejectsNaN(t *testing.T) {
	g := New("a")
	g.AddNode("x", nil)
	g.AddNode("y", nil)
	g.AddRelation("r", false)
	for _, w := range []float64{math.NaN(), math.Inf(1), 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddWeightedEdge(%v) did not panic", w)
				}
			}()
			g.AddWeightedEdge(0, 0, 1, w)
		}()
	}
}
