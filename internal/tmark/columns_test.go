package tmark

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tmark/internal/hin"
	"tmark/internal/vec"
)

// queryGraph is a small homophilous network used by the column tests.
// benchGraphQ labels every tenth node, which only covers the even
// classes for q = 4; relabel every fifth node so each class has seeds.
func queryGraph() *hin.Graph {
	g := benchGraphQ(120, 4)
	for i := 0; i < g.N(); i += 5 {
		g.SetLabels(i, i%4)
	}
	return g
}

// classSeeds lists the labelled nodes of class c — the seed set whose
// query reproduces class c's solve.
func classSeeds(g *hin.Graph, c int) []int {
	var seeds []int
	for i := 0; i < g.N(); i++ {
		if g.HasLabel(i, c) {
			seeds = append(seeds, i)
		}
	}
	return seeds
}

func mustModel(t *testing.T, g *hin.Graph, cfg Config) *Model {
	t.Helper()
	m, err := New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func sameVec(t *testing.T, name string, got, want vec.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v (bitwise)", name, i, got[i], want[i])
		}
	}
}

// TestSolveColumnsMatchesSequential: each column of the batched solve is
// bitwise identical to its own sequential SolveColumn, with and without
// the per-query reseed, serial and sharded.
func TestSolveColumnsMatchesSequential(t *testing.T) {
	g := queryGraph()
	rng := rand.New(rand.NewSource(7))
	for _, ica := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("ica=%v/workers=%d", ica, workers), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Workers = workers
				cfg.Epsilon = 1e-10
				m := mustModel(t, g, cfg)
				queries := make([]ColumnQuery, 6)
				for i := range queries {
					seeds := make([]int, 3+rng.Intn(5))
					for j := range seeds {
						seeds[j] = rng.Intn(g.N())
					}
					queries[i] = ColumnQuery{Seeds: seeds, ICA: ica}
				}
				batched, err := m.SolveColumns(context.Background(), queries)
				if err != nil {
					t.Fatalf("SolveColumns: %v", err)
				}
				for i, q := range queries {
					ref, err := m.SolveColumn(context.Background(), q)
					if err != nil {
						t.Fatalf("SolveColumn(%d): %v", i, err)
					}
					got := batched[i]
					if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
						t.Fatalf("column %d: iters/conv = %d/%v, want %d/%v",
							i, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
					}
					sameVec(t, fmt.Sprintf("col%d.X", i), got.X, ref.X)
					sameVec(t, fmt.Sprintf("col%d.Z", i), got.Z, ref.Z)
					sameVec(t, fmt.Sprintf("col%d.Restart", i), got.Restart, ref.Restart)
					if len(got.Trace) != len(ref.Trace) {
						t.Fatalf("column %d: trace length %d, want %d", i, len(got.Trace), len(ref.Trace))
					}
					for k := range got.Trace {
						if got.Trace[k] != ref.Trace[k] {
							t.Fatalf("column %d trace[%d] = %v, want %v", i, k, got.Trace[k], ref.Trace[k])
						}
					}
				}
			})
		}
	}
}

// TestSolveColumnMatchesRunContext: with the ICA update off, a query
// whose seed set is exactly class c's labelled nodes reproduces class c
// of a full RunContext solve bitwise — the contract the serving layer's
// coalescing-correctness test builds on.
func TestSolveColumnMatchesRunContext(t *testing.T) {
	g := queryGraph()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Epsilon = 1e-10
	cfg.ICAUpdate = false // queries are never coupled by the cross-class reseed
	m := mustModel(t, g, cfg)
	full := m.RunContext(context.Background())
	queries := make([]ColumnQuery, g.Q())
	for c := 0; c < g.Q(); c++ {
		queries[c] = ColumnQuery{Seeds: classSeeds(g, c)}
	}
	batched, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatalf("SolveColumns: %v", err)
	}
	for c := 0; c < g.Q(); c++ {
		cr := full.Classes[c]
		got := batched[c]
		if got.Iterations != cr.Iterations || got.Converged != cr.Converged {
			t.Fatalf("class %d: iters/conv = %d/%v, want %d/%v",
				c, got.Iterations, got.Converged, cr.Iterations, cr.Converged)
		}
		sameVec(t, fmt.Sprintf("class%d.X", c), got.X, cr.X)
		sameVec(t, fmt.Sprintf("class%d.Z", c), got.Z, cr.Z)
	}
}

// TestSolveColumnsPerColumnCancel: cancelling one column's context
// retires that column mid-batch with a usable partial state while the
// other columns keep iterating to their natural end.
func TestSolveColumnsPerColumnCancel(t *testing.T) {
	g := queryGraph()
	cfg := slowConfig(1)
	cfg.MaxIterations = 50
	m := mustModel(t, g, cfg)

	colCtx, cancel := context.WithCancel(context.Background())
	stopAt := 5
	queries := []ColumnQuery{
		{Seeds: classSeeds(g, 0), Ctx: colCtx},
		{Seeds: classSeeds(g, 1)},
		{Seeds: classSeeds(g, 2)},
	}
	progress := func(col, iter int, rho float64) {
		if col == 0 && iter == stopAt {
			cancel()
		}
	}
	out, err := m.SolveColumns(context.Background(), queries, WithProgress(progress))
	if err != nil {
		t.Fatalf("SolveColumns: %v", err)
	}
	if out[0].Stopped == nil {
		t.Fatalf("column 0 should report Stopped")
	}
	if got := out[0].Iterations; got != stopAt {
		t.Fatalf("column 0 stopped after %d iterations, want %d (within one iteration)", got, stopAt)
	}
	for i := 1; i < 3; i++ {
		if out[i].Stopped != nil {
			t.Fatalf("column %d unexpectedly stopped: %v", i, out[i].Stopped)
		}
		// The survivors run to their natural end — convergence (the tiny
		// graph can hit an exact fixed point, ρ = 0) or the cap — well
		// past the cancellation point.
		if !out[i].Converged && out[i].Iterations != cfg.MaxIterations {
			t.Fatalf("column %d stopped early: %d iterations, not converged", i, out[i].Iterations)
		}
		if out[i].Iterations <= stopAt {
			t.Fatalf("column %d only ran %d iterations", i, out[i].Iterations)
		}
	}
	// The cancelled column holds the state of its last completed
	// iteration: bitwise equal to a sequential solve capped there.
	capCfg := cfg
	capCfg.MaxIterations = stopAt
	ref, err := mustModel(t, g, capCfg).SolveColumn(context.Background(), ColumnQuery{Seeds: classSeeds(g, 0)})
	if err != nil {
		t.Fatalf("SolveColumn: %v", err)
	}
	sameVec(t, "cancelled.X", out[0].X, ref.X)
	sameVec(t, "cancelled.Z", out[0].Z, ref.Z)
}

// TestSolveColumnsRunCtxCancel: the run-level context stops every column
// within one iteration, stamping Stopped on each.
func TestSolveColumnsRunCtxCancel(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, slowConfig(1))
	ctx, cancel := context.WithCancel(context.Background())
	progress := func(col, iter int, rho float64) {
		if iter == 3 {
			cancel()
		}
	}
	out, err := m.SolveColumns(ctx, []ColumnQuery{
		{Seeds: []int{0, 4}}, {Seeds: []int{1}},
	}, WithProgress(progress))
	if err != nil {
		t.Fatalf("SolveColumns: %v", err)
	}
	for i, cr := range out {
		if cr.Stopped == nil {
			t.Fatalf("column %d: Stopped not set", i)
		}
		if cr.Iterations > 4 {
			t.Fatalf("column %d ran %d iterations after cancellation", i, cr.Iterations)
		}
		if !vec.IsStochastic(cr.X, 1e-9) {
			t.Fatalf("column %d partial X not stochastic", i)
		}
	}
}

// TestSolveColumnsDeadline: an already-expired deadline returns seed
// state immediately with Stopped set.
func TestSolveColumnsDeadline(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, slowConfig(1))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	out, err := m.SolveColumns(ctx, []ColumnQuery{{Seeds: []int{0}}})
	if err != nil {
		t.Fatalf("SolveColumns: %v", err)
	}
	if out[0].Stopped == nil || out[0].Iterations != 0 {
		t.Fatalf("expired deadline: Stopped=%v iters=%d, want stopped at 0", out[0].Stopped, out[0].Iterations)
	}
	if !vec.IsStochastic(out[0].X, 1e-12) {
		t.Fatalf("seed-state X not stochastic")
	}
}

// TestSolveColumnRestartVector: an explicit restart vector is copied,
// normalised and solved; the caller's slice is untouched.
func TestSolveColumnRestartVector(t *testing.T) {
	g := queryGraph()
	cfg := DefaultConfig()
	cfg.Workers = 1
	m := mustModel(t, g, cfg)
	restart := vec.New(g.N())
	restart[3], restart[17] = 2, 2
	orig := vec.Clone(restart)
	got, err := m.SolveColumn(context.Background(), ColumnQuery{Restart: restart})
	if err != nil {
		t.Fatalf("SolveColumn: %v", err)
	}
	sameVec(t, "caller restart", restart, orig)
	ref, err := m.SolveColumn(context.Background(), ColumnQuery{Seeds: []int{3, 17}})
	if err != nil {
		t.Fatalf("SolveColumn(seeds): %v", err)
	}
	sameVec(t, "restart-vs-seeds X", got.X, ref.X)
	if got.Seeds != 2 {
		t.Fatalf("Seeds = %d, want 2", got.Seeds)
	}
}

// TestColumnQueryValidation: malformed queries error out before any
// solving and never panic.
func TestColumnQueryValidation(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, DefaultConfig())
	bad := []ColumnQuery{
		{},                           // no seeds, no restart
		{Seeds: []int{-1}},           // negative seed
		{Seeds: []int{g.N()}},        // out of range
		{Restart: vec.New(3)},        // wrong length
		{Restart: vec.New(g.N())},    // no mass
		{Restart: nanRestart(g.N())}, // NaN entry
		{Restart: negRestart(g.N())}, // negative entry
		{Restart: infRestart(g.N())}, // Inf entry
	}
	for i, q := range bad {
		if _, err := m.SolveColumn(context.Background(), q); err == nil {
			t.Errorf("query %d: expected error", i)
		}
		if _, err := m.SolveColumns(context.Background(), []ColumnQuery{{Seeds: []int{0}}, q}); err == nil {
			t.Errorf("query %d in batch: expected error", i)
		}
	}
	if out, err := m.SolveColumns(context.Background(), nil); err != nil || out != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", out, err)
	}
}

func nanRestart(n int) vec.Vector {
	v := vec.New(n)
	v[0] = nan()
	return v
}

func negRestart(n int) vec.Vector {
	v := vec.New(n)
	v[0], v[1] = 1, -1
	return v
}

func infRestart(n int) vec.Vector {
	v := vec.New(n)
	v[0] = 1
	v[1] = 1 / zero()
	return v
}

func nan() float64  { z := zero(); return z / z }
func zero() float64 { return 0 }

// TestSolveColumnsSequentialOption: WithBatchedClasses(false) routes the
// batch through the sequential reference path, column by column, with
// identical results.
func TestSolveColumnsSequentialOption(t *testing.T) {
	g := queryGraph()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Epsilon = 1e-10
	m := mustModel(t, g, cfg)
	queries := []ColumnQuery{
		{Seeds: classSeeds(g, 0), ICA: true},
		{Seeds: []int{5, 9, 40}},
	}
	batched, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatalf("batched: %v", err)
	}
	seq, err := m.SolveColumns(context.Background(), queries, WithBatchedClasses(false))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for i := range queries {
		sameVec(t, fmt.Sprintf("col%d.X", i), seq[i].X, batched[i].X)
		sameVec(t, fmt.Sprintf("col%d.Z", i), seq[i].Z, batched[i].Z)
	}
}
