// Package tmark implements the paper's contribution: the Tensor-based
// Markov chain (T-Mark) algorithm for collective classification and link
// ranking in heterogeneous information networks.
//
// For every class c the algorithm iterates the coupled tensor equations
//
//	x_t = (1−α−β)·O ×̄₁ x_{t−1} ×̄₃ z_{t−1} + β·W·x_{t−1} + α·l   (eq. 10)
//	z_t = R ×̄₁ x_t ×̄₂ x_t                                        (eq. 8)
//
// with β = γ·(1−α), until ρ_t = ‖x_t−x_{t−1}‖₁ + ‖z_t−z_{t−1}‖₁ < ε.
// The stationary x̄ scores nodes for class c; the stationary z̄ ranks link
// types by their relevance to class c. The ICA-style extension (Algorithm 1
// line 4) re-seeds the restart vector l after each iteration with the
// currently most confident nodes (eq. 12); disabling it recovers the
// TensorRrCc predecessor of Han et al. (ICDM 2017).
package tmark

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"tmark/internal/accel"
	"tmark/internal/hin"
	"tmark/internal/markov"
	"tmark/internal/par"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// Config holds the algorithm's hyper-parameters. The zero value is not
// runnable; use DefaultConfig as a starting point.
type Config struct {
	// Alpha is the restart probability: the weight of the labelled-seed
	// vector l at every step. The paper tunes it per dataset (0.8 on DBLP,
	// 0.9 on NUS/ACM/Movies). Must lie in (0, 1).
	Alpha float64
	// Gamma scales the feature channel against the relational channel:
	// γ=0 uses only the relation tensor, γ=1 only feature similarities.
	// β = γ·(1−α). Must lie in [0, 1].
	Gamma float64
	// Lambda is the relative confidence threshold of the ICA update
	// (eq. 12): after each iteration, unlabelled node i is accepted as a
	// pseudo-seed of its argmax class when x[i] exceeds Lambda times the
	// largest unlabelled-node probability of that class. Must lie in
	// (0, 1].
	Lambda float64
	// Epsilon is the convergence threshold on ρ_t.
	Epsilon float64
	// MaxIterations bounds the iteration count per class.
	MaxIterations int
	// ICAUpdate enables the iterative re-seeding of l (T-Mark). With it
	// disabled the solver is the TensorRrCc baseline.
	ICAUpdate bool
	// FeatureTopK sparsifies the feature transition W to the top-K cosine
	// neighbours per column; 0 keeps the paper's dense cosine matrix.
	// Bag-of-words features share so much background vocabulary that the
	// dense W is nearly uniform; a modest K concentrates the feature walk.
	FeatureTopK int
	// Workers bounds the compute concurrency of the solver: the hot-loop
	// kernels (the O and R tensor contractions and the W·x product) are
	// sharded across a worker pool of this size, and model construction
	// uses the same bound for the cosine-similarity build. 0 means
	// GOMAXPROCS; 1 runs fully serial. Results are deterministic for a
	// fixed Workers value; different values can differ by float rounding
	// in the shard reduction only.
	Workers int
}

// DefaultConfig returns the paper's default hyper-parameters (DBLP
// settings: α=0.8, γ=0.6). Workers is left at 0, which resolves to
// GOMAXPROCS at run time; set it to 1 for a fully serial solve.
func DefaultConfig() Config {
	return Config{
		Alpha:         0.8,
		Gamma:         0.6,
		Lambda:        0.7,
		Epsilon:       1e-8,
		MaxIterations: 100,
		ICAUpdate:     true,
		FeatureTopK:   0,
	}
}

// Validate checks the parameter ranges.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("tmark: Alpha %v out of (0,1)", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("tmark: Gamma %v out of [0,1]", c.Gamma)
	}
	if c.Lambda <= 0 || c.Lambda > 1 {
		return fmt.Errorf("tmark: Lambda %v out of (0,1]", c.Lambda)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("tmark: Epsilon %v must be positive", c.Epsilon)
	}
	if c.MaxIterations <= 0 {
		return fmt.Errorf("tmark: MaxIterations %d must be positive", c.MaxIterations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("tmark: Workers %d must not be negative (0 means GOMAXPROCS)", c.Workers)
	}
	return nil
}

// Beta returns β = γ·(1−α), the effective weight of the feature channel.
func (c Config) Beta() float64 { return c.Gamma * (1 - c.Alpha) }

// matvec is the feature-channel contract: dst = W·x. The dense cosine
// matrix and the CSR top-K matrix both satisfy it.
type matvec interface {
	MulVec(x, dst []float64)
}

// Model is a T-Mark instance bound to one network: the transition tensors
// O and R, the feature transition matrix W, and the training labels. Build
// it once with New and solve with Run; a Model is safe for concurrent Run
// calls because solving never mutates it.
type Model struct {
	graph *hin.Graph
	cfg   Config

	o *tensor.NodeTransition
	r *tensor.RelationTransition
	w matvec // nil when Gamma == 0

	irreducible bool

	// The fast tier's collapsed linear operator, built lazily on the
	// first approximate solve (see linearSystem). The sync.Once is the
	// only mutable state a solve ever touches on the Model, so concurrent
	// Run/SolveColumns calls stay safe.
	linOnce sync.Once
	lin     *accel.System
	linErr  error
}

// New builds a model from the graph's adjacency tensor and features.
// The graph must validate; classes without any labelled node are allowed
// (their restart vector falls back to uniform) but unlabeled-only graphs
// are rejected.
func New(g *hin.Graph, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Q() == 0 {
		return nil, errors.New("tmark: graph has no classes")
	}
	anyLabel := false
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			anyLabel = true
			break
		}
	}
	if !anyLabel {
		return nil, errors.New("tmark: graph has no labelled nodes")
	}
	a := g.AdjacencyTensor()
	m := &Model{
		graph:       g,
		cfg:         cfg,
		o:           tensor.NewNodeTransition(a),
		r:           tensor.NewRelationTransition(a),
		irreducible: a.Irreducible(),
	}
	if cfg.Gamma > 0 {
		pool := par.New(cfg.workerCount())
		if cfg.FeatureTopK > 0 {
			// The sparsified channel keeps only O(n·K) weights, so the
			// per-iteration cost stays linear on large networks.
			m.w = markov.SparseFeatureTransitionCSRPar(g.FeatureMatrix(), cfg.FeatureTopK, pool)
		} else {
			m.w = markov.FeatureTransitionPar(g.FeatureMatrix(), pool)
		}
		pool.Close()
	}
	return m, nil
}

// workerCount resolves the Workers knob: 0 means GOMAXPROCS.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Irreducible reports whether the adjacency tensor satisfied the paper's
// irreducibility assumption. The solver works either way (the restart term
// keeps the iteration inside the simplex); reducible inputs merely lose
// the strict-positivity guarantee of Theorem 2.
func (m *Model) Irreducible() bool { return m.irreducible }

// Graph returns the network the model was built on.
func (m *Model) Graph() *hin.Graph { return m.graph }

// Config returns the model's hyper-parameters.
func (m *Model) Config() Config { return m.cfg }

// ClassResult is the stationary solution for one class.
type ClassResult struct {
	Class      int
	X          vec.Vector // stationary node distribution x̄ (length n)
	Z          vec.Vector // stationary relation distribution z̄ (length m)
	Iterations int
	Converged  bool
	Trace      []float64 // ρ_t after each iteration (Fig. 10 data)
	Seeds      int       // labelled nodes of this class in the restart set
	// Restart is the final restart vector l — the labelled seeds plus any
	// pseudo-seeds the ICA update accepted. Explain uses it to decompose
	// node scores exactly.
	Restart vec.Vector
}

// Result bundles the per-class solutions.
type Result struct {
	Classes []ClassResult
	// Reason records why the run returned: convergence, the iteration
	// cap, or a context interruption. Results deserialised from disk
	// carry ReasonUnknown.
	Reason Reason
	// Stopped is nil when the run completed naturally and the context's
	// error (context.Canceled or context.DeadlineExceeded) when the run
	// was interrupted. On an interrupted run the Classes hold the partial
	// solution reached so far, which remains valid input for Predict,
	// the rankings, and RunWarm.
	Stopped error
	// Faults lists every numerical-health event the run's guards
	// detected, oldest first. A run that recovered through the automatic
	// demoted retry still reports the original fault here while Reason
	// records the final outcome (e.g. ReasonConverged).
	Faults  []Fault
	n, m, q int
}

// classState is the per-class working set of the lockstep solver.
type classState struct {
	x, z, l    vec.Vector
	xNext      vec.Vector
	zNext      vec.Vector
	tmp        vec.Vector
	converged  bool
	iterations int
	trace      []float64
	seeds      int
}

// iterateLockstep runs the shared lockstep loop over prepared states. The
// classes are stepped one after another — the worker pool inside the
// kernels is the parallelism, so the actual concurrency is bounded by
// cfg.Workers instead of the per-iteration goroutine-plus-semaphore churn
// this loop used to spawn (which kept all q goroutines live regardless of
// the Workers setting). The context is checked once per lockstep
// iteration: a cancelled run keeps whatever the states held when it
// noticed, so the caller still gets the partial solution.
func (m *Model) iterateLockstep(ctx context.Context, res *Result, states []classState, rs *runScratch) {
	q := len(states)
	progress := rs.progressFn()
	argmax := make([]int, m.graph.N()) // reseed scratch, hoisted out of the pass
loop:
	for t := 1; t <= m.cfg.MaxIterations; t++ {
		if ctx.Err() != nil {
			break
		}
		if t > 2 {
			rs.reseed(q*m.graph.N(), func() { m.icaReseedInto(states, argmax) })
		}
		allDone := true
		for c := 0; c < q; c++ {
			s := &states[c]
			if s.converged {
				continue
			}
			rho := m.step(s, rs)
			if math.IsNaN(rho) {
				// One corrupted class stops the whole lockstep run: the ICA
				// reseed couples the classes through the prediction matrix,
				// so advancing the others on a poisoned matrix helps nobody.
				// step discarded the iterate, so every class still holds the
				// last healthy iteration.
				rs.faults = append(rs.faults, Fault{Class: c, Iter: t, Kind: faultNonFinite})
				regNumericalFaults.Inc()
				break loop
			}
			s.trace = append(s.trace, rho)
			s.iterations++
			if progress != nil {
				progress(c, s.iterations, rho)
			}
			if rho < m.cfg.Epsilon {
				s.converged = true
			} else {
				allDone = false
			}
		}
		if allDone {
			break
		}
	}
	for c := 0; c < q; c++ {
		s := &states[c]
		res.Classes[c] = ClassResult{
			Class: c, X: s.x, Z: s.z,
			Iterations: s.iterations, Converged: s.converged,
			Trace: s.trace, Seeds: s.seeds, Restart: s.l,
		}
	}
}

// step performs one iteration of eq. (10) and eq. (8) on the state and
// returns ρ. A nil rs runs the serial kernels.
func (m *Model) step(s *classState, rs *runScratch) float64 {
	alpha, beta := m.cfg.Alpha, m.cfg.Beta()
	rel := 1 - alpha - beta
	if rel > 0 {
		rs.applyNode(m.o, s.x, s.z, s.xNext)
		vec.Scale(rel, s.xNext)
	} else {
		vec.Fill(s.xNext, 0)
	}
	if beta > 0 && m.w != nil {
		rs.mulFeature(m.w, s.x, s.tmp)
		vec.Axpy(beta, s.tmp, s.xNext)
	}
	vec.Axpy(alpha, s.l, s.xNext)
	// Rounding in the dangling-mass closed forms compounds across
	// iterations (the error dynamics amplify by ≈ 3·(1−α−β)+β per step),
	// so project back onto the simplex; the fixed point itself has unit
	// mass, so this changes nothing mathematically.
	okX := vec.Normalize1(s.xNext)
	rs.applyRelation(m.r, s.xNext, s.zNext)
	okZ := vec.Normalize1(s.zNext)
	rho := vec.Diff1(s.x, s.xNext) + vec.Diff1(s.z, s.zNext)
	if !okX || !okZ || nonFinite(rho) {
		// Corrupted iterate: discard it — x/z keep iteration t−1, which
		// is exactly the state a stopped run must report — and signal the
		// caller with a NaN residual.
		return math.NaN()
	}
	copy(s.x, s.xNext)
	copy(s.z, s.zNext)
	return rho
}

// icaReseedAll rebuilds every class's restart vector from the prediction
// matrix: unlabelled node i joins class c's seeds when c is i's argmax
// class and x[i] clears the confidence threshold λ·(best unlabelled
// probability of class c).
func (m *Model) icaReseedAll(states []classState) {
	m.icaReseedInto(states, make([]int, m.graph.N()))
}

// icaReseedInto is icaReseedAll with caller-owned argmax scratch, so the
// lockstep loop reseeds without a per-iteration allocation.
func (m *Model) icaReseedInto(states []classState, argmax []int) {
	n, q := m.graph.N(), len(states)
	for i := 0; i < n; i++ {
		best, bestC := -1.0, -1
		for c := 0; c < q; c++ {
			if v := states[c].x[i]; v > best {
				best, bestC = v, c
			}
		}
		argmax[i] = bestC
	}
	for c := 0; c < q; c++ {
		s := &states[c]
		maxUnlabeled := 0.0
		for i, v := range s.x {
			if !m.graph.Labeled(i) && v > maxUnlabeled {
				maxUnlabeled = v
			}
		}
		threshold := m.cfg.Lambda * maxUnlabeled
		count := 0
		for i := range s.l {
			accept := m.graph.HasLabel(i, c)
			if !accept && !m.graph.Labeled(i) && maxUnlabeled > 0 {
				accept = argmax[i] == c && s.x[i] > threshold
			}
			if accept {
				s.l[i] = 1
				count++
			} else {
				s.l[i] = 0
			}
		}
		if count == 0 {
			vec.Fill(s.l, 1/float64(len(s.l)))
			continue
		}
		vec.Scale(1/float64(count), s.l)
	}
}

// RunClass solves a single class; exposed for experiments that sweep
// parameters on one class at a time.
func (m *Model) RunClass(c int) ClassResult {
	if c < 0 || c >= m.graph.Q() {
		panic(fmt.Sprintf("tmark: class %d out of range %d", c, m.graph.Q()))
	}
	rs := m.newRunScratch(runOptions{sequential: true})
	defer rs.close()
	return m.solveClass(context.Background(), c, rs)
}

// seedVector builds the initial restart vector l for class c (eq. 11):
// uniform over the labelled nodes carrying c, or uniform over all nodes if
// the class has no seeds.
func (m *Model) seedVector(c int) (vec.Vector, int) {
	n := m.graph.N()
	l := vec.New(n)
	count := 0
	for i := 0; i < n; i++ {
		if m.graph.HasLabel(i, c) {
			l[i] = 1
			count++
		}
	}
	if count == 0 {
		return vec.Uniform(n), 0
	}
	vec.Scale(1/float64(count), l)
	return l, count
}

// solveClass runs one class cold: from the seed restart vector and the
// uniform relation distribution. It shares the iteration loop (and hence
// the context check, telemetry and progress reporting) with the
// warm-start path.
func (m *Model) solveClass(ctx context.Context, c int, rs *runScratch) ClassResult {
	l, seeds := m.seedVector(c)
	return m.solveClassSeeded(ctx, c, vec.Clone(l), vec.Uniform(m.graph.M()), l, seeds, rs)
}

// icaReseed rebuilds l from the training labels plus the currently
// confident nodes (eq. 12): unlabelled node i is accepted when x[i]
// exceeds Lambda times the largest unlabelled-node probability. The
// threshold is relative to the unlabelled maximum because the labelled
// seeds hold most of the stationary mass (the α·l restart feeds them
// directly), so a global-max threshold would never admit anyone. The
// result is renormalised to a distribution.
func (m *Model) icaReseed(c int, x, l vec.Vector) {
	maxUnlabeled := 0.0
	for i, v := range x {
		if !m.graph.Labeled(i) && v > maxUnlabeled {
			maxUnlabeled = v
		}
	}
	threshold := m.cfg.Lambda * maxUnlabeled
	count := 0
	for i := range l {
		if m.graph.HasLabel(i, c) || (maxUnlabeled > 0 && x[i] > threshold && !m.graph.Labeled(i)) {
			l[i] = 1
			count++
		} else {
			l[i] = 0
		}
	}
	if count == 0 {
		// No seeds at all (empty class): fall back to uniform.
		vec.Fill(l, 1/float64(len(l)))
		return
	}
	vec.Scale(1/float64(count), l)
}
