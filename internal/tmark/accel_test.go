package tmark

// Tests of the quality tiers: the extrapolated power method (identical
// predictions, fewer committed iterations) and the linearized fast tier
// (approximate, one sparse solve). The chaos tests at the bottom poison
// the extrapolation proposals and prove the fallback contract: a
// rejected — or never-scattered — candidate leaves the run bitwise
// identical to plain iteration.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"tmark/internal/fault"
	"tmark/internal/vec"
)

// accelConfig mixes slowly (small restart weight, rate ≈ 1−α) so plain
// iteration needs hundreds of passes and extrapolation has room to pay.
// ICA stays configurable: the chaos bitwise tests need it off so classes
// stay independent under desynchronised rejections.
func accelConfig(ica bool, workers int) Config {
	cfg := DefaultConfig()
	cfg.Alpha = 0.05
	cfg.Gamma = 0
	cfg.ICAUpdate = ica
	cfg.Epsilon = 1e-9
	cfg.MaxIterations = 1000
	cfg.Workers = workers
	return cfg
}

func predictionsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	gp, wp := got.Predict(), want.Predict()
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: node %d predicted %d, want %d", label, i, gp[i], wp[i])
		}
	}
}

// The accelerated run must converge with identical predictions in no
// more committed iterations than plain — and, on this slow-mixing
// configuration, strictly fewer, with accepted jumps on the record.
func TestAccelerationConvergesFasterSamePredictions(t *testing.T) {
	g := benchGraph(120)
	for _, ica := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			label := fmt.Sprintf("ica=%v workers=%d", ica, workers)
			m := mustModel(t, g, accelConfig(ica, workers))
			plain := m.RunContext(context.Background())

			var st RunStats
			fast := m.RunContext(context.Background(), WithAcceleration(true), WithStats(&st))
			if fast.Reason != plain.Reason {
				t.Fatalf("%s: reason %v, want %v", label, fast.Reason, plain.Reason)
			}
			var pi, fi int
			for c := range plain.Classes {
				if !plain.Classes[c].Converged || !fast.Classes[c].Converged {
					t.Fatalf("%s: class %d did not converge (plain=%v accel=%v)",
						label, c, plain.Classes[c].Converged, fast.Classes[c].Converged)
				}
				pi += plain.Classes[c].Iterations
				fi += fast.Classes[c].Iterations
				if fast.Classes[c].Iterations > plain.Classes[c].Iterations {
					t.Errorf("%s: class %d accel took %d iterations, plain %d",
						label, c, fast.Classes[c].Iterations, plain.Classes[c].Iterations)
				}
			}
			if fi >= pi {
				t.Errorf("%s: accel total %d iterations, plain %d — no speedup", label, fi, pi)
			}
			if st.AccelProposed == 0 || st.AccelAccepted == 0 {
				t.Errorf("%s: counters %d proposed / %d accepted, want both > 0",
					label, st.AccelProposed, st.AccelAccepted)
			}
			if st.AccelAccepted+st.AccelRejected != st.AccelProposed {
				t.Errorf("%s: %d proposed ≠ %d accepted + %d rejected",
					label, st.AccelProposed, st.AccelAccepted, st.AccelRejected)
			}
			predictionsEqual(t, label, fast, plain)
		}
	}
}

// On the default (fast-mixing) configuration acceleration may win little,
// but it must never lose iterations or change predictions.
func TestAccelerationDefaultConfigNeverWorse(t *testing.T) {
	g := benchGraph(120)
	m := mustModel(t, g, ckConfig(true, 1))
	plain := m.RunContext(context.Background())
	fast := m.RunContext(context.Background(), WithAcceleration(true))
	for c := range plain.Classes {
		if fast.Classes[c].Iterations > plain.Classes[c].Iterations {
			t.Errorf("class %d: accel %d iterations, plain %d",
				c, fast.Classes[c].Iterations, plain.Classes[c].Iterations)
		}
	}
	predictionsEqual(t, "default-config", fast, plain)
}

// Per-query Quality overrides and the run-level option must agree: a
// QualityAccelerated query equals a WithAcceleration run bitwise, takes
// no more iterations than exact, and keeps the exact argmax.
func TestSolveColumnQualityTiers(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, accelConfig(false, 1))
	q := ColumnQuery{Seeds: classSeeds(g, 0)}

	exact, err := m.SolveColumn(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	qa := q
	qa.Quality = QualityAccelerated
	accel, err := m.SolveColumn(context.Background(), qa)
	if err != nil {
		t.Fatal(err)
	}
	viaOption, err := m.SolveColumn(context.Background(), q, WithAcceleration(true))
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "accel X vs WithAcceleration X", accel.X, viaOption.X)
	if !exact.Converged || !accel.Converged {
		t.Fatalf("convergence: exact=%v accel=%v", exact.Converged, accel.Converged)
	}
	if accel.Iterations >= exact.Iterations {
		t.Errorf("accel %d iterations, exact %d — no speedup on slow-mixing config",
			accel.Iterations, exact.Iterations)
	}
	if vec.Argmax(accel.X) != vec.Argmax(exact.X) {
		t.Errorf("accel argmax %d, exact %d", vec.Argmax(accel.X), vec.Argmax(exact.X))
	}

	qf := q
	qf.Quality = QualityFast
	fast, err := m.SolveColumn(context.Background(), qf)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Converged {
		t.Fatal("fast tier did not converge")
	}
	var mass float64
	for _, v := range fast.X {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("fast tier produced invalid probability %v", v)
		}
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("fast tier X mass %v, want 1", mass)
	}
	if len(fast.Z) != g.M() {
		t.Fatalf("fast tier Z length %d, want %d", len(fast.Z), g.M())
	}
}

// Tiers mix inside one batch: each query must come back identical to its
// solo solve at the same tier.
func TestSolveColumnsMixedQuality(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, accelConfig(false, 2))
	queries := []ColumnQuery{
		{Seeds: classSeeds(g, 0)},
		{Seeds: classSeeds(g, 1), Quality: QualityAccelerated},
		{Seeds: classSeeds(g, 2), Quality: QualityFast},
		{Seeds: classSeeds(g, 3)},
	}
	out, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		solo, err := m.SolveColumn(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Converged != solo.Converged || out[i].Iterations != solo.Iterations {
			t.Errorf("query %d: batch %d/%v vs solo %d/%v iterations/converged",
				i, out[i].Iterations, out[i].Converged, solo.Iterations, solo.Converged)
		}
		sameVec(t, fmt.Sprintf("query %d X", i), out[i].X, solo.X)
		sameVec(t, fmt.Sprintf("query %d Z", i), out[i].Z, solo.Z)
	}
}

// The run-level fast tier: every class converges to a valid distribution
// pair and predictions stay close to exact — the frozen-z̄ error bound in
// practice. The golden suite pins the envelope on the reference datasets;
// here a weak sanity floor guards against a broken collapse.
func TestRunApproximate(t *testing.T) {
	g := benchGraph(120)
	m := mustModel(t, g, ckConfig(false, 1))
	exact := m.RunContext(context.Background())
	fast := m.RunContext(context.Background(), WithApproximate(true))
	for c := range fast.Classes {
		cr := &fast.Classes[c]
		if !cr.Converged {
			t.Fatalf("class %d did not converge", c)
		}
		if cr.Iterations == 0 || len(cr.Trace) != cr.Iterations {
			t.Fatalf("class %d iterations %d, trace %d", c, cr.Iterations, len(cr.Trace))
		}
		for _, v := range cr.X {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("class %d invalid probability %v", c, v)
			}
		}
	}
	ep, fp := exact.Predict(), fast.Predict()
	agree := 0
	for i := range ep {
		if ep[i] == fp[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ep)); frac < 0.8 {
		t.Errorf("fast tier agrees with exact on %.0f%% of nodes, want ≥ 80%%", frac*100)
	}
}

// WithApproximate overrides WithAcceleration (documented precedence) and
// a per-query QualityExact overrides a run-level WithApproximate.
func TestQualityPrecedence(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, accelConfig(false, 1))
	q := ColumnQuery{Seeds: classSeeds(g, 0)}

	exact, err := m.SolveColumn(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	qe := q
	qe.Quality = QualityExact
	viaOverride, err := m.SolveColumn(context.Background(), qe, WithApproximate(true))
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "QualityExact under WithApproximate", viaOverride.X, exact.X)

	fastDirect, err := m.SolveColumn(context.Background(), q, WithApproximate(true))
	if err != nil {
		t.Fatal(err)
	}
	fastBoth, err := m.SolveColumn(context.Background(), q, WithApproximate(true), WithAcceleration(true))
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "approximate precedence over acceleration", fastBoth.X, fastDirect.X)
}

func TestParseQuality(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Quality
	}{{"", QualityDefault}, {"exact", QualityExact}, {"accelerated", QualityAccelerated}, {"fast", QualityFast}} {
		got, err := ParseQuality(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseQuality(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("Quality(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseQuality("best"); err == nil {
		t.Error("unknown quality accepted")
	}
}

// Interrupting an accelerated checkpointed run and resuming must work:
// snapshots hold only committed (vetted) state, the extrapolation
// history is deliberately not serialized, and the resumed run restarts
// from plain iteration, converging to the same predictions.
func TestAccelerationCheckpointResume(t *testing.T) {
	g := benchGraph(100)
	m := mustModel(t, g, accelConfig(false, 1))
	ref := m.RunContext(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	killed := m.RunContext(ctx, WithAcceleration(true),
		WithCheckpoint(sink, 5),
		WithProgress(func(class, iter int, rho float64) {
			if iter >= 25 {
				cancel()
			}
		}))
	cancel()
	if killed.Reason != ReasonCanceled {
		t.Fatalf("interrupted run reason %v", killed.Reason)
	}
	cp := reloop(t, sink.Last())
	// Snapshots carry committed iterates only: every value is a finite
	// probability even though extrapolated candidates were in flight.
	for _, v := range cp.X {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("checkpoint holds invalid value %v", v)
		}
	}

	resumed := m.RunContext(context.Background(), WithAcceleration(true), ResumeFrom(cp))
	if resumed.Reason != ref.Reason {
		t.Fatalf("resumed reason %v, want %v", resumed.Reason, ref.Reason)
	}
	for c := range resumed.Classes {
		if !resumed.Classes[c].Converged {
			t.Fatalf("resumed class %d did not converge", c)
		}
	}
	predictionsEqual(t, "resume", resumed, ref)
}

// Resume composes with the iterative tiers only: a fast query under
// ResumeFrom is a checkpoint mismatch, and WithApproximate on a resumed
// run is a programming error.
func TestResumeRejectsFastTier(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, ckConfig(false, 1))
	queries := []ColumnQuery{{Seeds: classSeeds(g, 0)}, {Seeds: classSeeds(g, 1)}}

	ctx, cancel := context.WithCancel(context.Background())
	sink := &MemorySink{}
	_, _ = m.SolveColumns(ctx, queries, WithCheckpoint(sink, 2),
		WithProgress(func(class, iter int, rho float64) {
			if iter >= 5 {
				cancel()
			}
		}))
	cancel()
	cp := reloop(t, sink.Last())

	queries[1].Quality = QualityFast
	_, err := m.SolveColumns(context.Background(), queries, ResumeFrom(cp))
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume with a fast query: %v, want ErrCheckpointMismatch", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("ResumeFrom + WithApproximate did not panic")
		}
	}()
	m.RunContext(context.Background(), ResumeFrom(cp), WithApproximate(true))
}

// ---------------------------------------------------------------------------
// Chaos: poisoned proposals must leave the run bitwise identical to plain
// iteration. ICA stays off so classes are independent — rejections then
// cannot couple columns, and per-class bitwise equality is exact however
// the rejections land.

// A NaN injected into every proposal dies at the propose-time simplex
// projection: no candidate is ever scattered, no pass is wasted, and the
// run is the plain run bit for bit.
func TestChaosAccelNaNProposalFallsBackBitwise(t *testing.T) {
	g := benchGraph(100)
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("workers=%d", workers)
		m := mustModel(t, g, accelConfig(false, workers))
		ref := m.RunContext(context.Background())

		remove := fault.Inject(fault.AccelPropose, func(args ...any) {
			args[0].([]float64)[0] = math.NaN()
		})
		var st RunStats
		res := m.RunContext(context.Background(), WithAcceleration(true), WithStats(&st))
		remove()

		if st.AccelProposed == 0 {
			t.Fatalf("%s: no proposals fired — nothing was chaos-tested", label)
		}
		if st.AccelAccepted != 0 || st.AccelRejected != st.AccelProposed {
			t.Errorf("%s: counters %d proposed / %d accepted / %d rejected, want all rejected",
				label, st.AccelProposed, st.AccelAccepted, st.AccelRejected)
		}
		assertResultsBitwise(t, label, res, ref)
	}
}

// A finite but worthless candidate (all mass on one node) survives the
// projection, is scattered into the block and rides a full vet pass; the
// monotone-residual vet rejects it, the pre-jump column is restored, and
// the run still finishes bitwise identical to plain — the rejected pass
// committed nothing.
func TestChaosAccelGarbageProposalRejectedInLoop(t *testing.T) {
	g := benchGraph(100)
	for _, workers := range []int{1, 4} {
		label := fmt.Sprintf("workers=%d", workers)
		m := mustModel(t, g, accelConfig(false, workers))
		ref := m.RunContext(context.Background())

		remove := fault.Inject(fault.AccelPropose, func(args ...any) {
			cand, n := args[0].([]float64), args[1].(int)
			for i := range cand {
				cand[i] = 0
			}
			cand[0] = 1 // x: all mass on node 0
			cand[n] = 1 // z: all mass on relation 0
		})
		var st RunStats
		res := m.RunContext(context.Background(), WithAcceleration(true), WithStats(&st))
		remove()

		if st.AccelProposed == 0 {
			t.Fatalf("%s: no proposals fired", label)
		}
		if st.AccelAccepted != 0 {
			t.Errorf("%s: %d garbage candidates accepted", label, st.AccelAccepted)
		}
		if st.AccelRejected != st.AccelProposed {
			t.Errorf("%s: %d proposed but %d rejected", label, st.AccelProposed, st.AccelRejected)
		}
		assertResultsBitwise(t, label, res, ref)
	}
}

// The same garbage injection through the batched column solver: each
// accelerated query falls back to its plain trajectory, bitwise.
func TestChaosAccelColumnsFallBackBitwise(t *testing.T) {
	g := queryGraph()
	m := mustModel(t, g, accelConfig(false, 2))
	queries := []ColumnQuery{
		{Seeds: classSeeds(g, 0), Quality: QualityAccelerated},
		{Seeds: classSeeds(g, 1)},
		{Seeds: classSeeds(g, 2), Quality: QualityAccelerated},
	}
	plain := make([]ColumnQuery, len(queries))
	for i, q := range queries {
		q.Quality = QualityExact
		plain[i] = q
	}
	ref, err := m.SolveColumns(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}

	remove := fault.Inject(fault.AccelPropose, func(args ...any) {
		cand, n := args[0].([]float64), args[1].(int)
		for i := range cand {
			cand[i] = 0
		}
		cand[0], cand[n] = 1, 1
	})
	defer remove()
	out, err := m.SolveColumns(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Iterations != ref[i].Iterations || out[i].Converged != ref[i].Converged {
			t.Errorf("query %d: %d/%v vs plain %d/%v iterations/converged",
				i, out[i].Iterations, out[i].Converged, ref[i].Iterations, ref[i].Converged)
		}
		sameVec(t, fmt.Sprintf("query %d X", i), out[i].X, ref[i].X)
		sameVec(t, fmt.Sprintf("query %d Z", i), out[i].Z, ref[i].Z)
		sameVec(t, fmt.Sprintf("query %d trace", i), out[i].Trace, ref[i].Trace)
	}
}
