package tmark

// The substrate door for the artifact store (internal/artifact): a
// built Model is, beyond its hyper-parameters, exactly the normalised
// transition tensors O and R plus the optional feature channel W — all
// immutable once constructed. Substrate exposes those parts for
// serialisation and Assemble rebuilds a Model around externally
// constructed parts (typically views into a memory-mapped artifact)
// without paying the normalisation cost New incurs: no adjacency-tensor
// build, no cosine matrix, no counting sorts.

import (
	"errors"
	"fmt"

	"tmark/internal/hin"
	"tmark/internal/sparse"
	"tmark/internal/tensor"
	"tmark/internal/vec"
)

// HashConfig returns the FNV-1a identity of the arithmetic-relevant
// Config fields — the same hash checkpoints embed and artifacts store,
// exposed at package level so the artifact codec can stamp and verify
// it without a built Model.
func HashConfig(c Config) uint64 { return c.checkpointHash() }

// Substrate is the compiled, immutable heart of a Model: what an
// artifact stores and what Assemble consumes. Exactly one of WDense and
// WCSR is non-nil when the config's feature channel is active
// (Gamma > 0); both are nil otherwise.
type Substrate struct {
	O           *tensor.NodeTransition
	R           *tensor.RelationTransition
	WDense      *vec.Matrix
	WCSR        *sparse.Matrix
	Irreducible bool
}

// Substrate exposes the model's compiled parts for serialisation. The
// returned tensors and matrices alias the model's own storage and must
// not be mutated.
func (m *Model) Substrate() Substrate {
	s := Substrate{O: m.o, R: m.r, Irreducible: m.irreducible}
	switch w := m.w.(type) {
	case *vec.Matrix:
		s.WDense = w
	case *sparse.Matrix:
		s.WCSR = w
	case nil:
	default:
		// matvec has exactly the two implementations above; a third would
		// need artifact codec support before it can be serialised.
		panic(fmt.Sprintf("tmark: unknown feature-channel type %T", m.w))
	}
	return s
}

// Assemble builds a Model directly from compiled parts, skipping the
// normalisation work New performs. The graph supplies dimensions, label
// seeds and display names; its Relations need no edges (an artifact
// does not store them), so g.Validate() is deliberately not required —
// only the structural agreement between graph and substrate is checked.
// The substrate parts are aliased, not copied: they must stay immutable
// for the model's lifetime, exactly as New's own products do.
func Assemble(g *hin.Graph, cfg Config, s Substrate) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g == nil || s.O == nil || s.R == nil {
		return nil, errors.New("tmark: Assemble needs a graph and both transition tensors")
	}
	if g.Q() == 0 {
		return nil, errors.New("tmark: graph has no classes")
	}
	anyLabel := false
	for i := 0; i < g.N(); i++ {
		if g.Labeled(i) {
			anyLabel = true
			break
		}
	}
	if !anyLabel {
		return nil, errors.New("tmark: graph has no labelled nodes")
	}
	if s.O.N() != g.N() || s.O.M() != g.M() {
		return nil, fmt.Errorf("tmark: O is %dx%d, graph %dx%d", s.O.N(), s.O.M(), g.N(), g.M())
	}
	if s.R.N() != g.N() || s.R.M() != g.M() {
		return nil, fmt.Errorf("tmark: R is %dx%d, graph %dx%d", s.R.N(), s.R.M(), g.N(), g.M())
	}
	if s.WDense != nil && s.WCSR != nil {
		return nil, errors.New("tmark: both dense and CSR feature channels supplied")
	}
	m := &Model{graph: g, cfg: cfg, o: s.O, r: s.R, irreducible: s.Irreducible}
	if cfg.Gamma > 0 {
		switch {
		case s.WDense != nil:
			if s.WDense.Rows != g.N() || s.WDense.Cols != g.N() {
				return nil, fmt.Errorf("tmark: dense W is %dx%d, want %dx%d", s.WDense.Rows, s.WDense.Cols, g.N(), g.N())
			}
			m.w = s.WDense
		case s.WCSR != nil:
			rows, cols := s.WCSR.Dims()
			if rows != g.N() || cols != g.N() {
				return nil, fmt.Errorf("tmark: CSR W is %dx%d, want %dx%d", rows, cols, g.N(), g.N())
			}
			m.w = s.WCSR
		default:
			return nil, fmt.Errorf("tmark: Gamma %v needs a feature channel but the substrate has none", cfg.Gamma)
		}
	}
	return m, nil
}
