package tmark

// Checkpoint/resume for the blocked lockstep solvers. Every K iterations
// the batched loop snapshots its entire working set — the interleaved
// x/z blocks, the live-column map, the per-class verdicts, iteration
// counters, restart vectors and residual traces — into a Checkpoint,
// and a later run started with ResumeFrom continues bitwise identically
// to the uninterrupted run: the loop restarts at the snapshot's
// iteration with the exact floats the original run held, and every
// kernel is deterministic for a fixed worker count.
//
// Binary format (little-endian), versioned and checksummed:
//
//	magic   "TMARKCP1"                            8 bytes
//	kind    uint8      1 = class run, 2 = column run
//	cfgHash uint64     FNV-1a over the arithmetic Config fields
//	n, m, q uint32     dimensions (q = class or query count)
//	iter    uint32     completed lockstep iterations
//	b       uint32     active (non-retired) column count
//	classOf b × uint32 active column -> class/query index, ascending
//	state   q × uint8  0 = active, 1 = converged, 2 = stopped
//	iters   q × uint32 per-class iteration counts
//	seeds   q × uint32 per-class restart-set sizes
//	x       n·b float64  active node block, stride b
//	z       m·b float64  active link block, stride b
//	l       q·n float64  restart vectors, row-major
//	outs    per retired class: n + m float64 (final x̄, z̄)
//	trace   Σ iters[c] float64, class-major
//	crc     uint64     crc64/ECMA over everything above
//
// The trace lengths are derivable (len(trace[c]) == iters[c]) so they
// are not stored. The config hash deliberately excludes Workers: the
// worker count is a deployment knob, not part of the problem, so a
// checkpoint written on an 8-core box resumes on a 4-core one — the
// result then differs from the original by shard-reduction rounding
// exactly as any fresh run with a different Workers value would.
// DecodeCheckpoint is strict: it validates the checksum, every length
// and every structural invariant, never panics on hostile input, and
// never allocates more than a small multiple of the input size.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint kinds: which lockstep loop wrote the snapshot.
const (
	ckKindClasses uint8 = 1 // RunContext / RunWarmContext batched run
	ckKindColumns uint8 = 2 // SolveColumns batched run
)

var ckMagic = [8]byte{'T', 'M', 'A', 'R', 'K', 'C', 'P', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCheckpointMismatch reports a checkpoint that decoded cleanly but
// does not belong to the model or call it was offered to.
var ErrCheckpointMismatch = errors.New("tmark: checkpoint does not match model")

// Checkpoint is one recoverable snapshot of a batched lockstep solve.
// All slices are owned by the checkpoint (deep copies of the solver
// state), so a snapshot stays valid while the run continues.
type Checkpoint struct {
	ConfigHash uint64
	Kind       uint8
	N, M, Q    int // dimensions; Q counts classes (kind 1) or queries (kind 2)
	Iter       int // completed lockstep iterations
	B          int // active columns at snapshot time

	ClassOf []int   // len B: active column -> class/query index, ascending
	State   []uint8 // len Q: 0 active, 1 retired-converged, 2 retired-stopped
	Iters   []int   // len Q
	Seeds   []int   // len Q
	X, Z    []float64
	L       []float64   // Q×N row-major restart vectors
	XOut    [][]float64 // len Q; non-nil exactly when State[c] != 0
	ZOut    [][]float64
	Trace   [][]float64 // len Q; len(Trace[c]) == Iters[c]
}

// checkpointHash folds the arithmetic-relevant Config fields into the
// identity a checkpoint is validated against. Workers is excluded (see
// the package comment on resuming across worker counts).
func (c Config) checkpointHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	put(math.Float64bits(c.Alpha))
	put(math.Float64bits(c.Gamma))
	put(math.Float64bits(c.Lambda))
	put(math.Float64bits(c.Epsilon))
	put(uint64(c.MaxIterations))
	if c.ICAUpdate {
		put(1)
	} else {
		put(0)
	}
	put(uint64(c.FeatureTopK))
	return h.Sum64()
}

// ConfigHash returns the identity the model's checkpoints carry; two
// models agree on it exactly when their arithmetic-relevant parameters
// (everything but Workers) agree.
func (m *Model) ConfigHash() uint64 { return m.cfg.checkpointHash() }

// Encode serialises the checkpoint into the versioned, checksummed
// binary format.
func (cp *Checkpoint) Encode() []byte {
	size := 8 + 1 + 8 + 5*4 + len(cp.ClassOf)*4 + cp.Q + 2*cp.Q*4 +
		(len(cp.X)+len(cp.Z)+len(cp.L))*8 + 8
	for c := 0; c < cp.Q; c++ {
		if cp.State[c] != 0 {
			size += (cp.N + cp.M) * 8
		}
		size += len(cp.Trace[c]) * 8
	}
	buf := make([]byte, 0, size)
	buf = append(buf, ckMagic[:]...)
	buf = append(buf, cp.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, cp.ConfigHash)
	for _, v := range []int{cp.N, cp.M, cp.Q, cp.Iter, cp.B} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range cp.ClassOf {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = append(buf, cp.State...)
	for _, v := range cp.Iters {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range cp.Seeds {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = appendFloats(buf, cp.X)
	buf = appendFloats(buf, cp.Z)
	buf = appendFloats(buf, cp.L)
	for c := 0; c < cp.Q; c++ {
		if cp.State[c] != 0 {
			buf = appendFloats(buf, cp.XOut[c])
			buf = appendFloats(buf, cp.ZOut[c])
		}
	}
	for c := 0; c < cp.Q; c++ {
		buf = appendFloats(buf, cp.Trace[c])
	}
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf
}

func appendFloats(buf []byte, fs []float64) []byte {
	for _, f := range fs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// ckReader is the strict sequential decoder state: every read checks
// the remaining length first, so a hostile length field can never drive
// an allocation past the input size.
type ckReader struct {
	data []byte
	off  int
}

func (r *ckReader) remaining() int { return len(r.data) - r.off }

func (r *ckReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("tmark: checkpoint truncated at offset %d (need %d, have %d)", r.off, n, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *ckReader) u32() (int, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

func (r *ckReader) u32s(n int) ([]int, error) {
	b, err := r.bytes(4 * n)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (r *ckReader) floats(n int) ([]float64, error) {
	b, err := r.bytes(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// DecodeCheckpoint parses and validates a serialised checkpoint. It
// returns an error — never panics, never returns partially-filled
// state — on truncation, checksum mismatch, unknown version, or any
// violated structural invariant.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 8+1+8+5*4+8 {
		return nil, fmt.Errorf("tmark: checkpoint too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if got, want := binary.LittleEndian.Uint64(tail), crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("tmark: checkpoint checksum mismatch (stored %016x, computed %016x)", got, want)
	}
	r := &ckReader{data: body}
	magic, _ := r.bytes(8)
	if [8]byte(magic) != ckMagic {
		return nil, fmt.Errorf("tmark: not a checkpoint (magic %q, want %q)", magic, ckMagic[:])
	}
	kindB, _ := r.bytes(1)
	cp := &Checkpoint{Kind: kindB[0]}
	if cp.Kind != ckKindClasses && cp.Kind != ckKindColumns {
		return nil, fmt.Errorf("tmark: checkpoint kind %d unknown", cp.Kind)
	}
	hashB, _ := r.bytes(8)
	cp.ConfigHash = binary.LittleEndian.Uint64(hashB)
	var err error
	if cp.N, err = r.u32(); err != nil {
		return nil, err
	}
	if cp.M, err = r.u32(); err != nil {
		return nil, err
	}
	if cp.Q, err = r.u32(); err != nil {
		return nil, err
	}
	if cp.Iter, err = r.u32(); err != nil {
		return nil, err
	}
	if cp.B, err = r.u32(); err != nil {
		return nil, err
	}
	if cp.Q < 1 || cp.B < 0 || cp.B > cp.Q || cp.N < 1 {
		return nil, fmt.Errorf("tmark: checkpoint dimensions n=%d m=%d q=%d b=%d invalid", cp.N, cp.M, cp.Q, cp.B)
	}
	if cp.ClassOf, err = r.u32s(cp.B); err != nil {
		return nil, err
	}
	stateB, err := r.bytes(cp.Q)
	if err != nil {
		return nil, err
	}
	cp.State = append([]uint8(nil), stateB...)
	if cp.Iters, err = r.u32s(cp.Q); err != nil {
		return nil, err
	}
	if cp.Seeds, err = r.u32s(cp.Q); err != nil {
		return nil, err
	}

	// Structural invariants before the large float sections: the active
	// columns must list exactly the classes with state 0, ascending.
	prev := -1
	for _, c := range cp.ClassOf {
		if c <= prev || c >= cp.Q {
			return nil, fmt.Errorf("tmark: checkpoint active column list %v malformed", cp.ClassOf)
		}
		if cp.State[c] != 0 {
			return nil, fmt.Errorf("tmark: checkpoint lists retired class %d as active", c)
		}
		prev = c
	}
	activeCount := 0
	for c, s := range cp.State {
		switch s {
		case 0:
			activeCount++
		case 1, 2:
		default:
			return nil, fmt.Errorf("tmark: checkpoint class %d has unknown state %d", c, s)
		}
		if cp.Iters[c] > cp.Iter {
			return nil, fmt.Errorf("tmark: checkpoint class %d iterations %d exceed run iteration %d", c, cp.Iters[c], cp.Iter)
		}
	}
	if activeCount != cp.B {
		return nil, fmt.Errorf("tmark: checkpoint has %d active classes but %d active columns", activeCount, cp.B)
	}

	if cp.X, err = r.floats(cp.N * cp.B); err != nil {
		return nil, err
	}
	if cp.Z, err = r.floats(cp.M * cp.B); err != nil {
		return nil, err
	}
	if cp.L, err = r.floats(cp.Q * cp.N); err != nil {
		return nil, err
	}
	cp.XOut = make([][]float64, cp.Q)
	cp.ZOut = make([][]float64, cp.Q)
	for c := 0; c < cp.Q; c++ {
		if cp.State[c] == 0 {
			continue
		}
		if cp.XOut[c], err = r.floats(cp.N); err != nil {
			return nil, err
		}
		if cp.ZOut[c], err = r.floats(cp.M); err != nil {
			return nil, err
		}
	}
	cp.Trace = make([][]float64, cp.Q)
	for c := 0; c < cp.Q; c++ {
		if cp.Trace[c], err = r.floats(cp.Iters[c]); err != nil {
			return nil, err
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("tmark: checkpoint has %d trailing bytes", r.remaining())
	}
	return cp, nil
}

// ValidateCheckpoint reports whether the checkpoint can resume a class
// run on this model: matching kind, dimensions and config hash. Column
// checkpoints are validated by SolveColumns against the resubmitted
// query set instead.
func (m *Model) ValidateCheckpoint(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("%w: nil checkpoint", ErrCheckpointMismatch)
	}
	if cp.Kind != ckKindClasses {
		return fmt.Errorf("%w: kind %d is not a class-run checkpoint", ErrCheckpointMismatch, cp.Kind)
	}
	if cp.N != m.graph.N() || cp.M != m.graph.M() || cp.Q != m.graph.Q() {
		return fmt.Errorf("%w: checkpoint %dx%dx%d, model %dx%dx%d",
			ErrCheckpointMismatch, cp.N, cp.M, cp.Q, m.graph.N(), m.graph.M(), m.graph.Q())
	}
	if cp.ConfigHash != m.cfg.checkpointHash() {
		return fmt.Errorf("%w: config hash %016x, model %016x",
			ErrCheckpointMismatch, cp.ConfigHash, m.cfg.checkpointHash())
	}
	if cp.Iter >= m.cfg.MaxIterations && cp.B > 0 {
		return fmt.Errorf("%w: checkpoint already at the iteration cap (%d)", ErrCheckpointMismatch, cp.Iter)
	}
	return nil
}

// SaveFile writes the checkpoint atomically: the encoding lands in a
// temporary file in the target directory and is renamed into place, so
// a crash mid-write never leaves a truncated checkpoint at path.
func (cp *Checkpoint) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmark-ckpt-*")
	if err != nil {
		return fmt.Errorf("tmark: checkpoint save: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(cp.Encode())
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("tmark: checkpoint save: %w", werr)
	}
	return nil
}

// LoadCheckpointFile reads and decodes a checkpoint written by SaveFile
// or a DirSink.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tmark: checkpoint load: %w", err)
	}
	return DecodeCheckpoint(data)
}

// CheckpointSink receives snapshots from a running solve. Save is
// called on the solver goroutine with a fully-owned checkpoint (the
// sink may retain it); a slow sink therefore stalls the solve, so
// sinks that do real I/O should stay cheap or hand off internally.
type CheckpointSink interface {
	Save(cp *Checkpoint) error
}

// DirSink persists each snapshot atomically to Name (default
// "run.ckpt") inside Dir, always keeping only the latest checkpoint.
type DirSink struct {
	Dir  string
	Name string
}

// Path returns the file the sink writes.
func (d DirSink) Path() string {
	name := d.Name
	if name == "" {
		name = "run.ckpt"
	}
	return filepath.Join(d.Dir, name)
}

// Save implements CheckpointSink.
func (d DirSink) Save(cp *Checkpoint) error { return cp.SaveFile(d.Path()) }

// MemorySink retains the most recent checkpoint in memory; tests and
// the in-process retry path use it.
type MemorySink struct {
	mu   sync.Mutex
	last *Checkpoint
}

// Save implements CheckpointSink.
func (s *MemorySink) Save(cp *Checkpoint) error {
	s.mu.Lock()
	s.last = cp
	s.mu.Unlock()
	return nil
}

// Last returns the most recently saved checkpoint, or nil.
func (s *MemorySink) Last() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}
