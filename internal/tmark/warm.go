package tmark

import (
	"fmt"

	"tmark/internal/vec"
)

// RunWarm solves the tensor equations starting from a previous solution
// instead of the seed vectors. When labels are added or removed
// incrementally — the streaming-classification setting — the previous
// stationary distributions are near the new ones and the iteration
// converges in a fraction of the cold-start iterations. The previous
// result must match this model's dimensions; class counts may differ
// (new classes start cold).
func (m *Model) RunWarm(prev *Result) *Result {
	if prev == nil {
		return m.Run()
	}
	if prev.n != m.graph.N() || prev.m != m.graph.M() {
		panic(fmt.Sprintf("tmark: RunWarm dimension mismatch: prev %dx%d, graph %dx%d",
			prev.n, prev.m, m.graph.N(), m.graph.M()))
	}
	q := m.graph.Q()
	res := &Result{
		Classes: make([]ClassResult, q),
		n:       m.graph.N(),
		m:       m.graph.M(),
		q:       q,
	}
	warm := func(c int) (x, z vec.Vector, ok bool) {
		if c >= len(prev.Classes) {
			return nil, nil, false
		}
		pc := &prev.Classes[c]
		if len(pc.X) != res.n || len(pc.Z) != res.m {
			return nil, nil, false
		}
		return vec.Clone(pc.X), vec.Clone(pc.Z), true
	}

	rs := m.newRunScratch()
	defer rs.close()
	if m.cfg.ICAUpdate {
		m.runLockstepFrom(res, warm, rs)
		return res
	}
	for c := 0; c < q; c++ {
		x, z, ok := warm(c)
		if !ok {
			res.Classes[c] = m.solveClass(c, rs)
			continue
		}
		res.Classes[c] = m.solveClassFrom(c, x, z, rs)
	}
	return res
}

// solveClassFrom is solveClass with explicit starting vectors.
func (m *Model) solveClassFrom(c int, x, z vec.Vector, rs *runScratch) ClassResult {
	l, seeds := m.seedVector(c)
	s := classState{
		x: x, z: z, l: l,
		xNext: vec.New(m.graph.N()), zNext: vec.New(m.graph.M()), tmp: vec.New(m.graph.N()),
		seeds: seeds,
	}
	cr := ClassResult{Class: c, Seeds: seeds}
	for t := 1; t <= m.cfg.MaxIterations; t++ {
		if m.cfg.ICAUpdate && t > 2 {
			m.icaReseed(c, s.x, s.l)
		}
		rho := m.step(&s, rs)
		cr.Trace = append(cr.Trace, rho)
		cr.Iterations = t
		if rho < m.cfg.Epsilon {
			cr.Converged = true
			break
		}
	}
	cr.X, cr.Z = s.x, s.z
	cr.Restart = s.l
	return cr
}

// runLockstepFrom is runLockstep with per-class warm starting vectors.
func (m *Model) runLockstepFrom(res *Result, warm func(c int) (vec.Vector, vec.Vector, bool), rs *runScratch) {
	n, mm, q := m.graph.N(), m.graph.M(), m.graph.Q()
	states := make([]classState, q)
	for c := 0; c < q; c++ {
		l, seeds := m.seedVector(c)
		x, z, ok := warm(c)
		if !ok {
			x, z = vec.Clone(l), vec.Uniform(mm)
		}
		states[c] = classState{
			x: x, z: z, l: l,
			xNext: vec.New(n), zNext: vec.New(mm), tmp: vec.New(n),
			seeds: seeds,
		}
	}
	m.iterateLockstep(res, states, rs)
}
