package tmark

import (
	"context"
	"fmt"
	"math"

	"tmark/internal/vec"
)

// RunWarm solves the tensor equations starting from a previous solution
// instead of the seed vectors; it is RunWarmContext with a background
// context and no options. When labels are added or removed incrementally
// — the streaming-classification setting — the previous stationary
// distributions are near the new ones and the iteration converges in a
// fraction of the cold-start iterations. The previous result must match
// this model's dimensions; class counts may differ (new classes start
// cold).
func (m *Model) RunWarm(prev *Result) *Result {
	return m.RunWarmContext(context.Background(), prev)
}

// RunWarmContext is RunWarm with cancellation and per-run options; see
// RunContext for the contract of ctx, Result.Stopped and the RunOption
// set. A nil prev degrades to a cold RunContext.
func (m *Model) RunWarmContext(ctx context.Context, prev *Result, opts ...RunOption) *Result {
	if prev == nil {
		return m.RunContext(ctx, opts...)
	}
	if prev.n != m.graph.N() || prev.m != m.graph.M() {
		panic(fmt.Sprintf("tmark: RunWarm dimension mismatch: prev %dx%d, graph %dx%d",
			prev.n, prev.m, m.graph.N(), m.graph.M()))
	}
	n, mm := m.graph.N(), m.graph.M()
	ro := resolveOptions(opts)
	warm := func(c int) (x, z, l vec.Vector, ok bool) {
		if c >= len(prev.Classes) {
			return nil, nil, nil, false
		}
		pc := &prev.Classes[c]
		if len(pc.X) != n || len(pc.Z) != mm {
			return nil, nil, nil, false
		}
		if ro.eqRestart && m.cfg.ICAUpdate && len(pc.Restart) == n {
			l = m.reconcileRestart(c, pc.Restart)
		}
		return vec.Clone(pc.X), vec.Clone(pc.Z), l, true
	}
	return m.runClasses(orBackground(ctx), warm, ro)
}

// reconcileRestart rebuilds a previous equilibrium restart vector
// against the current labels: every current seed of class c is in, a
// previous pseudo-seed survives only while its node is still
// unlabelled. With unchanged labels this reproduces the previous
// equilibrium exactly; after a label change it degrades gracefully to
// the consistent subset. Only meaningful under ICAUpdate — without the
// reseed, l is the problem definition and must stay the seed vector —
// so callers gate on the config. Returns nil (cold restart) when the
// reconciled set is empty.
func (m *Model) reconcileRestart(c int, prev vec.Vector) vec.Vector {
	l := vec.New(len(prev))
	count := 0
	for i := range prev {
		accept := m.graph.HasLabel(i, c)
		if !accept && prev[i] > 0 && !m.graph.Labeled(i) {
			accept = true
		}
		if accept {
			l[i] = 1
			count++
		}
	}
	if count == 0 {
		return nil
	}
	vec.Scale(1/float64(count), l)
	return l
}

// solveClassFrom iterates one class from explicit starting vectors. A
// non-nil wl replaces the seed restart vector (warm equilibrium
// restart); the seed count still reports the labelled set. The context
// is checked before every iteration, so a cancelled run returns the
// state reached so far (at worst the starting vectors themselves) with
// zero or more iterations recorded.
func (m *Model) solveClassFrom(ctx context.Context, c int, x, z, wl vec.Vector, rs *runScratch) ClassResult {
	l, seeds := m.seedVector(c)
	if wl != nil {
		l = wl
	}
	return m.solveClassSeeded(ctx, c, x, z, l, seeds, rs)
}

// solveClassSeeded is solveClassFrom with the restart vector already
// built, so the cold path (which derives its starting x from l) computes
// the seed vector once instead of twice.
func (m *Model) solveClassSeeded(ctx context.Context, c int, x, z, l vec.Vector, seeds int, rs *runScratch) ClassResult {
	s := classState{
		x: x, z: z, l: l,
		xNext: vec.New(m.graph.N()), zNext: vec.New(m.graph.M()), tmp: vec.New(m.graph.N()),
		seeds: seeds,
	}
	progress := rs.progressFn()
	cr := ClassResult{Class: c, Seeds: seeds}
	for t := 1; t <= m.cfg.MaxIterations; t++ {
		if ctx.Err() != nil {
			break
		}
		if m.cfg.ICAUpdate && t > 2 {
			rs.reseed(m.graph.N(), func() { m.icaReseed(c, s.x, s.l) })
		}
		rho := m.step(&s, rs)
		if math.IsNaN(rho) {
			// step discarded the corrupted iterate, so x/z hold the last
			// healthy iteration; the class stops there and the run reports
			// the fault.
			rs.faults = append(rs.faults, Fault{Class: c, Iter: t, Kind: faultNonFinite})
			regNumericalFaults.Inc()
			break
		}
		cr.Trace = append(cr.Trace, rho)
		cr.Iterations = t
		if progress != nil {
			progress(c, t, rho)
		}
		if rho < m.cfg.Epsilon {
			cr.Converged = true
			break
		}
	}
	cr.X, cr.Z = s.x, s.z
	cr.Restart = s.l
	return cr
}

// runLockstepFrom runs the sequential ICA lockstep loop, starting each
// class from its warm vectors when warm supplies them (a nil warm starts
// every class cold from its seed vector).
func (m *Model) runLockstepFrom(ctx context.Context, res *Result, warm warmFn, rs *runScratch) {
	n, mm, q := m.graph.N(), m.graph.M(), m.graph.Q()
	states := make([]classState, q)
	for c := 0; c < q; c++ {
		l, seeds := m.seedVector(c)
		var x, z, wl vec.Vector
		ok := false
		if warm != nil {
			x, z, wl, ok = warm(c)
		}
		if !ok {
			x, z = vec.Clone(l), vec.Uniform(mm)
		}
		if ok && wl != nil {
			l = wl
		}
		states[c] = classState{
			x: x, z: z, l: l,
			xNext: vec.New(n), zNext: vec.New(mm), tmp: vec.New(n),
			seeds: seeds,
		}
	}
	m.iterateLockstep(ctx, res, states, rs)
}
