package tmark

// The per-query (column) solve API of the serving layer. A ColumnQuery is
// one independent single-class solve: a restart vector (usually uniform
// over a caller-chosen seed set) iterated through eq. (10) and eq. (8)
// until convergence. Queries against the same model share O, R and W, so
// q concurrent queries can advance in lockstep through the blocked
// SpMM-style kernels of the batched solver — SolveColumns streams every
// tensor entry once per iteration and applies it to all q query columns,
// exactly like the multi-class Run does for the graph's own classes.
//
// Per column the batched SolveColumns is bitwise identical to the
// sequential SolveColumn for a fixed worker count: the blocked kernels
// accumulate each column in single-vector order, the per-column simplex
// projection and residual mirror vec.Normalize1/Diff1, and retirement
// (convergence or per-column cancellation) only removes a column's
// storage, never touching another column's arithmetic. Unlike the
// multi-class Run, queries are never coupled by the cross-class ICA
// reseed — eq. (12) is a statement about one prediction matrix over one
// label set, and independent queries share neither. A query may instead
// opt into a per-query self-training reseed (ColumnQuery.ICA) whose
// "labelled" set is the query's own seed set.
//
// Each column carries an optional context: the lockstep loop checks it
// every iteration and retires cancelled columns mid-batch (the same
// column compaction that retires converged classes), so one impatient
// caller never stops the rest of the batch. The run-level context still
// cancels every column at once.

import (
	"context"
	"fmt"
	"math"

	"tmark/internal/accel"
	"tmark/internal/vec"
)

// ColumnQuery describes one independent single-class solve against the
// model. Exactly one of Seeds and Restart must be set: Seeds lists the
// node indices of the query's restart set (the restart vector is uniform
// over them, like eq. (11)); Restart supplies the full-length vector
// directly (it is copied and L1-normalised; entries must be finite and
// non-negative with positive total mass).
type ColumnQuery struct {
	// Seeds are the node indices of the restart set; duplicates are
	// tolerated and count once.
	Seeds []int
	// Restart is an explicit restart vector of length n, overriding Seeds.
	Restart vec.Vector
	// ICA enables the per-query self-training reseed: after each
	// iteration (from t = 3, like Algorithm 1), non-seed nodes whose
	// score exceeds Lambda times the best non-seed score join the restart
	// set. The query's own seed set plays the role of the labelled set.
	ICA bool
	// Ctx, when non-nil, cancels this column alone: the lockstep loop
	// checks it every iteration and retires the column mid-batch with
	// ColumnResult.Stopped set, leaving the other columns untouched.
	Ctx context.Context
	// Quality selects this query's solve tier, overriding the run
	// options: exact iteration, the extrapolated power method (identical
	// answers, fewer committed iterations), or the linearized fast tier
	// (approximate, one sparse solve). The zero value inherits the run's
	// WithAcceleration / WithApproximate settings. Tiers mix freely
	// within one SolveColumns batch: fast queries solve through the
	// collapsed linear system while the rest advance through the lockstep
	// block.
	Quality Quality
	// Warm seeds the iteration from a previous stationary state: X
	// replaces the cold x₀ = l start and Z the uniform z₀. Under a small
	// perturbation of the model the power method re-converges from the
	// previous (x̄, z̄) in a handful of iterations, and the fixed point —
	// hence every guard and golden tripwire — is the cold solve's.
	// Ignored by the linearized fast tier (a one-shot solve has no
	// iteration to seed) and by checkpoint resume (the checkpoint holds
	// the iterate).
	Warm *WarmStart
}

// WarmStart is a previous stationary state used to seed a ColumnQuery.
// Both vectors are required, copied, and validated (finite,
// non-negative, positive total mass); they are used as-is, without
// renormalisation, so a converged (x̄, z̄) re-enters the iteration with
// the exact bytes it converged to.
type WarmStart struct {
	X vec.Vector // length n
	Z vec.Vector // length m
}

// ColumnResult is the stationary solution of one query column. X scores
// the nodes and Z ranks the link types for the query's class, exactly
// like a ClassResult.
type ColumnResult struct {
	X vec.Vector // stationary node distribution x̄ (length n)
	Z vec.Vector // stationary relation distribution z̄ (length m)
	// Restart is the final restart vector — the seeds plus any pseudo-
	// seeds a per-query ICA reseed accepted.
	Restart    vec.Vector
	Seeds      int // restart-set size of the query
	Iterations int
	Converged  bool
	Trace      []float64 // ρ_t after each iteration
	// Stopped is nil when the column converged or hit the iteration cap,
	// and the context error when the column was cancelled (by its own
	// Ctx or the run context). A stopped column holds the state of the
	// last completed iteration, which remains a usable partial solution.
	Stopped error
}

// columnState is one validated query: the restart vector, the seed mask
// of the per-query reseed (nil when ICA is off), the column context,
// and the resolved solve tier.
type columnState struct {
	l       vec.Vector
	isSeed  []bool
	ctx     context.Context
	seeds   int
	quality Quality // resolved: never QualityDefault after SolveColumns

	// warmX/warmZ replace the cold start when non-nil (both or neither).
	warmX, warmZ vec.Vector
}

// buildColumnState validates one query against the model's dimensions
// and materialises its restart vector. The seed path performs exactly
// the arithmetic of seedVector (ones, then one reciprocal scale), so a
// query whose seed set equals class c's labelled set reproduces class
// c's restart vector bitwise.
func (m *Model) buildColumnState(q ColumnQuery) (columnState, error) {
	n := m.graph.N()
	cs := columnState{ctx: q.Ctx}
	switch {
	case q.Restart != nil:
		if len(q.Restart) != n {
			return cs, fmt.Errorf("tmark: query restart vector length %d, want %d", len(q.Restart), n)
		}
		l := vec.New(n)
		for i, v := range q.Restart {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return cs, fmt.Errorf("tmark: query restart[%d] = %v must be finite and non-negative", i, v)
			}
			if v > 0 {
				cs.seeds++
			}
			l[i] = v
		}
		if !vec.Normalize1(l) {
			return cs, fmt.Errorf("tmark: query restart vector has no mass")
		}
		cs.l = l
	case len(q.Seeds) > 0:
		l := vec.New(n)
		for _, s := range q.Seeds {
			if s < 0 || s >= n {
				return cs, fmt.Errorf("tmark: query seed %d out of range %d", s, n)
			}
			if l[s] == 0 {
				cs.seeds++
			}
			l[s] = 1
		}
		vec.Scale(1/float64(cs.seeds), l)
		cs.l = l
	default:
		return cs, fmt.Errorf("tmark: query needs seeds or a restart vector")
	}
	if q.ICA {
		cs.isSeed = make([]bool, n)
		for i, v := range cs.l {
			if v > 0 {
				cs.isSeed[i] = true
			}
		}
	}
	if q.Warm != nil {
		mm := m.graph.M()
		if len(q.Warm.X) != n || len(q.Warm.Z) != mm {
			return cs, fmt.Errorf("tmark: query warm start %dx%d, want %dx%d",
				len(q.Warm.X), len(q.Warm.Z), n, mm)
		}
		wx, wz := vec.Clone(q.Warm.X), vec.Clone(q.Warm.Z)
		var massX, massZ float64
		for i, v := range wx {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return cs, fmt.Errorf("tmark: query warm x[%d] = %v must be finite and non-negative", i, v)
			}
			massX += v
		}
		for k, v := range wz {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return cs, fmt.Errorf("tmark: query warm z[%d] = %v must be finite and non-negative", k, v)
			}
			massZ += v
		}
		if massX <= 0 || massZ <= 0 {
			return cs, fmt.Errorf("tmark: query warm start has no mass")
		}
		cs.warmX, cs.warmZ = wx, wz
	}
	return cs, nil
}

// columnErr returns the first pending cancellation of the run context or
// the column's own context.
func columnErr(runCtx, colCtx context.Context) error {
	if err := runCtx.Err(); err != nil {
		return err
	}
	if colCtx != nil {
		if err := colCtx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// queryReseed is the per-query self-training reseed shared by the
// sequential and batched column paths: non-seed node i joins the restart
// set when its score clears λ times the best non-seed score. at reads
// the column's current score of node i, so both layouts (vector and
// blocked) run the identical float comparisons and the identical
// renormalisation.
func queryReseed(lambda float64, isSeed []bool, at func(i int) float64, l vec.Vector) {
	maxFree := 0.0
	for i := range l {
		if v := at(i); !isSeed[i] && v > maxFree {
			maxFree = v
		}
	}
	threshold := lambda * maxFree
	count := 0
	for i := range l {
		accept := isSeed[i]
		if !accept && maxFree > 0 {
			accept = at(i) > threshold
		}
		if accept {
			l[i] = 1
			count++
		} else {
			l[i] = 0
		}
	}
	if count == 0 {
		vec.Fill(l, 1/float64(len(l)))
		return
	}
	vec.Scale(1/float64(count), l)
}

// SolveColumn solves one query through the sequential single-vector
// kernels — the reference path of SolveColumns. The run context and the
// query's own context are both checked before every iteration; a
// cancelled solve returns the state of the last completed iteration with
// Stopped set. A nil ctx is treated as context.Background().
func (m *Model) SolveColumn(ctx context.Context, q ColumnQuery, opts ...RunOption) (ColumnResult, error) {
	ctx = orBackground(ctx)
	cs, err := m.buildColumnState(q)
	if err != nil {
		return ColumnResult{}, err
	}
	ro := resolveOptions(opts)
	ro.sequential = true
	cs.quality = q.Quality.resolve(ro)
	if cs.quality == QualityAccelerated && ro.resume == nil {
		// The extrapolated vet pass lives in the blocked lockstep loop, so
		// an accelerated query runs as a batch of one — the per-column
		// trajectory is batch-size-invariant, making the solo result
		// bitwise identical to the same query inside any SolveColumns
		// batch. (A resumed solo query stays on the sequential reference
		// path, where acceleration degrades to exact iteration.)
		ro.sequential = false
		rs := m.newRunScratchCols(ro, 1)
		defer rs.close()
		out := make([]ColumnResult, 1)
		m.iterateColumns(ctx, []columnState{cs}, out, rs)
		return out[0], nil
	}
	rs := m.newRunScratchCols(ro, 1)
	defer rs.close()
	if cs.quality == QualityFast {
		return m.solveFastColumn(ctx, cs, rs.linScratch(), rs), nil
	}
	return m.solveColumnSeq(ctx, 0, cs, rs), nil
}

// solveColumnSeq iterates one validated query with the single-vector
// kernels, mirroring solveClassSeeded step for step (ctx check, reseed
// from t = 3, step, trace, convergence test).
func (m *Model) solveColumnSeq(ctx context.Context, idx int, cs columnState, rs *runScratch) ColumnResult {
	x0, z0 := cs.l, vec.Uniform(m.graph.M())
	if cs.warmX != nil {
		x0, z0 = cs.warmX, cs.warmZ
	}
	s := classState{
		x: vec.Clone(x0), z: vec.Clone(z0), l: cs.l,
		xNext: vec.New(m.graph.N()), zNext: vec.New(m.graph.M()), tmp: vec.New(m.graph.N()),
		seeds: cs.seeds,
	}
	progress := rs.progressFn()
	cr := ColumnResult{Seeds: cs.seeds}
	for t := 1; t <= m.cfg.MaxIterations; t++ {
		if err := columnErr(ctx, cs.ctx); err != nil {
			cr.Stopped = err
			break
		}
		if cs.isSeed != nil && t > 2 {
			rs.reseed(m.graph.N(), func() {
				queryReseed(m.cfg.Lambda, cs.isSeed, func(i int) float64 { return s.x[i] }, s.l)
			})
		}
		rho := m.step(&s, rs)
		if math.IsNaN(rho) {
			// step discarded the corrupted iterate, so x/z hold the last
			// healthy iteration — the partial solution the stopped column
			// reports.
			regNumericalFaults.Inc()
			cr.Stopped = ErrNumericalFault
			break
		}
		cr.Trace = append(cr.Trace, rho)
		cr.Iterations = t
		if progress != nil {
			progress(idx, t, rho)
		}
		if rho < m.cfg.Epsilon {
			cr.Converged = true
			break
		}
	}
	cr.X, cr.Z, cr.Restart = s.x, s.z, s.l
	return cr
}

// SolveColumns solves the queries together through the blocked lockstep
// kernels: one n×q node block and one m×q link block advance per
// iteration, so every tensor entry and CSR row is streamed once and
// applied to all active query columns. Columns retire mid-batch when
// they converge or when their own context is cancelled; the run context
// cancels every remaining column at once. Per column the result is
// bitwise identical to SolveColumn on the same query for a fixed worker
// count; WithBatchedClasses(false) selects that sequential path
// column by column instead. Query validation errors fail the whole call
// before any solving happens.
func (m *Model) SolveColumns(ctx context.Context, queries []ColumnQuery, opts ...RunOption) ([]ColumnResult, error) {
	ctx = orBackground(ctx)
	if len(queries) == 0 {
		return nil, nil
	}
	ro := resolveOptions(opts)
	states := make([]columnState, len(queries))
	anyFast := false
	for i, q := range queries {
		cs, err := m.buildColumnState(q)
		if err != nil {
			return nil, fmt.Errorf("tmark: column %d: %w", i, err)
		}
		cs.quality = q.Quality.resolve(ro)
		anyFast = anyFast || cs.quality == QualityFast
		states[i] = cs
	}
	if cp := ro.resume; cp != nil {
		if ro.sequential {
			return nil, fmt.Errorf("%w: resume requires the batched path", ErrCheckpointMismatch)
		}
		if anyFast {
			return nil, fmt.Errorf("%w: resume requires iterative queries, not quality=fast", ErrCheckpointMismatch)
		}
		if err := m.validateColumnCheckpoint(cp, len(queries)); err != nil {
			return nil, err
		}
	}
	rs := m.newRunScratchCols(ro, len(queries))
	defer rs.close()
	out := make([]ColumnResult, len(queries))
	// Fast-tier queries never enter the iterative block: each is one
	// linear solve against the shared collapsed system.
	if anyFast {
		ms := rs.linScratch()
		for i := range states {
			if states[i].quality == QualityFast {
				out[i] = m.solveFastColumn(ctx, states[i], ms, rs)
			}
		}
	}
	if ro.sequential {
		for i := range states {
			if states[i].quality == QualityFast {
				continue
			}
			out[i] = m.solveColumnSeq(ctx, i, states[i], rs)
		}
		return out, nil
	}
	m.iterateColumns(ctx, states, out, rs)
	return out, nil
}

// validateColumnCheckpoint reports whether the checkpoint can resume a
// SolveColumns call over nq resubmitted queries on this model. The
// queries themselves must be resubmitted unchanged — the checkpoint
// stores their restart vectors and verdicts by position.
func (m *Model) validateColumnCheckpoint(cp *Checkpoint, nq int) error {
	if cp.Kind != ckKindColumns {
		return fmt.Errorf("%w: kind %d is not a column-run checkpoint", ErrCheckpointMismatch, cp.Kind)
	}
	if cp.N != m.graph.N() || cp.M != m.graph.M() {
		return fmt.Errorf("%w: checkpoint %dx%d, model %dx%d",
			ErrCheckpointMismatch, cp.N, cp.M, m.graph.N(), m.graph.M())
	}
	if cp.Q != nq {
		return fmt.Errorf("%w: checkpoint has %d query columns, call has %d", ErrCheckpointMismatch, cp.Q, nq)
	}
	if cp.ConfigHash != m.cfg.checkpointHash() {
		return fmt.Errorf("%w: config hash %016x, model %016x",
			ErrCheckpointMismatch, cp.ConfigHash, m.cfg.checkpointHash())
	}
	if cp.Iter >= m.cfg.MaxIterations && cp.B > 0 {
		return fmt.Errorf("%w: checkpoint already at the iteration cap (%d)", ErrCheckpointMismatch, cp.Iter)
	}
	return nil
}

// columnBlock is the working set of one batched column solve: the
// blocked iterates plus the active-column bookkeeping. colOf maps the
// active column to its query index; retirement compacts the block
// in place exactly like the multi-class batchRun.
type columnBlock struct {
	n, m  int
	b     int   // active column count
	colOf []int // column -> query index, ascending; len b
	x, z  []float64
	xn    []float64
	zn    []float64
	tmp   []float64
	keep  []int

	rhos []float64 // per-column residuals of the current iteration
	bad  []string  // per-column corruption verdicts ("" = healthy)
	best []float64 // per-query best residual seen (divergence guard)

	t0   int // completed iterations restored from a checkpoint
	done int // last completed iteration (snapshot cursor)
}

// retire gathers every column with a pending verdict (converged or
// stopped) into its final per-query vectors and left-packs the
// survivors, shrinking the active stride.
func (st *columnBlock) retire(out []ColumnResult, done func(i int) bool) {
	st.keep = st.keep[:0]
	for col := 0; col < st.b; col++ {
		i := st.colOf[col]
		if done(i) {
			x, z := vec.New(st.n), vec.New(st.m)
			vec.GatherCol(st.x, col, st.b, x)
			vec.GatherCol(st.z, col, st.b, z)
			out[i].X, out[i].Z = x, z
			continue
		}
		st.keep = append(st.keep, col)
	}
	if len(st.keep) == st.b {
		return
	}
	vec.CompactCols(st.x, st.n, st.b, st.keep)
	vec.CompactCols(st.z, st.m, st.b, st.keep)
	for nc, oc := range st.keep {
		st.colOf[nc] = st.colOf[oc]
	}
	st.b = len(st.keep)
	st.colOf = st.colOf[:st.b]
}

// iterateColumns is the blocked lockstep loop over query columns. The
// per-iteration order mirrors solveColumnSeq per column — cancellation
// check, per-query reseed from t = 3, the eq. (10)/(8) step — so column
// c stays bitwise equal to its sequential solve.
//
// Numerical faults are isolated per column: the kernels never mix
// columns, so a corrupted column retires with its last healthy state and
// Stopped = ErrNumericalFault while the rest of the batch carries on —
// one poisoned query never spoils its batchmates.
func (m *Model) iterateColumns(ctx context.Context, states []columnState, out []ColumnResult, rs *runScratch) {
	n, mm := m.graph.N(), m.graph.M()
	nq := len(states)
	// Fast-tier queries were answered through the linear solve before
	// this loop; only the iterative queries enter the block.
	iterQ := make([]int, 0, nq)
	for i := range states {
		if states[i].quality != QualityFast {
			iterQ = append(iterQ, i)
		}
	}
	nb := len(iterQ)
	if nb == 0 {
		return
	}
	st := &columnBlock{
		n: n, m: mm, b: nb,
		colOf: make([]int, nb),
		x:     make([]float64, n*nb),
		z:     make([]float64, mm*nb),
		xn:    make([]float64, n*nb),
		zn:    make([]float64, mm*nb),
		tmp:   make([]float64, n*nb),
		keep:  make([]int, 0, nb),
		rhos:  make([]float64, nb),
		bad:   make([]string, nb),
		best:  make([]float64, nq),
	}
	uniformZ := vec.Uniform(mm)
	var ex []*accel.Extrapolator
	var jumped, vetoed []bool // by query index, valid within one pass
	for col, i := range iterQ {
		st.colOf[col] = i
		st.best[i] = math.Inf(1)
		if states[i].warmX != nil {
			vec.ScatterCol(states[i].warmX, st.x, col, nb)
			vec.ScatterCol(states[i].warmZ, st.z, col, nb)
		} else {
			vec.ScatterCol(states[i].l, st.x, col, nb)
			vec.ScatterCol(uniformZ, st.z, col, nb)
		}
		out[i] = ColumnResult{Seeds: states[i].seeds, Restart: states[i].l}
		if states[i].quality == QualityAccelerated {
			if ex == nil {
				ex = make([]*accel.Extrapolator, nq)
				jumped = make([]bool, nq)
				vetoed = make([]bool, nq)
			}
			ex[i] = accel.NewExtrapolator(n, mm, &rs.accel)
		}
	}
	if cp := rs.opts.resume; cp != nil {
		restoreColumns(st, cp, states, out)
	}
	alpha, beta := m.cfg.Alpha, m.cfg.Beta()
	rel := 1 - alpha - beta
	g := rs.opts.guards
	progress := rs.progressFn()
	for t := st.t0 + 1; t <= m.cfg.MaxIterations && st.b > 0; t++ {
		// A run-level cancellation breaks out before any column is marked:
		// the drain flush below must snapshot the survivors as still
		// active, or a resumed run would treat them as permanently stopped.
		if ctx.Err() != nil {
			break
		}
		// Per-column cancellation next, like the sequential loop's
		// top-of-iteration check: a cancelled column keeps the state of
		// the last completed iteration and retires alone.
		stopped := false
		for col := 0; col < st.b; col++ {
			i := st.colOf[col]
			if states[i].ctx != nil {
				if err := states[i].ctx.Err(); err != nil {
					out[i].Stopped = err
					stopped = true
				}
			}
		}
		if stopped {
			st.retire(out, func(i int) bool { return out[i].Stopped != nil })
			if st.b == 0 {
				break
			}
		}
		if t > 2 {
			for col := 0; col < st.b; col++ {
				i := st.colOf[col]
				if states[i].isSeed == nil {
					continue
				}
				col := col
				rs.reseed(n, func() {
					b := st.b
					queryReseed(m.cfg.Lambda, states[i].isSeed,
						func(r int) float64 { return st.x[r*b+col] }, states[i].l)
				})
			}
		}
		b := st.b
		x, z, xn, zn := st.x[:n*b], st.z[:mm*b], st.xn[:n*b], st.zn[:mm*b]
		// Scatter pending extrapolated candidates — after the per-query
		// reseed, which must read committed state only.
		anyJump := false
		if ex != nil {
			for col := 0; col < b; col++ {
				i := st.colOf[col]
				if ex[i].Pending() {
					ex[i].ScatterCandidate(x, z, col, b)
					jumped[i], vetoed[i] = true, false
					anyJump = true
				}
			}
		}
		if rel > 0 {
			rs.applyNodeBatch(m.o, x, z, xn, b)
			vec.Scale(rel, xn)
		} else {
			vec.Fill(xn, 0)
		}
		if beta > 0 && m.w != nil {
			tmp := st.tmp[:n*b]
			rs.mulFeatureBatch(x, tmp, b)
			vec.Axpy(beta, tmp, xn)
		}
		bad := st.bad[:b]
		for col := 0; col < b; col++ {
			i := st.colOf[col]
			bad[col] = ""
			vec.AxpyCol(alpha, states[i].l, xn, col, b)
			mass, ok := vec.Normalize1ColMass(xn, col, b)
			if kind, isBad := badMass(mass, ok, g); isBad {
				// A candidate under vet faults only its own jump: the
				// proposal is rejected below instead of the column retiring.
				if ex != nil && jumped[i] {
					vetoed[i] = true
				} else {
					bad[col] = kind
				}
			}
		}
		rs.applyRelationBatch(m.r, xn, zn, b)
		for col := 0; col < b; col++ {
			i := st.colOf[col]
			if bad[col] != "" || (ex != nil && jumped[i] && vetoed[i]) {
				continue
			}
			mass, ok := vec.Normalize1ColMass(zn, col, b)
			if kind, isBad := badMass(mass, ok, g); isBad {
				if ex != nil && jumped[i] {
					vetoed[i] = true
				} else {
					bad[col] = kind
				}
			}
		}
		rhos := st.rhos[:b]
		anyBad := false
		for col := 0; col < b; col++ {
			i := st.colOf[col]
			if bad[col] != "" {
				anyBad = true
				continue
			}
			if ex != nil && jumped[i] && vetoed[i] {
				continue
			}
			rho := vec.Diff1Col(x, xn, col, b) + vec.Diff1Col(z, zn, col, b)
			if nonFinite(rho) {
				if ex != nil && jumped[i] {
					vetoed[i] = true
					continue
				}
				bad[col] = faultNonFinite
				anyBad = true
				continue
			}
			rhos[col] = rho
		}
		// Vet verdicts for the jumped columns: accept exactly when the
		// pass stayed healthy and d(u, F(u)) strictly improves on the
		// query's last committed residual; otherwise restore the pre-jump
		// column into the next block so the commit re-installs it.
		if anyJump {
			for col := 0; col < b; col++ {
				i := st.colOf[col]
				if !jumped[i] {
					continue
				}
				last := math.Inf(1)
				if tr := out[i].Trace; len(tr) > 0 {
					last = tr[len(tr)-1]
				}
				if !vetoed[i] && rhos[col] < last {
					ex[i].Accept()
				} else {
					ex[i].RestoreInto(xn, zn, col, b)
					ex[i].Reject()
					vetoed[i] = true
				}
				jumped[i] = false
			}
		}
		// Faulted columns get their pre-iteration (healthy) state written
		// back into the next block before the wholesale commit below, so
		// the block never holds a corrupted column and the faulted query
		// retires with the last healthy iterate.
		if anyBad {
			for col := 0; col < b; col++ {
				if bad[col] == "" {
					continue
				}
				i := st.colOf[col]
				regNumericalFaults.Inc()
				out[i].Stopped = ErrNumericalFault
				for r := 0; r < n; r++ {
					xn[r*b+col] = x[r*b+col]
				}
				for r := 0; r < mm; r++ {
					zn[r*b+col] = z[r*b+col]
				}
			}
		}
		done := anyBad
		for col := 0; col < b; col++ {
			i := st.colOf[col]
			if bad[col] != "" || (ex != nil && vetoed[i]) {
				// Faulted, or a rejected vet pass: nothing committed for
				// this query, so no trace entry and no convergence test.
				continue
			}
			rho := rhos[col]
			out[i].Trace = append(out[i].Trace, rho)
			out[i].Iterations++
			if progress != nil {
				progress(i, out[i].Iterations, rho)
			}
			if rho < m.cfg.Epsilon {
				out[i].Converged = true
				done = true
			}
		}
		copy(x, xn)
		copy(z, zn)
		st.done = t
		// The opt-in series probes run post-commit per column: divergence
		// and stagnation are verdicts about the (valid) residual series,
		// so the committed state is what the stopped column reports.
		for col := 0; col < b; col++ {
			i := st.colOf[col]
			if bad[col] != "" || (ex != nil && vetoed[i]) {
				continue
			}
			if out[i].Converged {
				continue
			}
			rho := rhos[col]
			if diverged(rho, st.best[i], g) {
				regNumericalFaults.Inc()
				out[i].Stopped = ErrNumericalFault
				done = true
				continue
			}
			if rho < st.best[i] {
				st.best[i] = rho
			}
			if stagnated(out[i].Trace, g) {
				regStagnations.Inc()
				out[i].Stopped = ErrStagnated
				done = true
			}
		}
		// Feed the extrapolators the freshly committed iterates and let
		// them propose for the next pass — before retirement compacts the
		// column mapping.
		if ex != nil {
			for col := 0; col < b; col++ {
				i := st.colOf[col]
				vetoed[i] = false
				e := ex[i]
				if e == nil || out[i].Converged || out[i].Stopped != nil {
					continue
				}
				// Observe runs even through a shutoff cooldown — the committed
				// iterates are what count the cooldown down; Propose no-ops
				// until it expires.
				e.Observe(x, z, col, b)
				e.Propose()
			}
		}
		if done {
			st.retire(out, func(i int) bool { return out[i].Converged || out[i].Stopped != nil })
		}
		if sink := rs.opts.ckSink; sink != nil && rs.opts.ckEvery > 0 && t%rs.opts.ckEvery == 0 && st.b > 0 {
			m.saveCheckpoint(sink, m.snapshotColumns(st, states, out))
		}
	}
	// Drain flush before the leftovers are marked: the snapshot keeps the
	// surviving columns active, so a resumed call continues them from
	// exactly the state this interrupted call reports.
	if rs.opts.ckSink != nil && st.b > 0 && ctx.Err() != nil {
		m.saveCheckpoint(rs.opts.ckSink, m.snapshotColumns(st, states, out))
	}
	// Gather the leftovers: iteration cap, or a run-context cancellation
	// noticed by the loop condition.
	err := ctx.Err()
	st.retire(out, func(i int) bool {
		if err != nil && out[i].Stopped == nil {
			out[i].Stopped = err
		}
		return true
	})
	// Publish extrapolator activity from this batch — column solves are
	// the serving path, so the registry counters must see their proposals
	// just like finishRun publishes the full-solve ones.
	if rs.accel.Proposed > 0 {
		regAccelProposed.Add(rs.accel.Proposed)
		regAccelAccepted.Add(rs.accel.Accepted)
		regAccelRejected.Add(rs.accel.Rejected)
	}
}

// snapshotColumns deep-copies the batched column working set into a
// Checkpoint. The resubmitted queries supply the restart vectors on
// restore, so the snapshot stores states[i].l (which the per-query
// reseed may have rewritten) rather than re-deriving them.
func (m *Model) snapshotColumns(st *columnBlock, states []columnState, out []ColumnResult) *Checkpoint {
	nq := len(states)
	cp := &Checkpoint{
		ConfigHash: m.cfg.checkpointHash(),
		Kind:       ckKindColumns,
		N:          st.n, M: st.m, Q: nq,
		Iter:    st.done,
		B:       st.b,
		ClassOf: append([]int(nil), st.colOf[:st.b]...),
		State:   make([]uint8, nq),
		Iters:   make([]int, nq),
		Seeds:   make([]int, nq),
		X:       append([]float64(nil), st.x[:st.n*st.b]...),
		Z:       append([]float64(nil), st.z[:st.m*st.b]...),
		L:       make([]float64, nq*st.n),
		XOut:    make([][]float64, nq),
		ZOut:    make([][]float64, nq),
		Trace:   make([][]float64, nq),
	}
	for i := 0; i < nq; i++ {
		copy(cp.L[i*st.n:(i+1)*st.n], states[i].l)
		cp.Iters[i] = out[i].Iterations
		cp.Seeds[i] = out[i].Seeds
		cp.Trace[i] = append([]float64(nil), out[i].Trace...)
		if out[i].X != nil { // retired: converged, per-column cancel, or fault
			if out[i].Converged {
				cp.State[i] = 1
			} else {
				cp.State[i] = 2
			}
			cp.XOut[i] = append([]float64(nil), out[i].X...)
			cp.ZOut[i] = append([]float64(nil), out[i].Z...)
		}
	}
	return cp
}

// restoreColumns loads a validated column-run checkpoint into the
// freshly initialised working set. Columns the original call retired
// keep their verdicts: converged columns return as converged, stopped
// columns (per-column cancellation or numerical fault in the original
// call) return with Stopped = context.Canceled since the precise
// original error is not serialised.
func restoreColumns(st *columnBlock, cp *Checkpoint, states []columnState, out []ColumnResult) {
	st.b = cp.B
	st.colOf = st.colOf[:st.b]
	copy(st.colOf, cp.ClassOf)
	copy(st.x[:st.n*st.b], cp.X)
	copy(st.z[:st.m*st.b], cp.Z)
	for i := range states {
		copy(states[i].l, cp.L[i*st.n:(i+1)*st.n])
		out[i].Iterations = cp.Iters[i]
		out[i].Trace = append([]float64(nil), cp.Trace[i]...)
		st.best[i] = math.Inf(1)
		for _, r := range out[i].Trace {
			if r < st.best[i] {
				st.best[i] = r
			}
		}
		if cp.State[i] != 0 {
			out[i].Converged = cp.State[i] == 1
			if !out[i].Converged {
				out[i].Stopped = context.Canceled
			}
			out[i].X = vec.Vector(append([]float64(nil), cp.XOut[i]...))
			out[i].Z = vec.Vector(append([]float64(nil), cp.ZOut[i]...))
		}
	}
	st.t0, st.done = cp.Iter, cp.Iter
}
